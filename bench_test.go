package liveupdate

// Benchmark harness: one Benchmark per paper table/figure (regenerating the
// experiment in quick mode) plus micro-benchmarks of the hot paths and the
// ablation benches DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute wall-clock numbers are simulation costs, not testbed performance;
// the experiment *outputs* (the virtual-time results) carry the comparison.

import (
	"net"
	"testing"
	"time"

	"liveupdate/internal/collective"
	"liveupdate/internal/dlrm"
	"liveupdate/internal/emt"
	"liveupdate/internal/experiments"
	"liveupdate/internal/lora"
	"liveupdate/internal/numasim"
	"liveupdate/internal/obs"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
	"liveupdate/internal/update"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := runner(experiments.Options{Seed: 7, Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure ---

func BenchmarkTable2Datasets(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkFig3aUpdateRatio(b *testing.B)      { benchExperiment(b, "fig3a") }
func BenchmarkFig3bStalenessDecay(b *testing.B)   { benchExperiment(b, "fig3b") }
func BenchmarkFig4CPUUtilization(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5PowerOverhead(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6GradientPCA(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig8UpdateTimeline(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9SyncInterval(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10MemoryPressure(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11L3HitRatio(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12AccessCDF(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig14UpdateCost(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkTable3AUCComparison(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFig15AccuracyTrace(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16P99Ablation(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17MemoryFootprint(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18PowerUtilization(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19Scalability(b *testing.B)      { benchExperiment(b, "fig19") }

// --- Micro-benchmarks of the hot paths ---

func benchServingProfile() Profile {
	p := Profiles()["criteo"]
	p.NumTables = 4
	p.TableSize = 1000
	p.NumDense = 8
	p.MultiHot = []int{1, 1, 1, 2}
	return p
}

// BenchmarkServeRequest measures the end-to-end serving path: memory-model
// accesses, DLRM forward, ring-buffer push, latency tracking.
func BenchmarkServeRequest(b *testing.B) {
	p := benchServingProfile()
	sys, err := New(DefaultOptions(p, 1))
	if err != nil {
		b.Fatal(err)
	}
	gen := NewWorkload(p, 2)
	samples := make([]Sample, 1024)
	for i := range samples {
		samples[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Serve(samples[i%len(samples)])
	}
}

// BenchmarkServeRequestNoAlloc measures the scoring half of the serving fast
// path in isolation: the DLRM forward through the LoRA embedding source,
// running on a pooled forward scratch outside the node's bookkeeping lock.
// After warmup it performs zero heap allocations per request — CI's
// alloc-gate step fails the build if allocs/op ever reads above 0.
func BenchmarkServeRequestNoAlloc(b *testing.B) {
	p := benchServingProfile()
	srv, err := New(DefaultOptions(p, 1))
	if err != nil {
		b.Fatal(err)
	}
	sys := srv.(*System)
	gen := NewWorkload(p, 2)
	samples := make([]Sample, 1024)
	for i := range samples {
		samples[i] = gen.Next()
	}
	// Warm the node: populate LoRA rows via training ticks and fill the
	// scratch pool, so the measured region is the steady serving state.
	for i := 0; i < 256; i++ {
		if _, err := sys.Serve(samples[i%len(samples)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Node.Predict(samples[i%len(samples)])
	}
}

// BenchmarkServeRequestTelemetry is BenchmarkServeRequest with the full
// telemetry surface live at the most expensive setting (every request traced,
// SampleEvery 1): the route/forward/commit spans, the serve counters, and the
// latency histogram all record on every serve. The delta against
// BenchmarkServeRequest is the whole cost of observing the serving path —
// the PR gate holds it under 2% ns/op.
func BenchmarkServeRequestTelemetry(b *testing.B) {
	p := benchServingProfile()
	sys, err := New(WithProfile(p), WithSeed(1), WithTelemetry(TelemetryConfig{SampleEvery: 1}))
	if err != nil {
		b.Fatal(err)
	}
	gen := NewWorkload(p, 2)
	samples := make([]Sample, 1024)
	for i := range samples {
		samples[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Serve(samples[i%len(samples)])
	}
}

// BenchmarkServeRequestTracedNoAlloc is BenchmarkServeRequestNoAlloc with
// stage tracing enabled and sampling every request: the forward span's
// StageStart/StageEnd pair (two clock reads, two atomic adds, one seqlock
// ring write) runs inside the measured region. The zero-allocation guarantee
// must survive telemetry — CI's alloc-gate step runs this benchmark alongside
// the untraced ones and fails the build if allocs/op ever reads above 0.
func BenchmarkServeRequestTracedNoAlloc(b *testing.B) {
	p := benchServingProfile()
	srv, err := New(WithProfile(p), WithSeed(1), WithTelemetry(TelemetryConfig{SampleEvery: 1}))
	if err != nil {
		b.Fatal(err)
	}
	sys := srv.(*System)
	gen := NewWorkload(p, 2)
	samples := make([]Sample, 1024)
	for i := range samples {
		samples[i] = gen.Next()
	}
	for i := 0; i < 256; i++ {
		if _, err := sys.Serve(samples[i%len(samples)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Node.Predict(samples[i%len(samples)])
	}
	b.StopTimer()
	if ServerTelemetry(srv).Tracer().StageTotals()[obs.StageForward].Count == 0 {
		b.Fatal("tracer recorded no forward spans — telemetry was not live in the measured region")
	}
}

// BenchmarkWireServeRequest measures the same end-to-end serving path as
// BenchmarkServeRequest, but through the network front end: JSON encode, a
// loopback TCP round trip through the admission gate, serve, JSON decode.
// The delta against BenchmarkServeRequest is the whole cost of the wire.
func BenchmarkWireServeRequest(b *testing.B) {
	p := benchServingProfile()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(WithProfile(p), WithSeed(1), WithListener(ln))
	if err != nil {
		b.Fatal(err)
	}
	gw := srv.(*Gateway)
	defer gw.Close()
	remote, err := Dial(ln.Addr().String(), DialConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Close()
	gen := NewWorkload(p, 2)
	samples := make([]Sample, 1024)
	for i := range samples {
		samples[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.Serve(samples[i%len(samples)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleet builds the 4-replica hash-routed fleet both cluster-serving
// benchmarks share. Hash routing keeps the request→replica assignment
// deterministic, so the sequential and parallel benches do identical
// virtual-time work and their wall-clock ratio is a pure concurrency win.
func benchFleet(b *testing.B) (Server, *Workload) {
	b.Helper()
	p := benchServingProfile()
	srv, err := New(
		WithProfile(p),
		WithSeed(1),
		WithReplicas(4),
		WithRouter(HashRouter),
		WithSyncEvery(30*time.Second),
	)
	if err != nil {
		b.Fatal(err)
	}
	return srv, NewWorkload(p, 2)
}

// BenchmarkClusterServeSequential drives a 4-replica fleet one request at a
// time from a single goroutine — the pre-concurrency baseline.
func BenchmarkClusterServeSequential(b *testing.B) {
	srv, gen := benchFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Serve(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterServeParallel drives the same fleet with 8 worker
// goroutines through Drive. Compared against the Sequential bench it shows
// the wall-clock speedup of parallel replica serving; the virtual-time
// Stats (Served, Violations, sync counts) are identical between the two —
// see TestDriveMatchesSequentialServe.
func BenchmarkClusterServeParallel(b *testing.B) {
	srv, gen := benchFleet(b)
	b.ResetTimer()
	rep, err := Drive(srv, gen, DriveConfig{Requests: b.N, Concurrency: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Served != uint64(b.N) {
		b.Fatalf("served %d of %d", rep.Served, b.N)
	}
	b.ReportMetric(rep.QPS, "req/s")
}

// BenchmarkClusterServeBatched drives the same fleet as the Sequential and
// Parallel benches with 8 workers AND lane coalescing (batch 16): queued
// same-shard requests are served through one ServeShardBatch call — one
// scratch, one fleet read lock, one node lock for the whole run. Virtual-time
// stats are identical to both siblings (TestDriveBatchedMatchesUnbatched);
// the req/call metric shows how full the opportunistic batches ran.
func BenchmarkClusterServeBatched(b *testing.B) {
	srv, gen := benchFleet(b)
	b.ResetTimer()
	rep, err := Drive(srv, gen, DriveConfig{Requests: b.N, Concurrency: 8, BatchSize: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Served != uint64(b.N) {
		b.Fatalf("served %d of %d", rep.Served, b.N)
	}
	b.ReportMetric(rep.QPS, "req/s")
	if rep.Batches > 0 {
		b.ReportMetric(float64(rep.Served)/float64(rep.Batches), "req/call")
	}
}

// BenchmarkClusterServeBatchedNoAlloc measures the batched cluster serving
// fast path in isolation: pre-routed same-shard batches served through
// ServeShardBatch into a caller-owned response slice, with the sync cadence
// long enough that no epoch fires mid-run and training disabled — like
// BenchmarkServeRequestNoAlloc, this gates the scoring path, not the train
// tail (whose adaptive LoRA lifecycle allocates by design when Algorithm 1
// prunes and re-materializes rows). After warmup (batch-scratch pool, the
// pooled probs buffer) it performs zero heap allocations per batch — CI's
// alloc-gate step fails the build if allocs/op ever reads above 0.
func BenchmarkClusterServeBatchedNoAlloc(b *testing.B) {
	p := benchServingProfile()
	srv, err := New(
		WithProfile(p),
		WithSeed(1),
		WithReplicas(4),
		WithRouter(HashRouter),
		WithSyncEvery(30*time.Second),
		WithTraining(false),
	)
	if err != nil {
		b.Fatal(err)
	}
	gen := NewWorkload(p, 2)
	cl := srv.(*Cluster)
	const batch = 16
	// A hash router maps a fixed sample set to fixed shards; bucket warmup
	// samples per shard so each measured batch is one same-shard run.
	byShard := make(map[int][]Sample)
	for i := 0; i < 1024; i++ {
		s := gen.Next()
		shard := cl.ShardOf(s)
		byShard[shard] = append(byShard[shard], s)
	}
	var batches [][]Sample
	var shards []int
	for shard, ss := range byShard {
		for len(ss) >= batch {
			batches = append(batches, ss[:batch])
			shards = append(shards, shard)
			ss = ss[batch:]
		}
	}
	if len(batches) == 0 {
		b.Fatal("no full same-shard batches")
	}
	resps := make([]Response, batch)
	// Warm every replica's pools and LoRA state.
	for i := 0; i < 4*len(batches); i++ {
		if err := cl.ServeShardBatch(shards[i%len(shards)], batches[i%len(batches)], resps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.ServeShardBatch(shards[i%len(shards)], batches[i%len(batches)], resps); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSyncFleet builds a 4-replica hash-routed fleet with an aggressive
// periodic sync cadence (every 100ms of virtual time → a sync every few
// hundred requests) in the given propagation mode, so sync handling is a
// measurable share of the drive.
func benchSyncFleet(b *testing.B, mode SyncMode) (Server, *Workload) {
	b.Helper()
	p := benchServingProfile()
	srv, err := New(
		WithProfile(p),
		WithSeed(1),
		WithReplicas(4),
		WithRouter(HashRouter),
		WithSyncEvery(100*time.Millisecond),
		WithSyncMode(mode),
	)
	if err != nil {
		b.Fatal(err)
	}
	return srv, NewWorkload(p, 2)
}

func benchClusterSync(b *testing.B, mode SyncMode) {
	srv, gen := benchSyncFleet(b, mode)
	b.ResetTimer()
	rep, err := Drive(srv, gen, DriveConfig{Requests: b.N, Concurrency: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Served != uint64(b.N) {
		b.Fatalf("served %d of %d", rep.Served, b.N)
	}
	b.ReportMetric(rep.QPS, "req/s")
	b.ReportMetric(float64(rep.Final.Syncs), "syncs")
}

// BenchmarkClusterSyncBarrier drives a syncing fleet with the stop-the-world
// protocol: every periodic priority-merge sync takes the fleet write lock
// and stalls all 8 workers until the merged state is installed.
func BenchmarkClusterSyncBarrier(b *testing.B) { benchClusterSync(b, SyncModeBarrier) }

// BenchmarkClusterSyncAsync drives the identical fleet with the versioned
// asynchronous pipeline: snapshots, background merge, and atomic per-replica
// publication, with serving never blocked behind a fleet-wide lock. Compared
// against the Barrier bench it quantifies the serve-latency tail the paper's
// live-update design removes; the virtual-time stats (Served, sync counts)
// are identical between the two.
func BenchmarkClusterSyncAsync(b *testing.B) { benchClusterSync(b, SyncModeAsync) }

// BenchmarkFleetReplaceReplica measures one full membership turnover on a
// warmed 4-replica fleet: fail the member in slot 1, spawn a replacement,
// and catch it up from a live donor (base-table checkpoint serialize +
// restore, full LoRA state transfer, atomic view/ring rebuild). This is the
// control-plane cost a production fleet pays per crash, so its trajectory
// matters as the serving stack grows.
func BenchmarkFleetReplaceReplica(b *testing.B) {
	srv, gen := benchSyncFleet(b, SyncModeAsync)
	es := srv.(ElasticServer)
	// Warm the fleet so the donor has real adapter state to ship.
	for i := 0; i < 400; i++ {
		if _, err := srv.Serve(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := es.ReplaceReplica(1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := srv.Stats()
	if b.N > 0 {
		b.ReportMetric(float64(st.CatchUpBytes)/float64(b.N), "catchupB/op")
	}
}

// BenchmarkLoRATrainStep measures one co-located LoRA training step
// (forward + backward + factor update, dense layers frozen).
func BenchmarkLoRATrainStep(b *testing.B) {
	p := benchServingProfile()
	rng := tensor.NewRNG(3)
	model := dlrm.MustNewModel(dlrm.ConfigForProfile(p), rng)
	base := emt.NewGroup(p.NumTables, p.TableSize, p.EmbeddingDim, rng)
	set := lora.MustNewSet(base, lora.DefaultConfig(p.TableSize, p.EmbeddingDim))
	gen := NewWorkload(p, 4)
	samples := make([]Sample, 512)
	for i := range samples {
		samples[i] = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		var cache dlrm.ForwardCache
		logit := model.Forward(set, s.Dense, s.Sparse, &cache)
		dLogit := dlrm.Sigmoid(logit) - float64(s.Label)
		dEmb := model.Backward(dLogit, &cache)
		model.Bottom.ZeroGrad()
		model.Top.ZeroGrad()
		for t, g := range dEmb {
			set.ApplyGrad(t, s.Sparse[t], g, 0.05)
		}
	}
}

// BenchmarkSVD measures the one-sided Jacobi SVD on a gradient-window-sized
// matrix (256×16), the kernel behind rank adaptation.
func BenchmarkSVD(b *testing.B) {
	rng := tensor.NewRNG(5)
	m := tensor.RandomMatrix(rng, 256, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.ComputeSVD(m)
	}
}

// BenchmarkEmbeddingLookup measures multi-hot pooled lookup.
func BenchmarkEmbeddingLookup(b *testing.B) {
	rng := tensor.NewRNG(6)
	tab := emt.NewTable("bench", 10000, 16, rng)
	ids := []int32{1, 77, 4096}
	dst := make([]float64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(ids, dst)
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkAblationRankResize compares shrink (SVD re-projection) and grow
// (zero-pad) resize costs on a populated adapter.
func BenchmarkAblationRankResize(b *testing.B) {
	cfg := lora.DefaultConfig(2000, 16)
	cfg.InitialRank = 8
	grad := make([]float64, 16)
	for i := range grad {
		grad[i] = 0.1 * float64(i)
	}
	// One populated adapter is reused; each iteration cycles the rank so
	// both the SVD-re-projection (shrink) and zero-pad (grow) paths run.
	populate := func() *lora.Adapter {
		a := lora.MustNewAdapter(cfg)
		for id := int32(0); id < 500; id++ {
			a.Train([]int32{id}, grad, 0.05)
		}
		return a
	}
	b.Run("shrink-grow-cycle", func(b *testing.B) {
		a := populate()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				a.Resize(4)
			} else {
				a.Resize(8)
			}
		}
	})
}

// BenchmarkAblationSyncProtocol compares the sparse priority-merge protocol
// (Algorithm 3) against a naive dense exchange in moved bytes and time.
func BenchmarkAblationSyncProtocol(b *testing.B) {
	makeReplicas := func() []*lora.Set {
		replicas := make([]*lora.Set, 4)
		for i := range replicas {
			base := emt.NewGroup(2, 2000, 16, tensor.NewRNG(9))
			cfg := lora.DefaultConfig(2000, 16)
			cfg.Seed = uint64(i)
			replicas[i] = lora.MustNewSet(base, cfg)
		}
		grad := make([]float64, 16)
		grad[0] = 1
		for r, rep := range replicas {
			for k := 0; k < 50; k++ {
				rep.ApplyGrad(0, []int32{int32(r*50 + k)}, grad, 0.05)
			}
		}
		return replicas
	}
	grad := make([]float64, 16)
	grad[0] = 1
	b.Run("priority-merge", func(b *testing.B) {
		replicas := makeReplicas()
		sg := collective.NewSyncGroup(replicas, simnet.Gbps100, 0.001)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A little fresh work per cycle, then the sparse sync.
			replicas[i%4].ApplyGrad(0, []int32{int32(i % 2000)}, grad, 0.05)
			if _, err := sg.Sync(simnet.NewClock()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-dense", func(b *testing.B) {
		// Naive alternative: every rank ships its full adapter state (all A
		// rows of the table at current rank) regardless of modification.
		for i := 0; i < b.N; i++ {
			clock := simnet.NewClock()
			link := simnet.NewLink(simnet.Gbps100, 0.001)
			for r := 0; r < 4; r++ {
				denseBytes := int64(2 * 2000 * 4 * 8) // 2 tables, full A at rank 4
				link.TransferAndWait(clock, denseBytes)
			}
		}
	})
}

// BenchmarkAblationQoSThresholds sweeps Algorithm 2's hysteresis thresholds,
// reporting controller responsiveness under a saw-tooth P99 signal.
func BenchmarkAblationQoSThresholds(b *testing.B) {
	for _, spread := range []struct {
		name      string
		high, low float64
	}{
		{"tight-8/7ms", 0.008, 0.007},
		{"paper-10/6ms", 0.010, 0.006},
		{"wide-15/3ms", 0.015, 0.003},
	} {
		b.Run(spread.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runControllerSweep(b, spread.high, spread.low)
			}
		})
	}
}

func runControllerSweep(b *testing.B, high, low float64) {
	b.Helper()
	clock := simnet.NewClock()
	machine, err := numasim.NewMachine(numasim.DefaultConfig(), clock)
	if err != nil {
		b.Fatal(err)
	}
	ctlCfg := numasim.DefaultControllerConfig(machine.Config().NumCCDs)
	ctlCfg.THigh = high
	ctlCfg.TLow = low
	ctl, err := numasim.NewController(ctlCfg, machine, clock, 9)
	if err != nil {
		b.Fatal(err)
	}
	p99 := 0.002
	up := true
	for step := 0; step < 200; step++ {
		clock.Advance(1.1)
		ctl.Observe(p99)
		if up {
			p99 += 0.001
			if p99 > 0.018 {
				up = false
			}
		} else {
			p99 -= 0.001
			if p99 < 0.002 {
				up = true
			}
		}
	}
}

// BenchmarkAblationClockOverhead measures the discrete-event substrate
// itself: virtual-clock transfers must be cheap enough to never dominate.
func BenchmarkAblationClockOverhead(b *testing.B) {
	clock := simnet.NewClock()
	link := simnet.NewLink(simnet.Gbps100, 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.TransferAndWait(clock, 1<<20)
	}
}

// BenchmarkCostModel measures the Fig 14 arithmetic.
func BenchmarkCostModel(b *testing.B) {
	cm := update.DefaultCostModel(trace.Profiles()["bd-tb"])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []update.Kind{update.DeltaUpdate, update.QuickUpdate, update.LiveUpdate} {
			cm.HourlyCost(k, 300)
		}
	}
}

// BenchmarkSyncScaleSweep regenerates the fleet-scale sync experiment in
// quick mode: the 4→256 topology sweep with its cross-config fingerprint
// equivalence check. Its trajectory tracks the cost of pricing hierarchical
// collectives, delta syncs, and compressed payloads together.
func BenchmarkSyncScaleSweep(b *testing.B) { benchExperiment(b, "syncscale") }

// BenchmarkSyncCollectivePricing prices one ranked sync of a prepared
// 16-member group under the most expensive knob combination (tree topology,
// delta tracking, flate-6 payload compression). This is the per-sync
// overhead the pricing layer adds on top of the merge itself.
func BenchmarkSyncCollectivePricing(b *testing.B) {
	rng := tensor.NewRNG(7)
	base := emt.NewGroup(2, 512, 16, rng)
	cfg := lora.DefaultConfig(512, 16)
	states := make([]collective.RankedState, 16)
	grad := make([]float64, 16)
	for i := range grad {
		grad[i] = 0.05
	}
	for i := range states {
		c := cfg
		c.Seed = uint64(i)
		set := lora.MustNewSet(base, c)
		for t := 0; t < 2; t++ {
			set.ApplyGrad(t, []int32{int32(i), int32(i + 16), int32(i + 32)}, grad, 0.05)
		}
		states[i] = collective.RankedState{Rank: i, Tables: set.ExportState()}
	}
	topo, err := collective.ParseTopology(collective.TopologyTree)
	if err != nil {
		b.Fatal(err)
	}
	sg, err := collective.NewSyncGroupWith(collective.GroupConfig{
		BandwidthBps:  simnet.Gbps100,
		LatencySec:    1e-6,
		Topology:      topo,
		Delta:         true,
		CompressLevel: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	clock := simnet.NewClock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := sg.SyncRanked(clock, states); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPayloadCodec round-trips a realistic sync payload through the
// hardened wire codec at flate level 6 — the serialization cost the
// compression knob charges for.
func BenchmarkPayloadCodec(b *testing.B) {
	rng := tensor.NewRNG(7)
	base := emt.NewGroup(2, 512, 16, rng)
	cfg := lora.DefaultConfig(512, 16)
	set := lora.MustNewSet(base, cfg)
	grad := make([]float64, 16)
	ids := make([]int32, 64)
	for i := range ids {
		ids[i] = int32(i * 7 % 512)
	}
	for t := 0; t < 2; t++ {
		set.ApplyGrad(t, ids, grad, 0.05)
	}
	tables := set.ExportState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := collective.EncodePayload(tables, 6)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := collective.DecodePayload(enc); err != nil {
			b.Fatal(err)
		}
	}
}
