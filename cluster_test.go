// Fleet-level acceptance tests, deliberately in an external test package so
// they can only reach what a downstream user can: the public liveupdate API.
package liveupdate_test

import (
	"testing"
	"time"

	"liveupdate"
)

func clusterProfile(t *testing.T) liveupdate.Profile {
	t.Helper()
	p, err := liveupdate.ProfileByName("criteo")
	if err != nil {
		t.Fatal(err)
	}
	p.NumTables = 3
	p.TableSize = 400
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

// TestClusterReplicaConsistencyPublicAPI is the paper §II-C invariant as an
// acceptance test: four replicas behind the hash router train on disjoint
// request shards, and one priority-merge sync makes every replica's
// effective embedding rows identical.
func TestClusterReplicaConsistencyPublicAPI(t *testing.T) {
	p := clusterProfile(t)
	srv, err := liveupdate.New(
		liveupdate.WithProfile(p),
		liveupdate.WithSeed(23),
		liveupdate.WithReplicas(4),
		liveupdate.WithRouter(liveupdate.HashRouter),
		liveupdate.WithSyncEvery(0), // manual sync below
	)
	if err != nil {
		t.Fatal(err)
	}
	fleet, ok := srv.(*liveupdate.Cluster)
	if !ok {
		t.Fatalf("WithReplicas(4) must build a *Cluster, got %T", srv)
	}
	if fleet.RouterName() != string(liveupdate.HashRouter) {
		t.Fatalf("router = %s, want %s", fleet.RouterName(), liveupdate.HashRouter)
	}

	gen := liveupdate.NewWorkload(p, 23)
	for i := 0; i < 1000; i++ {
		if _, err := srv.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if fleet.ReplicasConsistent(50) {
		t.Fatal("replicas must diverge while training on disjoint shards")
	}
	if _, err := fleet.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if !fleet.ReplicasConsistent(50) {
		t.Fatal("replicas must serve identical effective embeddings after sync")
	}

	st := srv.Stats()
	if st.Served != 1000 || len(st.Replicas) != 4 {
		t.Fatalf("merged stats wrong shape: served=%d replicas=%d", st.Served, len(st.Replicas))
	}
	if st.Syncs != 1 || st.SyncBytes == 0 || st.SyncSeconds <= 0 {
		t.Fatalf("sync accounting missing from merged stats: %+v", st)
	}
}

// TestClusterPeriodicSyncPublicAPI drives a fleet with the periodic sync
// enabled and checks that syncs fire on the virtual-time cadence and leave
// the fleet consistent at the end of the run.
func TestClusterPeriodicSyncPublicAPI(t *testing.T) {
	p := clusterProfile(t)
	srv, err := liveupdate.New(
		liveupdate.WithProfile(p),
		liveupdate.WithReplicas(3),
		liveupdate.WithRouter(liveupdate.LeastLoadedRouter),
		liveupdate.WithSyncEvery(100*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	gen := liveupdate.NewWorkload(p, 5)
	for i := 0; i < 600; i++ {
		if _, err := srv.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Syncs == 0 {
		t.Fatalf("periodic sync never fired in %.3fs of virtual time", st.VirtualTime)
	}
	var perReplica uint64
	for _, rs := range st.Replicas {
		perReplica += rs.Served
	}
	if perReplica != st.Served {
		t.Fatalf("replica breakdown (%d) disagrees with merged Served (%d)", perReplica, st.Served)
	}
}

// driveFleet builds a 4-replica hash-routed fleet with a fast periodic sync
// in the given sync mode and returns it plus a fresh workload at a fixed
// seed.
func driveFleet(t *testing.T, mode liveupdate.SyncMode) (liveupdate.Server, *liveupdate.Workload) {
	t.Helper()
	p := clusterProfile(t)
	srv, err := liveupdate.New(
		liveupdate.WithProfile(p),
		liveupdate.WithSeed(31),
		liveupdate.WithReplicas(4),
		liveupdate.WithRouter(liveupdate.HashRouter),
		liveupdate.WithSyncEvery(2*time.Second),
		liveupdate.WithSyncMode(mode),
	)
	if err != nil {
		t.Fatal(err)
	}
	return srv, liveupdate.NewWorkload(p, 31)
}

// TestDriveMatchesSequentialServe is the acceptance property of the
// concurrent load driver, at the public API: an 8-worker Drive over a
// 4-replica fleet produces exactly the virtual-time statistics of a plain
// sequential Serve loop — same Served, Violations, TrainSteps, periodic
// sync count, per-replica clocks, and fleet P99 — while actually serving
// replicas from parallel goroutines. The property holds in BOTH sync
// propagation modes: the asynchronous pipeline moves merges off the serving
// critical path without perturbing any virtual-time statistic.
func TestDriveMatchesSequentialServe(t *testing.T) {
	for _, mode := range liveupdate.SyncModes() {
		t.Run(string(mode), func(t *testing.T) {
			const requests = 3000

			seq, gen := driveFleet(t, mode)
			for i := 0; i < requests; i++ {
				if _, err := seq.Serve(gen.Next()); err != nil {
					t.Fatal(err)
				}
			}
			want := seq.Stats()

			par, gen := driveFleet(t, mode)
			rep, err := liveupdate.Drive(par, gen, liveupdate.DriveConfig{
				Requests:    requests,
				Concurrency: 8,
				Seed:        1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Served != requests {
				t.Fatalf("drive served %d of %d", rep.Served, requests)
			}
			got := rep.Final

			if want.Syncs == 0 {
				t.Fatalf("fixture too small: no periodic syncs in %.2fs of virtual time", want.VirtualTime)
			}
			if got.Served != want.Served || got.Violations != want.Violations ||
				got.TrainSteps != want.TrainSteps || got.Syncs != want.Syncs ||
				got.VirtualTime != want.VirtualTime || got.P99 != want.P99 || got.P50 != want.P50 {
				t.Fatalf("parallel drive diverged from sequential serve:\n"+
					"  sequential: served=%d violations=%d steps=%d syncs=%d vt=%v p99=%v\n"+
					"  parallel:   served=%d violations=%d steps=%d syncs=%d vt=%v p99=%v",
					want.Served, want.Violations, want.TrainSteps, want.Syncs, want.VirtualTime, want.P99,
					got.Served, got.Violations, got.TrainSteps, got.Syncs, got.VirtualTime, got.P99)
			}
			if len(got.Replicas) != len(want.Replicas) {
				t.Fatalf("replica counts differ: %d vs %d", len(got.Replicas), len(want.Replicas))
			}
			for i := range want.Replicas {
				w, g := want.Replicas[i], got.Replicas[i]
				if g.Served != w.Served || g.Violations != w.Violations ||
					g.TrainSteps != w.TrainSteps || g.VirtualTime != w.VirtualTime || g.P99 != w.P99 {
					t.Fatalf("replica %d diverged:\n  sequential: %+v\n  parallel:   %+v", i, w, g)
				}
			}
			// The drive report carries the sync-stall split.
			if rep.SyncStallSeconds <= 0 ||
				rep.SyncStallSeconds != rep.SyncComputeSeconds+rep.SyncPublishSeconds {
				t.Fatalf("sync-stall split missing from report: total=%v compute=%v publish=%v",
					rep.SyncStallSeconds, rep.SyncComputeSeconds, rep.SyncPublishSeconds)
			}
		})
	}
}

// TestWithSyncModePublicAPI covers the public mode surface: the default is
// async, both modes construct, and bad modes are rejected at New.
func TestWithSyncModePublicAPI(t *testing.T) {
	p := clusterProfile(t)
	srv, err := liveupdate.New(
		liveupdate.WithProfile(p),
		liveupdate.WithReplicas(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if fleet, ok := srv.(*liveupdate.Cluster); !ok || fleet.Mode() != liveupdate.SyncModeAsync {
		t.Fatalf("default fleet mode must be async, got %T", srv)
	}
	srv, err = liveupdate.New(
		liveupdate.WithProfile(p),
		liveupdate.WithReplicas(2),
		liveupdate.WithSyncMode(liveupdate.SyncModeBarrier),
	)
	if err != nil {
		t.Fatal(err)
	}
	if srv.(*liveupdate.Cluster).Mode() != liveupdate.SyncModeBarrier {
		t.Fatal("WithSyncMode(barrier) must select the barrier protocol")
	}
	if _, err := liveupdate.New(
		liveupdate.WithProfile(p),
		liveupdate.WithReplicas(2),
		liveupdate.WithSyncMode(liveupdate.SyncMode("half-async")),
	); err == nil {
		t.Fatal("unknown sync mode must be rejected")
	}
}
