// Command benchdiff compares two `go test -json -bench` event streams (the
// BENCH_ci.json artifacts the CI bench job uploads) and renders a markdown
// summary of per-benchmark ns/op movement — a dependency-free benchstat
// substitute for the job summary.
//
// Usage:
//
//	benchdiff -old prev/BENCH_ci.json -new BENCH_ci.json [-threshold 25]
//
// Exit status: 0 on success (including "no previous artifact", which renders
// a note instead of a table — the first run of a new repo has no baseline),
// 1 when the new results are missing or unreadable. Regressions beyond
// -threshold percent are flagged in the table but never fail the job: CI
// runners are too noisy for single-iteration gates, the table exists to make
// the trajectory visible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's parsed result line.
type benchResult struct {
	Name    string
	Iters   int64
	NsPerOp float64
	// Extra holds trailing custom metrics (req/s, syncs, B/op, ...).
	Extra map[string]float64
}

// testEvent is the subset of the go test -json event schema we consume. In
// -json mode the benchmark name is carried in the Test field while the
// Output line holds only "  <iters>  <value> ns/op ..." — the two are
// rejoined in parseStream.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseBenchLine parses one benchmark result line of `go test -bench` output
// ("BenchmarkFoo-8   3000   71893 ns/op   13958 req/s"). It returns false
// for non-result lines.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iters: iters, Extra: map[string]float64{}}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			seenNs = true
		} else {
			r.Extra[unit] = v
		}
	}
	if !seenNs {
		return benchResult{}, false
	}
	return r, true
}

// parseStream reads a go test -json event stream and collects benchmark
// results from its output events.
func parseStream(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]benchResult{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate plain-text lines (e.g. a raw `go test -bench` log).
			if r, ok := parseBenchLine(line); ok {
				out[r.Name] = r
			}
			continue
		}
		if ev.Action != "output" {
			continue
		}
		text := ev.Output
		// Rejoin name and result when the stream splits them (see testEvent).
		if strings.HasPrefix(ev.Test, "Benchmark") && !strings.HasPrefix(strings.TrimSpace(text), "Benchmark") {
			text = ev.Test + " " + text
		}
		if r, ok := parseBenchLine(text); ok {
			out[r.Name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// renderDiff writes the markdown comparison of old vs new results.
func renderDiff(w *bufio.Writer, oldRes, newRes map[string]benchResult, threshold float64) {
	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "### Benchmark diff vs previous run\n\n")
	fmt.Fprintf(w, "| benchmark | old ns/op | new ns/op | Δ |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|\n")
	regressions := 0
	for _, name := range names {
		n := newRes[name]
		o, ok := oldRes[name]
		if !ok {
			fmt.Fprintf(w, "| %s | — | %.0f | new |\n", name, n.NsPerOp)
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		flag := ""
		if delta > threshold {
			flag = " ⚠️"
			regressions++
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %+.1f%%%s |\n", name, o.NsPerOp, n.NsPerOp, delta, flag)
	}
	// Benchmarks present only in the old file render as "removed" rows, in
	// sorted order so the table is stable run to run (map iteration is not).
	removed := make([]string, 0)
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "| %s | %.0f | — | removed |\n", name, oldRes[name].NsPerOp)
	}
	fmt.Fprintf(w, "\n")
	if regressions > 0 {
		fmt.Fprintf(w, "⚠️ %d benchmark(s) regressed more than %.0f%% ns/op — single-iteration CI numbers are noisy; treat as a pointer, not a verdict.\n", regressions, threshold)
	} else {
		fmt.Fprintf(w, "No ns/op regression beyond %.0f%%.\n", threshold)
	}
}

func main() {
	oldPath := flag.String("old", "", "previous run's bench JSON (missing file → note, exit 0)")
	newPath := flag.String("new", "", "current run's bench JSON (required)")
	threshold := flag.Float64("threshold", 25, "flag ns/op regressions beyond this percentage")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(1)
	}
	newRes, err := parseStream(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading new results: %v\n", err)
		os.Exit(1)
	}
	if len(newRes) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark results in %s\n", *newPath)
		os.Exit(1)
	}
	var oldRes map[string]benchResult
	if *oldPath != "" {
		oldRes, err = parseStream(*oldPath)
	}
	if *oldPath == "" || err != nil || len(oldRes) == 0 {
		fmt.Fprintf(w, "### Benchmark diff\n\nNo previous bench artifact to diff against (first run, expired artifact, or download failure); recorded %d benchmarks as the new baseline.\n", len(newRes))
		return
	}
	renderDiff(w, oldRes, newRes, *threshold)
}
