// Command benchdiff compares two `go test -json -bench` event streams (the
// BENCH_ci.json artifacts the CI bench job uploads) and renders a markdown
// summary of per-benchmark movement — ns/op plus, when the runs carried
// -benchmem, the B/op and allocs/op columns — a dependency-free benchstat
// substitute for the job summary.
//
// Usage:
//
//	benchdiff -old prev/BENCH_ci.json -new BENCH_ci.json [-threshold 25] [-alloc-threshold 0]
//
// Exit status: 0 on success (including "no previous artifact", which renders
// a note instead of a table — the first run of a new repo has no baseline),
// 1 when the new results are missing or unreadable. Wall-time regressions
// beyond -threshold percent are flagged in the table but never fail the job:
// CI runners are too noisy for single-iteration ns/op gates. Allocation
// columns are different — B/op and allocs/op are deterministic for a fixed
// code path — so growth beyond -alloc-threshold percent (default 0: any
// increase) is flagged as a real regression; the hard zero-allocation gate on
// the serving fast path lives in its own CI step.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's parsed result line.
type benchResult struct {
	Name    string
	Iters   int64
	NsPerOp float64
	// Extra holds trailing custom metrics (req/s, syncs, B/op, ...).
	Extra map[string]float64
}

// testEvent is the subset of the go test -json event schema we consume. In
// -json mode the benchmark name is carried in the Test field while the
// Output line holds only "  <iters>  <value> ns/op ..." — the two are
// rejoined in parseStream.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseBenchLine parses one benchmark result line of `go test -bench` output
// ("BenchmarkFoo-8   3000   71893 ns/op   13958 req/s"). It returns false
// for non-result lines.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: fields[0], Iters: iters, Extra: map[string]float64{}}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			seenNs = true
		} else {
			r.Extra[unit] = v
		}
	}
	if !seenNs {
		return benchResult{}, false
	}
	return r, true
}

// parseStream reads a go test -json event stream and collects benchmark
// results from its output events.
func parseStream(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]benchResult{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			// Tolerate plain-text lines (e.g. a raw `go test -bench` log).
			if r, ok := parseBenchLine(line); ok {
				out[r.Name] = r
			}
			continue
		}
		if ev.Action != "output" {
			continue
		}
		text := ev.Output
		// Rejoin name and result when the stream splits them (see testEvent).
		if strings.HasPrefix(ev.Test, "Benchmark") && !strings.HasPrefix(strings.TrimSpace(text), "Benchmark") {
			text = ev.Test + " " + text
		}
		if r, ok := parseBenchLine(text); ok {
			out[r.Name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// metric returns a benchmark's value for a unit ("B/op", "allocs/op") and
// whether it was reported (benches run without -benchmem carry neither).
func (r benchResult) metric(unit string) (float64, bool) {
	v, ok := r.Extra[unit]
	return v, ok
}

// fmtMetric renders a metric cell, or an em dash when it was not reported.
func fmtMetric(r benchResult, unit string) string {
	if v, ok := r.metric(unit); ok {
		return fmt.Sprintf("%.0f", v)
	}
	return "—"
}

// deltaCell renders the relative change of a metric present in both runs,
// flagging it when it exceeds threshold percent. It returns the cell text and
// whether it was flagged. Metrics absent on either side render as "—" and
// never flag.
func deltaCell(o, n benchResult, unit string, threshold float64) (string, bool) {
	ov, ook := o.metric(unit)
	nv, nok := n.metric(unit)
	if !ook || !nok {
		return "—", false
	}
	delta := 0.0
	switch {
	case ov > 0:
		delta = (nv - ov) / ov * 100
	case nv > 0:
		// From exactly zero to nonzero: an infinite relative regression —
		// exactly the case the zero-allocation gate exists for.
		return "+∞ ⚠️", true
	}
	if delta > threshold {
		return fmt.Sprintf("%+.1f%% ⚠️", delta), true
	}
	return fmt.Sprintf("%+.1f%%", delta), false
}

// renderDiff writes the markdown comparison of old vs new results: ns/op
// movement plus the allocation columns (B/op, allocs/op) when -benchmem data
// is present. nsThreshold flags wall-time regressions (noisy on shared
// runners); allocThreshold flags allocation growth (deterministic — the
// default 0 flags any increase).
func renderDiff(w *bufio.Writer, oldRes, newRes map[string]benchResult, nsThreshold, allocThreshold float64) {
	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "### Benchmark diff vs previous run\n\n")
	fmt.Fprintf(w, "| benchmark | old ns/op | new ns/op | Δns/op | old B/op | new B/op | ΔB/op | old allocs/op | new allocs/op | Δallocs/op |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	nsRegressions, allocRegressions := 0, 0
	for _, name := range names {
		n := newRes[name]
		o, ok := oldRes[name]
		if !ok {
			fmt.Fprintf(w, "| %s | — | %.0f | new | — | %s | — | — | %s | — |\n",
				name, n.NsPerOp, fmtMetric(n, "B/op"), fmtMetric(n, "allocs/op"))
			continue
		}
		nsDelta := 0.0
		if o.NsPerOp > 0 {
			nsDelta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		nsCell := fmt.Sprintf("%+.1f%%", nsDelta)
		if nsDelta > nsThreshold {
			nsCell += " ⚠️"
			nsRegressions++
		}
		bCell, bFlag := deltaCell(o, n, "B/op", allocThreshold)
		aCell, aFlag := deltaCell(o, n, "allocs/op", allocThreshold)
		if bFlag || aFlag {
			allocRegressions++
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %s | %s | %s | %s | %s | %s | %s |\n",
			name, o.NsPerOp, n.NsPerOp, nsCell,
			fmtMetric(o, "B/op"), fmtMetric(n, "B/op"), bCell,
			fmtMetric(o, "allocs/op"), fmtMetric(n, "allocs/op"), aCell)
	}
	// Benchmarks present only in the old file render as "removed" rows, in
	// sorted order so the table is stable run to run (map iteration is not).
	removed := make([]string, 0)
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "| %s | %.0f | — | removed | %s | — | — | %s | — | — |\n",
			name, oldRes[name].NsPerOp, fmtMetric(oldRes[name], "B/op"), fmtMetric(oldRes[name], "allocs/op"))
	}
	fmt.Fprintf(w, "\n")
	if nsRegressions > 0 {
		fmt.Fprintf(w, "⚠️ %d benchmark(s) regressed more than %.0f%% ns/op — single-iteration CI numbers are noisy; treat as a pointer, not a verdict.\n", nsRegressions, nsThreshold)
	} else {
		fmt.Fprintf(w, "No ns/op regression beyond %.0f%%.\n", nsThreshold)
	}
	if allocRegressions > 0 {
		fmt.Fprintf(w, "⚠️ %d benchmark(s) grew B/op or allocs/op beyond %.0f%% — allocation counts are deterministic, so treat these as real regressions.\n", allocRegressions, allocThreshold)
	} else {
		fmt.Fprintf(w, "No B/op or allocs/op growth beyond %.0f%%.\n", allocThreshold)
	}
}

func main() {
	oldPath := flag.String("old", "", "previous run's bench JSON (missing file → note, exit 0)")
	newPath := flag.String("new", "", "current run's bench JSON (required)")
	threshold := flag.Float64("threshold", 25, "flag ns/op regressions beyond this percentage")
	allocThreshold := flag.Float64("alloc-threshold", 0,
		"flag B/op and allocs/op growth beyond this percentage (allocation counts are deterministic; 0 flags any increase)")
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(1)
	}
	newRes, err := parseStream(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading new results: %v\n", err)
		os.Exit(1)
	}
	if len(newRes) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark results in %s\n", *newPath)
		os.Exit(1)
	}
	var oldRes map[string]benchResult
	if *oldPath != "" {
		oldRes, err = parseStream(*oldPath)
	}
	if *oldPath == "" || err != nil || len(oldRes) == 0 {
		fmt.Fprintf(w, "### Benchmark diff\n\nNo previous bench artifact to diff against (first run, expired artifact, or download failure); recorded %d benchmarks as the new baseline.\n", len(newRes))
		return
	}
	renderDiff(w, oldRes, newRes, *threshold, *allocThreshold)
}
