package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkClusterSyncAsync \t    3000\t     71893 ns/op\t     13958 req/s\t        38.00 syncs\n")
	if !ok {
		t.Fatal("result line must parse")
	}
	if r.Name != "BenchmarkClusterSyncAsync" || r.Iters != 3000 || r.NsPerOp != 71893 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Extra["req/s"] != 13958 || r.Extra["syncs"] != 38 {
		t.Fatalf("extra metrics lost: %+v", r.Extra)
	}
	for _, line := range []string{
		"PASS",
		"ok  \tliveupdate\t0.5s",
		"goos: linux",
		"BenchmarkBroken notanumber 12 ns/op",
		"BenchmarkNoNs 100 3 allocs/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("non-result line parsed: %q", line)
		}
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const streamA = `{"Action":"output","Package":"liveupdate","Output":"BenchmarkServeRequest-8 \t   10000\t    100000 ns/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkGone-8 \t   10000\t    5 ns/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkAlsoGone-8 \t   10000\t    9 ns/op\n"}
{"Action":"pass","Package":"liveupdate"}
`

const streamB = `{"Action":"output","Package":"liveupdate","Output":"BenchmarkServeRequest-8 \t   10000\t    150000 ns/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkFresh-8 \t   10\t    7 ns/op\n"}
not json at all
BenchmarkPlainText-8 	 200 	 42 ns/op
{"Action":"output","Package":"liveupdate","Test":"BenchmarkSplitName","Output":"      10\t     25079 ns/op\t     48151 req/s\n"}
{"Action":"output","Package":"liveupdate","Test":"BenchmarkSplitName","Output":"BenchmarkSplitName\n"}
`

func TestParseStream(t *testing.T) {
	res, err := parseStream(writeTemp(t, "b.json", streamB))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("parsed %d results, want 4 (incl. plain-text and split-name forms): %+v", len(res), res)
	}
	if res["BenchmarkPlainText-8"].NsPerOp != 42 {
		t.Fatalf("plain-text fallback lost: %+v", res)
	}
	// go test -json splits the name (Test field) from the result line; the
	// parser must rejoin them.
	if r := res["BenchmarkSplitName"]; r.NsPerOp != 25079 || r.Extra["req/s"] != 48151 {
		t.Fatalf("split-name result mis-parsed: %+v", r)
	}
}

func TestRenderDiffFlagsRegression(t *testing.T) {
	oldRes, err := parseStream(writeTemp(t, "old.json", streamA))
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := parseStream(writeTemp(t, "new.json", streamB))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	renderDiff(w, oldRes, newRes, 25)
	w.Flush()
	out := sb.String()
	for _, want := range []string{
		"| BenchmarkServeRequest-8 | 100000 | 150000 | +50.0% ⚠️ |",
		"| BenchmarkFresh-8 | — | 7 | new |",
		"| BenchmarkGone-8 | 5 | — | removed |",
		"| BenchmarkAlsoGone-8 | 9 | — | removed |",
		"1 benchmark(s) regressed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	// Removed rows must render in sorted order, not map order: a one-in-two
	// flake here would churn every CI job summary.
	if strings.Index(out, "BenchmarkAlsoGone-8") > strings.Index(out, "BenchmarkGone-8") {
		t.Fatalf("removed rows unsorted:\n%s", out)
	}
}
