package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkClusterSyncAsync \t    3000\t     71893 ns/op\t     13958 req/s\t        38.00 syncs\n")
	if !ok {
		t.Fatal("result line must parse")
	}
	if r.Name != "BenchmarkClusterSyncAsync" || r.Iters != 3000 || r.NsPerOp != 71893 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Extra["req/s"] != 13958 || r.Extra["syncs"] != 38 {
		t.Fatalf("extra metrics lost: %+v", r.Extra)
	}
	for _, line := range []string{
		"PASS",
		"ok  \tliveupdate\t0.5s",
		"goos: linux",
		"BenchmarkBroken notanumber 12 ns/op",
		"BenchmarkNoNs 100 3 allocs/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("non-result line parsed: %q", line)
		}
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const streamA = `{"Action":"output","Package":"liveupdate","Output":"BenchmarkServeRequest-8 \t   10000\t    100000 ns/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkGone-8 \t   10000\t    5 ns/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkAlsoGone-8 \t   10000\t    9 ns/op\n"}
{"Action":"pass","Package":"liveupdate"}
`

const streamB = `{"Action":"output","Package":"liveupdate","Output":"BenchmarkServeRequest-8 \t   10000\t    150000 ns/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkFresh-8 \t   10\t    7 ns/op\n"}
not json at all
BenchmarkPlainText-8 	 200 	 42 ns/op
{"Action":"output","Package":"liveupdate","Test":"BenchmarkSplitName","Output":"      10\t     25079 ns/op\t     48151 req/s\n"}
{"Action":"output","Package":"liveupdate","Test":"BenchmarkSplitName","Output":"BenchmarkSplitName\n"}
`

func TestParseStream(t *testing.T) {
	res, err := parseStream(writeTemp(t, "b.json", streamB))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("parsed %d results, want 4 (incl. plain-text and split-name forms): %+v", len(res), res)
	}
	if res["BenchmarkPlainText-8"].NsPerOp != 42 {
		t.Fatalf("plain-text fallback lost: %+v", res)
	}
	// go test -json splits the name (Test field) from the result line; the
	// parser must rejoin them.
	if r := res["BenchmarkSplitName"]; r.NsPerOp != 25079 || r.Extra["req/s"] != 48151 {
		t.Fatalf("split-name result mis-parsed: %+v", r)
	}
}

func TestRenderDiffFlagsRegression(t *testing.T) {
	oldRes, err := parseStream(writeTemp(t, "old.json", streamA))
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := parseStream(writeTemp(t, "new.json", streamB))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	renderDiff(w, oldRes, newRes, 25, 0)
	w.Flush()
	out := sb.String()
	for _, want := range []string{
		"| BenchmarkServeRequest-8 | 100000 | 150000 | +50.0% ⚠️ | — | — | — | — | — | — |",
		"| BenchmarkFresh-8 | — | 7 | new | — | — | — | — | — | — |",
		"| BenchmarkGone-8 | 5 | — | removed | — | — | — | — | — | — |",
		"| BenchmarkAlsoGone-8 | 9 | — | removed | — | — | — | — | — | — |",
		"1 benchmark(s) regressed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	// Removed rows must render in sorted order, not map order: a one-in-two
	// flake here would churn every CI job summary.
	if strings.Index(out, "BenchmarkAlsoGone-8") > strings.Index(out, "BenchmarkGone-8") {
		t.Fatalf("removed rows unsorted:\n%s", out)
	}
}

// Allocation-column streams: old has -benchmem data, new moves B/op and
// allocs/op in both directions.
const streamAllocOld = `{"Action":"output","Package":"liveupdate","Output":"BenchmarkHot-8 \t 1000\t 100 ns/op\t 2048 B/op\t 10 allocs/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkCold-8 \t 1000\t 100 ns/op\t 512 B/op\t 4 allocs/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkZero-8 \t 1000\t 50 ns/op\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkNoMem-8 \t 1000\t 70 ns/op\n"}
`

const streamAllocNew = `{"Action":"output","Package":"liveupdate","Output":"BenchmarkHot-8 \t 1000\t 90 ns/op\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkCold-8 \t 1000\t 110 ns/op\t 1024 B/op\t 6 allocs/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkZero-8 \t 1000\t 50 ns/op\t 16 B/op\t 1 allocs/op\n"}
{"Action":"output","Package":"liveupdate","Output":"BenchmarkNoMem-8 \t 1000\t 70 ns/op\n"}
`

// TestParseBenchLineAllocColumns: -benchmem columns land in Extra under their
// unit names, where the diff renderer finds them.
func TestParseBenchLineAllocColumns(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkHot-8 \t 1000\t 100 ns/op\t 2048 B/op\t 10 allocs/op")
	if !ok {
		t.Fatal("benchmem line must parse")
	}
	if r.Extra["B/op"] != 2048 || r.Extra["allocs/op"] != 10 {
		t.Fatalf("alloc metrics lost: %+v", r.Extra)
	}
}

// TestRenderDiffAllocColumns: improvements render unflagged, any allocation
// growth is flagged (default 0% threshold), zero→nonzero flags as +∞, and
// benches without -benchmem data render em dashes without flagging.
func TestRenderDiffAllocColumns(t *testing.T) {
	oldRes, err := parseStream(writeTemp(t, "old.json", streamAllocOld))
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := parseStream(writeTemp(t, "new.json", streamAllocNew))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	renderDiff(w, oldRes, newRes, 25, 0)
	w.Flush()
	out := sb.String()
	for _, want := range []string{
		// Improvement: negative deltas, no flags.
		"| BenchmarkHot-8 | 100 | 90 | -10.0% | 2048 | 0 | -100.0% | 10 | 0 | -100.0% |",
		// Growth: flagged in both allocation columns.
		"| BenchmarkCold-8 | 100 | 110 | +10.0% | 512 | 1024 | +100.0% ⚠️ | 4 | 6 | +50.0% ⚠️ |",
		// Zero → nonzero: infinite relative growth.
		"| BenchmarkZero-8 | 50 | 50 | +0.0% | 0 | 16 | +∞ ⚠️ | 0 | 1 | +∞ ⚠️ |",
		// No -benchmem data: dashes, no flags.
		"| BenchmarkNoMem-8 | 70 | 70 | +0.0% | — | — | — | — | — | — |",
		"2 benchmark(s) grew B/op or allocs/op",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output missing %q:\n%s", want, out)
		}
	}
	// A generous alloc threshold unflags the 50-100% growth but keeps the
	// zero→nonzero case flagged.
	sb.Reset()
	w = bufio.NewWriter(&sb)
	renderDiff(w, oldRes, newRes, 25, 150)
	w.Flush()
	out = sb.String()
	if !strings.Contains(out, "| BenchmarkCold-8 | 100 | 110 | +10.0% | 512 | 1024 | +100.0% | 4 | 6 | +50.0% |") {
		t.Fatalf("alloc threshold not applied:\n%s", out)
	}
	if !strings.Contains(out, "1 benchmark(s) grew B/op or allocs/op") {
		t.Fatalf("zero→nonzero must stay flagged at any threshold:\n%s", out)
	}
}
