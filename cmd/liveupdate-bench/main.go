// Command liveupdate-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	liveupdate-bench -exp fig14            # one experiment, full fidelity
//	liveupdate-bench -exp all -quick       # everything, reduced samples
//	liveupdate-bench -exp all -concurrency 4  # experiments in parallel
//	liveupdate-bench -exp syncpipe -sync-mode barrier  # fleet serving, one sync mode
//	liveupdate-bench -exp elastic -chaos "@2s kill 1; @4s replace 1"  # custom churn
//	liveupdate-bench -list                 # show available experiment ids
//
// Exit status: 0 on success, 1 when an experiment fails, 2 when emitting
// results fails (e.g. a closed or full output pipe) — results that cannot
// be written are results that were never delivered, so write errors are
// checked and fatal rather than silently dropped.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"liveupdate"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig3a..fig19, table2, table3) or 'all'")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	quick := flag.Bool("quick", false, "reduced sample counts (smoke run)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	concurrency := flag.Int("concurrency", 1,
		"experiments to run in parallel (output order stays deterministic)")
	syncMode := flag.String("sync-mode", "",
		fmt.Sprintf("restrict fleet-serving experiments (syncpipe, elastic) to one sync propagation mode %v; empty runs their defaults", liveupdate.SyncModes()))
	chaosScript := flag.String("chaos", "",
		"override the elastic experiment's built-in membership schedule, e.g. \"@2s kill 1; @4s replace 1; @6s scale 6\"")
	batch := flag.Int("batch", 0,
		"lane-coalescing batch size for the fleet-serving experiments (syncpipe, elastic); 0 = unbatched")
	topology := flag.String("topology", "",
		fmt.Sprintf("restrict the syncscale experiment to one sync collective topology %v; empty sweeps all", liveupdate.SyncTopologies()))
	delta := flag.Bool("delta", false, "bill delta syncs (only changed rows/factors) in the fleet-serving experiments")
	compress := flag.Int("compress", 0, "flate level for sync payload pricing in the fleet-serving experiments (0 = off, 1-9)")
	quant := flag.String("quant", "",
		fmt.Sprintf("restrict the kernels experiment's AUC gate to one quantized mode %v (empty gates all quantized modes)", liveupdate.Quantizations()))
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile after the run to this file (go tool pprof)")
	flag.Parse()

	if *concurrency < 1 {
		fmt.Fprintf(os.Stderr, "liveupdate-bench: -concurrency must be >= 1, got %d\n", *concurrency)
		os.Exit(1)
	}
	if *syncMode != "" {
		valid := false
		for _, m := range liveupdate.SyncModes() {
			if *syncMode == string(m) {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "liveupdate-bench: -sync-mode must be one of %v, got %q\n",
				liveupdate.SyncModes(), *syncMode)
			os.Exit(1)
		}
	}
	if *chaosScript != "" {
		if _, err := liveupdate.ParseChaosScript(*chaosScript); err != nil {
			fmt.Fprintf(os.Stderr, "liveupdate-bench: -chaos: %v\n", err)
			os.Exit(1)
		}
	}
	if *batch < 0 {
		fmt.Fprintf(os.Stderr, "liveupdate-bench: -batch must be non-negative, got %d\n", *batch)
		os.Exit(1)
	}
	// The fleet-scale sync flags follow the usage-then-exit-2 convention:
	// a bad value prints the flag table so the valid domain is in view.
	usagef := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "liveupdate-bench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *topology != "" {
		valid := false
		for _, t := range liveupdate.SyncTopologies() {
			if *topology == string(t) {
				valid = true
			}
		}
		if !valid {
			usagef("-topology must be one of %v, got %q", liveupdate.SyncTopologies(), *topology)
		}
	}
	if *compress < 0 || *compress > 9 {
		usagef("-compress must be in [0,9], got %d", *compress)
	}
	if _, err := liveupdate.ParseQuantization(*quant); err != nil {
		usagef("-quant must be one of %v, got %q", liveupdate.Quantizations(), *quant)
	}
	// Profiling brackets the experiment runs themselves; stopProfiles is
	// called explicitly (not deferred) right after the experiments finish, so
	// the fatal os.Exit paths of result emission cannot truncate a profile.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "liveupdate-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "liveupdate-bench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	stopProfiles := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "liveupdate-bench: closing CPU profile: %v\n", err)
			}
			cpuFile = nil
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "liveupdate-bench: -memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle: profile retained memory, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "liveupdate-bench: writing heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "liveupdate-bench: closing heap profile: %v\n", err)
			}
		}
	}

	// All result emission goes through one checked writer: a write error
	// (closed pipe, full disk) must surface as a non-zero exit, not be
	// ignored sample by sample.
	out := bufio.NewWriter(os.Stdout)
	emit := func(format string, args ...any) {
		if _, err := fmt.Fprintf(out, format, args...); err != nil {
			fmt.Fprintf(os.Stderr, "liveupdate-bench: writing results: %v\n", err)
			os.Exit(2)
		}
	}
	flush := func() {
		if err := out.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "liveupdate-bench: flushing results: %v\n", err)
			os.Exit(2)
		}
	}

	if *list {
		stopProfiles() // nothing to profile; close cleanly
		for _, id := range liveupdate.ExperimentIDs() {
			emit("%s\n", id)
		}
		flush()
		return
	}

	ids := liveupdate.ExperimentIDs()
	if *exp != "all" {
		ids = []string{*exp}
	}

	// Run experiments (optionally in parallel), then emit in id order so the
	// report layout is independent of scheduling.
	type result struct {
		out     string
		seconds float64
		err     error
	}
	results := make([]result, len(ids))
	sem := make(chan struct{}, *concurrency)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			out, err := liveupdate.RunExperimentWith(id, liveupdate.ExperimentConfig{
				Seed:         *seed,
				Quick:        *quick,
				SyncMode:     liveupdate.SyncMode(*syncMode),
				ChaosScript:  *chaosScript,
				BatchSize:    *batch,
				Topology:     liveupdate.SyncTopology(*topology),
				DeltaSync:    *delta,
				Compression:  *compress,
				Quantization: liveupdate.Quantization(*quant),
			})
			results[i] = result{out: out, seconds: time.Since(start).Seconds(), err: err}
		}(i, id)
	}
	wg.Wait()
	stopProfiles()

	failed := 0
	for i, id := range ids {
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, r.err)
			failed++
			continue
		}
		emit("%s", r.out)
		emit("(%s in %.1fs)\n\n", id, r.seconds)
	}
	flush()
	if failed > 0 {
		os.Exit(1)
	}
}
