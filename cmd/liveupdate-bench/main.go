// Command liveupdate-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	liveupdate-bench -exp fig14            # one experiment, full fidelity
//	liveupdate-bench -exp all -quick       # everything, reduced samples
//	liveupdate-bench -list                 # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"liveupdate"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig3a..fig19, table2, table3) or 'all'")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	quick := flag.Bool("quick", false, "reduced sample counts (smoke run)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range liveupdate.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := liveupdate.ExperimentIDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		out, err := liveupdate.RunExperiment(id, *seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(out)
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
