// Command liveupdate-serve runs a LiveUpdate serving fleet (one node by
// default) on a synthetic stream and reports live serving/freshness
// statistics.
//
// Usage:
//
//	liveupdate-serve -profile criteo -requests 20000 -report 5000
//	liveupdate-serve -replicas 4 -router hash -sync 30s
//	liveupdate-serve -replicas 4 -concurrency 8          # parallel load driver
//	liveupdate-serve -replicas 4 -sync-mode barrier      # legacy stop-the-world syncs
//	liveupdate-serve -replicas 4 -chaos "@2s kill 1; @4s replace 1; @6s scale 6"
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"liveupdate"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "liveupdate-serve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	profileName := flag.String("profile", "criteo", "dataset profile (avazu, criteo, bd-tb, ...)")
	requests := flag.Int("requests", 20000, "requests to serve")
	report := flag.Int("report", 5000, "print statistics every N requests (0 = final report only)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	replicas := flag.Int("replicas", 1, "fleet size (1 = single node)")
	router := flag.String("router", string(liveupdate.RoundRobinRouter),
		fmt.Sprintf("routing policy for -replicas > 1 %v", liveupdate.RouterPolicies()))
	syncEvery := flag.Duration("sync", 5*time.Second,
		"virtual-time interval between fleet LoRA syncs (0 disables)")
	syncMode := flag.String("sync-mode", string(liveupdate.SyncModeAsync),
		fmt.Sprintf("fleet sync propagation %v: async pipelines snapshot→merge→publish off the serving path, barrier stops the world", liveupdate.SyncModes()))
	noTrain := flag.Bool("no-train", false, "disable the co-located trainer (Only-Infer mode)")
	noIsolation := flag.Bool("no-isolation", false, "disable NUMA scheduling and reuse (naive co-location)")
	concurrency := flag.Int("concurrency", 1,
		"client goroutines driving the fleet (1 = plain sequential loop; virtual-time stats are identical either way)")
	batch := flag.Int("batch", 1,
		"serving batch size: driver lanes coalesce up to this many queued same-shard requests into one zero-allocation batched serve call (virtual-time stats are identical to -batch 1)")
	chaosScript := flag.String("chaos", "",
		"membership-event schedule applied at virtual timestamps while serving, e.g. \"@2s kill 1; @4s replace 1; @6s scale 6\" (actions: kill/replace/leave <slot>, join, scale <n>; needs -replicas > 1)")
	flag.Parse()

	// Validate flags up front so bad values produce an error, not a panic
	// (e.g. -report used to divide by zero).
	if *requests <= 0 {
		fatalf("-requests must be positive, got %d", *requests)
	}
	if *report < 0 {
		fatalf("-report must be non-negative, got %d", *report)
	}
	if *replicas < 1 {
		fatalf("-replicas must be >= 1, got %d", *replicas)
	}
	if *syncEvery < 0 {
		fatalf("-sync must be non-negative, got %v", *syncEvery)
	}
	if *concurrency < 1 {
		fatalf("-concurrency must be >= 1, got %d", *concurrency)
	}
	if *batch < 1 {
		fatalf("-batch must be >= 1, got %d", *batch)
	}

	var chaos liveupdate.ChaosSchedule
	if *chaosScript != "" {
		var err error
		if chaos, err = liveupdate.ParseChaosScript(*chaosScript); err != nil {
			fatalf("%v", err)
		}
		if *replicas < 2 {
			fatalf("-chaos needs a fleet: set -replicas > 1")
		}
	}

	profile, err := liveupdate.ProfileByName(*profileName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []liveupdate.Option{
		liveupdate.WithProfile(profile),
		liveupdate.WithSeed(*seed),
		liveupdate.WithReplicas(*replicas),
		liveupdate.WithRouter(liveupdate.RouterPolicy(*router)),
		liveupdate.WithSyncEvery(*syncEvery),
		liveupdate.WithSyncMode(liveupdate.SyncMode(*syncMode)),
		liveupdate.WithTraining(!*noTrain),
		liveupdate.WithIsolation(!*noIsolation),
	}
	if len(chaos) > 0 {
		opts = append(opts, liveupdate.WithChaos(chaos))
	}
	srv, err := liveupdate.New(opts...)
	if err != nil {
		fatalf("%v", err)
	}
	gen := liveupdate.NewWorkload(profile, *seed^0x5e)

	fmt.Printf("liveupdate-serve %s: profile=%s replicas=%d router=%s sync-mode=%s training=%v isolation=%v concurrency=%d batch=%d\n",
		liveupdate.Version, profile.Name, *replicas, *router, *syncMode, !*noTrain, !*noIsolation, *concurrency, *batch)
	if len(chaos) > 0 {
		fmt.Printf("chaos schedule: %s\n", chaos)
	}
	fmt.Printf("%-10s %-10s %-12s %-12s %-14s %-8s %-12s %-12s\n",
		"served", "P99(ms)", "violations", "trainSteps", "loraOverhead", "syncs", "syncBytes", "virtTime(s)")
	printStats := func(st liveupdate.Stats) {
		fmt.Printf("%-10d %-10.3f %-12.4f %-12d %-14.4f %-8d %-12d %-12.2f\n",
			st.Served, st.P99*1000, st.ViolationRate, st.TrainSteps,
			st.MemoryOverhead, st.Syncs, st.SyncBytes, st.VirtualTime)
	}
	if *concurrency == 1 && len(chaos) == 0 && *batch <= 1 {
		for i := 1; i <= *requests; i++ {
			if _, err := srv.Serve(gen.Next()); err != nil {
				fatalf("serve: %v", err)
			}
			if (*report > 0 && i%*report == 0) || i == *requests {
				printStats(srv.Stats())
			}
		}
	} else {
		var lastPrinted uint64 // written under Drive's serialized OnProgress, read after it returns
		rep, err := liveupdate.Drive(srv, gen, liveupdate.DriveConfig{
			Requests:      *requests,
			Concurrency:   *concurrency,
			BatchSize:     *batch,
			Seed:          *seed,
			ProgressEvery: *report,
			OnProgress: func(served uint64) {
				lastPrinted = served
				printStats(srv.Stats())
			},
		})
		if err != nil {
			fatalf("drive: %v", err)
		}
		if lastPrinted != rep.Served {
			printStats(srv.Stats())
		}
		fmt.Printf("\ndrive: %d workers over %d shard(s): %d req in %v wall (%.0f req/s wall, %.0f req/s virtual)\n",
			rep.Workers, rep.Shards, rep.Served, rep.Elapsed.Round(time.Millisecond), rep.QPS, rep.VirtualQPS)
		if rep.BatchSize > 1 && rep.Batches > 0 {
			fmt.Printf("batching: cap %d, %d serve calls, %.2f req/call mean\n",
				rep.BatchSize, rep.Batches, float64(rep.Served)/float64(rep.Batches))
		}
		for _, ws := range rep.PerWorker {
			fmt.Printf("  worker %-3d shards=%-8v served=%-8d busy=%-12v meanLat=%.3fms\n",
				ws.Worker, ws.Shards, ws.Served, ws.Busy.Round(time.Millisecond), ws.MeanLatency*1000)
		}
		if len(chaos) > 0 {
			fmt.Printf("\nchaos: %d/%d events applied\n", len(rep.Chaos), len(chaos))
			for _, ae := range rep.Chaos {
				fmt.Printf("  %-24s → request %-7d virtual %.3fs\n", ae.Event, ae.Request, ae.Virtual)
			}
			if rep.ChaosSkipped > 0 {
				fmt.Printf("  (%d events skipped: trace ended before their timestamps)\n", rep.ChaosSkipped)
			}
		}
	}
	if st := srv.Stats(); len(st.Replicas) > 0 {
		fmt.Println("\nper-replica breakdown:")
		fmt.Printf("  %-8s %-10s %-10s %-12s %-12s %-12s\n",
			"replica", "served", "P99(ms)", "violations", "trainSteps", "virtTime(s)")
		for i, rs := range st.Replicas {
			fmt.Printf("  %-8d %-10d %-10.3f %-12.4f %-12d %-12.2f\n",
				i, rs.Served, rs.P99*1000, rs.ViolationRate, rs.TrainSteps, rs.VirtualTime)
		}
		fmt.Printf("\nfleet sync (%s): %d syncs, %d payload bytes, %.4f virtual s (%.4f compute + %.4f publish)\n",
			*syncMode, st.Syncs, st.SyncBytes, st.SyncSeconds, st.SyncComputeSeconds, st.SyncPublishSeconds)
		if st.Joins+st.Leaves+st.Fails > 0 {
			fmt.Printf("fleet membership: %d active, %d joins, %d leaves, %d fails; catch-up %d bytes in %.4f virtual s\n",
				st.Members, st.Joins, st.Leaves, st.Fails, st.CatchUpBytes, st.CatchUpSeconds)
		}
	}
}
