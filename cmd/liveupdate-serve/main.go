// Command liveupdate-serve runs a single co-located LiveUpdate node on a
// synthetic stream and reports live serving/freshness statistics.
//
// Usage:
//
//	liveupdate-serve -profile criteo -requests 20000 -report 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"liveupdate"
)

func main() {
	profileName := flag.String("profile", "criteo", "dataset profile (avazu, criteo, bd-tb, ...)")
	requests := flag.Int("requests", 20000, "requests to serve")
	report := flag.Int("report", 5000, "print statistics every N requests")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	noTrain := flag.Bool("no-train", false, "disable the co-located trainer (Only-Infer mode)")
	noIsolation := flag.Bool("no-isolation", false, "disable NUMA scheduling and reuse (naive co-location)")
	flag.Parse()

	profile, err := liveupdate.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := liveupdate.DefaultOptions(profile, *seed)
	opts.EnableTraining = !*noTrain
	if *noIsolation {
		opts.EnableScheduling = false
		opts.EnableReuse = false
	}
	sys, err := liveupdate.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := liveupdate.NewWorkload(profile, *seed^0x5e)

	fmt.Printf("liveupdate-serve %s: profile=%s training=%v isolation=%v\n",
		liveupdate.Version, profile.Name, opts.EnableTraining, opts.EnableScheduling)
	fmt.Printf("%-10s %-10s %-12s %-12s %-14s %-12s\n",
		"served", "P99(ms)", "violations", "trainSteps", "loraOverhead", "virtTime(s)")
	for i := 1; i <= *requests; i++ {
		sys.Serve(gen.Next())
		if i%*report == 0 || i == *requests {
			fmt.Printf("%-10d %-10.3f %-12.4f %-12d %-14.4f %-12.2f\n",
				i,
				sys.Node.P99()*1000,
				sys.Node.ViolationRate(),
				sys.TrainSteps(),
				sys.MemoryOverhead(),
				sys.Clock.Now())
		}
	}
}
