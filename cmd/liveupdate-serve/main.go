// Command liveupdate-serve runs a LiveUpdate serving fleet (one node by
// default) on a synthetic stream and reports live serving/freshness
// statistics. With -listen it instead exposes the fleet over TCP for a
// second process to drive; with -connect it is that second process, driving
// a remote fleet through the wire client.
//
// Usage:
//
//	liveupdate-serve -profile criteo -requests 20000 -report 5000
//	liveupdate-serve -replicas 4 -router hash -sync 30s
//	liveupdate-serve -replicas 4 -concurrency 8          # parallel load driver
//	liveupdate-serve -replicas 4 -sync-mode barrier      # legacy stop-the-world syncs
//	liveupdate-serve -replicas 4 -chaos "@2s kill 1; @4s replace 1; @6s scale 6"
//	liveupdate-serve -replicas 8 -topology tree -delta -compress 6  # hierarchical sync billing
//
//	liveupdate-serve -replicas 4 -listen :7070 -queue-depth 32   # process 1: serve the wire
//	liveupdate-serve -connect localhost:7070 -conns 8 -batch 8   # process 2: drive it
//
//	liveupdate-serve -telemetry -trace-out spans.json            # stage table + Perfetto trace
//	liveupdate-serve -listen :7070 -telemetry -pprof             # live /metrics, /debug/vars, /trace, /debug/pprof/
//
//	liveupdate-serve -listen :7070 -fault-plan "reset(p=0.05);latency(p=0.2,max=5ms)" -fault-seed 7
//	                                                             # deterministic wire chaos; clients must retry through it
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"liveupdate"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "liveupdate-serve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	profileName := flag.String("profile", "criteo", "dataset profile (avazu, criteo, bd-tb, ...)")
	requests := flag.Int("requests", 20000, "requests to serve")
	report := flag.Int("report", 5000, "print statistics every N requests (0 = final report only)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	replicas := flag.Int("replicas", 1, "fleet size (1 = single node)")
	router := flag.String("router", string(liveupdate.RoundRobinRouter),
		fmt.Sprintf("routing policy for -replicas > 1 %v", liveupdate.RouterPolicies()))
	syncEvery := flag.Duration("sync", 5*time.Second,
		"virtual-time interval between fleet LoRA syncs (0 disables)")
	syncMode := flag.String("sync-mode", string(liveupdate.SyncModeAsync),
		fmt.Sprintf("fleet sync propagation %v: async pipelines snapshot→merge→publish off the serving path, barrier stops the world", liveupdate.SyncModes()))
	topology := flag.String("topology", string(liveupdate.SyncTopologyFlat),
		fmt.Sprintf("sync collective topology %v: flat is the N² all-gather, ring/tree are hierarchical (~N·log N wire bill; merged state is identical)", liveupdate.SyncTopologies()))
	deltaSync := flag.Bool("delta", false,
		"bill delta syncs: only rows/factors whose epoch changed since the peer's last acked generation count against the wire")
	compress := flag.Int("compress", 0,
		"flate level for sync payload pricing: trades compress cpu-seconds for wire-bytes (0 = off, 1-9)")
	quant := flag.String("quant", "",
		fmt.Sprintf("published inference weight format %v: int8/f16 quantize the dense MLPs at publish time, training stays float64", liveupdate.Quantizations()))
	noTrain := flag.Bool("no-train", false, "disable the co-located trainer (Only-Infer mode)")
	noIsolation := flag.Bool("no-isolation", false, "disable NUMA scheduling and reuse (naive co-location)")
	concurrency := flag.Int("concurrency", 1,
		"client goroutines driving the fleet (1 = plain sequential loop; virtual-time stats are identical either way)")
	batch := flag.Int("batch", 1,
		"serving batch size: driver lanes coalesce up to this many queued same-shard requests into one zero-allocation batched serve call (virtual-time stats are identical to -batch 1)")
	chaosScript := flag.String("chaos", "",
		"membership-event schedule applied at virtual timestamps while serving, e.g. \"@2s kill 1; @4s replace 1; @6s scale 6\" (actions: kill/replace/leave <slot>, join, scale <n>; needs -replicas > 1)")
	listen := flag.String("listen", "",
		"server mode: expose the fleet on this TCP address (e.g. :7070) instead of driving it locally; serves until SIGINT/SIGTERM, then prints final statistics")
	connect := flag.String("connect", "",
		"client mode: drive a remote fleet at this address through the wire client instead of building one locally")
	conns := flag.Int("conns", 4, "client mode: parallel wire connections (client-side driver lanes)")
	maxConns := flag.Int("max-conns", 0,
		"server mode: max simultaneously accepted TCP connections (0 = default 256)")
	maxInflight := flag.Int("max-inflight", 0,
		"server mode: max wire requests served concurrently (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0,
		"server mode: admission queue depth; arrivals past it are shed with 429 (0 = default 64)")
	slaBudget := flag.Duration("sla-budget", 0,
		"server mode: shed arrivals whose predicted queueing delay exceeds this budget (0 = disabled)")
	drainTimeout := flag.Duration("drain-timeout", 0,
		"server mode: graceful-shutdown grace for in-flight and queued requests before force-close (0 = default 5s)")
	faultPlanStr := flag.String("fault-plan", "",
		"server mode: arm deterministic network chaos on every accepted connection, e.g. \"latency(p=0.2,min=1ms,max=20ms);reset(p=0.05)\" (classes: latency, reset, blackhole, truncate, corrupt; empty = off)")
	faultSeed := flag.Uint64("fault-seed", 1,
		"server mode: seed for -fault-plan; the same seed replays the same per-connection fault sequence")
	telemetry := flag.Bool("telemetry", false,
		"attach the telemetry layer: fleet metrics registry plus sampled per-request stage tracing; prints a stage latency table after a local drive, and with -listen exports GET /metrics, /debug/vars, /trace")
	traceSample := flag.Int("trace-sample", 1,
		"telemetry: trace 1 in N requests per stage (1 = every request, 0 = metrics only); implies nothing without -telemetry")
	traceOut := flag.String("trace-out", "",
		"telemetry: write the span ring as Chrome trace-event JSON to this file at exit (load at ui.perfetto.dev); implies -telemetry")
	pprofFlag := flag.Bool("pprof", false,
		"telemetry server mode: expose net/http/pprof under /debug/pprof/ (debug surface, off by default); implies -telemetry")
	flag.Parse()

	// Validate flags up front so bad values produce an error, not a panic
	// (e.g. -report used to divide by zero).
	if *requests <= 0 {
		fatalf("-requests must be positive, got %d", *requests)
	}
	if *listen != "" && *connect != "" {
		fatalf("-listen and -connect are mutually exclusive: a process is either the server or the client")
	}
	if (*listen != "" || *connect != "") && *chaosScript != "" {
		fatalf("-chaos drives membership at deterministic virtual-time drain points; the wire path is wall-clock and cannot honor them")
	}
	if *connect != "" && *conns < 1 {
		fatalf("-conns must be >= 1, got %d", *conns)
	}
	if *traceOut != "" || *pprofFlag {
		*telemetry = true
	}
	if *telemetry && *connect != "" {
		fatalf("-telemetry instruments the serving process; in -connect mode set it on the -listen side and scrape its /metrics")
	}
	if *traceSample < 0 {
		fatalf("-trace-sample must be non-negative, got %d", *traceSample)
	}
	if *report < 0 {
		fatalf("-report must be non-negative, got %d", *report)
	}
	if *replicas < 1 {
		fatalf("-replicas must be >= 1, got %d", *replicas)
	}
	if *syncEvery < 0 {
		fatalf("-sync must be non-negative, got %v", *syncEvery)
	}
	if *concurrency < 1 {
		fatalf("-concurrency must be >= 1, got %d", *concurrency)
	}
	if *batch < 1 {
		fatalf("-batch must be >= 1, got %d", *batch)
	}
	// The fleet-scale sync flags follow the usage-then-exit-2 convention: a
	// bad value prints the flag table so the valid domain is in view.
	usagef := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "liveupdate-serve: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	validTopology := false
	for _, t := range liveupdate.SyncTopologies() {
		if *topology == string(t) {
			validTopology = true
		}
	}
	if !validTopology {
		usagef("-topology must be one of %v, got %q", liveupdate.SyncTopologies(), *topology)
	}
	if *compress < 0 || *compress > 9 {
		usagef("-compress must be in [0,9], got %d", *compress)
	}
	if _, err := liveupdate.ParseQuantization(*quant); err != nil {
		usagef("-quant must be one of %v, got %q", liveupdate.Quantizations(), *quant)
	}
	faultPlan, err := liveupdate.ParseFaultPlan(*faultPlanStr)
	if err != nil {
		usagef("-fault-plan: %v", err)
	}
	faultPlan.Seed = *faultSeed
	if faultPlan.Enabled() && *listen == "" {
		fatalf("-fault-plan injects faults on the wire: set -listen")
	}
	if *drainTimeout < 0 {
		fatalf("-drain-timeout must be non-negative, got %v", *drainTimeout)
	}
	if *drainTimeout > 0 && *listen == "" {
		fatalf("-drain-timeout shapes the wire gateway's graceful shutdown: set -listen")
	}

	var chaos liveupdate.ChaosSchedule
	if *chaosScript != "" {
		var err error
		if chaos, err = liveupdate.ParseChaosScript(*chaosScript); err != nil {
			fatalf("%v", err)
		}
		if *replicas < 2 {
			fatalf("-chaos needs a fleet: set -replicas > 1")
		}
	}

	if *connect != "" {
		runClient(*connect, clientConfig{
			conns:       *conns,
			requests:    *requests,
			report:      *report,
			seed:        *seed,
			concurrency: *concurrency,
			batch:       *batch,
			profile:     *profileName,
		})
		return
	}

	profile, err := liveupdate.ProfileByName(*profileName)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []liveupdate.Option{
		liveupdate.WithProfile(profile),
		liveupdate.WithSeed(*seed),
		liveupdate.WithReplicas(*replicas),
		liveupdate.WithRouter(liveupdate.RouterPolicy(*router)),
		liveupdate.WithSyncEvery(*syncEvery),
		liveupdate.WithSyncMode(liveupdate.SyncMode(*syncMode)),
		liveupdate.WithSyncTopology(liveupdate.SyncTopology(*topology)),
		liveupdate.WithDeltaSync(*deltaSync),
		liveupdate.WithCompression(*compress),
		liveupdate.WithTraining(!*noTrain),
		liveupdate.WithIsolation(!*noIsolation),
		liveupdate.WithQuantization(liveupdate.Quantization(*quant)),
	}
	if len(chaos) > 0 {
		opts = append(opts, liveupdate.WithChaos(chaos))
	}
	if *telemetry {
		opts = append(opts, liveupdate.WithTelemetry(liveupdate.TelemetryConfig{
			SampleEvery: *traceSample,
			Pprof:       *pprofFlag,
		}))
	}

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatalf("%v", err)
		}
		opts = append(opts,
			liveupdate.WithListener(ln),
			liveupdate.WithAdmission(liveupdate.AdmissionConfig{
				MaxConns:     *maxConns,
				MaxInflight:  *maxInflight,
				QueueDepth:   *queueDepth,
				SLABudget:    *slaBudget,
				DrainTimeout: *drainTimeout,
			}))
		if faultPlan.Enabled() {
			opts = append(opts, liveupdate.WithFaultInjection(faultPlan))
		}
		srv, err := liveupdate.New(opts...)
		if err != nil {
			ln.Close()
			fatalf("%v", err)
		}
		runServer(srv.(*liveupdate.Gateway), *replicas, *telemetry, *pprofFlag, *traceOut, faultPlan)
		return
	}

	srv, err := liveupdate.New(opts...)
	if err != nil {
		fatalf("%v", err)
	}
	gen := liveupdate.NewWorkload(profile, *seed^0x5e)

	fmt.Printf("liveupdate-serve %s: profile=%s replicas=%d router=%s sync-mode=%s training=%v isolation=%v concurrency=%d batch=%d\n",
		liveupdate.Version, profile.Name, *replicas, *router, *syncMode, !*noTrain, !*noIsolation, *concurrency, *batch)
	if len(chaos) > 0 {
		fmt.Printf("chaos schedule: %s\n", chaos)
	}
	fmt.Printf("%-10s %-10s %-12s %-12s %-14s %-8s %-12s %-12s\n",
		"served", "P99(ms)", "violations", "trainSteps", "loraOverhead", "syncs", "syncBytes", "virtTime(s)")
	printStats := func(st liveupdate.Stats) {
		fmt.Printf("%-10d %-10.3f %-12.4f %-12d %-14.4f %-8d %-12d %-12.2f\n",
			st.Served, st.P99*1000, st.ViolationRate, st.TrainSteps,
			st.MemoryOverhead, st.Syncs, st.SyncBytes, st.VirtualTime)
	}
	// With telemetry on, even a single-worker run goes through Drive so the
	// report carries the sampled stage breakdown (virtual-time stats are
	// identical either way).
	if *concurrency == 1 && len(chaos) == 0 && *batch <= 1 && !*telemetry {
		for i := 1; i <= *requests; i++ {
			if _, err := srv.Serve(gen.Next()); err != nil {
				fatalf("serve: %v", err)
			}
			if (*report > 0 && i%*report == 0) || i == *requests {
				printStats(srv.Stats())
			}
		}
	} else {
		var lastPrinted uint64 // written under Drive's serialized OnProgress, read after it returns
		rep, err := liveupdate.Drive(srv, gen, liveupdate.DriveConfig{
			Requests:      *requests,
			Concurrency:   *concurrency,
			BatchSize:     *batch,
			Seed:          *seed,
			ProgressEvery: *report,
			OnProgress: func(served uint64) {
				lastPrinted = served
				printStats(srv.Stats())
			},
		})
		if err != nil {
			fatalf("drive: %v", err)
		}
		if lastPrinted != rep.Served {
			printStats(srv.Stats())
		}
		fmt.Printf("\ndrive: %d workers over %d shard(s): %d req in %v wall (%.0f req/s wall, %.0f req/s virtual)\n",
			rep.Workers, rep.Shards, rep.Served, rep.Elapsed.Round(time.Millisecond), rep.QPS, rep.VirtualQPS)
		if rep.BatchSize > 1 && rep.Batches > 0 {
			fmt.Printf("batching: cap %d, %d serve calls, %.2f req/call mean\n",
				rep.BatchSize, rep.Batches, float64(rep.Served)/float64(rep.Batches))
		}
		for _, ws := range rep.PerWorker {
			fmt.Printf("  worker %-3d shards=%-8v served=%-8d busy=%-12v meanLat=%.3fms\n",
				ws.Worker, ws.Shards, ws.Served, ws.Busy.Round(time.Millisecond), ws.MeanLatency*1000)
		}
		if len(chaos) > 0 {
			fmt.Printf("\nchaos: %d/%d events applied\n", len(rep.Chaos), len(chaos))
			for _, ae := range rep.Chaos {
				fmt.Printf("  %-24s → request %-7d virtual %.3fs\n", ae.Event, ae.Request, ae.Virtual)
			}
			if rep.ChaosSkipped > 0 {
				fmt.Printf("  (%d events skipped: trace ended before their timestamps)\n", rep.ChaosSkipped)
			}
		}
		printStageTable(rep.Stages, *traceSample)
	}
	if st := srv.Stats(); len(st.Replicas) > 0 {
		fmt.Println("\nper-replica breakdown:")
		fmt.Printf("  %-8s %-10s %-10s %-12s %-12s %-12s\n",
			"replica", "served", "P99(ms)", "violations", "trainSteps", "virtTime(s)")
		for i, rs := range st.Replicas {
			fmt.Printf("  %-8d %-10d %-10.3f %-12.4f %-12d %-12.2f\n",
				i, rs.Served, rs.P99*1000, rs.ViolationRate, rs.TrainSteps, rs.VirtualTime)
		}
		fmt.Printf("\nfleet sync (%s/%s): %d syncs, %d payload bytes, %d wire bytes, %.4f virtual s (%.4f compute + %.4f publish)\n",
			*syncMode, st.SyncTopology, st.Syncs, st.SyncBytes, st.SyncWireBytes,
			st.SyncSeconds, st.SyncComputeSeconds, st.SyncPublishSeconds)
		if st.SyncDeltaSavedBytes != 0 || st.SyncCompressSavedBytes != 0 {
			fmt.Printf("fleet sync savings: delta %d bytes, compression %d bytes for %.4f compress s\n",
				st.SyncDeltaSavedBytes, st.SyncCompressSavedBytes, st.SyncCompressSeconds)
		}
		if st.Joins+st.Leaves+st.Fails > 0 {
			fmt.Printf("fleet membership: %d active, %d joins, %d leaves, %d fails; catch-up %d bytes in %.4f virtual s\n",
				st.Members, st.Joins, st.Leaves, st.Fails, st.CatchUpBytes, st.CatchUpSeconds)
		}
	}
	dumpTrace(srv, *traceOut)
}

// printStageTable renders the drive's sampled per-stage wall-clock latency
// breakdown (empty unless the Server was built with tracing enabled).
func printStageTable(stages []liveupdate.DriveStageStat, sampleEvery int) {
	if len(stages) == 0 {
		return
	}
	fmt.Printf("\nstage breakdown (wall clock, 1 in %d sampled):\n  %-14s %-10s %-12s %-12s\n",
		sampleEvery, "stage", "spans", "total(ms)", "mean(µs)")
	for _, ss := range stages {
		fmt.Printf("  %-14s %-10d %-12.3f %-12.3f\n",
			ss.Stage, ss.Count, float64(ss.TotalNs)/1e6, ss.MeanNs/1e3)
	}
}

// dumpTrace writes the span ring as Chrome trace-event JSON (Perfetto-
// loadable). A Server without telemetry, or an empty path, is a no-op.
func dumpTrace(srv liveupdate.Server, path string) {
	if path == "" {
		return
	}
	tel := liveupdate.ServerTelemetry(srv)
	if tel == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("-trace-out: %v", err)
	}
	if err := tel.WriteTrace(f); err != nil {
		f.Close()
		fatalf("-trace-out: writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("-trace-out: %v", err)
	}
	fmt.Printf("\ntelemetry trace written to %s (load at ui.perfetto.dev)\n", path)
}

// runServer is -listen mode: the gateway is already accepting; hold the
// process open until SIGINT/SIGTERM, then print the final statistics —
// including the wire admission ledger — and shut down gracefully.
func runServer(gw *liveupdate.Gateway, replicas int, telemetry, pprofOn bool, traceOut string, faultPlan liveupdate.FaultPlan) {
	fmt.Printf("liveupdate-serve %s: listening on %s (replicas=%d)\n",
		liveupdate.Version, gw.Addr(), replicas)
	fmt.Println("drive me from another process: liveupdate-serve -connect", gw.Addr())
	if faultPlan.Enabled() {
		fmt.Printf("fault injection armed (seed %d): %s\n", faultPlan.Seed, faultPlan)
	}
	if telemetry {
		extra := ""
		if pprofOn {
			extra = " /debug/pprof/"
		}
		fmt.Printf("observability: GET /metrics /debug/vars /trace%s (never shed by admission)\n", extra)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	st := gw.Stats()
	fmt.Printf("\nfinal: served=%d P99=%.3fms violations=%.4f trainSteps=%d virtTime=%.2fs\n",
		st.Served, st.P99*1000, st.ViolationRate, st.TrainSteps, st.VirtualTime)
	printWireTable(st.Wire)
	dumpTrace(gw, traceOut)
	if err := gw.Close(); err != nil {
		fatalf("shutdown: %v", err)
	}
}

// clientConfig carries the -connect mode knobs.
type clientConfig struct {
	conns       int
	requests    int
	report      int
	seed        uint64
	concurrency int
	batch       int
	profile     string // fallback when the server's handshake has no profile
}

// runClient is -connect mode: dial the remote gateway (retrying briefly so a
// just-started server wins the race), synthesize the workload the server
// advertises, and pump it through the wire with the same concurrent driver
// used in-process.
func runClient(addr string, cfg clientConfig) {
	var remote *liveupdate.RemoteServer
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		remote, err = liveupdate.Dial(addr, liveupdate.DialConfig{Conns: cfg.conns})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	defer remote.Close()

	profileName := remote.Info().Profile
	if profileName == "" {
		profileName = cfg.profile
	}
	profile, err := liveupdate.ProfileByName(profileName)
	if err != nil {
		fatalf("resolving remote profile: %v", err)
	}
	gen := liveupdate.NewWorkload(profile, cfg.seed^0x5e)

	fmt.Printf("liveupdate-serve %s: driving %s (profile=%s server-replicas=%d) with %d conns, %d workers, batch %d\n",
		liveupdate.Version, addr, profile.Name, remote.Info().Replicas, cfg.conns, cfg.concurrency, cfg.batch)

	rep, err := liveupdate.Drive(remote, gen, liveupdate.DriveConfig{
		Requests:      cfg.requests,
		Concurrency:   cfg.concurrency,
		BatchSize:     cfg.batch,
		Seed:          cfg.seed,
		ProgressEvery: cfg.report,
		OnProgress: func(served uint64) {
			fmt.Printf("  %d/%d served, %d sheds absorbed\n", served, cfg.requests, remote.Shed429())
		},
	})
	if err != nil {
		fatalf("drive: %v", err)
	}

	fmt.Printf("\ndrive: %d workers over %d wire lane(s): %d req in %v wall (%.0f req/s wall)\n",
		rep.Workers, rep.Shards, rep.Served, rep.Elapsed.Round(time.Millisecond), rep.QPS)
	if rep.BatchSize > 1 && rep.Batches > 0 {
		fmt.Printf("batching: cap %d, %d wire calls, %.2f req/call mean\n",
			rep.BatchSize, rep.Batches, float64(rep.Served)/float64(rep.Batches))
	}
	st, err := remote.FetchStats()
	if err != nil {
		fatalf("fetching final stats: %v", err)
	}
	fmt.Printf("server: served=%d P99=%.3fms violations=%.4f trainSteps=%d virtTime=%.2fs\n",
		st.Served, st.P99*1000, st.ViolationRate, st.TrainSteps, st.VirtualTime)
	printWireTable(st.Wire)

	var accepted, shed uint64
	for _, ep := range st.Wire {
		accepted += ep.Accepted
		shed += ep.Shed
	}
	// One greppable line for scripts (CI asserts on it): totals across
	// endpoints, plus the client's view of the sheds and faults it retried
	// through and the requests it abandoned (gaveup must be 0 for a drive
	// that returned without error).
	fmt.Printf("wire-total: accepted=%d shed=%d client-retries=%d transport-retries=%d gaveup=%d retry-wait=%s\n",
		accepted, shed, remote.Shed429(), remote.TransportRetries(), remote.GaveUp(),
		remote.RetryWait().Round(time.Millisecond))
}

// printWireTable renders the per-endpoint admission ledger.
func printWireTable(eps []liveupdate.EndpointStats) {
	if len(eps) == 0 {
		return
	}
	fmt.Printf("wire admission:\n  %-12s %-10s %-8s %-9s %-7s\n", "endpoint", "accepted", "shed", "inflight", "queued")
	for _, ep := range eps {
		fmt.Printf("  %-12s %-10d %-8d %-9d %-7d\n", ep.Endpoint, ep.Accepted, ep.Shed, ep.Inflight, ep.Queued)
	}
}
