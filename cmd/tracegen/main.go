// Command tracegen emits a synthetic drifting CTR trace as CSV for
// inspection or external tooling.
//
// Usage:
//
//	tracegen -profile bd-tb -n 1000 > trace.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"liveupdate"
)

// usagef reports a flag-validation error the conventional way: the message,
// then usage, then exit code 2 (the flag package's own bad-flag exit code).
func usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	profileName := flag.String("profile", "criteo", "dataset profile")
	n := flag.Int("n", 1000, "samples to generate")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	windowSec := flag.Float64("window", 300, "virtual seconds spanned by the trace")
	flag.Parse()

	if flag.NArg() > 0 {
		usagef("unexpected arguments %q (output goes to stdout; redirect it)", flag.Args())
	}
	if *n <= 0 {
		usagef("-n must be positive, got %d", *n)
	}
	if *windowSec < 0 || *windowSec != *windowSec {
		usagef("-window must be a non-negative number of virtual seconds, got %v", *windowSec)
	}
	profile, err := liveupdate.ProfileByName(*profileName)
	if err != nil {
		usagef("%v", err)
	}
	gen := liveupdate.NewWorkload(profile, *seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	// Header: time, label, dense features, per-table id lists.
	fmt.Fprint(w, "time,label")
	for i := 0; i < profile.NumDense; i++ {
		fmt.Fprintf(w, ",dense%d", i)
	}
	for t := 0; t < profile.NumTables; t++ {
		fmt.Fprintf(w, ",table%d", t)
	}
	fmt.Fprintln(w)

	for _, s := range gen.Batch(*n, *windowSec) {
		fmt.Fprintf(w, "%.3f,%d", s.Time, s.Label)
		for _, d := range s.Dense {
			fmt.Fprintf(w, ",%.5f", d)
		}
		for _, ids := range s.Sparse {
			parts := make([]string, len(ids))
			for i, id := range ids {
				parts[i] = fmt.Sprintf("%d", id)
			}
			fmt.Fprintf(w, ",%s", strings.Join(parts, ";"))
		}
		fmt.Fprintln(w)
	}
}
