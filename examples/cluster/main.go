// Cluster: multi-node serving with LoRA synchronization (paper §II-C, §IV-E,
// Fig 19), entirely through the public liveupdate API. Four replica nodes
// share one base checkpoint; the hash router shards requests by embedding
// locality, so each replica trains its adapters on a disjoint slice of the
// id space; the periodic sparse priority-merge sync (Algorithm 3 over a tree
// AllGather) reconciles them, and every replica converges to identical
// effective embeddings — the replica-consistency requirement of §II-C.
package main

import (
	"fmt"
	"time"

	"liveupdate"
)

func main() {
	profile, err := liveupdate.ProfileByName("criteo")
	if err != nil {
		panic(err)
	}
	profile.NumTables = 3
	profile.TableSize = 500
	profile.NumDense = 4
	profile.MultiHot = []int{1, 1, 1}

	srv, err := liveupdate.New(
		liveupdate.WithProfile(profile),
		liveupdate.WithSeed(11),
		liveupdate.WithReplicas(4),
		liveupdate.WithRouter(liveupdate.HashRouter),
		liveupdate.WithSyncEvery(0), // sync manually below to show the before/after
	)
	if err != nil {
		panic(err)
	}
	fleet := srv.(*liveupdate.Cluster)

	// Serve a shard-routed stream; each replica's co-located trainer only
	// sees the requests the router sends it.
	gen := liveupdate.NewWorkload(profile, 23)
	for i := 0; i < 2000; i++ {
		if _, err := srv.Serve(gen.Next()); err != nil {
			panic(err)
		}
	}
	fmt.Println("Multi-node LoRA sync (Algorithm 3 + tree AllGather)")
	fmt.Printf("  consistent before sync: %v (disjoint shards diverge)\n",
		fleet.ReplicasConsistent(50))

	// Synchronize: priority merge + tree AllGather on a 100 GbE fabric.
	stats, err := fleet.SyncNow()
	if err != nil {
		panic(err)
	}
	fmt.Printf("  nodes:            %d\n", stats.Participants)
	fmt.Printf("  rows merged:      %d\n", stats.RowsMerged)
	fmt.Printf("  write conflicts:  %d (resolved max-rank-wins)\n", stats.Conflicts)
	fmt.Printf("  payload:          %d bytes\n", stats.PayloadBytes)
	fmt.Printf("  replica consistency: %v (identical outputs for identical inputs)\n",
		fleet.ReplicasConsistent(50))

	// The merged fleet snapshot: true cross-replica P99 plus sync costs.
	st := srv.Stats()
	fmt.Println("\nMerged fleet stats")
	fmt.Printf("  served:        %d across %d replicas (router %s)\n",
		st.Served, len(st.Replicas), fleet.RouterName())
	fmt.Printf("  fleet P99:     %.3f ms (violation rate %.4f)\n", st.P99*1000, st.ViolationRate)
	fmt.Printf("  train steps:   %d\n", st.TrainSteps)
	fmt.Printf("  sync cost:     %d bytes in %.4f virtual s\n", st.SyncBytes, st.SyncSeconds)
	for i, rs := range st.Replicas {
		fmt.Printf("    replica %d: served %4d  P99 %.3f ms  train %d\n",
			i, rs.Served, rs.P99*1000, rs.TrainSteps)
	}

	// A fleet with the periodic sync left on: syncs ride the virtual clock.
	auto, err := liveupdate.New(
		liveupdate.WithProfile(profile),
		liveupdate.WithReplicas(4),
		liveupdate.WithRouter(liveupdate.HashRouter),
		liveupdate.WithSyncEvery(2*time.Second),
	)
	if err != nil {
		panic(err)
	}
	gen2 := liveupdate.NewWorkload(profile, 29)
	for i := 0; i < 2000; i++ {
		if _, err := auto.Serve(gen2.Next()); err != nil {
			panic(err)
		}
	}
	ast := auto.Stats()
	fmt.Printf("\nPeriodic sync every 2s of virtual time: %d syncs in %.2f virtual s\n",
		ast.Syncs, ast.VirtualTime)
	fmt.Println("(replicas legally diverge again between syncs — the paper's short-term")
	fmt.Println(" local tier; each sync restores fleet-wide consistency)")
}
