// Cluster: multi-node LoRA synchronization (paper §IV-E and Fig 19). Four
// replica nodes train adapters on disjoint request shards; the sparse
// priority-merge protocol (Algorithm 3) reconciles them over a tree
// AllGather, and every replica converges to identical effective embeddings —
// the replica-consistency requirement of §II-C.
package main

import (
	"fmt"

	"liveupdate/internal/collective"
	"liveupdate/internal/dlrm"
	"liveupdate/internal/emt"
	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

func main() {
	const nodes = 4
	profile := trace.Profiles()["criteo"]
	profile.NumTables = 3
	profile.TableSize = 500
	profile.NumDense = 4
	profile.MultiHot = []int{1, 1, 1}

	// Shared base model + EMT (every node serves the same checkpoint).
	rng := tensor.NewRNG(11)
	model := dlrm.MustNewModel(dlrm.ConfigForProfile(profile), rng)
	base := emt.NewGroup(profile.NumTables, profile.TableSize, profile.EmbeddingDim, rng)

	replicas := make([]*lora.Set, nodes)
	for i := range replicas {
		cfg := lora.DefaultConfig(profile.TableSize, profile.EmbeddingDim)
		cfg.Seed = uint64(i)
		// In multi-node mode the LoRA rank is coordinated globally (rank
		// changes ride the hourly full sync); independent per-replica rank
		// adaptation would make the A·B factors structurally incompatible
		// at merge time (Algorithm 3 exchanges factor rows, not ∆W).
		cfg.DisableRankAdapt = true
		replicas[i] = lora.MustNewSet(base.Clone(), cfg)
	}

	// Each node trains on its shard of the stream.
	gen := trace.MustNewGenerator(profile, 23)
	for i := 0; i < 2000; i++ {
		s := gen.Next()
		rep := replicas[i%nodes]
		var cache dlrm.ForwardCache
		logit := model.Forward(rep, s.Dense, s.Sparse, &cache)
		dLogit := dlrm.Sigmoid(logit) - float64(s.Label)
		dEmb := model.Backward(dLogit, &cache)
		model.Bottom.ZeroGrad()
		model.Top.ZeroGrad()
		for t, g := range dEmb {
			rep.ApplyGrad(t, s.Sparse[t], g, 0.05)
		}
	}

	// Synchronize: priority merge + tree AllGather on a 100 GbE fabric.
	clock := simnet.NewClock()
	sg := collective.NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	stats, err := sg.Sync(clock)
	if err != nil {
		panic(err)
	}
	fmt.Println("Multi-node LoRA sync (Algorithm 3 + tree AllGather)")
	fmt.Printf("  nodes:            %d\n", stats.Participants)
	fmt.Printf("  rows merged:      %d\n", stats.RowsMerged)
	fmt.Printf("  write conflicts:  %d (resolved max-rank-wins)\n", stats.Conflicts)
	fmt.Printf("  payload:          %d bytes\n", stats.PayloadBytes)
	fmt.Printf("  virtual time:     %.4f s\n", clock.Now())

	// Verify replica consistency on a few hot rows.
	consistent := true
	probe := make([]float64, profile.EmbeddingDim)
	ref := make([]float64, profile.EmbeddingDim)
	for table := 0; table < profile.NumTables; table++ {
		for id := int32(0); id < 50; id++ {
			replicas[0].EffectiveRow(table, id, ref)
			for r := 1; r < nodes; r++ {
				replicas[r].EffectiveRow(table, id, probe)
				for d := range ref {
					if probe[d] != ref[d] {
						consistent = false
					}
				}
			}
		}
	}
	fmt.Printf("  replica consistency: %v (identical outputs for identical inputs)\n", consistent)

	// The Fig 19 scaling story: tree AllGather keeps sync time log-like.
	fmt.Println("\nSync time vs cluster size (1 TB total LoRA payload, 100 GbE):")
	for _, n := range []int{2, 4, 8, 16, 32, 48} {
		perNode := int64(1<<40) / int64(n)
		t := collective.AllGatherTime(n, perNode, 100e9/8, 0.005)
		fmt.Printf("  %2d nodes: %6.1f s (%d rounds)\n", n, t, collective.AllGatherRounds(n))
	}
}
