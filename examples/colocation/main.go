// Colocation: the QoS story of paper Fig 16. Run the same co-located
// serving+training workload under four isolation configurations and compare
// tail latency and cache behaviour — naive co-location breaches the SLA,
// NUMA-aware scheduling plus embedding-vector reuse restore it.
package main

import (
	"fmt"

	"liveupdate"
)

func main() {
	profile, err := liveupdate.ProfileByName("bd-tb")
	if err != nil {
		panic(err)
	}
	profile.NumTables = 4
	profile.TableSize = 600
	profile.NumDense = 8
	profile.MultiHot = []int{1, 1, 1, 2}

	type config struct {
		name                   string
		training, sched, reuse bool
	}
	configs := []config{
		{"Only Infer (floor)", false, false, false},
		{"w/o Opt (naive)", true, false, false},
		{"w/ Scheduling", true, true, false},
		{"w/ Reuse+Scheduling", true, true, true},
	}

	fmt.Println("Performance isolation ablation (paper Fig 16)")
	fmt.Printf("%-22s %-10s %-12s %-12s %-12s\n",
		"config", "P99(ms)", "violations", "train_hit", "infer_hit")

	for _, c := range configs {
		sys, err := liveupdate.New(
			liveupdate.WithProfile(profile),
			liveupdate.WithSeed(21),
			liveupdate.WithSystemOptions(func(o *liveupdate.Options) {
				o.EnableTraining = c.training
				o.EnableScheduling = c.sched
				o.EnableReuse = c.reuse
				// Scaled hardware so contention is visible on demo-sized
				// tables.
				o.Node.GPUDenseTime = 0.001
				o.Machine.L3BlocksPerCCD = 48
				o.Machine.DRAMBandwidth = 1e7
				o.Machine.Concurrency = 32
				o.TrainInterval = 4
			}),
		)
		if err != nil {
			panic(err)
		}
		gen := liveupdate.NewWorkload(profile, 77)
		for i := 0; i < 3000; i++ {
			if _, err := sys.Serve(gen.Next()); err != nil {
				panic(err)
			}
		}
		st := sys.Stats()
		fmt.Printf("%-22s %-10.3f %-12.4f %-12.3f %-12.3f\n",
			c.name, st.P99*1000, st.ViolationRate,
			st.TrainingHitRatio, st.InferenceHitRatio)
	}
	fmt.Println("\nExpected shape: naive co-location inflates P99 well above the")
	fmt.Println("floor; scheduling isolates the caches; reuse removes the trainer's")
	fmt.Println("DRAM traffic — together P99 returns near the inference-only floor.")
}
