// Drive: the concurrent load driver. A 4-replica fleet is pumped by 8
// client goroutines; independent replicas serve in parallel while the
// periodic LoRA priority-merge sync barriers the fleet on its virtual-time
// cadence. The punchline is the last block: a second, single-goroutine
// drive over an identical fleet reproduces the exact same virtual-time
// statistics — parallelism changes wall-clock throughput, never results.
package main

import (
	"fmt"
	"time"

	"liveupdate"
)

func buildFleet(profile liveupdate.Profile) liveupdate.Server {
	srv, err := liveupdate.New(
		liveupdate.WithProfile(profile),
		liveupdate.WithSeed(11),
		liveupdate.WithReplicas(4),
		liveupdate.WithRouter(liveupdate.HashRouter),
		liveupdate.WithSyncEvery(5*time.Second),
	)
	if err != nil {
		panic(err)
	}
	return srv
}

func main() {
	profile, err := liveupdate.ProfileByName("criteo")
	if err != nil {
		panic(err)
	}
	profile.NumTables = 3
	profile.TableSize = 500
	profile.NumDense = 4
	profile.MultiHot = []int{1, 1, 1}

	const requests = 20000

	srv := buildFleet(profile)
	rep, err := liveupdate.Drive(srv, liveupdate.NewWorkload(profile, 11), liveupdate.DriveConfig{
		Requests:    requests,
		Concurrency: 8,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("drove %d requests with %d workers over %d replicas\n",
		rep.Served, rep.Workers, rep.Shards)
	fmt.Printf("  wall clock: %v (%.0f req/s)\n", rep.Elapsed.Round(time.Millisecond), rep.QPS)
	fmt.Printf("  virtual:    %.2fs (%.0f req/s), P99 %.3f ms, %d syncs\n",
		rep.VirtualTime, rep.VirtualQPS, rep.Final.P99*1000, rep.Final.Syncs)
	for _, ws := range rep.PerWorker {
		fmt.Printf("  worker %d: shards %v, served %d, busy %v\n",
			ws.Worker, ws.Shards, ws.Served, ws.Busy.Round(time.Millisecond))
	}

	// Same fleet, same workload, one worker: identical virtual-time results.
	seq, err := liveupdate.Drive(buildFleet(profile), liveupdate.NewWorkload(profile, 11),
		liveupdate.DriveConfig{Requests: requests, Concurrency: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	a, b := rep.Final, seq.Final
	fmt.Printf("\n8 workers vs 1 worker: served %d/%d, violations %d/%d, syncs %d/%d, P99 %.6f/%.6f ms\n",
		a.Served, b.Served, a.Violations, b.Violations, a.Syncs, b.Syncs, a.P99*1000, b.P99*1000)
	if a.Served == b.Served && a.Violations == b.Violations && a.Syncs == b.Syncs && a.P99 == b.P99 {
		fmt.Println("virtual-time results are identical regardless of worker count ✓")
	}
}
