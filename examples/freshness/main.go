// Freshness: compare the paper's update strategies on a drifting stream —
// the Table III experiment in miniature. A training cluster stays fresh; an
// inference replica follows it via NoUpdate, DeltaUpdate, QuickUpdate, or
// LiveUpdate, and we measure the AUC each strategy actually serves.
package main

import (
	"fmt"

	"liveupdate"
)

func main() {
	profile, err := liveupdate.ProfileByName("criteo")
	if err != nil {
		panic(err)
	}
	profile.TableSize = 600
	profile.DriftRate = 0.6 // pronounced drift: freshness matters

	const (
		pretrain = 4  // warmup windows before evaluation
		windows  = 12 // one hour of 5-minute windows
	)

	fmt.Println("Strategy comparison (1 hour, 10-min updates, hourly full sync)")
	fmt.Printf("%-22s %-10s %-14s %-8s\n", "strategy", "meanAUC", "bytes_shipped", "syncs")

	var baseline float64
	for _, k := range []liveupdate.StrategyKind{
		liveupdate.DeltaUpdate,
		liveupdate.NoUpdate,
		liveupdate.QuickUpdate,
		liveupdate.LiveUpdate,
	} {
		cfg := liveupdate.NewComparison(profile, k, 7)
		cfg.SamplesPerWindow = 400
		res, err := liveupdate.RunComparison(cfg, pretrain, windows)
		if err != nil {
			panic(err)
		}
		if k == liveupdate.DeltaUpdate {
			baseline = res.MeanAUC
		}
		fmt.Printf("%-22s %-10.4f %-14d %-8d", k.String(), res.MeanAUC, res.Bytes, res.Syncs+res.FullSyncs)
		if k != liveupdate.DeltaUpdate {
			fmt.Printf("  (%+.2f vs Delta)", (res.MeanAUC-baseline)*100)
		}
		if k == liveupdate.LiveUpdate {
			fmt.Printf("  LoRA overhead %.2f%%", res.LoRAOverhead*100)
		}
		fmt.Println()
	}

	// The paper-scale cost of the same schedules (Fig 14 arithmetic).
	tb, _ := liveupdate.ProfileByName("bd-tb")
	cm := liveupdate.NewCostModel(tb)
	fmt.Println("\nPaper-scale hourly update cost at 5-min frequency (BD-TB, 50 TB):")
	for _, k := range []liveupdate.StrategyKind{
		liveupdate.DeltaUpdate, liveupdate.QuickUpdate, liveupdate.LiveUpdate,
	} {
		fmt.Printf("  %-14s %6.1f min\n", k.String(), cm.HourlyCost(k, 300)/60)
	}
}
