// Quickstart: build a LiveUpdate server, serve a drifting CTR stream, and
// watch the co-located LoRA trainer keep the model fresh at near-zero
// serving overhead.
package main

import (
	"fmt"

	"liveupdate"
)

func main() {
	// 1. Pick a dataset profile (paper Table II) and shrink it for a demo.
	profile, err := liveupdate.ProfileByName("criteo")
	if err != nil {
		panic(err)
	}
	profile.TableSize = 1000

	// 2. Build the full system: serving + co-located LoRA trainer with
	// NUMA-aware isolation and embedding-vector reuse.
	srv, err := liveupdate.New(liveupdate.WithProfile(profile), liveupdate.WithSeed(42))
	if err != nil {
		panic(err)
	}

	// 3. Serve a synthetic stream whose ground truth drifts over time.
	gen := liveupdate.NewWorkload(profile, 42)
	const requests = 5000
	for i := 0; i < requests; i++ {
		if _, err := srv.Serve(gen.Next()); err != nil {
			panic(err)
		}
	}

	// 4. Inspect the outcome: tail latency, training activity, memory cost.
	st := srv.Stats()
	fmt.Println("LiveUpdate quickstart")
	fmt.Printf("  requests served:        %d\n", st.Served)
	fmt.Printf("  P99 latency:            %.3f ms (SLA %.0f ms)\n", st.P99*1000, st.SLA*1000)
	fmt.Printf("  SLA violation rate:     %.4f\n", st.ViolationRate)
	fmt.Printf("  co-located train steps: %d\n", st.TrainSteps)
	fmt.Printf("  LoRA memory overhead:   %.2f%% of EMTs\n", st.MemoryOverhead*100)
	fmt.Println("  (demo tables are tiny, so the resident hot set is a larger share;")
	fmt.Println("   at production scale the same pruning yields <2% — see fig17)")
	fmt.Printf("  virtual time elapsed:   %.1f s\n", st.VirtualTime)
	fmt.Printf("  active LoRA rows:       %d (rank %d)\n", st.LoRAHotRows, st.LoRARank)
}
