// Quickstart: build a LiveUpdate system, serve a drifting CTR stream, and
// watch the co-located LoRA trainer keep the model fresh at near-zero
// serving overhead.
package main

import (
	"fmt"

	"liveupdate"
)

func main() {
	// 1. Pick a dataset profile (paper Table II) and shrink it for a demo.
	profile, err := liveupdate.ProfileByName("criteo")
	if err != nil {
		panic(err)
	}
	profile.TableSize = 1000

	// 2. Build the full system: serving + co-located LoRA trainer with
	// NUMA-aware isolation and embedding-vector reuse.
	sys, err := liveupdate.New(liveupdate.DefaultOptions(profile, 42))
	if err != nil {
		panic(err)
	}

	// 3. Serve a synthetic stream whose ground truth drifts over time.
	gen := liveupdate.NewWorkload(profile, 42)
	const requests = 5000
	for i := 0; i < requests; i++ {
		sys.Serve(gen.Next())
	}

	// 4. Inspect the outcome: tail latency, training activity, memory cost.
	fmt.Println("LiveUpdate quickstart")
	fmt.Printf("  requests served:        %d\n", sys.Node.Served())
	fmt.Printf("  P99 latency:            %.3f ms (SLA %.0f ms)\n",
		sys.Node.P99()*1000, sys.Opts.Node.SLA*1000)
	fmt.Printf("  SLA violation rate:     %.4f\n", sys.Node.ViolationRate())
	fmt.Printf("  co-located train steps: %d\n", sys.TrainSteps())
	fmt.Printf("  LoRA memory overhead:   %.2f%% of EMTs\n", sys.MemoryOverhead()*100)
	fmt.Println("  (demo tables are tiny, so the resident hot set is a larger share;")
	fmt.Println("   at production scale the same pruning yields <2% — see fig17)")
	fmt.Printf("  virtual time elapsed:   %.1f s\n", sys.Clock.Now())

	active := 0
	for _, a := range sys.LoRA.Adapters {
		active += a.ActiveCount()
	}
	fmt.Printf("  active LoRA rows:       %d (rank %d)\n",
		active, sys.LoRA.Adapters[0].Rank())
}
