module liveupdate

go 1.22
