package liveupdate

// End-to-end freshness test: the core claim of the paper, exercised through
// the public API only. A node serving a drifting stream WITH the co-located
// LoRA trainer must sustain higher late-run AUC than an identical node with
// training disabled (pure staleness), at comparable tail latency.

import (
	"testing"

	"liveupdate/internal/metrics"
)

func TestEndToEndFreshnessRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p := smallProfile(t)
	p.DriftRate = 2.0 // strong drift over the test horizon

	type outcome struct {
		lateAUC float64
		p99     float64
	}
	run := func(training bool) outcome {
		sys, err := New(
			WithProfile(p),
			WithSeed(11),
			WithTraining(training),
			WithSystemOptions(func(o *Options) {
				o.TrainInterval = 2
				o.TrainBatch = 16
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
		gen := NewWorkload(p, 13)

		const total = 6000
		var scores []float64
		var labels []int
		for i := 0; i < total; i++ {
			s := gen.Next()
			resp, err := sys.Serve(s)
			if err != nil {
				t.Fatal(err)
			}
			// Advance virtual workload time so drift accumulates.
			gen.Advance(1.5)
			if i >= total/2 { // score only the late half, after drift
				scores = append(scores, resp.Prob)
				labels = append(labels, s.Label)
			}
		}
		return outcome{
			lateAUC: metrics.AUC(scores, labels),
			p99:     sys.Stats().P99,
		}
	}

	stale := run(false)
	fresh := run(true)
	if fresh.lateAUC <= stale.lateAUC {
		t.Fatalf("co-located training must preserve accuracy under drift: fresh %.4f vs stale %.4f",
			fresh.lateAUC, stale.lateAUC)
	}
	// Isolation keeps the latency cost of freshness near zero.
	if fresh.p99 > stale.p99*1.5 {
		t.Fatalf("freshness must be near-zero-overhead: P99 %.4f vs %.4f", fresh.p99, stale.p99)
	}
}
