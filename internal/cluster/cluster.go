// Package cluster runs a fleet of LiveUpdate replicas behind one serving
// front door (paper §II-C and §IV-E): N core.Systems share a common base
// checkpoint, a Router spreads requests across them, and a periodic
// priority-merge synchronization (Algorithm 3 over the tree AllGather of
// internal/collective) reconciles the per-replica LoRA adapters so every
// replica converges to identical effective embeddings — the paper's
// replica-consistency requirement.
package cluster

import (
	"fmt"
	"time"

	"liveupdate/internal/collective"
	"liveupdate/internal/core"
	"liveupdate/internal/lora"
	"liveupdate/internal/metrics"
	"liveupdate/internal/simnet"
	"liveupdate/internal/trace"
)

// Config describes a replica fleet.
type Config struct {
	// Base configures each replica. All replicas are built from the same
	// options (same seed → same base checkpoint); local rank adaptation is
	// force-disabled because Algorithm 3 exchanges factor rows, which
	// requires a fleet-wide common rank (rank changes ride the full sync).
	Base core.Options

	// Replicas is the fleet size (≥ 1).
	Replicas int

	// Router picks the serving replica per request. Defaults to round-robin.
	Router Router

	// SyncEvery is the virtual-time interval between LoRA priority-merge
	// syncs, measured on the fleet-max clock. Zero disables periodic syncs
	// (SyncNow remains available).
	SyncEvery time.Duration

	// BandwidthBps and LatencySec describe the sync fabric links. Zero
	// values default to 100 GbE / 1 ms.
	BandwidthBps float64
	LatencySec   float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Replicas < 1 {
		return fmt.Errorf("cluster: Replicas must be >= 1, got %d", c.Replicas)
	}
	if c.SyncEvery < 0 {
		return fmt.Errorf("cluster: SyncEvery must be non-negative")
	}
	if c.BandwidthBps < 0 || c.LatencySec < 0 {
		return fmt.Errorf("cluster: link parameters must be non-negative")
	}
	return c.Base.Validate()
}

// Cluster is a fleet of replica Systems behind a Router. It implements the
// same Serve/Stats surface as a single core.System, so callers can scale
// from one node to a fleet without changing the serving loop.
type Cluster struct {
	cfg      Config
	replicas []*core.System
	router   Router
	sync     *collective.SyncGroup

	// syncClock accumulates virtual time spent inside priority-merge syncs,
	// separate from the replicas' serving clocks.
	syncClock *simnet.Clock
	lastSync  float64 // fleet-max clock at the previous periodic sync
}

// New builds the fleet: Replicas identical Systems from cfg.Base (shared
// base checkpoint), wired into one SyncGroup.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Router == nil {
		cfg.Router = &roundRobinRouter{}
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = simnet.Gbps100
	}
	if cfg.LatencySec == 0 {
		cfg.LatencySec = 0.001
	}
	c := &Cluster{cfg: cfg, router: cfg.Router, syncClock: simnet.NewClock()}
	sets := make([]*lora.Set, cfg.Replicas)
	for i := range sets {
		opts := cfg.Base
		// All replicas must hold structurally compatible LoRA factors for
		// the merge; see Config.Base.
		opts.LoRA.DisableRankAdapt = true
		sys, err := core.New(opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		c.replicas = append(c.replicas, sys)
		sets[i] = sys.LoRA
	}
	c.sync = collective.NewSyncGroup(sets, cfg.BandwidthBps, cfg.LatencySec)
	return c, nil
}

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.replicas) }

// Replica exposes one replica System (read-mostly: experiments and tests).
func (c *Cluster) Replica(i int) *core.System { return c.replicas[i] }

// RouterName returns the active routing policy's name.
func (c *Cluster) RouterName() string { return c.router.Name() }

// Serve routes one request to a replica, serves it there (including that
// replica's co-located training tick), and runs a periodic LoRA sync when
// the fleet clock has advanced past the configured interval.
func (c *Cluster) Serve(s trace.Sample) (core.Response, error) {
	i := c.router.Route(s, c.replicas)
	if i < 0 || i >= len(c.replicas) {
		return core.Response{}, fmt.Errorf("cluster: router %s picked replica %d of %d",
			c.router.Name(), i, len(c.replicas))
	}
	resp, err := c.replicas[i].Serve(s)
	if err != nil {
		return resp, err
	}
	resp.Replica = i
	if d := c.cfg.SyncEvery.Seconds(); d > 0 && c.fleetClock()-c.lastSync >= d {
		if _, err := c.SyncNow(); err != nil {
			return resp, err
		}
	}
	return resp, nil
}

// fleetClock returns the most advanced replica clock — the fleet's wall
// time under concurrent serving.
func (c *Cluster) fleetClock() float64 {
	max := 0.0
	for _, r := range c.replicas {
		if t := r.Clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// SyncNow runs one LoRA priority-merge synchronization across the fleet
// (Algorithm 3 + tree AllGather) and returns its merge statistics. After it
// returns, every replica holds identical adapter state.
func (c *Cluster) SyncNow() (collective.MergeStats, error) {
	stats, err := c.sync.Sync(c.syncClock)
	if err != nil {
		return stats, fmt.Errorf("cluster: sync failed: %w", err)
	}
	c.lastSync = c.fleetClock()
	return stats, nil
}

// ReplicasConsistent verifies the §II-C invariant: for the first idsPerTable
// ids of every table, all replicas produce identical effective embedding
// rows (base + LoRA delta). It is meaningful right after a sync.
func (c *Cluster) ReplicasConsistent(idsPerTable int) bool {
	if len(c.replicas) < 2 {
		return true
	}
	p := c.cfg.Base.Profile
	ref := make([]float64, p.EmbeddingDim)
	probe := make([]float64, p.EmbeddingDim)
	for table := 0; table < p.NumTables; table++ {
		n := int32(idsPerTable)
		if int(n) > p.TableSize {
			n = int32(p.TableSize)
		}
		for id := int32(0); id < n; id++ {
			c.replicas[0].LoRA.EffectiveRow(table, id, ref)
			for r := 1; r < len(c.replicas); r++ {
				c.replicas[r].LoRA.EffectiveRow(table, id, probe)
				for d := range ref {
					if probe[d] != ref[d] {
						return false
					}
				}
			}
		}
	}
	return true
}

// Stats returns the merged fleet snapshot: exact sums for counters, a true
// fleet-wide P99/P50 computed over the union of the replicas' latency
// windows (not an average of per-replica quantiles), and the per-replica
// breakdown in Replicas.
func (c *Cluster) Stats() core.Stats {
	merged := core.Stats{
		Syncs:       0,
		VirtualTime: c.fleetClock(),
	}
	syncs, bytes, seconds := c.sync.Stats()
	merged.Syncs = syncs
	merged.SyncBytes = bytes
	merged.SyncSeconds = seconds
	merged.SLA = c.cfg.Base.Node.SLA

	var lat []float64
	var latencySum float64
	var hitInf, hitTrain float64
	for _, r := range c.replicas {
		rs := r.Stats()
		merged.Served += rs.Served
		merged.Violations += rs.Violations
		merged.TrainSteps += rs.TrainSteps
		merged.FullSyncs += rs.FullSyncs
		merged.LoRAHotRows += rs.LoRAHotRows
		latencySum += rs.MeanLatency * float64(rs.Served)
		hitInf += rs.InferenceHitRatio
		hitTrain += rs.TrainingHitRatio
		lat = append(lat, r.Node.LatencySamples()...)
		merged.Replicas = append(merged.Replicas, rs)
	}
	n := float64(len(c.replicas))
	merged.P50 = metrics.Quantile(lat, 0.50)
	merged.P99 = metrics.Quantile(lat, 0.99)
	merged.InferenceHitRatio = hitInf / n
	merged.TrainingHitRatio = hitTrain / n
	if merged.Served > 0 {
		merged.ViolationRate = float64(merged.Violations) / float64(merged.Served)
		merged.MeanLatency = latencySum / float64(merged.Served)
	}
	// Adapter footprint and rank are identical across replicas by
	// construction; report one replica's view, not the sum.
	merged.MemoryOverhead = c.replicas[0].MemoryOverhead()
	merged.LoRARank = c.replicas[0].LoRA.Adapters[0].Rank()
	return merged
}
