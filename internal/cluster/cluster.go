// Package cluster runs a fleet of LiveUpdate replicas behind one serving
// front door (paper §II-C and §IV-E): N core.Systems share a common base
// checkpoint, a Router spreads requests across them, and a periodic
// priority-merge synchronization (Algorithm 3 over the tree AllGather of
// internal/collective) reconciles the per-replica LoRA adapters so every
// replica converges to identical effective embeddings — the paper's
// replica-consistency requirement.
//
// Replica ownership is delegated to an internal/fleet membership
// controller: the fleet is elastic. Replicas can Join, Leave, Fail, and be
// Replaced at runtime while serving continues; a joining replica catches up
// through an emt checkpoint restore plus a full LoRA state transfer billed
// to the virtual sync clock, and routing follows the live member view
// through one atomic pointer (the hash policy is a consistent-hash ring, so
// a single membership change only remaps ~1/N of the keyspace).
//
// # Concurrency model
//
// A Cluster is safe for concurrent callers and is designed so independent
// replicas serve genuinely in parallel:
//
//   - Serve/ServeShard take a fleet-wide read lock (RWMutex.RLock) plus the
//     target replica's own mutex (inside core.System.Serve). Requests for
//     different replicas never contend; requests for the same replica
//     serialize, matching the single-server virtual-clock model.
//   - How a periodic sync propagates depends on Config.Mode. In SyncBarrier
//     mode it takes the fleet-wide write lock: a stop-the-world barrier that
//     drains in-flight requests, mutates every replica, and readmits
//     traffic. In SyncAsync mode (the default) there is no fleet-wide
//     serialization point at all: the pipeline snapshots each replica
//     individually (holding only that replica's lock for the O(rows)
//     export), runs the priority merge on a background goroutine with the
//     simulated AllGather cost charged to the sync clock, and publishes the
//     merged state per replica through epoch-versioned atomic pointer swaps
//     (lora.Set.Publish). ServeShard never blocks on a periodic sync in
//     async mode; manual SyncNow and ReplicasConsistent remain explicit
//     barriers in both modes.
//   - Membership reads are lock-free: the serve path loads the current
//     fleet.View through an atomic pointer (under the fleet read lock, so a
//     request never straddles a membership commit). Membership mutations
//     hold syncMu — the mutex every merge (barrier periodic sync, async
//     pipeline epoch, SyncNow, consistency probe) holds for its whole
//     snapshot→merge→publish span — so a joiner's catch-up can never
//     interleave with a publish, and they install the new view under a
//     brief (O(members)) fleet write barrier so departing members' request
//     counts fold exactly. The expensive parts — spawning and catching up a
//     replica — run before that barrier; serving is never stopped
//     fleet-wide for a membership change. Requests already routed to a slot
//     whose member has since failed redirect to the next active slot.
//   - Periodic syncs trigger on virtual-time epochs: epoch k starts when the
//     fleet clock crosses k·SyncEvery, and each epoch is synced exactly
//     once. Because a replica's virtual timeline depends only on its own
//     request subsequence (LoRA values never feed back into latency), every
//     virtual-time statistic — Served, Violations, sync counts, per-replica
//     clocks and latency quantiles — is identical no matter how many
//     goroutines drive the fleet, in either mode, as long as per-replica
//     request order is preserved and membership changes land at
//     deterministic points in the request sequence (see internal/driver,
//     which guarantees both). What async mode gives up is bit-identical
//     adapter VALUES across runs: which training steps land before a given
//     snapshot depends on wall-clock interleaving, the bounded-staleness
//     window the paper's live-update design explicitly embraces.
package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"liveupdate/internal/collective"
	"liveupdate/internal/core"
	"liveupdate/internal/fleet"
	"liveupdate/internal/metrics"
	"liveupdate/internal/obs"
	"liveupdate/internal/simnet"
	"liveupdate/internal/trace"
)

// SyncMode selects how periodic priority-merge syncs propagate through a
// serving fleet.
type SyncMode string

const (
	// SyncAsync (the default) runs the versioned, double-buffered pipeline:
	// snapshot → background merge → atomic per-replica publish. Serving
	// never blocks on a fleet-wide lock during a periodic sync.
	SyncAsync SyncMode = "async"
	// SyncBarrier is the legacy stop-the-world protocol: every periodic
	// sync takes the fleet write lock, draining and blocking all serving
	// until the merged state is installed everywhere.
	SyncBarrier SyncMode = "barrier"
)

// SyncModes lists the supported modes, default first.
func SyncModes() []SyncMode { return []SyncMode{SyncAsync, SyncBarrier} }

// ParseSyncMode validates a mode name; the empty string means SyncAsync.
func ParseSyncMode(s string) (SyncMode, error) {
	switch SyncMode(s) {
	case "":
		return SyncAsync, nil
	case SyncAsync, SyncBarrier:
		return SyncMode(s), nil
	}
	return "", fmt.Errorf("cluster: unknown sync mode %q (valid: %v)", s, SyncModes())
}

// Config describes a replica fleet.
type Config struct {
	// Base configures each replica. All replicas are built from the same
	// options (same seed → same base checkpoint); local rank adaptation is
	// force-disabled because Algorithm 3 exchanges factor rows, which
	// requires a fleet-wide common rank (rank changes ride the full sync).
	// Replicas admitted later (Join/Replace/Scale) are built the same way
	// and then caught up from a live donor.
	Base core.Options

	// Replicas is the initial fleet size (≥ 1).
	Replicas int

	// Router picks the serving replica per request. Defaults to round-robin.
	Router Router

	// SyncEvery is the virtual-time interval between LoRA priority-merge
	// syncs: one sync fires for each SyncEvery epoch the fleet-max clock
	// crosses. Zero disables periodic syncs (SyncNow remains available).
	SyncEvery time.Duration

	// Mode selects the periodic-sync propagation protocol. The zero value
	// means SyncAsync.
	Mode SyncMode

	// BandwidthBps and LatencySec describe the sync fabric links (also used
	// to bill catch-up transfers). Zero values default to 100 GbE / 1 ms.
	BandwidthBps float64
	LatencySec   float64

	// Topology selects the collective pricing the sync fabric: "flat" (the
	// default recursive-doubling AllGather), "ring", or "tree". The merged
	// state is identical under every topology; only the sync bill changes.
	Topology collective.Kind

	// DeltaSync bills only rows and factors changed since each peer's last
	// acknowledged sync generation. Pure cost accounting — state flow is
	// unchanged, so results stay bit-identical to full sync.
	DeltaSync bool

	// Compression prices flate compression of sync payloads: 0 disables,
	// 1 (fastest) … 9 (best ratio). Trades CompressSeconds for WireBytes.
	Compression int

	// Chaos optionally attaches a default membership-event schedule to the
	// cluster. It is advisory: the load driver picks it up when its own
	// configuration carries no schedule (liveupdate.WithChaos wires this).
	Chaos fleet.Schedule
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Replicas < 1 {
		return fmt.Errorf("cluster: Replicas must be >= 1, got %d", c.Replicas)
	}
	if c.SyncEvery < 0 {
		return fmt.Errorf("cluster: SyncEvery must be non-negative")
	}
	if _, err := ParseSyncMode(string(c.Mode)); err != nil {
		return err
	}
	if c.BandwidthBps < 0 || c.LatencySec < 0 {
		return fmt.Errorf("cluster: link parameters must be non-negative")
	}
	if _, err := collective.ParseTopology(c.Topology); err != nil {
		return err
	}
	if c.Compression < 0 || c.Compression > 9 {
		return fmt.Errorf("cluster: Compression level %d out of range [0,9]", c.Compression)
	}
	if err := c.Chaos.Validate(); err != nil {
		return fmt.Errorf("cluster: chaos schedule: %w", err)
	}
	return c.Base.Validate()
}

// Cluster is a fleet of replica Systems behind a Router. It implements the
// same Serve/Stats surface as a single core.System, so callers can scale
// from one node to a fleet without changing the serving loop, and it is safe
// for concurrent callers (see the package comment for the locking model).
// Membership is elastic: see Join, Leave, FailReplica, ReplaceReplica, and
// Scale.
type Cluster struct {
	cfg    Config
	mode   SyncMode
	fleet  *fleet.Controller
	router Router
	sync   *collective.SyncGroup
	async  *collective.AsyncSyncGroup

	// syncClock accumulates virtual time spent inside priority-merge syncs
	// and catch-up transfers, separate from the replicas' serving clocks.
	syncClock *simnet.Clock

	// fleetMu is the serve/sync barrier: Serve holds it for read; barrier
	// syncs (every periodic sync in barrier mode, SyncNow and consistency
	// probes in both modes) hold it for write, as does the membership
	// controller's install barrier (fold + view swap — O(members), so the
	// serve stall is microseconds). The async pipeline's merge never takes
	// it.
	fleetMu sync.RWMutex
	// syncMu serializes every merge (barrier-mode periodic syncs, each
	// async pipeline epoch, SyncNow, consistency probes) with every
	// membership mutation. Holding it across a mutation makes the
	// catch-up's donor export and the joiner's install atomic with respect
	// to publishes: no merged epoch can land between them, so a joiner can
	// never miss a publish whose rows would not recur in later supports.
	// Serving NEVER takes syncMu — a membership change or in-flight merge
	// only ever stalls other merges, not requests. Lock order:
	// syncMu → controller mutex → fleetMu → per-replica node locks.
	syncMu sync.Mutex
	// syncedEpoch is the last SyncEvery epoch a periodic sync has covered.
	// Atomic: in barrier mode it is written under the fleet write lock, in
	// async mode by the pipeline goroutine; serve-path trigger checks read
	// it lock-free in both modes.
	syncedEpoch atomic.Int64
	// pipe drives asynchronous periodic syncs (nil in barrier mode or when
	// periodic syncs are disabled).
	pipe *syncPipeline

	// testSyncStall, when set by tests, is invoked by the async pipeline
	// after the snapshot while the merge is staged — a hook to hold a sync
	// "in flight" and prove serving does not block behind it.
	testSyncStall func()

	// gen counts state-changing operations (serves, syncs, membership
	// changes); the merged-stats cache is keyed on it so Stats() is O(1)
	// between changes. It is sharded by replica slot so concurrent workers
	// bump disjoint cache lines on the serve hot path instead of contending
	// on one atomic.
	gen     *metrics.ShardedCounter
	statsMu sync.Mutex
	stats   core.Stats
	statsOK bool
	statsAt uint64

	// Telemetry instruments (nil without Config.Base.Telemetry). Strictly
	// side-band: counters observe completed events, gauges read lock-free
	// state at scrape time, spans time wall-clock stages. Nothing here feeds
	// back into routing, syncing, or any virtual-time statistic — and scrape
	// paths never call Stats(), which would drain the async pipeline.
	tracer   *obs.Tracer
	obsSyncs *obs.Counter
}

// New builds the fleet: Replicas identical Systems from cfg.Base (shared
// base checkpoint), owned by a fleet membership controller and wired into
// one SyncGroup.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Router == nil {
		cfg.Router = &roundRobinRouter{}
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = simnet.Gbps100
	}
	if cfg.LatencySec == 0 {
		cfg.LatencySec = 0.001
	}
	mode, err := ParseSyncMode(string(cfg.Mode))
	if err != nil {
		return nil, err
	}
	cfg.Mode = mode
	c := &Cluster{
		cfg:       cfg,
		mode:      mode,
		router:    cfg.Router,
		syncClock: simnet.NewClock(),
		gen:       metrics.NewShardedCounter(cfg.Replicas),
	}
	spawn := func() (*core.System, error) {
		opts := cfg.Base
		// All replicas must hold structurally compatible LoRA factors for
		// the merge; see Config.Base.
		opts.LoRA.DisableRankAdapt = true
		return core.New(opts)
	}
	seed := make([]*core.System, cfg.Replicas)
	for i := range seed {
		sys, err := spawn()
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		seed[i] = sys
	}
	c.fleet, err = fleet.NewController(fleet.Config{
		Spawn:        spawn,
		BandwidthBps: cfg.BandwidthBps,
		LatencySec:   cfg.LatencySec,
		SyncClock:    c.syncClock,
		// Membership commits (stats fold + view swap) run with no serve in
		// flight, so a request can neither finish on a member whose stats
		// were already folded nor observe a half-installed view.
		InstallBarrier: func(commit func()) {
			c.fleetMu.Lock()
			commit()
			c.fleetMu.Unlock()
		},
	}, seed)
	if err != nil {
		return nil, err
	}
	// The SyncGroup carries link pricing and cumulative accounting; the
	// replica set it syncs over is the live member view, passed per sync.
	topo, err := collective.ParseTopology(cfg.Topology)
	if err != nil {
		return nil, err // unreachable: Validate already parsed it
	}
	c.sync, err = collective.NewSyncGroupWith(collective.GroupConfig{
		BandwidthBps:  cfg.BandwidthBps,
		LatencySec:    cfg.LatencySec,
		Topology:      topo,
		Delta:         cfg.DeltaSync,
		CompressLevel: cfg.Compression,
	})
	if err != nil {
		return nil, err // unreachable: Validate already checked the level
	}
	c.async = collective.NewAsyncSyncGroup(c.sync)
	if mode == SyncAsync && cfg.SyncEvery > 0 {
		c.pipe = newSyncPipeline(c)
	}
	if tel := cfg.Base.Telemetry; tel != nil {
		reg := tel.Registry()
		c.tracer = tel.Tracer()
		c.obsSyncs = reg.Counter("liveupdate_sync_epochs_total",
			"LoRA priority-merge synchronizations completed (periodic epochs and manual syncs).")
		// Function-backed instruments read lock-free (view pointer, clock
		// atomics) or briefly lock the membership controller — never a fleet
		// or replica serve lock, so a scrape cannot stall serving.
		reg.GaugeFunc("liveupdate_fleet_members",
			"Active replicas in the current membership view.",
			func() float64 { return float64(c.fleet.View().NumActive()) })
		reg.GaugeFunc("liveupdate_virtual_time_seconds",
			"Fleet virtual clock (most advanced replica, including retired high-water mark).",
			c.fleetClock)
		reg.CounterFunc("liveupdate_fleet_joins_total",
			"Replicas admitted after the seed fleet (join, replace, scale-up).",
			func() uint64 { return uint64(c.fleet.Stats().Joins) })
		reg.CounterFunc("liveupdate_fleet_leaves_total",
			"Graceful departures (leave, scale-down).",
			func() uint64 { return uint64(c.fleet.Stats().Leaves) })
		reg.CounterFunc("liveupdate_fleet_fails_total",
			"Abrupt exclusions (fail, the fail half of replace).",
			func() uint64 { return uint64(c.fleet.Stats().Fails) })
	}
	return c, nil
}

// Telemetry returns the telemetry the fleet was built with (nil when
// observability is off); replicas share it via Config.Base.Telemetry.
func (c *Cluster) Telemetry() *obs.Telemetry { return c.cfg.Base.Telemetry }

// Size returns the number of active replicas.
func (c *Cluster) Size() int { return c.fleet.View().NumActive() }

// Replica exposes the System serving slot i (read-mostly: experiments and
// tests). It returns nil when i is out of range or the slot is empty — its
// member failed or left — so callers must check before dereferencing;
// historically an out-of-range index panicked.
func (c *Cluster) Replica(i int) *core.System {
	if m := c.fleet.View().Member(i); m != nil {
		return m.Sys
	}
	return nil
}

// Members returns the current membership view.
func (c *Cluster) Members() *fleet.View { return c.fleet.View() }

// RouterName returns the active routing policy's name.
func (c *Cluster) RouterName() string { return c.router.Name() }

// Mode returns the periodic-sync propagation mode.
func (c *Cluster) Mode() SyncMode { return c.mode }

// DefaultBatchSize returns the serving-batch hint attached at construction
// (Config.Base.BatchSize; 0 = unbatched). The load driver uses it when its
// own configuration does not set a batch size.
func (c *Cluster) DefaultBatchSize() int { return c.cfg.Base.BatchSize }

// ChaosSchedule returns the membership-event schedule attached at
// construction (nil when none was).
func (c *Cluster) ChaosSchedule() fleet.Schedule { return c.cfg.Chaos }

// NumShards returns the shard-lane capacity: the highest slot index plus
// one. Slots are stable for a member's lifetime and capacity only grows, so
// a load driver's lane ownership survives membership churn; an empty slot
// (failed/left member) simply receives no routed traffic.
func (c *Cluster) NumShards() int { return c.fleet.View().NumSlots() }

// ShardOf routes one request to a replica slot without serving it. Routing
// and serving are deliberately split so a concurrent driver can route the
// trace in a single deterministic sequence and then serve shards in
// parallel. Each request must be routed exactly once: stateful routers
// (round-robin) advance their cursor here. Only active slots are returned.
func (c *Cluster) ShardOf(s trace.Sample) int {
	t0 := c.tracer.StageStart(obs.StageRoute)
	defer c.tracer.StageEnd(obs.StageRoute, t0)
	v := c.fleet.View()
	if vr, ok := c.router.(fleet.ViewRouter); ok {
		if m := vr.RouteView(s, v); m != nil {
			return m.Slot
		}
		return -1
	}
	// Legacy router: it sees the active systems as a flat slice; its index
	// maps back to the member's slot.
	active := v.Active()
	i := c.router.Route(s, v.ActiveSystems())
	if i < 0 || i >= len(active) {
		return -1 // surfaces as a routing error in ServeShard
	}
	return active[i].Slot
}

// Serve routes one request to a replica and serves it there (including that
// replica's co-located training tick). Safe for concurrent callers; note
// that concurrent callers race for per-replica arrival order, so run-to-run
// determinism under concurrency additionally needs ordered per-shard
// delivery (internal/driver provides it).
func (c *Cluster) Serve(s trace.Sample) (core.Response, error) {
	return c.ServeShard(c.ShardOf(s), s)
}

// ServeShard serves one request on a specific replica slot, then fires any
// periodic LoRA syncs whose virtual-time epoch the fleet clock has crossed —
// synchronously behind the fleet write lock in barrier mode, or handed to
// the background pipeline (without ever taking a fleet-wide write lock) in
// async mode. A request aimed at a slot whose member has since failed or
// left redirects to the next active slot — the lane drains instead of
// erroring.
func (c *Cluster) ServeShard(shard int, s trace.Sample) (core.Response, error) {
	if c.pipe != nil {
		if err := c.pipe.Err(); err != nil {
			return core.Response{}, err
		}
	}
	// The view is resolved under the read lock: membership commits hold
	// the write lock, so a member can never be folded out of the fleet
	// totals while this request is mid-serve on it.
	c.fleetMu.RLock()
	v := c.fleet.View()
	if shard < 0 || shard >= v.NumSlots() {
		c.fleetMu.RUnlock()
		return core.Response{}, fmt.Errorf("cluster: router %s picked replica %d of %d",
			c.router.Name(), shard, v.NumSlots())
	}
	m := v.Member(shard)
	if m == nil {
		if m = v.Redirect(shard); m == nil {
			c.fleetMu.RUnlock()
			return core.Response{}, fmt.Errorf("cluster: no active replicas")
		}
	}
	resp, err := m.Sys.Serve(s)
	if err != nil {
		c.fleetMu.RUnlock()
		return resp, err
	}
	resp.Replica = m.Slot
	needBarrierSync := false
	if d := c.cfg.SyncEvery.Seconds(); d > 0 {
		if e := c.epochOf(d); e > c.syncedEpoch.Load() {
			if c.mode == SyncBarrier {
				needBarrierSync = true
			} else {
				// Kick while still holding the read lock (kick is
				// non-blocking and touches neither fleetMu nor the
				// replicas), so anyone holding the WRITE lock knows no new
				// pipeline work can appear under them — the invariant
				// SyncNow and ReplicasConsistent rely on when they drain.
				c.pipe.kick(e)
			}
		}
	}
	c.gen.Add(m.Slot%c.gen.Shards(), 1)
	c.fleetMu.RUnlock()
	if needBarrierSync {
		if err := c.syncPendingEpochs(); err != nil {
			return resp, err
		}
	}
	return resp, nil
}

// ServeShardBatch serves a run of pre-routed same-shard samples on one
// replica slot through core.System.ServeBatch — the amortized fast path the
// load driver's lane workers coalesce into. Semantics match a loop over
// ServeShard for every virtual-time statistic: each sample still gets its own
// bookkeeping tail and training trigger on the replica; only buffer
// acquisition, the fleet read lock, and the periodic-sync epoch check (which
// runs once, after the batch) are amortized. A sync epoch crossed mid-batch
// is therefore picked up at the batch boundary — the same epochs fire either
// way, so final sync counts are unchanged. resps must have the same length as
// samples and is filled in order.
func (c *Cluster) ServeShardBatch(shard int, samples []trace.Sample, resps []core.Response) error {
	if len(resps) != len(samples) {
		return fmt.Errorf("cluster: ServeShardBatch got %d response slots for %d samples", len(resps), len(samples))
	}
	if len(samples) == 0 {
		return nil
	}
	if c.pipe != nil {
		if err := c.pipe.Err(); err != nil {
			return err
		}
	}
	c.fleetMu.RLock()
	v := c.fleet.View()
	if shard < 0 || shard >= v.NumSlots() {
		c.fleetMu.RUnlock()
		return fmt.Errorf("cluster: router %s picked replica %d of %d",
			c.router.Name(), shard, v.NumSlots())
	}
	m := v.Member(shard)
	if m == nil {
		if m = v.Redirect(shard); m == nil {
			c.fleetMu.RUnlock()
			return fmt.Errorf("cluster: no active replicas")
		}
	}
	if err := m.Sys.ServeBatch(samples, resps); err != nil {
		c.fleetMu.RUnlock()
		return err
	}
	for i := range resps {
		resps[i].Replica = m.Slot
	}
	needBarrierSync := false
	if d := c.cfg.SyncEvery.Seconds(); d > 0 {
		if e := c.epochOf(d); e > c.syncedEpoch.Load() {
			if c.mode == SyncBarrier {
				needBarrierSync = true
			} else {
				c.pipe.kick(e)
			}
		}
	}
	c.gen.Add(m.Slot%c.gen.Shards(), 1)
	c.fleetMu.RUnlock()
	if needBarrierSync {
		return c.syncPendingEpochs()
	}
	return nil
}

// ServeBatch routes each sample through the cluster's own router and serves
// maximal consecutive same-replica runs via ServeShardBatch — the amortized
// path for callers that hold a pre-formed mixed batch (the wire front end's
// binary endpoint) rather than pre-routed lanes. Routing happens in sample
// order through ShardOf, so stateless (hash) and cursor-stateful
// (round-robin) routers assign exactly the replicas a loop over Serve would,
// and aggregate virtual-time statistics match sequential serving either way.
// Two deliberate batch-semantics deviations: a load-aware router
// (least-loaded) sees the backlog as of batch arrival rather than after
// every serve — the requests DID arrive together — and a sync epoch crossed
// mid-run is picked up at the run boundary (same epochs fire, so sync counts
// are unchanged; scores immediately after an epoch may differ in the last
// decimals). resps must have the same length as samples and is filled in
// order.
func (c *Cluster) ServeBatch(samples []trace.Sample, resps []core.Response) error {
	if len(resps) != len(samples) {
		return fmt.Errorf("cluster: ServeBatch got %d response slots for %d samples", len(resps), len(samples))
	}
	// Route every sample exactly once, up front: stateful routers
	// (round-robin) advance their cursor per ShardOf call, so probing a
	// sample's shard twice would skew routing relative to sequential Serve.
	shards := make([]int, len(samples))
	for i := range samples {
		shards[i] = c.ShardOf(samples[i])
	}
	for start := 0; start < len(samples); {
		end := start + 1
		for end < len(samples) && shards[end] == shards[start] {
			end++
		}
		if err := c.ServeShardBatch(shards[start], samples[start:end], resps[start:end]); err != nil {
			return err
		}
		start = end
	}
	return nil
}

// Profile returns the dataset profile the fleet serves (every replica shares
// it). The wire front end advertises it to remote load generators so they
// synthesize samples with the matching feature shape.
func (c *Cluster) Profile() trace.Profile { return c.cfg.Base.Profile }

// epochOf returns the SyncEvery epoch the fleet clock is currently in.
func (c *Cluster) epochOf(d float64) int64 {
	return int64(math.Floor(c.fleetClock() / d))
}

// syncPendingEpochs takes the sync mutex and the fleet write lock and syncs
// once per epoch the fleet clock has crossed since the last periodic sync —
// the barrier-mode protocol. The recheck under the locks makes racing
// callers idempotent: whoever gets them first syncs, the rest observe
// syncedEpoch caught up and do nothing; a membership change holding syncMu
// simply defers the sync until its new view is installed.
func (c *Cluster) syncPendingEpochs() error {
	d := c.cfg.SyncEvery.Seconds()
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	for target := c.epochOf(d); c.syncedEpoch.Load() < target; c.syncedEpoch.Add(1) {
		if _, err := c.syncLocked(); err != nil {
			return fmt.Errorf("cluster: periodic sync: %w", err)
		}
	}
	return nil
}

// fleetClock returns the most advanced replica clock — the fleet's wall
// time under concurrent serving — including the high-water mark of members
// that have since departed, so virtual time never runs backward across a
// failure. Clock and view reads are atomic, so this is safe from any
// goroutine.
func (c *Cluster) fleetClock() float64 {
	max := c.fleet.RetiredClock()
	for _, sys := range c.fleet.View().ActiveSystems() {
		if t := sys.Clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// VirtualNow returns the fleet's current virtual time (the fleet clock).
// Lock-free; the load driver reads it at drained checkpoints to evaluate
// chaos-schedule timestamps deterministically.
func (c *Cluster) VirtualNow() float64 { return c.fleetClock() }

// --- Elastic membership -------------------------------------------------

// membershipOp runs a membership mutation holding syncMu, so it is
// mutually exclusive with every merge: barrier-mode periodic syncs, each
// async pipeline epoch, SyncNow, and consistency probes all hold syncMu
// for their whole snapshot→merge→publish span. A joiner's catch-up export
// and install therefore cannot interleave with a publish — it can never
// miss a merged epoch whose rows would not recur in later supports.
// Serving never takes syncMu, so requests flow throughout; an epoch kicked
// while the mutation runs simply merges afterwards, over the new view.
func (c *Cluster) membershipOp(f func() error) error {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if err := f(); err != nil {
		return err
	}
	c.gen.Add(0, 1) // membership changed: invalidate the stats cache
	return nil
}

// Join admits a fresh replica into the fleet (first empty slot, or a new
// one), catching it up from the freshest active donor via checkpoint + full
// LoRA transfer. It returns the new member's slot. Serving continues
// throughout; only the donor is briefly locked for the export.
func (c *Cluster) Join() (int, error) {
	slot := -1
	err := c.membershipOp(func() error {
		m, _, err := c.fleet.Join()
		if err != nil {
			return err
		}
		slot = m.Slot
		return nil
	})
	return slot, err
}

// Leave retires the replica in slot gracefully: its statistics fold into
// the fleet totals and its slot empties (in-flight requests redirect).
func (c *Cluster) Leave(slot int) error {
	return c.membershipOp(func() error { return c.fleet.Leave(slot) })
}

// FailReplica kills the replica in slot — the crash path. The member is
// excluded from routing immediately (the next view load), its lane
// redirects, and its statistics fold into the fleet totals. The last active
// replica cannot be failed.
func (c *Cluster) FailReplica(slot int) error {
	return c.membershipOp(func() error { return c.fleet.Fail(slot) })
}

// ReplaceReplica fails the replica in slot (if still present) and admits a
// freshly caught-up replacement into the same slot in one membership
// change. It returns the slot served by the replacement.
func (c *Cluster) ReplaceReplica(slot int) (int, error) {
	out := -1
	err := c.membershipOp(func() error {
		m, _, err := c.fleet.Replace(slot)
		if err != nil {
			return err
		}
		out = m.Slot
		return nil
	})
	return out, err
}

// Scale grows or shrinks the active fleet to n replicas: joins fill empty
// slots first, shrinks retire the highest slots gracefully.
func (c *Cluster) Scale(n int) error {
	return c.membershipOp(func() error {
		_, err := c.fleet.Scale(n)
		return err
	})
}

// ApplyChaos applies one scripted membership event. The load driver calls
// this at drained checkpoints; it is also a convenient programmatic entry
// point for the same event grammar the -chaos flags accept.
func (c *Cluster) ApplyChaos(ev fleet.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	switch ev.Action {
	case fleet.Kill:
		return c.FailReplica(ev.Arg)
	case fleet.Replace:
		_, err := c.ReplaceReplica(ev.Arg)
		return err
	case fleet.Join:
		_, err := c.Join()
		return err
	case fleet.Leave:
		return c.Leave(ev.Arg)
	case fleet.Scale:
		return c.Scale(ev.Arg)
	}
	return fmt.Errorf("cluster: unknown chaos action %q", ev.Action)
}

// FleetStats returns the membership controller's accounting snapshot
// (member count, join/leave/fail counters, catch-up bill).
func (c *Cluster) FleetStats() fleet.Stats { return c.fleet.Stats() }

// --- Synchronization ----------------------------------------------------

// syncPipeline drives asynchronous periodic syncs: serve-path triggers kick
// it with the epoch target they observed, and a single background worker
// processes one epoch at a time — snapshot, staged merge, per-replica
// publish — until it has caught up. The worker exits when idle, so an idle
// Cluster holds no goroutines.
type syncPipeline struct {
	c *Cluster

	mu      sync.Mutex
	cond    *sync.Cond
	target  int64 // highest epoch any trigger has requested
	running bool  // a worker goroutine is active
	err     error // first pipeline failure, surfaced on later calls

	failed atomic.Bool // lock-free fast path for the error check
}

func newSyncPipeline(c *Cluster) *syncPipeline {
	p := &syncPipeline{c: c, target: -1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Err returns the first pipeline failure, if any (lock-free when healthy).
func (p *syncPipeline) Err() error {
	if p == nil || !p.failed.Load() {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// kick requests syncs up to epoch target and returns immediately, starting
// the background worker if none is active.
func (p *syncPipeline) kick(target int64) {
	p.mu.Lock()
	if target > p.target {
		p.target = target
	}
	if p.running || p.err != nil {
		p.mu.Unlock()
		return
	}
	p.running = true
	p.mu.Unlock()
	go p.run()
}

// run processes pending epochs until caught up, then exits.
func (p *syncPipeline) run() {
	for {
		p.mu.Lock()
		if p.err != nil || p.c.syncedEpoch.Load() >= p.target {
			p.running = false
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		if err := p.c.syncEpochAsync(); err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = fmt.Errorf("cluster: async periodic sync: %w", err)
				p.failed.Store(true)
			}
			p.mu.Unlock()
		}
	}
}

// drain blocks until the pipeline has no in-flight work (every epoch kicked
// so far is published) and returns its sticky error, if any. It never blocks
// serving — only the caller waits.
func (p *syncPipeline) drain() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.running {
		p.cond.Wait()
	}
	return p.err
}

// syncEpochAsync runs one epoch of the asynchronous protocol:
//
//  1. snapshot — each live member is locked individually, just long enough
//     to export (and clear) its modified-row support;
//  2. merge — PriorityMergeRanked (member IDs are the priority ranks) plus
//     the simulated AllGather pricing run on a background goroutine
//     (collective.AsyncSyncGroup), with the cost charged to the sync clock,
//     not to any serving clock;
//  3. publish — the merged state is installed per member through
//     epoch-versioned atomic pointer swaps.
//
// No step takes the fleet-wide write lock, so serving proceeds throughout.
// The whole epoch holds syncMu: membership mutations are excluded for its
// span, so the member set read here stays the member set published to, and
// a joiner never misses a publish.
func (c *Cluster) syncEpochAsync() error {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	members := c.fleet.View().Active()
	states := make([]collective.RankedState, len(members))
	for i, m := range members {
		states[i] = collective.RankedState{Rank: m.ID, Tables: m.Sys.SnapshotLoRA()}
	}
	pending := c.async.BeginRanked(states)
	if hook := c.testSyncStall; hook != nil {
		hook()
	}
	merged, _, epoch, err := c.async.Finish(pending, c.syncClock)
	if err != nil {
		return err
	}
	// The publish stall is the install span: each member briefly holds its
	// node lock while the merged state swaps in.
	t0 := c.tracer.StageStart(obs.StageSyncPublish)
	for _, m := range members {
		m.Sys.PublishLoRA(merged, epoch)
	}
	c.tracer.StageEnd(obs.StageSyncPublish, t0)
	c.obsSyncs.Inc()
	c.syncedEpoch.Add(1)
	c.gen.Add(0, 1)
	return nil
}

// quiesceSyncs waits for the async pipeline (if any) to finish all epochs
// kicked so far, so final statistics observe a settled sync count. Callers
// must hold NO cluster locks: the pipeline worker acquires syncMu per
// epoch, and a membership mutation holding syncMu may need the fleet write
// lock to commit. No-op in barrier mode.
func (c *Cluster) quiesceSyncs() error { return c.pipe.drain() }

// Err returns the async pipeline's sticky failure, if any (nil in barrier
// mode and on a healthy pipeline). A failed periodic sync also surfaces on
// every subsequent Serve/ServeShard and SyncNow; this accessor exists for
// callers that only poll Stats — which reports completed epochs and cannot
// carry an error — after a drive has ended.
func (c *Cluster) Err() error { return c.pipe.Err() }

// SyncNow runs one LoRA priority-merge synchronization across the live
// members (Algorithm 3 + tree AllGather) and returns its merge statistics.
// It is an explicit barrier in both modes: it holds syncMu — waiting out
// any in-flight asynchronous epoch or membership change — and the
// fleet-wide write lock, so its merge interleaves with nothing. After it
// returns every live member holds identical adapter state (an async epoch
// kicked but not yet started runs afterwards and publishes uniformly, so
// the invariant is preserved). Manual syncs do not consume periodic epochs.
func (c *Cluster) SyncNow() (collective.MergeStats, error) {
	if err := c.pipe.Err(); err != nil {
		return collective.MergeStats{}, err
	}
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	return c.syncLocked()
}

// lockMembers freezes every given member's node mutex (slot order, no
// cycles: nothing holds one replica's mutex while waiting on another's), so
// fleet-wide mutations honor core.System's concurrency contract even for
// callers driving a replica directly via Replica(i). Callers must hold
// fleetMu for write.
func lockMembers(members []*fleet.Member) {
	for _, m := range members {
		m.Sys.Lock()
	}
}

func unlockMembers(members []*fleet.Member) {
	for i := len(members) - 1; i >= 0; i-- {
		members[i].Sys.Unlock()
	}
}

// syncLocked runs one sync over the live member view; callers must hold the
// fleet write lock.
func (c *Cluster) syncLocked() (collective.MergeStats, error) {
	// In barrier mode the whole merge+publish IS the serving stall (the
	// fleet write lock is held), so the span covers all of it.
	t0 := c.tracer.StageStart(obs.StageSyncPublish)
	defer c.tracer.StageEnd(obs.StageSyncPublish, t0)
	members := c.fleet.View().Active()
	lockMembers(members)
	states := make([]collective.RankedState, len(members))
	for i, m := range members {
		states[i] = collective.RankedState{Rank: m.ID, Tables: m.Sys.LoRA.Snapshot()}
	}
	merged, stats, epoch, err := c.sync.SyncRanked(c.syncClock, states)
	if err == nil {
		for _, m := range members {
			m.Sys.LoRA.Publish(merged, epoch)
		}
	}
	unlockMembers(members)
	if err != nil {
		return stats, fmt.Errorf("cluster: sync failed: %w", err)
	}
	c.obsSyncs.Inc()
	c.gen.Add(0, 1)
	return stats, nil
}

// ReplicasConsistent verifies the §II-C invariant: for the first idsPerTable
// ids of every table, all live members produce identical effective embedding
// rows (base + LoRA delta). It is meaningful right after a sync. It holds
// syncMu (no merge or membership change can be mid-flight) and the fleet
// write lock (no serve can train mid-probe), reading a frozen snapshot.
func (c *Cluster) ReplicasConsistent(idsPerTable int) bool {
	if c.pipe.Err() != nil {
		return false
	}
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	members := c.fleet.View().Active()
	if len(members) < 2 {
		return true
	}
	lockMembers(members)
	defer unlockMembers(members)
	p := c.cfg.Base.Profile
	ref := make([]float64, p.EmbeddingDim)
	probe := make([]float64, p.EmbeddingDim)
	for table := 0; table < p.NumTables; table++ {
		n := int32(idsPerTable)
		if int(n) > p.TableSize {
			n = int32(p.TableSize)
		}
		for id := int32(0); id < n; id++ {
			members[0].Sys.LoRA.EffectiveRow(table, id, ref)
			for r := 1; r < len(members); r++ {
				members[r].Sys.LoRA.EffectiveRow(table, id, probe)
				for d := range ref {
					if probe[d] != ref[d] {
						return false
					}
				}
			}
		}
	}
	return true
}

// Stats returns the merged fleet snapshot: exact sums for counters
// (including the folded contribution of members that have since departed),
// a true fleet-wide P99/P50 computed over the union of the live members'
// latency windows (not an average of per-replica quantiles), and the
// per-replica breakdown in Replicas (live members, in slot order).
//
// In async mode Stats first drains the pipeline, so the snapshot reflects
// every sync epoch the fleet had crossed when the call was made — which is
// what makes the final sync counts of a run deterministic for any worker
// count. Draining waits only for the background merge, never for serving.
// A failed async sync cannot be reported here (Stats carries no error);
// it surfaces on every subsequent Serve and via Err().
//
// When no latency samples have been retained anywhere in the fleet (nothing
// served yet), P50 and P99 are NaN — the documented "no data" sentinel;
// check with math.IsNaN rather than comparing against zero, which is a
// legitimate latency floor. Departed members' latency windows are not
// retained, so after churn the quantiles cover live members only (counters
// still cover everyone).
//
// Merging is O(replicas × latency window); the result is cached and
// recomputed only after state has changed (a serve, a sync, or a membership
// change), so polling Stats in a reporting loop is cheap.
func (c *Cluster) Stats() core.Stats {
	// Quiesce before reading the generation counter so a draining sync's
	// publish lands inside this snapshot, not after it.
	_ = c.quiesceSyncs()
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	gen := c.gen.Load()
	if c.statsOK && gen == c.statsAt {
		return cloneStats(c.stats)
	}
	st := c.mergedStats()
	c.stats = st
	c.statsAt = gen
	c.statsOK = true
	return cloneStats(st)
}

// cloneStats returns a copy whose Replicas slice does not alias the cache.
func cloneStats(st core.Stats) core.Stats {
	st.Replicas = append([]core.Stats(nil), st.Replicas...)
	return st
}

// mergedStats recomputes the fleet snapshot from the live members plus the
// retired aggregate of departed ones.
func (c *Cluster) mergedStats() core.Stats {
	for {
		// Controller accounting must be read BEFORE taking fleetMu: the
		// membership install barrier acquires fleetMu while holding the
		// controller's mutex, so nesting them the other way could deadlock.
		// But a commit landing between these reads and the member iteration
		// would leave the departing member counted in neither the retired
		// aggregate nor the live view — so capture the view version first,
		// and retry the rare snapshot that straddled a commit (none can
		// land while the read lock is held).
		v0 := c.fleet.View().Version
		fs := c.fleet.Stats()
		ret := c.fleet.Retired()
		c.fleetMu.RLock()
		if c.fleet.View().Version != v0 {
			c.fleetMu.RUnlock()
			continue
		}
		merged := c.mergedStatsLocked(fs, ret)
		c.fleetMu.RUnlock()
		return merged
	}
}

// mergedStatsLocked merges the live members with the given controller
// accounting; callers must hold fleetMu (read suffices — commits need the
// write lock, so the membership cannot change mid-merge).
func (c *Cluster) mergedStatsLocked(fs fleet.Stats, ret fleet.Retired) core.Stats {
	merged := core.Stats{
		VirtualTime: c.fleetClock(),
	}
	gs := c.sync.GroupStats()
	merged.Syncs = gs.Syncs
	merged.SyncBytes = gs.PayloadBytes
	merged.SyncSeconds = gs.Seconds()
	merged.SyncComputeSeconds = gs.ComputeSeconds
	merged.SyncPublishSeconds = gs.PublishSeconds
	merged.SyncWireBytes = gs.WireBytes
	merged.SyncDeltaSavedBytes = gs.DeltaSavedBytes
	merged.SyncCompressSavedBytes = gs.CompressSavedBytes
	merged.SyncCompressSeconds = gs.CompressSeconds
	merged.SyncTopology = string(c.sync.Topology().Kind())
	merged.SLA = c.cfg.Base.Node.SLA

	merged.Members = fs.Members
	merged.Joins = fs.Joins
	merged.Leaves = fs.Leaves
	merged.Fails = fs.Fails
	merged.CatchUpBytes = fs.CatchUpBytes
	merged.CatchUpSeconds = fs.CatchUpSeconds

	merged.Served = ret.Served
	merged.Violations = ret.Violations
	merged.TrainSteps = ret.TrainSteps
	merged.FullSyncs = ret.FullSyncs
	latencySum := ret.LatencySum
	hitInf, hitTrain := ret.HitInfSum, ret.HitTrainSum

	members := c.fleet.View().Active()
	var lat []float64
	for _, m := range members {
		rs := m.Sys.Stats()
		merged.Served += rs.Served
		merged.Violations += rs.Violations
		merged.TrainSteps += rs.TrainSteps
		merged.FullSyncs += rs.FullSyncs
		merged.LoRAHotRows += rs.LoRAHotRows
		latencySum += rs.MeanLatency * float64(rs.Served)
		// Weight cache hit ratios by requests served, like MeanLatency: an
		// unweighted mean would let a nearly idle replica's ratio swamp the
		// workload-level truth under skewed routing.
		hitInf += rs.InferenceHitRatio * float64(rs.Served)
		hitTrain += rs.TrainingHitRatio * float64(rs.Served)
		lat = append(lat, m.Sys.LatencyWindow()...)
		merged.Replicas = append(merged.Replicas, rs)
	}
	if len(lat) == 0 {
		// Documented sentinel: no retained samples means the quantiles are
		// undefined, not zero.
		merged.P50 = math.NaN()
		merged.P99 = math.NaN()
	} else {
		merged.P50 = metrics.Quantile(lat, 0.50)
		merged.P99 = metrics.Quantile(lat, 0.99)
	}
	if merged.Served > 0 {
		merged.ViolationRate = float64(merged.Violations) / float64(merged.Served)
		merged.MeanLatency = latencySum / float64(merged.Served)
		merged.InferenceHitRatio = hitInf / float64(merged.Served)
		merged.TrainingHitRatio = hitTrain / float64(merged.Served)
	}
	// Adapter footprint and rank are identical across replicas by
	// construction; report one live member's view, not the sum.
	merged.MemoryOverhead = members[0].Sys.MemoryOverhead()
	merged.LoRARank = members[0].Sys.LoRARank()
	return merged
}
