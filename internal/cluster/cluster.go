// Package cluster runs a fleet of LiveUpdate replicas behind one serving
// front door (paper §II-C and §IV-E): N core.Systems share a common base
// checkpoint, a Router spreads requests across them, and a periodic
// priority-merge synchronization (Algorithm 3 over the tree AllGather of
// internal/collective) reconciles the per-replica LoRA adapters so every
// replica converges to identical effective embeddings — the paper's
// replica-consistency requirement.
//
// # Concurrency model
//
// A Cluster is safe for concurrent callers and is designed so independent
// replicas serve genuinely in parallel:
//
//   - Serve/ServeShard take a fleet-wide read lock (RWMutex.RLock) plus the
//     target replica's own mutex (inside core.System.Serve). Requests for
//     different replicas never contend; requests for the same replica
//     serialize, matching the single-server virtual-clock model.
//   - How a periodic sync propagates depends on Config.Mode. In SyncBarrier
//     mode it takes the fleet-wide write lock: a stop-the-world barrier that
//     drains in-flight requests, mutates every replica, and readmits
//     traffic. In SyncAsync mode (the default) there is no fleet-wide
//     serialization point at all: the pipeline snapshots each replica
//     individually (holding only that replica's lock for the O(rows)
//     export), runs the priority merge on a background goroutine with the
//     simulated AllGather cost charged to the sync clock, and publishes the
//     merged state per replica through epoch-versioned atomic pointer swaps
//     (lora.Set.Publish). ServeShard never blocks on a periodic sync in
//     async mode; manual SyncNow and ReplicasConsistent remain explicit
//     barriers in both modes.
//   - Periodic syncs trigger on virtual-time epochs: epoch k starts when the
//     fleet clock crosses k·SyncEvery, and each epoch is synced exactly
//     once. Because a replica's virtual timeline depends only on its own
//     request subsequence (LoRA values never feed back into latency), every
//     virtual-time statistic — Served, Violations, sync counts, per-replica
//     clocks and latency quantiles — is identical no matter how many
//     goroutines drive the fleet, in either mode, as long as per-replica
//     request order is preserved (see internal/driver, which guarantees
//     exactly that). What async mode gives up is bit-identical adapter
//     VALUES across runs: which training steps land before a given snapshot
//     depends on wall-clock interleaving, the bounded-staleness window the
//     paper's live-update design explicitly embraces.
package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"liveupdate/internal/collective"
	"liveupdate/internal/core"
	"liveupdate/internal/lora"
	"liveupdate/internal/metrics"
	"liveupdate/internal/simnet"
	"liveupdate/internal/trace"
)

// SyncMode selects how periodic priority-merge syncs propagate through a
// serving fleet.
type SyncMode string

const (
	// SyncAsync (the default) runs the versioned, double-buffered pipeline:
	// snapshot → background merge → atomic per-replica publish. Serving
	// never blocks on a fleet-wide lock during a periodic sync.
	SyncAsync SyncMode = "async"
	// SyncBarrier is the legacy stop-the-world protocol: every periodic
	// sync takes the fleet write lock, draining and blocking all serving
	// until the merged state is installed everywhere.
	SyncBarrier SyncMode = "barrier"
)

// SyncModes lists the supported modes, default first.
func SyncModes() []SyncMode { return []SyncMode{SyncAsync, SyncBarrier} }

// ParseSyncMode validates a mode name; the empty string means SyncAsync.
func ParseSyncMode(s string) (SyncMode, error) {
	switch SyncMode(s) {
	case "":
		return SyncAsync, nil
	case SyncAsync, SyncBarrier:
		return SyncMode(s), nil
	}
	return "", fmt.Errorf("cluster: unknown sync mode %q (valid: %v)", s, SyncModes())
}

// Config describes a replica fleet.
type Config struct {
	// Base configures each replica. All replicas are built from the same
	// options (same seed → same base checkpoint); local rank adaptation is
	// force-disabled because Algorithm 3 exchanges factor rows, which
	// requires a fleet-wide common rank (rank changes ride the full sync).
	Base core.Options

	// Replicas is the fleet size (≥ 1).
	Replicas int

	// Router picks the serving replica per request. Defaults to round-robin.
	Router Router

	// SyncEvery is the virtual-time interval between LoRA priority-merge
	// syncs: one sync fires for each SyncEvery epoch the fleet-max clock
	// crosses. Zero disables periodic syncs (SyncNow remains available).
	SyncEvery time.Duration

	// Mode selects the periodic-sync propagation protocol. The zero value
	// means SyncAsync.
	Mode SyncMode

	// BandwidthBps and LatencySec describe the sync fabric links. Zero
	// values default to 100 GbE / 1 ms.
	BandwidthBps float64
	LatencySec   float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Replicas < 1 {
		return fmt.Errorf("cluster: Replicas must be >= 1, got %d", c.Replicas)
	}
	if c.SyncEvery < 0 {
		return fmt.Errorf("cluster: SyncEvery must be non-negative")
	}
	if _, err := ParseSyncMode(string(c.Mode)); err != nil {
		return err
	}
	if c.BandwidthBps < 0 || c.LatencySec < 0 {
		return fmt.Errorf("cluster: link parameters must be non-negative")
	}
	return c.Base.Validate()
}

// Cluster is a fleet of replica Systems behind a Router. It implements the
// same Serve/Stats surface as a single core.System, so callers can scale
// from one node to a fleet without changing the serving loop, and it is safe
// for concurrent callers (see the package comment for the locking model).
type Cluster struct {
	cfg      Config
	mode     SyncMode
	replicas []*core.System
	router   Router
	sync     *collective.SyncGroup
	async    *collective.AsyncSyncGroup

	// syncClock accumulates virtual time spent inside priority-merge syncs,
	// separate from the replicas' serving clocks.
	syncClock *simnet.Clock

	// fleetMu is the serve/sync barrier: Serve holds it for read; barrier
	// syncs (every periodic sync in barrier mode, SyncNow and consistency
	// probes in both modes) hold it for write. The async pipeline never
	// takes it.
	fleetMu sync.RWMutex
	// syncedEpoch is the last SyncEvery epoch a periodic sync has covered.
	// Atomic: in barrier mode it is written under the fleet write lock, in
	// async mode by the pipeline goroutine; serve-path trigger checks read
	// it lock-free in both modes.
	syncedEpoch atomic.Int64
	// pipe drives asynchronous periodic syncs (nil in barrier mode or when
	// periodic syncs are disabled).
	pipe *syncPipeline

	// testSyncStall, when set by tests, is invoked by the async pipeline
	// after the snapshot while the merge is staged — a hook to hold a sync
	// "in flight" and prove serving does not block behind it.
	testSyncStall func()

	// gen counts state-changing operations (serves, syncs); the merged-stats
	// cache is keyed on it so Stats() is O(1) between changes. It is sharded
	// by replica so concurrent workers bump disjoint cache lines on the
	// serve hot path instead of contending on one atomic.
	gen     *metrics.ShardedCounter
	statsMu sync.Mutex
	stats   core.Stats
	statsOK bool
	statsAt uint64
}

// New builds the fleet: Replicas identical Systems from cfg.Base (shared
// base checkpoint), wired into one SyncGroup.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Router == nil {
		cfg.Router = &roundRobinRouter{}
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = simnet.Gbps100
	}
	if cfg.LatencySec == 0 {
		cfg.LatencySec = 0.001
	}
	mode, err := ParseSyncMode(string(cfg.Mode))
	if err != nil {
		return nil, err
	}
	cfg.Mode = mode
	c := &Cluster{
		cfg:       cfg,
		mode:      mode,
		router:    cfg.Router,
		syncClock: simnet.NewClock(),
		gen:       metrics.NewShardedCounter(cfg.Replicas),
	}
	sets := make([]*lora.Set, cfg.Replicas)
	for i := range sets {
		opts := cfg.Base
		// All replicas must hold structurally compatible LoRA factors for
		// the merge; see Config.Base.
		opts.LoRA.DisableRankAdapt = true
		sys, err := core.New(opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		c.replicas = append(c.replicas, sys)
		sets[i] = sys.LoRA
	}
	c.sync = collective.NewSyncGroup(sets, cfg.BandwidthBps, cfg.LatencySec)
	c.async = collective.NewAsyncSyncGroup(c.sync)
	if mode == SyncAsync && cfg.SyncEvery > 0 {
		c.pipe = newSyncPipeline(c)
	}
	return c, nil
}

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.replicas) }

// Replica exposes one replica System (read-mostly: experiments and tests).
func (c *Cluster) Replica(i int) *core.System { return c.replicas[i] }

// RouterName returns the active routing policy's name.
func (c *Cluster) RouterName() string { return c.router.Name() }

// Mode returns the periodic-sync propagation mode.
func (c *Cluster) Mode() SyncMode { return c.mode }

// NumShards returns the number of independently-serving shards (replicas).
// Together with ShardOf and ServeShard it lets a load driver pre-route
// requests and preserve per-replica order across worker goroutines.
func (c *Cluster) NumShards() int { return len(c.replicas) }

// ShardOf routes one request to a replica index without serving it. Routing
// and serving are deliberately split so a concurrent driver can route the
// trace in a single deterministic sequence and then serve shards in
// parallel. Each request must be routed exactly once: stateful routers
// (round-robin) advance their cursor here.
func (c *Cluster) ShardOf(s trace.Sample) int { return c.router.Route(s, c.replicas) }

// Serve routes one request to a replica and serves it there (including that
// replica's co-located training tick). Safe for concurrent callers; note
// that concurrent callers race for per-replica arrival order, so run-to-run
// determinism under concurrency additionally needs ordered per-shard
// delivery (internal/driver provides it).
func (c *Cluster) Serve(s trace.Sample) (core.Response, error) {
	return c.ServeShard(c.ShardOf(s), s)
}

// ServeShard serves one request on a specific replica, then fires any
// periodic LoRA syncs whose virtual-time epoch the fleet clock has crossed —
// synchronously behind the fleet write lock in barrier mode, or handed to
// the background pipeline (without ever taking a fleet-wide write lock) in
// async mode.
func (c *Cluster) ServeShard(shard int, s trace.Sample) (core.Response, error) {
	if shard < 0 || shard >= len(c.replicas) {
		return core.Response{}, fmt.Errorf("cluster: router %s picked replica %d of %d",
			c.router.Name(), shard, len(c.replicas))
	}
	if c.pipe != nil {
		if err := c.pipe.Err(); err != nil {
			return core.Response{}, err
		}
	}
	c.fleetMu.RLock()
	resp, err := c.replicas[shard].Serve(s)
	if err != nil {
		c.fleetMu.RUnlock()
		return resp, err
	}
	resp.Replica = shard
	needBarrierSync := false
	if d := c.cfg.SyncEvery.Seconds(); d > 0 {
		if e := c.epochOf(d); e > c.syncedEpoch.Load() {
			if c.mode == SyncBarrier {
				needBarrierSync = true
			} else {
				// Kick while still holding the read lock (kick is
				// non-blocking and touches neither fleetMu nor the
				// replicas), so anyone holding the WRITE lock knows no new
				// pipeline work can appear under them — the invariant
				// SyncNow and ReplicasConsistent rely on when they drain.
				c.pipe.kick(e)
			}
		}
	}
	c.gen.Add(shard, 1)
	c.fleetMu.RUnlock()
	if needBarrierSync {
		if err := c.syncPendingEpochs(); err != nil {
			return resp, err
		}
	}
	return resp, nil
}

// epochOf returns the SyncEvery epoch the fleet clock is currently in.
func (c *Cluster) epochOf(d float64) int64 {
	return int64(math.Floor(c.fleetClock() / d))
}

// syncPendingEpochs takes the fleet write lock and syncs once per epoch the
// fleet clock has crossed since the last periodic sync — the barrier-mode
// protocol. The recheck under the write lock makes racing callers
// idempotent: whoever gets the lock first syncs, the rest observe
// syncedEpoch caught up and do nothing.
func (c *Cluster) syncPendingEpochs() error {
	d := c.cfg.SyncEvery.Seconds()
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	for target := c.epochOf(d); c.syncedEpoch.Load() < target; c.syncedEpoch.Add(1) {
		if _, err := c.syncLocked(); err != nil {
			return fmt.Errorf("cluster: periodic sync: %w", err)
		}
	}
	return nil
}

// fleetClock returns the most advanced replica clock — the fleet's wall
// time under concurrent serving. Clock reads are atomic, so this is safe
// from any goroutine.
func (c *Cluster) fleetClock() float64 {
	max := 0.0
	for _, r := range c.replicas {
		if t := r.Clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// syncPipeline drives asynchronous periodic syncs: serve-path triggers kick
// it with the epoch target they observed, and a single background worker
// processes one epoch at a time — snapshot, staged merge, per-replica
// publish — until it has caught up. The worker exits when idle, so an idle
// Cluster holds no goroutines.
type syncPipeline struct {
	c *Cluster

	mu      sync.Mutex
	cond    *sync.Cond
	target  int64 // highest epoch any trigger has requested
	running bool  // a worker goroutine is active
	err     error // first pipeline failure, surfaced on later calls

	failed atomic.Bool // lock-free fast path for the error check
}

func newSyncPipeline(c *Cluster) *syncPipeline {
	p := &syncPipeline{c: c, target: -1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Err returns the first pipeline failure, if any (lock-free when healthy).
func (p *syncPipeline) Err() error {
	if p == nil || !p.failed.Load() {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// kick requests syncs up to epoch target and returns immediately, starting
// the background worker if none is active.
func (p *syncPipeline) kick(target int64) {
	p.mu.Lock()
	if target > p.target {
		p.target = target
	}
	if p.running || p.err != nil {
		p.mu.Unlock()
		return
	}
	p.running = true
	p.mu.Unlock()
	go p.run()
}

// run processes pending epochs until caught up, then exits.
func (p *syncPipeline) run() {
	for {
		p.mu.Lock()
		if p.err != nil || p.c.syncedEpoch.Load() >= p.target {
			p.running = false
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		if err := p.c.syncEpochAsync(); err != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = fmt.Errorf("cluster: async periodic sync: %w", err)
				p.failed.Store(true)
			}
			p.mu.Unlock()
		}
	}
}

// drain blocks until the pipeline has no in-flight work (every epoch kicked
// so far is published) and returns its sticky error, if any. It never blocks
// serving — only the caller waits.
func (p *syncPipeline) drain() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.running {
		p.cond.Wait()
	}
	return p.err
}

// syncEpochAsync runs one epoch of the asynchronous protocol:
//
//  1. snapshot — each replica is locked individually, just long enough to
//     export (and clear) its modified-row support;
//  2. merge — PriorityMerge plus the simulated AllGather pricing run on a
//     background goroutine (collective.AsyncSyncGroup), with the cost
//     charged to the sync clock, not to any serving clock;
//  3. publish — the merged state is installed per replica through
//     epoch-versioned atomic pointer swaps.
//
// No step takes the fleet-wide write lock, so serving proceeds throughout.
func (c *Cluster) syncEpochAsync() error {
	states := make([][]lora.TableState, len(c.replicas))
	for i, r := range c.replicas {
		states[i] = r.SnapshotLoRA()
	}
	pending := c.async.Begin(states)
	if hook := c.testSyncStall; hook != nil {
		hook()
	}
	merged, _, epoch, err := c.async.Finish(pending, c.syncClock)
	if err != nil {
		return err
	}
	for _, r := range c.replicas {
		r.PublishLoRA(merged, epoch)
	}
	c.syncedEpoch.Add(1)
	c.gen.Add(0, 1)
	return nil
}

// quiesceSyncs waits for the async pipeline (if any) to finish all epochs
// kicked so far, so fleet-frozen operations and final statistics observe a
// settled adapter state. No-op in barrier mode.
func (c *Cluster) quiesceSyncs() error { return c.pipe.drain() }

// Err returns the async pipeline's sticky failure, if any (nil in barrier
// mode and on a healthy pipeline). A failed periodic sync also surfaces on
// every subsequent Serve/ServeShard and SyncNow; this accessor exists for
// callers that only poll Stats — which reports completed epochs and cannot
// carry an error — after a drive has ended.
func (c *Cluster) Err() error { return c.pipe.Err() }

// SyncNow runs one LoRA priority-merge synchronization across the fleet
// (Algorithm 3 + tree AllGather) and returns its merge statistics. It is an
// explicit barrier in both modes: it takes the fleet-wide write lock and
// THEN drains any in-flight asynchronous epochs (safe: the pipeline never
// touches fleetMu, and with the write lock held no serve can kick a new
// one), so no background publish can land after SyncNow returns. After it
// returns every replica holds identical adapter state. Manual syncs do not
// consume periodic epochs.
func (c *Cluster) SyncNow() (collective.MergeStats, error) {
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	if err := c.quiesceSyncs(); err != nil {
		return collective.MergeStats{}, err
	}
	return c.syncLocked()
}

// lockReplicas freezes every replica's node mutex (ascending order, no
// cycles: nothing holds one replica's mutex while waiting on another's), so
// fleet-wide mutations honor core.System's concurrency contract even for
// callers driving a replica directly via Replica(i). Callers must hold
// fleetMu for write.
func (c *Cluster) lockReplicas() {
	for _, r := range c.replicas {
		r.Lock()
	}
}

func (c *Cluster) unlockReplicas() {
	for i := len(c.replicas) - 1; i >= 0; i-- {
		c.replicas[i].Unlock()
	}
}

// syncLocked runs one sync; callers must hold the fleet write lock.
func (c *Cluster) syncLocked() (collective.MergeStats, error) {
	c.lockReplicas()
	stats, err := c.sync.Sync(c.syncClock)
	c.unlockReplicas()
	if err != nil {
		return stats, fmt.Errorf("cluster: sync failed: %w", err)
	}
	c.gen.Add(0, 1)
	return stats, nil
}

// ReplicasConsistent verifies the §II-C invariant: for the first idsPerTable
// ids of every table, all replicas produce identical effective embedding
// rows (base + LoRA delta). It is meaningful right after a sync. It takes
// the fleet write lock and then drains the async pipeline (ordering matters:
// with the write lock held no serve can kick a fresh epoch, so no background
// publish can interleave with the probe), reading a frozen snapshot.
func (c *Cluster) ReplicasConsistent(idsPerTable int) bool {
	if len(c.replicas) < 2 {
		return true
	}
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	if err := c.quiesceSyncs(); err != nil {
		return false
	}
	c.lockReplicas()
	defer c.unlockReplicas()
	p := c.cfg.Base.Profile
	ref := make([]float64, p.EmbeddingDim)
	probe := make([]float64, p.EmbeddingDim)
	for table := 0; table < p.NumTables; table++ {
		n := int32(idsPerTable)
		if int(n) > p.TableSize {
			n = int32(p.TableSize)
		}
		for id := int32(0); id < n; id++ {
			c.replicas[0].LoRA.EffectiveRow(table, id, ref)
			for r := 1; r < len(c.replicas); r++ {
				c.replicas[r].LoRA.EffectiveRow(table, id, probe)
				for d := range ref {
					if probe[d] != ref[d] {
						return false
					}
				}
			}
		}
	}
	return true
}

// Stats returns the merged fleet snapshot: exact sums for counters, a true
// fleet-wide P99/P50 computed over the union of the replicas' latency
// windows (not an average of per-replica quantiles), and the per-replica
// breakdown in Replicas.
//
// In async mode Stats first drains the pipeline, so the snapshot reflects
// every sync epoch the fleet had crossed when the call was made — which is
// what makes the final sync counts of a run deterministic for any worker
// count. Draining waits only for the background merge, never for serving.
// A failed async sync cannot be reported here (Stats carries no error);
// it surfaces on every subsequent Serve and via Err().
//
// When no latency samples have been retained anywhere in the fleet (nothing
// served yet), P50 and P99 are NaN — the documented "no data" sentinel;
// check with math.IsNaN rather than comparing against zero, which is a
// legitimate latency floor.
//
// Merging is O(replicas × latency window); the result is cached and
// recomputed only after state has changed (a serve or a sync), so polling
// Stats in a reporting loop is cheap.
func (c *Cluster) Stats() core.Stats {
	// Quiesce before reading the generation counter so a draining sync's
	// publish lands inside this snapshot, not after it.
	_ = c.quiesceSyncs()
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	gen := c.gen.Load()
	if c.statsOK && gen == c.statsAt {
		return cloneStats(c.stats)
	}
	st := c.mergedStats()
	c.stats = st
	c.statsAt = gen
	c.statsOK = true
	return cloneStats(st)
}

// cloneStats returns a copy whose Replicas slice does not alias the cache.
func cloneStats(st core.Stats) core.Stats {
	st.Replicas = append([]core.Stats(nil), st.Replicas...)
	return st
}

// mergedStats recomputes the fleet snapshot from the replicas.
func (c *Cluster) mergedStats() core.Stats {
	c.fleetMu.RLock()
	defer c.fleetMu.RUnlock()
	merged := core.Stats{
		VirtualTime: c.fleetClock(),
	}
	gs := c.sync.GroupStats()
	merged.Syncs = gs.Syncs
	merged.SyncBytes = gs.PayloadBytes
	merged.SyncSeconds = gs.Seconds()
	merged.SyncComputeSeconds = gs.ComputeSeconds
	merged.SyncPublishSeconds = gs.PublishSeconds
	merged.SLA = c.cfg.Base.Node.SLA

	var lat []float64
	var latencySum float64
	var hitInf, hitTrain float64
	for _, r := range c.replicas {
		rs := r.Stats()
		merged.Served += rs.Served
		merged.Violations += rs.Violations
		merged.TrainSteps += rs.TrainSteps
		merged.FullSyncs += rs.FullSyncs
		merged.LoRAHotRows += rs.LoRAHotRows
		latencySum += rs.MeanLatency * float64(rs.Served)
		// Weight cache hit ratios by requests served, like MeanLatency: an
		// unweighted mean would let a nearly idle replica's ratio swamp the
		// workload-level truth under skewed routing.
		hitInf += rs.InferenceHitRatio * float64(rs.Served)
		hitTrain += rs.TrainingHitRatio * float64(rs.Served)
		lat = append(lat, r.LatencyWindow()...)
		merged.Replicas = append(merged.Replicas, rs)
	}
	if len(lat) == 0 {
		// Documented sentinel: no retained samples means the quantiles are
		// undefined, not zero.
		merged.P50 = math.NaN()
		merged.P99 = math.NaN()
	} else {
		merged.P50 = metrics.Quantile(lat, 0.50)
		merged.P99 = metrics.Quantile(lat, 0.99)
	}
	if merged.Served > 0 {
		merged.ViolationRate = float64(merged.Violations) / float64(merged.Served)
		merged.MeanLatency = latencySum / float64(merged.Served)
		merged.InferenceHitRatio = hitInf / float64(merged.Served)
		merged.TrainingHitRatio = hitTrain / float64(merged.Served)
	}
	// Adapter footprint and rank are identical across replicas by
	// construction; report one replica's view, not the sum.
	merged.MemoryOverhead = c.replicas[0].MemoryOverhead()
	merged.LoRARank = c.replicas[0].LoRARank()
	return merged
}
