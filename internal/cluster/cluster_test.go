package cluster

import (
	"math"
	"testing"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/trace"
)

func testProfile(t *testing.T) trace.Profile {
	t.Helper()
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		t.Fatal(err)
	}
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

func testConfig(t *testing.T, replicas int) Config {
	t.Helper()
	opts := core.DefaultOptions(testProfile(t), 42)
	opts.TrainInterval = 4
	return Config{Base: opts, Replicas: replicas}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig(t, 0)
	if _, err := New(cfg); err == nil {
		t.Fatal("Replicas=0 must be rejected")
	}
	cfg = testConfig(t, 2)
	cfg.SyncEvery = -time.Second
	if _, err := New(cfg); err == nil {
		t.Fatal("negative SyncEvery must be rejected")
	}
}

func TestRoundRobinRouterCycles(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 7)
	for i := 0; i < 9; i++ {
		resp, err := c.Serve(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != i%3 {
			t.Fatalf("request %d routed to %d, want %d", i, resp.Replica, i%3)
		}
	}
}

func TestHashRouterDeterministic(t *testing.T) {
	c, err := New(func() Config { cfg := testConfig(t, 4); r, _ := NewRouter(Hash); cfg.Router = r; return cfg }())
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 9)
	s := gen.Next()
	first, err := c.Serve(s)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		resp, err := c.Serve(s)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != first.Replica {
			t.Fatalf("hash router not deterministic: %d then %d", first.Replica, resp.Replica)
		}
		r2, err := c.Serve(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		seen[r2.Replica] = true
	}
	if len(seen) < 2 {
		t.Fatalf("hash router sent every distinct request to one replica: %v", seen)
	}
}

func TestLeastLoadedBalancesBacklog(t *testing.T) {
	cfg := testConfig(t, 3)
	r, err := NewRouter(LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = r
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 11)
	for i := 0; i < 300; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	for i, rs := range st.Replicas {
		if rs.Served == 0 {
			t.Fatalf("replica %d never served under least-loaded", i)
		}
	}
}

func TestUnknownRouterPolicy(t *testing.T) {
	if _, err := NewRouter(Policy("nope")); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestSyncRestoresReplicaConsistency(t *testing.T) {
	cfg := testConfig(t, 4)
	r, err := NewRouter(Hash)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = r
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 13)
	for i := 0; i < 800; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if c.ReplicasConsistent(50) {
		t.Fatal("sharded training must diverge replicas before sync")
	}
	stats, err := c.SyncNow()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 4 || stats.RowsMerged == 0 || stats.PayloadBytes == 0 {
		t.Fatalf("implausible merge stats: %+v", stats)
	}
	if !c.ReplicasConsistent(50) {
		t.Fatal("replicas must hold identical effective embeddings after sync")
	}
}

func TestPeriodicSyncTriggers(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.SyncEvery = 50 * time.Millisecond // a few requests of virtual time
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 17)
	for i := 0; i < 400; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Syncs == 0 {
		t.Fatal("periodic sync never fired")
	}
	if st.SyncBytes == 0 || st.SyncSeconds <= 0 {
		t.Fatalf("sync accounting missing: %+v", st)
	}
}

// TestStatsEmptyWindowSentinel is the regression test for the silent
// "P99Latency: 0" bug: an idle fleet has no retained latency samples, so its
// quantiles are undefined and must surface as the documented NaN sentinel —
// not as a zero that reads like a perfect latency.
func TestStatsEmptyWindowSentinel(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Served != 0 {
		t.Fatalf("idle fleet served %d", st.Served)
	}
	if !math.IsNaN(st.P99) || !math.IsNaN(st.P50) {
		t.Fatalf("idle fleet must report NaN quantiles, got P50=%v P99=%v", st.P50, st.P99)
	}
	if _, err := c.Serve(trace.MustNewGenerator(testProfile(t), 1).Next()); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if math.IsNaN(st.P99) || st.P99 <= 0 {
		t.Fatalf("after serving, P99 must be a real latency, got %v", st.P99)
	}
}

// TestStatsCachedBetweenChanges verifies that Stats is memoized until the
// next state change instead of re-merging the fleet on every call.
func TestStatsCachedBetweenChanges(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 21)
	for i := 0; i < 50; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	a, b := c.Stats(), c.Stats()
	if a.Served != b.Served || a.P99 != b.P99 || a.VirtualTime != b.VirtualTime {
		t.Fatalf("idempotent Stats calls differ: %+v vs %+v", a, b)
	}
	// Mutating the cached copy's breakdown must not leak into the cache.
	if len(a.Replicas) > 0 {
		a.Replicas[0].Served = 1 << 40
		if got := c.Stats().Replicas[0].Served; got == 1<<40 {
			t.Fatal("Stats cache aliases the returned Replicas slice")
		}
	}
	if _, err := c.Serve(gen.Next()); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Served != a.Served+1 {
		t.Fatalf("cache not invalidated by Serve: served %d, want %d", after.Served, a.Served+1)
	}
	if _, err := c.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Syncs; got != after.Syncs+1 {
		t.Fatalf("cache not invalidated by SyncNow: syncs %d, want %d", got, after.Syncs+1)
	}
}

func TestMergedStats(t *testing.T) {
	cfg := testConfig(t, 3)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 19)
	for i := 0; i < 300; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Served != 300 {
		t.Fatalf("merged Served = %d, want 300", st.Served)
	}
	if len(st.Replicas) != 3 {
		t.Fatalf("want 3 replica breakdowns, got %d", len(st.Replicas))
	}
	var sumServed, sumSteps uint64
	for _, rs := range st.Replicas {
		sumServed += rs.Served
		sumSteps += rs.TrainSteps
	}
	if sumServed != st.Served || sumSteps != st.TrainSteps {
		t.Fatalf("breakdown does not add up: %+v", st)
	}
	if st.P99 <= 0 || st.MeanLatency <= 0 {
		t.Fatalf("fleet latency stats missing: %+v", st)
	}
	if st.VirtualTime <= 0 {
		t.Fatal("fleet clock must advance")
	}
}
