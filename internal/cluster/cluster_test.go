package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/fleet"
	"liveupdate/internal/trace"
)

func testProfile(t *testing.T) trace.Profile {
	t.Helper()
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		t.Fatal(err)
	}
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

func testConfig(t *testing.T, replicas int) Config {
	t.Helper()
	opts := core.DefaultOptions(testProfile(t), 42)
	opts.TrainInterval = 4
	return Config{Base: opts, Replicas: replicas}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig(t, 0)
	if _, err := New(cfg); err == nil {
		t.Fatal("Replicas=0 must be rejected")
	}
	cfg = testConfig(t, 2)
	cfg.SyncEvery = -time.Second
	if _, err := New(cfg); err == nil {
		t.Fatal("negative SyncEvery must be rejected")
	}
	cfg = testConfig(t, 2)
	cfg.Mode = SyncMode("mostly-stopped-world")
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown sync mode must be rejected")
	}
}

func TestParseSyncMode(t *testing.T) {
	if m, err := ParseSyncMode(""); err != nil || m != SyncAsync {
		t.Fatalf("empty mode → (%v, %v), want async default", m, err)
	}
	for _, m := range SyncModes() {
		got, err := ParseSyncMode(string(m))
		if err != nil || got != m {
			t.Fatalf("ParseSyncMode(%q) = (%v, %v)", m, got, err)
		}
	}
	if _, err := ParseSyncMode("nope"); err == nil {
		t.Fatal("unknown mode must error")
	}
	c, err := New(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode() != SyncAsync {
		t.Fatalf("default mode = %s, want %s", c.Mode(), SyncAsync)
	}
}

// TestAsyncServeNeverBlocksOnInFlightSync is the tentpole acceptance test:
// with SyncMode async, ServeShard must not block on any fleet-wide write
// lock while a periodic sync is in flight. The test parks the pipeline
// between its snapshot and publish steps via the stall hook, then serves
// from N goroutines and requires every request to complete — with a bounded
// per-call wall latency — while the merge is still provably unpublished.
// Under the barrier protocol this workload would deadlock-by-design: the
// periodic sync would hold the fleet write lock for the whole stall.
func TestAsyncServeNeverBlocksOnInFlightSync(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.SyncEvery = 20 * time.Millisecond // crossed within a few requests
	cfg.Mode = SyncAsync
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inFlight := make(chan struct{}) // closed when the first sync reaches the stall
	release := make(chan struct{})  // closed by the test to let the sync finish
	var hookOnce sync.Once
	c.testSyncStall = func() {
		hookOnce.Do(func() { close(inFlight) })
		<-release
	}

	gen := trace.MustNewGenerator(testProfile(t), 23)
	// Route (deterministically) enough requests to cross the first epoch.
	var warm []trace.Sample
	shards := make([]int, 0, 64)
	for i := 0; i < 64; i++ {
		s := gen.Next()
		warm = append(warm, s)
		shards = append(shards, c.ShardOf(s))
	}
	for i, s := range warm {
		if _, err := c.ServeShard(shards[i], s); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-inFlight:
	case <-time.After(10 * time.Second):
		t.Fatal("periodic sync never started: fixture too small")
	}

	// A sync is now in flight and stalled. Serve from N goroutines, one per
	// replica to keep per-shard order deterministic, and require completion
	// with bounded per-call latency while the merge stays unpublished.
	const perWorker = 50
	const bound = 5 * time.Second // generous for CI; a barrier would stall forever
	var wg sync.WaitGroup
	errs := make(chan error, c.Size())
	for shard := 0; shard < c.Size(); shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			g := trace.MustNewGenerator(testProfile(t), uint64(100+shard))
			for i := 0; i < perWorker; i++ {
				start := time.Now()
				if _, err := c.ServeShard(shard, g.Next()); err != nil {
					errs <- err
					return
				}
				if d := time.Since(start); d > bound {
					errs <- fmt.Errorf("shard %d: serve stalled %v behind an in-flight sync", shard, d)
					return
				}
			}
		}(shard)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The serving above must have happened entirely during the stalled sync.
	select {
	case <-release:
		t.Fatal("impossible: release already closed")
	default:
	}
	if got := c.syncedEpoch.Load(); got != 0 {
		t.Fatalf("sync published during stall: syncedEpoch = %d", got)
	}

	close(release)
	st := c.Stats() // drains the pipeline
	if st.Syncs == 0 {
		t.Fatal("stalled sync must complete after release")
	}
	wantServed := uint64(len(warm) + c.Size()*perWorker)
	if st.Served != wantServed {
		t.Fatalf("served %d, want %d", st.Served, wantServed)
	}
}

// TestAsyncMatchesBarrierVirtualStats drives the same trace through a fleet
// in each mode sequentially and checks that every virtual-time statistic the
// determinism contract covers — Served, Violations, TrainSteps, sync counts,
// fleet clock, latency quantiles — is identical across modes: the pipeline
// changes WHEN merged values land, never how time or latency accrue.
func TestAsyncMatchesBarrierVirtualStats(t *testing.T) {
	run := func(mode SyncMode) core.Stats {
		cfg := testConfig(t, 3)
		cfg.SyncEvery = 50 * time.Millisecond
		cfg.Mode = mode
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.MustNewGenerator(testProfile(t), 29)
		for i := 0; i < 500; i++ {
			if _, err := c.Serve(gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	b := run(SyncBarrier)
	a := run(SyncAsync)
	if b.Syncs == 0 {
		t.Fatal("fixture too small: no periodic syncs fired")
	}
	if a.Served != b.Served || a.Violations != b.Violations ||
		a.TrainSteps != b.TrainSteps || a.Syncs != b.Syncs ||
		a.VirtualTime != b.VirtualTime || a.P99 != b.P99 || a.P50 != b.P50 {
		t.Fatalf("modes diverge on virtual-time stats:\n  barrier: served=%d viol=%d steps=%d syncs=%d vt=%v p99=%v\n  async:   served=%d viol=%d steps=%d syncs=%d vt=%v p99=%v",
			b.Served, b.Violations, b.TrainSteps, b.Syncs, b.VirtualTime, b.P99,
			a.Served, a.Violations, a.TrainSteps, a.Syncs, a.VirtualTime, a.P99)
	}
	if a.SyncComputeSeconds <= 0 || a.SyncPublishSeconds <= 0 {
		t.Fatalf("async sync-cost split missing: %+v", a)
	}
	if math.Abs(a.SyncSeconds-(a.SyncComputeSeconds+a.SyncPublishSeconds)) > 1e-12 {
		t.Fatalf("SyncSeconds %v != compute %v + publish %v",
			a.SyncSeconds, a.SyncComputeSeconds, a.SyncPublishSeconds)
	}
}

// TestAsyncPublishStampsEpochs verifies the versioned publish protocol: each
// completed async epoch installs a monotonically increasing epoch stamp on
// every replica's adapter set, readable lock-free.
func TestAsyncPublishStampsEpochs(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.SyncEvery = 30 * time.Millisecond
	cfg.Mode = SyncAsync
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		if e := c.Replica(i).AdapterEpoch(); e != -1 {
			t.Fatalf("replica %d epoch before first sync = %d, want -1", i, e)
		}
	}
	gen := trace.MustNewGenerator(testProfile(t), 37)
	for i := 0; i < 400; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Syncs == 0 {
		t.Fatal("no periodic syncs fired")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("healthy pipeline must report nil Err, got %v", err)
	}
	want := int64(st.Syncs)
	for i := 0; i < c.Size(); i++ {
		if e := c.Replica(i).AdapterEpoch(); e != want {
			t.Fatalf("replica %d epoch = %d, want %d", i, e, want)
		}
		v := c.Replica(i).AdapterVersion()
		if v == nil || len(v.Tables) != testProfile(t).NumTables {
			t.Fatalf("replica %d published version malformed: %+v", i, v)
		}
	}
}

func TestRoundRobinRouterCycles(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 7)
	for i := 0; i < 9; i++ {
		resp, err := c.Serve(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != i%3 {
			t.Fatalf("request %d routed to %d, want %d", i, resp.Replica, i%3)
		}
	}
}

func TestHashRouterDeterministic(t *testing.T) {
	c, err := New(func() Config { cfg := testConfig(t, 4); r, _ := NewRouter(Hash); cfg.Router = r; return cfg }())
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 9)
	s := gen.Next()
	first, err := c.Serve(s)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		resp, err := c.Serve(s)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != first.Replica {
			t.Fatalf("hash router not deterministic: %d then %d", first.Replica, resp.Replica)
		}
		r2, err := c.Serve(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		seen[r2.Replica] = true
	}
	if len(seen) < 2 {
		t.Fatalf("hash router sent every distinct request to one replica: %v", seen)
	}
}

func TestLeastLoadedBalancesBacklog(t *testing.T) {
	cfg := testConfig(t, 3)
	r, err := NewRouter(LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = r
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 11)
	for i := 0; i < 300; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	for i, rs := range st.Replicas {
		if rs.Served == 0 {
			t.Fatalf("replica %d never served under least-loaded", i)
		}
	}
}

func TestUnknownRouterPolicy(t *testing.T) {
	if _, err := NewRouter(Policy("nope")); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestSyncRestoresReplicaConsistency(t *testing.T) {
	cfg := testConfig(t, 4)
	r, err := NewRouter(Hash)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = r
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 13)
	for i := 0; i < 800; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if c.ReplicasConsistent(50) {
		t.Fatal("sharded training must diverge replicas before sync")
	}
	stats, err := c.SyncNow()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 4 || stats.RowsMerged == 0 || stats.PayloadBytes == 0 {
		t.Fatalf("implausible merge stats: %+v", stats)
	}
	if !c.ReplicasConsistent(50) {
		t.Fatal("replicas must hold identical effective embeddings after sync")
	}
}

func TestPeriodicSyncTriggers(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.SyncEvery = 50 * time.Millisecond // a few requests of virtual time
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 17)
	for i := 0; i < 400; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Syncs == 0 {
		t.Fatal("periodic sync never fired")
	}
	if st.SyncBytes == 0 || st.SyncSeconds <= 0 {
		t.Fatalf("sync accounting missing: %+v", st)
	}
}

// TestStatsEmptyWindowSentinel is the regression test for the silent
// "P99Latency: 0" bug: an idle fleet has no retained latency samples, so its
// quantiles are undefined and must surface as the documented NaN sentinel —
// not as a zero that reads like a perfect latency.
func TestStatsEmptyWindowSentinel(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Served != 0 {
		t.Fatalf("idle fleet served %d", st.Served)
	}
	if !math.IsNaN(st.P99) || !math.IsNaN(st.P50) {
		t.Fatalf("idle fleet must report NaN quantiles, got P50=%v P99=%v", st.P50, st.P99)
	}
	if _, err := c.Serve(trace.MustNewGenerator(testProfile(t), 1).Next()); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if math.IsNaN(st.P99) || st.P99 <= 0 {
		t.Fatalf("after serving, P99 must be a real latency, got %v", st.P99)
	}
}

// TestStatsCachedBetweenChanges verifies that Stats is memoized until the
// next state change instead of re-merging the fleet on every call.
func TestStatsCachedBetweenChanges(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 21)
	for i := 0; i < 50; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	a, b := c.Stats(), c.Stats()
	if a.Served != b.Served || a.P99 != b.P99 || a.VirtualTime != b.VirtualTime {
		t.Fatalf("idempotent Stats calls differ: %+v vs %+v", a, b)
	}
	// Mutating the cached copy's breakdown must not leak into the cache.
	if len(a.Replicas) > 0 {
		a.Replicas[0].Served = 1 << 40
		if got := c.Stats().Replicas[0].Served; got == 1<<40 {
			t.Fatal("Stats cache aliases the returned Replicas slice")
		}
	}
	if _, err := c.Serve(gen.Next()); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Served != a.Served+1 {
		t.Fatalf("cache not invalidated by Serve: served %d, want %d", after.Served, a.Served+1)
	}
	if _, err := c.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Syncs; got != after.Syncs+1 {
		t.Fatalf("cache not invalidated by SyncNow: syncs %d, want %d", got, after.Syncs+1)
	}
}

func TestMergedStats(t *testing.T) {
	cfg := testConfig(t, 3)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 19)
	for i := 0; i < 300; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Served != 300 {
		t.Fatalf("merged Served = %d, want 300", st.Served)
	}
	if len(st.Replicas) != 3 {
		t.Fatalf("want 3 replica breakdowns, got %d", len(st.Replicas))
	}
	var sumServed, sumSteps uint64
	for _, rs := range st.Replicas {
		sumServed += rs.Served
		sumSteps += rs.TrainSteps
	}
	if sumServed != st.Served || sumSteps != st.TrainSteps {
		t.Fatalf("breakdown does not add up: %+v", st)
	}
	if st.P99 <= 0 || st.MeanLatency <= 0 {
		t.Fatalf("fleet latency stats missing: %+v", st)
	}
	if st.VirtualTime <= 0 {
		t.Fatal("fleet clock must advance")
	}
}

// --- Elastic membership -------------------------------------------------

func TestReplicaBoundsSafe(t *testing.T) {
	c, err := New(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 2, 99} {
		if sys := c.Replica(i); sys != nil {
			t.Fatalf("Replica(%d) = %v, want nil for out-of-range index", i, sys)
		}
	}
	if c.Replica(0) == nil || c.Replica(1) == nil {
		t.Fatal("in-range replicas must be non-nil")
	}
	if err := c.FailReplica(1); err != nil {
		t.Fatal(err)
	}
	if sys := c.Replica(1); sys != nil {
		t.Fatal("an emptied slot must expose a nil replica, not a corpse")
	}
}

func TestClusterMembershipUnderServing(t *testing.T) {
	for _, mode := range SyncModes() {
		cfg := testConfig(t, 3)
		cfg.SyncEvery = 50 * time.Millisecond
		cfg.Mode = mode
		// Keep every LoRA row resident: usage-based pruning evicts
		// previously-published rows at per-replica (wall-clock-dependent in
		// async mode) adapt boundaries, which can leave rows no later merge
		// re-publishes — a sync-protocol quirk orthogonal to membership.
		// With pruning disabled, post-churn consistency is structural.
		cfg.Base.LoRA.PruneThresh = 0
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.MustNewGenerator(testProfile(t), 31)
		serve := func(n int) {
			for i := 0; i < n; i++ {
				if _, err := c.Serve(gen.Next()); err != nil {
					t.Fatalf("%s: serve: %v", mode, err)
				}
			}
		}
		serve(200)
		if err := c.FailReplica(1); err != nil {
			t.Fatalf("%s: fail: %v", mode, err)
		}
		if c.Size() != 2 || c.NumShards() != 3 {
			t.Fatalf("%s: size=%d shards=%d after failure", mode, c.Size(), c.NumShards())
		}
		serve(200) // routing must avoid the empty slot
		slot, err := c.ReplaceReplica(1)
		if err != nil || slot != 1 {
			t.Fatalf("%s: replace: slot=%d err=%v", mode, slot, err)
		}
		serve(200)
		if err := c.Scale(5); err != nil {
			t.Fatalf("%s: scale: %v", mode, err)
		}
		serve(200)
		st := c.Stats()
		if st.Served != 800 {
			t.Fatalf("%s: merged Served=%d, want 800 (departed member's share folded in)", mode, st.Served)
		}
		// One fail (the kill; replacing the already-empty slot is a refill,
		// not a second fail), three joins (refill + scale 3→5).
		if st.Members != 5 || st.Fails != 1 || st.Joins != 3 {
			t.Fatalf("%s: fleet counters: members=%d fails=%d joins=%d", mode, st.Members, st.Fails, st.Joins)
		}
		if st.CatchUpBytes == 0 || st.CatchUpSeconds <= 0 {
			t.Fatalf("%s: catch-up bill missing: %+v", mode, st)
		}
		if st.Syncs == 0 {
			t.Fatalf("%s: periodic syncs must keep firing across membership changes", mode)
		}
		// An explicit barrier merge must reconcile veterans and newcomers.
		if _, err := c.SyncNow(); err != nil {
			t.Fatalf("%s: SyncNow: %v", mode, err)
		}
		if !c.ReplicasConsistent(50) {
			t.Fatalf("%s: fleet inconsistent after post-churn sync", mode)
		}
	}
}

// TestServeShardRedirectsEmptySlot covers the in-flight lane drain: a
// request already routed to a slot whose member failed serves on the next
// active slot instead of erroring.
func TestServeShardRedirectsEmptySlot(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FailReplica(1); err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 41)
	resp, err := c.ServeShard(1, gen.Next())
	if err != nil {
		t.Fatalf("redirected serve failed: %v", err)
	}
	if resp.Replica != 2 {
		t.Fatalf("request for empty slot 1 served by %d, want redirect to 2", resp.Replica)
	}
	if _, err := c.ServeShard(7, gen.Next()); err == nil {
		t.Fatal("out-of-capacity shard must still error")
	}
}

// TestHashRingMembershipRemap is the router contract under churn: failing
// one of N replicas remaps only that replica's key share (≈1/N, never to
// the failed slot), and the replacement claims a share back.
func TestHashRingMembershipRemap(t *testing.T) {
	const n = 5
	cfg := testConfig(t, n)
	r, err := NewRouter(Hash)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = r
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 3000
	gen := trace.MustNewGenerator(testProfile(t), 43)
	samples := make([]trace.Sample, keys)
	before := make([]int, keys)
	for i := range samples {
		samples[i] = gen.Next()
		before[i] = c.ShardOf(samples[i])
	}
	if err := c.FailReplica(3); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, s := range samples {
		after := c.ShardOf(s)
		if after == 3 {
			t.Fatalf("key %d routed to the failed replica", i)
		}
		if before[i] == 3 {
			moved++
		} else if after != before[i] {
			t.Fatalf("key %d moved %d → %d although its replica survived", i, before[i], after)
		}
	}
	if moved == 0 || moved > 2*keys/n {
		t.Fatalf("failure remapped %d/%d keys, want ≈%d (≤%d)", moved, keys, keys/n, 2*keys/n)
	}
	// The replacement takes over exactly the orphaned arcs plus nothing
	// else it isn't entitled to: every key that moves lands on it.
	slot, err := c.ReplaceReplica(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		after := c.ShardOf(s)
		if before[i] != 3 && after != before[i] && after != slot {
			t.Fatalf("key %d moved %d → %d after replace (only slot %d may claim keys)",
				i, before[i], after, slot)
		}
	}
}

// TestLeastLoadedSkipsFailedMember: the backlog router must only ever pick
// live members, even when the failed slot held the smallest clock.
func TestLeastLoadedSkipsFailedMember(t *testing.T) {
	cfg := testConfig(t, 3)
	r, err := NewRouter(LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = r
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 47)
	// Load slots 0 and 2 so the idle slot 1 (clock 0) is the least loaded…
	for i := 0; i < 60; i++ {
		if _, err := c.ServeShard(i%2*2, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ShardOf(gen.Next()); got != 1 {
		t.Fatalf("fixture: least-loaded should pick idle slot 1, got %d", got)
	}
	// …then kill it: the router must never surface the empty slot again.
	if err := c.FailReplica(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s := gen.Next()
		if got := c.ShardOf(s); got == 1 {
			t.Fatal("least-loaded routed to a failed member")
		} else if _, err := c.ServeShard(got, s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParseSyncModeErrorPaths(t *testing.T) {
	for _, bad := range []string{"nope", "ASYNC", " async", "async ", "barrier\n", "sync"} {
		if m, err := ParseSyncMode(bad); err == nil {
			t.Fatalf("ParseSyncMode(%q) = %v, want error", bad, m)
		}
	}
	cfg := testConfig(t, 2)
	cfg.Chaos = fleet.Schedule{{At: -time.Second, Action: fleet.Kill, Arg: 0}}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid chaos schedule must be rejected at construction")
	}
}

// TestConcurrentServeAndMembershipExactCounts hammers the fleet from
// serving goroutines while another goroutine churns membership (fail,
// replace, scale, manual syncs). Two invariants pin the membership
// concurrency fixes: no successfully served request may ever vanish from
// the merged totals (a member's stats fold and its removal from the view
// commit atomically behind the fleet write barrier), and a final merge must
// reconcile every member including mid-churn joiners (catch-up holds the
// sync mutex, so it can never interleave with a publish).
func TestConcurrentServeAndMembershipExactCounts(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.SyncEvery = 30 * time.Millisecond
	cfg.Base.LoRA.PruneThresh = 0 // see TestClusterMembershipUnderServing
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 4, 300
	var served atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := trace.MustNewGenerator(testProfile(t), uint64(100+w))
			for i := 0; i < perWorker; i++ {
				if _, err := c.Serve(gen.Next()); err != nil {
					t.Errorf("worker %d: serve: %v", w, err)
					return
				}
				served.Add(1)
			}
		}(w)
	}
	churn := func() {
		for i := 0; i < 12; i++ {
			if err := c.FailReplica(i % c.NumShards()); err == nil {
				if _, err := c.ReplaceReplica(i % c.NumShards()); err != nil {
					t.Errorf("replace: %v", err)
				}
			}
			if err := c.Scale(3 + i%3); err != nil {
				t.Errorf("scale: %v", err)
			}
			if _, err := c.SyncNow(); err != nil {
				t.Errorf("SyncNow: %v", err)
			}
		}
	}
	wg.Add(1)
	go func() { defer wg.Done(); churn() }()
	wg.Wait()

	st := c.Stats()
	if st.Served != served.Load() {
		t.Fatalf("merged Served=%d but %d requests completed successfully — a member's count was lost in a membership change",
			st.Served, served.Load())
	}
	if _, err := c.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if !c.ReplicasConsistent(30) {
		t.Fatal("fleet inconsistent after churn + final merge: a joiner missed a publish")
	}
}

// TestServeShardBatchMatchesSequential: the batched shard path must produce
// the same virtual-time statistics as serving the identical pre-routed
// stream one request at a time — the acceptance criterion "batched beats
// sequential at equal virtual-time stats" is meaningless without the "equal"
// half. Runs in both sync modes with an aggressive sync cadence so periodic
// epochs fire mid-stream.
func TestServeShardBatchMatchesSequential(t *testing.T) {
	const requests = 2000
	for _, mode := range []SyncMode{SyncBarrier, SyncAsync} {
		for _, batch := range []int{1, 4, 32} {
			build := func() *Cluster {
				cfg := testConfig(t, 3)
				cfg.SyncEvery = 2 * time.Second // virtual; several epochs per run
				cfg.Mode = mode
				r, err := NewRouter(Hash)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Router = r
				c, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			seq, bat := build(), build()
			genA := trace.MustNewGenerator(testProfile(t), 13)
			genB := trace.MustNewGenerator(testProfile(t), 13)

			for i := 0; i < requests; i++ {
				s := genA.Next()
				if _, err := seq.ServeShard(seq.ShardOf(s), s); err != nil {
					t.Fatal(err)
				}
			}

			// Batched: coalesce consecutive same-shard requests, as the
			// driver's lane workers do.
			var pendShard = -1
			var pend []trace.Sample
			resps := make([]core.Response, batch)
			flush := func() {
				if len(pend) == 0 {
					return
				}
				if err := bat.ServeShardBatch(pendShard, pend, resps[:len(pend)]); err != nil {
					t.Fatal(err)
				}
				for _, r := range resps[:len(pend)] {
					if r.Replica != pendShard {
						t.Fatalf("response replica %d, want %d", r.Replica, pendShard)
					}
				}
				pend = pend[:0]
			}
			for i := 0; i < requests; i++ {
				s := genB.Next()
				shard := bat.ShardOf(s)
				if shard != pendShard || len(pend) == batch {
					flush()
					pendShard = shard
				}
				pend = append(pend, s)
			}
			flush()

			ss, bs := seq.Stats(), bat.Stats()
			if ss.Served != bs.Served || ss.Violations != bs.Violations ||
				ss.TrainSteps != bs.TrainSteps || ss.VirtualTime != bs.VirtualTime ||
				ss.P99 != bs.P99 || ss.Syncs != bs.Syncs {
				t.Fatalf("mode=%s batch=%d: stats diverged:\n seq served=%d viol=%d train=%d vt=%v p99=%v syncs=%d\n bat served=%d viol=%d train=%d vt=%v p99=%v syncs=%d",
					mode, batch,
					ss.Served, ss.Violations, ss.TrainSteps, ss.VirtualTime, ss.P99, ss.Syncs,
					bs.Served, bs.Violations, bs.TrainSteps, bs.VirtualTime, bs.P99, bs.Syncs)
			}
			for i := range ss.Replicas {
				if ss.Replicas[i].Served != bs.Replicas[i].Served ||
					ss.Replicas[i].VirtualTime != bs.Replicas[i].VirtualTime {
					t.Fatalf("mode=%s batch=%d replica %d diverged", mode, batch, i)
				}
			}
		}
	}
}

// TestServeShardBatchRedirectAndErrors: a batch aimed at an emptied slot
// redirects like ServeShard; bad shard indices and mismatched buffers error
// without serving anything.
func TestServeShardBatchRedirectAndErrors(t *testing.T) {
	cfg := testConfig(t, 3)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 4)
	batch := []trace.Sample{gen.Next(), gen.Next()}
	resps := make([]core.Response, 2)

	if err := c.ServeShardBatch(1, batch, resps[:1]); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := c.ServeShardBatch(99, batch, resps); err == nil {
		t.Fatal("out-of-range shard must error")
	}
	if err := c.FailReplica(1); err != nil {
		t.Fatal(err)
	}
	if err := c.ServeShardBatch(1, batch, resps); err != nil {
		t.Fatalf("batch to failed slot must redirect: %v", err)
	}
	for _, r := range resps {
		if r.Replica == 1 {
			t.Fatal("redirected batch reported the failed slot")
		}
	}
	if got := c.Stats().Served; got != 2 {
		t.Fatalf("served %d, want 2", got)
	}
}

// TestServeBatchMatchesSequential drives two identical clusters through the
// same trace — one sample-by-sample, one via ServeBatch — and pins the
// documented contract. The subtle hazard is routing: stateful routers
// (round-robin) advance a cursor per ShardOf call, so ServeBatch must route
// each sample exactly once; for hash and round-robin that reproduces the
// sequential replica assignment and latency exactly. Scores may differ in
// the last decimals around a sync epoch (the batch path picks crossed
// epochs up at run boundaries), and a load-aware router legitimately routes
// on batch-arrival backlog, so those are checked only as far as the
// contract promises.
func TestServeBatchMatchesSequential(t *testing.T) {
	for _, policy := range Policies() {
		t.Run(string(policy), func(t *testing.T) {
			build := func() *Cluster {
				cfg := testConfig(t, 3)
				r, err := NewRouter(policy)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Router = r
				cfg.SyncEvery = 500 * time.Millisecond
				c, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			seq, bat := build(), build()

			gen, err := trace.NewGenerator(testProfile(t), 7)
			if err != nil {
				t.Fatal(err)
			}
			const total, chunk = 240, 16
			samples := make([]trace.Sample, total)
			for i := range samples {
				samples[i] = gen.Next()
			}

			want := make([]core.Response, total)
			for i, s := range samples {
				if want[i], err = seq.Serve(s); err != nil {
					t.Fatalf("sequential serve %d: %v", i, err)
				}
			}
			got := make([]core.Response, total)
			for start := 0; start < total; start += chunk {
				end := start + chunk
				if err := bat.ServeBatch(samples[start:end], got[start:end]); err != nil {
					t.Fatalf("ServeBatch[%d:%d]: %v", start, end, err)
				}
			}

			deterministic := policy == RoundRobin || policy == Hash
			for i := range want {
				if deterministic {
					if want[i].Replica != got[i].Replica || want[i].Latency != got[i].Latency {
						t.Fatalf("%s: response %d diverged: sequential %+v, batched %+v",
							policy, i, want[i], got[i])
					}
					if d := want[i].Prob - got[i].Prob; d > 1e-2 || d < -1e-2 {
						t.Fatalf("%s: response %d score diverged beyond sync-boundary noise: %v vs %v",
							policy, i, want[i].Prob, got[i].Prob)
					}
				} else if got[i].Latency <= 0 {
					t.Fatalf("%s: response %d not served: %+v", policy, i, got[i])
				}
			}
			ss, bs := seq.Stats(), bat.Stats()
			if ss.Served != bs.Served {
				t.Fatalf("%s: Served diverged: %d vs %d", policy, ss.Served, bs.Served)
			}
			if deterministic && (ss.P99 != bs.P99 || ss.VirtualTime != bs.VirtualTime ||
				ss.TrainSteps != bs.TrainSteps || ss.Syncs != bs.Syncs) {
				t.Fatalf("%s: stats diverged:\nsequential: served=%d P99=%v virt=%v train=%d syncs=%d\nbatched:    served=%d P99=%v virt=%v train=%d syncs=%d",
					policy, ss.Served, ss.P99, ss.VirtualTime, ss.TrainSteps, ss.Syncs,
					bs.Served, bs.P99, bs.VirtualTime, bs.TrainSteps, bs.Syncs)
			}
		})
	}
}

// TestServeBatchValidatesSlots covers the length-mismatch guard.
func TestServeBatchValidatesSlots(t *testing.T) {
	cfg := testConfig(t, 2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(testProfile(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := []trace.Sample{gen.Next(), gen.Next()}
	if err := c.ServeBatch(samples, make([]core.Response, 1)); err == nil {
		t.Fatal("mismatched response slot count must be rejected")
	}
	if err := c.ServeBatch(nil, nil); err != nil {
		t.Fatalf("empty batch must be a no-op, got %v", err)
	}
}
