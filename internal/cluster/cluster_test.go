package cluster

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/trace"
)

func testProfile(t *testing.T) trace.Profile {
	t.Helper()
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		t.Fatal(err)
	}
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

func testConfig(t *testing.T, replicas int) Config {
	t.Helper()
	opts := core.DefaultOptions(testProfile(t), 42)
	opts.TrainInterval = 4
	return Config{Base: opts, Replicas: replicas}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig(t, 0)
	if _, err := New(cfg); err == nil {
		t.Fatal("Replicas=0 must be rejected")
	}
	cfg = testConfig(t, 2)
	cfg.SyncEvery = -time.Second
	if _, err := New(cfg); err == nil {
		t.Fatal("negative SyncEvery must be rejected")
	}
	cfg = testConfig(t, 2)
	cfg.Mode = SyncMode("mostly-stopped-world")
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown sync mode must be rejected")
	}
}

func TestParseSyncMode(t *testing.T) {
	if m, err := ParseSyncMode(""); err != nil || m != SyncAsync {
		t.Fatalf("empty mode → (%v, %v), want async default", m, err)
	}
	for _, m := range SyncModes() {
		got, err := ParseSyncMode(string(m))
		if err != nil || got != m {
			t.Fatalf("ParseSyncMode(%q) = (%v, %v)", m, got, err)
		}
	}
	if _, err := ParseSyncMode("nope"); err == nil {
		t.Fatal("unknown mode must error")
	}
	c, err := New(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode() != SyncAsync {
		t.Fatalf("default mode = %s, want %s", c.Mode(), SyncAsync)
	}
}

// TestAsyncServeNeverBlocksOnInFlightSync is the tentpole acceptance test:
// with SyncMode async, ServeShard must not block on any fleet-wide write
// lock while a periodic sync is in flight. The test parks the pipeline
// between its snapshot and publish steps via the stall hook, then serves
// from N goroutines and requires every request to complete — with a bounded
// per-call wall latency — while the merge is still provably unpublished.
// Under the barrier protocol this workload would deadlock-by-design: the
// periodic sync would hold the fleet write lock for the whole stall.
func TestAsyncServeNeverBlocksOnInFlightSync(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.SyncEvery = 20 * time.Millisecond // crossed within a few requests
	cfg.Mode = SyncAsync
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inFlight := make(chan struct{}) // closed when the first sync reaches the stall
	release := make(chan struct{})  // closed by the test to let the sync finish
	var hookOnce sync.Once
	c.testSyncStall = func() {
		hookOnce.Do(func() { close(inFlight) })
		<-release
	}

	gen := trace.MustNewGenerator(testProfile(t), 23)
	// Route (deterministically) enough requests to cross the first epoch.
	var warm []trace.Sample
	shards := make([]int, 0, 64)
	for i := 0; i < 64; i++ {
		s := gen.Next()
		warm = append(warm, s)
		shards = append(shards, c.ShardOf(s))
	}
	for i, s := range warm {
		if _, err := c.ServeShard(shards[i], s); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-inFlight:
	case <-time.After(10 * time.Second):
		t.Fatal("periodic sync never started: fixture too small")
	}

	// A sync is now in flight and stalled. Serve from N goroutines, one per
	// replica to keep per-shard order deterministic, and require completion
	// with bounded per-call latency while the merge stays unpublished.
	const perWorker = 50
	const bound = 5 * time.Second // generous for CI; a barrier would stall forever
	var wg sync.WaitGroup
	errs := make(chan error, c.Size())
	for shard := 0; shard < c.Size(); shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			g := trace.MustNewGenerator(testProfile(t), uint64(100+shard))
			for i := 0; i < perWorker; i++ {
				start := time.Now()
				if _, err := c.ServeShard(shard, g.Next()); err != nil {
					errs <- err
					return
				}
				if d := time.Since(start); d > bound {
					errs <- fmt.Errorf("shard %d: serve stalled %v behind an in-flight sync", shard, d)
					return
				}
			}
		}(shard)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The serving above must have happened entirely during the stalled sync.
	select {
	case <-release:
		t.Fatal("impossible: release already closed")
	default:
	}
	if got := c.syncedEpoch.Load(); got != 0 {
		t.Fatalf("sync published during stall: syncedEpoch = %d", got)
	}

	close(release)
	st := c.Stats() // drains the pipeline
	if st.Syncs == 0 {
		t.Fatal("stalled sync must complete after release")
	}
	wantServed := uint64(len(warm) + c.Size()*perWorker)
	if st.Served != wantServed {
		t.Fatalf("served %d, want %d", st.Served, wantServed)
	}
}

// TestAsyncMatchesBarrierVirtualStats drives the same trace through a fleet
// in each mode sequentially and checks that every virtual-time statistic the
// determinism contract covers — Served, Violations, TrainSteps, sync counts,
// fleet clock, latency quantiles — is identical across modes: the pipeline
// changes WHEN merged values land, never how time or latency accrue.
func TestAsyncMatchesBarrierVirtualStats(t *testing.T) {
	run := func(mode SyncMode) core.Stats {
		cfg := testConfig(t, 3)
		cfg.SyncEvery = 50 * time.Millisecond
		cfg.Mode = mode
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := trace.MustNewGenerator(testProfile(t), 29)
		for i := 0; i < 500; i++ {
			if _, err := c.Serve(gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	b := run(SyncBarrier)
	a := run(SyncAsync)
	if b.Syncs == 0 {
		t.Fatal("fixture too small: no periodic syncs fired")
	}
	if a.Served != b.Served || a.Violations != b.Violations ||
		a.TrainSteps != b.TrainSteps || a.Syncs != b.Syncs ||
		a.VirtualTime != b.VirtualTime || a.P99 != b.P99 || a.P50 != b.P50 {
		t.Fatalf("modes diverge on virtual-time stats:\n  barrier: served=%d viol=%d steps=%d syncs=%d vt=%v p99=%v\n  async:   served=%d viol=%d steps=%d syncs=%d vt=%v p99=%v",
			b.Served, b.Violations, b.TrainSteps, b.Syncs, b.VirtualTime, b.P99,
			a.Served, a.Violations, a.TrainSteps, a.Syncs, a.VirtualTime, a.P99)
	}
	if a.SyncComputeSeconds <= 0 || a.SyncPublishSeconds <= 0 {
		t.Fatalf("async sync-cost split missing: %+v", a)
	}
	if math.Abs(a.SyncSeconds-(a.SyncComputeSeconds+a.SyncPublishSeconds)) > 1e-12 {
		t.Fatalf("SyncSeconds %v != compute %v + publish %v",
			a.SyncSeconds, a.SyncComputeSeconds, a.SyncPublishSeconds)
	}
}

// TestAsyncPublishStampsEpochs verifies the versioned publish protocol: each
// completed async epoch installs a monotonically increasing epoch stamp on
// every replica's adapter set, readable lock-free.
func TestAsyncPublishStampsEpochs(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.SyncEvery = 30 * time.Millisecond
	cfg.Mode = SyncAsync
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Size(); i++ {
		if e := c.Replica(i).AdapterEpoch(); e != -1 {
			t.Fatalf("replica %d epoch before first sync = %d, want -1", i, e)
		}
	}
	gen := trace.MustNewGenerator(testProfile(t), 37)
	for i := 0; i < 400; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Syncs == 0 {
		t.Fatal("no periodic syncs fired")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("healthy pipeline must report nil Err, got %v", err)
	}
	want := int64(st.Syncs)
	for i := 0; i < c.Size(); i++ {
		if e := c.Replica(i).AdapterEpoch(); e != want {
			t.Fatalf("replica %d epoch = %d, want %d", i, e, want)
		}
		v := c.Replica(i).AdapterVersion()
		if v == nil || len(v.Tables) != testProfile(t).NumTables {
			t.Fatalf("replica %d published version malformed: %+v", i, v)
		}
	}
}

func TestRoundRobinRouterCycles(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 7)
	for i := 0; i < 9; i++ {
		resp, err := c.Serve(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != i%3 {
			t.Fatalf("request %d routed to %d, want %d", i, resp.Replica, i%3)
		}
	}
}

func TestHashRouterDeterministic(t *testing.T) {
	c, err := New(func() Config { cfg := testConfig(t, 4); r, _ := NewRouter(Hash); cfg.Router = r; return cfg }())
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 9)
	s := gen.Next()
	first, err := c.Serve(s)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		resp, err := c.Serve(s)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Replica != first.Replica {
			t.Fatalf("hash router not deterministic: %d then %d", first.Replica, resp.Replica)
		}
		r2, err := c.Serve(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		seen[r2.Replica] = true
	}
	if len(seen) < 2 {
		t.Fatalf("hash router sent every distinct request to one replica: %v", seen)
	}
}

func TestLeastLoadedBalancesBacklog(t *testing.T) {
	cfg := testConfig(t, 3)
	r, err := NewRouter(LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = r
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 11)
	for i := 0; i < 300; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	for i, rs := range st.Replicas {
		if rs.Served == 0 {
			t.Fatalf("replica %d never served under least-loaded", i)
		}
	}
}

func TestUnknownRouterPolicy(t *testing.T) {
	if _, err := NewRouter(Policy("nope")); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestSyncRestoresReplicaConsistency(t *testing.T) {
	cfg := testConfig(t, 4)
	r, err := NewRouter(Hash)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = r
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 13)
	for i := 0; i < 800; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if c.ReplicasConsistent(50) {
		t.Fatal("sharded training must diverge replicas before sync")
	}
	stats, err := c.SyncNow()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 4 || stats.RowsMerged == 0 || stats.PayloadBytes == 0 {
		t.Fatalf("implausible merge stats: %+v", stats)
	}
	if !c.ReplicasConsistent(50) {
		t.Fatal("replicas must hold identical effective embeddings after sync")
	}
}

func TestPeriodicSyncTriggers(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.SyncEvery = 50 * time.Millisecond // a few requests of virtual time
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 17)
	for i := 0; i < 400; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Syncs == 0 {
		t.Fatal("periodic sync never fired")
	}
	if st.SyncBytes == 0 || st.SyncSeconds <= 0 {
		t.Fatalf("sync accounting missing: %+v", st)
	}
}

// TestStatsEmptyWindowSentinel is the regression test for the silent
// "P99Latency: 0" bug: an idle fleet has no retained latency samples, so its
// quantiles are undefined and must surface as the documented NaN sentinel —
// not as a zero that reads like a perfect latency.
func TestStatsEmptyWindowSentinel(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Served != 0 {
		t.Fatalf("idle fleet served %d", st.Served)
	}
	if !math.IsNaN(st.P99) || !math.IsNaN(st.P50) {
		t.Fatalf("idle fleet must report NaN quantiles, got P50=%v P99=%v", st.P50, st.P99)
	}
	if _, err := c.Serve(trace.MustNewGenerator(testProfile(t), 1).Next()); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if math.IsNaN(st.P99) || st.P99 <= 0 {
		t.Fatalf("after serving, P99 must be a real latency, got %v", st.P99)
	}
}

// TestStatsCachedBetweenChanges verifies that Stats is memoized until the
// next state change instead of re-merging the fleet on every call.
func TestStatsCachedBetweenChanges(t *testing.T) {
	c, err := New(testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 21)
	for i := 0; i < 50; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	a, b := c.Stats(), c.Stats()
	if a.Served != b.Served || a.P99 != b.P99 || a.VirtualTime != b.VirtualTime {
		t.Fatalf("idempotent Stats calls differ: %+v vs %+v", a, b)
	}
	// Mutating the cached copy's breakdown must not leak into the cache.
	if len(a.Replicas) > 0 {
		a.Replicas[0].Served = 1 << 40
		if got := c.Stats().Replicas[0].Served; got == 1<<40 {
			t.Fatal("Stats cache aliases the returned Replicas slice")
		}
	}
	if _, err := c.Serve(gen.Next()); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.Served != a.Served+1 {
		t.Fatalf("cache not invalidated by Serve: served %d, want %d", after.Served, a.Served+1)
	}
	if _, err := c.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Syncs; got != after.Syncs+1 {
		t.Fatalf("cache not invalidated by SyncNow: syncs %d, want %d", got, after.Syncs+1)
	}
}

func TestMergedStats(t *testing.T) {
	cfg := testConfig(t, 3)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 19)
	for i := 0; i < 300; i++ {
		if _, err := c.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Served != 300 {
		t.Fatalf("merged Served = %d, want 300", st.Served)
	}
	if len(st.Replicas) != 3 {
		t.Fatalf("want 3 replica breakdowns, got %d", len(st.Replicas))
	}
	var sumServed, sumSteps uint64
	for _, rs := range st.Replicas {
		sumServed += rs.Served
		sumSteps += rs.TrainSteps
	}
	if sumServed != st.Served || sumSteps != st.TrainSteps {
		t.Fatalf("breakdown does not add up: %+v", st)
	}
	if st.P99 <= 0 || st.MeanLatency <= 0 {
		t.Fatalf("fleet latency stats missing: %+v", st)
	}
	if st.VirtualTime <= 0 {
		t.Fatal("fleet clock must advance")
	}
}
