package cluster

import (
	"math"
	"testing"
	"time"

	"liveupdate/internal/collective"
	"liveupdate/internal/trace"
)

// driveWithChurn runs one fixed serve-and-churn schedule — kill, replace,
// scale mid-stream — and ends on an explicit barrier merge. The schedule
// depends only on the seed, never on the sync pricing knobs, so two clusters
// differing only in those knobs must end bit-identical.
func driveWithChurn(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 61)
	serve := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := c.Serve(gen.Next()); err != nil {
				t.Fatalf("serve: %v", err)
			}
		}
	}
	serve(200)
	if err := c.FailReplica(1); err != nil {
		t.Fatal(err)
	}
	serve(200)
	if _, err := c.ReplaceReplica(1); err != nil {
		t.Fatal(err)
	}
	serve(200)
	if err := c.Scale(4); err != nil {
		t.Fatal(err)
	}
	serve(200)
	// End on explicit merges with no serving in between: the trailing syncs
	// are quiet (no row or factor changed since the last publish), which is
	// where delta billing departs from full — full sync re-ships the shared
	// factors, delta references them.
	for i := 0; i < 3; i++ {
		if _, err := c.SyncNow(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestDeltaSyncConvergesAfterChurn is the cluster-level half of the delta
// invariant: with members failing, being replaced, and joining mid-schedule,
// a delta-billed fleet must converge to exactly the state of a full-sync
// fleet — delta changes the bill, never the published state — and its wire
// ledger plus its reported savings must reproduce the full-sync bill.
func TestDeltaSyncConvergesAfterChurn(t *testing.T) {
	mkConfig := func(delta bool) Config {
		cfg := testConfig(t, 3)
		cfg.Mode = SyncBarrier // wall-clock out of the schedule
		cfg.SyncEvery = 50 * time.Millisecond
		// Keep every LoRA row resident so post-churn consistency is
		// structural (see TestClusterMembershipUnderServing).
		cfg.Base.LoRA.PruneThresh = 0
		cfg.Topology = collective.TopologyTree
		cfg.DeltaSync = delta
		return cfg
	}
	full := driveWithChurn(t, mkConfig(false))
	delta := driveWithChurn(t, mkConfig(true))

	if !full.ReplicasConsistent(50) || !delta.ReplicasConsistent(50) {
		t.Fatal("fleets must be internally consistent after the final sync")
	}

	// Cross-cluster bit-identity: replica 0 of each fleet holds the same
	// published state, probed over a grid of effective rows.
	p := testProfile(t)
	ref := make([]float64, p.EmbeddingDim)
	probe := make([]float64, p.EmbeddingDim)
	for table := 0; table < p.NumTables; table++ {
		for id := int32(0); id < 50; id++ {
			full.Replica(0).LoRA.EffectiveRow(table, id, ref)
			delta.Replica(0).LoRA.EffectiveRow(table, id, probe)
			for d := range ref {
				if math.Float64bits(ref[d]) != math.Float64bits(probe[d]) {
					t.Fatalf("state diverged at table %d id %d dim %d: full %v delta %v",
						table, id, d, ref[d], probe[d])
				}
			}
		}
	}

	fs, ds := full.Stats(), delta.Stats()
	if fs.Syncs != ds.Syncs {
		t.Fatalf("schedules diverged: full %d syncs, delta %d", fs.Syncs, ds.Syncs)
	}
	if ds.SyncTopology != string(collective.TopologyTree) {
		t.Fatalf("topology not surfaced: %q", ds.SyncTopology)
	}
	if ds.SyncDeltaSavedBytes <= 0 {
		t.Fatal("delta sync over a churning schedule must save wire bytes")
	}
	if ds.SyncWireBytes >= fs.SyncWireBytes {
		t.Fatalf("delta wire %d must undercut full wire %d", ds.SyncWireBytes, fs.SyncWireBytes)
	}
	// The ledger balances: what delta shipped plus what it avoided is
	// exactly the full-sync bill for the identical sync sequence.
	if ds.SyncWireBytes+ds.SyncDeltaSavedBytes != fs.SyncWireBytes {
		t.Fatalf("books don't balance: delta wire %d + saved %d != full wire %d",
			ds.SyncWireBytes, ds.SyncDeltaSavedBytes, fs.SyncWireBytes)
	}
	if fs.SyncDeltaSavedBytes != 0 || fs.SyncCompressSavedBytes != 0 {
		t.Fatalf("full sync must not report savings: %+v", fs)
	}
}

// TestClusterConfigSyncKnobValidation pins the Config-level validation of
// the fleet-scale sync knobs.
func TestClusterConfigSyncKnobValidation(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Topology = collective.Kind("torus")
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown topology must be rejected")
	}
	cfg = testConfig(t, 2)
	cfg.Compression = 11
	if _, err := New(cfg); err == nil {
		t.Fatal("compression level 11 must be rejected")
	}
	cfg = testConfig(t, 2)
	cfg.Topology = collective.TopologyRing
	cfg.Compression = 9
	cfg.DeltaSync = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SyncTopology; got != string(collective.TopologyRing) {
		t.Fatalf("Stats().SyncTopology = %q, want ring", got)
	}
}
