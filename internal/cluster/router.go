package cluster

import (
	"fmt"
	"sync/atomic"

	"liveupdate/internal/core"
	"liveupdate/internal/trace"
)

// Router picks the replica that serves a request. Implementations may keep
// state (e.g. a round-robin cursor); a Router instance belongs to exactly one
// Cluster. Route must be safe for concurrent callers — the built-in policies
// are lock-free — though stateful policies only produce a deterministic
// assignment when requests are routed in a deterministic order (the
// load-driver routes from a single sequencer goroutine for exactly this
// reason).
type Router interface {
	// Route returns the index in fleet of the replica to serve s.
	Route(s trace.Sample, fleet []*core.System) int
	// Name identifies the policy in stats output and CLI flags.
	Name() string
}

// Policy names a built-in routing policy.
type Policy string

const (
	// RoundRobin cycles through replicas in order — uniform load, no
	// locality.
	RoundRobin Policy = "round-robin"
	// LeastLoaded sends each request to the replica with the smallest
	// virtual-time backlog, absorbing skew at the cost of locality.
	LeastLoaded Policy = "least-loaded"
	// Hash shards by the request's sparse feature ids, so requests touching
	// the same embedding rows land on the same replica (embedding locality:
	// hot rows stay resident in one replica's cache and LoRA support).
	Hash Policy = "hash"
)

// Policies lists the built-in routing policies in presentation order.
func Policies() []Policy { return []Policy{RoundRobin, LeastLoaded, Hash} }

// NewRouter constructs a fresh router for a built-in policy.
func NewRouter(p Policy) (Router, error) {
	switch p {
	case RoundRobin:
		return &roundRobinRouter{}, nil
	case LeastLoaded:
		return leastLoadedRouter{}, nil
	case Hash:
		return hashRouter{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown router policy %q (valid: %v)", p, Policies())
	}
}

type roundRobinRouter struct{ next atomic.Uint64 }

func (r *roundRobinRouter) Route(_ trace.Sample, fleet []*core.System) int {
	return int((r.next.Add(1) - 1) % uint64(len(fleet)))
}

func (r *roundRobinRouter) Name() string { return string(RoundRobin) }

type leastLoadedRouter struct{}

func (leastLoadedRouter) Route(_ trace.Sample, fleet []*core.System) int {
	best := 0
	for i := 1; i < len(fleet); i++ {
		if fleet[i].Clock.Now() < fleet[best].Clock.Now() {
			best = i
		}
	}
	return best
}

func (leastLoadedRouter) Name() string { return string(LeastLoaded) }

type hashRouter struct{}

func (hashRouter) Route(s trace.Sample, fleet []*core.System) int {
	// FNV-1a over (table, id) pairs: identical sparse feature sets always
	// map to the same replica.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint32) {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(v >> shift))
			h *= prime64
		}
	}
	for t, ids := range s.Sparse {
		mix(uint32(t))
		for _, id := range ids {
			mix(uint32(id))
		}
	}
	return int(h % uint64(len(fleet)))
}

func (hashRouter) Name() string { return string(Hash) }
