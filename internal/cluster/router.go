package cluster

import (
	"fmt"
	"sync/atomic"

	"liveupdate/internal/core"
	"liveupdate/internal/fleet"
	"liveupdate/internal/trace"
)

// Router picks the replica that serves a request. Implementations may keep
// state (e.g. a round-robin cursor); a Router instance belongs to exactly one
// Cluster. Route must be safe for concurrent callers — the built-in policies
// are lock-free — though stateful policies only produce a deterministic
// assignment when requests are routed in a deterministic order (the
// load-driver routes from a single sequencer goroutine for exactly this
// reason).
//
// The built-in policies additionally implement fleet.ViewRouter and route
// against the live membership view, so they keep working across joins,
// leaves, and failures with no locking: the view (with its prebuilt
// consistent-hash ring) swaps behind one atomic pointer. A custom Router
// that only implements this flat-slice interface still works on an elastic
// fleet — it is handed the active replicas and its index is mapped back to
// the member's slot — but it re-observes the fleet as dense, so its
// assignment reshuffles more than the ring policy on membership changes.
type Router interface {
	// Route returns the index in replicas of the replica to serve s.
	Route(s trace.Sample, replicas []*core.System) int
	// Name identifies the policy in stats output and CLI flags.
	Name() string
}

// Policy names a built-in routing policy.
type Policy string

const (
	// RoundRobin cycles through the active replicas in order — uniform
	// load, no locality.
	RoundRobin Policy = "round-robin"
	// LeastLoaded sends each request to the active replica with the
	// smallest virtual-time backlog, absorbing skew at the cost of locality.
	LeastLoaded Policy = "least-loaded"
	// Hash shards by the request's sparse feature ids over a consistent-hash
	// ring keyed on stable member identities, so requests touching the same
	// embedding rows land on the same replica (embedding locality: hot rows
	// stay resident in one replica's cache and LoRA support) AND a single
	// membership change only remaps ~1/N of the keyspace — the failed
	// member's arcs move, everyone else's keys stay put.
	Hash Policy = "hash"
)

// Policies lists the built-in routing policies in presentation order.
func Policies() []Policy { return []Policy{RoundRobin, LeastLoaded, Hash} }

// NewRouter constructs a fresh router for a built-in policy.
func NewRouter(p Policy) (Router, error) {
	switch p {
	case RoundRobin:
		return &roundRobinRouter{}, nil
	case LeastLoaded:
		return leastLoadedRouter{}, nil
	case Hash:
		return hashRouter{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown router policy %q (valid: %v)", p, Policies())
	}
}

type roundRobinRouter struct{ next atomic.Uint64 }

func (r *roundRobinRouter) Route(_ trace.Sample, replicas []*core.System) int {
	return int((r.next.Add(1) - 1) % uint64(len(replicas)))
}

func (r *roundRobinRouter) RouteView(_ trace.Sample, v *fleet.View) *fleet.Member {
	active := v.Active()
	if len(active) == 0 {
		return nil
	}
	return active[int((r.next.Add(1)-1)%uint64(len(active)))]
}

func (r *roundRobinRouter) Name() string { return string(RoundRobin) }

type leastLoadedRouter struct{}

func (leastLoadedRouter) Route(_ trace.Sample, replicas []*core.System) int {
	best := 0
	for i := 1; i < len(replicas); i++ {
		if replicas[i].Clock.Now() < replicas[best].Clock.Now() {
			best = i
		}
	}
	return best
}

func (leastLoadedRouter) RouteView(_ trace.Sample, v *fleet.View) *fleet.Member {
	active := v.Active()
	if len(active) == 0 {
		return nil
	}
	best := active[0]
	for _, m := range active[1:] {
		if m.Sys.Clock.Now() < best.Sys.Clock.Now() {
			best = m
		}
	}
	return best
}

func (leastLoadedRouter) Name() string { return string(LeastLoaded) }

type hashRouter struct{}

// Route is the legacy flat-slice form: FNV-1a modulo the replica count.
// Kept for custom callers holding a dense replica slice; the Cluster itself
// routes through RouteView's consistent-hash ring.
func (hashRouter) Route(s trace.Sample, replicas []*core.System) int {
	return int(fleet.SampleKey(s) % uint64(len(replicas)))
}

func (hashRouter) RouteView(s trace.Sample, v *fleet.View) *fleet.Member {
	return v.Route(fleet.SampleKey(s))
}

func (hashRouter) Name() string { return string(Hash) }

// The built-in policies are membership-aware.
var (
	_ fleet.ViewRouter = (*roundRobinRouter)(nil)
	_ fleet.ViewRouter = leastLoadedRouter{}
	_ fleet.ViewRouter = hashRouter{}
)
