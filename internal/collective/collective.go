// Package collective implements the cross-node communication layer of
// LiveUpdate: a tree/recursive-doubling AllGather with O(log N) rounds (the
// Gloo substitute behind paper Fig 19) and the sparse data-parallel
// priority-merge protocol of Algorithm 3.
package collective

import (
	"fmt"
	"math"
	"sync"

	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
)

// AllGatherRounds returns the number of communication rounds recursive
// doubling needs for n participants: ceil(log2(n)).
func AllGatherRounds(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// AllGatherTime returns the virtual duration of a recursive-doubling
// AllGather where every node contributes bytesPerNode, over uniform links
// with the given bandwidth/latency. In round r each node exchanges its
// accumulated 2^r·bytesPerNode block with its partner; both directions
// overlap (full duplex), so a round costs latency + blockBytes/bandwidth.
// Total data held per node at the end is n·bytesPerNode; total time is
// O(log n) in latency and O(n) in bytes — the favorable scaling of Fig 19.
func AllGatherTime(n int, bytesPerNode int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	if bytesPerNode < 0 {
		panic("collective: negative payload")
	}
	if bandwidthBps <= 0 {
		panic("collective: bandwidth must be positive")
	}
	total := 0.0
	block := float64(bytesPerNode)
	for r := 0; r < AllGatherRounds(n); r++ {
		total += latencySec + block/bandwidthBps
		block *= 2
	}
	return total
}

// AllGatherBytes returns the total wire volume a recursive-doubling
// AllGather moves for n participants each contributing bytesPerNode: in
// round r every node ships its accumulated 2^r·bytesPerNode block, so the
// fleet-wide traffic is n·(2^rounds − 1)·bytesPerNode.
func AllGatherBytes(n int, bytesPerNode int64) int64 {
	if n <= 1 {
		return 0
	}
	if bytesPerNode < 0 {
		panic("collective: negative payload")
	}
	return int64(n) * ((1 << AllGatherRounds(n)) - 1) * bytesPerNode
}

// BroadcastTime returns the virtual duration of a binomial-tree broadcast of
// size bytes to n nodes: ceil(log2(n)) rounds, each shipping the full
// payload one hop.
func BroadcastTime(n int, size int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	rounds := AllGatherRounds(n)
	per := latencySec + float64(size)/bandwidthBps
	return float64(rounds) * per
}

// BroadcastBytes returns the total wire volume of a binomial-tree broadcast
// of size bytes to n nodes: n−1 point-to-point transmissions of the full
// payload (the rounds overlap in time, not in traffic).
func BroadcastBytes(n int, size int64) int64 {
	if n <= 1 {
		return 0
	}
	if size < 0 {
		panic("collective: negative payload")
	}
	return int64(n-1) * size
}

// AllGatherOnNetwork executes a recursive-doubling AllGather on an actual
// simnet.Network, respecting per-link queueing, and advances the clock to
// completion. It returns the elapsed virtual time. For non-power-of-two n
// the exchange partner wraps modulo n (a standard dissemination variant).
func AllGatherOnNetwork(c *simnet.Clock, net *simnet.Network, bytesPerNode int64) float64 {
	n := net.N
	if n <= 1 {
		return 0
	}
	start := c.Now()
	block := bytesPerNode
	for r := 0; r < AllGatherRounds(n); r++ {
		dist := 1 << r
		roundEnd := c.Now()
		for i := 0; i < n; i++ {
			j := (i + dist) % n
			if j == i {
				continue
			}
			done := net.Send(c, i, j, block)
			if done > roundEnd {
				roundEnd = done
			}
		}
		c.AdvanceTo(roundEnd)
		block *= 2
	}
	return c.Now() - start
}

// MergeStats describes one priority-merge synchronization.
type MergeStats struct {
	Participants int
	RowsMerged   int // distinct (table, id) rows in the merged state
	Conflicts    int // rows modified by more than one rank

	// PayloadBytes is the sum of every participant's exported payload for
	// this sync — each rank's contribution counted exactly once. It is what
	// the ranks feed INTO the collective, not the traffic the collective
	// moves; see SyncGroup.GroupStats for the simulated wire volume.
	PayloadBytes int64
}

// RankedState tags one rank's exported LoRA state with its priority id, so
// conflict resolution depends on the rank itself rather than on the position
// of the state in the input slice.
type RankedState struct {
	Rank   int // rank/replica id; the highest rank wins conflicts
	Tables []lora.TableState
}

// PriorityMerge implements Algorithm 3 lines 8-11: given the exported LoRA
// states of R ranks (index = rank id), it computes the union of modified
// rows per table, resolving conflicts deterministically in favor of the
// highest rank id, and adopts the highest participating rank's B factor.
func PriorityMerge(states [][]lora.TableState) ([]lora.TableState, MergeStats, error) {
	ranked := make([]RankedState, len(states))
	for r, st := range states {
		ranked[r] = RankedState{Rank: r, Tables: st}
	}
	return PriorityMergeRanked(ranked)
}

// PriorityMergeRanked is PriorityMerge over explicitly ranked states. The
// merged result is identical for any permutation of the input slice: winners
// are chosen by comparing the contributors' Rank ids, never their slice
// positions, and the shared B factor is adopted from the highest Rank
// present. Rank ids must be distinct.
func PriorityMergeRanked(states []RankedState) ([]lora.TableState, MergeStats, error) {
	if len(states) == 0 {
		return nil, MergeStats{}, fmt.Errorf("collective: no states to merge")
	}
	numTables := len(states[0].Tables)
	top := 0 // index of the highest-rank state
	seenRanks := make(map[int]bool, len(states))
	for i, st := range states {
		if len(st.Tables) != numTables {
			return nil, MergeStats{}, fmt.Errorf("collective: rank %d has %d tables, want %d",
				st.Rank, len(st.Tables), numTables)
		}
		if seenRanks[st.Rank] {
			return nil, MergeStats{}, fmt.Errorf("collective: duplicate rank id %d", st.Rank)
		}
		seenRanks[st.Rank] = true
		if st.Rank > states[top].Rank {
			top = i
		}
	}
	stats := MergeStats{Participants: len(states)}
	for _, st := range states {
		stats.PayloadBytes += lora.PayloadBytes(st.Tables)
	}

	type contribution struct {
		rank int
		u    lora.RowUpdate
	}
	merged := make([]lora.TableState, numTables)
	for t := 0; t < numTables; t++ {
		winner := make(map[int32]contribution)
		seen := make(map[int32]int)
		for _, st := range states {
			for _, u := range st.Tables[t].Rows {
				if prev, dup := winner[u.ID]; dup {
					if seen[u.ID] == 1 {
						stats.Conflicts++ // count each conflicting id once
					}
					seen[u.ID]++
					// k = max{r | i ∈ S_r}: keep the higher rank regardless
					// of input ordering.
					if st.Rank < prev.rank {
						continue
					}
				} else {
					seen[u.ID] = 1
				}
				winner[u.ID] = contribution{rank: st.Rank, u: u}
			}
		}
		rows := make([]lora.RowUpdate, 0, len(winner))
		for _, c := range winner {
			rows = append(rows, c.u)
		}
		sortRowUpdates(rows)
		stats.RowsMerged += len(rows)

		// B: the highest participating rank's factor wins — deterministic
		// across replicas and across input orderings.
		best := states[top].Tables[t]
		merged[t] = lora.TableState{Rows: rows, B: best.B, Rank: best.Rank}
	}
	return merged, stats, nil
}

func sortRowUpdates(rows []lora.RowUpdate) {
	// Insertion sort: row counts per sync are modest and this avoids an
	// import cycle-prone helper; ids are nearly sorted already (map drain
	// order is random but sets are small).
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].ID < rows[j-1].ID; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// SyncGroup coordinates R replica lora.Sets through periodic priority-merge
// synchronization (the Sync step of paper Fig 7, step 3).
//
// Replica consistency after Sync requires the replicas to share a common
// LoRA rank: Algorithm 3 exchanges factor rows (A[i]) plus the shared B, so
// independently rank-adapted replicas would hold structurally incompatible
// factors. Deployments coordinate rank changes out of band (e.g. with the
// hourly full sync); replicas here should either disable local rank
// adaptation or adapt in lockstep.
//
// Accounting methods (Stats, GroupStats) and the cumulative counters are
// guarded by an internal mutex so the asynchronous pipeline can fold results
// in from a background goroutine while reporting code reads totals.
type SyncGroup struct {
	Replicas []*lora.Set

	BandwidthBps float64
	LatencySec   float64

	mu    sync.Mutex
	stats GroupStats
}

// GroupStats is a SyncGroup's cumulative accounting across syncs.
type GroupStats struct {
	// Syncs is the number of completed priority-merge synchronizations.
	Syncs int
	// PayloadBytes is Σ over syncs of that sync's MergeStats.PayloadBytes:
	// every rank's exported payload counted exactly once per sync. This is
	// the application-level sync volume.
	PayloadBytes int64
	// WireBytes is the traffic the simulated collective actually moves:
	// recursive-doubling AllGather rounds (on the largest per-rank payload,
	// matching the cost model of AllGatherTime) plus the binomial-tree
	// broadcast of the merged state. It is what the fabric bills for, and is
	// strictly larger than PayloadBytes for more than one replica.
	WireBytes int64
	// ComputeSeconds is the virtual time spent gathering and merging —
	// the phase the asynchronous pipeline moves off the serving critical
	// path. PublishSeconds is the virtual time broadcasting and installing
	// the merged state. Their sum is the total sync cost.
	ComputeSeconds float64
	PublishSeconds float64
}

// Seconds returns the total virtual sync time (compute + publish).
func (g GroupStats) Seconds() float64 { return g.ComputeSeconds + g.PublishSeconds }

// NewSyncGroup wraps the replica sets with uniform link parameters.
func NewSyncGroup(replicas []*lora.Set, bandwidthBps, latencySec float64) *SyncGroup {
	return &SyncGroup{Replicas: replicas, BandwidthBps: bandwidthBps, LatencySec: latencySec}
}

// Sync is the synchronous (barrier) protocol: it snapshots all replicas'
// supports, priority-merges them, publishes the merged state everywhere, and
// advances the clock by the AllGather + broadcast cost. Callers must have
// quiesced every replica (it is the stop-the-world path). It returns the
// merge statistics.
func (sg *SyncGroup) Sync(c *simnet.Clock) (MergeStats, error) {
	states := make([][]lora.TableState, len(sg.Replicas))
	for i, r := range sg.Replicas {
		states[i] = r.Snapshot()
	}
	merged, stats, cost, err := sg.merge(states)
	if err != nil {
		return stats, err
	}
	epoch := sg.commit(cost, stats, c)
	for _, r := range sg.Replicas {
		r.Publish(merged, epoch)
	}
	return stats, nil
}

// syncCost is one sync's wire/time bill, derived from the snapshots and the
// merged result.
type syncCost struct {
	computeSeconds float64
	publishSeconds float64
	wireBytes      int64
}

// merge runs the priority merge and prices the collective: AllGather on the
// largest per-rank payload (compute phase) plus a broadcast of the merged
// state (publish phase). It does not touch the replicas, the clock, or the
// cumulative stats, so it is safe to run on a background goroutine.
func (sg *SyncGroup) merge(states [][]lora.TableState) ([]lora.TableState, MergeStats, syncCost, error) {
	ranked := make([]RankedState, len(states))
	for r, st := range states {
		ranked[r] = RankedState{Rank: r, Tables: st}
	}
	return sg.mergeRanked(ranked)
}

// mergeRanked is merge over explicitly ranked states — the form an elastic
// fleet uses, where the priority rank is a member's stable identity rather
// than its position in a fixed replica slice.
func (sg *SyncGroup) mergeRanked(states []RankedState) ([]lora.TableState, MergeStats, syncCost, error) {
	var maxPayload int64
	for _, st := range states {
		if p := lora.PayloadBytes(st.Tables); p > maxPayload {
			maxPayload = p
		}
	}
	merged, stats, err := PriorityMergeRanked(states)
	if err != nil {
		return nil, stats, syncCost{}, err
	}
	n := len(states)
	mergedPayload := lora.PayloadBytes(merged)
	cost := syncCost{
		computeSeconds: AllGatherTime(n, maxPayload, sg.BandwidthBps, sg.LatencySec),
		publishSeconds: BroadcastTime(n, mergedPayload, sg.BandwidthBps, sg.LatencySec),
		wireBytes:      AllGatherBytes(n, maxPayload) + BroadcastBytes(n, mergedPayload),
	}
	return merged, stats, cost, nil
}

// SyncRanked runs one barrier-protocol sync over pre-taken ranked
// snapshots: priority merge, collective pricing, cost charged to the clock,
// accounting folded into the group totals. It returns the merged state and
// the sync generation to stamp on published versions. Snapshotting and
// publication stay with the caller — an elastic fleet snapshots whatever
// members its live view holds, so the group's own replica list (if any) is
// not consulted.
func (sg *SyncGroup) SyncRanked(c *simnet.Clock, states []RankedState) ([]lora.TableState, MergeStats, int64, error) {
	merged, stats, cost, err := sg.mergeRanked(states)
	if err != nil {
		return nil, stats, 0, err
	}
	epoch := sg.commit(cost, stats, c)
	return merged, stats, epoch, nil
}

// commit charges one sync's cost to the clock and folds it into the
// cumulative stats, returning the sync generation for version stamping.
func (sg *SyncGroup) commit(cost syncCost, stats MergeStats, c *simnet.Clock) int64 {
	if c != nil {
		c.Advance(cost.computeSeconds + cost.publishSeconds)
	}
	sg.mu.Lock()
	defer sg.mu.Unlock()
	sg.stats.Syncs++
	sg.stats.PayloadBytes += stats.PayloadBytes
	sg.stats.WireBytes += cost.wireBytes
	sg.stats.ComputeSeconds += cost.computeSeconds
	sg.stats.PublishSeconds += cost.publishSeconds
	return int64(sg.stats.Syncs)
}

// Stats returns the cumulative sync count, the cumulative per-sync payload
// totals (each rank's exported payload counted once per sync — the same
// quantity MergeStats.PayloadBytes reports per sync), and the total virtual
// seconds spent syncing. For the simulated wire traffic and the
// compute/publish split, use GroupStats.
func (sg *SyncGroup) Stats() (syncs int, bytes int64, seconds float64) {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	return sg.stats.Syncs, sg.stats.PayloadBytes, sg.stats.Seconds()
}

// GroupStats returns the full cumulative accounting.
func (sg *SyncGroup) GroupStats() GroupStats {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	return sg.stats
}

// PendingMerge is one in-flight asynchronous priority merge: the snapshot
// has been taken, the merge and its collective pricing run on a background
// goroutine, and the merged state is staged until Finish publishes its cost.
type PendingMerge struct {
	done chan struct{}

	merged []lora.TableState
	stats  MergeStats
	cost   syncCost
	err    error
}

// AsyncSyncGroup is the pipelined half of the update path: Begin stages a
// merge over pre-taken snapshots without blocking the caller, and Finish
// waits for it, charges the simulated collective cost to the sync clock, and
// hands back the merged state for per-replica publication. Snapshotting and
// publication stay with the caller (a cluster locks each replica
// individually around those two steps), so no fleet-wide barrier is needed
// anywhere in the pipeline.
type AsyncSyncGroup struct {
	Group *SyncGroup
}

// NewAsyncSyncGroup wraps a SyncGroup for pipelined use. The two views share
// replicas, link parameters, and cumulative accounting.
func NewAsyncSyncGroup(sg *SyncGroup) *AsyncSyncGroup {
	return &AsyncSyncGroup{Group: sg}
}

// Begin starts the background merge of the given per-rank snapshots (index =
// rank id) and returns immediately. The snapshots must not be mutated after
// the call — lora.Set.Snapshot's deep copies satisfy that by construction.
func (ag *AsyncSyncGroup) Begin(states [][]lora.TableState) *PendingMerge {
	p := &PendingMerge{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.merged, p.stats, p.cost, p.err = ag.Group.merge(states)
	}()
	return p
}

// BeginRanked is Begin over explicitly ranked snapshots (the elastic-fleet
// form: rank ids are member identities and need not be contiguous).
func (ag *AsyncSyncGroup) BeginRanked(states []RankedState) *PendingMerge {
	p := &PendingMerge{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.merged, p.stats, p.cost, p.err = ag.Group.mergeRanked(states)
	}()
	return p
}

// Finish blocks until the pending merge completes, charges its simulated
// AllGather + broadcast cost to the sync clock, folds the accounting into
// the group totals, and returns the staged merged state together with the
// sync generation to stamp on the published versions. Serving never waits
// here: Finish is called from the pipeline's own goroutine.
func (ag *AsyncSyncGroup) Finish(p *PendingMerge, c *simnet.Clock) ([]lora.TableState, MergeStats, int64, error) {
	<-p.done
	if p.err != nil {
		return nil, p.stats, 0, p.err
	}
	epoch := ag.Group.commit(p.cost, p.stats, c)
	return p.merged, p.stats, epoch, nil
}
