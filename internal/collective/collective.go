// Package collective implements the cross-node communication layer of
// LiveUpdate: a tree/recursive-doubling AllGather with O(log N) rounds (the
// Gloo substitute behind paper Fig 19) and the sparse data-parallel
// priority-merge protocol of Algorithm 3.
package collective

import (
	"fmt"
	"sync"

	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
)

// AllGatherRounds returns the number of communication rounds recursive
// doubling needs for n participants: ceil(log2(n)).
//
// Deprecated: use Flat{}.Rounds. The free-function cost model is kept as a
// thin wrapper over the Flat topology so existing callers compile unchanged.
func AllGatherRounds(n int) int { return Flat{}.Rounds(n) }

// AllGatherTime returns the virtual duration of a recursive-doubling
// AllGather where every node contributes bytesPerNode, over uniform links
// with the given bandwidth/latency. In round r each node exchanges its
// accumulated 2^r·bytesPerNode block with its partner; both directions
// overlap (full duplex), so a round costs latency + blockBytes/bandwidth.
// Total data held per node at the end is n·bytesPerNode; total time is
// O(log n) in latency and O(n) in bytes — the favorable scaling of Fig 19.
//
// Deprecated: use Flat{}.GatherTime.
func AllGatherTime(n int, bytesPerNode int64, bandwidthBps, latencySec float64) float64 {
	return Flat{}.GatherTime(n, bytesPerNode, 0, bandwidthBps, latencySec)
}

// AllGatherBytes returns the total wire volume a recursive-doubling
// AllGather moves for n participants each contributing bytesPerNode: in
// round r every node ships its accumulated 2^r·bytesPerNode block, so the
// fleet-wide traffic is n·(2^rounds − 1)·bytesPerNode.
//
// Deprecated: use Flat{}.GatherBytes.
func AllGatherBytes(n int, bytesPerNode int64) int64 {
	return Flat{}.GatherBytes(n, bytesPerNode, 0)
}

// BroadcastTime returns the virtual duration of a binomial-tree broadcast of
// size bytes to n nodes: ceil(log2(n)) rounds, each shipping the full
// payload one hop.
//
// Deprecated: use Flat{}.BroadcastTime.
func BroadcastTime(n int, size int64, bandwidthBps, latencySec float64) float64 {
	return Flat{}.BroadcastTime(n, size, bandwidthBps, latencySec)
}

// BroadcastBytes returns the total wire volume of a binomial-tree broadcast
// of size bytes to n nodes: n−1 point-to-point transmissions of the full
// payload (the rounds overlap in time, not in traffic).
//
// Deprecated: use Flat{}.BroadcastBytes.
func BroadcastBytes(n int, size int64) int64 {
	return Flat{}.BroadcastBytes(n, size)
}

// AllGatherOnNetwork executes a recursive-doubling AllGather on an actual
// simnet.Network, respecting per-link queueing, and advances the clock to
// completion. It returns the elapsed virtual time. For non-power-of-two n
// the exchange partner wraps modulo n (a standard dissemination variant).
func AllGatherOnNetwork(c *simnet.Clock, net *simnet.Network, bytesPerNode int64) float64 {
	n := net.N
	if n <= 1 {
		return 0
	}
	start := c.Now()
	block := bytesPerNode
	for r := 0; r < AllGatherRounds(n); r++ {
		dist := 1 << r
		roundEnd := c.Now()
		for i := 0; i < n; i++ {
			j := (i + dist) % n
			if j == i {
				continue
			}
			done := net.Send(c, i, j, block)
			if done > roundEnd {
				roundEnd = done
			}
		}
		c.AdvanceTo(roundEnd)
		block *= 2
	}
	return c.Now() - start
}

// MergeStats describes one priority-merge synchronization.
type MergeStats struct {
	Participants int
	RowsMerged   int // distinct (table, id) rows in the merged state
	Conflicts    int // rows modified by more than one rank

	// PayloadBytes is the sum of every participant's exported payload for
	// this sync — each rank's contribution counted exactly once. It is what
	// the ranks feed INTO the collective, not the traffic the collective
	// moves; see SyncGroup.GroupStats for the simulated wire volume.
	PayloadBytes int64
}

// RankedState tags one rank's exported LoRA state with its priority id, so
// conflict resolution depends on the rank itself rather than on the position
// of the state in the input slice.
type RankedState struct {
	Rank   int // rank/replica id; the highest rank wins conflicts
	Tables []lora.TableState
}

// PriorityMerge implements Algorithm 3 lines 8-11: given the exported LoRA
// states of R ranks (index = rank id), it computes the union of modified
// rows per table, resolving conflicts deterministically in favor of the
// highest rank id, and adopts the highest participating rank's B factor.
func PriorityMerge(states [][]lora.TableState) ([]lora.TableState, MergeStats, error) {
	ranked := make([]RankedState, len(states))
	for r, st := range states {
		ranked[r] = RankedState{Rank: r, Tables: st}
	}
	return PriorityMergeRanked(ranked)
}

// PriorityMergeRanked is PriorityMerge over explicitly ranked states. The
// merged result is identical for any permutation of the input slice: winners
// are chosen by comparing the contributors' Rank ids, never their slice
// positions, and the shared B factor is adopted from the highest Rank
// present. Rank ids must be distinct.
func PriorityMergeRanked(states []RankedState) ([]lora.TableState, MergeStats, error) {
	if len(states) == 0 {
		return nil, MergeStats{}, fmt.Errorf("collective: no states to merge")
	}
	numTables := len(states[0].Tables)
	top := 0 // index of the highest-rank state
	seenRanks := make(map[int]bool, len(states))
	for i, st := range states {
		if len(st.Tables) != numTables {
			return nil, MergeStats{}, fmt.Errorf("collective: rank %d has %d tables, want %d",
				st.Rank, len(st.Tables), numTables)
		}
		if seenRanks[st.Rank] {
			return nil, MergeStats{}, fmt.Errorf("collective: duplicate rank id %d", st.Rank)
		}
		seenRanks[st.Rank] = true
		if st.Rank > states[top].Rank {
			top = i
		}
	}
	stats := MergeStats{Participants: len(states)}
	for _, st := range states {
		stats.PayloadBytes += lora.PayloadBytes(st.Tables)
	}

	type contribution struct {
		rank int
		u    lora.RowUpdate
	}
	merged := make([]lora.TableState, numTables)
	for t := 0; t < numTables; t++ {
		winner := make(map[int32]contribution)
		seen := make(map[int32]int)
		for _, st := range states {
			for _, u := range st.Tables[t].Rows {
				if prev, dup := winner[u.ID]; dup {
					if seen[u.ID] == 1 {
						stats.Conflicts++ // count each conflicting id once
					}
					seen[u.ID]++
					// k = max{r | i ∈ S_r}: keep the higher rank regardless
					// of input ordering.
					if st.Rank < prev.rank {
						continue
					}
				} else {
					seen[u.ID] = 1
				}
				winner[u.ID] = contribution{rank: st.Rank, u: u}
			}
		}
		rows := make([]lora.RowUpdate, 0, len(winner))
		for _, c := range winner {
			rows = append(rows, c.u)
		}
		sortRowUpdates(rows)
		stats.RowsMerged += len(rows)

		// B: the highest participating rank's factor wins — deterministic
		// across replicas and across input orderings.
		best := states[top].Tables[t]
		merged[t] = lora.TableState{Rows: rows, B: best.B, Rank: best.Rank}
	}
	return merged, stats, nil
}

func sortRowUpdates(rows []lora.RowUpdate) {
	// Insertion sort: row counts per sync are modest and this avoids an
	// import cycle-prone helper; ids are nearly sorted already (map drain
	// order is random but sets are small).
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].ID < rows[j-1].ID; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// SyncGroup coordinates R replica lora.Sets through periodic priority-merge
// synchronization (the Sync step of paper Fig 7, step 3).
//
// Replica consistency after Sync requires the replicas to share a common
// LoRA rank: Algorithm 3 exchanges factor rows (A[i]) plus the shared B, so
// independently rank-adapted replicas would hold structurally incompatible
// factors. Deployments coordinate rank changes out of band (e.g. with the
// hourly full sync); replicas here should either disable local rank
// adaptation or adapt in lockstep.
//
// Accounting methods (Stats, GroupStats) and the cumulative counters are
// guarded by an internal mutex so the asynchronous pipeline can fold results
// in from a background goroutine while reporting code reads totals. The
// delta-sync generation tracking shares that mutex and additionally assumes
// merges are not concurrent with each other — the serialization every caller
// (cluster syncMu, sequential Begin/Finish pairs) already provides.
type SyncGroup struct {
	Replicas []*lora.Set

	BandwidthBps float64
	LatencySec   float64

	topo     Topology // nil means Flat
	delta    bool
	compress int // flate level; 0 = off

	mu    sync.Mutex
	stats GroupStats

	// Delta-sync tracking, nil unless delta is enabled. Generations are
	// 1-based sync counts (== stats.Syncs after each commit).
	acked  map[int]int64           // rank → last generation it acknowledged
	pubB   map[int]uint64          // table → fingerprint of the last published B
	bGen   map[int]int64           // table → generation the published B last changed
	rowGen map[int]map[int32]int64 // table → row id → generation it last changed
}

// topology returns the configured topology, defaulting to Flat so
// zero-valued and legacy-constructed groups keep the original cost model.
func (sg *SyncGroup) topology() Topology {
	if sg.topo == nil {
		return Flat{}
	}
	return sg.topo
}

// Topology returns the topology pricing this group's collectives.
func (sg *SyncGroup) Topology() Topology { return sg.topology() }

// GroupStats is a SyncGroup's cumulative accounting across syncs.
type GroupStats struct {
	// Syncs is the number of completed priority-merge synchronizations.
	Syncs int
	// PayloadBytes is Σ over syncs of that sync's MergeStats.PayloadBytes:
	// every rank's exported payload counted exactly once per sync. This is
	// the application-level sync volume.
	PayloadBytes int64
	// WireBytes is the traffic the simulated collective actually moves:
	// recursive-doubling AllGather rounds (on the largest per-rank payload,
	// matching the cost model of AllGatherTime) plus the binomial-tree
	// broadcast of the merged state. It is what the fabric bills for, and is
	// strictly larger than PayloadBytes for more than one replica.
	WireBytes int64
	// ComputeSeconds is the virtual time spent gathering and merging —
	// the phase the asynchronous pipeline moves off the serving critical
	// path. PublishSeconds is the virtual time broadcasting and installing
	// the merged state. Their sum (plus CompressSeconds) is the total sync
	// cost.
	ComputeSeconds float64
	PublishSeconds float64

	// DeltaSavedBytes is the wire volume delta syncs avoided versus
	// shipping full payloads over the same topology; always 0 with delta
	// sync off.
	DeltaSavedBytes int64
	// CompressSavedBytes is the wire volume payload compression avoided
	// versus the uncompressed (delta-adjusted) payloads; it can go slightly
	// negative when flate framing expands tiny payloads.
	CompressSavedBytes int64
	// CompressSeconds is the modeled cpu time spent deflating sync payloads
	// — the cost knob traded against WireBytes. Always 0 with compression
	// off.
	CompressSeconds float64
}

// Seconds returns the total virtual sync time (compute + publish +
// compression cpu).
func (g GroupStats) Seconds() float64 {
	return g.ComputeSeconds + g.PublishSeconds + g.CompressSeconds
}

// GroupConfig configures a SyncGroup beyond the uniform link parameters.
type GroupConfig struct {
	Replicas     []*lora.Set
	BandwidthBps float64
	LatencySec   float64

	// Topology prices the gather/broadcast collectives; nil means Flat, the
	// original recursive-doubling model.
	Topology Topology
	// Delta bills only rows whose generation changed since each peer's last
	// acknowledged sync and skips unchanged shared factors. It is pure cost
	// accounting: the merge result stays bit-identical to full sync.
	Delta bool
	// CompressLevel prices flate compression of sync payloads: 0 disables,
	// 1 (fastest) … 9 (best ratio). Wire bytes shrink; CompressSeconds pays
	// for it.
	CompressLevel int
}

// NewSyncGroupWith builds a SyncGroup from an explicit configuration.
func NewSyncGroupWith(cfg GroupConfig) (*SyncGroup, error) {
	if cfg.CompressLevel < 0 || cfg.CompressLevel > 9 {
		return nil, fmt.Errorf("collective: compression level %d out of range [0,9]", cfg.CompressLevel)
	}
	topo := cfg.Topology
	if topo == nil {
		topo = Flat{}
	}
	sg := &SyncGroup{
		Replicas:     cfg.Replicas,
		BandwidthBps: cfg.BandwidthBps,
		LatencySec:   cfg.LatencySec,
		topo:         topo,
		delta:        cfg.Delta,
		compress:     cfg.CompressLevel,
	}
	if cfg.Delta {
		sg.acked = make(map[int]int64)
		sg.pubB = make(map[int]uint64)
		sg.bGen = make(map[int]int64)
		sg.rowGen = make(map[int]map[int32]int64)
	}
	return sg, nil
}

// NewSyncGroup wraps the replica sets with uniform link parameters, flat
// topology, full payloads, and no compression — the original cost model.
func NewSyncGroup(replicas []*lora.Set, bandwidthBps, latencySec float64) *SyncGroup {
	sg, err := NewSyncGroupWith(GroupConfig{
		Replicas: replicas, BandwidthBps: bandwidthBps, LatencySec: latencySec,
	})
	if err != nil {
		panic(err) // unreachable: the zero knobs are always valid
	}
	return sg
}

// Sync is the synchronous (barrier) protocol: it snapshots all replicas'
// supports, priority-merges them, publishes the merged state everywhere, and
// advances the clock by the AllGather + broadcast cost. Callers must have
// quiesced every replica (it is the stop-the-world path). It returns the
// merge statistics.
func (sg *SyncGroup) Sync(c *simnet.Clock) (MergeStats, error) {
	states := make([][]lora.TableState, len(sg.Replicas))
	for i, r := range sg.Replicas {
		states[i] = r.Snapshot()
	}
	merged, stats, cost, err := sg.merge(states)
	if err != nil {
		return stats, err
	}
	epoch := sg.commit(cost, stats, c)
	for _, r := range sg.Replicas {
		r.Publish(merged, epoch)
	}
	return stats, nil
}

// syncCost is one sync's wire/time bill, derived from the snapshots and the
// merged result.
type syncCost struct {
	computeSeconds  float64
	publishSeconds  float64
	compressSeconds float64
	wireBytes       int64
	deltaSaved      int64
	compressSaved   int64

	// tracking stages the delta bookkeeping to apply at commit (nil when
	// delta sync is off).
	tracking *deltaTracking
}

// merge runs the priority merge and prices the collective: AllGather on the
// largest per-rank payload (compute phase) plus a broadcast of the merged
// state (publish phase). It does not touch the replicas, the clock, or the
// cumulative stats, so it is safe to run on a background goroutine.
func (sg *SyncGroup) merge(states [][]lora.TableState) ([]lora.TableState, MergeStats, syncCost, error) {
	ranked := make([]RankedState, len(states))
	for r, st := range states {
		ranked[r] = RankedState{Rank: r, Tables: st}
	}
	return sg.mergeRanked(ranked)
}

// mergeRanked is merge over explicitly ranked states — the form an elastic
// fleet uses, where the priority rank is a member's stable identity rather
// than its position in a fixed replica slice.
func (sg *SyncGroup) mergeRanked(states []RankedState) ([]lora.TableState, MergeStats, syncCost, error) {
	merged, stats, err := PriorityMergeRanked(states)
	if err != nil {
		return nil, stats, syncCost{}, err
	}
	return merged, stats, sg.priceSync(states, merged), nil
}

// priceSync prices one sync's collective over the configured topology:
// a gather paced by the largest per-rank payload, a broadcast of the merged
// state, and — when enabled — delta tailoring and flate compression of both.
// It never touches the replicas or the clock (delta tracking maps are read,
// not written, under sg.mu), so it is safe on a background goroutine.
func (sg *SyncGroup) priceSync(states []RankedState, merged []lora.TableState) syncCost {
	n := len(states)
	topo := sg.topology()

	// Full sizing: the pacing (largest) per-rank payload and the merged
	// payload — the classic bill, and the baseline delta savings are
	// measured against. Pacing ties break toward the higher rank id so the
	// bill is invariant under input permutations.
	var maxFull, sumFull int64
	pacing := 0
	for i, st := range states {
		p := lora.PayloadBytes(st.Tables)
		sumFull += p
		if p > maxFull || (p == maxFull && st.Rank > states[pacing].Rank) {
			maxFull = p
			pacing = i
		}
	}
	mergedFull := lora.PayloadBytes(merged)

	var cost syncCost
	perRank, mergedSize, sumRaw := maxFull, mergedFull, sumFull
	pacingTables := states[pacing].Tables
	pubTables := merged

	if sg.delta {
		ds := sg.deltaSize(states, merged)
		perRank, mergedSize, sumRaw = ds.perRank, ds.merged, ds.sum
		pacingTables, pubTables = ds.pacing, ds.pub
		cost.tracking = ds.track
		cost.wireBytes += ds.backBytes
		cost.publishSeconds += ds.backSecs
		wireFull := topo.GatherBytes(n, maxFull, mergedFull) + topo.BroadcastBytes(n, mergedFull)
		wireEff := topo.GatherBytes(n, perRank, mergedSize) + topo.BroadcastBytes(n, mergedSize) + ds.backBytes
		cost.deltaSaved = wireFull - wireEff
	}

	if sg.compress > 0 {
		// Deflate the two pacing payloads for real — deterministic sizes —
		// and bill cpu for every byte the fleet would push through flate:
		// each rank's contribution once, plus the merged state once.
		zPacing := compressedPayloadBytes(pacingTables, sg.compress)
		zMerged := compressedPayloadBytes(pubTables, sg.compress)
		wirePlain := topo.GatherBytes(n, perRank, mergedSize) + topo.BroadcastBytes(n, mergedSize)
		wireZ := topo.GatherBytes(n, zPacing, zMerged) + topo.BroadcastBytes(n, zMerged)
		cost.compressSaved = wirePlain - wireZ
		cost.compressSeconds = float64(sumRaw+mergedSize) / compressThroughputBps(sg.compress)
		perRank, mergedSize = zPacing, zMerged
	}

	cost.computeSeconds += topo.GatherTime(n, perRank, mergedSize, sg.BandwidthBps, sg.LatencySec)
	cost.publishSeconds += topo.BroadcastTime(n, mergedSize, sg.BandwidthBps, sg.LatencySec)
	cost.wireBytes += topo.GatherBytes(n, perRank, mergedSize) + topo.BroadcastBytes(n, mergedSize)
	return cost
}

// SyncRanked runs one barrier-protocol sync over pre-taken ranked
// snapshots: priority merge, collective pricing, cost charged to the clock,
// accounting folded into the group totals. It returns the merged state and
// the sync generation to stamp on published versions. Snapshotting and
// publication stay with the caller — an elastic fleet snapshots whatever
// members its live view holds, so the group's own replica list (if any) is
// not consulted.
func (sg *SyncGroup) SyncRanked(c *simnet.Clock, states []RankedState) ([]lora.TableState, MergeStats, int64, error) {
	merged, stats, cost, err := sg.mergeRanked(states)
	if err != nil {
		return nil, stats, 0, err
	}
	epoch := sg.commit(cost, stats, c)
	return merged, stats, epoch, nil
}

// commit charges one sync's cost to the clock and folds it into the
// cumulative stats, returning the sync generation for version stamping.
func (sg *SyncGroup) commit(cost syncCost, stats MergeStats, c *simnet.Clock) int64 {
	if c != nil {
		c.Advance(cost.computeSeconds + cost.publishSeconds + cost.compressSeconds)
	}
	sg.mu.Lock()
	defer sg.mu.Unlock()
	sg.stats.Syncs++
	sg.stats.PayloadBytes += stats.PayloadBytes
	sg.stats.WireBytes += cost.wireBytes
	sg.stats.ComputeSeconds += cost.computeSeconds
	sg.stats.PublishSeconds += cost.publishSeconds
	sg.stats.CompressSeconds += cost.compressSeconds
	sg.stats.DeltaSavedBytes += cost.deltaSaved
	sg.stats.CompressSavedBytes += cost.compressSaved
	gen := int64(sg.stats.Syncs)
	if cost.tracking != nil {
		sg.applyTrackingLocked(cost.tracking, gen)
	}
	return gen
}

// Stats returns the cumulative sync count, the cumulative per-sync payload
// totals (each rank's exported payload counted once per sync — the same
// quantity MergeStats.PayloadBytes reports per sync), and the total virtual
// seconds spent syncing. For the simulated wire traffic and the
// compute/publish split, use GroupStats.
func (sg *SyncGroup) Stats() (syncs int, bytes int64, seconds float64) {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	return sg.stats.Syncs, sg.stats.PayloadBytes, sg.stats.Seconds()
}

// GroupStats returns the full cumulative accounting.
func (sg *SyncGroup) GroupStats() GroupStats {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	return sg.stats
}

// PendingMerge is one in-flight asynchronous priority merge: the snapshot
// has been taken, the merge and its collective pricing run on a background
// goroutine, and the merged state is staged until Finish publishes its cost.
type PendingMerge struct {
	done chan struct{}

	merged []lora.TableState
	stats  MergeStats
	cost   syncCost
	err    error
}

// AsyncSyncGroup is the pipelined half of the update path: Begin stages a
// merge over pre-taken snapshots without blocking the caller, and Finish
// waits for it, charges the simulated collective cost to the sync clock, and
// hands back the merged state for per-replica publication. Snapshotting and
// publication stay with the caller (a cluster locks each replica
// individually around those two steps), so no fleet-wide barrier is needed
// anywhere in the pipeline.
type AsyncSyncGroup struct {
	Group *SyncGroup
}

// NewAsyncSyncGroup wraps a SyncGroup for pipelined use. The two views share
// replicas, link parameters, and cumulative accounting.
func NewAsyncSyncGroup(sg *SyncGroup) *AsyncSyncGroup {
	return &AsyncSyncGroup{Group: sg}
}

// Begin starts the background merge of the given per-rank snapshots (index =
// rank id) and returns immediately. The snapshots must not be mutated after
// the call — lora.Set.Snapshot's deep copies satisfy that by construction.
func (ag *AsyncSyncGroup) Begin(states [][]lora.TableState) *PendingMerge {
	p := &PendingMerge{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.merged, p.stats, p.cost, p.err = ag.Group.merge(states)
	}()
	return p
}

// BeginRanked is Begin over explicitly ranked snapshots (the elastic-fleet
// form: rank ids are member identities and need not be contiguous).
func (ag *AsyncSyncGroup) BeginRanked(states []RankedState) *PendingMerge {
	p := &PendingMerge{done: make(chan struct{})}
	go func() {
		defer close(p.done)
		p.merged, p.stats, p.cost, p.err = ag.Group.mergeRanked(states)
	}()
	return p
}

// Finish blocks until the pending merge completes, charges its simulated
// AllGather + broadcast cost to the sync clock, folds the accounting into
// the group totals, and returns the staged merged state together with the
// sync generation to stamp on the published versions. Serving never waits
// here: Finish is called from the pipeline's own goroutine.
func (ag *AsyncSyncGroup) Finish(p *PendingMerge, c *simnet.Clock) ([]lora.TableState, MergeStats, int64, error) {
	<-p.done
	if p.err != nil {
		return nil, p.stats, 0, p.err
	}
	epoch := ag.Group.commit(p.cost, p.stats, c)
	return p.merged, p.stats, epoch, nil
}
