// Package collective implements the cross-node communication layer of
// LiveUpdate: a tree/recursive-doubling AllGather with O(log N) rounds (the
// Gloo substitute behind paper Fig 19) and the sparse data-parallel
// priority-merge protocol of Algorithm 3.
package collective

import (
	"fmt"
	"math"

	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
)

// AllGatherRounds returns the number of communication rounds recursive
// doubling needs for n participants: ceil(log2(n)).
func AllGatherRounds(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// AllGatherTime returns the virtual duration of a recursive-doubling
// AllGather where every node contributes bytesPerNode, over uniform links
// with the given bandwidth/latency. In round r each node exchanges its
// accumulated 2^r·bytesPerNode block with its partner; both directions
// overlap (full duplex), so a round costs latency + blockBytes/bandwidth.
// Total data held per node at the end is n·bytesPerNode; total time is
// O(log n) in latency and O(n) in bytes — the favorable scaling of Fig 19.
func AllGatherTime(n int, bytesPerNode int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	if bytesPerNode < 0 {
		panic("collective: negative payload")
	}
	if bandwidthBps <= 0 {
		panic("collective: bandwidth must be positive")
	}
	total := 0.0
	block := float64(bytesPerNode)
	for r := 0; r < AllGatherRounds(n); r++ {
		total += latencySec + block/bandwidthBps
		block *= 2
	}
	return total
}

// BroadcastTime returns the virtual duration of a binomial-tree broadcast of
// size bytes to n nodes: ceil(log2(n)) rounds, each shipping the full
// payload one hop.
func BroadcastTime(n int, size int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	rounds := AllGatherRounds(n)
	per := latencySec + float64(size)/bandwidthBps
	return float64(rounds) * per
}

// AllGatherOnNetwork executes a recursive-doubling AllGather on an actual
// simnet.Network, respecting per-link queueing, and advances the clock to
// completion. It returns the elapsed virtual time. For non-power-of-two n
// the exchange partner wraps modulo n (a standard dissemination variant).
func AllGatherOnNetwork(c *simnet.Clock, net *simnet.Network, bytesPerNode int64) float64 {
	n := net.N
	if n <= 1 {
		return 0
	}
	start := c.Now()
	block := bytesPerNode
	for r := 0; r < AllGatherRounds(n); r++ {
		dist := 1 << r
		roundEnd := c.Now()
		for i := 0; i < n; i++ {
			j := (i + dist) % n
			if j == i {
				continue
			}
			done := net.Send(c, i, j, block)
			if done > roundEnd {
				roundEnd = done
			}
		}
		c.AdvanceTo(roundEnd)
		block *= 2
	}
	return c.Now() - start
}

// MergeStats describes one priority-merge synchronization.
type MergeStats struct {
	Participants int
	RowsMerged   int   // distinct (table, id) rows in the merged state
	Conflicts    int   // rows modified by more than one rank
	PayloadBytes int64 // sum of all exported payloads (the AllGather volume)
}

// PriorityMerge implements Algorithm 3 lines 8-11: given the exported LoRA
// states of R ranks (index = rank id), it computes the union of modified
// rows per table, resolving conflicts deterministically in favor of the
// highest rank id, and adopts the highest participating rank's B factor.
func PriorityMerge(states [][]lora.TableState) ([]lora.TableState, MergeStats, error) {
	if len(states) == 0 {
		return nil, MergeStats{}, fmt.Errorf("collective: no states to merge")
	}
	numTables := len(states[0])
	for r, st := range states {
		if len(st) != numTables {
			return nil, MergeStats{}, fmt.Errorf("collective: rank %d has %d tables, want %d",
				r, len(st), numTables)
		}
	}
	stats := MergeStats{Participants: len(states)}
	for _, st := range states {
		stats.PayloadBytes += lora.PayloadBytes(st)
	}

	merged := make([]lora.TableState, numTables)
	for t := 0; t < numTables; t++ {
		winner := make(map[int32]lora.RowUpdate)
		seen := make(map[int32]int)
		// Ranks are visited in ascending order; later (higher) ranks
		// overwrite: k = max{r | i ∈ S_r}.
		for r := 0; r < len(states); r++ {
			for _, u := range states[r][t].Rows {
				if _, dup := winner[u.ID]; dup {
					if seen[u.ID] == 1 {
						stats.Conflicts++ // count each conflicting id once
					}
					seen[u.ID]++
				} else {
					seen[u.ID] = 1
				}
				winner[u.ID] = u
			}
		}
		rows := make([]lora.RowUpdate, 0, len(winner))
		for _, u := range winner {
			rows = append(rows, u)
		}
		sortRowUpdates(rows)
		stats.RowsMerged += len(rows)

		// B: highest rank that reported a state wins (all ranks report, so
		// this is simply the last rank's B — deterministic across replicas).
		last := states[len(states)-1][t]
		merged[t] = lora.TableState{Rows: rows, B: last.B, Rank: last.Rank}
	}
	return merged, stats, nil
}

func sortRowUpdates(rows []lora.RowUpdate) {
	// Insertion sort: row counts per sync are modest and this avoids an
	// import cycle-prone helper; ids are nearly sorted already (map drain
	// order is random but sets are small).
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].ID < rows[j-1].ID; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// SyncGroup coordinates R replica lora.Sets through periodic priority-merge
// synchronization (the Sync step of paper Fig 7, step 3).
//
// Replica consistency after Sync requires the replicas to share a common
// LoRA rank: Algorithm 3 exchanges factor rows (A[i]) plus the shared B, so
// independently rank-adapted replicas would hold structurally incompatible
// factors. Deployments coordinate rank changes out of band (e.g. with the
// hourly full sync); replicas here should either disable local rank
// adaptation or adapt in lockstep.
type SyncGroup struct {
	Replicas []*lora.Set

	BandwidthBps float64
	LatencySec   float64

	syncs      int
	totalBytes int64
	totalTime  float64
}

// NewSyncGroup wraps the replica sets with uniform link parameters.
func NewSyncGroup(replicas []*lora.Set, bandwidthBps, latencySec float64) *SyncGroup {
	return &SyncGroup{Replicas: replicas, BandwidthBps: bandwidthBps, LatencySec: latencySec}
}

// Sync exports all replicas' supports, priority-merges them, applies the
// merged state everywhere, resets supports, and advances the clock by the
// AllGather + broadcast cost. It returns the merge statistics.
func (sg *SyncGroup) Sync(c *simnet.Clock) (MergeStats, error) {
	states := make([][]lora.TableState, len(sg.Replicas))
	var maxPayload int64
	for i, r := range sg.Replicas {
		states[i] = r.ExportState()
		if p := lora.PayloadBytes(states[i]); p > maxPayload {
			maxPayload = p
		}
	}
	merged, stats, err := PriorityMerge(states)
	if err != nil {
		return stats, err
	}
	for _, r := range sg.Replicas {
		r.ApplyState(merged)
		r.ResetSupports()
	}
	elapsed := AllGatherTime(len(sg.Replicas), maxPayload, sg.BandwidthBps, sg.LatencySec) +
		BroadcastTime(len(sg.Replicas), lora.PayloadBytes(merged), sg.BandwidthBps, sg.LatencySec)
	if c != nil {
		c.Advance(elapsed)
	}
	sg.syncs++
	sg.totalBytes += stats.PayloadBytes
	sg.totalTime += elapsed
	return stats, nil
}

// Stats returns cumulative sync count, bytes, and virtual seconds spent.
func (sg *SyncGroup) Stats() (syncs int, bytes int64, seconds float64) {
	return sg.syncs, sg.totalBytes, sg.totalTime
}
