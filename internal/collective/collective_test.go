package collective

import (
	"math"
	"testing"

	"liveupdate/internal/emt"
	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
)

func TestAllGatherRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 16: 4, 48: 6}
	for n, want := range cases {
		if got := AllGatherRounds(n); got != want {
			t.Fatalf("rounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAllGatherTimeLogScaling(t *testing.T) {
	// Latency-dominated regime: time grows like log2(N) (paper Fig 19).
	const bw = 1e12
	const lat = 0.01
	t2 := AllGatherTime(2, 1000, bw, lat)
	t16 := AllGatherTime(16, 1000, bw, lat)
	ratio := t16 / t2
	if math.Abs(ratio-4) > 0.1 { // log2(16)/log2(2) = 4
		t.Fatalf("latency scaling ratio %v, want ~4", ratio)
	}
	if AllGatherTime(1, 1000, bw, lat) != 0 {
		t.Fatal("single node needs no communication")
	}
}

func TestAllGatherTimeBytesScaling(t *testing.T) {
	// Bandwidth-dominated: total bytes moved per node ≈ (n-1)·payload, so
	// time ≈ (n-1)·payload/bw.
	const bw = 1e6
	got := AllGatherTime(8, 1000, bw, 0)
	want := float64(7*1000) / bw
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("bytes scaling time %v, want %v", got, want)
	}
}

func TestBroadcastTime(t *testing.T) {
	if BroadcastTime(1, 1000, 1e6, 0.01) != 0 {
		t.Fatal("single-node broadcast is free")
	}
	got := BroadcastTime(8, 1000, 1e6, 0.01)
	want := 3 * (0.01 + 1000/1e6)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("broadcast time %v, want %v", got, want)
	}
}

func TestAllGatherOnNetwork(t *testing.T) {
	c := simnet.NewClock()
	net := simnet.NewNetwork(4, 1e6, 0.001)
	elapsed := AllGatherOnNetwork(c, net, 1000)
	if elapsed <= 0 {
		t.Fatal("allgather must take time")
	}
	if c.Now() != elapsed {
		t.Fatal("clock must advance to completion")
	}
	// 2 rounds for n=4, payload doubles: round sizes 1000 then 2000.
	if net.TotalBytesMoved() != 4*1000+4*2000 {
		t.Fatalf("bytes moved %d", net.TotalBytesMoved())
	}
	// Single node: free.
	c2 := simnet.NewClock()
	if AllGatherOnNetwork(c2, simnet.NewNetwork(1, 1e6, 0.001), 1000) != 0 {
		t.Fatal("single-node network allgather must be free")
	}
}

func makeReplicas(n int) []*lora.Set {
	rng := tensor.NewRNG(5)
	replicas := make([]*lora.Set, n)
	for i := range replicas {
		base := emt.NewGroup(2, 50, 8, tensor.NewRNG(7)) // identical bases
		cfg := lora.DefaultConfig(50, 8)
		cfg.Seed = uint64(i)
		replicas[i] = lora.MustNewSet(base, cfg)
	}
	_ = rng
	return replicas
}

func trainOn(s *lora.Set, table int, id int32, seed uint64) {
	rng := tensor.NewRNG(seed)
	g := make([]float64, 8)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	for k := 0; k < 5; k++ {
		s.ApplyGrad(table, []int32{id}, g, 0.05)
	}
}

func TestPriorityMergeMaxRankWins(t *testing.T) {
	replicas := makeReplicas(3)
	// Ranks 0 and 2 both modify (table 0, id 7); rank 2 must win.
	trainOn(replicas[0], 0, 7, 100)
	trainOn(replicas[2], 0, 7, 200)
	trainOn(replicas[1], 1, 3, 300)

	states := [][]lora.TableState{
		replicas[0].ExportState(),
		replicas[1].ExportState(),
		replicas[2].ExportState(),
	}
	merged, stats, err := PriorityMerge(states)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 3 {
		t.Fatalf("participants %d", stats.Participants)
	}
	if stats.Conflicts != 1 {
		t.Fatalf("conflicts %d, want 1", stats.Conflicts)
	}
	if stats.RowsMerged != 2 {
		t.Fatalf("rows merged %d, want 2", stats.RowsMerged)
	}
	// The winning row for id 7 must be rank 2's.
	var got lora.RowUpdate
	found := false
	for _, u := range merged[0].Rows {
		if u.ID == 7 {
			got = u
			found = true
		}
	}
	if !found {
		t.Fatal("merged state missing id 7")
	}
	want := states[2][0].Rows
	var wantRow lora.RowUpdate
	for _, u := range want {
		if u.ID == 7 {
			wantRow = u
		}
	}
	for i := range got.Row {
		if got.Row[i] != wantRow.Row[i] {
			t.Fatal("priority merge must take the max-rank row")
		}
	}
}

func TestPriorityMergeErrors(t *testing.T) {
	if _, _, err := PriorityMerge(nil); err == nil {
		t.Fatal("empty merge must error")
	}
	replicas := makeReplicas(2)
	bad := [][]lora.TableState{
		replicas[0].ExportState(),
		replicas[1].ExportState()[:1], // table count mismatch
	}
	if _, _, err := PriorityMerge(bad); err == nil {
		t.Fatal("table mismatch must error")
	}
}

func TestSyncGroupConvergence(t *testing.T) {
	// After Sync, all replicas must produce identical effective embeddings
	// for every id any rank touched — the replica-consistency requirement of
	// paper §II-C.
	replicas := makeReplicas(4)
	trainOn(replicas[0], 0, 5, 1)
	trainOn(replicas[1], 0, 5, 2) // conflict with rank 0
	trainOn(replicas[2], 1, 9, 3)
	trainOn(replicas[3], 0, 30, 4)

	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	c := simnet.NewClock()
	stats, err := sg.Sync(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Conflicts != 1 {
		t.Fatalf("conflicts %d, want 1", stats.Conflicts)
	}
	if c.Now() <= 0 {
		t.Fatal("sync must consume virtual time")
	}
	ids := []struct {
		table int
		id    int32
	}{{0, 5}, {1, 9}, {0, 30}}
	for _, q := range ids {
		ref := make([]float64, 8)
		replicas[0].EffectiveRow(q.table, q.id, ref)
		for r := 1; r < 4; r++ {
			got := make([]float64, 8)
			replicas[r].EffectiveRow(q.table, q.id, got)
			for i := range ref {
				if math.Abs(got[i]-ref[i]) > 1e-12 {
					t.Fatalf("replica %d diverges on table %d id %d", r, q.table, q.id)
				}
			}
		}
	}
	// Supports must be cleared.
	for _, r := range replicas {
		for _, a := range r.Adapters {
			if a.SupportSize() != 0 {
				t.Fatal("sync must reset supports")
			}
		}
	}
	syncs, bytes, secs := sg.Stats()
	if syncs != 1 || bytes <= 0 || secs <= 0 {
		t.Fatalf("stats %d %d %v", syncs, bytes, secs)
	}
}

func TestSyncGroupIdempotentWhenQuiet(t *testing.T) {
	replicas := makeReplicas(2)
	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	c := simnet.NewClock()
	if _, err := sg.Sync(c); err != nil {
		t.Fatal(err)
	}
	// Second sync with no training in between must merge zero rows.
	stats, err := sg.Sync(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsMerged != 0 || stats.Conflicts != 0 {
		t.Fatalf("quiet sync merged %d rows", stats.RowsMerged)
	}
}

func TestSyncIntervalAccuracyTradeoffSetup(t *testing.T) {
	// Longer sync intervals accumulate more divergence (paper Fig 9's
	// mechanism): verify replicas diverge before sync and agree after.
	replicas := makeReplicas(2)
	trainOn(replicas[0], 0, 5, 11)
	a := make([]float64, 8)
	b := make([]float64, 8)
	replicas[0].EffectiveRow(0, 5, a)
	replicas[1].EffectiveRow(0, 5, b)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("replicas should diverge before sync")
	}
	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	if _, err := sg.Sync(nil); err != nil { // nil clock allowed
		t.Fatal(err)
	}
	replicas[0].EffectiveRow(0, 5, a)
	replicas[1].EffectiveRow(0, 5, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replicas must agree after sync")
		}
	}
}

// Long-run version of the consistency test: replicas with a coordinated
// (fixed) rank train for many steps on disjoint shards, including pruning
// cycles, then a single sync must make every touched row identical across
// replicas (the examples/cluster scenario).
func TestSyncGroupConsistencyAfterLongRun(t *testing.T) {
	const nodes = 3
	replicas := make([]*lora.Set, nodes)
	for i := range replicas {
		base := emt.NewGroup(2, 200, 8, tensor.NewRNG(31)) // identical bases
		cfg := lora.DefaultConfig(200, 8)
		cfg.Seed = uint64(i)
		cfg.DisableRankAdapt = true // rank coordinated out of band
		cfg.AdaptInterval = 50      // pruning still cycles
		replicas[i] = lora.MustNewSet(base, cfg)
	}
	rng := tensor.NewRNG(77)
	g := make([]float64, 8)
	for step := 0; step < 600; step++ {
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		table := step % 2
		id := int32(rng.Intn(200))
		replicas[step%nodes].ApplyGrad(table, []int32{id}, g, 0.05)
	}
	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	if _, err := sg.Sync(simnet.NewClock()); err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, 8)
	got := make([]float64, 8)
	for table := 0; table < 2; table++ {
		for id := int32(0); id < 200; id++ {
			replicas[0].EffectiveRow(table, id, ref)
			for r := 1; r < nodes; r++ {
				replicas[r].EffectiveRow(table, id, got)
				for i := range ref {
					if math.Abs(got[i]-ref[i]) > 1e-12 {
						t.Fatalf("replica %d diverges on table %d id %d after long run", r, table, id)
					}
				}
			}
		}
	}
}
