package collective

import (
	"math"
	"testing"

	"liveupdate/internal/emt"
	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
)

func TestAllGatherRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 16: 4, 48: 6}
	for n, want := range cases {
		if got := AllGatherRounds(n); got != want {
			t.Fatalf("rounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAllGatherTimeLogScaling(t *testing.T) {
	// Latency-dominated regime: time grows like log2(N) (paper Fig 19).
	const bw = 1e12
	const lat = 0.01
	t2 := AllGatherTime(2, 1000, bw, lat)
	t16 := AllGatherTime(16, 1000, bw, lat)
	ratio := t16 / t2
	if math.Abs(ratio-4) > 0.1 { // log2(16)/log2(2) = 4
		t.Fatalf("latency scaling ratio %v, want ~4", ratio)
	}
	if AllGatherTime(1, 1000, bw, lat) != 0 {
		t.Fatal("single node needs no communication")
	}
}

func TestAllGatherTimeBytesScaling(t *testing.T) {
	// Bandwidth-dominated: total bytes moved per node ≈ (n-1)·payload, so
	// time ≈ (n-1)·payload/bw.
	const bw = 1e6
	got := AllGatherTime(8, 1000, bw, 0)
	want := float64(7*1000) / bw
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("bytes scaling time %v, want %v", got, want)
	}
}

func TestBroadcastTime(t *testing.T) {
	if BroadcastTime(1, 1000, 1e6, 0.01) != 0 {
		t.Fatal("single-node broadcast is free")
	}
	got := BroadcastTime(8, 1000, 1e6, 0.01)
	want := 3 * (0.01 + 1000/1e6)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("broadcast time %v, want %v", got, want)
	}
}

func TestAllGatherOnNetwork(t *testing.T) {
	c := simnet.NewClock()
	net := simnet.NewNetwork(4, 1e6, 0.001)
	elapsed := AllGatherOnNetwork(c, net, 1000)
	if elapsed <= 0 {
		t.Fatal("allgather must take time")
	}
	if c.Now() != elapsed {
		t.Fatal("clock must advance to completion")
	}
	// 2 rounds for n=4, payload doubles: round sizes 1000 then 2000.
	if net.TotalBytesMoved() != 4*1000+4*2000 {
		t.Fatalf("bytes moved %d", net.TotalBytesMoved())
	}
	// Single node: free.
	c2 := simnet.NewClock()
	if AllGatherOnNetwork(c2, simnet.NewNetwork(1, 1e6, 0.001), 1000) != 0 {
		t.Fatal("single-node network allgather must be free")
	}
}

func makeReplicas(n int) []*lora.Set {
	rng := tensor.NewRNG(5)
	replicas := make([]*lora.Set, n)
	for i := range replicas {
		base := emt.NewGroup(2, 50, 8, tensor.NewRNG(7)) // identical bases
		cfg := lora.DefaultConfig(50, 8)
		cfg.Seed = uint64(i)
		replicas[i] = lora.MustNewSet(base, cfg)
	}
	_ = rng
	return replicas
}

func trainOn(s *lora.Set, table int, id int32, seed uint64) {
	rng := tensor.NewRNG(seed)
	g := make([]float64, 8)
	for i := range g {
		g[i] = rng.NormFloat64()
	}
	for k := 0; k < 5; k++ {
		s.ApplyGrad(table, []int32{id}, g, 0.05)
	}
}

func TestPriorityMergeMaxRankWins(t *testing.T) {
	replicas := makeReplicas(3)
	// Ranks 0 and 2 both modify (table 0, id 7); rank 2 must win.
	trainOn(replicas[0], 0, 7, 100)
	trainOn(replicas[2], 0, 7, 200)
	trainOn(replicas[1], 1, 3, 300)

	states := [][]lora.TableState{
		replicas[0].ExportState(),
		replicas[1].ExportState(),
		replicas[2].ExportState(),
	}
	merged, stats, err := PriorityMerge(states)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Participants != 3 {
		t.Fatalf("participants %d", stats.Participants)
	}
	if stats.Conflicts != 1 {
		t.Fatalf("conflicts %d, want 1", stats.Conflicts)
	}
	if stats.RowsMerged != 2 {
		t.Fatalf("rows merged %d, want 2", stats.RowsMerged)
	}
	// The winning row for id 7 must be rank 2's.
	var got lora.RowUpdate
	found := false
	for _, u := range merged[0].Rows {
		if u.ID == 7 {
			got = u
			found = true
		}
	}
	if !found {
		t.Fatal("merged state missing id 7")
	}
	want := states[2][0].Rows
	var wantRow lora.RowUpdate
	for _, u := range want {
		if u.ID == 7 {
			wantRow = u
		}
	}
	for i := range got.Row {
		if got.Row[i] != wantRow.Row[i] {
			t.Fatal("priority merge must take the max-rank row")
		}
	}
}

// TestPriorityMergeOrderInvariant is the regression test for conflict
// resolution depending on input position: the merged TableState (rows AND
// the adopted B factor) must be bit-identical for any permutation of the
// replica states, because priority is the rank id, not the slice index.
func TestPriorityMergeOrderInvariant(t *testing.T) {
	replicas := makeReplicas(3)
	// Conflicts on (0,7) between ranks 0 and 2, on (1,3) between ranks 1 and
	// 2, plus rank-unique rows.
	trainOn(replicas[0], 0, 7, 100)
	trainOn(replicas[2], 0, 7, 200)
	trainOn(replicas[1], 1, 3, 300)
	trainOn(replicas[2], 1, 3, 400)
	trainOn(replicas[0], 0, 11, 500)
	trainOn(replicas[1], 0, 12, 600)

	ranked := make([]RankedState, 3)
	for r := range ranked {
		ranked[r] = RankedState{Rank: r, Tables: replicas[r].ExportState()}
	}
	ref, refStats, err := PriorityMergeRanked(append([]RankedState(nil), ranked...))
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		in := make([]RankedState, len(perm))
		for i, p := range perm {
			in[i] = ranked[p]
		}
		got, stats, err := PriorityMergeRanked(in)
		if err != nil {
			t.Fatal(err)
		}
		if stats != refStats {
			t.Fatalf("perm %v: stats %+v, want %+v", perm, stats, refStats)
		}
		if len(got) != len(ref) {
			t.Fatalf("perm %v: %d tables, want %d", perm, len(got), len(ref))
		}
		for ti := range ref {
			if len(got[ti].Rows) != len(ref[ti].Rows) {
				t.Fatalf("perm %v table %d: %d rows, want %d", perm, ti, len(got[ti].Rows), len(ref[ti].Rows))
			}
			for ri, u := range ref[ti].Rows {
				g := got[ti].Rows[ri]
				if g.ID != u.ID {
					t.Fatalf("perm %v table %d row %d: id %d, want %d", perm, ti, ri, g.ID, u.ID)
				}
				for k := range u.Row {
					if g.Row[k] != u.Row[k] {
						t.Fatalf("perm %v table %d id %d: winner differs by input order", perm, ti, u.ID)
					}
				}
			}
			if got[ti].Rank != ref[ti].Rank {
				t.Fatalf("perm %v table %d: B rank %d, want %d", perm, ti, got[ti].Rank, ref[ti].Rank)
			}
			for i := range ref[ti].B.Data {
				if got[ti].B.Data[i] != ref[ti].B.Data[i] {
					t.Fatalf("perm %v table %d: adopted B differs by input order", perm, ti)
				}
			}
		}
	}
	// PriorityMerge (index = rank) must agree with the ranked form.
	states := make([][]lora.TableState, 3)
	for r := range states {
		states[r] = ranked[r].Tables
	}
	viaIndex, idxStats, err := PriorityMerge(states)
	if err != nil {
		t.Fatal(err)
	}
	if idxStats != refStats || len(viaIndex) != len(ref) {
		t.Fatalf("PriorityMerge disagrees with PriorityMergeRanked: %+v vs %+v", idxStats, refStats)
	}
	// Duplicate rank ids are ambiguous priorities and must be rejected.
	if _, _, err := PriorityMergeRanked([]RankedState{
		{Rank: 1, Tables: ranked[0].Tables},
		{Rank: 1, Tables: ranked[1].Tables},
	}); err == nil {
		t.Fatal("duplicate ranks must error")
	}
}

// TestSyncGroupByteAccounting is the regression test for the payload/wire
// accounting mismatch: MergeStats.PayloadBytes counts each rank's export
// exactly once per sync, SyncGroup.Stats accumulates exactly those per-sync
// totals, and GroupStats.WireBytes bills the simulated collective
// (recursive-doubling AllGather on the max per-rank payload plus the
// broadcast of the merged state).
func TestSyncGroupByteAccounting(t *testing.T) {
	replicas := makeReplicas(4)
	trainOn(replicas[0], 0, 5, 1)
	trainOn(replicas[1], 0, 9, 2)
	trainOn(replicas[2], 1, 3, 3)

	states := make([][]lora.TableState, len(replicas))
	var wantPayload, maxPayload int64
	for i, r := range replicas {
		states[i] = r.ExportState()
		p := lora.PayloadBytes(states[i])
		wantPayload += p
		if p > maxPayload {
			maxPayload = p
		}
	}
	merged, stats, err := PriorityMerge(states)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PayloadBytes != wantPayload {
		t.Fatalf("MergeStats.PayloadBytes = %d, want Σ per-rank exports %d", stats.PayloadBytes, wantPayload)
	}

	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	if _, err := sg.Sync(simnet.NewClock()); err != nil {
		t.Fatal(err)
	}
	syncs, bytes, secs := sg.Stats()
	if syncs != 1 || bytes != wantPayload {
		t.Fatalf("Stats() = (%d, %d), want (1, %d): cumulative bytes must be per-sync payload totals", syncs, bytes, wantPayload)
	}
	gs := sg.GroupStats()
	wantWire := AllGatherBytes(4, maxPayload) + BroadcastBytes(4, lora.PayloadBytes(merged))
	if gs.WireBytes != wantWire {
		t.Fatalf("WireBytes = %d, want %d (allgather %d + broadcast %d)",
			gs.WireBytes, wantWire, AllGatherBytes(4, maxPayload), BroadcastBytes(4, lora.PayloadBytes(merged)))
	}
	if gs.WireBytes <= gs.PayloadBytes {
		t.Fatal("simulated wire traffic must exceed the application payload for 4 replicas")
	}
	if gs.ComputeSeconds <= 0 || gs.PublishSeconds <= 0 {
		t.Fatalf("cost split missing: %+v", gs)
	}
	if math.Abs(secs-gs.Seconds()) > 1e-15 {
		t.Fatalf("Stats seconds %v != GroupStats total %v", secs, gs.Seconds())
	}
	// A second sync accumulates on top (supports were reset, so only B moves).
	if _, err := sg.Sync(simnet.NewClock()); err != nil {
		t.Fatal(err)
	}
	if got := sg.GroupStats(); got.Syncs != 2 || got.PayloadBytes <= gs.PayloadBytes {
		t.Fatalf("second sync must accumulate: %+v after %+v", got, gs)
	}
}

func TestAllGatherAndBroadcastBytes(t *testing.T) {
	if AllGatherBytes(1, 1000) != 0 || BroadcastBytes(1, 1000) != 0 {
		t.Fatal("single node moves nothing")
	}
	// n=4: 2 rounds, per-node blocks 1000 then 2000 → 4·3000 total; matches
	// the traffic AllGatherOnNetwork actually generates (see its test).
	if got := AllGatherBytes(4, 1000); got != 12000 {
		t.Fatalf("AllGatherBytes(4, 1000) = %d, want 12000", got)
	}
	if got := BroadcastBytes(8, 1000); got != 7000 {
		t.Fatalf("BroadcastBytes(8, 1000) = %d, want 7000", got)
	}
}

// TestAsyncSyncGroupMatchesSync verifies the pipelined protocol is the same
// merge, the same cost, and the same accounting as the barrier Sync — only
// staged: Begin runs the merge in the background over pre-taken snapshots,
// Finish charges the clock and returns the staged state for publication.
func TestAsyncSyncGroupMatchesSync(t *testing.T) {
	mkTrained := func() []*lora.Set {
		replicas := makeReplicas(3)
		trainOn(replicas[0], 0, 5, 1)
		trainOn(replicas[1], 0, 5, 2)
		trainOn(replicas[2], 1, 9, 3)
		return replicas
	}

	barrier := mkTrained()
	bsg := NewSyncGroup(barrier, simnet.Gbps100, 0.001)
	bclock := simnet.NewClock()
	bstats, err := bsg.Sync(bclock)
	if err != nil {
		t.Fatal(err)
	}

	pipelined := mkTrained()
	asg := NewAsyncSyncGroup(NewSyncGroup(pipelined, simnet.Gbps100, 0.001))
	aclock := simnet.NewClock()
	states := make([][]lora.TableState, len(pipelined))
	for i, r := range pipelined {
		states[i] = r.Snapshot()
	}
	merged, astats, epoch, err := asg.Finish(asg.Begin(states), aclock)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pipelined {
		r.Publish(merged, epoch)
	}

	if astats != bstats {
		t.Fatalf("async merge stats %+v differ from barrier %+v", astats, bstats)
	}
	if aclock.Now() != bclock.Now() {
		t.Fatalf("async clock charge %v differs from barrier %v", aclock.Now(), bclock.Now())
	}
	if asg.Group.GroupStats() != bsg.GroupStats() {
		t.Fatalf("async accounting %+v differs from barrier %+v", asg.Group.GroupStats(), bsg.GroupStats())
	}
	if epoch != 1 {
		t.Fatalf("first sync generation = %d, want 1", epoch)
	}
	// Replica consistency and version stamping after the async publish.
	ref := make([]float64, 8)
	got := make([]float64, 8)
	for _, q := range []struct {
		table int
		id    int32
	}{{0, 5}, {1, 9}} {
		pipelined[0].EffectiveRow(q.table, q.id, ref)
		for r := 1; r < len(pipelined); r++ {
			pipelined[r].EffectiveRow(q.table, q.id, got)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("replica %d diverges on table %d id %d after async publish", r, q.table, q.id)
				}
			}
		}
	}
	for i, r := range pipelined {
		if r.Epoch() != epoch {
			t.Fatalf("replica %d epoch %d, want %d", i, r.Epoch(), epoch)
		}
		if v := r.Published(); v == nil || len(v.Tables) != 2 {
			t.Fatalf("replica %d published version malformed", i)
		}
	}
}

func TestPriorityMergeErrors(t *testing.T) {
	if _, _, err := PriorityMerge(nil); err == nil {
		t.Fatal("empty merge must error")
	}
	replicas := makeReplicas(2)
	bad := [][]lora.TableState{
		replicas[0].ExportState(),
		replicas[1].ExportState()[:1], // table count mismatch
	}
	if _, _, err := PriorityMerge(bad); err == nil {
		t.Fatal("table mismatch must error")
	}
}

func TestSyncGroupConvergence(t *testing.T) {
	// After Sync, all replicas must produce identical effective embeddings
	// for every id any rank touched — the replica-consistency requirement of
	// paper §II-C.
	replicas := makeReplicas(4)
	trainOn(replicas[0], 0, 5, 1)
	trainOn(replicas[1], 0, 5, 2) // conflict with rank 0
	trainOn(replicas[2], 1, 9, 3)
	trainOn(replicas[3], 0, 30, 4)

	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	c := simnet.NewClock()
	stats, err := sg.Sync(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Conflicts != 1 {
		t.Fatalf("conflicts %d, want 1", stats.Conflicts)
	}
	if c.Now() <= 0 {
		t.Fatal("sync must consume virtual time")
	}
	ids := []struct {
		table int
		id    int32
	}{{0, 5}, {1, 9}, {0, 30}}
	for _, q := range ids {
		ref := make([]float64, 8)
		replicas[0].EffectiveRow(q.table, q.id, ref)
		for r := 1; r < 4; r++ {
			got := make([]float64, 8)
			replicas[r].EffectiveRow(q.table, q.id, got)
			for i := range ref {
				if math.Abs(got[i]-ref[i]) > 1e-12 {
					t.Fatalf("replica %d diverges on table %d id %d", r, q.table, q.id)
				}
			}
		}
	}
	// Supports must be cleared.
	for _, r := range replicas {
		for _, a := range r.Adapters {
			if a.SupportSize() != 0 {
				t.Fatal("sync must reset supports")
			}
		}
	}
	syncs, bytes, secs := sg.Stats()
	if syncs != 1 || bytes <= 0 || secs <= 0 {
		t.Fatalf("stats %d %d %v", syncs, bytes, secs)
	}
}

func TestSyncGroupIdempotentWhenQuiet(t *testing.T) {
	replicas := makeReplicas(2)
	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	c := simnet.NewClock()
	if _, err := sg.Sync(c); err != nil {
		t.Fatal(err)
	}
	// Second sync with no training in between must merge zero rows.
	stats, err := sg.Sync(c)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsMerged != 0 || stats.Conflicts != 0 {
		t.Fatalf("quiet sync merged %d rows", stats.RowsMerged)
	}
}

func TestSyncIntervalAccuracyTradeoffSetup(t *testing.T) {
	// Longer sync intervals accumulate more divergence (paper Fig 9's
	// mechanism): verify replicas diverge before sync and agree after.
	replicas := makeReplicas(2)
	trainOn(replicas[0], 0, 5, 11)
	a := make([]float64, 8)
	b := make([]float64, 8)
	replicas[0].EffectiveRow(0, 5, a)
	replicas[1].EffectiveRow(0, 5, b)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("replicas should diverge before sync")
	}
	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	if _, err := sg.Sync(nil); err != nil { // nil clock allowed
		t.Fatal(err)
	}
	replicas[0].EffectiveRow(0, 5, a)
	replicas[1].EffectiveRow(0, 5, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replicas must agree after sync")
		}
	}
}

// Long-run version of the consistency test: replicas with a coordinated
// (fixed) rank train for many steps on disjoint shards, including pruning
// cycles, then a single sync must make every touched row identical across
// replicas (the examples/cluster scenario).
func TestSyncGroupConsistencyAfterLongRun(t *testing.T) {
	const nodes = 3
	replicas := make([]*lora.Set, nodes)
	for i := range replicas {
		base := emt.NewGroup(2, 200, 8, tensor.NewRNG(31)) // identical bases
		cfg := lora.DefaultConfig(200, 8)
		cfg.Seed = uint64(i)
		cfg.DisableRankAdapt = true // rank coordinated out of band
		cfg.AdaptInterval = 50      // pruning still cycles
		replicas[i] = lora.MustNewSet(base, cfg)
	}
	rng := tensor.NewRNG(77)
	g := make([]float64, 8)
	for step := 0; step < 600; step++ {
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		table := step % 2
		id := int32(rng.Intn(200))
		replicas[step%nodes].ApplyGrad(table, []int32{id}, g, 0.05)
	}
	sg := NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	if _, err := sg.Sync(simnet.NewClock()); err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, 8)
	got := make([]float64, 8)
	for table := 0; table < 2; table++ {
		for id := int32(0); id < 200; id++ {
			replicas[0].EffectiveRow(table, id, ref)
			for r := 1; r < nodes; r++ {
				replicas[r].EffectiveRow(table, id, got)
				for i := range ref {
					if math.Abs(got[i]-ref[i]) > 1e-12 {
						t.Fatalf("replica %d diverges on table %d id %d after long run", r, table, id)
					}
				}
			}
		}
	}
}
