package collective

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"liveupdate/internal/lora"
	"liveupdate/internal/tensor"
)

// Delta sync is a cost-accounting layer, not a state-flow change: the merge
// always runs over every rank's full export, so the published state is
// bit-identical to full sync. What changes is the bill. Each rank's gather
// contribution skips the shared B factor when it still matches the last
// published one (every receiver holds that factor in its published Version,
// so a real protocol would reference it instead of resending); the publish
// skips unchanged factors the same way. Peers that missed publishes — ranks
// whose last acknowledged generation trails the group's — are backfilled
// point-to-point with the rows whose generation passed them by, which is the
// "ship only rows whose epoch changed since the peer's last acknowledged
// generation" half of the protocol.

// deltaTracking stages the generation bookkeeping one delta-mode sync
// applies at commit: which rows the publish touched, whether each table's
// published factor changed, and which ranks acknowledged the generation.
type deltaTracking struct {
	participants []int
	mergedIDs    [][]int32 // per table: row ids published this sync
	bChanged     []bool    // per table: published B differs from the last publish
	newPubB      []uint64  // per table: fingerprint of the B published this sync
}

// deltaSizing is the delta-adjusted pricing input for one sync.
type deltaSizing struct {
	perRank int64 // pacing (largest) per-rank delta payload
	merged  int64 // delta-adjusted publish payload
	sum     int64 // Σ per-rank delta payloads (compression cpu input)

	pacing []lora.TableState // the pacing rank's payload, skipped factors nil'd
	pub    []lora.TableState // the publish payload, skipped factors nil'd

	track     *deltaTracking
	backBytes int64   // stale-peer backfill wire volume
	backSecs  float64 // point-to-point publish time for the backfills
}

// deltaSize computes the delta-adjusted payload sizes for one sync. It reads
// the tracking maps under sg.mu but defers every mutation to commit via the
// staged deltaTracking, so a failed or abandoned merge leaves no trace.
func (sg *SyncGroup) deltaSize(states []RankedState, merged []lora.TableState) deltaSizing {
	numTables := len(merged)
	ds := deltaSizing{
		track: &deltaTracking{
			participants: make([]int, len(states)),
			mergedIDs:    make([][]int32, numTables),
			bChanged:     make([]bool, numTables),
			newPubB:      make([]uint64, numTables),
		},
	}
	for i, st := range states {
		ds.track.participants[i] = st.Rank
	}
	for t, mt := range merged {
		ids := make([]int32, len(mt.Rows))
		for i, u := range mt.Rows {
			ids[i] = u.ID
		}
		ds.track.mergedIDs[t] = ids
	}

	sg.mu.Lock()
	defer sg.mu.Unlock()

	// Per-rank gather payloads: rows always ship (exports hold only rows
	// modified since the last snapshot), the shared factor ships only when
	// it no longer matches the published one. The pacing rank is the
	// largest adjusted payload, ties toward the higher rank id.
	pacing, pacingSize := 0, int64(-1)
	shipB := make([][]bool, len(states))
	for i, st := range states {
		var size int64
		shipB[i] = make([]bool, len(st.Tables))
		for t, ts := range st.Tables {
			size += rowsPayloadBytes(ts.Rows)
			if ts.B == nil {
				continue
			}
			fp := fingerprintB(ts.B)
			if last, ok := sg.pubB[t]; !ok || last != fp {
				shipB[i][t] = true
				size += int64(len(ts.B.Data)) * 8
			}
		}
		ds.sum += size
		if size > pacingSize || (size == pacingSize && st.Rank > states[pacing].Rank) {
			pacing, pacingSize = i, size
		}
	}
	ds.perRank = pacingSize
	ds.pacing = stripFactors(states[pacing].Tables, shipB[pacing])

	// Publish payload: merged rows plus only the factors that changed since
	// the last publish.
	pubShip := make([]bool, numTables)
	for t, mt := range merged {
		ds.merged += rowsPayloadBytes(mt.Rows)
		fp := fingerprintB(mt.B)
		ds.track.newPubB[t] = fp
		if mt.B == nil {
			continue
		}
		if last, ok := sg.pubB[t]; !ok || last != fp {
			ds.track.bChanged[t] = true
			pubShip[t] = true
			ds.merged += int64(len(mt.B.Data)) * 8
		}
	}
	ds.pub = stripFactors(merged, pubShip)

	// Backfill: a participant whose acknowledged generation trails the
	// group's missed publishes; ship it the rows (and factors) that changed
	// in between, excluding anything already in this sync's publish.
	lastGen := int64(sg.stats.Syncs)
	var inPub []map[int32]bool // lazily built: per table, ids published this sync
	for _, st := range states {
		ack, known := sg.acked[st.Rank]
		if !known || ack >= lastGen {
			continue // new ranks are caught up out of band (CatchUpBytes)
		}
		if inPub == nil {
			inPub = make([]map[int32]bool, numTables)
			for t := range merged {
				set := make(map[int32]bool, len(merged[t].Rows))
				for _, u := range merged[t].Rows {
					set[u.ID] = true
				}
				inPub[t] = set
			}
		}
		var bytes int64
		for t, mt := range merged {
			rowBytes := 4 + 8*int64(mt.Rank)
			for id, gen := range sg.rowGen[t] {
				if gen > ack && !inPub[t][id] {
					bytes += rowBytes
				}
			}
			if mt.B != nil && sg.bGen[t] > ack && !ds.track.bChanged[t] {
				bytes += int64(len(mt.B.Data)) * 8
			}
		}
		ds.backBytes += bytes
		ds.backSecs += sg.LatencySec + float64(bytes)/sg.BandwidthBps
	}
	return ds
}

// applyTrackingLocked folds one committed delta sync's bookkeeping into the
// tracking maps. Caller holds sg.mu; gen is the just-committed generation.
func (sg *SyncGroup) applyTrackingLocked(t *deltaTracking, gen int64) {
	for ti := range t.mergedIDs {
		rg := sg.rowGen[ti]
		if rg == nil {
			rg = make(map[int32]int64)
			sg.rowGen[ti] = rg
		}
		for _, id := range t.mergedIDs[ti] {
			rg[id] = gen
		}
		sg.pubB[ti] = t.newPubB[ti]
		if t.bChanged[ti] {
			sg.bGen[ti] = gen
		}
	}
	for _, r := range t.participants {
		sg.acked[r] = gen
	}
}

// stripFactors returns tables with the shared factor nil'd wherever ship is
// false — the delta wire representation. Rows are shared, not copied; the
// caller treats the result as read-only sizing input.
func stripFactors(tables []lora.TableState, ship []bool) []lora.TableState {
	out := make([]lora.TableState, len(tables))
	for t, ts := range tables {
		out[t] = ts
		if t < len(ship) && !ship[t] {
			out[t].B = nil
		}
	}
	return out
}

// rowsPayloadBytes prices a row list the same way lora.PayloadBytes does:
// 4 bytes of id plus 8 per coefficient.
func rowsPayloadBytes(rows []lora.RowUpdate) int64 {
	var total int64
	for _, u := range rows {
		total += 4 + int64(len(u.Row))*8
	}
	return total
}

// fingerprintB hashes a shared factor's dimensions and contents (FNV-1a over
// the raw float bits). Exported factors are deep copies, so identity must be
// established by content, never by pointer.
func fingerprintB(m *tensor.Matrix) uint64 {
	if m == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(buf[4:], uint32(m.Cols))
	h.Write(buf[:])
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}
