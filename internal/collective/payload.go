package collective

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"liveupdate/internal/lora"
	"liveupdate/internal/tensor"
)

// Sync payload wire format, used to size (and optionally deflate) the
// collective's transfers deterministically:
//
//	magic "LUSY" | u8 version | u8 flags (bit0: deflate body)
//	body:
//	  u32 tableCount
//	  per table:
//	    u32 rank
//	    u8  hasFactor; if set: u32 rows, u32 cols, rows·cols f64
//	    u32 rowCount
//	    per row: u32 id, u32 width, width f64
//
// Decoding mirrors the emt checkpoint reader and the netserve wire codec:
// every length field is validated against a named cap before any allocation,
// a cumulative element budget bounds the whole payload, the deflate path is
// capped against decompression bombs, and trailing bytes are rejected.
const (
	payloadMagic   = "LUSY"
	payloadVersion = 1

	flagPayloadDeflate = 1 << 0

	// Caps leave orders of magnitude of headroom over any real sync while
	// keeping the worst admissible payload far below memory trouble.
	maxPayloadTables = 1 << 12 // tables per payload
	maxPayloadRank   = 1 << 10 // coefficients per adapter row / factor rows
	maxPayloadDim    = 1 << 14 // factor columns (embedding dimension)
	maxPayloadRows   = 1 << 24 // row updates per table
	maxPayloadBody   = 1 << 28 // decompressed body bytes (deflate-bomb guard)

	// maxPayloadElems bounds the float64s summed over the whole payload and
	// is deliberately tighter than the per-field caps multiplied out: it is
	// the binding cumulative bound (~33 MB of coefficients), checked before
	// each allocation, so a payload that keeps every individual field under
	// its cap still cannot declare unbounded total work.
	maxPayloadElems = 1 << 22
)

// compressBaseBps models single-stream deflate throughput at level 1; higher
// levels trade cpu for ratio roughly linearly, so level l runs at base/l.
const compressBaseBps = 400e6

func compressThroughputBps(level int) float64 {
	return compressBaseBps / float64(level)
}

// EncodePayload serializes tables into the sync payload format, deflating
// the body when level is 1–9 (0 writes it raw). A nil factor encodes as
// absent — the delta representation for factors the receiver already holds.
func EncodePayload(tables []lora.TableState, level int) ([]byte, error) {
	if level < 0 || level > 9 {
		return nil, fmt.Errorf("collective: compression level %d out of range [0,9]", level)
	}
	var body bytes.Buffer
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		body.Write(b[:])
	}
	putF64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		body.Write(b[:])
	}
	putU32(uint32(len(tables)))
	for _, ts := range tables {
		putU32(uint32(ts.Rank))
		if ts.B != nil {
			body.WriteByte(1)
			putU32(uint32(ts.B.Rows))
			putU32(uint32(ts.B.Cols))
			for _, v := range ts.B.Data {
				putF64(v)
			}
		} else {
			body.WriteByte(0)
		}
		putU32(uint32(len(ts.Rows)))
		for _, u := range ts.Rows {
			putU32(uint32(u.ID))
			putU32(uint32(len(u.Row)))
			for _, v := range u.Row {
				putF64(v)
			}
		}
	}

	out := bytes.NewBufferString(payloadMagic)
	out.WriteByte(payloadVersion)
	if level == 0 {
		out.WriteByte(0)
		out.Write(body.Bytes())
		return out.Bytes(), nil
	}
	out.WriteByte(flagPayloadDeflate)
	fw, err := flate.NewWriter(out, level)
	if err != nil {
		return nil, fmt.Errorf("collective: deflate init: %w", err)
	}
	if _, err := fw.Write(body.Bytes()); err != nil {
		return nil, fmt.Errorf("collective: deflate payload: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("collective: deflate payload: %w", err)
	}
	return out.Bytes(), nil
}

// compressedPayloadBytes is EncodePayload's size, used to price deflated
// transfers. The level was validated at group construction, so encoding
// cannot fail.
func compressedPayloadBytes(tables []lora.TableState, level int) int64 {
	enc, err := EncodePayload(tables, level)
	if err != nil {
		panic(err)
	}
	return int64(len(enc))
}

// payloadReader is a bounds-checked cursor over an untrusted payload, in the
// style of netserve's wireReader: every read validates remaining length
// first, so a truncated or hostile input fails cleanly instead of slicing
// out of range.
type payloadReader struct {
	data []byte
	off  int
}

func (r *payloadReader) remaining() int { return len(r.data) - r.off }

func (r *payloadReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("collective: truncated payload")
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *payloadReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("collective: truncated payload")
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *payloadReader) f64s(dst []float64) error {
	need := len(dst) * 8
	if r.remaining() < need {
		return fmt.Errorf("collective: truncated payload")
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
		r.off += 8
	}
	return nil
}

// DecodePayload parses an EncodePayload frame, rejecting malformed or
// hostile input before allocating for it.
func DecodePayload(data []byte) ([]lora.TableState, error) {
	hdr := payloadReader{data: data}
	if hdr.remaining() < len(payloadMagic) {
		return nil, fmt.Errorf("collective: truncated payload")
	}
	if string(data[:len(payloadMagic)]) != payloadMagic {
		return nil, fmt.Errorf("collective: bad payload magic")
	}
	hdr.off = len(payloadMagic)
	version, err := hdr.u8()
	if err != nil {
		return nil, err
	}
	if version != payloadVersion {
		return nil, fmt.Errorf("collective: unsupported payload version %d", version)
	}
	flags, err := hdr.u8()
	if err != nil {
		return nil, err
	}
	if flags&^byte(flagPayloadDeflate) != 0 {
		return nil, fmt.Errorf("collective: unknown payload flags %#x", flags)
	}

	body := data[hdr.off:]
	if flags&flagPayloadDeflate != 0 {
		fr := flate.NewReader(bytes.NewReader(body))
		// Cap the inflated size before buffering it: one byte of slack past
		// the cap distinguishes "too big" from "exactly at the cap".
		inflated, err := io.ReadAll(io.LimitReader(fr, maxPayloadBody+1))
		if cerr := fr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("collective: corrupt deflate payload: %w", err)
		}
		if len(inflated) > maxPayloadBody {
			return nil, fmt.Errorf("collective: inflated payload exceeds %d bytes", maxPayloadBody)
		}
		body = inflated
	}

	r := payloadReader{data: body}
	tableCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	if tableCount > maxPayloadTables {
		return nil, fmt.Errorf("collective: payload table count %d exceeds cap %d", tableCount, maxPayloadTables)
	}
	var elems int64
	budget := func(n int64) error {
		elems += n
		if elems > maxPayloadElems {
			return fmt.Errorf("collective: payload elements %d exceed cap %d", elems, maxPayloadElems)
		}
		return nil
	}
	tables := make([]lora.TableState, tableCount)
	for t := range tables {
		rank, err := r.u32()
		if err != nil {
			return nil, err
		}
		if rank > maxPayloadRank {
			return nil, fmt.Errorf("collective: payload rank %d exceeds cap %d", rank, maxPayloadRank)
		}
		tables[t].Rank = int(rank)
		hasB, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch hasB {
		case 0:
		case 1:
			rows, err := r.u32()
			if err != nil {
				return nil, err
			}
			cols, err := r.u32()
			if err != nil {
				return nil, err
			}
			if rows > maxPayloadRank {
				return nil, fmt.Errorf("collective: payload factor rows %d exceed cap %d", rows, maxPayloadRank)
			}
			if cols > maxPayloadDim {
				return nil, fmt.Errorf("collective: payload factor cols %d exceed cap %d", cols, maxPayloadDim)
			}
			if err := budget(int64(rows) * int64(cols)); err != nil {
				return nil, err
			}
			m := tensor.NewMatrix(int(rows), int(cols))
			if err := r.f64s(m.Data); err != nil {
				return nil, err
			}
			tables[t].B = m
		default:
			return nil, fmt.Errorf("collective: payload factor marker %d invalid", hasB)
		}
		rowCount, err := r.u32()
		if err != nil {
			return nil, err
		}
		if rowCount > maxPayloadRows {
			return nil, fmt.Errorf("collective: payload row count %d exceeds cap %d", rowCount, maxPayloadRows)
		}
		rows := make([]lora.RowUpdate, rowCount)
		for i := range rows {
			id, err := r.u32()
			if err != nil {
				return nil, err
			}
			width, err := r.u32()
			if err != nil {
				return nil, err
			}
			if width > maxPayloadRank {
				return nil, fmt.Errorf("collective: payload row width %d exceeds cap %d", width, maxPayloadRank)
			}
			if err := budget(int64(width)); err != nil {
				return nil, err
			}
			rows[i] = lora.RowUpdate{ID: int32(id), Row: make([]float64, width)}
			if err := r.f64s(rows[i].Row); err != nil {
				return nil, err
			}
		}
		tables[t].Rows = rows
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("collective: %d trailing payload bytes", r.remaining())
	}
	return tables, nil
}
