package collective

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"strings"
	"testing"

	"liveupdate/internal/lora"
	"liveupdate/internal/tensor"
)

func payloadFixture() []lora.TableState {
	b := tensor.NewMatrix(3, 4)
	for i := range b.Data {
		b.Data[i] = float64(i) * 0.25
	}
	return []lora.TableState{
		{
			Rank: 3,
			B:    b,
			Rows: []lora.RowUpdate{
				{ID: 7, Row: []float64{1, 2, 3}},
				{ID: 42, Row: []float64{-0.5, 0.5, 1.5}},
			},
		},
		{Rank: 2, B: nil, Rows: []lora.RowUpdate{{ID: 0, Row: []float64{9, 9}}}},
		{Rank: 1, B: tensor.NewMatrix(1, 2)},
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	cases := map[string][]lora.TableState{
		"fixture": payloadFixture(),
		"empty":   {},
		"no-rows": {{Rank: 4, B: tensor.NewMatrix(4, 2)}},
	}
	for name, tables := range cases {
		for _, level := range []int{0, 1, 6, 9} {
			enc, err := EncodePayload(tables, level)
			if err != nil {
				t.Fatalf("%s level %d: %v", name, level, err)
			}
			dec, err := DecodePayload(enc)
			if err != nil {
				t.Fatalf("%s level %d: decode: %v", name, level, err)
			}
			if !tablesEqual(dec, tables) {
				t.Fatalf("%s level %d: round trip changed the payload", name, level)
			}
		}
	}
	if _, err := EncodePayload(nil, 10); err == nil {
		t.Fatal("level 10 must be rejected")
	}
	if _, err := EncodePayload(nil, -1); err == nil {
		t.Fatal("level -1 must be rejected")
	}
}

func TestPayloadCompressionShrinksRepetitiveTables(t *testing.T) {
	// A realistic sync payload is full of near-zero float64s; deflate must
	// beat the raw encoding for the compression knob to mean anything.
	rows := make([]lora.RowUpdate, 256)
	for i := range rows {
		rows[i] = lora.RowUpdate{ID: int32(i), Row: make([]float64, 8)}
	}
	tables := []lora.TableState{{Rank: 8, Rows: rows}}
	raw, err := EncodePayload(tables, 0)
	if err != nil {
		t.Fatal(err)
	}
	z, err := EncodePayload(tables, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) >= len(raw) {
		t.Fatalf("deflate payload %d bytes >= raw %d", len(z), len(raw))
	}
}

// payloadCorpus builds a valid raw frame and returns it plus helpers for
// corrupting specific fields in place.
func validRawPayload(t *testing.T) []byte {
	t.Helper()
	enc, err := EncodePayload(payloadFixture(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestPayloadHostileInputs is the hostile-input regression table: every
// length field oversized past its cap, truncations, unknown framing, and
// deflate bombs must all error before any oversized allocation happens.
func TestPayloadHostileInputs(t *testing.T) {
	// Offsets into the raw frame (6-byte header, then the body):
	// body+0: tableCount; body+4: table0 rank; body+8: hasFactor;
	// body+9: factor rows; body+13: factor cols.
	const body = 6
	put := func(frame []byte, off int, v uint32) []byte {
		out := append([]byte(nil), frame...)
		binary.LittleEndian.PutUint32(out[off:], v)
		return out
	}
	deflateFrame := func(raw []byte) []byte {
		var buf bytes.Buffer
		buf.WriteString(payloadMagic)
		buf.WriteByte(payloadVersion)
		buf.WriteByte(flagPayloadDeflate)
		fw, err := flate.NewWriter(&buf, 6)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(raw); err != nil {
			t.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := validRawPayload(t)

	cases := []struct {
		name    string
		frame   []byte
		wantErr string
	}{
		{"empty", nil, "truncated"},
		{"short header", []byte("LUS"), "truncated"},
		{"bad magic", append([]byte("NOPE"), valid[4:]...), "bad payload magic"},
		{"bad version", func() []byte {
			f := append([]byte(nil), valid...)
			f[4] = 99
			return f
		}(), "unsupported payload version"},
		{"unknown flags", func() []byte {
			f := append([]byte(nil), valid...)
			f[5] = 0x80
			return f
		}(), "unknown payload flags"},
		{"truncated body", valid[:len(valid)-5], "truncated"},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xff), "trailing payload bytes"},
		{"table count over cap", put(valid, body, maxPayloadTables+1), "table count"},
		{"table count beyond data", put(valid, body, maxPayloadTables-1), "truncated"},
		{"rank over cap", put(valid, body+4, maxPayloadRank+1), "rank"},
		{"factor marker invalid", func() []byte {
			f := append([]byte(nil), valid...)
			f[body+8] = 7
			return f
		}(), "factor marker"},
		{"factor rows over cap", put(valid, body+9, maxPayloadRank+1), "factor rows"},
		{"factor cols over cap", put(valid, body+13, maxPayloadDim+1), "factor cols"},
		{"element budget exceeded", put(put(valid, body+9, maxPayloadRank), body+13, maxPayloadDim), "elements"},
		{"corrupt deflate", append([]byte("LUSY\x01\x01"), 0xde, 0xad, 0xbe, 0xef), "corrupt deflate"},
	}

	// Row-level corruptions need the offset of table0's first row, which
	// sits after the factor block: 9 header bytes + rows·cols floats.
	fx := payloadFixture()
	// tableCount + rank + marker + factor dims + factor data
	rowOff := body + 4 + 4 + 1 + 8 + len(fx[0].B.Data)*8
	cases = append(cases,
		struct {
			name    string
			frame   []byte
			wantErr string
		}{"row count over cap", put(valid, rowOff, maxPayloadRows+1), "row count"},
		struct {
			name    string
			frame   []byte
			wantErr string
		}{"row width over cap", put(valid, rowOff+8, maxPayloadRank+1), "row width"},
		struct {
			name    string
			frame   []byte
			wantErr string
		}{"row width beyond data", put(valid, rowOff+8, maxPayloadRank-1), "truncated"},
	)

	// Decompression bomb: a tiny deflate frame inflating past maxPayloadBody.
	bomb := deflateFrame(make([]byte, maxPayloadBody+2))
	if len(bomb) > 1<<20 {
		t.Fatalf("bomb frame unexpectedly large: %d", len(bomb))
	}
	cases = append(cases, struct {
		name    string
		frame   []byte
		wantErr string
	}{"decompression bomb", bomb, "exceeds"})

	for _, tc := range cases {
		_, err := DecodePayload(tc.frame)
		if err == nil {
			t.Fatalf("%s: decode must fail", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// A deflated valid frame still round-trips through the hostile decoder.
	dec, err := DecodePayload(deflateFrame(valid[body:]))
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(dec, fx) {
		t.Fatal("deflated frame round trip changed the payload")
	}
}
