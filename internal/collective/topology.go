package collective

import (
	"fmt"
	"math"
)

// Kind names a sync collective topology. It is the string form used by
// cluster configuration and CLI flags.
type Kind string

const (
	// TopologyFlat is the original recursive-doubling AllGather plus
	// binomial broadcast: every rank ends the gather holding every other
	// rank's payload, so the wire bill is quadratic in the fleet size.
	TopologyFlat Kind = "flat"
	// TopologyRing is a pipelined, chunked ring: the gather reduces around
	// the ring and the broadcast pipelines the merged state the other way.
	// Bandwidth-optimal (each link carries ~one payload) but latency-serial
	// (n−1 hops).
	TopologyRing Kind = "ring"
	// TopologyTree is a binomial reduce + binomial broadcast: ceil(log2 n)
	// rounds each way, with partial merges bounded by the final merged
	// payload. The log-depth topology the syncscale experiment is about.
	TopologyTree Kind = "tree"
)

// Topologies lists the supported topology kinds in presentation order.
func Topologies() []Kind { return []Kind{TopologyFlat, TopologyRing, TopologyTree} }

// Topology prices the two phases of one priority-merge sync — the gather
// (collect every rank's exported payload to form the merge) and the
// broadcast (publish the merged state back to every rank) — on uniform
// full-duplex links. Implementations are pure cost models: the merge result
// itself is computed by PriorityMergeRanked and is identical under every
// topology; only the virtual time and wire bytes charged differ.
//
// perRank is the largest single rank's payload (the pacing payload of the
// gather), merged is the priority-merged result's payload. Hierarchical
// topologies forward partial merges instead of concatenations, so their hop
// payload is max(perRank, merged) — a partial priority merge can never
// exceed the final merged payload plus one rank's unmerged contribution.
type Topology interface {
	// Kind returns the topology's registry name.
	Kind() Kind
	// Rounds returns the collective's depth in communication rounds.
	Rounds(n int) int
	// GatherTime returns the virtual duration of the gather phase.
	GatherTime(n int, perRank, merged int64, bandwidthBps, latencySec float64) float64
	// GatherBytes returns the wire volume the gather phase moves.
	GatherBytes(n int, perRank, merged int64) int64
	// BroadcastTime returns the virtual duration of publishing size bytes
	// to all n ranks.
	BroadcastTime(n int, size int64, bandwidthBps, latencySec float64) float64
	// BroadcastBytes returns the wire volume of publishing size bytes to
	// all n ranks.
	BroadcastBytes(n int, size int64) int64
}

// ParseTopology resolves a topology kind ("flat", "ring", "tree"; empty
// defaults to flat) to its implementation.
func ParseTopology(kind Kind) (Topology, error) {
	switch kind {
	case "", TopologyFlat:
		return Flat{}, nil
	case TopologyRing:
		return Ring{}, nil
	case TopologyTree:
		return Tree{}, nil
	}
	return nil, fmt.Errorf("collective: unknown topology %q (want flat, ring, or tree)", kind)
}

// ceilLog2 returns ceil(log2(n)) for n > 1, 0 otherwise — the round count
// shared by recursive doubling and the binomial tree.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

func checkPayload(bytes int64) {
	if bytes < 0 {
		panic("collective: negative payload")
	}
}

func checkBandwidth(bandwidthBps float64) {
	if bandwidthBps <= 0 {
		panic("collective: bandwidth must be positive")
	}
}

// hopPayload is the per-hop payload of a hierarchical (ring/tree) collective:
// partials are priority merges, so a hop carries at most the larger of one
// rank's contribution and the final merged state.
func hopPayload(perRank, merged int64) int64 {
	checkPayload(perRank)
	checkPayload(merged)
	if perRank > merged {
		return perRank
	}
	return merged
}

// Flat is the original cost model: recursive-doubling AllGather (every rank
// ends up holding every rank's raw payload — the accumulated block doubles
// each round, so the fleet-wide traffic is n·(2^rounds−1)·perRank) plus a
// binomial-tree broadcast of the merged state. The deprecated free functions
// (AllGatherTime etc.) delegate here bit-for-bit.
type Flat struct{}

// Kind implements Topology.
func (Flat) Kind() Kind { return TopologyFlat }

// Rounds implements Topology: ceil(log2 n) recursive-doubling rounds.
func (Flat) Rounds(n int) int { return ceilLog2(n) }

// GatherTime implements Topology. The merged payload is ignored: a flat
// AllGather ships raw concatenations, never partial merges.
func (Flat) GatherTime(n int, perRank, _ int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	checkPayload(perRank)
	checkBandwidth(bandwidthBps)
	total := 0.0
	block := float64(perRank)
	for r := 0; r < ceilLog2(n); r++ {
		total += latencySec + block/bandwidthBps
		block *= 2
	}
	return total
}

// GatherBytes implements Topology: n·(2^rounds − 1)·perRank.
func (Flat) GatherBytes(n int, perRank, _ int64) int64 {
	if n <= 1 {
		return 0
	}
	checkPayload(perRank)
	return int64(n) * ((1 << ceilLog2(n)) - 1) * perRank
}

// BroadcastTime implements Topology: ceil(log2 n) rounds, each shipping the
// full payload one hop.
func (Flat) BroadcastTime(n int, size int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	checkPayload(size)
	checkBandwidth(bandwidthBps)
	return float64(ceilLog2(n)) * (latencySec + float64(size)/bandwidthBps)
}

// BroadcastBytes implements Topology: n−1 point-to-point transmissions of
// the full payload (rounds overlap in time, not in traffic).
func (Flat) BroadcastBytes(n int, size int64) int64 {
	if n <= 1 {
		return 0
	}
	checkPayload(size)
	return int64(n-1) * size
}

// Tree is a binomial reduce followed by a binomial broadcast. In each of the
// ceil(log2 n) reduce rounds, half the live subtree roots ship their partial
// priority merge one hop and drop out; a partial merge is bounded by
// max(perRank, merged), so every hop carries at most that. Total gather
// traffic is n−1 hops — linear in the fleet, against flat's quadratic — and
// gather depth is logarithmic.
type Tree struct{}

// Kind implements Topology.
func (Tree) Kind() Kind { return TopologyTree }

// Rounds implements Topology: ceil(log2 n) binomial rounds.
func (Tree) Rounds(n int) int { return ceilLog2(n) }

// GatherTime implements Topology: rounds × (latency + hop/bandwidth), the
// depth×link charge of a binomial reduce.
func (Tree) GatherTime(n int, perRank, merged int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	hop := hopPayload(perRank, merged)
	checkBandwidth(bandwidthBps)
	return float64(ceilLog2(n)) * (latencySec + float64(hop)/bandwidthBps)
}

// GatherBytes implements Topology: n−1 hops of at most max(perRank, merged).
func (Tree) GatherBytes(n int, perRank, merged int64) int64 {
	if n <= 1 {
		return 0
	}
	return int64(n-1) * hopPayload(perRank, merged)
}

// BroadcastTime implements Topology: the same binomial broadcast Flat uses.
func (Tree) BroadcastTime(n int, size int64, bandwidthBps, latencySec float64) float64 {
	return Flat{}.BroadcastTime(n, size, bandwidthBps, latencySec)
}

// BroadcastBytes implements Topology: n−1 transmissions of the full payload.
func (Tree) BroadcastBytes(n int, size int64) int64 {
	return Flat{}.BroadcastBytes(n, size)
}

// Ring is a pipelined, chunked ring. The gather reduces partial merges
// around the ring in n−1 steps, each moving a 1/n chunk of the hop payload
// per link; the broadcast pipelines the merged state back the other way.
// Bandwidth-optimal — each link carries roughly one payload total, so wire
// volume matches Tree's n−1 hops — but the n−1 step latency term makes it
// the long-thin-pipe choice, not the low-latency one.
type Ring struct{}

// Kind implements Topology.
func (Ring) Kind() Kind { return TopologyRing }

// Rounds implements Topology: n−1 ring steps.
func (Ring) Rounds(n int) int {
	if n <= 1 {
		return 0
	}
	return n - 1
}

// GatherTime implements Topology: (n−1) × (latency + (hop/n)/bandwidth).
func (Ring) GatherTime(n int, perRank, merged int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	hop := hopPayload(perRank, merged)
	checkBandwidth(bandwidthBps)
	chunk := float64(hop) / float64(n)
	return float64(n-1) * (latencySec + chunk/bandwidthBps)
}

// GatherBytes implements Topology: n−1 links each carrying the chunked hop
// payload once — (n−1)·hop in total, same linear volume as Tree.
func (Ring) GatherBytes(n int, perRank, merged int64) int64 {
	if n <= 1 {
		return 0
	}
	return int64(n-1) * hopPayload(perRank, merged)
}

// BroadcastTime implements Topology: the merged state pipelines around the
// ring in n−1 chunked steps.
func (Ring) BroadcastTime(n int, size int64, bandwidthBps, latencySec float64) float64 {
	if n <= 1 {
		return 0
	}
	checkPayload(size)
	checkBandwidth(bandwidthBps)
	chunk := float64(size) / float64(n)
	return float64(n-1) * (latencySec + chunk/bandwidthBps)
}

// BroadcastBytes implements Topology: every link forwards the full payload
// once (in chunks), so n−1 payloads total.
func (Ring) BroadcastBytes(n int, size int64) int64 {
	if n <= 1 {
		return 0
	}
	checkPayload(size)
	return int64(n-1) * size
}
