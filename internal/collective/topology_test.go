package collective

import (
	"fmt"
	"math"
	"testing"

	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
)

// TestFlatMatchesDeprecatedCostModel pins the deprecated free functions to
// Flat: they are wrappers, so every number they ever produced must come back
// bit-identical through the Topology interface.
func TestFlatMatchesDeprecatedCostModel(t *testing.T) {
	flat := Flat{}
	const bw, lat = 12.5e9, 350e-9
	for _, n := range []int{1, 2, 3, 4, 7, 8, 9, 16, 48, 256} {
		for _, payload := range []int64{0, 1, 1000, 1 << 20} {
			if got, want := flat.Rounds(n), AllGatherRounds(n); got != want {
				t.Fatalf("Flat.Rounds(%d) = %d, want %d", n, got, want)
			}
			if got, want := flat.GatherTime(n, payload, 0, bw, lat), AllGatherTime(n, payload, bw, lat); got != want {
				t.Fatalf("Flat.GatherTime(%d, %d) = %v, want %v", n, payload, got, want)
			}
			if got, want := flat.GatherBytes(n, payload, 0), AllGatherBytes(n, payload); got != want {
				t.Fatalf("Flat.GatherBytes(%d, %d) = %d, want %d", n, payload, got, want)
			}
			if got, want := flat.BroadcastTime(n, payload, bw, lat), BroadcastTime(n, payload, bw, lat); got != want {
				t.Fatalf("Flat.BroadcastTime(%d, %d) = %v, want %v", n, payload, got, want)
			}
			if got, want := flat.BroadcastBytes(n, payload), BroadcastBytes(n, payload); got != want {
				t.Fatalf("Flat.BroadcastBytes(%d, %d) = %d, want %d", n, payload, got, want)
			}
		}
	}
}

func TestParseTopology(t *testing.T) {
	for _, kind := range append([]Kind{""}, Topologies()...) {
		topo, err := ParseTopology(kind)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", kind, err)
		}
		want := kind
		if want == "" {
			want = TopologyFlat
		}
		if topo.Kind() != want {
			t.Fatalf("ParseTopology(%q).Kind() = %q", kind, topo.Kind())
		}
	}
	if _, err := ParseTopology("hypercube"); err == nil {
		t.Fatal("unknown topology must error")
	}
}

// TestTopologyCostShapes pins the scaling laws the syncscale experiment
// reports: tree rounds grow like ⌈log2 n⌉, ring rounds like n-1, and the
// hierarchical wire bills are (n-1)·hop against flat's n·(2^⌈log2 n⌉-1)·hop.
func TestTopologyCostShapes(t *testing.T) {
	for _, topo := range []Topology{Flat{}, Ring{}, Tree{}} {
		if topo.Rounds(1) != 0 || topo.GatherBytes(1, 1000, 1000) != 0 ||
			topo.BroadcastBytes(1, 1000) != 0 ||
			topo.GatherTime(1, 1000, 1000, 1e9, 1e-6) != 0 ||
			topo.BroadcastTime(1, 1000, 1e9, 1e-6) != 0 {
			t.Fatalf("%s: single member must be free", topo.Kind())
		}
	}
	if got := (Tree{}).Rounds(256); got != 8 {
		t.Fatalf("Tree.Rounds(256) = %d, want 8", got)
	}
	if got := (Ring{}).Rounds(256); got != 255 {
		t.Fatalf("Ring.Rounds(256) = %d, want 255", got)
	}
	// Hop payload is max(perRank, merged): both hierarchical gathers ship
	// (n-1) hops of it.
	const per, merged = 1000, 4000
	if got := (Tree{}).GatherBytes(8, per, merged); got != 7*merged {
		t.Fatalf("Tree.GatherBytes = %d, want %d", got, 7*merged)
	}
	if got := (Ring{}).GatherBytes(8, per, merged); got != 7*merged {
		t.Fatalf("Ring.GatherBytes = %d, want %d", got, 7*merged)
	}
	// Flat's gather is oblivious to the merged size and strictly larger.
	if flat := (Flat{}).GatherBytes(8, per, merged); flat != AllGatherBytes(8, per) || flat <= 7*per {
		t.Fatalf("Flat.GatherBytes = %d", flat)
	}
	// Latency shape: tree pays rounds hops, ring pays n-1 hops.
	const bw, lat = 1e15, 1e-3 // latency-dominated
	if got := (Tree{}).GatherTime(256, per, merged, bw, lat); math.Abs(got-8*lat) > 1e-9 {
		t.Fatalf("Tree latency %v, want ~%v", got, 8*lat)
	}
	if got := (Ring{}).GatherTime(256, per, merged, bw, lat); math.Abs(got-255*lat) > 1e-9 {
		t.Fatalf("Ring latency %v, want ~%v", got, 255*lat)
	}
}

// rankedExports trains a small fleet with per-rank disjoint-and-overlapping
// ids and returns the exported ranked states (replicas untouched afterward,
// so the same states can feed many groups).
func rankedExports(t *testing.T, n int) []RankedState {
	t.Helper()
	replicas := makeReplicas(n)
	for i, r := range replicas {
		trainOn(r, 0, int32(3+2*i), uint64(100+i)) // distinct ids
		trainOn(r, 1, 7, uint64(200+i))            // everyone conflicts on (1, 7)
	}
	states := make([]RankedState, n)
	for i, r := range replicas {
		states[i] = RankedState{Rank: i, Tables: r.ExportState()}
	}
	return states
}

func tablesEqual(a, b []lora.TableState) bool {
	if len(a) != len(b) {
		return false
	}
	for t := range a {
		if a[t].Rank != b[t].Rank || len(a[t].Rows) != len(b[t].Rows) {
			return false
		}
		if (a[t].B == nil) != (b[t].B == nil) {
			return false
		}
		if a[t].B != nil {
			if a[t].B.Rows != b[t].B.Rows || a[t].B.Cols != b[t].B.Cols {
				return false
			}
			for i, v := range a[t].B.Data {
				if math.Float64bits(v) != math.Float64bits(b[t].B.Data[i]) {
					return false
				}
			}
		}
		for i, u := range a[t].Rows {
			if u.ID != b[t].Rows[i].ID || len(u.Row) != len(b[t].Rows[i].Row) {
				return false
			}
			for j, v := range u.Row {
				if math.Float64bits(v) != math.Float64bits(b[t].Rows[i].Row[j]) {
					return false
				}
			}
		}
	}
	return true
}

// TestTopologyMergeEquivalence is the tentpole invariant: for every topology
// and for the delta and compressed variants, the merged state is bit-identical
// to flat full-sync — and bit-identical across member permutations. Topology,
// delta, and compression change only the bill, never the state.
func TestTopologyMergeEquivalence(t *testing.T) {
	states := rankedExports(t, 4)
	perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}

	type variant struct {
		name     string
		kind     Kind
		delta    bool
		compress int
	}
	variants := []variant{
		{name: "flat", kind: TopologyFlat},
		{name: "ring", kind: TopologyRing},
		{name: "tree", kind: TopologyTree},
		{name: "tree+delta", kind: TopologyTree, delta: true},
		{name: "tree+delta+z6", kind: TopologyTree, delta: true, compress: 6},
	}

	var want []lora.TableState
	for _, v := range variants {
		for _, perm := range perms {
			topo, err := ParseTopology(v.kind)
			if err != nil {
				t.Fatal(err)
			}
			// Fresh group per run: delta tracking is stateful.
			sg, err := NewSyncGroupWith(GroupConfig{
				BandwidthBps:  simnet.Gbps100,
				LatencySec:    1e-6,
				Topology:      topo,
				Delta:         v.delta,
				CompressLevel: v.compress,
			})
			if err != nil {
				t.Fatal(err)
			}
			permuted := make([]RankedState, len(perm))
			for i, p := range perm {
				permuted[i] = states[p]
			}
			merged, _, _, err := sg.SyncRanked(simnet.NewClock(), permuted)
			if err != nil {
				t.Fatalf("%s perm %v: %v", v.name, perm, err)
			}
			if want == nil {
				want = merged
				continue
			}
			if !tablesEqual(merged, want) {
				t.Fatalf("%s perm %v: merged state differs from flat full-sync", v.name, perm)
			}
		}
	}
}

// TestTopologyByteAccounting reconciles every topology's WireBytes against
// the cost model applied to the known payload sizes: gather on the pacing
// rank's payload plus broadcast of the merged state.
func TestTopologyByteAccounting(t *testing.T) {
	states := rankedExports(t, 4)
	var maxFull int64
	for _, st := range states {
		if p := lora.PayloadBytes(st.Tables); p > maxFull {
			maxFull = p
		}
	}
	for _, kind := range Topologies() {
		topo, err := ParseTopology(kind)
		if err != nil {
			t.Fatal(err)
		}
		sg, err := NewSyncGroupWith(GroupConfig{
			BandwidthBps: simnet.Gbps100,
			LatencySec:   1e-6,
			Topology:     topo,
		})
		if err != nil {
			t.Fatal(err)
		}
		merged, _, _, err := sg.SyncRanked(simnet.NewClock(), states)
		if err != nil {
			t.Fatal(err)
		}
		mergedFull := lora.PayloadBytes(merged)
		gs := sg.GroupStats()
		want := topo.GatherBytes(4, maxFull, mergedFull) + topo.BroadcastBytes(4, mergedFull)
		if gs.WireBytes != want {
			t.Fatalf("%s: WireBytes = %d, want gather %d + broadcast %d",
				kind, gs.WireBytes, topo.GatherBytes(4, maxFull, mergedFull), topo.BroadcastBytes(4, mergedFull))
		}
		if gs.ComputeSeconds <= 0 || gs.PublishSeconds <= 0 {
			t.Fatalf("%s: cost split missing: %+v", kind, gs)
		}
		if gs.DeltaSavedBytes != 0 || gs.CompressSavedBytes != 0 || gs.CompressSeconds != 0 {
			t.Fatalf("%s: delta/compression accounting must be zero when disabled: %+v", kind, gs)
		}
	}
}

// TestDeltaAccountingIdentity checks the books balance: with no stale peers,
// the delta group's wire bytes plus its reported savings equal the full-sync
// bill for the identical schedule, and a quiet sync (nothing changed since
// the last publish) costs zero wire.
func TestDeltaAccountingIdentity(t *testing.T) {
	states := rankedExports(t, 4)
	newGroup := func(delta bool) *SyncGroup {
		sg, err := NewSyncGroupWith(GroupConfig{
			BandwidthBps: simnet.Gbps100,
			LatencySec:   1e-6,
			Topology:     Tree{},
			Delta:        delta,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sg
	}
	full, delta := newGroup(false), newGroup(true)
	mergedFull, _, _, err := full.SyncRanked(simnet.NewClock(), states)
	if err != nil {
		t.Fatal(err)
	}
	mergedDelta, _, _, err := delta.SyncRanked(simnet.NewClock(), states)
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(mergedFull, mergedDelta) {
		t.Fatal("delta sync changed the merged state")
	}
	fg, dg := full.GroupStats(), delta.GroupStats()
	if dg.WireBytes+dg.DeltaSavedBytes != fg.WireBytes {
		t.Fatalf("books don't balance: delta wire %d + saved %d != full wire %d",
			dg.WireBytes, dg.DeltaSavedBytes, fg.WireBytes)
	}
	// First sync: no factor has been published yet, so everything ships and
	// nothing is saved.
	if dg.DeltaSavedBytes != 0 {
		t.Fatalf("first sync has no published baseline; saved %d", dg.DeltaSavedBytes)
	}

	// Quiet sync: every rank resubmits exactly the published state (factor
	// unchanged, no modified rows). The delta bill is zero; the savings are
	// the entire full-sync bill.
	quiet := make([]RankedState, len(states))
	for i, st := range states {
		tables := make([]lora.TableState, len(mergedDelta))
		for t2, mt := range mergedDelta {
			tables[t2] = lora.TableState{Rank: mt.Rank, B: mt.B}
		}
		quiet[i] = RankedState{Rank: st.Rank, Tables: tables}
	}
	before := delta.GroupStats()
	if _, _, _, err := delta.SyncRanked(simnet.NewClock(), quiet); err != nil {
		t.Fatal(err)
	}
	after := delta.GroupStats()
	if got := after.WireBytes - before.WireBytes; got != 0 {
		t.Fatalf("quiet delta sync moved %d wire bytes, want 0", got)
	}
	if after.DeltaSavedBytes <= before.DeltaSavedBytes {
		t.Fatal("quiet sync must report the avoided full-sync bytes as savings")
	}
}

// TestDeltaBackfillStaleRank: a rank that misses a sync must be billed a
// point-to-point backfill of exactly the rows published while it was away.
func TestDeltaBackfillStaleRank(t *testing.T) {
	const dim, rank = 8, 4
	sharedB := tensor.NewMatrix(rank, dim)
	for i := range sharedB.Data {
		sharedB.Data[i] = 0.01 * float64(i+1)
	}
	mkState := func(r int, ids ...int32) RankedState {
		rows := make([]lora.RowUpdate, len(ids))
		for i, id := range ids {
			row := make([]float64, rank)
			for j := range row {
				row[j] = float64(r+1) + float64(id)/10 + float64(j)/100
			}
			rows[i] = lora.RowUpdate{ID: id, Row: row}
		}
		return RankedState{Rank: r, Tables: []lora.TableState{{Rank: rank, B: sharedB, Rows: rows}}}
	}
	newDelta := func() *SyncGroup {
		sg, err := NewSyncGroupWith(GroupConfig{
			BandwidthBps: simnet.Gbps100,
			LatencySec:   1e-6,
			Topology:     Tree{},
			Delta:        true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sg
	}
	// Group X sees all three ranks every sync; in group Y rank 2 misses
	// sync 2 and returns for sync 3, whose publish does not re-cover the
	// rows it missed.
	x, y := newDelta(), newDelta()
	sync := func(sg *SyncGroup, states ...RankedState) GroupStats {
		t.Helper()
		if _, _, _, err := sg.SyncRanked(simnet.NewClock(), states); err != nil {
			t.Fatal(err)
		}
		return sg.GroupStats()
	}
	s1 := []RankedState{mkState(0, 1, 2), mkState(1, 3, 4), mkState(2, 5, 6)}
	sync(x, s1...)
	sync(y, s1...)
	s2 := []RankedState{mkState(0, 10, 11), mkState(1), mkState(2)}
	sync(x, s2...)
	sync(y, s2[0], s2[1]) // rank 2 absent
	s3 := []RankedState{mkState(0, 20), mkState(1), mkState(2)}
	xBefore, yBefore := x.GroupStats(), y.GroupStats()
	xAfter := sync(x, s3...)
	yAfter := sync(y, s3...)

	xWire := xAfter.WireBytes - xBefore.WireBytes
	yWire := yAfter.WireBytes - yBefore.WireBytes
	// Rank 2's acked generation trails by one; rows 10 and 11 (4 bytes id +
	// rank·8 coefficients each) were published meanwhile and are not in
	// sync 3's publish, so they ship point-to-point.
	wantBackfill := int64(2 * (4 + 8*rank))
	if yWire-xWire != wantBackfill {
		t.Fatalf("stale-rank sync moved %d extra wire bytes, want backfill %d (x %d, y %d)",
			yWire-xWire, wantBackfill, xWire, yWire)
	}
	if yPub, xPub := yAfter.PublishSeconds-yBefore.PublishSeconds, xAfter.PublishSeconds-xBefore.PublishSeconds; yPub <= xPub {
		t.Fatal("backfill must bill point-to-point publish time")
	}
}

// TestCompressionAccounting: compression converts wire bytes into cpu
// seconds; the books must balance against the uncompressed bill and the
// merged state must not change.
func TestCompressionAccounting(t *testing.T) {
	states := rankedExports(t, 4)
	newGroup := func(level int) *SyncGroup {
		sg, err := NewSyncGroupWith(GroupConfig{
			BandwidthBps:  simnet.Gbps100,
			LatencySec:    1e-6,
			Topology:      Tree{},
			CompressLevel: level,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sg
	}
	plain, z := newGroup(0), newGroup(6)
	mergedPlain, _, _, err := plain.SyncRanked(simnet.NewClock(), states)
	if err != nil {
		t.Fatal(err)
	}
	mergedZ, _, _, err := z.SyncRanked(simnet.NewClock(), states)
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(mergedPlain, mergedZ) {
		t.Fatal("compression changed the merged state")
	}
	pg, zg := plain.GroupStats(), z.GroupStats()
	if zg.WireBytes+zg.CompressSavedBytes != pg.WireBytes {
		t.Fatalf("books don't balance: compressed wire %d + saved %d != plain wire %d",
			zg.WireBytes, zg.CompressSavedBytes, pg.WireBytes)
	}
	if zg.CompressSeconds <= 0 {
		t.Fatal("compression must bill cpu seconds")
	}
	if zg.Seconds() != zg.ComputeSeconds+zg.PublishSeconds+zg.CompressSeconds {
		t.Fatalf("Seconds() must include the compression bill: %+v", zg)
	}
	if pg.CompressSeconds != 0 || pg.CompressSavedBytes != 0 {
		t.Fatalf("uncompressed group must not bill compression: %+v", pg)
	}
}

func TestNewSyncGroupWithValidation(t *testing.T) {
	for _, level := range []int{-1, 10} {
		if _, err := NewSyncGroupWith(GroupConfig{BandwidthBps: 1e9, CompressLevel: level}); err == nil {
			t.Fatalf("compression level %d must be rejected", level)
		}
	}
	sg, err := NewSyncGroupWith(GroupConfig{BandwidthBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if sg.Topology().Kind() != TopologyFlat {
		t.Fatalf("nil topology must default to flat, got %q", sg.Topology().Kind())
	}
}

// TestTopologyGuards pins the contract violations that must panic rather
// than silently produce a nonsense bill.
func TestTopologyGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		f()
	}
	for _, topo := range []Topology{Flat{}, Ring{}, Tree{}} {
		kind := topo.Kind()
		mustPanic(fmt.Sprintf("%s negative payload", kind), func() { topo.GatherBytes(4, -1, 0) })
		mustPanic(fmt.Sprintf("%s zero bandwidth", kind), func() { topo.GatherTime(4, 1000, 1000, 0, 1e-6) })
	}
}
