// Package core assembles the full LiveUpdate system of paper Fig 7: a
// serving node with a co-located LoRA trainer on the same (simulated)
// machine, the shadow-embedding-table reuse path, the adaptive CCD
// partitioning controller (Algorithm 2), and the tiered update schedule
// (local LoRA short-term, full sync mid-term).
package core

import (
	"fmt"
	"sync"

	"liveupdate/internal/dlrm"
	"liveupdate/internal/emt"
	"liveupdate/internal/lora"
	"liveupdate/internal/numasim"
	"liveupdate/internal/obs"
	"liveupdate/internal/serving"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

// Options configures a LiveUpdate system. The three Enable toggles map to
// the Fig 16 ablation: training off = "Only Infer"; training on with both
// optimizations off = "w/o Opt"; scheduling only = "w/ Scheduling"; both =
// "w/ Reuse+Scheduling" (the full system).
type Options struct {
	Profile trace.Profile
	Seed    uint64

	Node       serving.NodeConfig
	Machine    numasim.Config
	Controller numasim.ControllerConfig
	LoRA       lora.Config

	EnableTraining   bool // co-locate the LoRA trainer
	EnableScheduling bool // NUMA-aware CCD partitioning + Algorithm 2
	EnableReuse      bool // shadow embedding table (prefetched reuse path)

	TrainBatch    int     // samples per co-located training tick
	TrainInterval int     // serve this many requests between training ticks
	EmbLR         float64 // LoRA learning rate
	InitialInfCCD int     // starting inference partition (scheduling on)

	// BatchSize is the preferred serving batch size — the number of queued
	// same-shard requests a load driver should coalesce into one ServeBatch /
	// ServeShardBatch call. 0 or 1 means unbatched. It is a driving hint
	// (picked up via DefaultBatchSize), not a serving-path requirement.
	BatchSize int

	// Telemetry, when non-nil, receives side-band wall-clock observability:
	// serve/violation/train-tick counters, a virtual-latency histogram, and
	// sampled stage spans (see internal/obs). It is strictly an observer —
	// it never reads or mutates virtual-time state, so every deterministic
	// statistic is bit-identical with telemetry on or off. Replicas of one
	// fleet share a Telemetry; same-name instruments are get-or-create.
	Telemetry *obs.Telemetry

	// Quantization selects the published inference weight format for the
	// dense MLPs: "" or "none" (float64), "int8" (per-row symmetric scales,
	// int32 dot products), or "f16" (f16-style truncated weights). Training
	// always runs in float64; quantization changes served probabilities
	// only, never virtual-time statistics (see dlrm.QuantMode).
	Quantization string
}

// DefaultOptions returns the full system configuration for a profile.
func DefaultOptions(p trace.Profile, seed uint64) Options {
	mcfg := numasim.DefaultConfig()
	return Options{
		Profile:          p,
		Seed:             seed,
		Node:             serving.DefaultNodeConfig(),
		Machine:          mcfg,
		Controller:       numasim.DefaultControllerConfig(mcfg.NumCCDs),
		LoRA:             lora.DefaultConfig(p.TableSize, p.EmbeddingDim),
		EnableTraining:   true,
		EnableScheduling: true,
		EnableReuse:      true,
		TrainBatch:       16,
		TrainInterval:    8,
		EmbLR:            0.05,
		InitialInfCCD:    mcfg.NumCCDs * 5 / 6,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if err := o.Profile.Validate(); err != nil {
		return err
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("core: BatchSize must be non-negative")
	}
	if _, err := dlrm.ParseQuantMode(o.Quantization); err != nil {
		return err
	}
	if o.EnableTraining {
		if o.TrainBatch <= 0 {
			return fmt.Errorf("core: TrainBatch must be positive")
		}
		if o.TrainInterval <= 0 {
			return fmt.Errorf("core: TrainInterval must be positive")
		}
		if o.EmbLR <= 0 {
			return fmt.Errorf("core: EmbLR must be positive")
		}
	}
	return nil
}

// System is one LiveUpdate inference node: it serves requests and refreshes
// its own embeddings from cached interactions, with performance isolation.
//
// A System is safe for concurrent use, with the serve hot path split across
// two locks:
//
//   - The DLRM forward (serving.Node.Predict) runs OUTSIDE the node mutex: it
//     is read-only — adapter state is read through its copy-on-write atomic
//     publishes (see internal/lora), embedding access counters are atomic —
//     and allocation-free (a pooled forward scratch per in-flight request).
//     It holds only a read lock on paramMu, the rarely-written parameter
//     lock, so forwards never block behind another request's bookkeeping, a
//     Stats snapshot, or an in-flight fleet merge.
//   - The mutation tail (memory-model charges, ring push, latency/SLA
//     tracking, clock advance, the train-tick trigger) serializes on the node
//     mutex, preserving the single-server virtual-clock model: per-node tail
//     order alone determines every virtual-time statistic, so the lock split
//     leaves them bit-identical to the historical fully-locked path.
//   - paramMu is held for write only by in-place parameter mutations — the
//     co-located training tick and FullSync's base/dense overwrite. Fleet
//     publishes (PublishLoRA) stay copy-on-write and never block forwards.
//
// Lock order: mu before paramMu; the forward takes only paramMu (read).
// The exported fields are wiring for experiments and tests; touching them
// while another goroutine is inside Serve is not synchronized.
type System struct {
	Opts Options

	Clock      *simnet.Clock
	Machine    *numasim.Machine
	Controller *numasim.Controller
	Model      *dlrm.Model
	Base       *emt.Group
	LoRA       *lora.Set
	Node       *serving.Node

	mu         sync.Mutex // guards all mutable state below and inside Node/Machine/LoRA
	trainRNG   *tensor.RNG
	trainBuf   []trace.Sample    // reusable mini-batch buffer for trainTick
	trainCache dlrm.ForwardCache // reusable forward/backward buffers for trainTick
	sinceTrain int
	trainSteps uint64
	fullSyncs  uint64
	scratchSeq int32 // unique block ids for the naive trainer's scratch state

	// paramMu excludes lock-free forwards (read) from in-place parameter
	// writes (write): the LoRA training step mutates the current adapter
	// state directly and FullSync overwrites base tables and dense weights.
	// It is uncontended on the hot path — a read lock costs one atomic op.
	paramMu sync.RWMutex

	// Telemetry instruments (nil when Options.Telemetry is nil; the nil
	// receivers no-op, so disabled telemetry costs one branch per site).
	// All are side-band wall-clock observers of already-computed values.
	tel        *obs.Telemetry
	tracer     *obs.Tracer
	obsServed  *obs.Counter
	obsViol    *obs.Counter
	obsTicks   *obs.Counter
	obsLatency *obs.Histogram
}

// New assembles a system from opts.
func New(opts Options) (*System, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	clock := simnet.NewClock()
	machine, err := numasim.NewMachine(opts.Machine, clock)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(opts.Seed ^ 0xc0de)
	model, err := dlrm.NewModel(dlrm.ConfigForProfile(opts.Profile), rng)
	if err != nil {
		return nil, err
	}
	if err := model.SetQuantization(dlrm.QuantMode(opts.Quantization)); err != nil {
		return nil, err
	}
	base := emt.NewGroup(opts.Profile.NumTables, opts.Profile.TableSize,
		opts.Profile.EmbeddingDim, tensor.NewRNG(opts.Seed^0xe147))
	lcfg := opts.LoRA
	lcfg.Seed = opts.Seed
	set, err := lora.NewSet(base, lcfg)
	if err != nil {
		return nil, err
	}
	node, err := serving.NewNode(opts.Node, model, set, machine, clock)
	if err != nil {
		return nil, err
	}
	s := &System{
		Opts:     opts,
		Clock:    clock,
		Machine:  machine,
		Model:    model,
		Base:     base,
		LoRA:     set,
		Node:     node,
		trainRNG: tensor.NewRNG(opts.Seed ^ 0x7ea1),
	}
	if opts.EnableScheduling {
		ctl, err := numasim.NewController(opts.Controller, machine, clock, opts.InitialInfCCD)
		if err != nil {
			return nil, err
		}
		s.Controller = ctl
	}
	if tel := opts.Telemetry; tel != nil {
		reg := tel.Registry()
		s.tel = tel
		s.tracer = tel.Tracer()
		s.Node.Trace = s.tracer
		s.obsServed = reg.Counter("liveupdate_serve_requests_total",
			"Requests served (fleet-wide when replicas share a Telemetry).")
		s.obsViol = reg.Counter("liveupdate_sla_violations_total",
			"Requests whose virtual latency exceeded the SLA target.")
		s.obsTicks = reg.Counter("liveupdate_train_ticks_total",
			"Co-located LoRA training ticks executed.")
		s.obsLatency = reg.Histogram("liveupdate_serve_latency_seconds",
			"Virtual request latency in seconds (deterministic values; observing them is side-band).",
			0, 0.05, 25)
	}
	return s, nil
}

// MustNew panics on option errors.
func MustNew(opts Options) *System {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Response is the result of serving one request through a Server.
type Response struct {
	Prob    float64 // predicted click probability
	Latency float64 // request latency in virtual seconds
	Replica int     // index of the replica that served the request (0 on a single node)
}

// Stats is a point-in-time snapshot of a Server. For a single System the
// fleet fields (Replicas, Syncs, SyncBytes, SyncSeconds) are zero; for a
// Cluster the top-level fields are the merged fleet view and Replicas holds
// the per-replica breakdown.
type Stats struct {
	Served uint64 // requests processed

	// P50/P99 are latency quantiles over the tracker window, in seconds.
	// A Cluster with no retained samples (nothing served yet) reports NaN —
	// the documented "quantile undefined" sentinel; check math.IsNaN, not
	// == 0, which is a legitimate latency floor. A single System reports 0
	// before its first request (the tracker's empty-window value).
	P50           float64
	P99           float64
	MeanLatency   float64 // mean latency over all observed requests, seconds
	SLA           float64 // configured P99 target, seconds
	Violations    uint64  // requests above the SLA
	ViolationRate float64 // Violations / Served

	TrainSteps     uint64  // co-located LoRA training ticks
	FullSyncs      uint64  // full-parameter syncs installed
	MemoryOverhead float64 // LoRA bytes / base EMT bytes
	LoRAHotRows    int     // active adapter rows across tables
	LoRARank       int     // current adapter rank (table 0)

	InferenceHitRatio float64 // L3 hit ratio of the inference workload
	TrainingHitRatio  float64 // L3 hit ratio of the training workload
	VirtualTime       float64 // node clock, seconds (fleet: max across replicas)

	// Fleet-level fields, populated by Cluster.
	Replicas  []Stats // per-replica snapshots, in replica order
	Syncs     int     // priority-merge synchronizations performed
	SyncBytes int64   // cumulative exported LoRA payload (once per rank per sync)
	// SyncSeconds is the cumulative virtual time spent in syncs; it splits
	// into SyncComputeSeconds (gather + merge — off the serving critical
	// path under the asynchronous pipeline) and SyncPublishSeconds
	// (broadcasting and installing the merged state).
	SyncSeconds        float64
	SyncComputeSeconds float64
	SyncPublishSeconds float64

	// Fleet-scale sync fields, populated by Cluster. SyncTopology names the
	// collective pricing the sync fabric ("flat", "ring", "tree");
	// SyncWireBytes is the traffic the simulated collective actually moves
	// (≥ SyncBytes for more than one replica — gather fan-in plus merged
	// broadcast). SyncDeltaSavedBytes is wire volume avoided by delta syncs,
	// SyncCompressSavedBytes the volume avoided by payload compression, and
	// SyncCompressSeconds the modeled cpu time that compression cost (also
	// included in SyncSeconds).
	SyncTopology           string
	SyncWireBytes          int64
	SyncDeltaSavedBytes    int64
	SyncCompressSavedBytes int64
	SyncCompressSeconds    float64

	// Elastic-fleet fields, populated by a Cluster whose membership changed
	// at runtime (zero for a single System and for a static fleet). The
	// counters cover the whole run, including members that have since
	// departed; Members is the currently active fleet size.
	Members int // active replicas at snapshot time (0 on a single System)
	Joins   int // admissions after the seed fleet (join, replace, scale-up)
	Leaves  int // graceful departures (leave, scale-down)
	Fails   int // abrupt exclusions (fail, the fail half of replace)
	// CatchUpBytes/CatchUpSeconds bill the checkpoint + LoRA transfers that
	// brought joining replicas to the fleet epoch. The virtual time is
	// charged to the sync clock like sync traffic but reported separately
	// from SyncSeconds, so steady-state sync cost stays comparable across
	// runs with and without churn.
	CatchUpBytes   int64
	CatchUpSeconds float64

	// Wire front-end fields, populated only when the Server is exposed over
	// a listener by internal/netserve: per-endpoint admission outcomes, in
	// endpoint order. Empty for a purely in-process Server. Unlike every
	// field above, these count wall-clock wire traffic — they are not part
	// of the virtual-time determinism contract.
	Wire []EndpointStats
}

// EndpointStats is one wire endpoint's admission ledger: how many HTTP
// requests it accepted into the serving path, how many it shed with 429
// (admission queue full or SLA budget exhausted), and the live occupancy
// gauges at snapshot time. A batched wire request counts once regardless of
// how many samples it carries.
type EndpointStats struct {
	Endpoint  string // request path ("/serve", "/serve.bin")
	Accepted  uint64 // wire requests admitted into the serving path
	Completed uint64 // accepted requests whose serve finished (== Accepted after a clean drain)
	Shed      uint64 // wire requests rejected with 429 + Retry-After
	Inflight  int    // wire requests being served right now
	Queued    int    // wire requests waiting in the admission queue
}

// Serve processes one request through the serving path, interleaving
// co-located training ticks per the configured cadence. It returns the
// prediction and request latency; the only error is a sample whose sparse
// feature count does not match the profile.
//
// The forward runs before and outside the node mutex (see the System comment
// for the lock split); only the bookkeeping tail and the training trigger
// serialize. Because the forward reads no bookkeeping and the tail order per
// node is unchanged, every virtual-time statistic is bit-identical to the
// historical fully-locked implementation.
func (s *System) Serve(sample trace.Sample) (Response, error) {
	if len(sample.Sparse) != s.Opts.Profile.NumTables {
		return Response{}, fmt.Errorf("core: sample has %d sparse fields, profile %q expects %d",
			len(sample.Sparse), s.Opts.Profile.Name, s.Opts.Profile.NumTables)
	}
	s.paramMu.RLock()
	prob := s.Node.Predict(sample)
	s.paramMu.RUnlock()
	t0 := s.tracer.StageStart(obs.StageCommit) // includes mutex wait: contention is the signal
	s.mu.Lock()
	latency := s.Node.Commit(sample)
	s.afterCommitLocked()
	s.mu.Unlock()
	s.tracer.StageEnd(obs.StageCommit, t0)
	s.observeServe(latency)
	return Response{Prob: prob, Latency: latency}, nil
}

// observeServe feeds one committed request's already-computed virtual
// latency to the telemetry instruments. Pure side-band: it runs after the
// bookkeeping tail, off every lock, and writes nothing deterministic.
func (s *System) observeServe(latency float64) {
	if s.obsServed == nil {
		return
	}
	s.obsServed.Inc()
	if latency > s.Opts.Node.SLA {
		s.obsViol.Inc()
	}
	s.obsLatency.Observe(latency)
}

// ServeBatch serves samples in order on this node — the batch-amortized fast
// path: all forwards run first through the model's batched GEMM path (one
// matrix multiply per MLP layer for the whole batch, zero allocations,
// bit-identical to per-sample forwards), then one mutex acquisition covers
// every request's bookkeeping
// tail, each with its own memory charges, ring push, clock advance, and
// training trigger at exactly the per-request cadence. Virtual-time
// statistics are therefore identical to a loop over Serve; only the adapter
// values a forward observes may be marginally staler (a request scored before
// an earlier request's training tick — the bounded-staleness window the
// paper's design embraces). resps must have the same length as samples; it is
// filled in order.
func (s *System) ServeBatch(samples []trace.Sample, resps []Response) error {
	if len(resps) != len(samples) {
		return fmt.Errorf("core: ServeBatch got %d response slots for %d samples", len(resps), len(samples))
	}
	for i := range samples {
		if len(samples[i].Sparse) != s.Opts.Profile.NumTables {
			return fmt.Errorf("core: sample %d has %d sparse fields, profile %q expects %d",
				i, len(samples[i].Sparse), s.Opts.Profile.Name, s.Opts.Profile.NumTables)
		}
	}
	if len(samples) == 0 {
		return nil
	}
	pb := batchProbsPool.Get().(*[]float64)
	probs := *pb
	if cap(probs) < len(samples) {
		probs = make([]float64, len(samples))
	}
	probs = probs[:len(samples)]
	s.paramMu.RLock()
	s.Node.PredictBatch(samples, probs)
	s.paramMu.RUnlock()
	for i := range samples {
		resps[i] = Response{Prob: probs[i]}
	}
	*pb = probs[:0]
	batchProbsPool.Put(pb)
	t0 := s.tracer.StageStart(obs.StageCommit) // one commit span per batch
	s.mu.Lock()
	for i := range samples {
		resps[i].Latency = s.Node.Commit(samples[i])
		s.afterCommitLocked()
	}
	s.mu.Unlock()
	s.tracer.StageEnd(obs.StageCommit, t0)
	if s.obsServed != nil {
		for i := range resps {
			s.observeServe(resps[i].Latency)
		}
	}
	return nil
}

// batchProbsPool pools ServeBatch's probability buffers (pointer-to-slice so
// Put does not allocate). Package-global: concurrent ServeBatch calls each
// check out their own buffer.
var batchProbsPool = sync.Pool{New: func() any { b := make([]float64, 0, 64); return &b }}

// afterCommitLocked runs the post-request training trigger; callers hold s.mu.
func (s *System) afterCommitLocked() {
	if !s.Opts.EnableTraining {
		return
	}
	s.sinceTrain++
	if s.sinceTrain >= s.Opts.TrainInterval {
		s.sinceTrain = 0
		s.trainTick()
		if s.Controller != nil {
			s.Controller.Observe(s.Node.P99())
		}
	}
}

// Stats snapshots the node's serving, training, and memory statistics.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	hot := 0
	for _, a := range s.LoRA.Adapters {
		hot += a.ActiveCount()
	}
	return Stats{
		Served:            s.Node.Served(),
		P50:               s.Node.Lat.P50(),
		P99:               s.Node.P99(),
		MeanLatency:       s.Node.Lat.Mean(),
		SLA:               s.Opts.Node.SLA,
		Violations:        s.Node.Violations(),
		ViolationRate:     s.Node.ViolationRate(),
		TrainSteps:        s.trainSteps,
		FullSyncs:         s.fullSyncs,
		MemoryOverhead:    s.LoRA.OverheadRatio(),
		LoRAHotRows:       hot,
		LoRARank:          s.LoRA.Adapters[0].Rank(),
		InferenceHitRatio: s.Machine.HitRatio(numasim.Inference),
		TrainingHitRatio:  s.Machine.HitRatio(numasim.Training),
		VirtualTime:       s.Clock.Now(),
	}
}

// Lock acquires the node's serve mutex; Unlock releases it. They exist so
// fleet-level operations (the Cluster's priority-merge sync, consistency
// probes) can freeze a replica while touching its adapter state directly,
// keeping the concurrency contract intact even for callers that drive a
// replica obtained via Cluster.Replica. Application code should not need
// them.
func (s *System) Lock() { s.mu.Lock() }

// Unlock releases the mutex acquired by Lock.
func (s *System) Unlock() { s.mu.Unlock() }

// LatencyWindow returns a copy of the node's retained latency samples — the
// raw material for fleet-wide quantile merging — under the node lock.
func (s *System) LatencyWindow() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Node.LatencySamples()
}

// Telemetry returns the telemetry this node was built with (nil when
// observability is off). Export surfaces and the load driver discover it via
// interface assertion, the same pattern as DefaultBatchSize.
func (s *System) Telemetry() *obs.Telemetry { return s.tel }

// DefaultBatchSize returns the serving-batch hint configured at construction
// (0 = unbatched). The load driver uses it when its own configuration does
// not set a batch size.
func (s *System) DefaultBatchSize() int { return s.Opts.BatchSize }

// Profile returns the dataset profile this node serves. The wire front end
// advertises it to remote load generators so they synthesize samples with
// the matching feature shape.
func (s *System) Profile() trace.Profile { return s.Opts.Profile }

// LoRARank returns the node's current adapter rank (table 0).
func (s *System) LoRARank() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.LoRA.Adapters[0].Rank()
}

// SnapshotLoRA freezes the replica just long enough to export its modified
// adapter rows (clearing the supports, so training that lands while a merge
// is in flight feeds the next sync epoch) and returns the copy-on-write
// snapshot. This is the per-replica gather step of the asynchronous update
// pipeline: the node lock is held only for the O(modified rows) export,
// never across the merge itself.
func (s *System) SnapshotLoRA() []lora.TableState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.LoRA.Snapshot()
}

// PublishLoRA installs a merged adapter state stamped with the publisher's
// epoch. Each table swaps in atomically (copy-on-write), so the node lock is
// held only for the O(rows) install — the per-replica publish step of the
// asynchronous update pipeline. Serve calls in flight on OTHER replicas are
// unaffected; a concurrent Serve on this replica waits only for the install,
// not for the merge that produced it.
func (s *System) PublishLoRA(state []lora.TableState, epoch int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.LoRA.Publish(state, epoch)
}

// AdapterEpoch returns the epoch of the node's last published adapter state
// (-1 before the first sync). It reads the Set's atomic version pointer, so
// callers — reporting loops, freshness probes — never take the node lock and
// never block behind an in-flight request or merge.
func (s *System) AdapterEpoch() int64 { return s.LoRA.Epoch() }

// AdapterVersion returns the node's last published adapter Version (nil
// before the first sync), lock-free. The returned value is immutable: Serve
// and the trainer read the same tables through the adapters' own atomic
// state, so a caller can inspect a consistent published snapshot while the
// node keeps serving.
func (s *System) AdapterVersion() *lora.Version { return s.LoRA.Published() }

// TrainTick runs one co-located training step: a mini-batch sampled from the
// inference ring buffer, every embedding access charged to the machine model
// (through the reuse path when enabled), and one LoRA SGD step per sample.
// Dense layers stay frozen (paper Fig 7: only A and B receive gradients).
func (s *System) TrainTick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trainTick()
}

// trainTick is TrainTick's body; callers must hold s.mu. It takes the
// parameter write lock for its whole span: the LoRA SGD step mutates adapter
// state in place, which must not interleave with a lock-free forward. The
// mini-batch buffer and the forward cache are reused across ticks and
// samples, keeping the tick's steady-state allocation footprint low (the
// train-tick share of BenchmarkServeRequest's B/op).
func (s *System) trainTick() {
	if s.trainBuf == nil {
		s.trainBuf = make([]trace.Sample, s.Opts.TrainBatch)
	}
	batch := s.Node.Ring.SampleInto(s.trainRNG, s.trainBuf)
	if batch == nil {
		return
	}
	s.paramMu.Lock()
	defer s.paramMu.Unlock()
	numTables := int32(s.Opts.Profile.NumTables)
	cache := &s.trainCache
	for _, sample := range batch {
		// Charge the trainer's embedding traffic to the memory model. With
		// reuse, reads go through the prefetched shadow table. Without it,
		// the trainer touches its own replica blocks (a distinct address
		// space) with read + write-back traffic — the naive full-replica
		// pattern the paper calls out as cache-thrashing (§III-B O1, §IV-D).
		memTime := 0.0
		for t, ids := range sample.Sparse {
			for _, id := range ids {
				if s.Opts.EnableReuse {
					memTime += s.Machine.Access(numasim.Training, numasim.KindReuse, int32(t), id)
				} else {
					// Replica embedding read plus optimizer/gradient scratch
					// state. The scratch blocks are unique per step: streaming
					// write traffic that no L3 can retain.
					replica := numTables + int32(t)
					memTime += s.Machine.Access(numasim.Training, numasim.KindCached, replica, id)
					s.scratchSeq++
					memTime += s.Machine.Access(numasim.Training, numasim.KindCached, 2*numTables, s.scratchSeq)
				}
			}
		}
		s.Clock.Advance(memTime)
		// LoRA-only learning: base and dense weights frozen. The cache is
		// reused across samples: Forward overwrites every field it reads.
		logit := s.Model.Forward(s.LoRA, sample.Dense, sample.Sparse, cache)
		dLogit := dlrm.Sigmoid(logit) - float64(sample.Label)
		dEmb := s.Model.Backward(dLogit, cache)
		s.Model.Bottom.ZeroGrad()
		s.Model.Top.ZeroGrad()
		for t, g := range dEmb {
			s.LoRA.ApplyGrad(t, sample.Sparse[t], g, s.Opts.EmbLR)
		}
	}
	s.trainSteps++
	s.obsTicks.Inc()
}

// TrainSteps returns the number of co-located training ticks executed.
func (s *System) TrainSteps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trainSteps
}

// FullSync installs fresh base weights and dense parameters from a training
// cluster (the hourly mid-term tier of Fig 8) and resets the adapters.
func (s *System) FullSync(freshBase *emt.Group, freshModel *dlrm.Model) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Overwriting base tables and dense weights in place must exclude
	// lock-free forwards; adapter reset is copy-on-write but joins the same
	// critical section so a forward never mixes fresh weights with stale
	// adapters.
	s.paramMu.Lock()
	defer s.paramMu.Unlock()
	s.Base.CopyWeightsFrom(freshBase)
	s.Model.CopyWeightsFrom(freshModel)
	s.LoRA.ResetAdapters()
	s.fullSyncs++
}

// FullSyncs returns the number of full-parameter syncs performed.
func (s *System) FullSyncs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fullSyncs
}

// MemoryOverhead returns LoRA bytes / base EMT bytes (the paper's <2% claim).
func (s *System) MemoryOverhead() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.LoRA.OverheadRatio()
}

// Power returns the modeled node power draw given the inference duty cycle
// in [0,1]; the training load is 1 when the co-located trainer is enabled.
func (s *System) Power(infLoad float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	trainLoad := 0.0
	if s.Opts.EnableTraining {
		trainLoad = 1
	}
	return s.Machine.Power(infLoad, trainLoad)
}

// CPUUtilization models node CPU utilization: the inference share plus the
// training share of CCDs that are actually busy.
func (s *System) CPUUtilization(infLoad float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := float64(s.Opts.Machine.NumCCDs)
	infCCDs := n
	trainCCDs := 0.0
	if s.Controller != nil {
		infCCDs = float64(s.Controller.InferenceCCDs())
		trainCCDs = float64(s.Controller.TrainingCCDs())
	} else if s.Opts.EnableTraining {
		trainCCDs = n // shared: training competes everywhere
		infCCDs = n
	}
	util := infLoad * infCCDs / n
	if s.Opts.EnableTraining {
		util += trainCCDs / n * 0.9 // trainer keeps its CCDs mostly busy
	}
	if util > 1 {
		util = 1
	}
	return util
}
