package core

import (
	"testing"

	"liveupdate/internal/dlrm"
	"liveupdate/internal/emt"
	"liveupdate/internal/numasim"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

func testProfile() trace.Profile {
	p := trace.Profiles()["criteo"]
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

func testOptions() Options {
	o := DefaultOptions(testProfile(), 9)
	o.TrainInterval = 4
	o.TrainBatch = 8
	return o
}

func TestOptionsValidate(t *testing.T) {
	if err := testOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testOptions()
	bad.TrainBatch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero batch must fail when training enabled")
	}
	bad.EnableTraining = false
	if err := bad.Validate(); err != nil {
		t.Fatal("training params irrelevant when training disabled")
	}
	bad = testOptions()
	bad.EmbLR = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero LR must fail")
	}
	if _, err := New(Options{}); err == nil {
		t.Fatal("New must reject empty options")
	}
}

func TestServeInterleavesTraining(t *testing.T) {
	s := MustNew(testOptions())
	gen := trace.MustNewGenerator(testProfile(), 3)
	for i := 0; i < 40; i++ {
		s.Serve(gen.Next())
	}
	if s.TrainSteps() == 0 {
		t.Fatal("training ticks must run during serving")
	}
	// Training populated the LoRA tables.
	active := 0
	for _, a := range s.LoRA.Adapters {
		active += a.ActiveCount()
	}
	if active == 0 {
		t.Fatal("co-located training must populate adapters")
	}
	if s.Node.Served() != 40 {
		t.Fatalf("served %d", s.Node.Served())
	}
}

func TestTrainingDisabled(t *testing.T) {
	o := testOptions()
	o.EnableTraining = false
	s := MustNew(o)
	gen := trace.MustNewGenerator(testProfile(), 3)
	for i := 0; i < 40; i++ {
		s.Serve(gen.Next())
	}
	if s.TrainSteps() != 0 {
		t.Fatal("Only-Infer configuration must not train")
	}
}

func TestTrainTickEmptyRing(t *testing.T) {
	s := MustNew(testOptions())
	s.TrainTick() // no samples served yet: must be a no-op
	if s.TrainSteps() != 0 {
		t.Fatal("empty ring must not count a training step")
	}
}

func TestBaseStaysFrozenDuringServing(t *testing.T) {
	s := MustNew(testOptions())
	gen := trace.MustNewGenerator(testProfile(), 5)
	for i := 0; i < 60; i++ {
		s.Serve(gen.Next())
	}
	for _, tab := range s.Base.Tables {
		if tab.DirtyCount() != 0 {
			t.Fatal("co-located LoRA training must never write the base EMT")
		}
	}
}

func TestSchedulingTogglesController(t *testing.T) {
	o := testOptions()
	o.EnableScheduling = false
	s := MustNew(o)
	if s.Controller != nil {
		t.Fatal("controller must be nil when scheduling disabled")
	}
	// With scheduling disabled, both workloads share all CCDs.
	if len(s.Machine.CCDsOf(numasim.Training)) != o.Machine.NumCCDs {
		t.Fatal("unscheduled machine must share all CCDs")
	}
	o.EnableScheduling = true
	s2 := MustNew(o)
	if s2.Controller == nil {
		t.Fatal("controller must exist when scheduling enabled")
	}
	if len(s2.Machine.CCDsOf(numasim.Inference)) >= o.Machine.NumCCDs {
		t.Fatal("scheduling must partition CCDs")
	}
}

func TestReuseLowersTrainingDRAMTraffic(t *testing.T) {
	run := func(reuse bool) int64 {
		o := testOptions()
		o.EnableReuse = reuse
		s := MustNew(o)
		gen := trace.MustNewGenerator(testProfile(), 7)
		for i := 0; i < 200; i++ {
			s.Serve(gen.Next())
		}
		return s.Machine.DRAMBytes(numasim.Training)
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("reuse must cut training DRAM traffic: with %d without %d", with, without)
	}
}

func TestFullSyncInstallsFreshState(t *testing.T) {
	s := MustNew(testOptions())
	gen := trace.MustNewGenerator(testProfile(), 11)
	for i := 0; i < 50; i++ {
		s.Serve(gen.Next())
	}
	// Build a "training cluster" state to install.
	rng := tensor.NewRNG(99)
	freshModel := dlrm.MustNewModel(dlrm.ConfigForProfile(testProfile()), rng)
	freshBase := emt.NewGroup(3, 300, 16, rng)
	s.FullSync(freshBase, freshModel)
	if s.FullSyncs() != 1 {
		t.Fatalf("full syncs %d", s.FullSyncs())
	}
	for _, a := range s.LoRA.Adapters {
		if a.ActiveCount() != 0 {
			t.Fatal("full sync must reset adapters")
		}
	}
	// Base must equal the fresh weights.
	got := s.Base.Tables[0].PeekRow(0)
	want := freshBase.Tables[0].PeekRow(0)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("full sync must install fresh base weights")
		}
	}
}

func TestMemoryOverheadBounded(t *testing.T) {
	s := MustNew(testOptions())
	gen := trace.MustNewGenerator(testProfile(), 13)
	for i := 0; i < 400; i++ {
		s.Serve(gen.Next())
	}
	// Paper claim: adapter memory < ~2-5% of EMTs under pruning. Our scaled
	// tables are small, so allow a loose but meaningful bound.
	if ov := s.MemoryOverhead(); ov <= 0 || ov > 0.30 {
		t.Fatalf("memory overhead %v out of expected band", ov)
	}
}

func TestPowerAndUtilization(t *testing.T) {
	s := MustNew(testOptions())
	pOn := s.Power(0.5)
	o := testOptions()
	o.EnableTraining = false
	sOff := MustNew(o)
	pOff := sOff.Power(0.5)
	if pOn <= pOff {
		t.Fatalf("co-located training must raise power: %v vs %v", pOn, pOff)
	}
	uOn := s.CPUUtilization(0.2)
	uOff := sOff.CPUUtilization(0.2)
	if uOn <= uOff {
		t.Fatalf("training must raise utilization: %v vs %v", uOn, uOff)
	}
	if u := s.CPUUtilization(5); u > 1 {
		t.Fatalf("utilization must clamp at 1, got %v", u)
	}
}

func TestIsolationAblationP99Ordering(t *testing.T) {
	// The Fig 16 property: P99(full system) < P99(naive co-location), and
	// only-inference is the floor.
	run := func(training, scheduling, reuse bool) float64 {
		o := testOptions()
		o.EnableTraining = training
		o.EnableScheduling = scheduling
		o.EnableReuse = reuse
		o.Machine.L3BlocksPerCCD = 48 // tight caches make contention visible
		s := MustNew(o)
		gen := trace.MustNewGenerator(testProfile(), 21)
		for i := 0; i < 600; i++ {
			s.Serve(gen.Next())
		}
		return s.Node.P99()
	}
	onlyInfer := run(false, false, false)
	naive := run(true, false, false)
	full := run(true, true, true)
	if naive <= onlyInfer {
		t.Fatalf("naive co-location should hurt P99: %v vs %v", naive, onlyInfer)
	}
	if full >= naive {
		t.Fatalf("isolation should recover P99: full %v vs naive %v", full, naive)
	}
}

// TestServeBatchMatchesSequential: the batch-amortized path must leave every
// virtual-time statistic bit-identical to a plain Serve loop — the System
// half of the lock-split/batching determinism contract.
func TestServeBatchMatchesSequential(t *testing.T) {
	const requests = 600
	for _, batch := range []int{1, 3, 16, 64} {
		seq := MustNew(testOptions())
		bat := MustNew(testOptions())
		genA := trace.MustNewGenerator(testProfile(), 5)
		genB := trace.MustNewGenerator(testProfile(), 5)

		var seqResp []Response
		for i := 0; i < requests; i++ {
			r, err := seq.Serve(genA.Next())
			if err != nil {
				t.Fatal(err)
			}
			seqResp = append(seqResp, r)
		}
		var batResp []Response
		buf := make([]Response, batch)
		pending := make([]trace.Sample, 0, batch)
		flush := func() {
			if len(pending) == 0 {
				return
			}
			if err := bat.ServeBatch(pending, buf[:len(pending)]); err != nil {
				t.Fatal(err)
			}
			batResp = append(batResp, buf[:len(pending)]...)
			pending = pending[:0]
		}
		for i := 0; i < requests; i++ {
			pending = append(pending, genB.Next())
			if len(pending) == batch {
				flush()
			}
		}
		flush()

		for i := range seqResp {
			if seqResp[i].Latency != batResp[i].Latency {
				t.Fatalf("batch=%d req %d: latency %v != %v", batch, i, batResp[i].Latency, seqResp[i].Latency)
			}
		}
		ss, bs := seq.Stats(), bat.Stats()
		if ss.Served != bs.Served || ss.Violations != bs.Violations ||
			ss.TrainSteps != bs.TrainSteps || ss.VirtualTime != bs.VirtualTime ||
			ss.P99 != bs.P99 || ss.InferenceHitRatio != bs.InferenceHitRatio ||
			ss.TrainingHitRatio != bs.TrainingHitRatio {
			t.Fatalf("batch=%d: stats diverged:\n seq %+v\n bat %+v", batch, ss, bs)
		}
	}
}

// TestServeBatchValidation covers the error paths: mismatched response slots
// and malformed samples (checked before any state mutates).
func TestServeBatchValidation(t *testing.T) {
	s := MustNew(testOptions())
	gen := trace.MustNewGenerator(testProfile(), 6)
	good := gen.Next()
	if err := s.ServeBatch([]trace.Sample{good}, make([]Response, 2)); err == nil {
		t.Fatal("length mismatch must error")
	}
	bad := good
	bad.Sparse = bad.Sparse[:1]
	if err := s.ServeBatch([]trace.Sample{good, bad}, make([]Response, 2)); err == nil {
		t.Fatal("malformed sample must error")
	}
	if got := s.Stats().Served; got != 0 {
		t.Fatalf("failed batch must serve nothing, served %d", got)
	}
	if err := s.ServeBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestQuantizationVirtualTimeInvariant: the quantization knob changes served
// probabilities only. Every virtual-time statistic — latency, P99, train
// steps, hit ratios, the clock itself — must be bit-identical across modes,
// because request latency is memory-model + dense-time accounting that never
// reads a probability, and training always runs through the float64 weights.
func TestQuantizationVirtualTimeInvariant(t *testing.T) {
	run := func(mode string) Stats {
		o := testOptions()
		o.Quantization = mode
		s := MustNew(o)
		gen := trace.MustNewGenerator(testProfile(), 5)
		for i := 0; i < 400; i++ {
			if _, err := s.Serve(gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats()
	}
	baseStats := run("")
	for _, mode := range []string{"none", "int8", "f16"} {
		st := run(mode)
		if st.Served != baseStats.Served || st.P50 != baseStats.P50 ||
			st.P99 != baseStats.P99 || st.MeanLatency != baseStats.MeanLatency ||
			st.Violations != baseStats.Violations || st.TrainSteps != baseStats.TrainSteps ||
			st.VirtualTime != baseStats.VirtualTime ||
			st.InferenceHitRatio != baseStats.InferenceHitRatio ||
			st.TrainingHitRatio != baseStats.TrainingHitRatio {
			t.Fatalf("quant=%q: virtual-time stats diverged:\n base %+v\n quant %+v", mode, baseStats, st)
		}
	}

	// The knob must actually reach the serving path: on one system, flipping
	// quantization moves the served probability and flipping it back
	// restores it exactly.
	s := MustNew(testOptions())
	gen := trace.MustNewGenerator(testProfile(), 5)
	sample := gen.Next()
	before := s.Node.Predict(sample)
	if err := s.Model.SetQuantization("int8"); err != nil {
		t.Fatal(err)
	}
	if got := s.Node.Predict(sample); got == before {
		t.Fatal("quant=int8 served a bit-identical probability; quantized path not active")
	}
	if err := s.Model.SetQuantization("none"); err != nil {
		t.Fatal(err)
	}
	if got := s.Node.Predict(sample); got != before {
		t.Fatalf("restoring quant=none must restore the float64 probability: %v != %v", got, before)
	}
}

func TestQuantizationOptionValidation(t *testing.T) {
	o := testOptions()
	o.Quantization = "int7"
	if _, err := New(o); err == nil {
		t.Fatal("invalid quantization mode must fail validation")
	}
}
