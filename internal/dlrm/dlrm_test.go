package dlrm

import (
	"math"
	"testing"
	"testing/quick"

	"liveupdate/internal/emt"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

func smallConfig() Config {
	return Config{
		NumTables:    3,
		EmbeddingDim: 8,
		NumDense:     4,
		BottomHidden: []int{16},
		TopHidden:    []int{16},
	}
}

func newSetup(seed uint64) (*Model, *BaseEmbeddings) {
	rng := tensor.NewRNG(seed)
	cfg := smallConfig()
	m := MustNewModel(cfg, rng)
	g := emt.NewGroup(cfg.NumTables, 50, cfg.EmbeddingDim, rng)
	return m, &BaseEmbeddings{Group: g}
}

func TestLayerForwardLinear(t *testing.T) {
	l := &Layer{
		W:    tensor.NewMatrixFrom(2, 2, []float64{1, 0, 0, 1}),
		B:    []float64{1, -1},
		ReLU: false,
	}
	out := l.Forward([]float64{3, 4}, nil)
	if out[0] != 4 || out[1] != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestLayerReLU(t *testing.T) {
	l := &Layer{
		W:    tensor.NewMatrixFrom(2, 1, []float64{1, -1}),
		B:    []float64{0, 0},
		ReLU: true,
	}
	out := l.Forward([]float64{2}, nil)
	if out[0] != 2 || out[1] != 0 {
		t.Fatalf("relu out = %v", out)
	}
}

func TestMLPShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := NewMLP(rng, []int{4, 8, 2})
	out := m.Forward([]float64{1, 2, 3, 4}, nil)
	if len(out) != 2 {
		t.Fatalf("out len %d", len(out))
	}
	if m.ParamCount() != 4*8+8+8*2+2 {
		t.Fatalf("param count %d", m.ParamCount())
	}
}

// Finite-difference check of the full model gradient w.r.t. a bottom-layer
// weight and an embedding row. This validates the entire backward path:
// top MLP → interaction → bottom MLP / embeddings.
func TestGradientFiniteDifference(t *testing.T) {
	m, src := newSetup(7)
	rng := tensor.NewRNG(99)
	dense := []float64{0.5, -0.2, 0.8, 0.1}
	sparse := [][]int32{{3}, {7, 9}, {11}}
	label := 1

	lossAt := func() float64 {
		return BCELossWithLogit(m.Forward(src, dense, sparse, nil), label)
	}

	// Analytic gradient.
	var cache ForwardCache
	logit := m.Forward(src, dense, sparse, &cache)
	dLogit := Sigmoid(logit) - float64(label)
	m.Bottom.ZeroGrad()
	m.Top.ZeroGrad()
	dEmb := m.Backward(dLogit, &cache)

	const h = 1e-6

	// Check several random dense weights across both MLPs.
	check := func(name string, w *[]float64, grad []float64, idx int) {
		orig := (*w)[idx]
		(*w)[idx] = orig + h
		up := lossAt()
		(*w)[idx] = orig - h
		down := lossAt()
		(*w)[idx] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-grad[idx]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("%s[%d]: numeric %v vs analytic %v", name, idx, numeric, grad[idx])
		}
	}
	for trial := 0; trial < 5; trial++ {
		bl := m.Bottom.Layers[0]
		idx := rng.Intn(len(bl.W.Data))
		check("bottomW", &bl.W.Data, bl.gradW.Data, idx)
		tl := m.Top.Layers[len(m.Top.Layers)-1]
		idx = rng.Intn(len(tl.W.Data))
		check("topW", &tl.W.Data, tl.gradW.Data, idx)
	}

	// Check the pooled-embedding gradient for table 1 (multi-hot) by
	// perturbing one coordinate of one contributing row: the pooled Jacobian
	// splits the gradient by 1/len(ids).
	tab := src.Group.Tables[1]
	row := tab.PeekRow(7)
	for coord := 0; coord < 3; coord++ {
		orig := row[coord]
		row[coord] = orig + h
		up := lossAt()
		row[coord] = orig - h
		down := lossAt()
		row[coord] = orig
		numeric := (up - down) / (2 * h)
		analytic := dEmb[1][coord] / 2 // two ids pooled
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("emb grad coord %d: numeric %v vs analytic %v", coord, numeric, analytic)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	p := trace.Profiles()["criteo"]
	p.NumTables = 3
	p.TableSize = 50
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 2}
	gen := trace.MustNewGenerator(p, 5)
	samples := gen.Batch(800, 60)

	rng := tensor.NewRNG(11)
	cfg := smallConfig()
	m := MustNewModel(cfg, rng)
	src := &BaseEmbeddings{Group: emt.NewGroup(cfg.NumTables, p.TableSize, cfg.EmbeddingDim, rng)}
	tr := &Trainer{Model: m, Emb: src, Opt: SGD{LR: 0.05}, EmbLR: 0.05}

	before := EvaluateLogLoss(m, src, samples)
	tr.TrainEpochs(samples, 32, 3)
	after := EvaluateLogLoss(m, src, samples)
	if after >= before {
		t.Fatalf("training did not reduce loss: %v -> %v", before, after)
	}
	auc := EvaluateAUC(m, src, samples)
	if auc <= 0.52 {
		t.Fatalf("training AUC %v should beat random", auc)
	}
}

func TestAdagradReducesLoss(t *testing.T) {
	p := trace.Profiles()["criteo"]
	p.NumTables = 3
	p.TableSize = 50
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	gen := trace.MustNewGenerator(p, 6)
	samples := gen.Batch(400, 60)

	rng := tensor.NewRNG(12)
	cfg := smallConfig()
	m := MustNewModel(cfg, rng)
	src := &BaseEmbeddings{Group: emt.NewGroup(cfg.NumTables, p.TableSize, cfg.EmbeddingDim, rng)}
	tr := &Trainer{Model: m, Emb: src, Opt: Adagrad{LR: 0.05}, EmbLR: 0.05}
	before := EvaluateLogLoss(m, src, samples)
	tr.TrainEpochs(samples, 32, 3)
	after := EvaluateLogLoss(m, src, samples)
	if after >= before {
		t.Fatalf("adagrad did not reduce loss: %v -> %v", before, after)
	}
}

func TestEmbeddingUpdatesMarkDirty(t *testing.T) {
	m, src := newSetup(3)
	dense := []float64{0, 0, 0, 0}
	sparse := [][]int32{{1}, {2}, {3}}
	m.TrainStep(src, dense, sparse, 1, 0.1)
	for ti, tab := range src.Group.Tables {
		if tab.DirtyCount() != 1 {
			t.Fatalf("table %d dirty %d, want 1", ti, tab.DirtyCount())
		}
	}
}

func TestApplyGradEmptyIDs(t *testing.T) {
	_, src := newSetup(4)
	// Must not panic or update anything.
	src.ApplyGrad(0, nil, make([]float64, 8), 0.1)
	if src.Group.Tables[0].DirtyCount() != 0 {
		t.Fatal("empty ApplyGrad must be a no-op")
	}
}

func TestModelCloneIndependence(t *testing.T) {
	m, src := newSetup(8)
	c := m.Clone()
	dense := []float64{1, 1, 1, 1}
	sparse := [][]int32{{0}, {0}, {0}}
	before := c.Forward(src, dense, sparse, nil)
	// Train original only.
	for i := 0; i < 10; i++ {
		m.TrainStep(src, dense, sparse, 1, 0) // embLR=0: only dense params move
		SGD{LR: 0.1}.Step(m.Bottom, 1)
		SGD{LR: 0.1}.Step(m.Top, 1)
	}
	after := c.Forward(src, dense, sparse, nil)
	if before != after {
		t.Fatal("clone weights changed when original trained")
	}
	c.CopyWeightsFrom(m)
	if c.Forward(src, dense, sparse, nil) != m.Forward(src, dense, sparse, nil) {
		t.Fatal("CopyWeightsFrom must make outputs identical")
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []Config{
		{NumTables: 0, EmbeddingDim: 8, NumDense: 4},
		{NumTables: 3, EmbeddingDim: 0, NumDense: 4},
		{NumTables: 3, EmbeddingDim: 8, NumDense: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := NewModel(Config{}, tensor.NewRNG(1)); err == nil {
		t.Fatal("NewModel must reject invalid config")
	}
}

func TestInteractionCount(t *testing.T) {
	c := smallConfig() // 3 tables + bottom = 4 features → 6 pairs
	if c.InteractionCount() != 6 {
		t.Fatalf("interactions %d, want 6", c.InteractionCount())
	}
}

func TestBCELossStability(t *testing.T) {
	// Extreme logits must not produce NaN/Inf.
	for _, logit := range []float64{-500, -10, 0, 10, 500} {
		for _, label := range []int{0, 1} {
			l := BCELossWithLogit(logit, label)
			if math.IsNaN(l) || math.IsInf(l, 0) {
				t.Fatalf("loss(%v,%d) = %v", logit, label, l)
			}
			if l < 0 {
				t.Fatalf("loss must be non-negative: %v", l)
			}
		}
	}
	// Known value: logit 0 → ln 2 either label.
	if math.Abs(BCELossWithLogit(0, 1)-math.Ln2) > 1e-12 {
		t.Fatal("loss(0,1) != ln2")
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	if s := Sigmoid(100); s <= 0.999 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s >= 0.001 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
}

// Property: Forward is deterministic and Predict stays in (0, 1).
func TestPropertyPredictRange(t *testing.T) {
	m, src := newSetup(21)
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		dense := make([]float64, 4)
		for i := range dense {
			dense[i] = rng.NormFloat64()
		}
		sparse := [][]int32{
			{int32(rng.Intn(50))},
			{int32(rng.Intn(50))},
			{int32(rng.Intn(50))},
		}
		p1 := m.Predict(src, dense, sparse)
		p2 := m.Predict(src, dense, sparse)
		return p1 == p2 && p1 > 0 && p1 < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigForProfile(t *testing.T) {
	p := trace.Profiles()["criteo"]
	cfg := ConfigForProfile(p)
	if cfg.NumTables != p.NumTables || cfg.EmbeddingDim != p.EmbeddingDim || cfg.NumDense != p.NumDense {
		t.Fatal("ConfigForProfile mismatch")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- Serving fast path (zero-allocation scratch forward) ---

// TestPredictWithMatchesForward: the scratch-based inference path must score
// bit-identically to the allocating Forward path, for both embedding sources.
func TestPredictWithMatchesForward(t *testing.T) {
	m, b := newSetup(5)
	sc := m.NewScratch()
	sparse := [][]int32{{1, 7}, {3}, {9, 11, 2}}
	dense := []float64{0.5, -1, 2, 0.25}
	for i := 0; i < 50; i++ {
		dense[0] = float64(i) * 0.1
		sparse[0][0] = int32(i % 50)
		want := Sigmoid(m.Forward(b, dense, sparse, nil))
		if got := m.PredictWith(b, dense, sparse, sc); got != want {
			t.Fatalf("iter %d: PredictWith = %v, Forward = %v", i, got, want)
		}
		if got := m.Predict(b, dense, sparse); got != want {
			t.Fatalf("iter %d: Predict = %v, Forward = %v", i, got, want)
		}
	}
}

// TestPredictZeroAlloc asserts the acceptance criterion directly: the Predict
// fast path (pooled scratch) and PredictWith (caller scratch) perform zero
// heap allocations per call.
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	m, b := newSetup(6)
	sc := m.NewScratch()
	sparse := [][]int32{{1, 7}, {3}, {9, 11, 2}}
	dense := []float64{0.5, -1, 2, 0.25}
	if n := testing.AllocsPerRun(200, func() { m.PredictWith(b, dense, sparse, sc) }); n != 0 {
		t.Fatalf("PredictWith allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.Predict(b, dense, sparse) }); n != 0 {
		t.Fatalf("Predict allocates %v per run, want 0", n)
	}
}

func TestPredictBatch(t *testing.T) {
	m, b := newSetup(7)
	const n = 16
	dense := make([][]float64, n)
	sparse := make([][][]int32, n)
	for i := range dense {
		dense[i] = []float64{float64(i), 1, -1, 0.5}
		sparse[i] = [][]int32{{int32(i)}, {int32(2 * i)}, {int32(i), int32(i + 1)}}
	}
	out := make([]float64, n)
	m.PredictBatch(b, dense, sparse, out, nil)
	for i := range out {
		if want := m.Predict(b, dense[i], sparse[i]); out[i] != want {
			t.Fatalf("batch[%d] = %v, want %v", i, out[i], want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	m.PredictBatch(b, dense[:2], sparse, out, nil)
}

// TestForwardCacheInputNotAliased is the batched-reuse regression test: a
// caller may overwrite its input buffer after Forward (e.g. a serving loop
// reusing one dense scratch across a batch) and Backward must still see the
// original inputs. Gradients are compared against a run whose buffers were
// never touched.
func TestForwardCacheInputNotAliased(t *testing.T) {
	mA, bA := newSetup(8)
	mB, _ := newSetup(8) // identical weights via identical seed
	bB := &BaseEmbeddings{Group: bA.Group}
	sparse := [][]int32{{1}, {2}, {3}}
	denseRef := []float64{1, -2, 3, -4}

	// Reference: pristine buffers end to end.
	var cacheA ForwardCache
	logitA := mA.Forward(bA, denseRef, sparse, &cacheA)
	dEmbA := mA.Backward(Sigmoid(logitA)-1, &cacheA)

	// Same forward, but the caller's dense buffer is clobbered before
	// Backward — as a buffer-reusing batch loop would do.
	denseLive := append([]float64(nil), denseRef...)
	var cacheB ForwardCache
	logitB := mB.Forward(bB, denseLive, sparse, &cacheB)
	for i := range denseLive {
		denseLive[i] = 999
	}
	dEmbB := mB.Backward(Sigmoid(logitB)-1, &cacheB)

	if logitA != logitB {
		t.Fatalf("logits differ: %v vs %v", logitA, logitB)
	}
	for ti := range dEmbA {
		for d := range dEmbA[ti] {
			if dEmbA[ti][d] != dEmbB[ti][d] {
				t.Fatalf("table %d dim %d: embedding grad differs after input clobber: %v vs %v",
					ti, d, dEmbA[ti][d], dEmbB[ti][d])
			}
		}
	}
	// Dense-layer gradients must match too: Backward reads cache.Input.
	for li := range mA.Bottom.Layers {
		ga, gb := mA.Bottom.Layers[li].gradW.Data, mB.Bottom.Layers[li].gradW.Data
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("bottom layer %d gradW[%d] differs after input clobber", li, i)
			}
		}
	}
}

// TestBaseApplyGradScratchReuse: the reused delta scratch must produce the
// same table updates as the historical fresh-slice implementation, across
// gradient widths.
func TestBaseApplyGradScratchReuse(t *testing.T) {
	_, b := newSetup(9)
	ref := b.Group.Clone()
	grad := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b.ApplyGrad(1, []int32{4, 5}, grad, 0.1)
	// Reference computation with a fresh slice.
	delta := make([]float64, len(grad))
	for i, g := range grad {
		delta[i] = -0.1 / 2 * g
	}
	for _, id := range []int32{4, 5} {
		ref.Tables[1].ApplyRowDelta(id, delta)
	}
	for _, id := range []int32{4, 5} {
		got := b.Group.Tables[1].PeekRow(id)
		want := ref.Tables[1].PeekRow(id)
		for d := range got {
			if got[d] != want[d] {
				t.Fatalf("row %d dim %d: %v != %v", id, d, got[d], want[d])
			}
		}
	}
	// Back-to-back calls reuse the same buffer without cross-talk.
	if !raceEnabled {
		if n := testing.AllocsPerRun(50, func() { b.ApplyGrad(0, []int32{1}, grad, 0.05) }); n != 0 {
			t.Fatalf("ApplyGrad allocates %v per run after warmup, want 0", n)
		}
	}
}
