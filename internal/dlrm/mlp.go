// Package dlrm implements the Deep Learning Recommendation Model of paper
// §II-A from scratch: bottom/top MLPs, dot-product feature interaction,
// embedding pooling via internal/emt, binary cross-entropy loss, and SGD /
// Adagrad optimizers. It substitutes for TorchRec+FBGEMM on H100s; the
// architecture (Fig 1) is the same, the scale is laptop-sized.
package dlrm

import (
	"fmt"
	"math"

	"liveupdate/internal/tensor"
)

// Layer is one fully connected layer y = act(Wx + b).
type Layer struct {
	W    *tensor.Matrix // out×in
	B    []float64      // out
	ReLU bool           // apply ReLU; false = linear output layer

	// Gradient accumulators, applied by the optimizer per batch.
	gradW *tensor.Matrix
	gradB []float64

	// Adagrad accumulators (lazily allocated).
	accW *tensor.Matrix
	accB []float64
}

// NewLayer builds an in→out layer with Xavier-initialized weights.
func NewLayer(rng *tensor.RNG, in, out int, relu bool) *Layer {
	return &Layer{
		W:     tensor.XavierMatrix(rng, out, in),
		B:     make([]float64, out),
		ReLU:  relu,
		gradW: tensor.NewMatrix(out, in),
		gradB: make([]float64, out),
	}
}

// Forward computes the layer output and, when cache is non-nil, stores the
// input and pre-activation needed for Backward. The input is copied into the
// cache (reusing its buffer), so callers may overwrite x — e.g. a batched
// serving loop reusing one scratch buffer — between Forward and Backward
// without corrupting backpropagation.
func (l *Layer) Forward(x []float64, cache *LayerCache) []float64 {
	var pre []float64
	if cache != nil {
		cache.Pre = growFloats(cache.Pre, l.Out())
		pre = cache.Pre
	} else {
		pre = make([]float64, l.Out())
	}
	tensor.MatVecInto(pre, l.W, x)
	for i := range pre {
		pre[i] += l.B[i]
	}
	out := pre
	if l.ReLU {
		if cache != nil {
			cache.out = growFloats(cache.out, l.Out())
			out = cache.out
		} else {
			out = make([]float64, len(pre))
		}
		for i, v := range pre {
			if v > 0 {
				out[i] = v
			} else {
				out[i] = 0
			}
		}
	}
	if cache != nil {
		cache.Input = append(cache.Input[:0], x...)
	}
	return out
}

// growFloats returns buf resized to n, reusing its backing array when the
// capacity allows. Contents are unspecified; callers overwrite fully.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// LayerCache holds per-sample forward state for backpropagation, plus the
// layer's reusable forward/backward buffers: a cache that lives across train
// ticks makes Forward and Backward allocation-free after the first batch.
// Input is an owned copy of the forward input (never an alias of the caller's
// buffer).
type LayerCache struct {
	Input []float64
	Pre   []float64

	out  []float64 // post-ReLU output (aliased by Forward's return value)
	dPre []float64 // backward scratch: gradient w.r.t. pre-activation
	dIn  []float64 // backward scratch: gradient w.r.t. input (returned)
}

// Backward accumulates gradients for dOut (gradient w.r.t. the layer output)
// and returns the gradient w.r.t. the layer input. The returned slice aliases
// the cache's scratch and is valid until the cache's next Backward.
func (l *Layer) Backward(dOut []float64, cache *LayerCache) []float64 {
	dPre := dOut
	if l.ReLU {
		cache.dPre = growFloats(cache.dPre, len(dOut))
		dPre = cache.dPre
		for i, v := range dOut {
			if cache.Pre[i] > 0 {
				dPre[i] = v
			} else {
				dPre[i] = 0
			}
		}
	}
	in := cache.Input
	for o, dp := range dPre {
		if dp == 0 {
			continue
		}
		row := l.gradW.Row(o)
		for i, xi := range in {
			row[i] += dp * xi
		}
		l.gradB[o] += dp
	}
	cache.dIn = growFloats(cache.dIn, len(in))
	dIn := cache.dIn
	for i := range dIn {
		dIn[i] = 0
	}
	for o, dp := range dPre {
		if dp == 0 {
			continue
		}
		row := l.W.Row(o)
		for i, w := range row {
			dIn[i] += dp * w
		}
	}
	return dIn
}

// In returns the input width, Out the output width.
func (l *Layer) In() int  { return l.W.Cols }
func (l *Layer) Out() int { return l.W.Rows }

// zeroGrad clears accumulated gradients.
func (l *Layer) zeroGrad() {
	l.gradW.Zero()
	for i := range l.gradB {
		l.gradB[i] = 0
	}
}

// MLP is a stack of fully connected layers.
type MLP struct {
	Layers []*Layer
}

// NewMLP builds an MLP with the given widths; widths[0] is the input size.
// All hidden layers use ReLU; the final layer is linear.
func NewMLP(rng *tensor.RNG, widths []int) *MLP {
	if len(widths) < 2 {
		panic(fmt.Sprintf("dlrm: MLP needs at least 2 widths, got %v", widths))
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		relu := i+2 < len(widths)
		m.Layers = append(m.Layers, NewLayer(rng, widths[i], widths[i+1], relu))
	}
	return m
}

// MLPCache holds per-layer forward state for one sample.
type MLPCache struct {
	layers []LayerCache
}

// Forward runs the stack, filling cache when non-nil.
func (m *MLP) Forward(x []float64, cache *MLPCache) []float64 {
	if cache != nil && len(cache.layers) != len(m.Layers) {
		cache.layers = make([]LayerCache, len(m.Layers))
	}
	out := x
	for i, l := range m.Layers {
		var lc *LayerCache
		if cache != nil {
			lc = &cache.layers[i]
		}
		out = l.Forward(out, lc)
	}
	return out
}

// MLPScratch holds one output buffer per layer for allocation-free inference
// (InferInto). A scratch belongs to exactly one forward pass at a time; see
// Model.ForwardScratch for the ownership rules.
type MLPScratch struct {
	acts [][]float64
	qx   []int8 // per-layer activation quantization buffer (int8 path)
}

// NewScratch allocates an inference scratch sized for this MLP. The scratch
// also carries the int8 activation buffer, so the same scratch drives both
// the float and quantized inference paths.
func (m *MLP) NewScratch() *MLPScratch {
	s := &MLPScratch{acts: make([][]float64, len(m.Layers))}
	maxIn := 0
	for i, l := range m.Layers {
		s.acts[i] = make([]float64, l.Out())
		if l.In() > maxIn {
			maxIn = l.In()
		}
	}
	s.qx = make([]int8, maxIn)
	return s
}

// MLPBatchScratch holds one activation matrix per layer (capacity rows ×
// layer width) for batched inference, plus a per-row scratch for inference
// paths that cannot be expressed as a GEMM (the quantized kernel quantizes
// each activation row individually). One batch scratch serves one
// InferBatchInto call at a time.
type MLPBatchScratch struct {
	maxB int
	acts []tensor.Matrix
	row  *MLPScratch
}

// NewBatchScratch allocates a batch scratch for up to maxB samples.
func (m *MLP) NewBatchScratch(maxB int) *MLPBatchScratch {
	if maxB < 1 {
		maxB = 1
	}
	s := &MLPBatchScratch{
		maxB: maxB,
		acts: make([]tensor.Matrix, len(m.Layers)),
		row:  m.NewScratch(),
	}
	for i, l := range m.Layers {
		s.acts[i] = tensor.Matrix{Rows: maxB, Cols: l.Out(), Data: make([]float64, maxB*l.Out())}
	}
	return s
}

// InferBatchInto runs x.Rows samples (one per row) through the stack with one
// GEMM per layer instead of a matvec per sample: each layer computes
// X·Wᵀ + b via MatMulTransInto into its scratch matrix. Per output element
// the GEMM accumulates columns in the same order as MatVecInto, so batched
// results are bit-identical to per-sample InferInto. The returned matrix
// aliases scratch storage, valid until the scratch's next use.
func (m *MLP) InferBatchInto(x *tensor.Matrix, s *MLPBatchScratch) *tensor.Matrix {
	if x.Rows > s.maxB {
		panic(fmt.Sprintf("dlrm: batch %d exceeds scratch capacity %d", x.Rows, s.maxB))
	}
	out := x
	for i, l := range m.Layers {
		act := &s.acts[i]
		act.Rows = x.Rows
		tensor.MatMulTransInto(act, out, l.W)
		for r := 0; r < act.Rows; r++ {
			row := act.Row(r)
			for j := range row {
				row[j] += l.B[j]
			}
			if l.ReLU {
				tensor.ReLUInPlace(row)
			}
		}
		out = act
	}
	return out
}

// InferInto runs the stack through the scratch's per-layer buffers with zero
// allocations: each layer computes Wx+b into its scratch row (MatVecInto) and
// applies ReLU in place. The returned slice aliases the scratch's last buffer
// and is valid until the scratch's next use. Inference only — no cache is
// filled, so it cannot feed Backward.
func (m *MLP) InferInto(x []float64, s *MLPScratch) []float64 {
	if len(s.acts) != len(m.Layers) {
		panic(fmt.Sprintf("dlrm: scratch has %d layer buffers, MLP has %d layers", len(s.acts), len(m.Layers)))
	}
	out := x
	for i, l := range m.Layers {
		buf := s.acts[i]
		tensor.MatVecInto(buf, l.W, out)
		for j := range buf {
			buf[j] += l.B[j]
		}
		if l.ReLU {
			tensor.ReLUInPlace(buf)
		}
		out = buf
	}
	return out
}

// Backward backpropagates dOut through the stack, accumulating gradients,
// and returns the gradient w.r.t. the MLP input.
func (m *MLP) Backward(dOut []float64, cache *MLPCache) []float64 {
	d := dOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		d = m.Layers[i].Backward(d, &cache.layers[i])
	}
	return d
}

// ZeroGrad clears accumulated gradients on all layers.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.zeroGrad()
	}
}

// ParamCount returns the number of trainable scalars.
func (m *MLP) ParamCount() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// Clone deep-copies weights (gradient state is reset in the copy).
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Layer{
			W:     l.W.Clone(),
			B:     append([]float64(nil), l.B...),
			ReLU:  l.ReLU,
			gradW: tensor.NewMatrix(l.W.Rows, l.W.Cols),
			gradB: make([]float64, len(l.B)),
		}
		c.Layers = append(c.Layers, nl)
	}
	return c
}

// CopyWeightsFrom overwrites weights from src (same architecture).
func (m *MLP) CopyWeightsFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("dlrm: MLP CopyWeightsFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		copy(l.W.Data, src.Layers[i].W.Data)
		copy(l.B, src.Layers[i].B)
	}
}

// Optimizer applies accumulated MLP gradients.
type Optimizer interface {
	// Step applies and clears the accumulated gradients of m, scaled by
	// 1/batchSize.
	Step(m *MLP, batchSize int)
}

// SGD is plain stochastic gradient descent with learning rate LR.
type SGD struct{ LR float64 }

// Step implements Optimizer.
func (s SGD) Step(m *MLP, batchSize int) {
	if batchSize <= 0 {
		batchSize = 1
	}
	scale := s.LR / float64(batchSize)
	for _, l := range m.Layers {
		for i, g := range l.gradW.Data {
			l.W.Data[i] -= scale * g
		}
		for i, g := range l.gradB {
			l.B[i] -= scale * g
		}
	}
	m.ZeroGrad()
}

// Adagrad adapts per-parameter learning rates by accumulated squared
// gradients, the optimizer production DLRMs commonly use for dense layers.
type Adagrad struct {
	LR  float64
	Eps float64 // defaults to 1e-8 when zero
}

// Step implements Optimizer.
func (a Adagrad) Step(m *MLP, batchSize int) {
	if batchSize <= 0 {
		batchSize = 1
	}
	eps := a.Eps
	if eps == 0 {
		eps = 1e-8
	}
	inv := 1 / float64(batchSize)
	for _, l := range m.Layers {
		if l.accW == nil {
			l.accW = tensor.NewMatrix(l.W.Rows, l.W.Cols)
			l.accB = make([]float64, len(l.B))
		}
		for i, g := range l.gradW.Data {
			g *= inv
			l.accW.Data[i] += g * g
			l.W.Data[i] -= a.LR * g / (math.Sqrt(l.accW.Data[i]) + eps)
		}
		for i, g := range l.gradB {
			g *= inv
			l.accB[i] += g * g
			l.B[i] -= a.LR * g / (math.Sqrt(l.accB[i]) + eps)
		}
	}
	m.ZeroGrad()
}

// Sigmoid returns the logistic function of x.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// BCELossWithLogit returns the binary cross-entropy of the logit against a
// 0/1 label, computed in a numerically stable form.
func BCELossWithLogit(logit float64, label int) float64 {
	// log(1+exp(-|x|)) + max(x,0) - x*y
	z := math.Max(logit, 0)
	return z - logit*float64(label) + math.Log1p(math.Exp(-math.Abs(logit)))
}
