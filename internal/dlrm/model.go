package dlrm

import (
	"fmt"
	"sync"

	"liveupdate/internal/emt"
	"liveupdate/internal/tensor"
)

// EmbeddingSource abstracts where pooled embeddings come from and where their
// gradients go. The base implementation reads/writes emt tables directly; the
// LoRA implementation (internal/lora) serves W+AB and routes gradients to the
// adapter factors while W stays frozen (paper §IV-A).
type EmbeddingSource interface {
	// NumTables returns the number of embedding tables.
	NumTables() int
	// Dim returns the embedding dimension d.
	Dim() int
	// Lookup mean-pools the embeddings of ids from the given table into dst.
	Lookup(table int, ids []int32, dst []float64)
	// ApplyGrad consumes the gradient w.r.t. the pooled embedding of the
	// given table, performing one SGD step at rate lr on whatever parameters
	// the source trains.
	ApplyGrad(table int, ids []int32, grad []float64, lr float64)
}

// BaseEmbeddings adapts an emt.Group to the EmbeddingSource interface with
// direct row-wise SGD updates (the conventional training path).
type BaseEmbeddings struct {
	Group *emt.Group

	// delta is ApplyGrad's scaled-gradient scratch, reused across calls so a
	// training tick performs no per-sample allocation. ApplyGrad is owner-only
	// (serialized with the training loop), so one buffer suffices.
	delta []float64
}

// NumTables implements EmbeddingSource.
func (b *BaseEmbeddings) NumTables() int { return len(b.Group.Tables) }

// Dim implements EmbeddingSource.
func (b *BaseEmbeddings) Dim() int { return b.Group.Tables[0].Dim }

// Lookup implements EmbeddingSource.
func (b *BaseEmbeddings) Lookup(table int, ids []int32, dst []float64) {
	b.Group.Tables[table].Lookup(ids, dst)
}

// ApplyGrad implements EmbeddingSource: the pooled gradient is scattered
// back to each contributing row scaled by 1/len(ids) (mean-pool Jacobian).
func (b *BaseEmbeddings) ApplyGrad(table int, ids []int32, grad []float64, lr float64) {
	if len(ids) == 0 {
		return
	}
	t := b.Group.Tables[table]
	scale := -lr / float64(len(ids))
	if cap(b.delta) < len(grad) {
		b.delta = make([]float64, len(grad))
	}
	delta := b.delta[:len(grad)]
	for i, g := range grad {
		delta[i] = scale * g
	}
	for _, id := range ids {
		t.ApplyRowDelta(id, delta)
	}
}

// Config describes a DLRM architecture.
type Config struct {
	NumTables    int
	EmbeddingDim int
	NumDense     int
	BottomHidden []int // hidden widths of the bottom MLP
	TopHidden    []int // hidden widths of the top MLP
}

// Validate checks architectural consistency.
func (c Config) Validate() error {
	switch {
	case c.NumTables <= 0:
		return fmt.Errorf("dlrm: NumTables must be positive")
	case c.EmbeddingDim <= 0:
		return fmt.Errorf("dlrm: EmbeddingDim must be positive")
	case c.NumDense <= 0:
		return fmt.Errorf("dlrm: NumDense must be positive")
	}
	return nil
}

// InteractionCount returns the number of pairwise dot-product features:
// (T+1 choose 2) over the T pooled embeddings plus the bottom-MLP output.
func (c Config) InteractionCount() int {
	n := c.NumTables + 1
	return n * (n - 1) / 2
}

// Model is the dense half of a DLRM: bottom MLP, dot-product interaction,
// top MLP. Embedding parameters live behind an EmbeddingSource so that base
// training and LoRA adaptation share one forward/backward implementation.
type Model struct {
	Cfg    Config
	Bottom *MLP
	Top    *MLP

	// scratch pools ForwardScratch values for the allocation-free Predict
	// fast path. Acquire/Release cycle through it; Predict itself is safe for
	// concurrent callers because every call checks out its own scratch.
	scratch sync.Pool
}

// NewModel builds a model for cfg with Xavier initialization from rng.
func NewModel(cfg Config, rng *tensor.RNG) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bw := append([]int{cfg.NumDense}, cfg.BottomHidden...)
	bw = append(bw, cfg.EmbeddingDim)
	topIn := cfg.EmbeddingDim + cfg.InteractionCount()
	tw := append([]int{topIn}, cfg.TopHidden...)
	tw = append(tw, 1)
	return &Model{
		Cfg:    cfg,
		Bottom: NewMLP(rng, bw),
		Top:    NewMLP(rng, tw),
	}, nil
}

// MustNewModel panics on configuration errors; for tests and examples.
func MustNewModel(cfg Config, rng *tensor.RNG) *Model {
	m, err := NewModel(cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// ForwardCache retains the state of one forward pass for Backward.
type ForwardCache struct {
	bottom   MLPCache
	top      MLPCache
	features [][]float64 // f_0 = bottom output, f_1.. = pooled embeddings
	sparse   [][]int32
}

// Forward computes the click logit for one example. When cache is non-nil it
// is filled for a subsequent Backward call.
func (m *Model) Forward(src EmbeddingSource, dense []float64, sparse [][]int32, cache *ForwardCache) float64 {
	cfg := m.Cfg
	if len(dense) != cfg.NumDense {
		panic(fmt.Sprintf("dlrm: dense len %d != %d", len(dense), cfg.NumDense))
	}
	if len(sparse) != cfg.NumTables {
		panic(fmt.Sprintf("dlrm: sparse tables %d != %d", len(sparse), cfg.NumTables))
	}
	var bc *MLPCache
	if cache != nil {
		bc = &cache.bottom
	}
	z := m.Bottom.Forward(dense, bc)

	features := make([][]float64, cfg.NumTables+1)
	features[0] = z
	for t := 0; t < cfg.NumTables; t++ {
		e := make([]float64, cfg.EmbeddingDim)
		src.Lookup(t, sparse[t], e)
		features[t+1] = e
	}

	inter := make([]float64, 0, cfg.InteractionCount())
	for i := 0; i < len(features); i++ {
		for j := i + 1; j < len(features); j++ {
			inter = append(inter, tensor.Dot(features[i], features[j]))
		}
	}
	topIn := make([]float64, 0, cfg.EmbeddingDim+len(inter))
	topIn = append(topIn, z...)
	topIn = append(topIn, inter...)

	var tc *MLPCache
	if cache != nil {
		tc = &cache.top
		cache.features = features
		cache.sparse = sparse
	}
	out := m.Top.Forward(topIn, tc)
	return out[0]
}

// ForwardScratch owns every buffer one inference forward pass touches: the
// per-layer MLP activations, the gathered (pooled) embedding rows, the
// interaction-feature view, and the top-MLP input. Reusing a scratch across
// requests makes PredictWith allocation-free.
//
// Ownership rules: a scratch serves one forward pass at a time — it is NOT
// safe for concurrent use; callers either thread their own (NewScratch /
// AcquireScratch+ReleaseScratch) through a serialized serving loop, or call
// Predict, which checks a pooled scratch out per call. All result slices
// handed out during a pass alias scratch storage and are invalidated by the
// next pass.
type ForwardScratch struct {
	bottom *MLPScratch
	top    *MLPScratch

	// features[0] aliases the bottom MLP output; features[1..T] are the
	// pooled embedding gather buffers, backed by embBuf.
	features [][]float64
	embBuf   []float64
	topIn    []float64
}

// NewScratch allocates a forward scratch sized for this model. The scratch is
// tied to the model's architecture; using it with a different model panics in
// the underlying shape checks.
func (m *Model) NewScratch() *ForwardScratch {
	cfg := m.Cfg
	sc := &ForwardScratch{
		bottom:   m.Bottom.NewScratch(),
		top:      m.Top.NewScratch(),
		features: make([][]float64, cfg.NumTables+1),
		embBuf:   make([]float64, cfg.NumTables*cfg.EmbeddingDim),
		topIn:    make([]float64, 0, cfg.EmbeddingDim+cfg.InteractionCount()),
	}
	for t := 0; t < cfg.NumTables; t++ {
		sc.features[t+1] = sc.embBuf[t*cfg.EmbeddingDim : (t+1)*cfg.EmbeddingDim]
	}
	return sc
}

// AcquireScratch checks a scratch out of the model's pool (allocating one
// only when the pool is empty). Pair with ReleaseScratch.
func (m *Model) AcquireScratch() *ForwardScratch {
	if sc, ok := m.scratch.Get().(*ForwardScratch); ok {
		return sc
	}
	return m.NewScratch()
}

// ReleaseScratch returns a scratch to the pool for reuse.
func (m *Model) ReleaseScratch(sc *ForwardScratch) { m.scratch.Put(sc) }

// forwardInto is the inference-only forward pass through caller-owned
// buffers: bottom MLP (in-place ReLU), embedding gather into the scratch's
// feature rows, pairwise dot-product interactions appended into the top-input
// buffer, top MLP. It performs zero heap allocations and fills no
// backpropagation cache.
func (m *Model) forwardInto(src EmbeddingSource, dense []float64, sparse [][]int32, sc *ForwardScratch) float64 {
	cfg := m.Cfg
	if len(dense) != cfg.NumDense {
		panic(fmt.Sprintf("dlrm: dense len %d != %d", len(dense), cfg.NumDense))
	}
	if len(sparse) != cfg.NumTables {
		panic(fmt.Sprintf("dlrm: sparse tables %d != %d", len(sparse), cfg.NumTables))
	}
	z := m.Bottom.InferInto(dense, sc.bottom)
	sc.features[0] = z
	for t := 0; t < cfg.NumTables; t++ {
		src.Lookup(t, sparse[t], sc.features[t+1])
	}
	topIn := append(sc.topIn[:0], z...)
	features := sc.features
	for i := 0; i < len(features); i++ {
		for j := i + 1; j < len(features); j++ {
			topIn = append(topIn, tensor.Dot(features[i], features[j]))
		}
	}
	out := m.Top.InferInto(topIn, sc.top)
	return out[0]
}

// Predict returns the click probability for one example. This is the serving
// fast path: it runs through a pooled ForwardScratch and performs zero heap
// allocations in steady state (verified by TestPredictZeroAlloc and gated in
// CI by BenchmarkServeRequestNoAlloc).
func (m *Model) Predict(src EmbeddingSource, dense []float64, sparse [][]int32) float64 {
	sc := m.AcquireScratch()
	p := Sigmoid(m.forwardInto(src, dense, sparse, sc))
	m.ReleaseScratch(sc)
	return p
}

// PredictWith is Predict through a caller-owned scratch — the batch-amortized
// form: acquire one scratch, score many requests, release once.
func (m *Model) PredictWith(src EmbeddingSource, dense []float64, sparse [][]int32, sc *ForwardScratch) float64 {
	return Sigmoid(m.forwardInto(src, dense, sparse, sc))
}

// PredictBatch scores len(out) examples through one scratch, writing click
// probabilities into out. dense, sparse, and out must have equal lengths; a
// nil sc acquires (and releases) a pooled scratch for the whole batch.
func (m *Model) PredictBatch(src EmbeddingSource, dense [][]float64, sparse [][][]int32, out []float64, sc *ForwardScratch) {
	if len(dense) != len(out) || len(sparse) != len(out) {
		panic(fmt.Sprintf("dlrm: PredictBatch lengths dense=%d sparse=%d out=%d",
			len(dense), len(sparse), len(out)))
	}
	if sc == nil {
		sc = m.AcquireScratch()
		defer m.ReleaseScratch(sc)
	}
	for i := range out {
		out[i] = Sigmoid(m.forwardInto(src, dense[i], sparse[i], sc))
	}
}

// Backward backpropagates dLogit through the model, accumulating dense-layer
// gradients and returning the gradient w.r.t. each table's pooled embedding.
func (m *Model) Backward(dLogit float64, cache *ForwardCache) [][]float64 {
	cfg := m.Cfg
	dTopIn := m.Top.Backward([]float64{dLogit}, &cache.top)

	dZ := make([]float64, cfg.EmbeddingDim)
	copy(dZ, dTopIn[:cfg.EmbeddingDim])
	dInter := dTopIn[cfg.EmbeddingDim:]

	features := cache.features
	dFeatures := make([][]float64, len(features))
	for i := range dFeatures {
		dFeatures[i] = make([]float64, cfg.EmbeddingDim)
	}
	k := 0
	for i := 0; i < len(features); i++ {
		for j := i + 1; j < len(features); j++ {
			g := dInter[k]
			k++
			if g == 0 {
				continue
			}
			tensor.Axpy(g, features[j], dFeatures[i])
			tensor.Axpy(g, features[i], dFeatures[j])
		}
	}
	// f_0 is the bottom output: its gradient combines the direct top-input
	// path and the interaction path.
	for i := range dZ {
		dZ[i] += dFeatures[0][i]
	}
	m.Bottom.Backward(dZ, &cache.bottom)
	return dFeatures[1:]
}

// TrainStep performs one SGD step on a single example: dense gradients are
// accumulated (call opt.Step to apply) and embedding gradients are applied
// immediately through src at rate embLR. It returns the example's BCE loss.
func (m *Model) TrainStep(src EmbeddingSource, dense []float64, sparse [][]int32, label int, embLR float64) float64 {
	var cache ForwardCache
	return m.TrainStepWith(src, dense, sparse, label, embLR, &cache)
}

// TrainStepWith is TrainStep through a caller-owned forward cache. Reusing
// one cache across a mini-batch amortizes the per-sample cache allocations
// (Forward overwrites every field it reads, so reuse is safe).
func (m *Model) TrainStepWith(src EmbeddingSource, dense []float64, sparse [][]int32, label int, embLR float64, cache *ForwardCache) float64 {
	logit := m.Forward(src, dense, sparse, cache)
	loss := BCELossWithLogit(logit, label)
	dLogit := Sigmoid(logit) - float64(label)
	dEmb := m.Backward(dLogit, cache)
	for t, g := range dEmb {
		src.ApplyGrad(t, sparse[t], g, embLR)
	}
	return loss
}

// InferLogit is the raw-logit form of PredictWith — the allocation-free
// inference pass without the sigmoid, for callers that rank by score (AUC
// evaluation) or apply their own link function.
func (m *Model) InferLogit(src EmbeddingSource, dense []float64, sparse [][]int32, sc *ForwardScratch) float64 {
	return m.forwardInto(src, dense, sparse, sc)
}

// Clone deep-copies the dense parameters.
func (m *Model) Clone() *Model {
	return &Model{Cfg: m.Cfg, Bottom: m.Bottom.Clone(), Top: m.Top.Clone()}
}

// CopyWeightsFrom overwrites dense parameters from src.
func (m *Model) CopyWeightsFrom(src *Model) {
	m.Bottom.CopyWeightsFrom(src.Bottom)
	m.Top.CopyWeightsFrom(src.Top)
}

// DenseParamCount returns the number of dense trainable scalars.
func (m *Model) DenseParamCount() int {
	return m.Bottom.ParamCount() + m.Top.ParamCount()
}
