package dlrm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"liveupdate/internal/emt"
	"liveupdate/internal/tensor"
)

// EmbeddingSource abstracts where pooled embeddings come from and where their
// gradients go. The base implementation reads/writes emt tables directly; the
// LoRA implementation (internal/lora) serves W+AB and routes gradients to the
// adapter factors while W stays frozen (paper §IV-A).
type EmbeddingSource interface {
	// NumTables returns the number of embedding tables.
	NumTables() int
	// Dim returns the embedding dimension d.
	Dim() int
	// Lookup mean-pools the embeddings of ids from the given table into dst.
	Lookup(table int, ids []int32, dst []float64)
	// ApplyGrad consumes the gradient w.r.t. the pooled embedding of the
	// given table, performing one SGD step at rate lr on whatever parameters
	// the source trains.
	ApplyGrad(table int, ids []int32, grad []float64, lr float64)
}

// BaseEmbeddings adapts an emt.Group to the EmbeddingSource interface with
// direct row-wise SGD updates (the conventional training path).
type BaseEmbeddings struct {
	Group *emt.Group

	// delta is ApplyGrad's scaled-gradient scratch, reused across calls so a
	// training tick performs no per-sample allocation. ApplyGrad is owner-only
	// (serialized with the training loop), so one buffer suffices.
	delta []float64
}

// NumTables implements EmbeddingSource.
func (b *BaseEmbeddings) NumTables() int { return len(b.Group.Tables) }

// Dim implements EmbeddingSource.
func (b *BaseEmbeddings) Dim() int { return b.Group.Tables[0].Dim }

// Lookup implements EmbeddingSource.
func (b *BaseEmbeddings) Lookup(table int, ids []int32, dst []float64) {
	b.Group.Tables[table].Lookup(ids, dst)
}

// ApplyGrad implements EmbeddingSource: the pooled gradient is scattered
// back to each contributing row scaled by 1/len(ids) (mean-pool Jacobian).
// The scatter is a single SPMM-style ScatterAdd touching only the
// mini-batch's rows — one version bump per call instead of one per row.
func (b *BaseEmbeddings) ApplyGrad(table int, ids []int32, grad []float64, lr float64) {
	if len(ids) == 0 {
		return
	}
	t := b.Group.Tables[table]
	scale := -lr / float64(len(ids))
	if cap(b.delta) < len(grad) {
		b.delta = make([]float64, len(grad))
	}
	delta := b.delta[:len(grad)]
	for i, g := range grad {
		delta[i] = scale * g
	}
	t.ScatterAdd(ids, delta)
}

// Config describes a DLRM architecture.
type Config struct {
	NumTables    int
	EmbeddingDim int
	NumDense     int
	BottomHidden []int // hidden widths of the bottom MLP
	TopHidden    []int // hidden widths of the top MLP
}

// Validate checks architectural consistency.
func (c Config) Validate() error {
	switch {
	case c.NumTables <= 0:
		return fmt.Errorf("dlrm: NumTables must be positive")
	case c.EmbeddingDim <= 0:
		return fmt.Errorf("dlrm: EmbeddingDim must be positive")
	case c.NumDense <= 0:
		return fmt.Errorf("dlrm: NumDense must be positive")
	}
	return nil
}

// InteractionCount returns the number of pairwise dot-product features:
// (T+1 choose 2) over the T pooled embeddings plus the bottom-MLP output.
func (c Config) InteractionCount() int {
	n := c.NumTables + 1
	return n * (n - 1) / 2
}

// Model is the dense half of a DLRM: bottom MLP, dot-product interaction,
// top MLP. Embedding parameters live behind an EmbeddingSource so that base
// training and LoRA adaptation share one forward/backward implementation.
type Model struct {
	Cfg    Config
	Bottom *MLP
	Top    *MLP

	// scratch pools ForwardScratch values for the allocation-free Predict
	// fast path. Acquire/Release cycle through it; Predict itself is safe for
	// concurrent callers because every call checks out its own scratch.
	scratch sync.Pool

	// batch pools BatchScratch values for the PredictBatch GEMM path.
	batch sync.Pool

	// qmode selects the published inference weight format; quant holds the
	// current read-only snapshot (nil when qmode is QuantNone). The snapshot
	// is rebuilt wherever the dense weights change wholesale (SetQuantization,
	// CopyWeightsFrom) — training never mutates it in place, so readers load
	// the pointer once per forward pass and need no lock.
	qmode QuantMode
	quant atomic.Pointer[quantModel]
}

// quantModel is one published snapshot of both MLPs in the active format.
type quantModel struct {
	bottom inferencer
	top    inferencer
}

// QuantMode returns the model's published inference weight format.
func (m *Model) QuantMode() QuantMode {
	if m.qmode == "" {
		return QuantNone
	}
	return m.qmode
}

// SetQuantization switches the published inference weight format and, for
// int8/f16, builds the snapshot. Callers must hold whatever lock serializes
// weight mutation (core holds paramMu); concurrent Predicts see either the
// old or the new snapshot atomically. Training is unaffected: gradients
// always flow through the float64 weights.
func (m *Model) SetQuantization(mode QuantMode) error {
	q, err := ParseQuantMode(string(mode))
	if err != nil {
		return err
	}
	m.qmode = q
	m.refreshQuant()
	return nil
}

// refreshQuant rebuilds the published snapshot from the current float64
// weights. Called under the weight-mutation lock.
func (m *Model) refreshQuant() {
	switch m.qmode {
	case QuantInt8:
		m.quant.Store(&quantModel{bottom: m.Bottom.Quantize(), top: m.Top.Quantize()})
	case QuantF16:
		m.quant.Store(&quantModel{bottom: m.Bottom.TruncateF16(), top: m.Top.TruncateF16()})
	default:
		m.quant.Store(nil)
	}
}

// inferencers returns the published (bottom, top) inference snapshot — the
// quantized one when active, the float64 MLPs otherwise.
func (m *Model) inferencers() (inferencer, inferencer) {
	if qm := m.quant.Load(); qm != nil {
		return qm.bottom, qm.top
	}
	return m.Bottom, m.Top
}

// NewModel builds a model for cfg with Xavier initialization from rng.
func NewModel(cfg Config, rng *tensor.RNG) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bw := append([]int{cfg.NumDense}, cfg.BottomHidden...)
	bw = append(bw, cfg.EmbeddingDim)
	topIn := cfg.EmbeddingDim + cfg.InteractionCount()
	tw := append([]int{topIn}, cfg.TopHidden...)
	tw = append(tw, 1)
	return &Model{
		Cfg:    cfg,
		Bottom: NewMLP(rng, bw),
		Top:    NewMLP(rng, tw),
	}, nil
}

// MustNewModel panics on configuration errors; for tests and examples.
func MustNewModel(cfg Config, rng *tensor.RNG) *Model {
	m, err := NewModel(cfg, rng)
	if err != nil {
		panic(err)
	}
	return m
}

// ForwardCache retains the state of one forward pass for Backward, plus the
// reusable buffers of the training path: a cache that lives across samples
// (TrainStepWith, the core train tick) makes Forward/Backward allocation-free
// after the first sample.
type ForwardCache struct {
	bottom   MLPCache
	top      MLPCache
	features [][]float64 // f_0 = bottom output, f_1.. = pooled embeddings
	sparse   [][]int32

	embBuf   []float64 // backing store for features[1..T]
	topIn    []float64
	dLogit   [1]float64
	dZ       []float64
	dFeatBuf []float64   // backing store for dFeatures
	dFeats   [][]float64 // per-feature gradient rows, reused across Backwards
}

// Forward computes the click logit for one example. When cache is non-nil it
// is filled for a subsequent Backward call.
func (m *Model) Forward(src EmbeddingSource, dense []float64, sparse [][]int32, cache *ForwardCache) float64 {
	cfg := m.Cfg
	if len(dense) != cfg.NumDense {
		panic(fmt.Sprintf("dlrm: dense len %d != %d", len(dense), cfg.NumDense))
	}
	if len(sparse) != cfg.NumTables {
		panic(fmt.Sprintf("dlrm: sparse tables %d != %d", len(sparse), cfg.NumTables))
	}
	var bc *MLPCache
	if cache != nil {
		bc = &cache.bottom
	}
	z := m.Bottom.Forward(dense, bc)

	d := cfg.EmbeddingDim
	var features [][]float64
	if cache != nil {
		if len(cache.features) != cfg.NumTables+1 {
			cache.features = make([][]float64, cfg.NumTables+1)
			cache.embBuf = make([]float64, cfg.NumTables*d)
			for t := 0; t < cfg.NumTables; t++ {
				cache.features[t+1] = cache.embBuf[t*d : (t+1)*d]
			}
		}
		features = cache.features
	} else {
		features = make([][]float64, cfg.NumTables+1)
		for t := 0; t < cfg.NumTables; t++ {
			features[t+1] = make([]float64, d)
		}
	}
	features[0] = z
	for t := 0; t < cfg.NumTables; t++ {
		src.Lookup(t, sparse[t], features[t+1])
	}

	var topIn []float64
	if cache != nil {
		topIn = cache.topIn[:0]
	} else {
		topIn = make([]float64, 0, d+cfg.InteractionCount())
	}
	topIn = append(topIn, z...)
	for i := 0; i < len(features); i++ {
		for j := i + 1; j < len(features); j++ {
			topIn = append(topIn, tensor.Dot(features[i], features[j]))
		}
	}

	var tc *MLPCache
	if cache != nil {
		tc = &cache.top
		cache.topIn = topIn
		cache.sparse = sparse
	}
	out := m.Top.Forward(topIn, tc)
	return out[0]
}

// ForwardScratch owns every buffer one inference forward pass touches: the
// per-layer MLP activations, the gathered (pooled) embedding rows, the
// interaction-feature view, and the top-MLP input. Reusing a scratch across
// requests makes PredictWith allocation-free.
//
// Ownership rules: a scratch serves one forward pass at a time — it is NOT
// safe for concurrent use; callers either thread their own (NewScratch /
// AcquireScratch+ReleaseScratch) through a serialized serving loop, or call
// Predict, which checks a pooled scratch out per call. All result slices
// handed out during a pass alias scratch storage and are invalidated by the
// next pass.
type ForwardScratch struct {
	bottom *MLPScratch
	top    *MLPScratch

	// features[0] aliases the bottom MLP output; features[1..T] are the
	// pooled embedding gather buffers, backed by embBuf.
	features [][]float64
	embBuf   []float64
	topIn    []float64
}

// NewScratch allocates a forward scratch sized for this model. The scratch is
// tied to the model's architecture; using it with a different model panics in
// the underlying shape checks.
func (m *Model) NewScratch() *ForwardScratch {
	cfg := m.Cfg
	sc := &ForwardScratch{
		bottom:   m.Bottom.NewScratch(),
		top:      m.Top.NewScratch(),
		features: make([][]float64, cfg.NumTables+1),
		embBuf:   make([]float64, cfg.NumTables*cfg.EmbeddingDim),
		topIn:    make([]float64, 0, cfg.EmbeddingDim+cfg.InteractionCount()),
	}
	for t := 0; t < cfg.NumTables; t++ {
		sc.features[t+1] = sc.embBuf[t*cfg.EmbeddingDim : (t+1)*cfg.EmbeddingDim]
	}
	return sc
}

// AcquireScratch checks a scratch out of the model's pool (allocating one
// only when the pool is empty). Pair with ReleaseScratch.
func (m *Model) AcquireScratch() *ForwardScratch {
	if sc, ok := m.scratch.Get().(*ForwardScratch); ok {
		return sc
	}
	return m.NewScratch()
}

// ReleaseScratch returns a scratch to the pool for reuse.
func (m *Model) ReleaseScratch(sc *ForwardScratch) { m.scratch.Put(sc) }

// forwardInto is the inference-only forward pass through caller-owned
// buffers: bottom MLP (in-place ReLU), embedding gather into the scratch's
// feature rows, pairwise dot-product interactions appended into the top-input
// buffer, top MLP. It performs zero heap allocations and fills no
// backpropagation cache.
func (m *Model) forwardInto(src EmbeddingSource, dense []float64, sparse [][]int32, sc *ForwardScratch) float64 {
	cfg := m.Cfg
	if len(dense) != cfg.NumDense {
		panic(fmt.Sprintf("dlrm: dense len %d != %d", len(dense), cfg.NumDense))
	}
	if len(sparse) != cfg.NumTables {
		panic(fmt.Sprintf("dlrm: sparse tables %d != %d", len(sparse), cfg.NumTables))
	}
	bottom, top := m.inferencers()
	z := bottom.InferInto(dense, sc.bottom)
	sc.features[0] = z
	for t := 0; t < cfg.NumTables; t++ {
		src.Lookup(t, sparse[t], sc.features[t+1])
	}
	topIn := append(sc.topIn[:0], z...)
	features := sc.features
	for i := 0; i < len(features); i++ {
		for j := i + 1; j < len(features); j++ {
			topIn = append(topIn, tensor.Dot(features[i], features[j]))
		}
	}
	out := top.InferInto(topIn, sc.top)
	return out[0]
}

// Predict returns the click probability for one example. This is the serving
// fast path: it runs through a pooled ForwardScratch and performs zero heap
// allocations in steady state (verified by TestPredictZeroAlloc and gated in
// CI by BenchmarkServeRequestNoAlloc).
func (m *Model) Predict(src EmbeddingSource, dense []float64, sparse [][]int32) float64 {
	sc := m.AcquireScratch()
	p := Sigmoid(m.forwardInto(src, dense, sparse, sc))
	m.ReleaseScratch(sc)
	return p
}

// PredictWith is Predict through a caller-owned scratch — the batch-amortized
// form: acquire one scratch, score many requests, release once.
func (m *Model) PredictWith(src EmbeddingSource, dense []float64, sparse [][]int32, sc *ForwardScratch) float64 {
	return Sigmoid(m.forwardInto(src, dense, sparse, sc))
}

// BatchScratch owns every buffer one batched inference pass touches: the
// packed dense input matrix, per-layer batch activations for both MLPs, the
// per-sample embedding gather rows, and the packed top-MLP input matrix.
// Like ForwardScratch it serves one pass at a time; Model pools them.
type BatchScratch struct {
	maxB   int
	bottom *MLPBatchScratch
	top    *MLPBatchScratch
	denseM tensor.Matrix // maxB × NumDense packed dense features
	topInM tensor.Matrix // maxB × (d + interactions) packed top inputs

	// features[0] aliases one bottom-output row per sample; features[1..T]
	// are the pooled embedding gather buffers, backed by embBuf and reused
	// across the batch's samples.
	features [][]float64
	embBuf   []float64
}

// NewBatchScratch allocates a batch scratch for up to maxB samples.
func (m *Model) NewBatchScratch(maxB int) *BatchScratch {
	if maxB < 1 {
		maxB = 1
	}
	cfg := m.Cfg
	topW := cfg.EmbeddingDim + cfg.InteractionCount()
	bs := &BatchScratch{
		maxB:     maxB,
		bottom:   m.Bottom.NewBatchScratch(maxB),
		top:      m.Top.NewBatchScratch(maxB),
		denseM:   tensor.Matrix{Rows: maxB, Cols: cfg.NumDense, Data: make([]float64, maxB*cfg.NumDense)},
		topInM:   tensor.Matrix{Rows: maxB, Cols: topW, Data: make([]float64, maxB*topW)},
		features: make([][]float64, cfg.NumTables+1),
		embBuf:   make([]float64, cfg.NumTables*cfg.EmbeddingDim),
	}
	for t := 0; t < cfg.NumTables; t++ {
		bs.features[t+1] = bs.embBuf[t*cfg.EmbeddingDim : (t+1)*cfg.EmbeddingDim]
	}
	return bs
}

// AcquireBatchScratch checks a batch scratch with capacity ≥ b out of the
// model's pool, allocating (with capacity rounded up to a power of two) when
// the pool is empty or its scratch is too small. Pair with
// ReleaseBatchScratch.
func (m *Model) AcquireBatchScratch(b int) *BatchScratch {
	if bs, ok := m.batch.Get().(*BatchScratch); ok && bs.maxB >= b {
		return bs
	}
	capB := 16
	for capB < b {
		capB *= 2
	}
	return m.NewBatchScratch(capB)
}

// ReleaseBatchScratch returns a batch scratch to the pool for reuse.
func (m *Model) ReleaseBatchScratch(bs *BatchScratch) { m.batch.Put(bs) }

// PredictBatch scores len(out) examples, writing click probabilities into
// out. dense, sparse, and out must have equal lengths.
//
// With sc == nil (the fast path) the batch runs through a pooled
// BatchScratch: the dense rows are packed into one matrix and each MLP runs
// one GEMM over the whole batch instead of a matvec per sample. The GEMM
// accumulates in the same order as the per-sample kernels, so results are
// bit-identical to calling Predict in a loop (TestPredictBatch). Passing a
// caller-owned ForwardScratch keeps the legacy per-sample loop.
func (m *Model) PredictBatch(src EmbeddingSource, dense [][]float64, sparse [][][]int32, out []float64, sc *ForwardScratch) {
	if len(dense) != len(out) || len(sparse) != len(out) {
		panic(fmt.Sprintf("dlrm: PredictBatch lengths dense=%d sparse=%d out=%d",
			len(dense), len(sparse), len(out)))
	}
	if sc != nil {
		for i := range out {
			out[i] = Sigmoid(m.forwardInto(src, dense[i], sparse[i], sc))
		}
		return
	}
	if len(out) == 0 {
		return
	}
	bs := m.AcquireBatchScratch(len(out))
	m.predictBatchInto(src, dense, sparse, out, bs)
	m.ReleaseBatchScratch(bs)
}

// predictBatchInto is the batched inference pass through a caller-owned
// batch scratch: pack dense rows → one bottom GEMM → per-sample embedding
// gather + interactions packed into the top-input matrix → one top GEMM.
// Zero heap allocations.
func (m *Model) predictBatchInto(src EmbeddingSource, dense [][]float64, sparse [][][]int32, out []float64, bs *BatchScratch) {
	cfg := m.Cfg
	b := len(out)
	bottom, top := m.inferencers()

	bs.denseM.Rows = b
	for i, dv := range dense {
		if len(dv) != cfg.NumDense {
			panic(fmt.Sprintf("dlrm: dense len %d != %d", len(dv), cfg.NumDense))
		}
		copy(bs.denseM.Row(i), dv)
	}
	z := bottom.InferBatchInto(&bs.denseM, bs.bottom)

	bs.topInM.Rows = b
	features := bs.features
	for i := 0; i < b; i++ {
		if len(sparse[i]) != cfg.NumTables {
			panic(fmt.Sprintf("dlrm: sparse tables %d != %d", len(sparse[i]), cfg.NumTables))
		}
		features[0] = z.Row(i)
		for t := 0; t < cfg.NumTables; t++ {
			src.Lookup(t, sparse[i][t], features[t+1])
		}
		row := append(bs.topInM.Row(i)[:0], features[0]...)
		for a := 0; a < len(features); a++ {
			for c := a + 1; c < len(features); c++ {
				row = append(row, tensor.Dot(features[a], features[c]))
			}
		}
	}
	logits := top.InferBatchInto(&bs.topInM, bs.top)
	for i := range out {
		out[i] = Sigmoid(logits.Row(i)[0])
	}
}

// Backward backpropagates dLogit through the model, accumulating dense-layer
// gradients and returning the gradient w.r.t. each table's pooled embedding.
// The returned rows alias the cache's scratch and are valid until its next
// Backward.
func (m *Model) Backward(dLogit float64, cache *ForwardCache) [][]float64 {
	cfg := m.Cfg
	cache.dLogit[0] = dLogit
	dTopIn := m.Top.Backward(cache.dLogit[:], &cache.top)

	cache.dZ = growFloats(cache.dZ, cfg.EmbeddingDim)
	dZ := cache.dZ
	copy(dZ, dTopIn[:cfg.EmbeddingDim])
	dInter := dTopIn[cfg.EmbeddingDim:]

	features := cache.features
	if len(cache.dFeats) != len(features) {
		cache.dFeats = make([][]float64, len(features))
		cache.dFeatBuf = make([]float64, len(features)*cfg.EmbeddingDim)
		for i := range cache.dFeats {
			cache.dFeats[i] = cache.dFeatBuf[i*cfg.EmbeddingDim : (i+1)*cfg.EmbeddingDim]
		}
	}
	dFeatures := cache.dFeats
	for i := range dFeatures {
		row := dFeatures[i]
		for j := range row {
			row[j] = 0
		}
	}
	k := 0
	for i := 0; i < len(features); i++ {
		for j := i + 1; j < len(features); j++ {
			g := dInter[k]
			k++
			if g == 0 {
				continue
			}
			tensor.Axpy(g, features[j], dFeatures[i])
			tensor.Axpy(g, features[i], dFeatures[j])
		}
	}
	// f_0 is the bottom output: its gradient combines the direct top-input
	// path and the interaction path.
	for i := range dZ {
		dZ[i] += dFeatures[0][i]
	}
	m.Bottom.Backward(dZ, &cache.bottom)
	return dFeatures[1:]
}

// TrainStep performs one SGD step on a single example: dense gradients are
// accumulated (call opt.Step to apply) and embedding gradients are applied
// immediately through src at rate embLR. It returns the example's BCE loss.
func (m *Model) TrainStep(src EmbeddingSource, dense []float64, sparse [][]int32, label int, embLR float64) float64 {
	var cache ForwardCache
	return m.TrainStepWith(src, dense, sparse, label, embLR, &cache)
}

// TrainStepWith is TrainStep through a caller-owned forward cache. Reusing
// one cache across a mini-batch amortizes the per-sample cache allocations
// (Forward overwrites every field it reads, so reuse is safe).
func (m *Model) TrainStepWith(src EmbeddingSource, dense []float64, sparse [][]int32, label int, embLR float64, cache *ForwardCache) float64 {
	logit := m.Forward(src, dense, sparse, cache)
	loss := BCELossWithLogit(logit, label)
	dLogit := Sigmoid(logit) - float64(label)
	dEmb := m.Backward(dLogit, cache)
	for t, g := range dEmb {
		src.ApplyGrad(t, sparse[t], g, embLR)
	}
	return loss
}

// InferLogit is the raw-logit form of PredictWith — the allocation-free
// inference pass without the sigmoid, for callers that rank by score (AUC
// evaluation) or apply their own link function.
func (m *Model) InferLogit(src EmbeddingSource, dense []float64, sparse [][]int32, sc *ForwardScratch) float64 {
	return m.forwardInto(src, dense, sparse, sc)
}

// Clone deep-copies the dense parameters, preserving the quantization mode
// (the clone gets its own published snapshot).
func (m *Model) Clone() *Model {
	c := &Model{Cfg: m.Cfg, Bottom: m.Bottom.Clone(), Top: m.Top.Clone(), qmode: m.qmode}
	c.refreshQuant()
	return c
}

// CopyWeightsFrom overwrites dense parameters from src and republishes the
// quantized snapshot so served predictions pick up the new weights.
func (m *Model) CopyWeightsFrom(src *Model) {
	m.Bottom.CopyWeightsFrom(src.Bottom)
	m.Top.CopyWeightsFrom(src.Top)
	m.refreshQuant()
}

// DenseParamCount returns the number of dense trainable scalars.
func (m *Model) DenseParamCount() int {
	return m.Bottom.ParamCount() + m.Top.ParamCount()
}
