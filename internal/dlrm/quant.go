package dlrm

import (
	"fmt"

	"liveupdate/internal/tensor"
)

// QuantMode selects the numeric format of the published inference weights.
// Training always runs in float64; quantization produces a read-only snapshot
// of the dense MLPs at publish time (model construction, weight copy-in), so
// it changes served probabilities only — never gradients or virtual-time
// statistics.
type QuantMode string

const (
	// QuantNone serves float64 weights (the default, and the baseline the
	// AUC gate compares against).
	QuantNone QuantMode = "none"
	// QuantInt8 serves int8 weights with one symmetric scale per output row;
	// dot products run in int32 with no per-element dequantization.
	QuantInt8 QuantMode = "int8"
	// QuantF16 serves float64 weights truncated to f16-style precision (10
	// explicit mantissa bits, float32 exponent range).
	QuantF16 QuantMode = "f16"
)

// QuantModes lists the supported modes in display order.
func QuantModes() []QuantMode { return []QuantMode{QuantNone, QuantInt8, QuantF16} }

// ParseQuantMode validates a mode string ("" means none).
func ParseQuantMode(s string) (QuantMode, error) {
	switch QuantMode(s) {
	case "", QuantNone:
		return QuantNone, nil
	case QuantInt8:
		return QuantInt8, nil
	case QuantF16:
		return QuantF16, nil
	}
	return "", fmt.Errorf("dlrm: unknown quantization mode %q (want none, int8, or f16)", s)
}

// inferencer is the inference contract a published MLP snapshot satisfies:
// the float64 *MLP, its f16-truncated clone, and *QuantizedMLP all implement
// it, so the forward pass dispatches on the published snapshot without
// branching on the mode.
type inferencer interface {
	InferInto(x []float64, s *MLPScratch) []float64
	InferBatchInto(x *tensor.Matrix, s *MLPBatchScratch) *tensor.Matrix
}

// quantLayer is one published int8 layer.
type quantLayer struct {
	qw   *tensor.QuantizedMatrix
	b    []float64
	relu bool
}

// QuantizedMLP is an int8 snapshot of an MLP, built by MLP.Quantize. It is
// immutable after construction and safe for concurrent readers.
type QuantizedMLP struct {
	layers []quantLayer
}

// Quantize snapshots the MLP's weights into int8 with per-row scales. Biases
// stay float64: they are added after the int32 dot product is rescaled.
func (m *MLP) Quantize() *QuantizedMLP {
	q := &QuantizedMLP{layers: make([]quantLayer, len(m.Layers))}
	for i, l := range m.Layers {
		q.layers[i] = quantLayer{
			qw:   tensor.Quantize(l.W),
			b:    append([]float64(nil), l.B...),
			relu: l.ReLU,
		}
	}
	return q
}

// TruncateF16 returns a clone of the MLP with every weight and bias passed
// through tensor.TruncateF16, emulating half-precision weight storage while
// keeping the float64 kernels.
func (m *MLP) TruncateF16() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Layer{
			W:     tensor.TruncateF16Matrix(l.W),
			B:     make([]float64, len(l.B)),
			ReLU:  l.ReLU,
			gradW: tensor.NewMatrix(l.W.Rows, l.W.Cols),
			gradB: make([]float64, len(l.B)),
		}
		for i, v := range l.B {
			nl.B[i] = tensor.TruncateF16(v)
		}
		c.Layers = append(c.Layers, nl)
	}
	return c
}

// InferInto runs the quantized stack through the scratch with zero heap
// allocations: each layer quantizes its input activation once (shared scale)
// into the scratch's int8 buffer, runs the int32 dot-product kernel, then
// adds the float64 bias and applies ReLU in place.
func (q *QuantizedMLP) InferInto(x []float64, s *MLPScratch) []float64 {
	if len(s.acts) != len(q.layers) {
		panic(fmt.Sprintf("dlrm: scratch has %d layer buffers, quantized MLP has %d layers", len(s.acts), len(q.layers)))
	}
	out := x
	for i := range q.layers {
		l := &q.layers[i]
		xq := s.qx[:l.qw.Cols]
		sx := tensor.QuantizeVectorInto(xq, out)
		buf := s.acts[i]
		l.qw.MatVecInto(buf, xq, sx)
		for j := range buf {
			buf[j] += l.b[j]
		}
		if l.relu {
			tensor.ReLUInPlace(buf)
		}
		out = buf
	}
	return out
}

// InferBatchInto runs each row of x through InferInto and collects the
// results in the batch scratch's final activation matrix. The int8 kernel
// quantizes activations per row, so the batch cannot fold into one integer
// GEMM; batching still amortizes scratch acquisition and keeps the call
// shape uniform with the float path.
func (q *QuantizedMLP) InferBatchInto(x *tensor.Matrix, s *MLPBatchScratch) *tensor.Matrix {
	if x.Rows > s.maxB {
		panic(fmt.Sprintf("dlrm: batch %d exceeds scratch capacity %d", x.Rows, s.maxB))
	}
	last := &s.acts[len(s.acts)-1]
	last.Rows = x.Rows
	for r := 0; r < x.Rows; r++ {
		out := q.InferInto(x.Row(r), s.row)
		copy(last.Row(r), out)
	}
	return last
}
