package dlrm

import (
	"math"
	"testing"

	"liveupdate/internal/tensor"
)

func TestParseQuantMode(t *testing.T) {
	for in, want := range map[string]QuantMode{
		"": QuantNone, "none": QuantNone, "int8": QuantInt8, "f16": QuantF16,
	} {
		got, err := ParseQuantMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseQuantMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseQuantMode("fp8"); err == nil {
		t.Fatal("ParseQuantMode must reject unknown modes")
	}
	if len(QuantModes()) != 3 || QuantModes()[0] != QuantNone {
		t.Fatalf("QuantModes() = %v", QuantModes())
	}
}

func TestSetQuantizationChangesAndRestoresPredictions(t *testing.T) {
	m, b := newSetup(21)
	sparse := [][]int32{{1, 7}, {3}, {9, 11, 2}}
	dense := []float64{0.5, -1, 2, 0.25}
	base := m.Predict(b, dense, sparse)

	for _, mode := range []QuantMode{QuantInt8, QuantF16} {
		if err := m.SetQuantization(mode); err != nil {
			t.Fatal(err)
		}
		if m.QuantMode() != mode {
			t.Fatalf("QuantMode() = %v, want %v", m.QuantMode(), mode)
		}
		q := m.Predict(b, dense, sparse)
		if q == base {
			t.Fatalf("quant=%s prediction bit-identical to float64; path not active", mode)
		}
		// Quantization error must stay small — the AUC gate's per-sample analog.
		if math.Abs(q-base) > 0.05 {
			t.Fatalf("quant=%s prediction %v too far from float64 %v", mode, q, base)
		}
		if err := m.SetQuantization(QuantNone); err != nil {
			t.Fatal(err)
		}
		if got := m.Predict(b, dense, sparse); got != base {
			t.Fatalf("restoring none must restore the float64 prediction: %v != %v", got, base)
		}
	}
	if err := m.SetQuantization("fp8"); err == nil {
		t.Fatal("SetQuantization must reject unknown modes")
	}
}

// TestCopyWeightsRefreshesQuantSnapshot: a full-sync weight install must
// republish the quantized snapshot, or serving would keep scoring with stale
// weights forever.
func TestCopyWeightsRefreshesQuantSnapshot(t *testing.T) {
	m, b := newSetup(22)
	if err := m.SetQuantization(QuantInt8); err != nil {
		t.Fatal(err)
	}
	sparse := [][]int32{{1}, {2}, {3}}
	dense := []float64{1, 2, 3, 4}
	before := m.Predict(b, dense, sparse)

	fresh, _ := newSetup(99) // different seed → different weights
	m.CopyWeightsFrom(fresh)
	after := m.Predict(b, dense, sparse)
	if after == before {
		t.Fatal("prediction unchanged after CopyWeightsFrom; quant snapshot is stale")
	}
	// The refreshed snapshot must match quantizing the fresh weights directly.
	if err := fresh.SetQuantization(QuantInt8); err != nil {
		t.Fatal(err)
	}
	if want := fresh.Predict(b, dense, sparse); after != want {
		t.Fatalf("refreshed snapshot prediction %v != fresh model's %v", after, want)
	}
}

// TestCloneKeepsQuantMode: clones publish their own snapshot in the same mode.
func TestCloneKeepsQuantMode(t *testing.T) {
	m, b := newSetup(23)
	if err := m.SetQuantization(QuantF16); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if c.QuantMode() != QuantF16 {
		t.Fatalf("clone QuantMode() = %v, want f16", c.QuantMode())
	}
	sparse := [][]int32{{4}, {5}, {6}}
	dense := []float64{0.1, 0.2, 0.3, 0.4}
	if got, want := c.Predict(b, dense, sparse), m.Predict(b, dense, sparse); got != want {
		t.Fatalf("clone prediction %v != original %v", got, want)
	}
}

// TestQuantPredictZeroAlloc: the quantized serving path must stay on the
// zero-allocation fast path — activation quantization runs through the
// scratch's int8 buffer.
func TestQuantPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, mode := range []QuantMode{QuantInt8, QuantF16} {
		m, b := newSetup(24)
		if err := m.SetQuantization(mode); err != nil {
			t.Fatal(err)
		}
		sc := m.NewScratch()
		sparse := [][]int32{{1, 7}, {3}, {9, 11, 2}}
		dense := []float64{0.5, -1, 2, 0.25}
		if n := testing.AllocsPerRun(200, func() { m.PredictWith(b, dense, sparse, sc) }); n != 0 {
			t.Fatalf("quant=%s PredictWith allocates %v per run, want 0", mode, n)
		}
	}
}

// TestPredictBatchZeroAlloc: the batched GEMM path must be allocation-free in
// steady state (warmed batch-scratch pool), for the float and quantized paths.
func TestPredictBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, mode := range []QuantMode{QuantNone, QuantInt8} {
		m, b := newSetup(25)
		if err := m.SetQuantization(mode); err != nil {
			t.Fatal(err)
		}
		const n = 16
		dense := make([][]float64, n)
		sparse := make([][][]int32, n)
		for i := range dense {
			dense[i] = []float64{float64(i), 1, -1, 0.5}
			sparse[i] = [][]int32{{int32(i)}, {int32(2 * i)}, {int32(i), int32(i + 1)}}
		}
		out := make([]float64, n)
		m.PredictBatch(b, dense, sparse, out, nil) // warm the pool
		if a := testing.AllocsPerRun(200, func() { m.PredictBatch(b, dense, sparse, out, nil) }); a != 0 {
			t.Fatalf("quant=%s PredictBatch allocates %v per run, want 0", mode, a)
		}
	}
}

// TestQuantPredictBatchMatchesSequential: the batched quantized path must be
// bit-identical to per-sample quantized Predicts, like the float path.
func TestQuantPredictBatchMatchesSequential(t *testing.T) {
	m, b := newSetup(26)
	if err := m.SetQuantization(QuantInt8); err != nil {
		t.Fatal(err)
	}
	const n = 9 // odd: exercises the 2x2 tile remainder
	dense := make([][]float64, n)
	sparse := make([][][]int32, n)
	for i := range dense {
		dense[i] = []float64{float64(i) * 0.3, -1, 2, 0.25}
		sparse[i] = [][]int32{{int32(i)}, {int32(i + 3)}, {int32(i), int32(i + 1)}}
	}
	out := make([]float64, n)
	m.PredictBatch(b, dense, sparse, out, nil)
	for i := range out {
		if want := m.Predict(b, dense[i], sparse[i]); out[i] != want {
			t.Fatalf("quant batch[%d] = %v, want %v", i, out[i], want)
		}
	}
}

// TestTrainStepWithSteadyStateAllocs: a reused forward cache makes the whole
// train step — forward, backward, embedding scatter — allocation-free after
// the first sample.
func TestTrainStepWithSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	m, b := newSetup(27)
	sparse := [][]int32{{1, 7}, {3}, {9, 11, 2}}
	dense := []float64{0.5, -1, 2, 0.25}
	var cache ForwardCache
	m.TrainStepWith(b, dense, sparse, 1, 0.05, &cache) // warm the cache buffers
	if a := testing.AllocsPerRun(200, func() {
		m.TrainStepWith(b, dense, sparse, 1, 0.05, &cache)
	}); a != 0 {
		t.Fatalf("TrainStepWith allocates %v per run with a warm cache, want 0", a)
	}
}

// TestInferBatchIntoMatchesInferInto: MLP batch GEMM inference is
// bit-identical to per-sample InferInto for odd batch sizes.
func TestInferBatchIntoMatchesInferInto(t *testing.T) {
	rng := tensor.NewRNG(31)
	mlp := NewMLP(rng, []int{5, 7, 3})
	const n = 5
	x := tensor.RandomMatrix(rng, n, 5, 1)
	bs := mlp.NewBatchScratch(n)
	out := mlp.InferBatchInto(x, bs)
	sc := mlp.NewScratch()
	for i := 0; i < n; i++ {
		want := mlp.InferInto(x.Row(i), sc)
		for j, v := range want {
			if out.Row(i)[j] != v {
				t.Fatalf("batch row %d elem %d: %v != %v", i, j, out.Row(i)[j], v)
			}
		}
	}
}
