//go:build !race

package dlrm

// raceEnabled gates allocation-count assertions; see race_on_test.go.
const raceEnabled = false
