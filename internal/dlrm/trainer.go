package dlrm

import (
	"liveupdate/internal/metrics"
	"liveupdate/internal/trace"
)

// Trainer couples a Model, an EmbeddingSource, and an optimizer into the
// mini-batch training loop of paper §II-A.
type Trainer struct {
	Model *Model
	Emb   EmbeddingSource
	Opt   Optimizer
	EmbLR float64
}

// TrainBatch runs one mini-batch (forward + backward per sample, one dense
// optimizer step at the end) and returns the mean BCE loss.
func (tr *Trainer) TrainBatch(batch []trace.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	total := 0.0
	var cache ForwardCache // reused across the batch (Forward overwrites it)
	for _, s := range batch {
		total += tr.Model.TrainStepWith(tr.Emb, s.Dense, s.Sparse, s.Label, tr.EmbLR, &cache)
	}
	tr.Opt.Step(tr.Model.Bottom, len(batch))
	tr.Opt.Step(tr.Model.Top, len(batch))
	return total / float64(len(batch))
}

// TrainEpochs runs the samples in fixed-size mini-batches for the given
// number of passes and returns the final mean batch loss.
func (tr *Trainer) TrainEpochs(samples []trace.Sample, batchSize, epochs int) float64 {
	if batchSize <= 0 {
		batchSize = 32
	}
	last := 0.0
	for e := 0; e < epochs; e++ {
		for i := 0; i < len(samples); i += batchSize {
			end := i + batchSize
			if end > len(samples) {
				end = len(samples)
			}
			last = tr.TrainBatch(samples[i:end])
		}
	}
	return last
}

// EvaluateAUC scores samples with the model and returns the AUC-ROC. Scoring
// runs through one shared inference scratch (raw logits — the ranking is
// sigmoid-invariant, and the values match the historical cache-free Forward
// bit for bit).
func EvaluateAUC(m *Model, src EmbeddingSource, samples []trace.Sample) float64 {
	scores := make([]float64, len(samples))
	labels := make([]int, len(samples))
	sc := m.AcquireScratch()
	for i, s := range samples {
		scores[i] = m.InferLogit(src, s.Dense, s.Sparse, sc)
		labels[i] = s.Label
	}
	m.ReleaseScratch(sc)
	return metrics.AUC(scores, labels)
}

// EvaluateLogLoss scores samples and returns the mean BCE.
func EvaluateLogLoss(m *Model, src EmbeddingSource, samples []trace.Sample) float64 {
	scores := make([]float64, len(samples))
	labels := make([]int, len(samples))
	for i, s := range samples {
		scores[i] = m.Predict(src, s.Dense, s.Sparse)
		labels[i] = s.Label
	}
	return metrics.LogLoss(scores, labels)
}

// ConfigForProfile derives a standard DLRM architecture from a trace profile:
// bottom MLP NumDense→64→d, top MLP →64→32→1.
func ConfigForProfile(p trace.Profile) Config {
	return Config{
		NumTables:    p.NumTables,
		EmbeddingDim: p.EmbeddingDim,
		NumDense:     p.NumDense,
		BottomHidden: []int{64},
		TopHidden:    []int{64, 32},
	}
}
