// Package driver pumps a request trace through a Server from N client
// goroutines — the load-generation layer that turns the thread-safe serving
// stack into measured parallel throughput.
//
// # Determinism
//
// The driver is built so that every virtual-time result is identical no
// matter how many workers drive the load:
//
//   - One sequencer goroutine draws samples from the workload in trace
//     order, so the generated stream never depends on worker count.
//   - Each sample is routed to its shard (a Cluster replica) at sequencing
//     time, through the server's own deterministic routing, and delivered
//     over a FIFO queue owned by exactly one worker (shard % workers). A
//     shard's requests are therefore served in trace order regardless of how
//     workers interleave in wall-clock time.
//   - Each worker owns a private RNG stream seeded from (Seed, worker id)
//     for its latency reservoir, so per-worker reports are reproducible
//     run-to-run at a fixed seed and concurrency.
//
// Wall-clock fields of the Report (Elapsed, QPS, per-worker Busy) are real
// measured time and naturally vary between runs; everything derived from the
// virtual clock does not.
//
// # Batching
//
// With Config.BatchSize > 1 against a server exposing a batch path, each
// lane worker opportunistically coalesces consecutive same-shard queued
// items into one ServeShardBatch/ServeBatch call — the zero-allocation
// amortized fast path through the serving stack. Coalescing never reorders a
// queue and never waits for a batch to fill, so per-shard request order — and
// with it every virtual-time statistic, worker-count invariance included — is
// identical to unbatched driving (TestDriveBatchedMatchesUnbatched).
//
// # Chaos schedules
//
// A drive over an Elastic server can carry a fleet.Schedule of membership
// events (kill/replace/join/leave/scale) pinned to virtual timestamps. The
// sequencer evaluates the schedule at drain points — every ChaosEvery
// routed requests it waits for all in-flight requests to finish, reads the
// fleet's virtual clock, and applies every due event. Over a drained trace
// prefix the fleet clock depends only on which requests were served and
// where they were routed, both of which are deterministic, so the request
// index at which each event lands (and with it every downstream
// virtual-time statistic) is identical for any worker count. Shard lanes of
// replicas that join mid-drive attach to workers by the same static
// slot%workers rule; lanes of failed replicas simply stop receiving routed
// traffic.
package driver

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/fleet"
	"liveupdate/internal/metrics"
	"liveupdate/internal/obs"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

// Server is the minimal serving surface the driver needs; it is structurally
// identical to the public liveupdate.Server interface (internal packages
// cannot import the root package).
type Server interface {
	Serve(trace.Sample) (core.Response, error)
	Stats() core.Stats
}

// ShardedServer is implemented by servers whose state is partitioned into
// independently-serving shards — a Cluster's replicas. The driver uses it to
// route each sample once, deterministically, at sequencing time, and to
// serve different shards from different workers in parallel. Servers that do
// not implement it (a single System) are driven through one FIFO lane.
type ShardedServer interface {
	Server
	// NumShards returns the number of independent shards (≥ 1).
	NumShards() int
	// ShardOf routes one sample to a shard. Called from the sequencer
	// goroutine only, in trace order.
	ShardOf(trace.Sample) int
	// ServeShard serves a pre-routed sample on its shard.
	ServeShard(int, trace.Sample) (core.Response, error)
}

// BatchedServer is a ShardedServer whose shards accept a coalesced run of
// same-shard requests in one amortized call — a Cluster. With
// Config.BatchSize > 1 the driver's lane workers drain up to BatchSize
// consecutive same-shard items from their queue into one ServeShardBatch
// call, amortizing buffer acquisition and lock traffic while per-shard FIFO
// order (and with it every virtual-time statistic) is preserved exactly.
type BatchedServer interface {
	ShardedServer
	// ServeShardBatch serves pre-routed same-shard samples in order, filling
	// resps (same length) with the per-request responses.
	ServeShardBatch(shard int, samples []trace.Sample, resps []core.Response) error
}

// BatchServer is a non-sharded Server with an amortized batch path (a single
// core.System): all load flows through one lane, and the lane's worker
// coalesces into ServeBatch when Config.BatchSize > 1.
type BatchServer interface {
	Server
	// ServeBatch serves samples in order, filling resps (same length).
	ServeBatch(samples []trace.Sample, resps []core.Response) error
}

// Elastic is a sharded server whose replica membership can change while it
// serves — a Cluster backed by the fleet controller. The driver needs it to
// run a chaos schedule: events apply through ApplyChaos, and VirtualNow
// anchors the schedule's virtual timestamps.
type Elastic interface {
	ShardedServer
	// ApplyChaos applies one membership event (kill/replace/join/leave/
	// scale).
	ApplyChaos(fleet.Event) error
	// VirtualNow returns the fleet's virtual clock.
	VirtualNow() float64
}

// Config configures a drive.
type Config struct {
	// Requests is the number of samples to pump (required, > 0).
	Requests int

	// Workers is the number of client goroutines. Zero or negative defaults
	// to GOMAXPROCS. Parallelism is additionally bounded by the server's
	// shard count: with W workers and S shards, min(W, S) workers carry
	// load and the rest idle (and say so in their WorkerStats).
	Workers int

	// QueueDepth bounds each worker's request queue; the sequencer blocks
	// when a queue is full (closed-loop back-pressure). Zero defaults to 128.
	QueueDepth int

	// Seed seeds the per-worker RNG streams used for latency reservoir
	// sampling. The workload itself carries its own seed.
	Seed uint64

	// ProgressEvery, when > 0 with OnProgress set, invokes OnProgress after
	// every ProgressEvery served requests (calls are serialized).
	ProgressEvery int
	OnProgress    func(served uint64)

	// Chaos is a scripted membership-event schedule applied during the
	// drive; it requires a server implementing Elastic. Events fire at
	// deterministic drain points: every ChaosEvery routed requests the
	// sequencer waits for all in-flight requests to complete, reads the
	// fleet's virtual clock — which, over a drained prefix of the trace, is
	// a pure function of (workload seed, schedule so far) — and applies
	// every event whose timestamp has been reached. The request index at
	// which each event lands is therefore identical for any worker count.
	Chaos fleet.Schedule

	// ChaosEvery is the drain-point cadence in requests (default 64).
	// Smaller values tighten how closely event timestamps are honored at
	// the cost of more frequent pipeline drains.
	ChaosEvery int

	// BatchSize, when > 1 against a server with a batch path (BatchedServer
	// or BatchServer), lets each lane worker coalesce up to BatchSize
	// consecutive same-shard queued requests into one amortized serve call.
	// Coalescing is opportunistic — a worker never waits for a batch to
	// fill, so batches only form when the queue runs ahead of the server —
	// and order-preserving, so virtual-time statistics are identical to
	// unbatched driving at any worker count. 0 or 1 disables batching, as
	// does a server without a batch path.
	BatchSize int
}

// reservoirCap bounds per-worker latency reservoirs (algorithm R).
const reservoirCap = 1024

// WorkerStats is one worker's share of a drive.
type WorkerStats struct {
	Worker      int           // worker index
	Shards      []int         // shards this worker owned (empty = idle)
	Served      uint64        // requests this worker served
	Batches     uint64        // serve calls issued (== Served when unbatched)
	Busy        time.Duration // wall-clock time spent inside Serve
	MeanLatency float64       // mean virtual latency of this worker's requests, seconds
	P99Latency  float64       // reservoir-estimated virtual P99, seconds (NaN if idle)
}

// Report summarizes a drive. Virtual-time fields are deterministic for a
// fixed workload seed (and, for per-worker fields, fixed driver seed and
// concurrency); wall-clock fields are measured.
type Report struct {
	Requests  int    // requests asked for
	Served    uint64 // requests actually served (== Requests unless cancelled)
	Workers   int    // client goroutines
	Shards    int    // server shards driven
	BatchSize int    // effective coalescing cap (1 = unbatched)
	Batches   uint64 // serve calls issued across all workers

	Elapsed time.Duration // wall-clock drive duration
	QPS     float64       // Served / Elapsed (wall-clock throughput)

	VirtualTime float64 // server's virtual clock after the drive, seconds
	VirtualQPS  float64 // Served / VirtualTime (simulated throughput)

	// SyncStallSeconds is the virtual time the fleet spent in priority-merge
	// syncs during the drive (zero for a single System), split into the
	// compute phase (snapshot gather + merge — runs off the serving critical
	// path under the asynchronous pipeline) and the publish phase
	// (broadcasting and installing the merged state). In barrier mode the
	// whole stall sits between requests; in async mode serving overlaps it.
	SyncStallSeconds   float64
	SyncComputeSeconds float64
	SyncPublishSeconds float64
	// SyncWireBytes is the traffic the simulated sync collective moved during
	// the drive (after delta/compression savings); SyncCompressSeconds is the
	// modeled cpu time payload compression cost (also inside
	// SyncStallSeconds). Both zero for a single System.
	SyncWireBytes       int64
	SyncCompressSeconds float64

	Cancelled bool // context cancelled before all requests were served

	// Chaos lists the schedule events applied during the drive, in
	// application order; ChaosSkipped counts scheduled events whose virtual
	// timestamp the trace never reached. Both are deterministic for a fixed
	// (workload seed, schedule), regardless of worker count.
	Chaos        []AppliedEvent
	ChaosSkipped int

	PerWorker []WorkerStats // per-worker breakdown, in worker order
	Final     core.Stats    // server stats snapshot taken after the drive

	// Stages is the sampled wall-clock stage-latency breakdown of this
	// drive (route, queue wait, forward, commit, sync publish), present only
	// when the server carries telemetry with stage tracing enabled. Stages
	// that recorded no spans during the drive are omitted. Wall-clock
	// measurements: not part of the determinism contract.
	Stages []StageStat
}

// StageStat is one pipeline stage's sampled wall-clock timing over a drive.
type StageStat struct {
	Stage   string  // stage name (obs.Stage.String())
	Count   uint64  // sampled spans recorded during the drive
	TotalNs int64   // summed span duration, nanoseconds
	MeanNs  float64 // TotalNs / Count
}

// AppliedEvent records one chaos event's application point.
type AppliedEvent struct {
	Event   fleet.Event
	Request int     // trace index the sequencer was about to route
	Virtual float64 // fleet virtual clock at the drain point, seconds
}

// drainGate lets the sequencer wait until every routed request has been
// served — the quiescent point at which chaos events apply. It is active
// only when a chaos schedule is present, so chaos-free drives pay nothing.
type drainGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	aborted  bool
}

func newDrainGate() *drainGate {
	g := &drainGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *drainGate) add() {
	g.mu.Lock()
	g.inflight++
	g.mu.Unlock()
}

func (g *drainGate) done() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// abort wakes any waiter permanently (drive cancelled or failed).
func (g *drainGate) abort() {
	g.mu.Lock()
	g.aborted = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// wait blocks until in-flight work drains; false means the drive aborted.
func (g *drainGate) wait() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.inflight > 0 && !g.aborted {
		g.cond.Wait()
	}
	return !g.aborted
}

// item is one routed request in flight from the sequencer to a worker.
type item struct {
	shard  int
	sample trace.Sample
}

// Drive pumps cfg.Requests samples from next through srv. It returns a
// non-nil error only for configuration errors or a Serve error (which
// aborts the drive); context cancellation is reported via Report.Cancelled
// with a nil error, leaving the partial report usable.
func Drive(ctx context.Context, srv Server, next func() trace.Sample, cfg Config) (Report, error) {
	if srv == nil {
		return Report{}, fmt.Errorf("driver: nil server")
	}
	if next == nil {
		return Report{}, fmt.Errorf("driver: nil workload")
	}
	if cfg.Requests <= 0 {
		return Report{}, fmt.Errorf("driver: Requests must be positive, got %d", cfg.Requests)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 128
	}

	shards := 1
	sharded, isSharded := srv.(ShardedServer)
	if isSharded {
		shards = sharded.NumShards()
		if shards < 1 {
			return Report{}, fmt.Errorf("driver: server reports %d shards", shards)
		}
	}

	// Batching: only effective when the server has an amortized batch path.
	batchCap := cfg.BatchSize
	if batchCap < 1 {
		batchCap = 1
	}
	var shardBatcher BatchedServer
	var plainBatcher BatchServer
	if batchCap > 1 {
		if isSharded {
			if bs, ok := srv.(BatchedServer); ok {
				shardBatcher = bs
			} else {
				batchCap = 1
			}
		} else if bs, ok := srv.(BatchServer); ok {
			plainBatcher = bs
		} else {
			batchCap = 1
		}
	}

	// Stage-breakdown baseline: when the server carries telemetry with stage
	// tracing on, the report diffs the tracer's per-stage aggregates across
	// the drive, so Stages covers this drive only — not whatever ran before.
	var driveTracer *obs.Tracer
	var stagesBefore [obs.NumStages]obs.StageAgg
	if tp, ok := srv.(interface{ Telemetry() *obs.Telemetry }); ok {
		driveTracer = tp.Telemetry().Tracer()
		stagesBefore = driveTracer.StageTotals()
	}

	var elastic Elastic
	chaos := cfg.Chaos.Sorted()
	if len(chaos) > 0 {
		if err := chaos.Validate(); err != nil {
			return Report{}, fmt.Errorf("driver: %w", err)
		}
		e, ok := srv.(Elastic)
		if !ok {
			return Report{}, fmt.Errorf("driver: chaos schedule needs an elastic server, got %T", srv)
		}
		elastic = e
	}
	checkEvery := cfg.ChaosEvery
	if checkEvery <= 0 {
		checkEvery = 64
	}

	// ctx drives external cancellation; abort stops the drive on the first
	// serve error without overloading the caller's context.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// A context-aware server (the network client) gets the drive context so
	// its retry sleeps and per-attempt deadlines die with the drive. Rebind
	// Background on exit: post-drive calls must outlive this cancel.
	if cb, ok := srv.(interface{ BindContext(context.Context) }); ok {
		cb.BindContext(ctx)
		defer cb.BindContext(context.Background())
	}
	var (
		errOnce  sync.Once
		driveErr error
	)
	abort := func(err error) {
		errOnce.Do(func() { driveErr = err })
		cancel()
	}

	queues := make([]chan item, workers)
	for w := range queues {
		queues[w] = make(chan item, depth)
	}
	// Static shard→worker ownership. It extends to shards that do not exist
	// yet: a replica joining mid-drive (chaos) gets a lane on worker
	// slot%workers with per-shard FIFO order intact, no queue rebuild.
	ownerOf := func(shard int) int { return shard % workers }

	var gate *drainGate
	if elastic != nil {
		gate = newDrainGate()
		// Wake a draining sequencer if the drive dies while it waits.
		go func() {
			<-ctx.Done()
			gate.abort()
		}()
	}

	var progress metrics.Counter
	var progressMu sync.Mutex
	perWorker := make([]WorkerStats, workers)

	// Chaos bookkeeping: written only by the sequencer, read after its
	// WaitGroup settles.
	var applied []AppliedEvent
	chaosSkipped := 0

	start := time.Now()

	// Sequencer: the only goroutine that touches the workload and the
	// router, so sample generation and shard assignment are one
	// deterministic sequence. FIFO channels with static shard→worker
	// ownership then preserve per-shard order end to end.
	var seqWG sync.WaitGroup
	seqWG.Add(1)
	go func() {
		defer seqWG.Done()
		defer func() {
			for _, q := range queues {
				close(q)
			}
		}()
		seqShards := shards
		nextEv := 0
		// Computed in a defer so a cancelled or aborted drive still reports
		// how many scheduled events never fired.
		defer func() { chaosSkipped = len(chaos) - nextEv }()
		for i := 0; i < cfg.Requests; i++ {
			// Chaos drain point: all in-flight requests complete, so the
			// fleet clock read here is a pure function of the served prefix
			// — the same at this request index for any worker count.
			if gate != nil && nextEv < len(chaos) && i > 0 && i%checkEvery == 0 {
				if !gate.wait() {
					return
				}
				now := elastic.VirtualNow()
				for nextEv < len(chaos) && chaos[nextEv].At.Seconds() <= now {
					ev := chaos[nextEv]
					if err := elastic.ApplyChaos(ev); err != nil {
						abort(fmt.Errorf("driver: chaos event %s: %w", ev, err))
						return
					}
					applied = append(applied, AppliedEvent{Event: ev, Request: i, Virtual: now})
					nextEv++
				}
				seqShards = elastic.NumShards() // capacity may have grown
			}
			s := next()
			shard := 0
			if isSharded {
				shard = sharded.ShardOf(s)
				if shard < 0 || shard >= seqShards {
					abort(fmt.Errorf("driver: ShardOf routed request %d to shard %d of %d", i, shard, seqShards))
					return
				}
			}
			if gate != nil {
				gate.add()
			}
			select {
			case queues[ownerOf(shard)] <- item{shard: shard, sample: s}:
			case <-ctx.Done():
				if gate != nil {
					gate.done()
				}
				return
			}
		}
	}()

	var workWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workWG.Add(1)
		go func(w int) {
			defer workWG.Done()
			rng := tensor.NewRNG(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(w+1)))
			reservoir := make([]float64, 0, reservoirCap)
			var seen, batches uint64
			var latSum float64
			var busy time.Duration
			q := queues[w]
			batch := make([]trace.Sample, 0, batchCap)
			resps := make([]core.Response, batchCap)
			var held *item // same-queue item that broke a coalescing run
			var heldItem item
		loop:
			for {
				// First item of the next serve call: a held-over item from
				// the previous coalescing run, or a blocking receive.
				var first item
				if held != nil {
					first, held = *held, nil
				} else {
					select {
					case it, ok := <-q:
						if !ok {
							break loop // sequencer done, queue drained
						}
						first = it
					case <-ctx.Done():
						break loop
					}
				}
				shard := first.shard
				batch = append(batch[:0], first.sample)
				// Opportunistic coalescing: drain consecutive queued items
				// for the same shard, never waiting for more to arrive.
				// Stopping at the first foreign-shard item preserves the
				// queue's FIFO order for every shard this worker owns.
			fill:
				for batchCap > 1 && len(batch) < batchCap {
					select {
					case it, ok := <-q:
						if !ok {
							break fill // closed: serve what we have, then exit via the outer receive
						}
						if it.shard != shard {
							heldItem = it
							held = &heldItem
							break fill
						}
						batch = append(batch, it.sample)
					default:
						break fill
					}
				}

				t0 := time.Now()
				var err error
				switch {
				case shardBatcher != nil:
					err = shardBatcher.ServeShardBatch(shard, batch, resps[:len(batch)])
				case plainBatcher != nil:
					err = plainBatcher.ServeBatch(batch, resps[:len(batch)])
				case isSharded:
					resps[0], err = sharded.ServeShard(shard, batch[0])
				default:
					resps[0], err = srv.Serve(batch[0])
				}
				busy += time.Since(t0)
				batches++
				if gate != nil {
					for range batch {
						gate.done()
					}
				}
				if err != nil {
					abort(fmt.Errorf("driver: worker %d shard %d: %w", w, shard, err))
					break loop
				}
				for _, resp := range resps[:len(batch)] {
					seen++
					latSum += resp.Latency
					// Algorithm R reservoir on the worker's private stream.
					if len(reservoir) < reservoirCap {
						reservoir = append(reservoir, resp.Latency)
					} else if j := rng.Intn(int(seen)); j < reservoirCap {
						reservoir[j] = resp.Latency
					}
					if cfg.OnProgress != nil && cfg.ProgressEvery > 0 {
						if n := progress.Inc(); n%uint64(cfg.ProgressEvery) == 0 {
							progressMu.Lock()
							cfg.OnProgress(n)
							progressMu.Unlock()
						}
					}
				}
			}
			ws := WorkerStats{Worker: w, Served: seen, Batches: batches, Busy: busy}
			ws.P99Latency = math.NaN() // idle: quantile undefined, mirror Cluster.Stats
			if seen > 0 {
				ws.MeanLatency = latSum / float64(seen)
				ws.P99Latency = metrics.Quantile(reservoir, 0.99)
			}
			perWorker[w] = ws
		}(w)
	}

	workWG.Wait()
	seqWG.Wait()
	elapsed := time.Since(start)

	// Shard count and lane ownership are reported against the final
	// topology: chaos may have grown the slot capacity mid-drive.
	if isSharded {
		shards = sharded.NumShards()
	}
	for s := 0; s < shards; s++ {
		w := ownerOf(s)
		perWorker[w].Shards = append(perWorker[w].Shards, s)
	}

	var servedTotal, batchTotal uint64
	for _, ws := range perWorker {
		servedTotal += ws.Served
		batchTotal += ws.Batches
	}
	rep := Report{
		Requests:  cfg.Requests,
		Served:    servedTotal,
		Workers:   workers,
		Shards:    shards,
		BatchSize: batchCap,
		Batches:   batchTotal,
		Elapsed:   elapsed,
		// A drive that finished all its requests is complete, even if the
		// context happened to expire in the same instant.
		Cancelled:    driveErr == nil && ctx.Err() != nil && servedTotal < uint64(cfg.Requests),
		Chaos:        applied,
		ChaosSkipped: chaosSkipped,
		PerWorker:    perWorker,
		Final:        srv.Stats(),
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Served) / elapsed.Seconds()
	}
	rep.VirtualTime = rep.Final.VirtualTime
	if rep.VirtualTime > 0 {
		rep.VirtualQPS = float64(rep.Served) / rep.VirtualTime
	}
	rep.SyncStallSeconds = rep.Final.SyncSeconds
	rep.SyncComputeSeconds = rep.Final.SyncComputeSeconds
	rep.SyncPublishSeconds = rep.Final.SyncPublishSeconds
	rep.SyncWireBytes = rep.Final.SyncWireBytes
	rep.SyncCompressSeconds = rep.Final.SyncCompressSeconds
	if driveTracer != nil {
		after := driveTracer.StageTotals()
		for s := 0; s < obs.NumStages; s++ {
			count := after[s].Count - stagesBefore[s].Count
			if count == 0 {
				continue
			}
			total := after[s].SumNs - stagesBefore[s].SumNs
			rep.Stages = append(rep.Stages, StageStat{
				Stage:   obs.Stage(s).String(),
				Count:   count,
				TotalNs: total,
				MeanNs:  float64(total) / float64(count),
			})
		}
	}
	return rep, driveErr
}
