package driver

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"liveupdate/internal/cluster"
	"liveupdate/internal/core"
	"liveupdate/internal/fleet"
	"liveupdate/internal/trace"
)

func testProfile(t testing.TB) trace.Profile {
	t.Helper()
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		t.Fatal(err)
	}
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

// testCluster builds a fleet in barrier mode: the stop-the-world protocol
// additionally freezes WHICH training lands before each merge, so the
// legacy determinism tests below can compare full per-replica stats —
// adapter content included — across runs and worker counts. Async-mode
// guarantees (the virtual-time subset only) are covered separately by
// TestDriveAsyncVirtualTimeInvariance.
func testCluster(t testing.TB, replicas int, policy cluster.Policy) *cluster.Cluster {
	return testClusterMode(t, replicas, policy, cluster.SyncBarrier)
}

func testClusterMode(t testing.TB, replicas int, policy cluster.Policy, mode cluster.SyncMode) *cluster.Cluster {
	t.Helper()
	opts := core.DefaultOptions(testProfile(t), 42)
	opts.TrainInterval = 4
	r, err := cluster.NewRouter(policy)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		Base:      opts,
		Replicas:  replicas,
		Router:    r,
		SyncEvery: 2e9, // 2 virtual seconds; several epochs per drive
		Mode:      mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// keyStats projects the worker-count-invariant virtual-time fields.
type keyStats struct {
	served, violations, trainSteps uint64
	syncs                          int
	virtualTime, p50, p99          float64
	perReplica                     []core.Stats
}

func keyOf(st core.Stats) keyStats {
	k := keyStats{
		served:      st.Served,
		violations:  st.Violations,
		trainSteps:  st.TrainSteps,
		syncs:       st.Syncs,
		virtualTime: st.VirtualTime,
		p50:         st.P50,
		p99:         st.P99,
	}
	for _, rs := range st.Replicas {
		rs.Replicas = nil
		// Adapter-content metrics are NOT part of the worker-count
		// invariance contract (which covers virtual-time statistics): a
		// periodic sync snapshots whatever each replica's support holds at
		// the barrier, and how far a replica's lane has drained at that
		// wall-clock instant depends on queue occupancy, which varies with
		// the worker count. The merged VALUES land somewhere either way
		// (this epoch or the next) without touching any virtual clock, but
		// row-census metrics derived from them may differ.
		rs.LoRAHotRows = 0
		rs.MemoryOverhead = 0
		k.perReplica = append(k.perReplica, rs)
	}
	return k
}

// TestDriveWorkerCountInvariance is the tentpole's determinism property:
// every virtual-time statistic — including per-replica clocks, violation
// counts, and the periodic sync count — is identical whether one goroutine
// or eight drive the fleet.
func TestDriveWorkerCountInvariance(t *testing.T) {
	const requests = 3000
	for _, policy := range []cluster.Policy{cluster.RoundRobin, cluster.Hash} {
		var want keyStats
		for i, workers := range []int{1, 8} {
			c := testCluster(t, 4, policy)
			gen := trace.MustNewGenerator(testProfile(t), 7)
			rep, err := Drive(context.Background(), c, gen.Next, Config{
				Requests: requests, Workers: workers, Seed: 1,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", policy, workers, err)
			}
			if rep.Served != requests {
				t.Fatalf("%s workers=%d: served %d of %d", policy, workers, rep.Served, requests)
			}
			got := keyOf(rep.Final)
			if got.syncs == 0 {
				t.Fatalf("%s workers=%d: no periodic syncs fired (virtual time %.3fs)",
					policy, workers, got.virtualTime)
			}
			if i == 0 {
				want = got
				continue
			}
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Fatalf("%s: virtual-time stats differ between 1 and 8 workers:\n  1: %+v\n  8: %+v",
					policy, want, got)
			}
		}
	}
}

// virtualKey projects the fields async mode guarantees deterministic for
// any worker count: everything derived from virtual time, per replica
// included, but not adapter-content fields (hot-row counts, memory
// overhead), which depend on when each background merge publishes.
type virtualKey struct {
	served, violations, trainSteps uint64
	syncs                          int
	virtualTime, p50, p99          float64
	perReplica                     [][5]float64
}

func virtualKeyOf(st core.Stats) virtualKey {
	k := virtualKey{
		served:      st.Served,
		violations:  st.Violations,
		trainSteps:  st.TrainSteps,
		syncs:       st.Syncs,
		virtualTime: st.VirtualTime,
		p50:         st.P50,
		p99:         st.P99,
	}
	for _, rs := range st.Replicas {
		k.perReplica = append(k.perReplica, [5]float64{
			float64(rs.Served), float64(rs.Violations), float64(rs.TrainSteps),
			rs.VirtualTime, rs.P99,
		})
	}
	return k
}

// TestDriveAsyncVirtualTimeInvariance is the async pipeline's determinism
// contract under the driver: with background merges publishing at arbitrary
// wall-clock points, every virtual-time statistic — fleet and per-replica —
// is still identical for 1 vs 8 workers and across repeated runs.
func TestDriveAsyncVirtualTimeInvariance(t *testing.T) {
	run := func(workers int) virtualKey {
		c := testClusterMode(t, 4, cluster.Hash, cluster.SyncAsync)
		gen := trace.MustNewGenerator(testProfile(t), 7)
		rep, err := Drive(context.Background(), c, gen.Next, Config{
			Requests: 3000, Workers: workers, Seed: 1,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.SyncStallSeconds != rep.SyncComputeSeconds+rep.SyncPublishSeconds {
			t.Fatalf("workers=%d: sync stall split inconsistent: %v != %v + %v",
				workers, rep.SyncStallSeconds, rep.SyncComputeSeconds, rep.SyncPublishSeconds)
		}
		return virtualKeyOf(rep.Final)
	}
	want := run(1)
	if want.syncs == 0 {
		t.Fatalf("no periodic syncs fired: %+v", want)
	}
	for _, workers := range []int{1, 8} {
		if got := run(workers); fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("async virtual-time stats vary (workers=%d):\n  want %+v\n  got  %+v", workers, want, got)
		}
	}
}

// TestDriveDeterministicAtFixedSeed re-runs the same drive (same seed, same
// concurrency) and requires the full report — per-worker breakdown included
// — to match, modulo wall-clock fields.
func TestDriveDeterministicAtFixedSeed(t *testing.T) {
	run := func() Report {
		c := testCluster(t, 4, cluster.Hash)
		gen := trace.MustNewGenerator(testProfile(t), 11)
		rep, err := Drive(context.Background(), c, gen.Next, Config{
			Requests: 2000, Workers: 4, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if keyA, keyB := fmt.Sprintf("%+v", keyOf(a.Final)), fmt.Sprintf("%+v", keyOf(b.Final)); keyA != keyB {
		t.Fatalf("virtual-time stats differ across identical runs:\n  %s\n  %s", keyA, keyB)
	}
	if len(a.PerWorker) != len(b.PerWorker) {
		t.Fatalf("worker counts differ: %d vs %d", len(a.PerWorker), len(b.PerWorker))
	}
	for w := range a.PerWorker {
		wa, wb := a.PerWorker[w], b.PerWorker[w]
		if wa.Served != wb.Served || wa.MeanLatency != wb.MeanLatency ||
			(wa.P99Latency != wb.P99Latency && !(math.IsNaN(wa.P99Latency) && math.IsNaN(wb.P99Latency))) {
			t.Fatalf("worker %d reports differ: %+v vs %+v", w, wa, wb)
		}
	}
}

// TestDriveSingleSystem drives a non-sharded Server: all load flows through
// one FIFO lane, extra workers idle, and the result matches a plain serve
// loop exactly.
func TestDriveSingleSystem(t *testing.T) {
	opts := core.DefaultOptions(testProfile(t), 42)
	opts.TrainInterval = 4

	seq, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 3)
	for i := 0; i < 500; i++ {
		if _, err := seq.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}

	drv, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	gen = trace.MustNewGenerator(testProfile(t), 3)
	rep, err := Drive(context.Background(), drv, gen.Next, Config{Requests: 500, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 1 {
		t.Fatalf("System must drive as 1 shard, got %d", rep.Shards)
	}
	a, b := seq.Stats(), rep.Final
	if a.Served != b.Served || a.Violations != b.Violations ||
		a.TrainSteps != b.TrainSteps || a.VirtualTime != b.VirtualTime || a.P99 != b.P99 {
		t.Fatalf("driven System diverged from serve loop:\n  loop:  %+v\n  drive: %+v", a, b)
	}
	idle := 0
	for _, ws := range rep.PerWorker {
		if ws.Served == 0 {
			idle++
			if !math.IsNaN(ws.P99Latency) {
				t.Fatalf("idle worker %d must report NaN P99, got %v", ws.Worker, ws.P99Latency)
			}
		}
	}
	if idle != 3 {
		t.Fatalf("expected 3 idle workers over 1 shard, got %d idle", idle)
	}
}

// TestDriveCancellation cancels mid-drive and expects a prompt partial
// report with Cancelled set and no error.
func TestDriveCancellation(t *testing.T) {
	c := testCluster(t, 4, cluster.RoundRobin)
	gen := trace.MustNewGenerator(testProfile(t), 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const requests = 50000
	rep, err := Drive(ctx, c, gen.Next, Config{
		Requests: requests, Workers: 8,
		ProgressEvery: 100,
		OnProgress: func(served uint64) {
			if served >= 500 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cancelled {
		t.Fatal("report must be marked Cancelled")
	}
	if rep.Served < 500 || rep.Served >= requests {
		t.Fatalf("partial drive expected, served %d of %d", rep.Served, requests)
	}
	if st := c.Stats(); st.Served != rep.Served {
		t.Fatalf("server saw %d requests, report says %d", st.Served, rep.Served)
	}
}

// errServer fails after a fixed number of requests.
type errServer struct {
	sys   *core.System
	limit uint64
	n     atomic.Uint64
}

func (e *errServer) Serve(s trace.Sample) (core.Response, error) {
	if e.n.Add(1) > e.limit {
		return core.Response{}, fmt.Errorf("synthetic failure")
	}
	return e.sys.Serve(s)
}

func (e *errServer) Stats() core.Stats { return e.sys.Stats() }

func TestDriveServeErrorAborts(t *testing.T) {
	sys, err := core.New(core.DefaultOptions(testProfile(t), 42))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 13)
	rep, err := Drive(context.Background(), &errServer{sys: sys, limit: 100}, gen.Next,
		Config{Requests: 10000, Workers: 2})
	if err == nil {
		t.Fatal("serve error must abort the drive with an error")
	}
	if rep.Served >= 10000 {
		t.Fatalf("drive must stop early, served %d", rep.Served)
	}
	if rep.Cancelled {
		t.Fatal("an aborted drive is an error, not a cancellation")
	}
}

func TestDriveConfigValidation(t *testing.T) {
	c := testCluster(t, 2, cluster.RoundRobin)
	gen := trace.MustNewGenerator(testProfile(t), 1)
	if _, err := Drive(context.Background(), c, gen.Next, Config{Requests: 0}); err == nil {
		t.Fatal("Requests=0 must be rejected")
	}
	if _, err := Drive(context.Background(), nil, gen.Next, Config{Requests: 1}); err == nil {
		t.Fatal("nil server must be rejected")
	}
	if _, err := Drive(context.Background(), c, nil, Config{Requests: 1}); err == nil {
		t.Fatal("nil workload must be rejected")
	}
}

// TestDriveHammersClusterRace drives one Cluster from 8 goroutines calling
// Serve directly — no driver sequencing — while a reader polls merged Stats.
// It asserts nothing about determinism (direct concurrent Serve races for
// arrival order by design); under -race it proves the locking story: serve
// vs serve, serve vs periodic sync, serve vs Stats.
func TestDriveHammersClusterRace(t *testing.T) {
	c := testCluster(t, 4, cluster.Hash)
	const (
		goroutines = 8
		perG       = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := trace.MustNewGenerator(testProfile(t), uint64(100+g))
			for i := 0; i < perG; i++ {
				if _, err := c.Serve(gen.Next()); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent merged-stats readers while the hammer runs, plus a direct
	// replica reader: Cluster.Replica(i) hands out the System itself, and
	// its methods must stay race-free against periodic syncs mutating the
	// replica's adapters under the fleet barrier.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = c.Stats()
				_ = c.Replica(r).Stats()
				_ = c.Replica(r).MemoryOverhead()
			}
		}(r)
	}
	wg.Wait()
	if st := c.Stats(); st.Served != goroutines*perG {
		t.Fatalf("served %d, want %d", st.Served, goroutines*perG)
	}
	if _, err := c.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if !c.ReplicasConsistent(20) {
		t.Fatal("replicas inconsistent after final sync")
	}
}

// --- Chaos schedules ----------------------------------------------------

// chaosCluster builds an elastic fleet fixture for chaos drives. Pruning is
// disabled so post-churn consistency is structural (usage-based pruning
// evicts published rows at per-replica adapt boundaries — a sync-protocol
// quirk orthogonal to membership).
func chaosCluster(t testing.TB, replicas int, mode cluster.SyncMode) *cluster.Cluster {
	t.Helper()
	opts := core.DefaultOptions(testProfile(t), 42)
	opts.TrainInterval = 4
	opts.LoRA.PruneThresh = 0
	r, err := cluster.NewRouter(cluster.Hash)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Config{
		Base:      opts,
		Replicas:  replicas,
		Router:    r,
		SyncEvery: 500 * time.Millisecond,
		Mode:      mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDriveChaosKillReplaceDeterministic is the elastic-fleet acceptance
// drive: a scripted schedule kills a replica mid-trace, replaces it, and
// scales the fleet — and the run completes with zero failed requests, the
// replacement reaches the fleet epoch (ReplicasConsistent after the
// post-drive drain + merge), and every virtual-time statistic, including
// where in the request sequence each chaos event landed, is identical for
// any worker count, in both sync modes.
func TestDriveChaosKillReplaceDeterministic(t *testing.T) {
	const requests = 4000
	schedule := fleet.Schedule{
		{At: 1 * time.Second, Action: fleet.Kill, Arg: 1},
		{At: 1500 * time.Millisecond, Action: fleet.Replace, Arg: 1},
		{At: 2 * time.Second, Action: fleet.Scale, Arg: 5},
	}
	type chaosKey struct {
		stats  keyStats
		events []AppliedEvent
		fleet  [5]int // members, joins, leaves, fails, shards
	}
	for _, mode := range cluster.SyncModes() {
		var want chaosKey
		for i, workers := range []int{1, 3, 8} {
			c := chaosCluster(t, 4, mode)
			gen := trace.MustNewGenerator(testProfile(t), 7)
			rep, err := Drive(context.Background(), c, gen.Next, Config{
				Requests: requests, Workers: workers, Seed: 1, Chaos: schedule,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mode, workers, err)
			}
			if rep.Served != requests {
				t.Fatalf("%s workers=%d: served %d of %d — chaos dropped requests",
					mode, workers, rep.Served, requests)
			}
			if len(rep.Chaos) != len(schedule) || rep.ChaosSkipped != 0 {
				t.Fatalf("%s workers=%d: applied %d events (skipped %d), want all %d — raise the trace length or lower the timestamps",
					mode, workers, len(rep.Chaos), rep.ChaosSkipped, len(schedule))
			}
			got := chaosKey{
				stats:  keyOf(rep.Final),
				events: rep.Chaos,
				fleet: [5]int{rep.Final.Members, rep.Final.Joins, rep.Final.Leaves,
					rep.Final.Fails, rep.Shards},
			}
			if rep.Final.Members != 5 || rep.Final.Fails != 1 || rep.Final.Joins != 2 {
				t.Fatalf("%s workers=%d: fleet counters members=%d fails=%d joins=%d, want 5/1/2",
					mode, workers, rep.Final.Members, rep.Final.Fails, rep.Final.Joins)
			}
			if rep.Final.CatchUpBytes == 0 || rep.Final.CatchUpSeconds <= 0 {
				t.Fatalf("%s workers=%d: catch-up bill missing: %+v", mode, workers, rep.Final)
			}
			// The replacement must carry load after rejoining.
			if sys := c.Replica(1); sys == nil || sys.Stats().Served == 0 {
				t.Fatalf("%s workers=%d: replacement in slot 1 served nothing", mode, workers)
			}
			// Catch-up + post-churn syncs must reconcile the whole fleet.
			if _, err := c.SyncNow(); err != nil {
				t.Fatalf("%s workers=%d: SyncNow: %v", mode, workers, err)
			}
			if !c.ReplicasConsistent(50) {
				t.Fatalf("%s workers=%d: fleet inconsistent after drain + merge", mode, workers)
			}
			if i == 0 {
				want = got
				continue
			}
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Fatalf("%s: chaos drive diverges between worker counts:\n  want %+v\n  got(%d) %+v",
					mode, want, workers, got)
			}
		}
	}
}

// TestDriveChaosScaleAddsLanes: replicas joining mid-drive get shard lanes
// (slot%workers) and actually absorb routed traffic.
func TestDriveChaosScaleAddsLanes(t *testing.T) {
	c := chaosCluster(t, 2, cluster.SyncAsync)
	gen := trace.MustNewGenerator(testProfile(t), 19)
	rep, err := Drive(context.Background(), c, gen.Next, Config{
		Requests: 3000, Workers: 2, Seed: 3,
		Chaos: fleet.Schedule{{At: 500 * time.Millisecond, Action: fleet.Scale, Arg: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 4 {
		t.Fatalf("final shard capacity %d, want 4 after scale-up", rep.Shards)
	}
	if len(rep.Chaos) != 1 {
		t.Fatalf("scale event never fired: %+v", rep)
	}
	for slot := 2; slot < 4; slot++ {
		sys := c.Replica(slot)
		if sys == nil || sys.Stats().Served == 0 {
			t.Fatalf("joined replica in slot %d absorbed no traffic", slot)
		}
	}
	// Lane bookkeeping covers the grown topology.
	owned := map[int]bool{}
	for _, ws := range rep.PerWorker {
		for _, s := range ws.Shards {
			owned[s] = true
		}
	}
	for s := 0; s < 4; s++ {
		if !owned[s] {
			t.Fatalf("shard %d missing from worker lane report: %+v", s, rep.PerWorker)
		}
	}
}

func TestDriveChaosConfigErrors(t *testing.T) {
	schedule := fleet.Schedule{{At: time.Second, Action: fleet.Kill, Arg: 0}}
	sys, err := core.New(core.DefaultOptions(testProfile(t), 42))
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.MustNewGenerator(testProfile(t), 5)
	if _, err := Drive(context.Background(), sys, gen.Next, Config{
		Requests: 10, Chaos: schedule,
	}); err == nil {
		t.Fatal("chaos against a non-elastic server must be a config error")
	}
	c := chaosCluster(t, 2, cluster.SyncAsync)
	bad := fleet.Schedule{{At: -time.Second, Action: fleet.Kill, Arg: 0}}
	if _, err := Drive(context.Background(), c, gen.Next, Config{
		Requests: 10, Chaos: bad,
	}); err == nil {
		t.Fatal("invalid schedule must be a config error")
	}
}

// TestDriveBatchedMatchesUnbatched: lane-worker coalescing must leave every
// virtual-time statistic identical to unbatched driving, across batch sizes,
// worker counts, and both sync modes. Per-worker stats are also checked at a
// fixed worker count: coalescing preserves each queue's serve order, so the
// reservoir streams match item for item.
func TestDriveBatchedMatchesUnbatched(t *testing.T) {
	const requests = 3000
	for _, mode := range []cluster.SyncMode{cluster.SyncBarrier, cluster.SyncAsync} {
		run := func(workers, batch int) Report {
			c := testClusterMode(t, 4, cluster.Hash, mode)
			gen := trace.MustNewGenerator(testProfile(t), 7)
			rep, err := Drive(context.Background(), c, gen.Next, Config{
				Requests: requests, Workers: workers, Seed: 1, BatchSize: batch,
			})
			if err != nil {
				t.Fatalf("mode=%s workers=%d batch=%d: %v", mode, workers, batch, err)
			}
			if rep.Served != requests {
				t.Fatalf("mode=%s workers=%d batch=%d: served %d", mode, workers, batch, rep.Served)
			}
			return rep
		}
		want := virtualKeyOf(run(1, 1).Final)
		if want.syncs == 0 {
			t.Fatalf("mode=%s: no periodic syncs fired", mode)
		}
		for _, workers := range []int{1, 3, 8} {
			for _, batch := range []int{4, 16} {
				rep := run(workers, batch)
				if rep.BatchSize != batch {
					t.Fatalf("mode=%s: effective batch %d, want %d", mode, rep.BatchSize, batch)
				}
				got := virtualKeyOf(rep.Final)
				if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
					t.Fatalf("mode=%s workers=%d batch=%d: virtual stats differ:\n want %+v\n got  %+v",
						mode, workers, batch, want, got)
				}
			}
		}
	}
}

// TestDriveBatchedPerWorkerOrder: at a fixed worker count, batched and
// unbatched drives must produce identical per-worker virtual statistics —
// the strongest order-preservation check (reservoir streams are
// order-sensitive).
func TestDriveBatchedPerWorkerOrder(t *testing.T) {
	run := func(batch int) Report {
		c := testClusterMode(t, 4, cluster.Hash, cluster.SyncBarrier)
		gen := trace.MustNewGenerator(testProfile(t), 11)
		rep, err := Drive(context.Background(), c, gen.Next, Config{
			Requests: 2000, Workers: 2, Seed: 9, BatchSize: batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(16)
	if b.Batches > a.Batches {
		t.Fatalf("batched drive issued more serve calls (%d) than unbatched (%d)", b.Batches, a.Batches)
	}
	for w := range a.PerWorker {
		wa, wb := a.PerWorker[w], b.PerWorker[w]
		if wa.Served != wb.Served || wa.MeanLatency != wb.MeanLatency ||
			(wa.P99Latency != wb.P99Latency && !(math.IsNaN(wa.P99Latency) && math.IsNaN(wb.P99Latency))) {
			t.Fatalf("worker %d stats differ batched vs not: %+v vs %+v", w, wa, wb)
		}
	}
}

// TestDriveBatchSingleSystem: batching against a non-sharded System goes
// through BatchServer.ServeBatch and still matches the sequential loop.
func TestDriveBatchSingleSystem(t *testing.T) {
	opts := core.DefaultOptions(testProfile(t), 42)
	opts.TrainInterval = 4
	seq := core.MustNew(opts)
	gen := trace.MustNewGenerator(testProfile(t), 3)
	for i := 0; i < 800; i++ {
		if _, err := seq.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	driven := core.MustNew(opts)
	gen2 := trace.MustNewGenerator(testProfile(t), 3)
	rep, err := Drive(context.Background(), driven, gen2.Next, Config{
		Requests: 800, Workers: 4, Seed: 1, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 800 {
		t.Fatalf("served %d", rep.Served)
	}
	ss, ds := seq.Stats(), driven.Stats()
	if ss.Served != ds.Served || ss.VirtualTime != ds.VirtualTime ||
		ss.Violations != ds.Violations || ss.TrainSteps != ds.TrainSteps || ss.P99 != ds.P99 {
		t.Fatalf("single-system batched drive diverged:\n seq %+v\n drv %+v", ss, ds)
	}
}

// TestDriveBatchWithChaos: coalescing composes with chaos drain points — the
// gate counts every coalesced item, so membership events still land at fully
// drained, deterministic positions.
func TestDriveBatchWithChaos(t *testing.T) {
	schedule, err := fleet.ParseScript("@1500ms kill 1; @2500ms scale 5")
	if err != nil {
		t.Fatal(err)
	}
	var want Report
	for i, batch := range []int{1, 8} {
		c := testClusterMode(t, 4, cluster.Hash, cluster.SyncAsync)
		gen := trace.MustNewGenerator(testProfile(t), 7)
		rep, err := Drive(context.Background(), c, gen.Next, Config{
			Requests: 4000, Workers: 3, Seed: 1, BatchSize: batch, Chaos: schedule,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Served != 4000 {
			t.Fatalf("batch=%d: served %d", batch, rep.Served)
		}
		if len(rep.Chaos) != 2 {
			t.Fatalf("batch=%d: applied %d chaos events, want 2", batch, len(rep.Chaos))
		}
		if i == 0 {
			want = rep
			continue
		}
		for j := range want.Chaos {
			if want.Chaos[j] != rep.Chaos[j] {
				t.Fatalf("chaos placement differs batched vs not: %+v vs %+v", want.Chaos[j], rep.Chaos[j])
			}
		}
		if a, b := virtualKeyOf(want.Final), virtualKeyOf(rep.Final); fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("chaos virtual stats differ batched vs not:\n %+v\n %+v", a, b)
		}
	}
}
