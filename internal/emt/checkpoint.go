package emt

// Checkpoint serialization for embedding tables: the binary format used for
// Day-1 checkpoints and full-parameter sync payloads. Layout (little endian):
//
//	magic "EMTC" | version u32 | tableCount u32
//	per table: nameLen u32 | name | rows u32 | dim u32 | version u64 |
//	           rows×dim float64 weights
import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"liveupdate/internal/tensor"
)

const (
	checkpointMagic   = "EMTC"
	checkpointVersion = 1

	// Hostile-input allocation caps: ReadCheckpoint validates every header
	// field against these BEFORE allocating, so a tiny crafted header cannot
	// force a multi-gigabyte allocation. The largest legitimate profiles are
	// thousands of rows × tens of dims; the caps leave orders of magnitude
	// of headroom while bounding a single table's weights at 1 GiB and a
	// whole checkpoint at 4 GiB of float64 storage.
	maxCheckpointTables = 1 << 16
	maxCheckpointName   = 1 << 12
	maxTableElems       = 1 << 27 // rows×dim per table (1 GiB of float64)
	maxCheckpointElems  = 1 << 29 // rows×dim summed over tables (4 GiB)
)

// WriteCheckpoint serializes the group's tables to w.
func (g *Group) WriteCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("emt: write magic: %w", err)
	}
	if err := writeU32(bw, checkpointVersion); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(g.Tables))); err != nil {
		return err
	}
	for _, t := range g.Tables {
		if err := writeU32(bw, uint32(len(t.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t.Name); err != nil {
			return fmt.Errorf("emt: write name: %w", err)
		}
		if err := writeU32(bw, uint32(t.Rows())); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(t.Dim)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, t.version); err != nil {
			return fmt.Errorf("emt: write version: %w", err)
		}
		buf := make([]byte, 8)
		for _, v := range t.weights.Data {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return fmt.Errorf("emt: write weights: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint,
// returning a fresh Group with clean dirty/access state.
func ReadCheckpoint(r io.Reader) (*Group, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("emt: read magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("emt: bad checkpoint magic %q", magic)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if ver != checkpointVersion {
		return nil, fmt.Errorf("emt: unsupported checkpoint version %d", ver)
	}
	count, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if count == 0 || count > maxCheckpointTables {
		return nil, fmt.Errorf("emt: implausible table count %d (max %d)", count, maxCheckpointTables)
	}
	g := &Group{}
	var totalElems uint64
	for i := uint32(0); i < count; i++ {
		nameLen, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if nameLen > maxCheckpointName {
			return nil, fmt.Errorf("emt: implausible name length %d (max %d)", nameLen, maxCheckpointName)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("emt: read name: %w", err)
		}
		rows, err := readU32(br)
		if err != nil {
			return nil, err
		}
		dim, err := readU32(br)
		if err != nil {
			return nil, err
		}
		elems := uint64(rows) * uint64(dim)
		if rows == 0 || dim == 0 || elems > maxTableElems {
			return nil, fmt.Errorf("emt: implausible table shape %dx%d (max %d elements)",
				rows, dim, maxTableElems)
		}
		if totalElems += elems; totalElems > maxCheckpointElems {
			return nil, fmt.Errorf("emt: implausible checkpoint: %d cumulative elements (max %d)",
				totalElems, maxCheckpointElems)
		}
		var version uint64
		if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
			return nil, fmt.Errorf("emt: read version: %w", err)
		}
		t := &Table{
			Name:     string(name),
			Dim:      int(dim),
			weights:  tensor.NewMatrix(int(rows), int(dim)),
			version:  version,
			dirty:    make(map[int32]struct{}),
			accesses: make([]uint64, rows),
		}
		buf := make([]byte, 8)
		for j := range t.weights.Data {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("emt: read weights: %w", err)
			}
			t.weights.Data[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		g.Tables = append(g.Tables, t)
	}
	return g, nil
}

func writeU32(w io.Writer, v uint32) error {
	if err := binary.Write(w, binary.LittleEndian, v); err != nil {
		return fmt.Errorf("emt: write u32: %w", err)
	}
	return nil
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return 0, fmt.Errorf("emt: read u32: %w", err)
	}
	return v, nil
}
