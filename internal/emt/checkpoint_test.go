package emt

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"liveupdate/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g := NewGroup(3, 40, 8, tensor.NewRNG(5))
	g.Tables[1].ApplyRowDelta(7, make([]float64, 8)) // bump version
	var buf bytes.Buffer
	if err := g.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 3 {
		t.Fatalf("tables %d", len(got.Tables))
	}
	for ti, want := range g.Tables {
		gt := got.Tables[ti]
		if gt.Name != want.Name || gt.Dim != want.Dim || gt.Rows() != want.Rows() {
			t.Fatalf("table %d metadata mismatch", ti)
		}
		if gt.Version() != want.Version() {
			t.Fatalf("table %d version %d != %d", ti, gt.Version(), want.Version())
		}
		for id := int32(0); int(id) < want.Rows(); id++ {
			a, b := want.PeekRow(id), gt.PeekRow(id)
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("weights must round-trip bit-exactly")
				}
			}
		}
		if gt.DirtyCount() != 0 {
			t.Fatal("restored tables must start clean")
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                    // empty
		"NOPE",                // short magic
		"XXXXzzzzzzzzzzzzzzz", // wrong magic
	}
	for i, c := range cases {
		if _, err := ReadCheckpoint(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Wrong version.
	var buf bytes.Buffer
	g := NewGroup(1, 4, 2, tensor.NewRNG(1))
	if err := g.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // corrupt the version field
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("expected version error")
	}
}

// TestCheckpointRejectsHostileHeaders feeds crafted headers whose shape
// fields would demand absurd allocations and requires a clear error before
// any table storage is allocated — the "tiny file, huge malloc" hardening.
func TestCheckpointRejectsHostileHeaders(t *testing.T) {
	header := func(tables uint32, mutate func([]byte) []byte) []byte {
		buf := []byte(checkpointMagic)
		u32 := func(v uint32) {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], v)
			buf = append(buf, b[:]...)
		}
		u32(checkpointVersion)
		u32(tables)
		return mutate(buf)
	}
	u32bytes := func(v uint32) []byte {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		return b[:]
	}
	cases := map[string][]byte{
		"zero tables": header(0, func(b []byte) []byte { return b }),
		"absurd table count": header(1<<20, func(b []byte) []byte {
			return b
		}),
		"absurd name length": header(1, func(b []byte) []byte {
			return append(b, u32bytes(1<<30)...)
		}),
		// name "t", then rows×dim far beyond any plausible table.
		"absurd table shape": header(1, func(b []byte) []byte {
			b = append(b, u32bytes(1)...)
			b = append(b, 't')
			b = append(b, u32bytes(1<<31)...) // rows
			b = append(b, u32bytes(1<<31)...) // dim
			return b
		}),
		"zero dim": header(1, func(b []byte) []byte {
			b = append(b, u32bytes(1)...)
			b = append(b, 't')
			b = append(b, u32bytes(16)...)
			b = append(b, u32bytes(0)...)
			return b
		}),
	}
	for name, data := range cases {
		if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: hostile header must be rejected", name)
		}
	}
	// A hostile shape deeper in the stream must be caught at ITS header,
	// after a legitimate leading table parsed fine: craft a real one-table
	// checkpoint, bump the table count to 2, and append an absurd second
	// header.
	var buf bytes.Buffer
	if err := NewGroup(1, 4, 2, tensor.NewRNG(3)).WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	copy(data[8:12], u32bytes(2)) // tableCount 1 → 2
	data = append(data, u32bytes(1)...)
	data = append(data, 't')
	data = append(data, u32bytes(1<<31)...) // rows
	data = append(data, u32bytes(1<<31)...) // dim
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("hostile second-table shape must be rejected")
	}
}

func TestCheckpointTruncated(t *testing.T) {
	g := NewGroup(2, 20, 4, tensor.NewRNG(2))
	var buf bytes.Buffer
	if err := g.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, 12, 30, len(data) / 2, len(data) - 3} {
		if _, err := ReadCheckpoint(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
}
