package emt

import (
	"bytes"
	"strings"
	"testing"

	"liveupdate/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g := NewGroup(3, 40, 8, tensor.NewRNG(5))
	g.Tables[1].ApplyRowDelta(7, make([]float64, 8)) // bump version
	var buf bytes.Buffer
	if err := g.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 3 {
		t.Fatalf("tables %d", len(got.Tables))
	}
	for ti, want := range g.Tables {
		gt := got.Tables[ti]
		if gt.Name != want.Name || gt.Dim != want.Dim || gt.Rows() != want.Rows() {
			t.Fatalf("table %d metadata mismatch", ti)
		}
		if gt.Version() != want.Version() {
			t.Fatalf("table %d version %d != %d", ti, gt.Version(), want.Version())
		}
		for id := int32(0); int(id) < want.Rows(); id++ {
			a, b := want.PeekRow(id), gt.PeekRow(id)
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("weights must round-trip bit-exactly")
				}
			}
		}
		if gt.DirtyCount() != 0 {
			t.Fatal("restored tables must start clean")
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                    // empty
		"NOPE",                // short magic
		"XXXXzzzzzzzzzzzzzzz", // wrong magic
	}
	for i, c := range cases {
		if _, err := ReadCheckpoint(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Wrong version.
	var buf bytes.Buffer
	g := NewGroup(1, 4, 2, tensor.NewRNG(1))
	if err := g.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // corrupt the version field
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestCheckpointTruncated(t *testing.T) {
	g := NewGroup(2, 20, 4, tensor.NewRNG(2))
	var buf bytes.Buffer
	if err := g.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, 12, 30, len(data) / 2, len(data) - 3} {
		if _, err := ReadCheckpoint(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d must error", cut)
		}
	}
}
