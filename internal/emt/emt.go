// Package emt implements the embedding tables (EMTs) at the heart of DLRM
// serving (paper §II-A): row-major storage, one/multi-hot lookup with mean
// pooling, sparse row-wise gradient updates, dirty-row tracking for the
// update-ratio analysis of Fig 3a, versioning, and partitioning across
// inference nodes.
package emt

import (
	"fmt"
	"math"
	"sync/atomic"

	"liveupdate/internal/tensor"
)

// Table is one embedding table W ∈ R^{|V|×d}.
type Table struct {
	Name string
	Dim  int

	weights *tensor.Matrix
	version uint64

	// dirty tracks rows modified since the last ResetDirty; it backs the
	// update-ratio accounting of paper Fig 3a and delta-update extraction.
	dirty map[int32]struct{}

	// accesses counts lookups per row for hot/cold classification (Fig 12).
	// Incremented atomically: Row/Lookup run on the serving fast path, which
	// is lock-free with respect to the owner's bookkeeping, so concurrent
	// requests on one replica may record accesses at the same time. Readers
	// (AccessCounts) are expected to run quiesced (experiments, tests).
	accesses []uint64
}

// NewTable creates a |V|×d table initialized with N(0, 1/sqrt(d)) rows, the
// usual DLRM embedding initialization scale.
func NewTable(name string, rows, dim int, rng *tensor.RNG) *Table {
	if rows <= 0 || dim <= 0 {
		panic(fmt.Sprintf("emt: invalid table %dx%d", rows, dim))
	}
	return &Table{
		Name:     name,
		Dim:      dim,
		weights:  tensor.RandomMatrix(rng, rows, dim, 1/math.Sqrt(float64(dim))),
		dirty:    make(map[int32]struct{}),
		accesses: make([]uint64, rows),
	}
}

// Rows returns |V|.
func (t *Table) Rows() int { return t.weights.Rows }

// Version returns the monotonically increasing modification counter.
func (t *Table) Version() uint64 { return t.version }

// Row returns the embedding vector for id, aliasing internal storage, and
// records the access (atomically — Row is called from the lock-free serving
// forward). Callers must not modify the returned slice; use ApplyRowDelta or
// SetRow for writes so dirty tracking stays correct.
func (t *Table) Row(id int32) []float64 {
	atomic.AddUint64(&t.accesses[id], 1)
	return t.weights.Row(int(id))
}

// PeekRow returns the row without recording an access (for sync/export).
func (t *Table) PeekRow(id int32) []float64 { return t.weights.Row(int(id)) }

// Lookup mean-pools the embeddings of ids into dst (len Dim). A single id
// copies; multiple ids average, matching the paper's multi-hot pooling.
func (t *Table) Lookup(ids []int32, dst []float64) {
	if len(dst) != t.Dim {
		panic(fmt.Sprintf("emt: lookup dst len %d != dim %d", len(dst), t.Dim))
	}
	for i := range dst {
		dst[i] = 0
	}
	if len(ids) == 0 {
		return
	}
	inv := 1 / float64(len(ids))
	for _, id := range ids {
		tensor.Axpy(inv, t.Row(id), dst)
	}
}

// ApplyRowDelta adds delta to row id (sparse SGD step) and marks it dirty.
func (t *Table) ApplyRowDelta(id int32, delta []float64) {
	row := t.weights.Row(int(id))
	if len(delta) != len(row) {
		panic(fmt.Sprintf("emt: delta len %d != dim %d", len(delta), len(row)))
	}
	for i, d := range delta {
		row[i] += d
	}
	t.dirty[id] = struct{}{}
	t.version++
}

// ScatterAdd adds delta to every row in ids — the SPMM-style sparse scatter
// of a mini-batch gradient: only the touched rows are visited, each is
// marked dirty, and the version advances once for the whole batch (matching
// ApplyDeltas' batch-bump semantics) instead of once per row.
func (t *Table) ScatterAdd(ids []int32, delta []float64) {
	if len(ids) == 0 {
		return
	}
	if len(delta) != t.Dim {
		panic(fmt.Sprintf("emt: delta len %d != dim %d", len(delta), t.Dim))
	}
	for _, id := range ids {
		row := t.weights.Row(int(id))
		for i, d := range delta {
			row[i] += d
		}
		t.dirty[id] = struct{}{}
	}
	t.version++
}

// SetRow overwrites row id and marks it dirty.
func (t *Table) SetRow(id int32, values []float64) {
	row := t.weights.Row(int(id))
	if len(values) != len(row) {
		panic(fmt.Sprintf("emt: values len %d != dim %d", len(values), len(row)))
	}
	copy(row, values)
	t.dirty[id] = struct{}{}
	t.version++
}

// DirtyCount returns the number of rows modified since the last ResetDirty.
func (t *Table) DirtyCount() int { return len(t.dirty) }

// DirtyRatio returns DirtyCount / |V| — the per-window update ratio of Fig 3a.
func (t *Table) DirtyRatio() float64 { return float64(len(t.dirty)) / float64(t.Rows()) }

// DirtyIDs returns the modified row ids in unspecified order.
func (t *Table) DirtyIDs() []int32 {
	out := make([]int32, 0, len(t.dirty))
	for id := range t.dirty {
		out = append(out, id)
	}
	return out
}

// ResetDirty clears the dirty set, starting a new tracking window.
func (t *Table) ResetDirty() { t.dirty = make(map[int32]struct{}) }

// AccessCounts returns per-row lookup counts (aliases internal state). Call
// it only while no request is in flight on the owning node; the counters are
// written atomically by the serving path.
func (t *Table) AccessCounts() []uint64 { return t.accesses }

// ResetAccessCounts zeroes the lookup counters.
func (t *Table) ResetAccessCounts() {
	for i := range t.accesses {
		atomic.StoreUint64(&t.accesses[i], 0)
	}
}

// SizeBytes returns the in-memory weight footprint (float64 storage).
func (t *Table) SizeBytes() int64 { return int64(t.Rows()) * int64(t.Dim) * 8 }

// Clone returns a deep copy with cleared dirty/access state, representing a
// freshly synced replica of the current weights.
func (t *Table) Clone() *Table {
	return &Table{
		Name:     t.Name,
		Dim:      t.Dim,
		weights:  t.weights.Clone(),
		version:  t.version,
		dirty:    make(map[int32]struct{}),
		accesses: make([]uint64, t.Rows()),
	}
}

// CopyWeightsFrom overwrites all weights from src (a full-parameter sync).
// Dirty state is cleared: after a full sync the replica is clean.
func (t *Table) CopyWeightsFrom(src *Table) {
	if t.Rows() != src.Rows() || t.Dim != src.Dim {
		panic(fmt.Sprintf("emt: CopyWeightsFrom shape mismatch %dx%d vs %dx%d",
			t.Rows(), t.Dim, src.Rows(), src.Dim))
	}
	copy(t.weights.Data, src.weights.Data)
	t.version = src.version
	t.ResetDirty()
}

// RowDelta holds one changed row for delta synchronization.
type RowDelta struct {
	ID     int32
	Values []float64
}

// ExportDeltas snapshots the dirty rows as full row values (the payload a
// DeltaUpdate strategy ships) without clearing the dirty set.
func (t *Table) ExportDeltas() []RowDelta {
	out := make([]RowDelta, 0, len(t.dirty))
	for id := range t.dirty {
		out = append(out, RowDelta{
			ID:     id,
			Values: append([]float64(nil), t.weights.Row(int(id))...),
		})
	}
	return out
}

// ApplyDeltas installs row snapshots (receiving side of a delta sync).
// Installed rows are not marked dirty: they carry remote, already-synced
// state.
func (t *Table) ApplyDeltas(deltas []RowDelta) {
	for _, d := range deltas {
		row := t.weights.Row(int(d.ID))
		copy(row, d.Values)
	}
	t.version++
}

// Group is an ordered collection of tables (one per categorical field).
type Group struct {
	Tables []*Table
}

// NewGroup builds numTables tables of rows×dim each.
func NewGroup(numTables, rows, dim int, rng *tensor.RNG) *Group {
	g := &Group{}
	for i := 0; i < numTables; i++ {
		g.Tables = append(g.Tables, NewTable(fmt.Sprintf("table%d", i), rows, dim, rng))
	}
	return g
}

// Lookup pools ids from every table into a single concatenated vector of
// length len(Tables)×dim.
func (g *Group) Lookup(sparse [][]int32, dst []float64) {
	dim := g.Tables[0].Dim
	if len(dst) != len(g.Tables)*dim {
		panic(fmt.Sprintf("emt: group lookup dst len %d != %d", len(dst), len(g.Tables)*dim))
	}
	if len(sparse) != len(g.Tables) {
		panic(fmt.Sprintf("emt: group lookup %d id lists for %d tables", len(sparse), len(g.Tables)))
	}
	for i, t := range g.Tables {
		t.Lookup(sparse[i], dst[i*dim:(i+1)*dim])
	}
}

// SizeBytes sums the weight footprint across tables.
func (g *Group) SizeBytes() int64 {
	var total int64
	for _, t := range g.Tables {
		total += t.SizeBytes()
	}
	return total
}

// DirtyRatio returns the group-wide dirty row fraction.
func (g *Group) DirtyRatio() float64 {
	dirty, total := 0, 0
	for _, t := range g.Tables {
		dirty += t.DirtyCount()
		total += t.Rows()
	}
	if total == 0 {
		return 0
	}
	return float64(dirty) / float64(total)
}

// ResetDirty clears dirty state on every table.
func (g *Group) ResetDirty() {
	for _, t := range g.Tables {
		t.ResetDirty()
	}
}

// Clone deep-copies the group.
func (g *Group) Clone() *Group {
	out := &Group{}
	for _, t := range g.Tables {
		out.Tables = append(out.Tables, t.Clone())
	}
	return out
}

// CopyWeightsFrom full-syncs every table from src.
func (g *Group) CopyWeightsFrom(src *Group) {
	if len(g.Tables) != len(src.Tables) {
		panic("emt: group CopyWeightsFrom table count mismatch")
	}
	for i, t := range g.Tables {
		t.CopyWeightsFrom(src.Tables[i])
	}
}

// Partition assigns table rows to nodes by contiguous range, the standard
// row-wise EMT sharding of the paper's inference clusters (Fig 2). It maps
// a (table, id) pair to the owning node.
type Partition struct {
	NumNodes int
	rows     int
}

// NewPartition shards tables of `rows` rows across numNodes nodes.
func NewPartition(numNodes, rows int) *Partition {
	if numNodes <= 0 || rows <= 0 {
		panic("emt: invalid partition")
	}
	return &Partition{NumNodes: numNodes, rows: rows}
}

// Owner returns the node owning row id.
func (p *Partition) Owner(id int32) int {
	per := (p.rows + p.NumNodes - 1) / p.NumNodes
	n := int(id) / per
	if n >= p.NumNodes {
		n = p.NumNodes - 1
	}
	return n
}

// Range returns the [lo, hi) row interval owned by node.
func (p *Partition) Range(node int) (lo, hi int32) {
	per := (p.rows + p.NumNodes - 1) / p.NumNodes
	lo = int32(node * per)
	hi = lo + int32(per)
	if int(hi) > p.rows {
		hi = int32(p.rows)
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}
