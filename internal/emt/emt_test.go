package emt

import (
	"math"
	"testing"
	"testing/quick"

	"liveupdate/internal/tensor"
)

func newTestTable(rows, dim int) *Table {
	return NewTable("t", rows, dim, tensor.NewRNG(1))
}

func TestNewTableShape(t *testing.T) {
	tab := newTestTable(100, 16)
	if tab.Rows() != 100 || tab.Dim != 16 {
		t.Fatalf("shape %dx%d", tab.Rows(), tab.Dim)
	}
	if tab.SizeBytes() != 100*16*8 {
		t.Fatalf("size %d", tab.SizeBytes())
	}
	if tab.Version() != 0 {
		t.Fatal("fresh table version must be 0")
	}
}

func TestRowAccessCounting(t *testing.T) {
	tab := newTestTable(10, 4)
	tab.Row(3)
	tab.Row(3)
	tab.Row(7)
	counts := tab.AccessCounts()
	if counts[3] != 2 || counts[7] != 1 || counts[0] != 0 {
		t.Fatalf("access counts %v", counts)
	}
	// PeekRow must not count.
	tab.PeekRow(3)
	if counts[3] != 2 {
		t.Fatal("PeekRow must not record an access")
	}
	tab.ResetAccessCounts()
	if counts[3] != 0 {
		t.Fatal("ResetAccessCounts failed")
	}
}

func TestLookupSingleHot(t *testing.T) {
	tab := newTestTable(10, 4)
	dst := make([]float64, 4)
	tab.Lookup([]int32{5}, dst)
	row := tab.PeekRow(5)
	for i := range dst {
		if dst[i] != row[i] {
			t.Fatal("single-hot lookup must copy the row")
		}
	}
}

func TestLookupMeanPooling(t *testing.T) {
	tab := newTestTable(10, 2)
	tab.SetRow(0, []float64{2, 4})
	tab.SetRow(1, []float64{4, 8})
	dst := make([]float64, 2)
	tab.Lookup([]int32{0, 1}, dst)
	if dst[0] != 3 || dst[1] != 6 {
		t.Fatalf("pooled = %v, want [3 6]", dst)
	}
}

func TestLookupEmptyIDs(t *testing.T) {
	tab := newTestTable(10, 2)
	dst := []float64{9, 9}
	tab.Lookup(nil, dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("empty lookup must zero dst")
	}
}

func TestApplyRowDeltaAndDirty(t *testing.T) {
	tab := newTestTable(10, 2)
	orig := append([]float64(nil), tab.PeekRow(4)...)
	tab.ApplyRowDelta(4, []float64{0.5, -0.5})
	row := tab.PeekRow(4)
	if math.Abs(row[0]-(orig[0]+0.5)) > 1e-15 || math.Abs(row[1]-(orig[1]-0.5)) > 1e-15 {
		t.Fatal("delta not applied")
	}
	if tab.DirtyCount() != 1 {
		t.Fatalf("dirty count %d", tab.DirtyCount())
	}
	if tab.DirtyRatio() != 0.1 {
		t.Fatalf("dirty ratio %v", tab.DirtyRatio())
	}
	ids := tab.DirtyIDs()
	if len(ids) != 1 || ids[0] != 4 {
		t.Fatalf("dirty ids %v", ids)
	}
	if tab.Version() != 1 {
		t.Fatalf("version %d", tab.Version())
	}
	tab.ResetDirty()
	if tab.DirtyCount() != 0 {
		t.Fatal("ResetDirty failed")
	}
}

func TestDirtyDeduplication(t *testing.T) {
	tab := newTestTable(10, 2)
	for i := 0; i < 5; i++ {
		tab.ApplyRowDelta(2, []float64{0.1, 0.1})
	}
	if tab.DirtyCount() != 1 {
		t.Fatalf("repeated updates to same row must count once, got %d", tab.DirtyCount())
	}
}

func TestExportApplyDeltas(t *testing.T) {
	src := newTestTable(10, 3)
	dst := src.Clone()
	src.ApplyRowDelta(1, []float64{1, 1, 1})
	src.ApplyRowDelta(8, []float64{-1, 0, 1})
	deltas := src.ExportDeltas()
	if len(deltas) != 2 {
		t.Fatalf("deltas %d", len(deltas))
	}
	dst.ApplyDeltas(deltas)
	for _, id := range []int32{1, 8} {
		a, b := src.PeekRow(id), dst.PeekRow(id)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("delta sync mismatch")
			}
		}
	}
	// Receiving a delta must not mark the replica dirty.
	if dst.DirtyCount() != 0 {
		t.Fatal("ApplyDeltas must not dirty the replica")
	}
	// Export must not clear dirty.
	if src.DirtyCount() != 2 {
		t.Fatal("ExportDeltas must not clear dirty state")
	}
}

func TestExportDeltasSnapshotIndependence(t *testing.T) {
	tab := newTestTable(4, 2)
	tab.ApplyRowDelta(0, []float64{1, 1})
	deltas := tab.ExportDeltas()
	tab.ApplyRowDelta(0, []float64{5, 5})
	if deltas[0].Values[0] == tab.PeekRow(0)[0] {
		t.Fatal("exported delta must be a snapshot, not an alias")
	}
}

func TestCloneAndCopyWeights(t *testing.T) {
	a := newTestTable(6, 2)
	a.ApplyRowDelta(0, []float64{1, 2})
	c := a.Clone()
	if c.DirtyCount() != 0 {
		t.Fatal("clone must start clean")
	}
	if c.Version() != a.Version() {
		t.Fatal("clone should carry the version")
	}
	a.ApplyRowDelta(1, []float64{3, 3})
	if c.PeekRow(1)[0] == a.PeekRow(1)[0] {
		t.Fatal("clone must not share storage")
	}
	c.CopyWeightsFrom(a)
	for i := 0; i < 6; i++ {
		ra, rc := a.PeekRow(int32(i)), c.PeekRow(int32(i))
		for j := range ra {
			if ra[j] != rc[j] {
				t.Fatal("CopyWeightsFrom mismatch")
			}
		}
	}
	if c.DirtyCount() != 0 {
		t.Fatal("full sync must leave replica clean")
	}
}

func TestGroupLookupConcat(t *testing.T) {
	g := NewGroup(3, 10, 4, tensor.NewRNG(2))
	dst := make([]float64, 12)
	sparse := [][]int32{{1}, {2}, {3}}
	g.Lookup(sparse, dst)
	for ti := 0; ti < 3; ti++ {
		row := g.Tables[ti].PeekRow(sparse[ti][0])
		for j := 0; j < 4; j++ {
			if dst[ti*4+j] != row[j] {
				t.Fatalf("concat mismatch at table %d", ti)
			}
		}
	}
}

func TestGroupDirtyRatioAndSize(t *testing.T) {
	g := NewGroup(2, 10, 4, tensor.NewRNG(3))
	if g.SizeBytes() != 2*10*4*8 {
		t.Fatalf("group size %d", g.SizeBytes())
	}
	g.Tables[0].ApplyRowDelta(0, make([]float64, 4))
	g.Tables[1].ApplyRowDelta(1, make([]float64, 4))
	g.Tables[1].ApplyRowDelta(2, make([]float64, 4))
	if got := g.DirtyRatio(); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("group dirty ratio %v, want 0.15", got)
	}
	g.ResetDirty()
	if g.DirtyRatio() != 0 {
		t.Fatal("group ResetDirty failed")
	}
}

func TestGroupCloneCopy(t *testing.T) {
	g := NewGroup(2, 5, 2, tensor.NewRNG(4))
	c := g.Clone()
	g.Tables[0].ApplyRowDelta(0, []float64{9, 9})
	if c.Tables[0].PeekRow(0)[0] == g.Tables[0].PeekRow(0)[0] {
		t.Fatal("group clone shares storage")
	}
	c.CopyWeightsFrom(g)
	if c.Tables[0].PeekRow(0)[0] != g.Tables[0].PeekRow(0)[0] {
		t.Fatal("group CopyWeightsFrom failed")
	}
}

func TestPartitionOwnerAndRange(t *testing.T) {
	p := NewPartition(4, 100)
	if p.Owner(0) != 0 || p.Owner(99) != 3 {
		t.Fatalf("owners %d %d", p.Owner(0), p.Owner(99))
	}
	// Every row owned by exactly the node whose range contains it.
	for id := int32(0); id < 100; id++ {
		n := p.Owner(id)
		lo, hi := p.Range(n)
		if id < lo || id >= hi {
			t.Fatalf("row %d not in range [%d,%d) of node %d", id, lo, hi, n)
		}
	}
	// Ranges cover all rows exactly once.
	covered := 0
	for n := 0; n < 4; n++ {
		lo, hi := p.Range(n)
		covered += int(hi - lo)
	}
	if covered != 100 {
		t.Fatalf("ranges cover %d rows, want 100", covered)
	}
}

func TestPartitionUneven(t *testing.T) {
	p := NewPartition(3, 10) // per = 4: ranges [0,4) [4,8) [8,10)
	lo, hi := p.Range(2)
	if lo != 8 || hi != 10 {
		t.Fatalf("last range [%d,%d)", lo, hi)
	}
	if p.Owner(9) != 2 {
		t.Fatalf("owner(9) = %d", p.Owner(9))
	}
}

// Property: after arbitrary update sequences, DirtyCount equals the number of
// distinct updated ids and DirtyRatio is within [0,1].
func TestPropertyDirtyTracking(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		tab := NewTable("p", 50, 4, rng)
		distinct := make(map[int32]bool)
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			id := int32(rng.Intn(50))
			distinct[id] = true
			tab.ApplyRowDelta(id, []float64{0.1, 0, 0, 0})
		}
		return tab.DirtyCount() == len(distinct) &&
			tab.DirtyRatio() >= 0 && tab.DirtyRatio() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a delta round trip (export → apply on clone) makes the replica
// bit-identical on every dirty row.
func TestPropertyDeltaRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		src := NewTable("p", 30, 3, rng)
		dst := src.Clone()
		for i := 0; i < 20; i++ {
			id := int32(rng.Intn(30))
			src.ApplyRowDelta(id, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
		}
		dst.ApplyDeltas(src.ExportDeltas())
		for id := int32(0); id < 30; id++ {
			a, b := src.PeekRow(id), dst.PeekRow(id)
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
