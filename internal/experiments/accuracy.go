package experiments

import (
	"fmt"

	"liveupdate/internal/collective"
	"liveupdate/internal/dlrm"
	"liveupdate/internal/emt"
	"liveupdate/internal/lora"
	"liveupdate/internal/metrics"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
	"liveupdate/internal/update"
)

// accProfile shrinks a dataset profile to accuracy-experiment scale.
func accProfile(name string, quick bool) trace.Profile {
	p := trace.Profiles()[name]
	p.TableSize = 800
	if quick {
		p.TableSize = 300
		if p.NumTables > 4 {
			p.NumTables = 4
			p.MultiHot = p.MultiHot[:4]
		}
	}
	return p
}

func accWindows(o Options, full int) int {
	if o.Quick {
		if full > 8 {
			return 8
		}
	}
	return full
}

func accSamples(o Options) int {
	if o.Quick {
		return 200
	}
	return 600
}

// Fig3a reproduces the embedding-update-ratio measurement (paper Fig 3a):
// the fraction of EMT rows modified within 10/30/60-minute training windows.
func Fig3a(o Options) (Report, error) {
	r := Report{
		ID:     "fig3a",
		Title:  "Embedding update ratio by window length (paper Fig 3a)",
		Header: []string{"window", "update_ratio"},
	}
	p := accProfile("bd-tb", o.Quick)
	gen, err := trace.NewGenerator(p, o.Seed)
	if err != nil {
		return r, err
	}
	rng := tensor.NewRNG(o.Seed ^ 0x3a)
	model, err := dlrm.NewModel(dlrm.ConfigForProfile(p), rng)
	if err != nil {
		return r, err
	}
	group := emt.NewGroup(p.NumTables, p.TableSize, p.EmbeddingDim, rng)
	tr := &dlrm.Trainer{Model: model, Emb: &dlrm.BaseEmbeddings{Group: group},
		Opt: dlrm.SGD{LR: 0.05}, EmbLR: 0.05}

	samplesPerMin := accSamples(o) / 5
	ratios := make(map[int]float64)
	for _, minutes := range []int{10, 30, 60} {
		group.ResetDirty()
		for m := 0; m < minutes; m++ {
			tr.TrainBatch(gen.Batch(samplesPerMin, 60))
		}
		ratio := group.DirtyRatio()
		ratios[minutes] = ratio
		r.Rows = append(r.Rows, []string{fmt.Sprintf("%d min", minutes), pct(ratio)})
	}
	if ratios[10] > 0.05 {
		r.Notes = append(r.Notes, "even 10-minute windows touch a substantial EMT fraction (paper: >10%)")
	}
	if ratios[10] < ratios[30] && ratios[30] < ratios[60] {
		r.Notes = append(r.Notes, "ratio grows sublinearly with window length (hot rows re-touched)")
	}
	return r, nil
}

// Fig3b reproduces the staleness-decay curve (paper Fig 3b): accuracy falls
// while the model is stale and sharply recovers at each update.
func Fig3b(o Options) (Report, error) {
	r := Report{
		ID:     "fig3b",
		Title:  "Accuracy along serving with periodic updates (paper Fig 3b)",
		Header: []string{"window", "minute", "AUC", "event"},
	}
	p := accProfile("bd-tb", o.Quick)
	p.DriftRate = 0.9
	cfg := update.DefaultHarnessConfig(p, update.DeltaUpdate, o.Seed)
	cfg.SamplesPerWindow = accSamples(o)
	cfg.UpdateEvery = 6 // 30-minute updates on 5-minute windows
	cfg.FullSyncEvery = 0
	h := update.MustNewHarness(cfg)
	h.Pretrain(4)
	n := accWindows(o, 18)
	res := h.Run(n)

	marks := make(map[int]bool)
	for _, m := range res.UpdateMarkers {
		marks[m] = true
	}
	var preUpdate, postUpdate []float64
	for i, auc := range res.AUCSeries {
		event := ""
		if marks[i+1] { // sync applied at the end of window i+1
			event = "update"
			preUpdate = append(preUpdate, auc)
		}
		if i > 0 && marks[i] {
			postUpdate = append(postUpdate, auc)
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", (i+1)*5), f4(auc), event,
		})
	}
	if len(preUpdate) > 0 && len(postUpdate) > 0 {
		gain := meanOf(postUpdate) - meanOf(preUpdate)
		r.Notes = append(r.Notes,
			fmt.Sprintf("mean AUC recovery after update: %+.4f (paper: sharp recovery at each sync)", gain))
	}
	return r, nil
}

// Fig6 reproduces the gradient-PCA analysis (paper Fig 6): a handful of
// principal components captures ≥80% of the embedding-gradient variance.
func Fig6(o Options) (Report, error) {
	r := Report{
		ID:     "fig6",
		Title:  "Cumulative PCA importance of embedding gradients (paper Fig 6)",
		Header: []string{"table", "iter", "k80", "top1", "top3", "top6"},
	}
	p := accProfile("criteo", o.Quick)
	gen, err := trace.NewGenerator(p, o.Seed)
	if err != nil {
		return r, err
	}
	rng := tensor.NewRNG(o.Seed ^ 0x6)
	model, err := dlrm.NewModel(dlrm.ConfigForProfile(p), rng)
	if err != nil {
		return r, err
	}
	group := emt.NewGroup(p.NumTables, p.TableSize, p.EmbeddingDim, rng)
	rec := &gradRecorder{base: &dlrm.BaseEmbeddings{Group: group}}
	rec.reset(p)
	tr := &dlrm.Trainer{Model: model, Emb: rec, Opt: dlrm.SGD{LR: 0.05}, EmbLR: 0.05}

	iters := 6
	if o.Quick {
		iters = 3
	}
	// Track per-table spread of k80 across iterations to pick the
	// min/max-spread tables the paper plots.
	k80 := make([][]int, p.NumTables)
	type snapshot struct {
		table, iter, k int
		ci             []float64
	}
	var snaps []snapshot
	for it := 0; it < iters; it++ {
		rec.reset(p)
		tr.TrainBatch(gen.Batch(accSamples(o), 300))
		for t := 0; t < p.NumTables; t++ {
			pca := tensor.ComputePCA(rec.mats[t])
			k := pca.MinRankForVariance(0.8)
			k80[t] = append(k80[t], k)
			snaps = append(snaps, snapshot{table: t, iter: it, k: k, ci: pca.CumulativeImportance()})
		}
	}
	minT, maxT := spreadExtremes(k80)
	maxK := 0
	for _, s := range snaps {
		if s.table != minT && s.table != maxT {
			continue
		}
		label := fmt.Sprintf("t%d(min-spread)", s.table)
		if s.table == maxT {
			label = fmt.Sprintf("t%d(max-spread)", s.table)
		}
		r.Rows = append(r.Rows, []string{
			label, fmt.Sprintf("%d", s.iter), fmt.Sprintf("%d", s.k),
			pct(s.ci[0]), pct(ciAt(s.ci, 2)), pct(ciAt(s.ci, 5)),
		})
		if s.k > maxK {
			maxK = s.k
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("80%% of gradient variance needs at most %d of %d components (paper: 3-6 of 16)", maxK, p.EmbeddingDim),
		"the required rank varies across tables and iterations — motivating dynamic rank adaptation")
	return r, nil
}

// gradRecorder accumulates per-table dense gradient matrices while
// delegating updates to the base embeddings.
type gradRecorder struct {
	base *dlrm.BaseEmbeddings
	mats []*tensor.Matrix
}

func (g *gradRecorder) reset(p trace.Profile) {
	g.mats = g.mats[:0]
	for i := 0; i < p.NumTables; i++ {
		g.mats = append(g.mats, tensor.NewMatrix(p.TableSize, p.EmbeddingDim))
	}
}

func (g *gradRecorder) NumTables() int { return g.base.NumTables() }
func (g *gradRecorder) Dim() int       { return g.base.Dim() }
func (g *gradRecorder) Lookup(table int, ids []int32, dst []float64) {
	g.base.Lookup(table, ids, dst)
}
func (g *gradRecorder) ApplyGrad(table int, ids []int32, grad []float64, lr float64) {
	if len(ids) > 0 {
		inv := 1 / float64(len(ids))
		for _, id := range ids {
			row := g.mats[table].Row(int(id))
			for i, v := range grad {
				row[i] += inv * v
			}
		}
	}
	g.base.ApplyGrad(table, ids, grad, lr)
}

// Fig9 reproduces the sync-interval sweep (paper Fig 9): longer LoRA sync
// intervals widen the accuracy gap between distributed replicas.
func Fig9(o Options) (Report, error) {
	r := Report{
		ID:     "fig9",
		Title:  "Accuracy gap vs LoRA sync interval (paper Fig 9)",
		Header: []string{"sync_every(windows)", "meanAUC", "gap_vs_tightest"},
	}
	p := accProfile("criteo", o.Quick)
	p.DriftRate = 0.7
	windows := accWindows(o, 12)
	intervals := []int{1, 2, 4, 8}
	aucs := make([]float64, 0, len(intervals))
	for _, interval := range intervals {
		auc, err := runReplicaPair(p, o, interval, windows)
		if err != nil {
			return r, err
		}
		aucs = append(aucs, auc)
	}
	for i, interval := range intervals {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", interval), f4(aucs[i]), f4(aucs[i] - aucs[0]),
		})
	}
	if aucs[len(aucs)-1] <= aucs[0] {
		r.Notes = append(r.Notes, "tighter sync intervals yield equal or better accuracy (paper Fig 9 trend)")
	}
	return r, nil
}

// runReplicaPair trains two LiveUpdate replicas on disjoint halves of one
// stream, syncing every `interval` windows, and returns their mean AUC.
func runReplicaPair(p trace.Profile, o Options, interval, windows int) (float64, error) {
	gen, err := trace.NewGenerator(p, o.Seed)
	if err != nil {
		return 0, err
	}
	rng := tensor.NewRNG(o.Seed ^ 0x9)
	model, err := dlrm.NewModel(dlrm.ConfigForProfile(p), rng)
	if err != nil {
		return 0, err
	}
	group := emt.NewGroup(p.NumTables, p.TableSize, p.EmbeddingDim, rng)
	// Pretrain the shared base.
	bt := &dlrm.Trainer{Model: model, Emb: &dlrm.BaseEmbeddings{Group: group},
		Opt: dlrm.SGD{LR: 0.05}, EmbLR: 0.05}
	for w := 0; w < 4; w++ {
		bt.TrainBatch(gen.Batch(accSamples(o), 300))
	}
	group.ResetDirty()

	lcfg := lora.DefaultConfig(p.TableSize, p.EmbeddingDim)
	lcfg.AdaptInterval = 64
	replicas := make([]*lora.Set, 2)
	for i := range replicas {
		c := lcfg
		c.Seed = uint64(i) + o.Seed
		replicas[i], err = lora.NewSet(group.Clone(), c)
		if err != nil {
			return 0, err
		}
	}
	sg := collective.NewSyncGroup(replicas, simnet.Gbps100, 0.001)
	clock := simnet.NewClock()

	sum, count := 0.0, 0
	for w := 0; w < windows; w++ {
		samples := gen.Batch(accSamples(o), 300)
		// Evaluate each replica on the full fresh window.
		for _, rep := range replicas {
			sum += dlrm.EvaluateAUC(model, rep, samples)
			count++
		}
		// Round-robin request sharding: each replica trains on its half.
		for i, s := range samples {
			rep := replicas[i%2]
			var cache dlrm.ForwardCache
			logit := model.Forward(rep, s.Dense, s.Sparse, &cache)
			dLogit := dlrm.Sigmoid(logit) - float64(s.Label)
			dEmb := model.Backward(dLogit, &cache)
			model.Bottom.ZeroGrad()
			model.Top.ZeroGrad()
			for t, g := range dEmb {
				rep.ApplyGrad(t, s.Sparse[t], g, 0.05)
			}
		}
		if (w+1)%interval == 0 {
			if _, err := sg.Sync(clock); err != nil {
				return 0, err
			}
		}
	}
	return sum / float64(count), nil
}

// Fig12 reproduces the access-distribution CDF (paper Fig 12): a tiny
// fraction of embedding indices receives nearly all accesses.
func Fig12(o Options) (Report, error) {
	r := Report{
		ID:     "fig12",
		Title:  "CDF of embedding access distribution (paper Fig 12)",
		Header: []string{"top_fraction", "access_share"},
	}
	p := accProfile("bd-tb", o.Quick)
	gen, err := trace.NewGenerator(p, o.Seed)
	if err != nil {
		return r, err
	}
	n := 40000
	if o.Quick {
		n = 10000
	}
	for i := 0; i < n; i++ {
		gen.Next()
	}
	// Aggregate counts across tables.
	var counts []uint64
	for _, c := range gen.AccessCounts() {
		counts = append(counts, c...)
	}
	var top10 float64
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.20, 0.50} {
		share := metrics.TopShareCDF(counts, frac)
		if frac == 0.10 {
			top10 = share
		}
		r.Rows = append(r.Rows, []string{pct(frac), pct(share)})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("top 10%% of indices receive %s of accesses (paper: 93.8%%) — sets τ_prune", pct(top10)))
	return r, nil
}

// Table3 reproduces the headline accuracy comparison (paper Table III):
// average AUC improvement over DeltaUpdate with 10-minute updates.
func Table3(o Options) (Report, error) {
	r := Report{
		ID:     "table3",
		Title:  "Average AUC improvement (%) vs DeltaUpdate, 10-min updates (paper Table III)",
		Header: []string{"strategy"},
	}
	datasets := []string{"avazu", "criteo", "bd-tb"}
	if o.Quick {
		datasets = []string{"criteo"}
	}
	type variant struct {
		name      string
		kind      update.Kind
		quick     float64
		fixedRank int
	}
	variants := []variant{
		{name: "DeltaUpdate", kind: update.DeltaUpdate},
		{name: "NoUpdate", kind: update.NoUpdate},
		{name: "QuickUpdate-5%", kind: update.QuickUpdate, quick: 0.05},
		{name: "QuickUpdate-10%", kind: update.QuickUpdate, quick: 0.10},
		{name: "LiveUpdate-8 (fixed)", kind: update.LiveUpdate, fixedRank: 8},
		{name: "LiveUpdate-16 (fixed)", kind: update.LiveUpdate, fixedRank: 16},
		{name: "LiveUpdate (dynamic)", kind: update.LiveUpdate},
	}
	windows := accWindows(o, 12)
	pretrain := 12
	seeds := []uint64{o.Seed, o.Seed + 1, o.Seed + 2}
	if o.Quick {
		pretrain = 4
		seeds = seeds[:1]
	}
	results := make(map[string]map[string]float64) // dataset → variant → meanAUC
	overheads := make(map[string]float64)
	for _, d := range datasets {
		r.Header = append(r.Header, trace.Profiles()[d].Name)
		results[d] = make(map[string]float64)
		for _, v := range variants {
			var sum float64
			for _, seed := range seeds {
				p := accProfile(d, o.Quick)
				p.DriftRate *= 2.5 // pronounced drift: staleness dominates seed noise
				cfg := update.DefaultHarnessConfig(p, v.kind, seed)
				cfg.SamplesPerWindow = accSamples(o)
				cfg.UpdateEvery = 2
				cfg.FullSyncEvery = 12
				if v.quick > 0 {
					cfg.QuickAlpha = v.quick
				}
				cfg.FixedRank = v.fixedRank
				h := update.MustNewHarness(cfg)
				h.Pretrain(pretrain)
				res := h.Run(windows)
				sum += res.MeanAUC
				if v.name == "LiveUpdate (dynamic)" {
					overheads[d] = res.LoRAOverhead
				}
			}
			results[d][v.name] = sum / float64(len(seeds))
		}
	}
	for _, v := range variants {
		row := []string{v.name}
		for _, d := range datasets {
			delta := (results[d][v.name] - results[d]["DeltaUpdate"]) * 100
			if v.name == "DeltaUpdate" {
				row = append(row, "0 (baseline)")
			} else {
				row = append(row, fmt.Sprintf("%+.2f", delta))
			}
		}
		r.Rows = append(r.Rows, row)
	}
	for _, d := range datasets {
		live := results[d]["LiveUpdate (dynamic)"]
		no := results[d]["NoUpdate"]
		if live > no {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: LiveUpdate beats NoUpdate by %+.2f AUC pts; adapter overhead %s of EMT",
				trace.Profiles()[d].Name, (live-no)*100, pct(overheads[d])))
		}
	}
	r.Notes = append(r.Notes, "paper reports +0.04 to +0.24 for LiveUpdate variants; NoUpdate at -0.19 to -2.24")
	return r, nil
}

// Fig15 reproduces the two-hour accuracy trace (paper Fig 15): per-window
// AUC for DeltaUpdate, QuickUpdate, and LiveUpdate with 5-minute updates and
// hourly full syncs.
func Fig15(o Options) (Report, error) {
	r := Report{
		ID:     "fig15",
		Title:  "Accuracy over two hours, 5-min updates, hourly full sync (paper Fig 15)",
		Header: []string{"minute", "DeltaUpdate", "QuickUpdate", "LiveUpdate", "event"},
	}
	windows := accWindows(o, 24)
	kinds := []update.Kind{update.DeltaUpdate, update.QuickUpdate, update.LiveUpdate}
	series := make([][]float64, len(kinds))
	var liveMarkers map[int]bool
	pretrain := 12
	if o.Quick {
		pretrain = 4
	}
	for i, k := range kinds {
		p := accProfile("bd-tb", o.Quick)
		p.DriftRate *= 2.5
		cfg := update.DefaultHarnessConfig(p, k, o.Seed)
		cfg.SamplesPerWindow = accSamples(o)
		cfg.UpdateEvery = 1    // 5-minute updates
		cfg.FullSyncEvery = 12 // hourly
		h := update.MustNewHarness(cfg)
		h.Pretrain(pretrain)
		res := h.Run(windows)
		series[i] = res.AUCSeries
		if k == update.LiveUpdate {
			liveMarkers = make(map[int]bool)
			for _, m := range res.UpdateMarkers {
				liveMarkers[m] = true
			}
		}
	}
	liveWins := 0
	for w := 0; w < windows; w++ {
		event := ""
		if liveMarkers[w] {
			event = "full-update"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", (w+1)*5), f4(series[0][w]), f4(series[1][w]), f4(series[2][w]), event,
		})
		if series[2][w] >= series[0][w] {
			liveWins++
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("LiveUpdate ≥ DeltaUpdate in %d/%d windows (paper: surpasses most of the time)", liveWins, windows),
		"grey 'full-update' rows mark the hourly full-parameter syncs")
	return r, nil
}

// Fig17 reproduces the memory-optimization ablation (paper Fig 17): dynamic
// rank adaptation and pruning shrink the LoRA footprint by 97-99% vs a
// fixed-rank, fully resident table.
func Fig17(o Options) (Report, error) {
	r := Report{
		ID:     "fig17",
		Title:  "LoRA memory footprint by optimization (paper Fig 17)",
		Header: []string{"dataset", "fixed-16(B)", "dyn-rank(B)", "dyn+prune(B)", "rank_saving", "total_saving"},
	}
	datasets := []string{"avazu", "criteo", "bd-tb"}
	if o.Quick {
		datasets = []string{"criteo"}
	}
	for _, d := range datasets {
		p := accProfile(d, o.Quick)
		cfg := update.DefaultHarnessConfig(p, update.LiveUpdate, o.Seed)
		cfg.SamplesPerWindow = accSamples(o)
		cfg.FullSyncEvery = 0
		h := update.MustNewHarness(cfg)
		h.Pretrain(2)
		h.Run(accWindows(o, 8))
		set := h.LoRASet()

		var fixed16, dynFull, actual int64
		for ti, a := range set.Adapters {
			rows := int64(set.Base.Tables[ti].Rows())
			dim := int64(set.Base.Tables[ti].Dim)
			fixed16 += rows*16*8 + 16*dim*8
			dynFull += rows*int64(a.Rank())*8 + int64(a.Rank())*dim*8
			actual += a.SizeBytes()
		}
		r.Rows = append(r.Rows, []string{
			trace.Profiles()[d].Name,
			fmt.Sprintf("%d", fixed16),
			fmt.Sprintf("%d", dynFull),
			fmt.Sprintf("%d", actual),
			pct(1 - float64(dynFull)/float64(fixed16)),
			pct(1 - float64(actual)/float64(fixed16)),
		})
	}
	r.Notes = append(r.Notes,
		"paper: dynamic rank saves 80-89%, pruning brings the total to 97-99%",
		"for a 50 TB model this is the difference between 8 TB and ~0.5-1.5 TB of adapter state")
	return r, nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ciAt(ci []float64, idx int) float64 {
	if idx >= len(ci) {
		return 1
	}
	return ci[idx]
}

// spreadExtremes returns the table indices with the smallest and largest
// spread (max-min) of k80 across iterations.
func spreadExtremes(k80 [][]int) (minT, maxT int) {
	bestSpread, worstSpread := -1, -1
	for t, ks := range k80 {
		lo, hi := ks[0], ks[0]
		for _, k := range ks {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		spread := hi - lo
		if bestSpread == -1 || spread < bestSpread {
			bestSpread = spread
			minT = t
		}
		if worstSpread == -1 || spread > worstSpread {
			worstSpread = spread
			maxT = t
		}
	}
	return minT, maxT
}
