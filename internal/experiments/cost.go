package experiments

import (
	"fmt"

	"liveupdate/internal/collective"
	"liveupdate/internal/simnet"
	"liveupdate/internal/trace"
	"liveupdate/internal/update"
)

// newClock is a tiny helper shared by runners.
func newClock() *simnet.Clock { return simnet.NewClock() }

// Table2 prints the dataset registry (paper Table II).
func Table2(o Options) (Report, error) {
	r := Report{
		ID:     "table2",
		Title:  "Datasets for accuracy & performance testing (paper Table II)",
		Header: []string{"dataset", "samples", "EMT_size", "tables", "dim", "zipf_s", "drift/h"},
	}
	for _, name := range []string{"avazu", "criteo", "bd-tb", "avazu-tb", "criteo-tb"} {
		p := trace.Profiles()[name]
		r.Rows = append(r.Rows, []string{
			p.Name,
			fmt.Sprintf("%.1fM", float64(p.PaperSamples)/1e6),
			humanBytes(p.PaperEMTBytes),
			fmt.Sprintf("%d", p.NumTables),
			fmt.Sprintf("%d", p.EmbeddingDim),
			f2(p.ZipfS),
			f2(p.DriftRate),
		})
	}
	r.Notes = append(r.Notes, "TB-scale rows are the synthetically scaled system-test variants (paper §V-A)")
	return r, nil
}

// Fig8 reproduces the model-update timeline comparison (paper Fig 8): which
// model versions each strategy activates across one hour.
func Fig8(o Options) (Report, error) {
	r := Report{
		ID:     "fig8",
		Title:  "Model update timeline over 60 min (paper Fig 8)",
		Header: []string{"method", "versions/h", "first_version_at", "cadence", "kinds"},
	}
	cm := update.DefaultCostModel(trace.Profiles()["bd-tb"])
	const window = 300.0
	counts := map[update.Kind]int{}
	for _, k := range []update.Kind{update.DeltaUpdate, update.QuickUpdate, update.LiveUpdate} {
		events := cm.Timeline(k, window, 3600)
		counts[k] = len(events)
		first := 0.0
		cadence := 0.0
		kinds := map[string]int{}
		if len(events) > 0 {
			first = events[0].Time
			if len(events) > 1 {
				cadence = events[1].Time - events[0].Time
			}
			for _, e := range events {
				kinds[e.Kind]++
			}
		}
		r.Rows = append(r.Rows, []string{
			k.String(),
			fmt.Sprintf("%d", len(events)),
			fmt.Sprintf("%.1f min", first/60),
			fmt.Sprintf("%.1f min", cadence/60),
			fmt.Sprintf("%v", kinds),
		})
	}
	if counts[update.LiveUpdate] > counts[update.QuickUpdate] &&
		counts[update.QuickUpdate] >= counts[update.DeltaUpdate] {
		r.Notes = append(r.Notes, "LiveUpdate delivers the most versions per hour (paper: most frequent updates)")
	}
	return r, nil
}

// Fig14 reproduces the update-cost comparison (paper Fig 14): hourly update
// cost for each method on each TB-scale dataset at 20/10/5-minute windows.
func Fig14(o Options) (Report, error) {
	r := Report{
		ID:     "fig14",
		Title:  "Hourly update cost (minutes) across production-scale datasets (paper Fig 14)",
		Header: []string{"dataset", "interval", "NoUpdate", "DeltaUpdate", "QuickUpdate", "LiveUpdate"},
	}
	datasets := []string{"avazu-tb", "criteo-tb", "bd-tb"}
	intervals := []float64{1200, 600, 300}
	var worst5Delta, best5Live float64
	for _, d := range datasets {
		cm := update.DefaultCostModel(trace.Profiles()[d])
		for _, iv := range intervals {
			row := []string{trace.Profiles()[d].Name, fmt.Sprintf("%.0f min", iv/60)}
			for _, k := range []update.Kind{update.NoUpdate, update.DeltaUpdate, update.QuickUpdate, update.LiveUpdate} {
				cost := cm.HourlyCost(k, iv) / 60
				row = append(row, f2(cost))
				if iv == 300 {
					switch k {
					case update.DeltaUpdate:
						if cost > worst5Delta {
							worst5Delta = cost
						}
					case update.LiveUpdate:
						if best5Live == 0 || cost < best5Live {
							best5Live = cost
						}
					}
				}
			}
			r.Rows = append(r.Rows, row)
		}
	}
	cm := update.DefaultCostModel(trace.Profiles()["bd-tb"])
	speedup := cm.HourlyCost(update.QuickUpdate, 300) / cm.HourlyCost(update.LiveUpdate, 300)
	r.Notes = append(r.Notes,
		fmt.Sprintf("at 5-min frequency DeltaUpdate exceeds the hour (%.0f min) while LiveUpdate stays at %.1f min", worst5Delta, best5Live),
		fmt.Sprintf("LiveUpdate vs QuickUpdate at 5-min frequency: %.1fx cheaper (paper: ≥2x)", speedup),
		"LiveUpdate cost is frequency-independent: it is local compute, not transfer")
	return r, nil
}

// Fig19 reproduces the scalability study (paper Fig 19): LoRA sync time as
// the inference cluster grows, measured 2-16 nodes and projected 24-48.
func Fig19(o Options) (Report, error) {
	r := Report{
		ID:     "fig19",
		Title:  "LoRA sync + local train time vs cluster size (paper Fig 19)",
		Header: []string{"nodes", "sync(s)", "train(s)", "total(min)", "mode"},
	}
	p := trace.Profiles()["bd-tb"]
	cm := update.DefaultCostModel(p)
	// Total LoRA payload: ~2% of the EMT (the paper's adapter footprint),
	// sharded across nodes; every node contributes its shard to AllGather.
	totalLoRA := int64(0.02 * float64(p.PaperEMTBytes))
	trainSec := cm.LiveTrainSeconds(300)
	const latency = 0.005 // per-round collective latency at cluster scale
	measured := []int{2, 4, 8, 16}
	projected := []int{24, 32, 48}
	timeFor := func(n int) float64 {
		perNode := totalLoRA / int64(n)
		return collective.AllGatherTime(n, perNode, 100e9/8, latency)
	}
	var t2, t16 float64
	maxTotal := 0.0
	for _, n := range measured {
		sync := timeFor(n)
		if n == 2 {
			t2 = sync
		}
		if n == 16 {
			t16 = sync
		}
		total := (sync + trainSec) / 60
		if total > maxTotal {
			maxTotal = total
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n), f2(sync), f2(trainSec), f2(total), "measured",
		})
	}
	for _, n := range projected {
		sync := timeFor(n)
		total := (sync + trainSec) / 60
		if total > maxTotal {
			maxTotal = total
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n), f2(sync), f2(trainSec), f2(total), "projected",
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("sync grows %.2fx from 2→16 nodes (log-like, not linear: tree AllGather)", t16/t2),
		fmt.Sprintf("worst total %.1f min — under the 10-minute freshness bound at 48 nodes (paper)", maxTotal))
	return r, nil
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1f TB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
