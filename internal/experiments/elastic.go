package experiments

import (
	"context"
	"fmt"
	"time"

	"liveupdate/internal/cluster"
	"liveupdate/internal/core"
	"liveupdate/internal/driver"
	"liveupdate/internal/fleet"
	"liveupdate/internal/trace"
)

// Elastic measures what fleet churn costs: the same trace is driven through
// a 4-replica hash-routed fleet twice — once steady, once under a chaos
// schedule that kills a replica mid-trace, replaces it (checkpoint + LoRA
// catch-up from a live donor), and scales the fleet up — and the two runs
// are compared on served volume, sync count, catch-up bill, and wall-clock
// throughput. Chaos events land at deterministic drain points of the
// concurrent driver, so the churn row is reproducible for a fixed seed.
// Options.SyncMode restricts the run to one propagation mode (default:
// async, the serving default); Options.Chaos overrides the built-in
// schedule with a parsed -chaos script.
func Elastic(o Options) (Report, error) {
	mode := cluster.SyncAsync
	if o.SyncMode != "" {
		m, err := cluster.ParseSyncMode(o.SyncMode)
		if err != nil {
			return Report{}, err
		}
		mode = m
	}
	requests := 16000
	if o.Quick {
		requests = 3000
	}
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		return Report{}, err
	}
	p.NumTables = 4
	p.TableSize = 1000
	p.NumDense = 8
	p.MultiHot = []int{1, 1, 1, 2}

	run := func(schedule fleet.Schedule) (driver.Report, error) {
		opts := core.DefaultOptions(p, o.Seed)
		opts.TrainInterval = 4
		r, err := cluster.NewRouter(cluster.Hash)
		if err != nil {
			return driver.Report{}, err
		}
		c, err := cluster.New(cluster.Config{
			Base:      opts,
			Replicas:  4,
			Router:    r,
			SyncEvery: 500 * time.Millisecond,
			Mode:      mode,
		})
		if err != nil {
			return driver.Report{}, err
		}
		gen, err := trace.NewGenerator(p, o.Seed^0x51)
		if err != nil {
			return driver.Report{}, err
		}
		return driver.Drive(context.Background(), c, gen.Next, driver.Config{
			Requests:  requests,
			Workers:   8,
			Seed:      o.Seed,
			Chaos:     schedule,
			BatchSize: o.Batch,
		})
	}

	steady, err := run(nil)
	if err != nil {
		return Report{}, fmt.Errorf("elastic steady: %w", err)
	}

	var schedule fleet.Schedule
	if o.Chaos != "" {
		schedule, err = fleet.ParseScript(o.Chaos)
		if err != nil {
			return Report{}, fmt.Errorf("elastic: %w", err)
		}
	} else {
		// Anchor the built-in schedule to the steady run's measured span so
		// every event fires mid-trace at any fidelity: kill at 30%, replace
		// at 50%, scale up at 70% of the steady virtual time.
		at := func(f float64) time.Duration {
			return time.Duration(f * steady.VirtualTime * float64(time.Second))
		}
		schedule = fleet.Schedule{
			{At: at(0.30), Action: fleet.Kill, Arg: 1},
			{At: at(0.50), Action: fleet.Replace, Arg: 1},
			{At: at(0.70), Action: fleet.Scale, Arg: 6},
		}
	}
	churn, err := run(schedule)
	if err != nil {
		return Report{}, fmt.Errorf("elastic churn: %w", err)
	}

	rep := Report{
		ID:    "elastic",
		Title: fmt.Sprintf("Elastic fleet: steady vs churn serving (%s sync)", mode),
		Header: []string{"scenario", "served", "members", "fails", "joins",
			"syncs", "catchup(KB)", "catchup(ms)", "virtTime(s)", "wallQPS"},
		Notes: []string{
			fmt.Sprintf("churn schedule: %s (applied at deterministic driver drain points)", schedule),
			"served and the membership/sync counters are deterministic per scenario for any worker count; wallQPS is measured wall-clock throughput",
			"catchup columns bill the checkpoint + LoRA state transfers that brought replacements to the fleet epoch (charged to the virtual sync clock, reported separately from the sync bill)",
		},
	}
	for _, row := range []struct {
		name string
		r    driver.Report
	}{{"steady", steady}, {"churn", churn}} {
		st := row.r.Final
		rep.Rows = append(rep.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.r.Served),
			fmt.Sprintf("%d", st.Members),
			fmt.Sprintf("%d", st.Fails),
			fmt.Sprintf("%d", st.Joins),
			fmt.Sprintf("%d", st.Syncs),
			f2(float64(st.CatchUpBytes) / 1024),
			f2(st.CatchUpSeconds * 1000),
			f2(row.r.VirtualTime),
			fmt.Sprintf("%.0f", row.r.QPS),
		})
	}
	if churn.ChaosSkipped > 0 {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("WARNING: %d scheduled events never fired (trace too short for their timestamps)", churn.ChaosSkipped))
	}
	return rep, nil
}
