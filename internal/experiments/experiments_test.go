package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 7, Quick: true} }

// run executes a registered runner and sanity-checks report structure.
func run(t *testing.T, id string) Report {
	t.Helper()
	runner, ok := Registry()[id]
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	rep, err := runner(quickOpts())
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if rep.ID != id {
		t.Fatalf("report id %q != %q", rep.ID, id)
	}
	if len(rep.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for _, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("%s row width %d != header %d", id, len(row), len(rep.Header))
		}
	}
	if !strings.Contains(rep.String(), rep.Title) {
		t.Fatalf("%s String() missing title", id)
	}
	return rep
}

func cell(t *testing.T, rep Report, row int, col string) string {
	t.Helper()
	for i, h := range rep.Header {
		if h == col {
			return rep.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, rep.Header)
	return ""
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v / 100
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	if err != nil {
		t.Fatalf("bad float %q: %v", s, err)
	}
	return v
}

func TestRegistryCoversAllIDs(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Fatalf("id %q missing from registry", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Fatalf("registry has %d entries, IDs lists %d", len(reg), len(IDs()))
	}
}

func TestTable2(t *testing.T) {
	rep := run(t, "table2")
	if len(rep.Rows) != 5 {
		t.Fatalf("table2 rows %d, want 5 datasets", len(rep.Rows))
	}
}

func TestFig3aUpdateRatioShape(t *testing.T) {
	rep := run(t, "fig3a")
	r10 := parsePct(t, cell(t, rep, 0, "update_ratio"))
	r30 := parsePct(t, cell(t, rep, 1, "update_ratio"))
	r60 := parsePct(t, cell(t, rep, 2, "update_ratio"))
	if !(r10 < r30 && r30 < r60) {
		t.Fatalf("ratios not monotone: %v %v %v", r10, r30, r60)
	}
	if r10 < 0.03 {
		t.Fatalf("10-min ratio %v implausibly low", r10)
	}
}

func TestFig3bRecovery(t *testing.T) {
	rep := run(t, "fig3b")
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "recovery") && strings.Contains(n, "+") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fig3b should report positive AUC recovery after updates: %v", rep.Notes)
	}
}

func TestFig4DiurnalPeak(t *testing.T) {
	rep := run(t, "fig4")
	if len(rep.Rows) != 24 {
		t.Fatalf("fig4 rows %d", len(rep.Rows))
	}
	peak := 0.0
	for i := range rep.Rows {
		if u := parsePct(t, cell(t, rep, i, "cpu_util")); u > peak {
			peak = u
		}
	}
	if peak > 0.201 || peak < 0.15 {
		t.Fatalf("peak util %v, want ~20%%", peak)
	}
}

func TestFig5PowerOverhead(t *testing.T) {
	rep := run(t, "fig5")
	for i := range rep.Rows {
		ov := parsePct(t, cell(t, rep, i, "overhead"))
		if ov < 0.05 || ov > 0.5 {
			t.Fatalf("power overhead %v outside band", ov)
		}
	}
}

func TestFig6LowRank(t *testing.T) {
	rep := run(t, "fig6")
	for i := range rep.Rows {
		k := parseF(t, cell(t, rep, i, "k80"))
		if k < 1 || k > 16 {
			t.Fatalf("k80 %v out of range", k)
		}
	}
}

func TestFig8VersionCounts(t *testing.T) {
	rep := run(t, "fig8")
	var counts []float64
	for i := range rep.Rows {
		counts = append(counts, parseF(t, cell(t, rep, i, "versions/h")))
	}
	// Rows: Delta, Quick, Live — Live must lead.
	if !(counts[2] > counts[1] && counts[1] >= counts[0]) {
		t.Fatalf("version counts %v: LiveUpdate must version most often", counts)
	}
}

func TestFig9GapGrowsWithInterval(t *testing.T) {
	rep := run(t, "fig9")
	first := parseF(t, cell(t, rep, 0, "meanAUC"))
	last := parseF(t, cell(t, rep, len(rep.Rows)-1, "meanAUC"))
	if last > first+0.005 {
		t.Fatalf("longest interval should not beat tightest: %v vs %v", last, first)
	}
}

func TestFig10NotSaturated(t *testing.T) {
	rep := run(t, "fig10")
	for i := range rep.Rows {
		u := parsePct(t, cell(t, rep, i, "dram_util"))
		if u > 1 {
			t.Fatalf("utilization %v over 100%%", u)
		}
	}
}

func TestFig11OptimizationsRaiseHitRatios(t *testing.T) {
	rep := run(t, "fig11")
	get := func(config, col string) float64 {
		for i := range rep.Rows {
			if rep.Rows[i][0] == config {
				return parsePct(t, cell(t, rep, i, col))
			}
		}
		t.Fatalf("config %q missing", config)
		return 0
	}
	if get("w/ Reuse+Scheduling", "train_hit") <= get("w/o Opt", "train_hit") {
		t.Fatal("reuse+scheduling must raise training hit ratio (Fig 11a)")
	}
	if get("w/ Reuse+Scheduling", "infer_hit") <= get("w/o Opt", "infer_hit") {
		t.Fatal("reuse+scheduling must raise inference hit ratio (Fig 11b)")
	}
}

func TestFig12AccessSkew(t *testing.T) {
	rep := run(t, "fig12")
	// Row 2 is top 10%.
	share := parsePct(t, cell(t, rep, 2, "access_share"))
	if share < 0.55 {
		t.Fatalf("top-10%% share %v too low (paper: 93.8%%)", share)
	}
	// Monotone in fraction.
	prev := 0.0
	for i := range rep.Rows {
		s := parsePct(t, cell(t, rep, i, "access_share"))
		if s < prev {
			t.Fatal("CDF must be monotone")
		}
		prev = s
	}
}

func TestFig14CostShape(t *testing.T) {
	rep := run(t, "fig14")
	if len(rep.Rows) != 9 {
		t.Fatalf("fig14 rows %d, want 3 datasets × 3 intervals", len(rep.Rows))
	}
	for i := range rep.Rows {
		no := parseF(t, cell(t, rep, i, "NoUpdate"))
		delta := parseF(t, cell(t, rep, i, "DeltaUpdate"))
		quick := parseF(t, cell(t, rep, i, "QuickUpdate"))
		live := parseF(t, cell(t, rep, i, "LiveUpdate"))
		if no != 0 {
			t.Fatal("NoUpdate must cost 0")
		}
		if !(live < quick && quick < delta) {
			t.Fatalf("row %d cost order violated: live %v quick %v delta %v", i, live, quick, delta)
		}
	}
}

func TestTable3LiveUpdateWins(t *testing.T) {
	rep := run(t, "table3")
	get := func(strategy string) float64 {
		for i := range rep.Rows {
			if rep.Rows[i][0] == strategy {
				v := rep.Rows[i][1]
				if strings.Contains(v, "baseline") {
					return 0
				}
				return parseF(t, v)
			}
		}
		t.Fatalf("strategy %q missing", strategy)
		return 0
	}
	no := get("NoUpdate")
	live := get("LiveUpdate (dynamic)")
	if no >= 0 {
		t.Fatalf("NoUpdate should trail the baseline, got %+v", no)
	}
	if live <= no {
		t.Fatalf("LiveUpdate (%v) must beat NoUpdate (%v)", live, no)
	}
}

func TestFig15SeriesComplete(t *testing.T) {
	rep := run(t, "fig15")
	for i := range rep.Rows {
		for _, col := range []string{"DeltaUpdate", "QuickUpdate", "LiveUpdate"} {
			v := parseF(t, cell(t, rep, i, col))
			if v < 0.3 || v > 1 {
				t.Fatalf("AUC %v out of range in row %d", v, i)
			}
		}
	}
}

func TestFig16IsolationOrdering(t *testing.T) {
	rep := run(t, "fig16")
	get := func(config string) float64 {
		for i := range rep.Rows {
			if rep.Rows[i][0] == config {
				return parseF(t, cell(t, rep, i, "P99(ms)"))
			}
		}
		t.Fatalf("config %q missing", config)
		return 0
	}
	floor := get("Only Infer")
	naive := get("w/o Opt")
	full := get("w/ Reuse+Scheduling")
	if naive <= floor {
		t.Fatalf("naive co-location should inflate P99: %v vs floor %v", naive, floor)
	}
	if full >= naive {
		t.Fatalf("isolation should recover P99: %v vs naive %v", full, naive)
	}
}

func TestFig17MemorySavings(t *testing.T) {
	rep := run(t, "fig17")
	for i := range rep.Rows {
		total := parsePct(t, cell(t, rep, i, "total_saving"))
		if total < 0.5 {
			t.Fatalf("total memory saving %v too small (paper: 97-99%%)", total)
		}
		fixed := parseF(t, cell(t, rep, i, "fixed-16(B)"))
		actual := parseF(t, cell(t, rep, i, "dyn+prune(B)"))
		if actual >= fixed {
			t.Fatal("optimized footprint must undercut fixed-16")
		}
	}
}

func TestFig18PowerUtilization(t *testing.T) {
	rep := run(t, "fig18")
	// Row 0: power; row 1: utilization.
	pB := parseF(t, cell(t, rep, 0, "before(inference-only)"))
	pA := parseF(t, cell(t, rep, 0, "after(LiveUpdate)"))
	if pA <= pB {
		t.Fatal("LiveUpdate must raise power")
	}
	uB := parsePct(t, cell(t, rep, 1, "before(inference-only)"))
	uA := parsePct(t, cell(t, rep, 1, "after(LiveUpdate)"))
	if uA <= uB {
		t.Fatal("LiveUpdate must raise utilization")
	}
}

func TestFig19LogScaling(t *testing.T) {
	rep := run(t, "fig19")
	var measured, projected int
	for i := range rep.Rows {
		mode := cell(t, rep, i, "mode")
		switch mode {
		case "measured":
			measured++
		case "projected":
			projected++
		}
		total := parseF(t, cell(t, rep, i, "total(min)"))
		if total >= 10 {
			t.Fatalf("total %v min breaches the 10-minute freshness bound", total)
		}
	}
	if measured != 4 || projected != 3 {
		t.Fatalf("rows: %d measured, %d projected", measured, projected)
	}
}
