package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/driver"
	"liveupdate/internal/faultnet"
	"liveupdate/internal/netclient"
	"liveupdate/internal/netserve"
	"liveupdate/internal/trace"
)

// faultwireVirt is the slice of core.Stats the faultwire experiment demands
// be bit-identical across every fault class: everything virtual-time derived.
// Wall-clock fields (QPS, Elapsed) and the wire ledger are excluded — faults
// cost real time by design; they must not cost simulated state.
type faultwireVirt struct {
	Served      uint64
	P50         float64
	P99         float64
	MeanLatency float64
	Violations  uint64
	TrainSteps  uint64
	FullSyncs   uint64
	VirtualTime float64
	InferHit    float64
	TrainHit    float64
}

func virtOf(st core.Stats) faultwireVirt {
	return faultwireVirt{
		Served:      st.Served,
		P50:         st.P50,
		P99:         st.P99,
		MeanLatency: st.MeanLatency,
		Violations:  st.Violations,
		TrainSteps:  st.TrainSteps,
		FullSyncs:   st.FullSyncs,
		VirtualTime: st.VirtualTime,
		InferHit:    st.InferenceHitRatio,
		TrainHit:    st.TrainingHitRatio,
	}
}

// Faultwire proves the wire path's resilience contract under deterministic
// network chaos. One system serves one trace six ways: once in-process (the
// virtual-time ground truth), then over a real loopback TCP socket with the
// listener wrapped by internal/faultnet — fault-free first, then once per
// fault class (latency, reset, blackhole, truncate, corrupt), each from a
// fixed seed so a failing run replays exactly.
//
// Three invariants are asserted, not just reported, and any violation fails
// the experiment:
//
//   - Reconciliation: every request the driver sent was either accepted (and
//     therefore completed — the gateway's drain ledger) or given up on by
//     the client; accepted == sent exactly, so no fault ever duplicated a
//     served request.
//   - Drain ledger: after the graceful Close, accepted == completed on every
//     endpoint — a drain sheds zero accepted requests.
//   - Virtual-time identity: the server's virtual-time statistics under
//     every fault class are bit-identical to the fault-free in-process run.
//     Faults move requests around on the wall clock; the simulation must
//     not be able to tell.
//
// The drive runs one worker on one lane with unbatched requests: a closed
// loop in which retries preserve arrival order, which is what makes the
// virtual-time identity provable rather than statistical. Fault parameters
// keep every injected delay far below the client's per-attempt deadline so
// a slow request is never abandoned mid-serve (the one way a duplicate
// could happen).
func Faultwire(o Options) (Report, error) {
	requests := 600
	if o.Quick {
		requests = 200
	}
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		return Report{}, err
	}
	p.NumTables = 4
	p.TableSize = 1000
	p.NumDense = 8
	p.MultiHot = []int{1, 1, 1, 2}

	newSystem := func() (*core.System, error) {
		opts := core.DefaultOptions(p, o.Seed)
		opts.TrainInterval = 4
		return core.New(opts)
	}
	drive := func(srv driver.Server) (driver.Report, error) {
		gen, err := trace.NewGenerator(p, o.Seed^0x51)
		if err != nil {
			return driver.Report{}, err
		}
		return driver.Drive(context.Background(), srv, gen.Next, driver.Config{
			Requests: requests, Workers: 1, Seed: o.Seed,
		})
	}

	// Ground truth: the same drive with no wire at all.
	sys, err := newSystem()
	if err != nil {
		return Report{}, err
	}
	baseRep, err := drive(sys)
	if err != nil {
		return Report{}, fmt.Errorf("faultwire in-process: %w", err)
	}
	baseline := virtOf(baseRep.Final)

	// Every injected delay must stay far below the client's per-attempt
	// deadline: a request must fail loudly (reset/truncate/blackhole-kill)
	// or arrive — never be abandoned by the client while the server still
	// serves it, which would duplicate the serve.
	plans := []string{
		"", // fault-free wire: the serialization path alone must already match
		"latency(p=0.15,min=0s,max=2ms)",
		"reset(p=0.08)",
		"blackhole(p=0.05,stall=10ms)",
		"truncate(p=0.08)",
		"corrupt(p=0.08,bits=3)",
	}

	r := Report{
		ID:    "faultwire",
		Title: "fault injection: wire resilience under deterministic network chaos",
		Header: []string{"plan", "served", "faults", "transportRetries", "shed429",
			"gaveUp", "accepted", "completed", "virtIdentical"},
		Rows: [][]string{{"in-process", fmt.Sprintf("%d", baseRep.Served),
			"-", "-", "-", "-", "-", "-", "true"}},
	}

	for _, planStr := range plans {
		name := "wire"
		plan := faultnet.Plan{}
		if planStr != "" {
			if plan, err = faultnet.ParsePlan(planStr); err != nil {
				return Report{}, err
			}
			plan.Seed = o.Seed ^ 0xfa17
			name = plan.Faults[0].Class.String()
		}

		sys, err := newSystem()
		if err != nil {
			return Report{}, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Report{}, err
		}
		var lnUse net.Listener = ln
		var faulted *faultnet.Listener
		if plan.Enabled() {
			faulted = faultnet.WrapListener(ln, plan)
			lnUse = faulted
		}
		gw, err := netserve.New(sys, lnUse, netserve.Config{})
		if err != nil {
			ln.Close()
			return Report{}, err
		}
		remote, err := netclient.Dial(ln.Addr().String(), netclient.Config{
			Conns: 1, Timeout: 2 * time.Second, Retries: 512,
			BackoffBase: time.Millisecond, MaxRetryWait: 10 * time.Millisecond,
			Seed: o.Seed,
		})
		if err != nil {
			gw.Close()
			return Report{}, fmt.Errorf("faultwire %s: dial: %w", name, err)
		}
		rep, err := drive(remote)
		gaveUp := remote.GaveUp()
		retries := remote.TransportRetries()
		shed := remote.Shed429()
		remote.Close()
		if err != nil {
			gw.Close()
			return Report{}, fmt.Errorf("faultwire %s: %w", name, err)
		}
		// Graceful drain, then read the ledger: nothing accepted may be lost.
		if err := gw.Close(); err != nil {
			return Report{}, fmt.Errorf("faultwire %s: drain: %w", name, err)
		}
		var accepted, completed uint64
		for _, ep := range gw.WireStats() {
			accepted += ep.Accepted
			completed += ep.Completed
			if ep.Accepted != ep.Completed {
				return Report{}, fmt.Errorf(
					"faultwire %s: drain ledger: %s accepted %d != completed %d",
					name, ep.Endpoint, ep.Accepted, ep.Completed)
			}
		}
		// Reconciliation: sent == accepted + gave-up, with no duplicates.
		if accepted+gaveUp != uint64(requests) {
			return Report{}, fmt.Errorf(
				"faultwire %s: ledger does not reconcile: accepted %d + gaveUp %d != sent %d",
				name, accepted, gaveUp, requests)
		}
		// The server's view of the drive, not the transported copy.
		rep.Final = gw.Stats()
		virt := virtOf(rep.Final)
		if virt != baseline {
			return Report{}, fmt.Errorf(
				"faultwire %s: virtual-time stats diverged from in-process baseline:\n  got  %+v\n  want %+v",
				name, virt, baseline)
		}
		var faults uint64
		if faulted != nil {
			faults = faulted.FaultsTotal()
		}
		r.Rows = append(r.Rows, []string{
			name,
			fmt.Sprintf("%d", rep.Served),
			fmt.Sprintf("%d", faults),
			fmt.Sprintf("%d", retries),
			fmt.Sprintf("%d", shed),
			fmt.Sprintf("%d", gaveUp),
			fmt.Sprintf("%d", accepted),
			fmt.Sprintf("%d", completed),
			"true",
		})
	}

	r.Notes = append(r.Notes,
		"every row passed three asserted invariants: accepted + gaveUp == sent (no request lost, none duplicated), accepted == completed after graceful drain, and virtual-time statistics bit-identical to the in-process baseline",
		"faults are seed-deterministic: the same plan seed replays the same per-connection fault sequence",
		"the corrupt row survives bit flips because the client stamps each body with a CRC-32 the gateway verifies before admission — a damaged frame is a retryable 400, never a silently different sample",
		"fault classes cost wall-clock time (retries, backoff, stalls), never simulated state",
	)
	return r, nil
}
