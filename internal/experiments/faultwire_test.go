package experiments

import "testing"

// TestFaultwire runs the chaos experiment in quick mode. The experiment
// asserts its own invariants (ledger reconciliation, drain completeness,
// virtual-time identity) and returns an error on any violation, so most of
// the value is simply that run() does not fail; the checks below pin the
// report shape and that chaos actually happened.
func TestFaultwire(t *testing.T) {
	rep := run(t, "faultwire")
	// One in-process baseline row, one fault-free wire row, one per class.
	if len(rep.Rows) != 7 {
		t.Fatalf("faultwire rows %d, want 7", len(rep.Rows))
	}
	for i := 1; i < len(rep.Rows); i++ {
		if got := cell(t, rep, i, "gaveUp"); got != "0" {
			t.Fatalf("row %q gave up %s requests", rep.Rows[i][0], got)
		}
		if got := cell(t, rep, i, "virtIdentical"); got != "true" {
			t.Fatalf("row %q virtual stats diverged", rep.Rows[i][0])
		}
	}
	// The fault-free wire row must inject nothing; every fault row must
	// actually inject — a plan that never fires proves nothing.
	if got := cell(t, rep, 1, "faults"); got != "0" {
		t.Fatalf("fault-free wire row injected %s faults", got)
	}
	for i := 2; i < len(rep.Rows); i++ {
		if got := cell(t, rep, i, "faults"); got == "0" {
			t.Fatalf("row %q injected no faults — plan never fired", rep.Rows[i][0])
		}
	}
}
