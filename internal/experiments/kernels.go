package experiments

import (
	"fmt"
	"math"
	"time"

	"liveupdate/internal/dlrm"
	"liveupdate/internal/emt"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

// KernelAUCEpsilon is the named accuracy gate for quantized inference: a
// quantized model's AUC may differ from the float64 baseline by at most this
// much, in either direction. The kernels experiment FAILs any mode that
// exceeds it, and TestQuantAUCWithinEpsilon asserts it.
const KernelAUCEpsilon = 0.01

// kernelDims are the model-shaped layer sizes the timing sweep runs over
// (the bench profile's widest layers: bottom 64×8, top 64×26 and 32×64).
var kernelDims = []struct{ rows, cols int }{
	{64, 26},
	{64, 64},
}

// timeKernel reports ns/op for f amortized over reps runs.
func timeKernel(reps int, f func()) float64 {
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// Kernels sweeps the compute-kernel variants — naive scalar, cache-blocked/
// unrolled, batched GEMM, and int8 quantized — at serving batch sizes 1, 16,
// and 64 on model-shaped matrices, then runs the quantization accuracy gate:
// |AUC(quantized) − AUC(float64)| must stay under KernelAUCEpsilon for every
// quantized mode. Timing columns are wall-clock ns per batch (hardware-
// dependent); the AUC columns are deterministic from the seed.
func Kernels(o Options) (Report, error) {
	r := Report{
		ID:     "kernels",
		Title:  "Compute kernel sweep: scalar vs blocked vs GEMM vs int8 (+ AUC gate)",
		Header: []string{"shape", "batch", "ns_scalar", "ns_blocked", "ns_gemm", "ns_int8", "speedup"},
	}
	reps := 2000
	if o.Quick {
		reps = 200
	}
	rng := tensor.NewRNG(o.Seed ^ 0x6e41)
	for _, dim := range kernelDims {
		w := tensor.RandomMatrix(rng, dim.rows, dim.cols, 1)
		q := tensor.Quantize(w)
		for _, batch := range []int{1, 16, 64} {
			x := tensor.RandomMatrix(rng, batch, dim.cols, 1)
			dst := tensor.NewMatrix(batch, dim.rows)
			xq := make([]int8, dim.cols)

			nsScalar := timeKernel(reps, func() {
				for b := 0; b < batch; b++ {
					tensor.MatVecRefInto(dst.Row(b), w, x.Row(b))
				}
			})
			nsBlocked := timeKernel(reps, func() {
				for b := 0; b < batch; b++ {
					tensor.MatVecInto(dst.Row(b), w, x.Row(b))
				}
			})
			nsGEMM := timeKernel(reps, func() {
				tensor.MatMulTransInto(dst, x, w)
			})
			nsInt8 := timeKernel(reps, func() {
				for b := 0; b < batch; b++ {
					sx := tensor.QuantizeVectorInto(xq, x.Row(b))
					q.MatVecInto(dst.Row(b), xq, sx)
				}
			})
			best := math.Min(nsGEMM, math.Min(nsBlocked, nsInt8))
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%dx%d", dim.rows, dim.cols), fmt.Sprintf("%d", batch),
				f0(nsScalar), f0(nsBlocked), f0(nsGEMM), f0(nsInt8),
				fmt.Sprintf("%.2fx", nsScalar/best),
			})
		}
	}

	modes := []dlrm.QuantMode{dlrm.QuantInt8, dlrm.QuantF16}
	if o.Quant != "" && o.Quant != string(dlrm.QuantNone) {
		m, err := dlrm.ParseQuantMode(o.Quant)
		if err != nil {
			return r, err
		}
		modes = []dlrm.QuantMode{m}
	}
	r.Rows = append(r.Rows, []string{"---", "", "", "", "", "", ""})
	baseAUC := 0.0
	for i, mode := range modes {
		base, quant, err := QuantAUCDelta(o, mode)
		if err != nil {
			return r, err
		}
		baseAUC = base
		delta := math.Abs(quant - base)
		verdict := "PASS"
		if delta > KernelAUCEpsilon {
			verdict = "FAIL"
			r.Notes = append(r.Notes,
				fmt.Sprintf("quant %s: |ΔAUC| %.4f exceeds epsilon %.4f", mode, delta, KernelAUCEpsilon))
		}
		if i == 0 {
			r.Rows = append(r.Rows, []string{"auc", "float64", f4(base), "", "", "", ""})
		}
		r.Rows = append(r.Rows, []string{"auc", string(mode), f4(quant),
			fmt.Sprintf("|d|=%.4f", delta), fmt.Sprintf("eps=%.4f", KernelAUCEpsilon), verdict, ""})
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"gate: every quantized mode must hold |AUC-%0.4f| <= %.4f", baseAUC, KernelAUCEpsilon))
	return r, nil
}

// QuantAUCDelta trains a small DLRM in float64, then scores one held-out
// sample set twice — float64 weights and mode-quantized weights — returning
// both AUCs. Everything is deterministic from o.Seed: training is identical
// in both cases (quantization only snapshots published inference weights),
// so the delta isolates the kernel's numeric error.
func QuantAUCDelta(o Options, mode dlrm.QuantMode) (baseAUC, quantAUC float64, err error) {
	p := accProfile("criteo", o.Quick)
	gen, err := trace.NewGenerator(p, o.Seed)
	if err != nil {
		return 0, 0, err
	}
	rng := tensor.NewRNG(o.Seed ^ 0x6b31)
	model, err := dlrm.NewModel(dlrm.ConfigForProfile(p), rng)
	if err != nil {
		return 0, 0, err
	}
	group := emt.NewGroup(p.NumTables, p.TableSize, p.EmbeddingDim, rng)
	emb := &dlrm.BaseEmbeddings{Group: group}
	tr := &dlrm.Trainer{Model: model, Emb: emb, Opt: dlrm.SGD{LR: 0.05}, EmbLR: 0.05}

	steps := 6
	if o.Quick {
		steps = 3
	}
	for i := 0; i < steps; i++ {
		tr.TrainBatch(gen.Batch(accSamples(o)/2, 60))
	}
	eval := gen.Batch(accSamples(o), 60)

	baseAUC = dlrm.EvaluateAUC(model, emb, eval)
	if err := model.SetQuantization(mode); err != nil {
		return 0, 0, err
	}
	quantAUC = dlrm.EvaluateAUC(model, emb, eval)
	if err := model.SetQuantization(dlrm.QuantNone); err != nil {
		return 0, 0, err
	}
	return baseAUC, quantAUC, nil
}
