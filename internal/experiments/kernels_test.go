package experiments

import (
	"math"
	"strings"
	"testing"

	"liveupdate/internal/dlrm"
)

func TestKernelsReport(t *testing.T) {
	rep := run(t, "kernels")
	// Timing rows for every shape × batch, plus the AUC section.
	wantTimings := len(kernelDims) * 3
	if len(rep.Rows) < wantTimings+3 {
		t.Fatalf("kernels produced %d rows, want >= %d", len(rep.Rows), wantTimings+3)
	}
	// The AUC gate must PASS for both quantized modes (no FAIL cell, no
	// exceeds-epsilon note).
	out := rep.String()
	if strings.Contains(out, "FAIL") {
		t.Fatalf("kernels AUC gate failed:\n%s", out)
	}
	for _, mode := range []string{"int8", "f16"} {
		if !strings.Contains(out, mode) {
			t.Fatalf("kernels report missing %s AUC row:\n%s", mode, out)
		}
	}
}

// TestQuantAUCWithinEpsilon is the acceptance-criteria assertion: for every
// quantized mode, |AUC(quantized) − AUC(float64)| ≤ KernelAUCEpsilon.
func TestQuantAUCWithinEpsilon(t *testing.T) {
	for _, mode := range []dlrm.QuantMode{dlrm.QuantInt8, dlrm.QuantF16} {
		base, quant, err := QuantAUCDelta(quickOpts(), mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if base <= 0.5 {
			t.Fatalf("%s: degenerate baseline AUC %v", mode, base)
		}
		if delta := math.Abs(quant - base); delta > KernelAUCEpsilon {
			t.Fatalf("%s: |ΔAUC| = %v exceeds epsilon %v (base %v, quant %v)",
				mode, delta, KernelAUCEpsilon, base, quant)
		}
	}
}

// TestQuantOptionRestrictsModes: o.Quant = "int8" must gate only int8.
func TestQuantOptionRestrictsModes(t *testing.T) {
	o := quickOpts()
	o.Quant = "int8"
	rep, err := Kernels(o)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if strings.Contains(out, "f16") {
		t.Fatalf("kernels with Quant=int8 still reports f16:\n%s", out)
	}
}
