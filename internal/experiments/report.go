// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): each experiment id (fig3a … fig19, table3) has a runner
// that produces a Report with the same rows/series the paper plots. Runners
// come in two modes: Quick (seconds; used by tests and benchmarks) and full
// (used by cmd/liveupdate-bench).
package experiments

import (
	"fmt"
	"strings"
)

// Report is a printable experiment result: a titled table plus notes
// comparing against the paper's reported shape.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options configures a runner invocation.
type Options struct {
	Seed  uint64
	Quick bool // reduced sample counts for tests/benchmarks

	// SyncMode restricts fleet-serving experiments (syncpipe, elastic) to
	// one sync propagation mode ("async" or "barrier"); empty runs their
	// default set.
	SyncMode string

	// Chaos overrides the elastic experiment's built-in membership-event
	// schedule with a parsed chaos script (the -chaos flag grammar); empty
	// uses the built-in kill/replace/scale sequence.
	Chaos string

	// Batch sets the load driver's lane-coalescing batch size for the
	// fleet-serving experiments (syncpipe, elastic); 0 or 1 drives unbatched.
	// Virtual-time columns are batch-invariant; wall-clock throughput is not.
	Batch int

	// Topology restricts the syncscale experiment to one collective
	// topology ("flat", "ring", "tree"); empty sweeps all three.
	Topology string

	// Delta enables delta sync billing in the fleet-serving experiments;
	// Compress sets their flate level (0 off, 1–9). Both are cost knobs:
	// virtual-state columns are invariant to them.
	Delta    bool
	Compress int

	// Quant restricts the kernels experiment's AUC gate to one quantized
	// mode ("int8" or "f16"); empty gates both. Virtual-time columns of
	// every experiment are invariant to the quantization knob (it changes
	// served probabilities only).
	Quant string
}

// Runner executes one experiment.
type Runner func(Options) (Report, error)

// Registry maps experiment ids to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3a":  Fig3a,
		"fig3b":  Fig3b,
		"fig4":   Fig4,
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig8":   Fig8,
		"fig9":   Fig9,
		"fig10":  Fig10,
		"fig11":  Fig11,
		"fig12":  Fig12,
		"fig14":  Fig14,
		"fig15":  Fig15,
		"fig16":  Fig16,
		"fig17":  Fig17,
		"fig18":  Fig18,
		"fig19":  Fig19,
		"table2": Table2,
		"table3": Table3,

		// Beyond the paper: serving-stack experiments.
		"syncpipe":  Syncpipe,
		"elastic":   Elastic,
		"wire":      Wire,
		"faultwire": Faultwire,
		"syncscale": SyncScale,
		"kernels":   Kernels,
	}
}

// IDs returns experiment ids in presentation order.
func IDs() []string {
	return []string{
		"table2", "fig3a", "fig3b", "fig4", "fig5", "fig6", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig14", "table3", "fig15", "fig16",
		"fig17", "fig18", "fig19", "syncpipe", "elastic", "wire", "faultwire",
		"syncscale", "kernels",
	}
}

func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
