package experiments

import (
	"context"
	"fmt"
	"time"

	"liveupdate/internal/cluster"
	"liveupdate/internal/core"
	"liveupdate/internal/driver"
	"liveupdate/internal/trace"
)

// Syncpipe quantifies the serving cost of periodic priority-merge syncs
// under the two propagation protocols: the legacy stop-the-world barrier and
// the versioned asynchronous pipeline (snapshot → background merge → atomic
// per-replica publish). A 4-replica hash-routed fleet is driven by 8 client
// goroutines with a fast sync cadence; virtual-time columns (served, syncs,
// the compute/publish split of the sync bill) are deterministic per mode,
// while the wall-clock QPS column shows what the pipeline buys when merges
// no longer gate serving. Options.SyncMode restricts the run to one mode
// (the -sync-mode flag of cmd/liveupdate-bench); empty means both.
func Syncpipe(o Options) (Report, error) {
	modes := []cluster.SyncMode{cluster.SyncBarrier, cluster.SyncAsync}
	if o.SyncMode != "" {
		m, err := cluster.ParseSyncMode(o.SyncMode)
		if err != nil {
			return Report{}, err
		}
		modes = []cluster.SyncMode{m}
	}
	requests := 20000
	if o.Quick {
		requests = 3000
	}
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		return Report{}, err
	}
	p.NumTables = 4
	p.TableSize = 1000
	p.NumDense = 8
	p.MultiHot = []int{1, 1, 1, 2}

	rep := Report{
		ID:     "syncpipe",
		Title:  "Serve throughput and sync stall: barrier vs async propagation",
		Header: []string{"mode", "served", "syncs", "syncCompute(s)", "syncPublish(s)", "virtTime(s)", "wallQPS"},
		Notes: []string{
			"served, syncs, and virtTime are deterministic per mode for any worker count; the sync-cost columns depend on payload sizes and may vary run to run (snapshot-content nondeterminism)",
			"wallQPS is measured wall-clock throughput: in async mode the merge compute column overlaps serving instead of gating it",
		},
	}
	for _, mode := range modes {
		opts := core.DefaultOptions(p, o.Seed)
		opts.TrainInterval = 4
		fleet, err := cluster.New(cluster.Config{
			Base:      opts,
			Replicas:  4,
			Router:    mustRouter(cluster.Hash),
			SyncEvery: 500 * time.Millisecond,
			Mode:      mode,
		})
		if err != nil {
			return Report{}, err
		}
		gen, err := trace.NewGenerator(p, o.Seed^0x51)
		if err != nil {
			return Report{}, err
		}
		dr, err := driver.Drive(context.Background(), fleet, gen.Next, driver.Config{
			Requests:  requests,
			Workers:   8,
			Seed:      o.Seed,
			BatchSize: o.Batch,
		})
		if err != nil {
			return Report{}, fmt.Errorf("syncpipe %s: %w", mode, err)
		}
		rep.Rows = append(rep.Rows, []string{
			string(mode),
			fmt.Sprintf("%d", dr.Served),
			fmt.Sprintf("%d", dr.Final.Syncs),
			f4(dr.SyncComputeSeconds),
			f4(dr.SyncPublishSeconds),
			f2(dr.VirtualTime),
			fmt.Sprintf("%.0f", dr.QPS),
		})
	}
	return rep, nil
}

func mustRouter(p cluster.Policy) cluster.Router {
	r, err := cluster.NewRouter(p)
	if err != nil {
		panic(err)
	}
	return r
}
