package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"liveupdate/internal/collective"
	"liveupdate/internal/emt"
	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
)

// SyncScale sweeps the fleet size 4→1024 and prices one identical training
// schedule under each sync collective topology (plus a delta+compressed
// variant), showing the sync bill per member growing ~log N under tree
// against ~N under flat. Every member trains on a shared hot set, so the
// merged state saturates while flat's gather keeps shipping every rank's
// payload to every rank — the redundancy hierarchical collectives remove.
// The state column is the merged-state fingerprint: identical across every
// topology and across delta/compression at each fleet size, by construction.

const (
	ssTables   = 2      // embedding tables
	ssRows     = 2048   // rows per table
	ssDim      = 16     // embedding dimension
	ssHot      = 1024   // shared hot-set size (ids all members train on)
	ssRounds   = 3      // sync rounds
	ssBatches  = 4      // training batches per member per round
	ssBatchIDs = 32     // ids per batch
	ssLat      = 100e-9 // 100 ns switch hop — a rack-scale fabric
	ssLR       = 0.05   // training rate
	ssCompress = 6      // flate level for the delta+compressed variant
	ssBw       = simnet.Gbps100
)

// ssCell is one (config, fleet size) measurement.
type ssCell struct {
	stats collective.GroupStats
	fp    uint64 // merged-state fingerprint
}

// ssConfig is one priced variant of the identical schedule.
type ssConfig struct {
	label    string
	kind     collective.Kind
	delta    bool
	compress int
}

func ssMemberRNG(seed uint64, round, member int) *tensor.RNG {
	return tensor.NewRNG(seed ^
		uint64(round+1)*0x9e3779b97f4a7c15 ^
		uint64(member+1)*0xbf58476d1ce4e5b9)
}

// runSyncScaleCell builds an n-member fleet, drives the deterministic shared
// training schedule with a sync after every round, and returns the group's
// bill plus the merged-state fingerprint. The schedule depends only on
// (seed, n), never on the pricing knobs, so every config merges identical
// states.
func runSyncScaleCell(seed uint64, n int, cfg ssConfig) (ssCell, error) {
	rng := tensor.NewRNG(seed ^ 0x5c5c5c5c)
	base := emt.NewGroup(ssTables, ssRows, ssDim, rng)
	lcfg := lora.DefaultConfig(ssRows, ssDim)
	lcfg.DisableRankAdapt = true
	sets := make([]*lora.Set, n)
	for i := range sets {
		c := lcfg
		c.Seed = seed + uint64(i)
		s, err := lora.NewSet(base, c) // adapters never write the shared base
		if err != nil {
			return ssCell{}, fmt.Errorf("syncscale: member %d: %w", i, err)
		}
		sets[i] = s
	}
	topo, err := collective.ParseTopology(cfg.kind)
	if err != nil {
		return ssCell{}, err
	}
	sg, err := collective.NewSyncGroupWith(collective.GroupConfig{
		Replicas:      sets,
		BandwidthBps:  ssBw,
		LatencySec:    ssLat,
		Topology:      topo,
		Delta:         cfg.delta,
		CompressLevel: cfg.compress,
	})
	if err != nil {
		return ssCell{}, err
	}
	clock := simnet.NewClock()

	hotRNG := tensor.NewRNG(seed ^ 0x407)
	hot := make([]int32, ssHot)
	for i := range hot {
		hot[i] = int32(hotRNG.Intn(ssRows))
	}
	grad := make([]float64, ssDim)
	ids := make([]int32, ssBatchIDs)
	for round := 0; round < ssRounds; round++ {
		for m := 0; m < n; m++ {
			mrng := ssMemberRNG(seed, round, m)
			for b := 0; b < ssBatches; b++ {
				for k := range ids {
					ids[k] = hot[mrng.Intn(ssHot)]
				}
				for d := range grad {
					grad[d] = 0.1 * mrng.NormFloat64()
				}
				for t := 0; t < ssTables; t++ {
					sets[m].ApplyGrad(t, ids, grad, ssLR)
				}
			}
		}
		if _, err := sg.Sync(clock); err != nil {
			return ssCell{}, fmt.Errorf("syncscale: n=%d %s sync %d: %w", n, cfg.label, round+1, err)
		}
	}
	return ssCell{stats: sg.GroupStats(), fp: ssFingerprint(sets, hot)}, nil
}

// ssFingerprint hashes the post-sync effective rows of a deterministic
// spread of members over a sample of the hot set. After the final publish
// every member holds the merged state, so the hash is both the in-fleet
// consistency witness and the cross-config equivalence witness.
func ssFingerprint(sets []*lora.Set, hot []int32) uint64 {
	h := fnv.New64a()
	dst := make([]float64, ssDim)
	var buf [8]byte
	step := len(sets) / 16
	if step == 0 {
		step = 1
	}
	for m := 0; m < len(sets); m += step {
		for t := 0; t < ssTables; t++ {
			for _, id := range hot[:64] {
				sets[m].EffectiveRow(t, id, dst)
				for _, v := range dst {
					binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
					h.Write(buf[:])
				}
			}
		}
	}
	return h.Sum64()
}

func ssConfigs(o Options) ([]ssConfig, error) {
	if o.Topology != "" {
		kind := collective.Kind(o.Topology)
		if _, err := collective.ParseTopology(kind); err != nil {
			return nil, err
		}
		label := o.Topology
		if o.Delta {
			label += "+delta"
		}
		if o.Compress > 0 {
			label += fmt.Sprintf("+z%d", o.Compress)
		}
		return []ssConfig{{label: label, kind: kind, delta: o.Delta, compress: o.Compress}}, nil
	}
	return []ssConfig{
		{label: "flat", kind: collective.TopologyFlat},
		{label: "ring", kind: collective.TopologyRing},
		{label: "tree", kind: collective.TopologyTree},
		{label: "tree+dz", kind: collective.TopologyTree, delta: true, compress: ssCompress},
	}, nil
}

func ssSizes(quick bool) []int {
	if quick {
		return []int{4, 16, 64, 256}
	}
	return []int{4, 16, 64, 256, 1024}
}

// SyncScale is the fleet-scale sync experiment (see the package comment at
// the top of this file).
func SyncScale(o Options) (Report, error) {
	configs, err := ssConfigs(o)
	if err != nil {
		return Report{}, err
	}
	sizes := ssSizes(o.Quick)
	rep := Report{
		ID:     "syncscale",
		Title:  "fleet-scale sync: topology sweep 4→1024 (identical schedule, per-config pricing)",
		Header: []string{"config", "members", "syncs", "sync-s/member", "wireMB", "savedMB", "state"},
	}
	// cells[label][n]
	cells := make(map[string]map[int]ssCell, len(configs))
	for _, cfg := range configs {
		cells[cfg.label] = make(map[int]ssCell, len(sizes))
	}
	for _, n := range sizes {
		var wantFP uint64
		for ci, cfg := range configs {
			cell, err := runSyncScaleCell(o.Seed, n, cfg)
			if err != nil {
				return Report{}, err
			}
			if ci == 0 {
				wantFP = cell.fp
			} else if cell.fp != wantFP {
				return Report{}, fmt.Errorf(
					"syncscale: merged state diverged at n=%d: %s got %016x, %s got %016x",
					n, configs[0].label, wantFP, cfg.label, cell.fp)
			}
			cells[cfg.label][n] = cell
			gs := cell.stats
			saved := float64(gs.DeltaSavedBytes+gs.CompressSavedBytes) / 1e6
			rep.Rows = append(rep.Rows, []string{
				cfg.label,
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", gs.Syncs),
				fmt.Sprintf("%.6f", gs.Seconds()),
				f2(float64(gs.WireBytes) / 1e6),
				f2(saved),
				fmt.Sprintf("%016x", cell.fp),
			})
		}
	}
	big := sizes[len(sizes)-1]
	small := sizes[0]
	if flat, ok := cells["flat"]; ok {
		if tree, ok2 := cells["tree"]; ok2 {
			ratio := float64(tree[big].stats.WireBytes) / float64(flat[big].stats.WireBytes)
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"wire bill at n=%d: tree moves %.1f%% of flat's bytes (gather is (n-1)·merged vs n·(2^⌈log2 n⌉-1)·perRank)",
				big, ratio*100))
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"sync seconds per member, n=%d→%d: flat ×%.0f (~N: every rank ships to every rank), tree ×%.1f (~log N: %d→%d rounds)",
				small, big,
				flat[big].stats.Seconds()/flat[small].stats.Seconds(),
				tree[big].stats.Seconds()/tree[small].stats.Seconds(),
				collective.Tree{}.Rounds(small), collective.Tree{}.Rounds(big)))
		}
		if ring, ok2 := cells["ring"]; ok2 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"ring matches tree's linear wire volume but pays n-1 hops of latency (%.0f ns each): bandwidth-optimal, not latency-optimal (n=%d: %.0f µs vs flat %.0f µs)",
				ssLat*1e9, big, ring[big].stats.Seconds()*1e6, flat[big].stats.Seconds()*1e6))
		}
	}
	rep.Notes = append(rep.Notes,
		"state column is the merged-state fingerprint: identical down each fleet-size block — topology, delta, and compression change only the bill, never the state",
		"savedMB = wire bytes avoided by delta (unchanged rows/factors) plus flate compression; tree+dz also bills CompressSeconds into sync-s")
	return rep, nil
}
