package experiments

import (
	"testing"

	"liveupdate/internal/collective"
)

// TestSyncScaleTreeWireBytes is the CI smoke gate: at a 256-member fleet
// and a fixed seed, the tree collective must move less than 10% of flat's
// wire bytes while merging the bit-identical state.
func TestSyncScaleTreeWireBytes(t *testing.T) {
	const seed, n = 7, 256
	flat, err := runSyncScaleCell(seed, n, ssConfig{label: "flat", kind: collective.TopologyFlat})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := runSyncScaleCell(seed, n, ssConfig{label: "tree", kind: collective.TopologyTree})
	if err != nil {
		t.Fatal(err)
	}
	if tree.fp != flat.fp {
		t.Fatalf("merged state diverged: flat %016x, tree %016x", flat.fp, tree.fp)
	}
	if ratio := float64(tree.stats.WireBytes) / float64(flat.stats.WireBytes); ratio >= 0.10 {
		t.Fatalf("tree wire bytes %d are %.1f%% of flat's %d, want < 10%%",
			tree.stats.WireBytes, ratio*100, flat.stats.WireBytes)
	}
	if tree.stats.Seconds() >= flat.stats.Seconds() {
		t.Fatalf("tree sync seconds %v must undercut flat %v at n=%d",
			tree.stats.Seconds(), flat.stats.Seconds(), n)
	}
}

// TestSyncScaleDeterministic pins the cell to its seed: the experiment's
// cross-config equivalence check is only meaningful if a config rerun under
// the same seed reproduces the same state and the same bill.
func TestSyncScaleDeterministic(t *testing.T) {
	cfg := ssConfig{label: "tree+dz", kind: collective.TopologyTree, delta: true, compress: 6}
	a, err := runSyncScaleCell(7, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSyncScaleCell(7, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.fp != b.fp || a.stats != b.stats {
		t.Fatalf("rerun diverged: %+v vs %+v", a, b)
	}
}

func TestSyncScaleReport(t *testing.T) {
	rep := run(t, "syncscale")
	// Quick mode: 4 configs × 4 fleet sizes.
	if len(rep.Rows) != 16 {
		t.Fatalf("got %d rows, want 16", len(rep.Rows))
	}
	// The state column is identical down each fleet-size block.
	state := map[string]string{}
	for _, row := range rep.Rows {
		n, fp := row[1], row[len(row)-1]
		if prev, ok := state[n]; ok && prev != fp {
			t.Fatalf("state fingerprint differs at n=%s: %s vs %s", n, prev, fp)
		}
		state[n] = fp
	}
	// The delta+compressed variant reports savings at every fleet size.
	for _, row := range rep.Rows {
		if row[0] == "tree+dz" && row[5] == "0.00" {
			t.Fatalf("tree+dz at n=%s reports no savings", row[1])
		}
	}
}
