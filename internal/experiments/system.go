package experiments

import (
	"fmt"

	"liveupdate/internal/core"
	"liveupdate/internal/numasim"
	"liveupdate/internal/trace"
)

// sysProfile returns the laptop-scale profile used by system experiments.
func sysProfile() trace.Profile {
	p := trace.Profiles()["bd-tb"]
	p.NumTables = 4
	p.TableSize = 600
	p.NumDense = 8
	p.MultiHot = []int{1, 1, 1, 2}
	return p
}

// runSystem serves n requests on a System with the given isolation toggles
// and returns it for inspection.
func runSystem(o Options, training, scheduling, reuse bool, n int) *core.System {
	opts := core.DefaultOptions(sysProfile(), o.Seed)
	opts.EnableTraining = training
	opts.EnableScheduling = scheduling
	opts.EnableReuse = reuse
	// Scaled hardware: tight caches, a scaled DRAM channel, and a
	// concurrency factor standing in for the node's parallel request
	// streams make contention effects visible at laptop-size working sets.
	opts.Node.GPUDenseTime = 0.001
	opts.Machine.L3BlocksPerCCD = 48
	opts.Machine.DRAMBandwidth = 1e7
	opts.Machine.Concurrency = 32
	opts.TrainInterval = 4
	opts.TrainBatch = 8
	s := core.MustNew(opts)
	gen := trace.MustNewGenerator(sysProfile(), o.Seed^0x515)
	for i := 0; i < n; i++ {
		s.Serve(gen.Next())
	}
	return s
}

func sysRequests(o Options) int {
	if o.Quick {
		return 400
	}
	return 3000
}

// Fig4 reproduces the 24-hour CPU-utilization curve of the production
// inference cluster (paper Fig 4): diurnal load with peak utilization ≤20%.
func Fig4(o Options) (Report, error) {
	r := Report{
		ID:     "fig4",
		Title:  "CPU utilization over 24 hours, inference-only cluster",
		Header: []string{"hour", "load_factor", "cpu_util"},
	}
	const peakUtil = 0.20 // paper: CPUs peak around 20%
	maxLoad := 0.0
	for h := 0.0; h < 24; h += 1 {
		if l := trace.DiurnalLoadFactor(h); l > maxLoad {
			maxLoad = l
		}
	}
	peakSeen := 0.0
	for h := 0; h < 24; h++ {
		load := trace.DiurnalLoadFactor(float64(h))
		util := load / maxLoad * peakUtil
		if util > peakSeen {
			peakSeen = util
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%02d:00", h), f3(load), pct(util),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("peak utilization %s (paper: ≤20%%) — idle headroom motivates O1", pct(peakSeen)))
	return r, nil
}

// Fig5 reproduces the 15-minute CPU power comparison (paper Fig 5):
// co-located training costs ~20% more power than inference alone.
func Fig5(o Options) (Report, error) {
	r := Report{
		ID:     "fig5",
		Title:  "CPU power over 15 min: inference-only vs co-located training",
		Header: []string{"minute", "P_infer(W)", "P_colocated(W)", "overhead"},
	}
	mcfg := numasim.DefaultConfig()
	clockless := numasim.MustNewMachine(mcfg, newClock())
	if err := clockless.Partition(10); err != nil {
		return r, err
	}
	sumRatio := 0.0
	for m := 0; m < 15; m++ {
		// Evening-hour load with per-minute wobble.
		load := trace.DiurnalLoadFactor(20+float64(m)/60) / trace.DiurnalLoadFactor(21)
		pInf := clockless.Power(load*0.25, 0)
		pCo := clockless.Power(load*0.25, 1)
		ratio := pCo/pInf - 1
		sumRatio += ratio
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", m), f2(pInf), f2(pCo), pct(ratio),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("mean power overhead %s (paper: ~20%%)", pct(sumRatio/15)))
	return r, nil
}

// Fig10 reproduces the DDR memory-pressure measurement (paper Fig 10):
// DRAM bandwidth is not saturated during serving — contention, not capacity,
// causes the latency spikes.
func Fig10(o Options) (Report, error) {
	r := Report{
		ID:     "fig10",
		Title:  "DRAM bandwidth utilization during co-located serving",
		Header: []string{"checkpoint", "dram_util"},
	}
	opts := core.DefaultOptions(sysProfile(), o.Seed)
	opts.EnableScheduling = false
	opts.EnableReuse = false
	opts.Machine.L3BlocksPerCCD = 48
	opts.Machine.DRAMBandwidth = 2e6 // scaled channel so serving traffic registers
	opts.TrainInterval = 4
	s := core.MustNew(opts)
	gen := trace.MustNewGenerator(sysProfile(), o.Seed^0x99)
	n := sysRequests(o)
	step := n / 8
	peak := 0.0
	for i := 0; i < n; i++ {
		s.Serve(gen.Next())
		if (i+1)%step == 0 {
			u := s.Machine.DRAMUtilization()
			if u > peak {
				peak = u
			}
			r.Rows = append(r.Rows, []string{fmt.Sprintf("%d", i+1), pct(u)})
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("peak utilization %s — bandwidth not saturated (paper Fig 10); interference is cache/queueing, not raw capacity", pct(peak)))
	return r, nil
}

// Fig11 reproduces the L3 hit-ratio ablation (paper Fig 11): (a) data reuse
// lifts the training workload's hit ratio, (b) CCD scheduling lifts the
// inference workload's.
func Fig11(o Options) (Report, error) {
	r := Report{
		ID:     "fig11",
		Title:  "L3 hit ratio by optimization (paper Fig 11a/11b)",
		Header: []string{"config", "train_hit", "infer_hit"},
	}
	n := sysRequests(o)
	type cfg struct {
		name         string
		sched, reuse bool
	}
	configs := []cfg{
		{"w/o Opt", false, false},
		{"w/ Scheduling", true, false},
		{"w/ Reuse", false, true},
		{"w/ Reuse+Scheduling", true, true},
	}
	results := make(map[string][2]float64)
	for _, c := range configs {
		s := runSystem(o, true, c.sched, c.reuse, n)
		tr := s.Machine.HitRatio(numasim.Training)
		inf := s.Machine.HitRatio(numasim.Inference)
		results[c.name] = [2]float64{tr, inf}
		r.Rows = append(r.Rows, []string{c.name, pct(tr), pct(inf)})
	}
	if results["w/ Reuse"][0] > results["w/o Opt"][0] {
		r.Notes = append(r.Notes, "reuse raises training hit ratio (Fig 11a)")
	}
	if results["w/ Reuse+Scheduling"][1] > results["w/o Opt"][1] {
		r.Notes = append(r.Notes, "scheduling raises inference hit ratio (Fig 11b)")
	}
	return r, nil
}

// Fig16 reproduces the end-to-end P99 ablation (paper Fig 16): naive
// co-location inflates tail latency; scheduling + reuse restore it to the
// inference-only floor.
func Fig16(o Options) (Report, error) {
	r := Report{
		ID:     "fig16",
		Title:  "P99 latency under isolation ablation (paper Fig 16)",
		Header: []string{"config", "P99(ms)", "violation_rate"},
	}
	n := sysRequests(o)
	type cfg struct {
		name                   string
		training, sched, reuse bool
	}
	configs := []cfg{
		{"Only Infer", false, false, false},
		{"w/o Opt", true, false, false},
		{"w/ Scheduling", true, true, false},
		{"w/ Reuse+Scheduling", true, true, true},
	}
	p99 := make(map[string]float64)
	for _, c := range configs {
		s := runSystem(o, c.training, c.sched, c.reuse, n)
		p99[c.name] = s.Node.P99()
		r.Rows = append(r.Rows, []string{
			c.name, f3(s.Node.P99() * 1000), pct(s.Node.ViolationRate()),
		})
	}
	if p99["w/o Opt"] > p99["Only Infer"] {
		r.Notes = append(r.Notes,
			fmt.Sprintf("naive co-location inflates P99 %.2fx over inference-only (paper: >2x)",
				p99["w/o Opt"]/p99["Only Infer"]))
	}
	if p99["w/ Reuse+Scheduling"] < p99["w/o Opt"] {
		r.Notes = append(r.Notes,
			fmt.Sprintf("full isolation recovers to %.2fx of the floor (paper: near-indistinguishable)",
				p99["w/ Reuse+Scheduling"]/p99["Only Infer"]))
	}
	return r, nil
}

// Fig18 reproduces the power/utilization before-vs-after comparison (paper
// Fig 18): LiveUpdate converts idle CPU cycles into freshness at modest
// power cost, without breaching the latency SLA.
func Fig18(o Options) (Report, error) {
	r := Report{
		ID:     "fig18",
		Title:  "CPU power and utilization before/after LiveUpdate (paper Fig 18)",
		Header: []string{"metric", "before(inference-only)", "after(LiveUpdate)"},
	}
	n := sysRequests(o)
	before := runSystem(o, false, false, false, n)
	after := runSystem(o, true, true, true, n)
	const servingLoad = 0.20
	pB, pA := before.Power(servingLoad), after.Power(servingLoad)
	uB, uA := before.CPUUtilization(servingLoad), after.CPUUtilization(servingLoad)
	r.Rows = append(r.Rows,
		[]string{"power (W)", f2(pB), f2(pA)},
		[]string{"CPU utilization", pct(uB), pct(uA)},
		[]string{"P99 (ms)", f3(before.Node.P99() * 1000), f3(after.Node.P99() * 1000)},
	)
	r.Notes = append(r.Notes,
		fmt.Sprintf("power overhead %s for %.1fx utilization — idle cycles become freshness",
			pct(pA/pB-1), uA/uB))
	if after.Node.P99() < after.Opts.Node.SLA {
		r.Notes = append(r.Notes, "P99 remains under the 10 ms SLA with training active")
	}
	return r, nil
}
