package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"liveupdate/internal/cluster"
	"liveupdate/internal/core"
	"liveupdate/internal/driver"
	"liveupdate/internal/netclient"
	"liveupdate/internal/netserve"
	"liveupdate/internal/trace"
)

// Wire measures what the network front end costs and what its admission
// control buys. The same fleet serves the same trace three ways:
//
//   - in-process: the concurrent driver calls the cluster directly — the
//     deterministic virtual-time baseline every other experiment uses;
//   - wire: the driver goes through a real loopback TCP listener via the
//     binary batch fast path, with ample admission capacity — the price of
//     serialization, HTTP framing, and the admission gate, in wall QPS;
//   - flash crowd: the same wire, but a burst of client lanes far wider than
//     a deliberately tiny admission gate (one inflight slot, one queue
//     slot) — overload must come back as 429 sheds the client retries
//     through, not as an unbounded queue.
//
// Virtual-time columns (virtTime, P99) are identical for the in-process and
// wire rows — the wire moves requests, not the simulation — which is the
// point: the wire path changes wall-clock economics only. Wall QPS is
// hardware-dependent; the shape to expect is wire < in-process, and a
// nonzero shed column only in the flash-crowd row. Both processes live in
// this one process for reproducibility; the traffic still crosses a real
// TCP loopback socket. Request arrival order over the wire is wall-clock
// real, so the wire rows sit outside the worker-count-invariance contract.
func Wire(o Options) (Report, error) {
	requests := 12000
	if o.Quick {
		requests = 2000
	}
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		return Report{}, err
	}
	p.NumTables = 4
	p.TableSize = 1000
	p.NumDense = 8
	p.MultiHot = []int{1, 1, 1, 2}

	newFleet := func() (*cluster.Cluster, error) {
		opts := core.DefaultOptions(p, o.Seed)
		opts.TrainInterval = 4
		r, err := cluster.NewRouter(cluster.Hash)
		if err != nil {
			return nil, err
		}
		return cluster.New(cluster.Config{
			Base:      opts,
			Replicas:  4,
			Router:    r,
			SyncEvery: 500 * time.Millisecond,
		})
	}
	batch := o.Batch
	if batch <= 1 {
		batch = 8
	}

	type row struct {
		name    string
		rep     driver.Report
		shed    uint64
		retries uint64
	}
	var rows []row

	// In-process baseline: the driver calls the fleet directly.
	{
		c, err := newFleet()
		if err != nil {
			return Report{}, err
		}
		gen, err := trace.NewGenerator(p, o.Seed^0x51)
		if err != nil {
			return Report{}, err
		}
		rep, err := driver.Drive(context.Background(), c, gen.Next, driver.Config{
			Requests: requests, Workers: 8, Seed: o.Seed, BatchSize: batch,
		})
		if err != nil {
			return Report{}, fmt.Errorf("wire in-process: %w", err)
		}
		rows = append(rows, row{name: "in-process", rep: rep})
	}

	// driveWire stands the fleet behind a loopback gateway and drives it
	// through the wire client. pace > 0 adds a wall-clock service-time floor
	// per wire call (a sleep, not CPU) for the flash-crowd row: real serves
	// finish in microseconds, so on a small machine closed-loop calls would
	// serialize on the scheduler instead of stacking up at the admission
	// gate, and overload would be impossible to demonstrate. The sleep
	// yields the processor, letting other lanes' calls actually arrive while
	// one is being served; virtual-time stats are untouched.
	driveWire := func(name string, admission netserve.Config, reqs, conns, workers, batchSize int, pace time.Duration) error {
		c, err := newFleet()
		if err != nil {
			return err
		}
		var inner netserve.Server = c
		if pace > 0 {
			inner = &pacedFleet{fleet: c, floor: pace}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		gw, err := netserve.New(inner, ln, admission)
		if err != nil {
			ln.Close()
			return err
		}
		defer gw.Close()
		remote, err := netclient.Dial(ln.Addr().String(), netclient.Config{
			Conns: conns, MaxRetryWait: 25 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer remote.Close()
		gen, err := trace.NewGenerator(p, o.Seed^0x51)
		if err != nil {
			return err
		}
		rep, err := driver.Drive(context.Background(), remote, gen.Next, driver.Config{
			Requests: reqs, Workers: workers, Seed: o.Seed, BatchSize: batchSize,
		})
		if err != nil {
			return fmt.Errorf("wire %s: %w", name, err)
		}
		// The driver's Final snapshot came over the wire; swap in the
		// server-side view so virtual columns are exact, not transported.
		rep.Final = gw.Stats()
		var shed uint64
		for _, ep := range gw.WireStats() {
			shed += ep.Shed
		}
		rows = append(rows, row{name: name, rep: rep, shed: shed, retries: remote.Shed429()})
		return nil
	}

	// Over the wire, ample capacity: measures pure wire overhead.
	if err := driveWire("wire", netserve.Config{}, requests, 8, 8, batch, 0); err != nil {
		return Report{}, err
	}
	// Flash crowd: a burst of lanes 16 wide against a one-slot gate with a
	// one-deep queue, each wire call carrying a large batch and a 1ms
	// service-time floor so the gate is genuinely occupied while the other
	// lanes' calls arrive. Overload must shed, and every request must still
	// complete via client retries. The row keeps its own request floor even
	// in quick mode: sustained pressure is what makes the gate engage, and a
	// short burst drains before the lane queues fill.
	flashRequests := requests
	if flashRequests < 8000 {
		flashRequests = 8000
	}
	if err := driveWire("flash-crowd", netserve.Config{MaxInflight: 1, QueueDepth: 1},
		flashRequests, 16, 16, 64, time.Millisecond); err != nil {
		return Report{}, err
	}

	r := Report{
		ID:     "wire",
		Title:  "network front end: in-process vs over-the-wire vs flash crowd",
		Header: []string{"path", "served", "wireCalls", "shed", "clientRetries", "wallQPS", "virtTime(s)", "P99(ms)"},
	}
	for _, rw := range rows {
		r.Rows = append(r.Rows, []string{
			rw.name,
			fmt.Sprintf("%d", rw.rep.Served),
			fmt.Sprintf("%d", rw.rep.Batches),
			fmt.Sprintf("%d", rw.shed),
			fmt.Sprintf("%d", rw.retries),
			f0(rw.rep.QPS),
			f2(rw.rep.Final.VirtualTime),
			f3(rw.rep.Final.P99 * 1000),
		})
	}
	r.Notes = append(r.Notes,
		"virtual-time columns match between in-process and wire: the wire moves requests, not the simulation",
		"wall QPS is hardware-dependent; expect wire < in-process (serialization + HTTP framing)",
		"flash-crowd drives 16 lanes of 64-sample batches into a 1-inflight/1-queued gate: overload returns 429 + Retry-After instead of queueing unboundedly, and the client retries every shed to completion",
		"wire rows are outside the worker-count-invariance contract: arrival order over concurrent connections is wall-clock real",
	)
	if rows[2].shed == 0 {
		r.Notes = append(r.Notes, "WARNING: flash crowd shed nothing — admission gate did not engage on this machine")
	}
	return r, nil
}

// pacedFleet fronts a fleet with a wall-clock service-time floor per call —
// the stand-in for a production model whose forward pass takes real
// milliseconds. Only the flash-crowd row uses it; the sleep never touches
// the simulated clock, so virtual-time statistics pass through unchanged.
type pacedFleet struct {
	fleet *cluster.Cluster
	floor time.Duration
}

func (p *pacedFleet) Serve(s trace.Sample) (core.Response, error) {
	time.Sleep(p.floor)
	return p.fleet.Serve(s)
}

func (p *pacedFleet) ServeBatch(batch []trace.Sample, out []core.Response) error {
	time.Sleep(p.floor)
	return p.fleet.ServeBatch(batch, out)
}

func (p *pacedFleet) Stats() core.Stats { return p.fleet.Stats() }

func (p *pacedFleet) Profile() trace.Profile { return p.fleet.Profile() }
