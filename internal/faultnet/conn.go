package faultnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"liveupdate/internal/obs"
	"liveupdate/internal/tensor"
)

// Counters tallies injected faults by class. Safe for concurrent use.
type Counters struct {
	counts [numClasses]atomic.Uint64
}

// Total returns the number of faults injected across all classes.
func (c *Counters) Total() uint64 {
	var total uint64
	for i := range c.counts {
		total += c.counts[i].Load()
	}
	return total
}

// Count returns the number of injected faults of one class.
func (c *Counters) Count(class Class) uint64 {
	if int(class) >= numClasses {
		return 0
	}
	return c.counts[class].Load()
}

func (c *Counters) hit(class Class) { c.counts[class].Add(1) }

// Register publishes the counters into an obs metrics registry: a
// liveupdate_wire_faults_total roll-up plus one
// liveupdate_wire_fault_<class>_total per fault class.
func (c *Counters) Register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("liveupdate_wire_faults_total",
		"Total network faults injected by the faultnet harness.", c.Total)
	for _, class := range Classes() {
		class := class
		reg.CounterFunc(fmt.Sprintf("liveupdate_wire_fault_%s_total", class),
			fmt.Sprintf("Injected %s faults.", class),
			func() uint64 { return c.Count(class) })
	}
}

// Listener wraps an accept loop so every accepted connection carries a
// deterministic fault-injecting Conn. The n-th accepted connection's RNG is
// seeded from (plan.Seed, n), so a run is replayable from the plan seed.
type Listener struct {
	net.Listener
	plan     Plan
	seq      atomic.Uint64
	counters Counters
}

// WrapListener wraps ln with the plan. A disabled plan (no clauses) returns
// a Listener that injects nothing but still serves counters (all zero).
func WrapListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

// Accept waits for the next connection and wraps it for fault injection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil || !l.plan.Enabled() {
		return c, err
	}
	n := l.seq.Add(1) - 1
	return WrapConn(c, l.plan, n, &l.counters), nil
}

// FaultsTotal returns the number of faults injected so far across every
// connection this listener accepted. netserve discovers this via a local
// interface assertion to publish liveupdate_wire_faults_total.
func (l *Listener) FaultsTotal() uint64 { return l.counters.Total() }

// Counters exposes the per-class tallies (for tests and reports).
func (l *Listener) Counters() *Counters { return &l.counters }

// Plan returns the active fault plan.
func (l *Listener) Plan() Plan { return l.plan }

// connSeed mixes the plan seed with a connection serial number via the
// SplitMix64 finalizer, so adjacent connections get decorrelated streams.
func connSeed(seed, serial uint64) uint64 {
	z := seed + serial*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Conn injects faults into the read (inbound) half of a wrapped connection.
// Writes pass through untouched — see the package comment for why the
// listener side never faults outbound responses.
type Conn struct {
	net.Conn

	mu   sync.Mutex // guards rng and dead; reads are serialized by net/http anyway
	rng  *tensor.RNG
	plan Plan
	ctrs *Counters
	dead *InjectedError // sticky: once a fault kills the conn, every read fails the same way
}

// WrapConn wraps c with the plan, using serial to derive the connection's
// private RNG stream. Counters may be shared across connections; it must be
// non-nil.
func WrapConn(c net.Conn, plan Plan, serial uint64, ctrs *Counters) *Conn {
	return &Conn{
		Conn: c,
		rng:  tensor.NewRNG(connSeed(plan.Seed, serial)),
		plan: plan,
		ctrs: ctrs,
	}
}

// Read performs the underlying read first and rolls the plan's clauses only
// when it delivered data, applying at most one fault to the delivered bytes.
//
// Rolling after (not before) the read is load-bearing: net/http servers run
// a background read on the connection while a handler executes, purely to
// detect client disconnects. That read always ends empty (aborted via a read
// deadline before the response is written), so by rolling only on
// data-delivering reads every fault lands on actual inbound request bytes —
// a fault can delay, cut, or damage a request on its way in, but can never
// kill a connection between a completed serve and its response. That is what
// guarantees faults force retries without ever duplicating a served request.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return 0, err
	}
	c.mu.Unlock()
	n, rerr := c.Conn.Read(b)
	if n <= 0 {
		return n, rerr
	}
	c.mu.Lock()
	if c.dead != nil { // killed while we were blocked in the read
		err := c.dead
		c.mu.Unlock()
		return 0, err
	}
	var fault *Fault
	for i := range c.plan.Faults {
		if c.rng.Float64() < c.plan.Faults[i].P {
			fault = &c.plan.Faults[i]
			break
		}
	}
	if fault == nil {
		c.mu.Unlock()
		return n, rerr
	}
	c.ctrs.hit(fault.Class)
	switch fault.Class {
	case Latency:
		// Deliver the bytes late.
		var d time.Duration
		if span := fault.Max - fault.Min; span > 0 {
			d = fault.Min + time.Duration(c.rng.Uint64()%uint64(span+1))
		} else {
			d = fault.Min
		}
		c.mu.Unlock()
		time.Sleep(d)
		return n, rerr

	case Reset:
		// Drop the delivered bytes and kill the transport: the request they
		// belonged to can never complete, so it is retried, never duplicated.
		err := c.killLocked(Reset)
		c.mu.Unlock()
		return 0, err

	case Blackhole:
		err := &InjectedError{Class: Blackhole}
		c.dead = err
		stall := fault.Stall
		c.mu.Unlock()
		// Hang the reader for the stall, then kill the transport — the peer
		// that answers nothing. Closing unblocks any concurrent writer too,
		// so a stalled request can never be delivered late.
		time.Sleep(stall)
		c.Conn.Close()
		return 0, err

	case Truncate:
		// Deliver a prefix of what arrived, then cut the stream.
		keep := fault.Bytes
		if keep <= 0 || keep >= n {
			keep = n / 2
		}
		err := c.killLocked(Truncate)
		c.mu.Unlock()
		if keep <= 0 {
			return 0, err
		}
		return keep, err

	case Corrupt:
		for i := 0; i < fault.Bits; i++ {
			pos := c.rng.Intn(n * 8)
			b[pos/8] ^= 1 << uint(pos%8)
		}
		c.mu.Unlock()
		return n, rerr
	}
	c.mu.Unlock()
	return n, rerr
}

// killLocked marks the connection dead with a sticky injected error and
// closes the transport. Caller holds c.mu.
func (c *Conn) killLocked(class Class) *InjectedError {
	err := &InjectedError{Class: class}
	c.dead = err
	c.Conn.Close()
	return err
}
