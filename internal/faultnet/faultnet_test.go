package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"liveupdate/internal/obs"
)

func TestParsePlanGrammar(t *testing.T) {
	plan, err := ParsePlan("latency(p=0.2,min=1ms,max=20ms); reset(p=0.05) ;corrupt(bits=5)")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if len(plan.Faults) != 3 {
		t.Fatalf("got %d faults, want 3", len(plan.Faults))
	}
	f := plan.Faults[0]
	if f.Class != Latency || f.P != 0.2 || f.Min != time.Millisecond || f.Max != 20*time.Millisecond {
		t.Errorf("latency clause parsed wrong: %+v", f)
	}
	if plan.Faults[1].Class != Reset || plan.Faults[1].P != 0.05 {
		t.Errorf("reset clause parsed wrong: %+v", plan.Faults[1])
	}
	if plan.Faults[2].Class != Corrupt || plan.Faults[2].P != DefaultP || plan.Faults[2].Bits != 5 {
		t.Errorf("corrupt clause parsed wrong: %+v", plan.Faults[2])
	}
	// Bare class name takes every default.
	plan, err = ParsePlan("blackhole")
	if err != nil {
		t.Fatalf("bare clause: %v", err)
	}
	if plan.Faults[0].Stall != DefaultStall {
		t.Errorf("bare blackhole stall = %v, want default %v", plan.Faults[0].Stall, DefaultStall)
	}
	// Empty string is a disabled plan, not an error.
	plan, err = ParsePlan("")
	if err != nil || plan.Enabled() {
		t.Errorf("empty plan: enabled=%v err=%v", plan.Enabled(), err)
	}
}

func TestParsePlanRejectsHostileInput(t *testing.T) {
	bad := []string{
		"gremlins",                  // unknown class
		"latency(p=1.5)",            // probability > 1
		"latency(p=-0.1)",           // negative probability
		"latency(p=NaN)",            // NaN probability
		"latency(min=-1ms)",         // negative duration
		"latency(min=5ms,max=1ms)",  // min > max
		"blackhole(stall=-50ms)",    // negative stall
		"truncate(bytes=-4)",        // negative byte cap
		"corrupt(bits=0)",           // too few flips
		"corrupt(bits=65)",          // too many flips
		"reset(p)",                  // not key=value
		"reset(q=1)",                // unknown key
		"reset(p=0.1",               // missing paren
		"latency(min=9999999h999m)", // unparseable duration
		";;",                        // clauses all empty
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted hostile input", s)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	const src = "latency(p=0.2,min=1ms,max=20ms);reset(p=0.05);blackhole(p=0.01,stall=50ms);truncate(p=0.02,bytes=7);corrupt(p=0.03,bits=5)"
	plan := MustParsePlan(src)
	again, err := ParsePlan(plan.String())
	if err != nil {
		t.Fatalf("reparse canonical form: %v", err)
	}
	if len(again.Faults) != len(plan.Faults) {
		t.Fatalf("round trip lost clauses: %d != %d", len(again.Faults), len(plan.Faults))
	}
	for i := range plan.Faults {
		if again.Faults[i] != plan.Faults[i] {
			t.Errorf("clause %d: %+v != %+v", i, again.Faults[i], plan.Faults[i])
		}
	}
}

// faultSequence drives n reads through a wrapped pipe and records which
// fault class (or -1) hit each read.
func faultSequence(t *testing.T, plan Plan, serial uint64, reads int) []int {
	t.Helper()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	var ctrs Counters
	fc := WrapConn(server, plan, serial, &ctrs)
	go func() {
		buf := []byte("xxxxxxxx")
		for i := 0; i < reads; i++ {
			client.SetWriteDeadline(time.Now().Add(time.Second))
			if _, err := client.Write(buf); err != nil {
				return
			}
		}
	}()
	seq := make([]int, 0, reads)
	buf := make([]byte, 8)
	for i := 0; i < reads; i++ {
		before := snapshotCounts(&ctrs)
		_, err := fc.Read(buf)
		after := snapshotCounts(&ctrs)
		class := -1
		for c := 0; c < numClasses; c++ {
			if after[c] != before[c] {
				class = c
			}
		}
		seq = append(seq, class)
		if err != nil {
			break
		}
	}
	return seq
}

func snapshotCounts(c *Counters) [numClasses]uint64 {
	var out [numClasses]uint64
	for _, class := range Classes() {
		out[class] = c.Count(class)
	}
	return out
}

func TestFaultSequenceDeterministicFromSeed(t *testing.T) {
	plan := MustParsePlan("latency(p=0.3,min=0s,max=0s);corrupt(p=0.3,bits=1)")
	plan.Seed = 42
	a := faultSequence(t, plan, 7, 64)
	b := faultSequence(t, plan, 7, 64)
	if len(a) != len(b) {
		t.Fatalf("replay length mismatch: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: fault %d on first run, %d on replay", i, a[i], b[i])
		}
	}
	// A different connection serial must see a different stream.
	c := faultSequence(t, plan, 8, 64)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("serial 7 and serial 8 produced identical fault sequences")
	}
}

func TestResetKillsConnectionStickily(t *testing.T) {
	plan := MustParsePlan("reset(p=1)")
	client, server := net.Pipe()
	defer client.Close()
	var ctrs Counters
	fc := WrapConn(server, plan, 0, &ctrs)
	go client.Write([]byte("hello"))
	buf := make([]byte, 8)
	_, err := fc.Read(buf)
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Class != Reset {
		t.Fatalf("want injected reset, got %v", err)
	}
	// Sticky: the second read fails the same way without touching the conn.
	if _, err2 := fc.Read(buf); !errors.Is(err2, err) {
		t.Errorf("second read after reset: %v", err2)
	}
	if ctrs.Count(Reset) != 1 {
		t.Errorf("reset counted %d times, want 1 (sticky reads must not recount)", ctrs.Count(Reset))
	}
	// The peer observes the close.
	client.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := client.Read(buf); err == nil {
		t.Error("peer read succeeded after injected reset")
	}
}

func TestBlackholeStallsThenKills(t *testing.T) {
	plan := MustParsePlan("blackhole(p=1,stall=30ms)")
	client, server := net.Pipe()
	defer client.Close()
	var ctrs Counters
	fc := WrapConn(server, plan, 0, &ctrs)
	go client.Write([]byte("hello"))
	start := time.Now()
	_, err := fc.Read(make([]byte, 8))
	elapsed := time.Since(start)
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Class != Blackhole {
		t.Fatalf("want injected blackhole, got %v", err)
	}
	if !inj.Timeout() {
		t.Error("blackhole error should report Timeout() == true")
	}
	if elapsed < 25*time.Millisecond {
		t.Errorf("blackhole returned after %v, want >= ~30ms stall", elapsed)
	}
}

func TestTruncateDeliversShortRead(t *testing.T) {
	plan := MustParsePlan("truncate(p=1,bytes=3)")
	client, server := net.Pipe()
	defer client.Close()
	var ctrs Counters
	fc := WrapConn(server, plan, 0, &ctrs)
	go client.Write([]byte("abcdefgh"))
	buf := make([]byte, 8)
	n, _ := fc.Read(buf)
	if n != 3 || string(buf[:3]) != "abc" {
		t.Fatalf("truncate delivered %d bytes (%q), want 3 (\"abc\")", n, buf[:n])
	}
	// Follow-up read must fail: the frame was cut, not delayed.
	if _, err := fc.Read(buf); err == nil {
		t.Error("read after truncation succeeded")
	}
}

func TestCorruptFlipsBitsButKeepsStream(t *testing.T) {
	plan := MustParsePlan("corrupt(p=1,bits=1)")
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	var ctrs Counters
	fc := WrapConn(server, plan, 0, &ctrs)
	orig := []byte("abcdefgh")
	go client.Write(orig)
	buf := make([]byte, 8)
	n, err := fc.Read(buf)
	if err != nil || n != 8 {
		t.Fatalf("corrupt read: n=%d err=%v", n, err)
	}
	diff := 0
	for i := range orig {
		diff += popcount(orig[i] ^ buf[i])
	}
	if diff != 1 {
		t.Errorf("corrupt(bits=1) flipped %d bits, want exactly 1", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestListenerWrapsAndCounts(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer inner.Close()
	plan := MustParsePlan("reset(p=1)")
	plan.Seed = 1
	ln := WrapListener(inner, plan)
	lnErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			lnErr <- err
			return
		}
		defer c.Close()
		_, err = c.Read(make([]byte, 8))
		lnErr <- err
	}()
	client, err := net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	client.Write([]byte("hi"))
	select {
	case err := <-lnErr:
		var inj *InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("accept-side read error = %v, want injected", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for wrapped accept")
	}
	if ln.FaultsTotal() != 1 {
		t.Errorf("FaultsTotal = %d, want 1", ln.FaultsTotal())
	}
}

func TestCountersRegisterIntoObs(t *testing.T) {
	var ctrs Counters
	ctrs.hit(Reset)
	ctrs.hit(Reset)
	ctrs.hit(Corrupt)
	reg := obs.NewRegistry()
	ctrs.Register(reg)
	found := map[string]float64{}
	for _, m := range reg.Snapshot() {
		found[m.Name] = m.Value
	}
	if got := found["liveupdate_wire_faults_total"]; got != 3 {
		t.Errorf("liveupdate_wire_faults_total = %v, want 3", got)
	}
	if got := found["liveupdate_wire_fault_reset_total"]; got != 2 {
		t.Errorf("reset counter = %v, want 2", got)
	}
	if got := found["liveupdate_wire_fault_corrupt_total"]; got != 1 {
		t.Errorf("corrupt counter = %v, want 1", got)
	}
}

func TestRoundTripperFaultsDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "the quick brown fox jumps over the lazy dog")
	}))
	defer srv.Close()

	run := func() []string {
		plan := MustParsePlan("reset(p=0.3);truncate(p=0.3,bytes=4)")
		plan.Seed = 99
		rt := WrapRoundTripper(srv.Client().Transport, plan)
		client := &http.Client{Transport: rt}
		out := make([]string, 0, 32)
		for i := 0; i < 32; i++ {
			resp, err := client.Get(srv.URL)
			if err != nil {
				out = append(out, "reset")
				continue
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case rerr != nil || len(body) < 16:
				out = append(out, "truncate")
			default:
				out = append(out, "ok")
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %s on first run, %s on replay", i, a[i], b[i])
		}
	}
	if strings.Count(strings.Join(a, ","), "ok") == len(a) {
		t.Error("plan with p=0.3 clauses injected nothing in 32 requests")
	}
}

func TestRoundTripperCorruptDamagesBody(t *testing.T) {
	payload := bytes.Repeat([]byte("a"), 64)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()
	plan := MustParsePlan("corrupt(p=1,bits=4)")
	rt := WrapRoundTripper(srv.Client().Transport, plan)
	client := &http.Client{Transport: rt}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Equal(body, payload) {
		t.Error("corrupt fault left the body intact")
	}
	if rt.FaultsTotal() != 1 {
		t.Errorf("FaultsTotal = %d, want 1", rt.FaultsTotal())
	}
}
