// Package faultnet injects deterministic, seed-driven network faults into
// net.Listener/net.Conn pairs (and, for the client side, an http.RoundTripper
// shim). It is the chaos harness for the wire path: the same fault classes a
// production network exhibits — latency spikes, connection resets, blackhole
// stalls, truncated streams, byte corruption — reproduced from a fixed seed
// so a failing run is replayable.
//
// # Fault plans
//
// A Plan is a list of weighted fault clauses parsed from a compact grammar:
//
//	latency(p=0.2,min=1ms,max=20ms); reset(p=0.05); corrupt(p=0.01,bits=3)
//
// Each clause names a fault class with a probability and class-specific
// parameters (see ParsePlan). On every read that delivers inbound bytes the
// connection rolls its private RNG against the clauses in plan order; the
// first clause whose probability fires wins. Empty reads never roll — see
// Conn.Read for why that restriction carries the no-duplicates guarantee.
//
// # Determinism
//
// Every wrapped connection owns an RNG seeded from (plan seed, connection
// serial number), so the fault sequence a connection experiences is a pure
// function of the seed and its position in accept order. Replaying a failing
// run therefore needs only the seed: with the same client behavior the same
// connections hit the same faults. (Exact fault positions within a
// connection depend on how the OS chunks reads, so replay fidelity is
// per-connection fault sequence, not byte offset.)
//
// # Direction
//
// Listener-side plans fault only the inbound (read) half of a connection:
// a request can be delayed, reset, stalled, truncated, or corrupted on its
// way in, but once it has reached the serving stack its response always
// goes back out untouched. Faults therefore move requests — forcing client
// retries — without ever duplicating a served request, which is what keeps
// virtual-time statistics bit-identical to a fault-free run. The
// client-side Transport shim has no such constraint (it can truncate or
// corrupt responses after the server served them); use it for client
// resilience tests that tolerate duplicate serves.
package faultnet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Class is a fault kind.
type Class uint8

const (
	// Latency delays a read by a uniform duration in [Min, Max].
	Latency Class = iota
	// Reset closes the connection abruptly mid-read.
	Reset
	// Blackhole stalls a read for Stall, then kills the connection — the
	// peer that answers nothing, as opposed to the peer that says no.
	Blackhole
	// Truncate delivers at most Bytes bytes of the pending read, then kills
	// the connection: a frame cut mid-stream.
	Truncate
	// Corrupt flips Bits random bits in the delivered read buffer.
	Corrupt

	numClasses = 5
)

// Classes lists every fault class in plan-grammar order.
func Classes() []Class { return []Class{Latency, Reset, Blackhole, Truncate, Corrupt} }

// String returns the grammar name of the class.
func (c Class) String() string {
	switch c {
	case Latency:
		return "latency"
	case Reset:
		return "reset"
	case Blackhole:
		return "blackhole"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Fault is one weighted clause of a Plan.
type Fault struct {
	Class Class

	// P is the probability that this fault fires on one read operation,
	// in [0, 1]. Clauses are evaluated in plan order; the first hit wins.
	P float64

	// Min/Max bound the injected delay (Latency only).
	Min, Max time.Duration

	// Stall is how long a Blackhole read hangs before the connection dies.
	Stall time.Duration

	// Bytes is the most a Truncate read delivers before the cut. 0 means
	// half of whatever the read returned (at least one byte short).
	Bytes int

	// Bits is how many bit flips a Corrupt fault applies (Corrupt only).
	Bits int
}

// Per-class defaults, applied by ParsePlan when a clause omits the knob.
const (
	DefaultP     = 0.05
	DefaultMin   = time.Millisecond
	DefaultMax   = 20 * time.Millisecond
	DefaultStall = 50 * time.Millisecond
	DefaultBits  = 3
)

// Plan is a named, seeded fault-injection schedule.
type Plan struct {
	// Name labels the plan in logs and reports (ParsePlan uses the raw
	// clause string).
	Name string

	// Seed drives every per-connection RNG. Two runs with the same seed and
	// the same connection order inject the same faults.
	Seed uint64

	// Faults are the weighted clauses, evaluated in order on every read.
	Faults []Fault
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool { return len(p.Faults) > 0 }

// String renders the plan back into the ParsePlan grammar (canonical form:
// every knob explicit). ParsePlan(p.String()) is a fixed point.
func (p Plan) String() string {
	clauses := make([]string, 0, len(p.Faults))
	for _, f := range p.Faults {
		switch f.Class {
		case Latency:
			clauses = append(clauses, fmt.Sprintf("latency(p=%s,min=%s,max=%s)", ftoa(f.P), f.Min, f.Max))
		case Reset:
			clauses = append(clauses, fmt.Sprintf("reset(p=%s)", ftoa(f.P)))
		case Blackhole:
			clauses = append(clauses, fmt.Sprintf("blackhole(p=%s,stall=%s)", ftoa(f.P), f.Stall))
		case Truncate:
			clauses = append(clauses, fmt.Sprintf("truncate(p=%s,bytes=%d)", ftoa(f.P), f.Bytes))
		case Corrupt:
			clauses = append(clauses, fmt.Sprintf("corrupt(p=%s,bits=%d)", ftoa(f.P), f.Bits))
		}
	}
	return strings.Join(clauses, ";")
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParsePlan parses the fault-plan grammar:
//
//	plan   := clause (';' clause)*
//	clause := class [ '(' key '=' value (',' key '=' value)* ')' ]
//	class  := latency | reset | blackhole | truncate | corrupt
//
// Keys: p (probability per read, default 0.05), min/max (latency delay
// bounds, Go durations, default 1ms/20ms), stall (blackhole hang, default
// 50ms), bytes (truncate delivery cap, default 0 = half the read), bits
// (corrupt bit flips, default 3). A bare class name takes every default:
// "reset" == "reset(p=0.05)". An empty string parses to a disabled Plan.
//
// Every value is validated: probabilities must sit in [0, 1], durations must
// be non-negative with min <= max, bits in [1, 64] — hostile or mistyped
// plans fail loudly instead of silently injecting nothing.
func ParsePlan(s string) (Plan, error) {
	plan := Plan{Name: strings.TrimSpace(s)}
	if plan.Name == "" {
		return Plan{}, nil
	}
	for _, rawClause := range strings.Split(s, ";") {
		clause := strings.TrimSpace(rawClause)
		if clause == "" {
			continue
		}
		name, args := clause, ""
		if i := strings.IndexByte(clause, '('); i >= 0 {
			if !strings.HasSuffix(clause, ")") {
				return Plan{}, fmt.Errorf("faultnet: clause %q: missing ')'", clause)
			}
			name, args = strings.TrimSpace(clause[:i]), clause[i+1:len(clause)-1]
		}
		f, err := newFault(name)
		if err != nil {
			return Plan{}, err
		}
		if err := parseArgs(&f, args); err != nil {
			return Plan{}, fmt.Errorf("faultnet: clause %q: %w", clause, err)
		}
		if err := validateFault(f); err != nil {
			return Plan{}, fmt.Errorf("faultnet: clause %q: %w", clause, err)
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return Plan{}, fmt.Errorf("faultnet: plan %q has no clauses", s)
	}
	return plan, nil
}

// MustParsePlan is ParsePlan panicking on error — for tests and constants.
func MustParsePlan(s string) Plan {
	p, err := ParsePlan(s)
	if err != nil {
		panic(err)
	}
	return p
}

func newFault(name string) (Fault, error) {
	f := Fault{P: DefaultP, Min: DefaultMin, Max: DefaultMax, Stall: DefaultStall, Bits: DefaultBits}
	for _, c := range Classes() {
		if name == c.String() {
			f.Class = c
			return f, nil
		}
	}
	names := make([]string, 0, numClasses)
	for _, c := range Classes() {
		names = append(names, c.String())
	}
	sort.Strings(names)
	return f, fmt.Errorf("faultnet: unknown fault class %q (valid: %s)", name, strings.Join(names, ", "))
}

func parseArgs(f *Fault, args string) error {
	if strings.TrimSpace(args) == "" {
		return nil
	}
	for _, kv := range strings.Split(args, ",") {
		kv = strings.TrimSpace(kv)
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("argument %q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "p":
			f.P, err = strconv.ParseFloat(val, 64)
		case "min":
			f.Min, err = time.ParseDuration(val)
		case "max":
			f.Max, err = time.ParseDuration(val)
		case "stall":
			f.Stall, err = time.ParseDuration(val)
		case "bytes":
			f.Bytes, err = strconv.Atoi(val)
		case "bits":
			f.Bits, err = strconv.Atoi(val)
		default:
			return fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return fmt.Errorf("bad value for %s: %v", key, err)
		}
	}
	return nil
}

func validateFault(f Fault) error {
	switch {
	case f.P < 0 || f.P > 1 || f.P != f.P: // the last term rejects NaN
		return fmt.Errorf("probability p=%v outside [0,1]", f.P)
	case f.Min < 0 || f.Max < 0:
		return fmt.Errorf("negative delay bounds min=%v max=%v", f.Min, f.Max)
	case f.Min > f.Max:
		return fmt.Errorf("min=%v exceeds max=%v", f.Min, f.Max)
	case f.Stall < 0:
		return fmt.Errorf("negative stall %v", f.Stall)
	case f.Bytes < 0:
		return fmt.Errorf("negative truncate bytes %d", f.Bytes)
	case f.Bits < 1 || f.Bits > 64:
		return fmt.Errorf("corrupt bits %d outside [1,64]", f.Bits)
	}
	return nil
}

// InjectedError is the error every injected connection kill surfaces —
// errors.As against it distinguishes harness faults from real ones.
type InjectedError struct {
	Class Class
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultnet: injected %s fault", e.Class)
}

// Timeout makes Blackhole faults look like net timeouts to callers that
// inspect net.Error.
func (e *InjectedError) Timeout() bool { return e.Class == Blackhole }

// Temporary is true: every injected fault is transient by construction.
func (e *InjectedError) Temporary() bool { return true }
