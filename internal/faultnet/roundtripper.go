package faultnet

import (
	"io"
	"net/http"
	"sync"
	"time"

	"liveupdate/internal/tensor"
)

// Transport is the client-side fault shim: an http.RoundTripper that rolls
// the plan once per request. Latency delays the request; Reset and Blackhole
// fail it before it is sent (so the server never sees it); Truncate and
// Corrupt let the request through and then damage the response body — which
// means the server HAS served the request once, and a retry duplicates it.
// Use Transport for client-resilience tests that tolerate duplicate serves;
// use the Listener side when virtual-time stats must stay bit-identical.
type Transport struct {
	base http.RoundTripper

	mu   sync.Mutex
	rng  *tensor.RNG
	plan Plan

	counters Counters
}

// WrapRoundTripper wraps base (nil means http.DefaultTransport) with the
// plan. The RNG stream is seeded from the plan seed alone: the client side
// has no accept order, so request order is the replay axis.
func WrapRoundTripper(base http.RoundTripper, plan Plan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, rng: tensor.NewRNG(connSeed(plan.Seed, 0)), plan: plan}
}

// FaultsTotal returns the number of faults injected so far.
func (t *Transport) FaultsTotal() uint64 { return t.counters.Total() }

// Counters exposes the per-class tallies.
func (t *Transport) Counters() *Counters { return &t.counters }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	var fault *Fault
	for i := range t.plan.Faults {
		if t.rng.Float64() < t.plan.Faults[i].P {
			fault = &t.plan.Faults[i]
			break
		}
	}
	var delay time.Duration
	var corruptSeed uint64
	if fault != nil {
		t.counters.hit(fault.Class)
		switch fault.Class {
		case Latency:
			if span := fault.Max - fault.Min; span > 0 {
				delay = fault.Min + time.Duration(t.rng.Uint64()%uint64(span+1))
			} else {
				delay = fault.Min
			}
		case Corrupt:
			corruptSeed = t.rng.Uint64()
		}
	}
	t.mu.Unlock()

	if fault == nil {
		return t.base.RoundTrip(req)
	}
	switch fault.Class {
	case Latency:
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)

	case Reset:
		return nil, &InjectedError{Class: Reset}

	case Blackhole:
		timer := time.NewTimer(fault.Stall)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
		return nil, &InjectedError{Class: Blackhole}

	case Truncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		keep := fault.Bytes
		if keep <= 0 {
			keep = 16
		}
		resp.Body = &truncatedBody{rc: resp.Body, remain: keep}
		return resp, nil

	case Corrupt:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &corruptBody{rc: resp.Body, rng: tensor.NewRNG(corruptSeed), bits: fault.Bits}
		return resp, nil
	}
	return t.base.RoundTrip(req)
}

// truncatedBody delivers at most remain bytes, then fails the stream the way
// a dropped connection mid-body would.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int
}

func (t *truncatedBody) Read(b []byte) (int, error) {
	if t.remain <= 0 {
		return 0, &InjectedError{Class: Truncate}
	}
	if len(b) > t.remain {
		b = b[:t.remain]
	}
	n, err := t.rc.Read(b)
	t.remain -= n
	if err == nil && t.remain <= 0 {
		err = &InjectedError{Class: Truncate}
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }

// corruptBody flips bits (at most once per Read chunk) in the response body.
type corruptBody struct {
	rc   io.ReadCloser
	rng  *tensor.RNG
	bits int
	done bool
}

func (c *corruptBody) Read(b []byte) (int, error) {
	n, err := c.rc.Read(b)
	if n > 0 && !c.done {
		c.done = true
		for i := 0; i < c.bits; i++ {
			pos := c.rng.Intn(n * 8)
			b[pos/8] ^= 1 << uint(pos%8)
		}
	}
	return n, err
}

func (c *corruptBody) Close() error { return c.rc.Close() }
