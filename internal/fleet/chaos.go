package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Chaos schedules: scripted membership events at virtual timestamps, so a
// single load-driver run can exercise kill/replace/rescale under load. The
// driver evaluates the schedule at deterministic drain points (see
// internal/driver), which makes a fixed (seed, schedule) pair reproduce the
// same event sequence at the same request indices for any worker count.

// Action names a membership event kind.
type Action string

const (
	// Kill fails the member in a slot immediately (the crash path).
	Kill Action = "kill"
	// Replace fails the member in a slot and admits a freshly caught-up
	// replica into the same slot (refilling an already-empty slot works too).
	Replace Action = "replace"
	// Join admits one replica into the first empty slot, or a new one.
	Join Action = "join"
	// Leave retires the member in a slot gracefully.
	Leave Action = "leave"
	// Scale grows or shrinks the active fleet to Arg members.
	Scale Action = "scale"
)

// Actions lists the chaos actions in presentation order.
func Actions() []Action { return []Action{Kill, Replace, Join, Leave, Scale} }

// Event is one scripted membership change.
type Event struct {
	// At is the virtual timestamp: the event fires once the fleet's virtual
	// clock reaches it.
	At time.Duration
	// Action is the membership change to apply.
	Action Action
	// Arg is the action's operand: the slot for kill/replace/leave, the
	// target fleet size for scale; unused for join.
	Arg int
}

// Validate reports event errors.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("fleet: chaos event %q at negative time %v", e.Action, e.At)
	}
	switch e.Action {
	case Kill, Replace, Leave:
		if e.Arg < 0 {
			return fmt.Errorf("fleet: chaos %s needs a slot >= 0, got %d", e.Action, e.Arg)
		}
	case Scale:
		if e.Arg < 1 {
			return fmt.Errorf("fleet: chaos scale needs a fleet size >= 1, got %d", e.Arg)
		}
	case Join:
		// no operand
	default:
		return fmt.Errorf("fleet: unknown chaos action %q (valid: %v)", e.Action, Actions())
	}
	return nil
}

// String renders the event in script form ("@1.5s kill 2").
func (e Event) String() string {
	if e.Action == Join {
		return fmt.Sprintf("@%v %s", e.At, e.Action)
	}
	return fmt.Sprintf("@%v %s %d", e.At, e.Action, e.Arg)
}

// Schedule is an ordered set of chaos events.
type Schedule []Event

// Validate reports the first invalid event.
func (s Schedule) Validate() error {
	for i, e := range s {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Sorted returns a copy ordered by timestamp; events at the same timestamp
// keep their script order (stable sort), so "kill 1; replace 1" at one
// instant applies in the written order.
func (s Schedule) Sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String renders the schedule in script form.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// ParseScript parses a chaos script: events separated by ';', each of the
// form "@<duration> <action> [arg]" (the '@' is optional). Durations use Go
// syntax ("500ms", "2s") and are virtual time. Examples:
//
//	@2s kill 1; @4s replace 1; @6s scale 6
//	500ms join; 1s leave 0
func ParseScript(src string) (Schedule, error) {
	var out Schedule
	for _, part := range strings.Split(src, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Fields(part)
		if len(fields) < 2 {
			return nil, fmt.Errorf("fleet: chaos event %q: want \"@<time> <action> [arg]\"", part)
		}
		at, err := time.ParseDuration(strings.TrimPrefix(fields[0], "@"))
		if err != nil {
			return nil, fmt.Errorf("fleet: chaos event %q: bad timestamp: %w", part, err)
		}
		ev := Event{At: at, Action: Action(fields[1])}
		switch {
		case ev.Action == Join && len(fields) == 2:
			// join takes no operand
		case ev.Action != Join && len(fields) == 3:
			arg, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("fleet: chaos event %q: bad operand: %w", part, err)
			}
			ev.Arg = arg
		default:
			return nil, fmt.Errorf("fleet: chaos event %q: wrong operand count for %q", part, ev.Action)
		}
		if err := ev.Validate(); err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: empty chaos script %q", src)
	}
	return out, nil
}
