package fleet

import (
	"testing"
	"time"
)

func TestParseScript(t *testing.T) {
	s, err := ParseScript("@2s kill 1; 500ms replace 0 ;@1m scale 6; @0s join")
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{
		{At: 2 * time.Second, Action: Kill, Arg: 1},
		{At: 500 * time.Millisecond, Action: Replace, Arg: 0},
		{At: time.Minute, Action: Scale, Arg: 6},
		{At: 0, Action: Join},
	}
	if len(s) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(s), len(want))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("event %d: %+v, want %+v", i, s[i], want[i])
		}
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, src := range []string{
		"",                    // empty
		"   ;  ; ",            // only separators
		"kill 1",              // missing timestamp
		"@2s explode 1",       // unknown action
		"@2s kill",            // missing slot
		"@2s kill one",        // non-numeric slot
		"@2s kill -1",         // negative slot
		"@2s join 3",          // join takes no operand
		"@2s scale 0",         // fleet cannot scale to zero
		"@-2s kill 1",         // negative timestamp
		"@2parsecs kill 1",    // bad duration unit
		"@2s kill 1 and more", // trailing tokens
	} {
		if _, err := ParseScript(src); err == nil {
			t.Fatalf("script %q must be rejected", src)
		}
	}
}

func TestScheduleSortedIsStable(t *testing.T) {
	s := Schedule{
		{At: 2 * time.Second, Action: Kill, Arg: 1},
		{At: time.Second, Action: Scale, Arg: 4},
		{At: 2 * time.Second, Action: Replace, Arg: 1}, // same instant as the kill
	}
	got := s.Sorted()
	if got[0].Action != Scale || got[1].Action != Kill || got[2].Action != Replace {
		t.Fatalf("sorted order wrong: %v", got)
	}
	// Original untouched.
	if s[0].Action != Kill {
		t.Fatal("Sorted must not mutate the receiver")
	}
}

func TestEventString(t *testing.T) {
	ev := Event{At: 1500 * time.Millisecond, Action: Kill, Arg: 2}
	if got := ev.String(); got != "@1.5s kill 2" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Event{At: time.Second, Action: Join}).String(); got != "@1s join" {
		t.Fatalf("join String() = %q", got)
	}
	// Round trip through the parser.
	s, err := ParseScript(Schedule{ev, {At: time.Second, Action: Join}}.String())
	if err != nil || len(s) != 2 || s[0] != ev {
		t.Fatalf("round trip failed: %v %v", s, err)
	}
}

// TestScheduleStringRoundTrips verifies String() emits the script grammar
// ParseScript accepts: parse → String → parse must reproduce the schedule
// exactly, for every action and for sub-second and zero timestamps.
func TestScheduleStringRoundTrips(t *testing.T) {
	scripts := []string{
		"@2s kill 1; @4s replace 1; @6s scale 6",
		"@500ms join; @1.5s leave 0",
		"@0s join",
		"@1m30s kill 0; @2h scale 2",
	}
	for _, src := range scripts {
		first, err := ParseScript(src)
		if err != nil {
			t.Fatalf("ParseScript(%q): %v", src, err)
		}
		rendered := first.String()
		second, err := ParseScript(rendered)
		if err != nil {
			t.Fatalf("String() of %q produced unparseable %q: %v", src, rendered, err)
		}
		if len(second) != len(first) {
			t.Fatalf("round trip of %q: %d events became %d", src, len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("round trip of %q: event %d %+v became %+v", src, i, first[i], second[i])
			}
		}
		// A stable fixed point: rendering again must be byte-identical.
		if again := second.String(); again != rendered {
			t.Fatalf("String not a fixed point: %q then %q", rendered, again)
		}
	}
}
