// Package fleet implements elastic membership for a LiveUpdate replica
// fleet: a controller that owns a dynamic set of serving replicas and
// supports Join, Leave, Fail, Replace, and Scale at runtime, while serving
// continues on the survivors.
//
// # Membership model
//
// Each replica is a Member with two identities:
//
//   - ID: a stable, monotonically assigned identity that is never reused.
//     IDs are the priority ranks of the sync protocol (collective.
//     PriorityMergeRanked) and the anchor points of the consistent-hash
//     ring, so a member's routing arcs and merge priority survive other
//     members' churn.
//   - Slot: the member's shard-lane index. Slots are the unit a load
//     driver shards on; a departed member leaves its slot empty (requests
//     redirect) until a join or replace refills it. Slot capacity only
//     grows, so lane ownership in a concurrent driver stays stable.
//
// The membership is published as an immutable View behind one atomic
// pointer. Serving paths load the View lock-free; every mutation builds a
// fresh View (with its consistent-hash ring prebuilt) and swaps the
// pointer — routers are "rebuilt" by construction, never locked.
//
// # Catch-up
//
// A joining replica is brought to the fleet's current state from a donor
// (the active member with the freshest published adapter epoch): the
// donor's base embedding tables travel as an emt checkpoint (serialized
// and re-read through the real WriteCheckpoint/ReadCheckpoint path) and
// its full LoRA adapter state travels as a lora snapshot that the joiner
// installs with Publish at the donor's epoch. Both transfers are billed to
// the virtual sync clock at the configured link parameters, like any other
// sync traffic. Only the donor's per-replica lock is held during the
// export — the fleet keeps serving.
package fleet

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"liveupdate/internal/core"
	"liveupdate/internal/emt"
	"liveupdate/internal/lora"
	"liveupdate/internal/simnet"
)

// Member is one serving replica in the fleet.
type Member struct {
	ID   int // stable identity; assigned at admission, never reused
	Slot int // shard-lane index; fixed for the member's lifetime
	Sys  *core.System
}

// View is an immutable membership snapshot. All accessors are safe from any
// goroutine; callers must not mutate the returned slices.
type View struct {
	// Version counts membership changes; it bumps on every swap.
	Version int64

	slots   []*Member      // index = slot; nil = empty (failed/left)
	active  []*Member      // occupied slots, in slot order
	systems []*core.System // active members' systems, same order as active
	ring    *ring          // consistent-hash ring over active members
}

// NumSlots returns the shard-lane capacity (monotone: never shrinks).
func (v *View) NumSlots() int { return len(v.slots) }

// NumActive returns the number of live members.
func (v *View) NumActive() int { return len(v.active) }

// Active returns the live members in slot order.
func (v *View) Active() []*Member { return v.active }

// ActiveSystems returns the live members' systems, aligned with Active.
func (v *View) ActiveSystems() []*core.System { return v.systems }

// Member returns the member in slot i, or nil when the slot is empty or out
// of range.
func (v *View) Member(i int) *Member {
	if i < 0 || i >= len(v.slots) {
		return nil
	}
	return v.slots[i]
}

// Route returns the ring owner of key h (nil only on an empty view).
func (v *View) Route(h uint64) *Member { return v.ring.lookup(h) }

// Redirect returns the live member that absorbs traffic aimed at an empty
// slot: the next occupied slot scanning upward with wrap-around. It returns
// nil only when the view has no active members.
func (v *View) Redirect(slot int) *Member {
	n := len(v.slots)
	if n == 0 || len(v.active) == 0 {
		return nil
	}
	if slot < 0 {
		slot = 0
	}
	for i := 1; i <= n; i++ {
		if m := v.slots[(slot+i)%n]; m != nil {
			return m
		}
	}
	return nil
}

// Config configures a membership controller.
type Config struct {
	// Spawn builds a fresh replica (same base options — and thus the same
	// Day-0 checkpoint — as the seed fleet). Required for Join/Replace/
	// Scale-up; a controller without it can still Fail and Leave.
	Spawn func() (*core.System, error)

	// BandwidthBps and LatencySec price the catch-up transfers. Zero values
	// default to 100 GbE / 1 ms, matching the sync fabric defaults.
	BandwidthBps float64
	LatencySec   float64

	// SyncClock, when set, is advanced by every catch-up transfer's virtual
	// duration — the same clock the periodic sync protocol bills.
	SyncClock *simnet.Clock

	// RingVNodes is the per-member virtual-node count of the consistent-hash
	// ring (default 64).
	RingVNodes int

	// InstallBarrier, when set, wraps every membership commit — the fold of
	// a departing member's statistics plus the atomic view swap — so the
	// owner can exclude in-flight request serving around it. The cluster
	// passes a function that briefly holds its fleet-wide write lock: a
	// request then can neither finish on a member whose statistics were
	// already folded (its count would vanish from the fleet totals) nor be
	// routed against a view that is mid-replacement. The barrier section is
	// O(members) — folding is a stats read, the swap one atomic store — so
	// serving stalls for microseconds, never for a catch-up.
	InstallBarrier func(commit func())
}

// CatchUp describes one joining replica's state transfer.
type CatchUp struct {
	DonorID         int   // member the state came from (-1: no donor, fresh state)
	Epoch           int64 // adapter epoch the joiner reached (-1 before any sync)
	CheckpointBytes int64 // serialized base-table checkpoint size
	LoRABytes       int64 // full adapter-state payload size
	Seconds         float64
}

// Bytes returns the total transfer volume.
func (cu CatchUp) Bytes() int64 { return cu.CheckpointBytes + cu.LoRABytes }

// Stats is a point-in-time accounting snapshot of the controller.
type Stats struct {
	Members int // active members
	Joins   int // admissions after the seed fleet (join, replace, scale-up)
	Leaves  int // graceful departures (leave, scale-down)
	Fails   int // abrupt exclusions (fail, the fail half of replace)

	CatchUpBytes   int64   // cumulative catch-up transfer volume
	CatchUpSeconds float64 // cumulative virtual catch-up time
}

// Retired is the folded statistical contribution of departed members, so
// fleet-level counters (requests served, violations, training steps) survive
// the members that produced them. Latency and hit-ratio sums are
// request-weighted, mirroring how cluster stats merge live replicas;
// departed members' latency windows are not retained, so fleet quantiles
// cover live members only.
type Retired struct {
	Served     uint64
	Violations uint64
	TrainSteps uint64
	FullSyncs  uint64

	LatencySum  float64 // Σ MeanLatency·Served
	HitInfSum   float64 // Σ InferenceHitRatio·Served
	HitTrainSum float64 // Σ TrainingHitRatio·Served
	MaxClock    float64 // highest virtual clock any departed member reached
}

// Controller owns the fleet membership. Mutations (Join, Leave, Fail,
// Replace, Scale) serialize on an internal mutex; readers go through the
// atomic View and never block on a mutation.
type Controller struct {
	cfg  Config
	view atomic.Pointer[View]

	// retiredClock mirrors Retired.MaxClock lock-free (float64 bits): the
	// fleet clock is read on the serve path and must not take mu.
	retiredClock atomic.Uint64

	mu      sync.Mutex // serializes mutations and guards the fields below
	nextID  int
	joins   int
	leaves  int
	fails   int
	cuBytes int64
	cuSecs  float64
	retired Retired
}

// NewController seeds the fleet: members get IDs and slots 0..n-1.
func NewController(cfg Config, seed []*core.System) (*Controller, error) {
	if len(seed) == 0 {
		return nil, fmt.Errorf("fleet: need at least one seed replica")
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = simnet.Gbps100
	}
	if cfg.LatencySec == 0 {
		cfg.LatencySec = 0.001
	}
	if cfg.BandwidthBps < 0 || cfg.LatencySec < 0 {
		return nil, fmt.Errorf("fleet: link parameters must be non-negative")
	}
	c := &Controller{cfg: cfg, nextID: len(seed)}
	slots := make([]*Member, len(seed))
	for i, sys := range seed {
		slots[i] = &Member{ID: i, Slot: i, Sys: sys}
	}
	c.install(slots, 0)
	return c, nil
}

// View returns the current membership snapshot (lock-free).
func (c *Controller) View() *View { return c.view.Load() }

// RetiredClock returns the highest virtual clock among departed members
// (lock-free; serve-path safe).
func (c *Controller) RetiredClock() float64 {
	return floatFromBits(c.retiredClock.Load())
}

// Stats returns the controller's accounting snapshot.
func (c *Controller) Stats() Stats {
	v := c.View()
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Members:        v.NumActive(),
		Joins:          c.joins,
		Leaves:         c.leaves,
		Fails:          c.fails,
		CatchUpBytes:   c.cuBytes,
		CatchUpSeconds: c.cuSecs,
	}
}

// Retired returns the folded stats of departed members.
func (c *Controller) Retired() Retired {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retired
}

// commit runs f — stats folding plus the view install — under the
// configured InstallBarrier (directly when none is set). Callers must hold
// mu.
func (c *Controller) commit(f func()) {
	if c.cfg.InstallBarrier != nil {
		c.cfg.InstallBarrier(f)
		return
	}
	f()
}

// install publishes a fresh view built from slots. Callers must hold mu
// (except the constructor, which has exclusive access).
func (c *Controller) install(slots []*Member, version int64) {
	active := make([]*Member, 0, len(slots))
	systems := make([]*core.System, 0, len(slots))
	for _, m := range slots {
		if m != nil {
			active = append(active, m)
			systems = append(systems, m.Sys)
		}
	}
	c.view.Store(&View{
		Version: version,
		slots:   slots,
		active:  active,
		systems: systems,
		ring:    newRing(active, c.cfg.RingVNodes),
	})
}

// cloneSlots copies the current slot table for mutation.
func (c *Controller) cloneSlots() []*Member {
	v := c.View()
	return append([]*Member(nil), v.slots...)
}

// Join admits a fresh replica into the first empty slot (or a new one),
// catching it up from the best donor. It returns the new member and the
// catch-up bill.
func (c *Controller) Join() (*Member, CatchUp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.joinLocked()
}

// joinLocked admits one member into the first empty slot (or a new one).
// Callers must hold mu.
func (c *Controller) joinLocked() (*Member, CatchUp, error) {
	if c.cfg.Spawn == nil {
		return nil, CatchUp{}, fmt.Errorf("fleet: no Spawn factory configured")
	}
	sys, err := c.cfg.Spawn()
	if err != nil {
		return nil, CatchUp{}, fmt.Errorf("fleet: spawn replica: %w", err)
	}
	cu := CatchUp{DonorID: -1, Epoch: -1}
	if donor := c.donorLocked(); donor != nil {
		cu, err = c.catchUp(donor, sys)
		if err != nil {
			return nil, CatchUp{}, err
		}
	}
	slots := c.cloneSlots()
	slot := -1
	for i, m := range slots {
		if m == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(slots)
		slots = append(slots, nil)
	}
	m := &Member{ID: c.nextID, Slot: slot, Sys: sys}
	c.nextID++
	slots[slot] = m
	c.commit(func() { c.install(slots, c.View().Version+1) })
	c.joins++
	c.cuBytes += cu.Bytes()
	c.cuSecs += cu.Seconds
	return m, cu, nil
}

// donorLocked picks the catch-up donor: the active member with the highest
// published adapter epoch, ties broken by the lowest (longest-lived) ID.
// Callers must hold mu.
func (c *Controller) donorLocked() *Member { return c.donorExcludingLocked(nil) }

// catchUp transfers the donor's base checkpoint and full LoRA state into
// sys, bills the virtual sync clock, and reports the transfer. Only the
// donor's per-replica lock is held, and only for the O(state) export.
func (c *Controller) catchUp(donor *Member, sys *core.System) (CatchUp, error) {
	var buf bytes.Buffer
	donor.Sys.Lock()
	err := donor.Sys.Base.WriteCheckpoint(&buf)
	var full []lora.TableState
	var epoch int64
	if err == nil {
		full = donor.Sys.LoRA.ExportFull()
		epoch = donor.Sys.LoRA.Epoch()
	}
	donor.Sys.Unlock()
	if err != nil {
		return CatchUp{}, fmt.Errorf("fleet: donor %d checkpoint: %w", donor.ID, err)
	}
	ckptBytes := int64(buf.Len()) // captured before ReadCheckpoint drains the buffer
	restored, err := emt.ReadCheckpoint(&buf)
	if err != nil {
		return CatchUp{}, fmt.Errorf("fleet: restore checkpoint: %w", err)
	}
	sys.Base.CopyWeightsFrom(restored)
	sys.LoRA.Publish(full, epoch)
	cu := CatchUp{
		DonorID:         donor.ID,
		Epoch:           epoch,
		CheckpointBytes: ckptBytes,
		LoRABytes:       lora.PayloadBytes(full),
	}
	// Point-to-point transfer: one link latency per payload leg, bytes at
	// line rate — the same pricing model the sync collective uses.
	cu.Seconds = 2*c.cfg.LatencySec + float64(cu.Bytes())/c.cfg.BandwidthBps
	if c.cfg.SyncClock != nil {
		c.cfg.SyncClock.Advance(cu.Seconds)
	}
	return cu, nil
}

// Leave removes the member in slot gracefully (its statistics are folded
// into the retired aggregate; the slot empties). The last active member
// cannot leave.
func (c *Controller) Leave(slot int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.removeLocked(slot); err != nil {
		return err
	}
	c.leaves++
	return nil
}

// Fail excludes the member in slot immediately — the crash path. Routing
// stops at the next view load; redirect absorbs requests already routed to
// the slot. The last active member cannot fail.
func (c *Controller) Fail(slot int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.removeLocked(slot); err != nil {
		return err
	}
	c.fails++
	return nil
}

// removeLocked empties a slot and folds the departing member's stats. The
// fold and the view swap happen inside one InstallBarrier section, so no
// in-flight request can finish on the member between the two (its count
// would be lost from both the retired aggregate and the live sums).
// Callers must hold mu.
func (c *Controller) removeLocked(slot int) error {
	v := c.View()
	m := v.Member(slot)
	if m == nil {
		return fmt.Errorf("fleet: no member in slot %d (capacity %d)", slot, v.NumSlots())
	}
	if v.NumActive() <= 1 {
		return fmt.Errorf("fleet: cannot remove the last active member (slot %d)", slot)
	}
	slots := c.cloneSlots()
	slots[slot] = nil
	c.commit(func() {
		c.fold(m)
		c.install(slots, v.Version+1)
	})
	return nil
}

// fold accumulates a departing member's stats into the retired aggregate.
// Callers must hold mu.
func (c *Controller) fold(m *Member) {
	rs := m.Sys.Stats()
	c.retired.Served += rs.Served
	c.retired.Violations += rs.Violations
	c.retired.TrainSteps += rs.TrainSteps
	c.retired.FullSyncs += rs.FullSyncs
	c.retired.LatencySum += rs.MeanLatency * float64(rs.Served)
	c.retired.HitInfSum += rs.InferenceHitRatio * float64(rs.Served)
	c.retired.HitTrainSum += rs.TrainingHitRatio * float64(rs.Served)
	if rs.VirtualTime > c.retired.MaxClock {
		c.retired.MaxClock = rs.VirtualTime
		c.retiredClock.Store(floatToBits(rs.VirtualTime))
	}
}

// Replace swaps the member in slot for a freshly caught-up replica in one
// view change: the old member (if the slot is occupied) is failed and the
// replacement joins the same slot, catching up from the best surviving
// donor. Replacing an already-empty slot just refills it.
func (c *Controller) Replace(slot int) (*Member, CatchUp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Spawn == nil {
		return nil, CatchUp{}, fmt.Errorf("fleet: no Spawn factory configured")
	}
	v := c.View()
	old := v.Member(slot)
	if old == nil && (slot < 0 || slot >= v.NumSlots()) {
		return nil, CatchUp{}, fmt.Errorf("fleet: replace slot %d out of range (capacity %d)", slot, v.NumSlots())
	}
	sys, err := c.cfg.Spawn()
	if err != nil {
		return nil, CatchUp{}, fmt.Errorf("fleet: spawn replacement: %w", err)
	}
	// Catch up from the freshest survivor; with no survivor (single-member
	// fleet) the departing member itself donates — its state is the fleet
	// state.
	donor := c.donorExcludingLocked(old)
	if donor == nil {
		donor = old
	}
	cu := CatchUp{DonorID: -1, Epoch: -1}
	if donor != nil {
		cu, err = c.catchUp(donor, sys)
		if err != nil {
			return nil, CatchUp{}, err
		}
	}
	slots := c.cloneSlots()
	m := &Member{ID: c.nextID, Slot: slot, Sys: sys}
	c.nextID++
	slots[slot] = m
	c.commit(func() {
		if old != nil {
			c.fold(old)
		}
		c.install(slots, v.Version+1)
	})
	if old != nil {
		c.fails++
	}
	c.joins++
	c.cuBytes += cu.Bytes()
	c.cuSecs += cu.Seconds
	return m, cu, nil
}

// donorExcludingLocked picks the donor among active members other than
// skip (nil skips no one). Callers must hold mu.
func (c *Controller) donorExcludingLocked(skip *Member) *Member {
	var donor *Member
	var donorEpoch int64
	for _, m := range c.View().Active() {
		if m == skip {
			continue
		}
		e := m.Sys.AdapterEpoch()
		if donor == nil || e > donorEpoch || (e == donorEpoch && m.ID < donor.ID) {
			donor, donorEpoch = m, e
		}
	}
	return donor
}

// Scale grows or shrinks the active fleet to n members: joins fill empty
// slots first (then extend capacity); shrinks gracefully retire the
// highest-slot members. It returns the net member delta.
func (c *Controller) Scale(n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("fleet: cannot scale to %d members", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delta := 0
	for c.View().NumActive() < n {
		if _, _, err := c.joinLocked(); err != nil {
			return delta, err
		}
		delta++
	}
	for c.View().NumActive() > n {
		active := c.View().Active()
		slot := active[len(active)-1].Slot
		if err := c.removeLocked(slot); err != nil {
			return delta, err
		}
		c.leaves++
		delta--
	}
	return delta, nil
}

func floatToBits(f float64) uint64   { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
