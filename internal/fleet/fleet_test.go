package fleet

import (
	"testing"

	"liveupdate/internal/core"
	"liveupdate/internal/simnet"
	"liveupdate/internal/trace"
)

func testProfile(t testing.TB) trace.Profile {
	t.Helper()
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		t.Fatal(err)
	}
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

func testSpawn(t testing.TB) func() (*core.System, error) {
	t.Helper()
	opts := core.DefaultOptions(testProfile(t), 42)
	opts.TrainInterval = 4
	opts.LoRA.DisableRankAdapt = true
	return func() (*core.System, error) { return core.New(opts) }
}

func testController(t testing.TB, n int, cfg Config) *Controller {
	t.Helper()
	spawn := testSpawn(t)
	if cfg.Spawn == nil {
		cfg.Spawn = spawn
	}
	seed := make([]*core.System, n)
	for i := range seed {
		sys, err := spawn()
		if err != nil {
			t.Fatal(err)
		}
		seed[i] = sys
	}
	c, err := NewController(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// serveSome pumps a few requests through one member so it accrues clock,
// stats, and LoRA training state.
func serveSome(t testing.TB, m *Member, seed uint64, n int) {
	t.Helper()
	gen := trace.MustNewGenerator(testProfile(t), seed)
	for i := 0; i < n; i++ {
		if _, err := m.Sys.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMembershipLifecycle(t *testing.T) {
	c := testController(t, 3, Config{})
	v := c.View()
	if v.NumSlots() != 3 || v.NumActive() != 3 {
		t.Fatalf("seed view: %d slots, %d active", v.NumSlots(), v.NumActive())
	}
	for i, m := range v.Active() {
		if m.ID != i || m.Slot != i {
			t.Fatalf("seed member %d: ID=%d Slot=%d", i, m.ID, m.Slot)
		}
	}

	// Fail the middle member: slot empties, capacity stays.
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	v = c.View()
	if v.NumSlots() != 3 || v.NumActive() != 2 || v.Member(1) != nil {
		t.Fatalf("after fail: slots=%d active=%d slot1=%v", v.NumSlots(), v.NumActive(), v.Member(1))
	}
	if err := c.Fail(1); err == nil {
		t.Fatal("failing an empty slot must error")
	}

	// Join refills the empty slot with a fresh identity.
	m, cu, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	if m.Slot != 1 || m.ID != 3 {
		t.Fatalf("join landed ID=%d Slot=%d, want fresh ID 3 in slot 1", m.ID, m.Slot)
	}
	if cu.DonorID < 0 || cu.CheckpointBytes == 0 {
		t.Fatalf("join must catch up from a donor: %+v", cu)
	}

	// A second join extends capacity.
	m, _, err = c.Join()
	if err != nil {
		t.Fatal(err)
	}
	if m.Slot != 3 || c.View().NumSlots() != 4 {
		t.Fatalf("join beyond capacity: slot=%d slots=%d", m.Slot, c.View().NumSlots())
	}

	st := c.Stats()
	if st.Members != 4 || st.Joins != 2 || st.Fails != 1 || st.Leaves != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLastMemberCannotBeRemoved(t *testing.T) {
	c := testController(t, 1, Config{})
	if err := c.Fail(0); err == nil {
		t.Fatal("failing the last member must be refused")
	}
	if err := c.Leave(0); err == nil {
		t.Fatal("the last member leaving must be refused")
	}
	if _, err := c.Scale(0); err == nil {
		t.Fatal("scaling to zero must be refused")
	}
}

func TestFailFoldsRetiredStats(t *testing.T) {
	c := testController(t, 2, Config{})
	m := c.View().Member(0)
	serveSome(t, m, 11, 40)
	clock := m.Sys.Clock.Now()
	if clock <= 0 {
		t.Fatal("fixture did not advance the clock")
	}
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	ret := c.Retired()
	if ret.Served != 40 || ret.MaxClock != clock {
		t.Fatalf("retired fold: %+v (want served=40 clock=%v)", ret, clock)
	}
	if c.RetiredClock() != clock {
		t.Fatalf("lock-free retired clock %v != %v", c.RetiredClock(), clock)
	}
}

// TestCatchUpMatchesDonor is the catch-up contract: a joiner's effective
// embeddings equal the donor's, row for row, and the transfer is billed to
// the sync clock.
func TestCatchUpMatchesDonor(t *testing.T) {
	clock := simnet.NewClock()
	c := testController(t, 2, Config{SyncClock: clock})
	donor := c.View().Member(0)
	serveSome(t, donor, 13, 200) // train: hot LoRA rows diverge from base

	m, cu, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	if cu.DonorID != donor.ID {
		// Member 0 and 1 are both at epoch -1; ties break to the lowest ID.
		t.Fatalf("donor %d, want %d", cu.DonorID, donor.ID)
	}
	if cu.LoRABytes == 0 || cu.CheckpointBytes == 0 || cu.Seconds <= 0 {
		t.Fatalf("catch-up bill empty: %+v", cu)
	}
	if clock.Now() != cu.Seconds {
		t.Fatalf("sync clock %v, want catch-up charge %v", clock.Now(), cu.Seconds)
	}
	p := testProfile(t)
	ref := make([]float64, p.EmbeddingDim)
	got := make([]float64, p.EmbeddingDim)
	for table := 0; table < p.NumTables; table++ {
		for id := int32(0); id < int32(p.TableSize); id++ {
			donor.Sys.LoRA.EffectiveRow(table, id, ref)
			m.Sys.LoRA.EffectiveRow(table, id, got)
			for d := range ref {
				if ref[d] != got[d] {
					t.Fatalf("table %d id %d dim %d: joiner %v != donor %v", table, id, d, got[d], ref[d])
				}
			}
		}
	}
	if m.Sys.AdapterEpoch() != donor.Sys.AdapterEpoch() {
		t.Fatalf("joiner epoch %d != donor %d", m.Sys.AdapterEpoch(), donor.Sys.AdapterEpoch())
	}
}

func TestReplaceReusesSlotWithFreshIdentity(t *testing.T) {
	c := testController(t, 3, Config{})
	old := c.View().Member(2)
	serveSome(t, old, 17, 40)
	m, cu, err := c.Replace(2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slot != 2 || m.ID == old.ID {
		t.Fatalf("replacement ID=%d Slot=%d (old ID=%d)", m.ID, m.Slot, old.ID)
	}
	if cu.DonorID == old.ID {
		t.Fatal("replacement must catch up from a survivor, not the corpse")
	}
	st := c.Stats()
	if st.Members != 3 || st.Fails != 1 || st.Joins != 1 {
		t.Fatalf("stats after replace: %+v", st)
	}
	if c.Retired().Served != 40 {
		t.Fatalf("old member's stats not folded: %+v", c.Retired())
	}
	// Replacing an empty slot refills it without another fail.
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Replace(1); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Fails != 2 || st.Joins != 2 || st.Members != 3 {
		t.Fatalf("stats after empty-slot replace: %+v", st)
	}
}

func TestScale(t *testing.T) {
	c := testController(t, 2, Config{})
	if delta, err := c.Scale(5); err != nil || delta != 3 {
		t.Fatalf("scale up: delta=%d err=%v", delta, err)
	}
	if v := c.View(); v.NumActive() != 5 {
		t.Fatalf("active %d after scale 5", v.NumActive())
	}
	if delta, err := c.Scale(2); err != nil || delta != -3 {
		t.Fatalf("scale down: delta=%d err=%v", delta, err)
	}
	v := c.View()
	if v.NumActive() != 2 || v.NumSlots() != 5 {
		t.Fatalf("after scale down: active=%d slots=%d (capacity must not shrink)",
			v.NumActive(), v.NumSlots())
	}
	st := c.Stats()
	if st.Joins != 3 || st.Leaves != 3 {
		t.Fatalf("scale accounting: %+v", st)
	}
}

func TestRedirect(t *testing.T) {
	c := testController(t, 3, Config{})
	if err := c.Fail(1); err != nil {
		t.Fatal(err)
	}
	v := c.View()
	if m := v.Redirect(1); m == nil || m.Slot != 2 {
		t.Fatalf("redirect(1) = %+v, want slot 2", m)
	}
	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	v = c.View()
	if m := v.Redirect(1); m == nil || m.Slot != 0 {
		t.Fatalf("redirect(1) after double failure = %+v, want wrap to slot 0", m)
	}
}

// TestRingRemapFraction is the consistent-hash contract: removing one of N
// members moves exactly the keys that member owned (≈1/N) and leaves every
// other key's assignment untouched; a subsequent join only claims keys for
// the newcomer.
func TestRingRemapFraction(t *testing.T) {
	const n = 5
	c := testController(t, n, Config{})
	gen := trace.MustNewGenerator(testProfile(t), 23)
	const keys = 4000
	samples := make([]trace.Sample, keys)
	before := make([]int, keys)
	v := c.View()
	for i := range samples {
		samples[i] = gen.Next()
		before[i] = v.Route(SampleKey(samples[i])).Slot
	}

	if err := c.Fail(2); err != nil {
		t.Fatal(err)
	}
	v = c.View()
	moved := 0
	for i, s := range samples {
		after := v.Route(SampleKey(s)).Slot
		if after == 2 {
			t.Fatalf("key %d routed to the failed member", i)
		}
		if before[i] == 2 {
			moved++ // orphaned keys must move somewhere
			continue
		}
		if after != before[i] {
			t.Fatalf("key %d: survivor assignment moved %d → %d on an unrelated failure",
				i, before[i], after)
		}
	}
	// The failed member's share should be near 1/N (vnode placement jitters
	// it; 2/N is a generous ceiling, and it must not be zero).
	if moved == 0 || moved > 2*keys/n {
		t.Fatalf("leave remapped %d/%d keys, want ≈%d (≤%d)", moved, keys, keys/n, 2*keys/n)
	}

	// Join: only the newcomer's share moves, and every moved key lands on it.
	base := make([]int, keys)
	for i, s := range samples {
		base[i] = v.Route(SampleKey(s)).Slot
	}
	m, _, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	v = c.View()
	claimed := 0
	for i, s := range samples {
		after := v.Route(SampleKey(s)).Slot
		if after == base[i] {
			continue
		}
		if after != m.Slot {
			t.Fatalf("key %d moved %d → %d, but only the joiner (slot %d) may claim keys",
				i, base[i], after, m.Slot)
		}
		claimed++
	}
	if claimed == 0 || claimed > 2*keys/n {
		t.Fatalf("join remapped %d/%d keys, want ≈%d (≤%d)", claimed, keys, keys/n, 2*keys/n)
	}
}

func TestSpawnRequiredForGrowth(t *testing.T) {
	spawn := testSpawn(t)
	seed := make([]*core.System, 2)
	for i := range seed {
		sys, err := spawn()
		if err != nil {
			t.Fatal(err)
		}
		seed[i] = sys
	}
	c, err := NewController(Config{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Join(); err == nil {
		t.Fatal("join without a Spawn factory must error")
	}
	if err := c.Fail(0); err != nil {
		t.Fatalf("fail must still work without Spawn: %v", err)
	}
}
