package fleet

import (
	"sort"

	"liveupdate/internal/trace"
)

// Consistent-hash ring over the active members of a View. Each member owns
// RingVNodes pseudo-random points on a 64-bit ring; a key is served by the
// first member point at or clockwise of the key's hash. Membership changes
// therefore only remap the keys in the arcs a member's points cover —
// roughly a 1/N share per single join or leave — instead of reshuffling the
// whole keyspace the way `hash(key) mod N` does.

// defaultVNodes is the per-member virtual-node count: enough points that a
// member's keyspace share concentrates near 1/N without making ring builds
// (one per membership change) expensive.
const defaultVNodes = 64

type ringPoint struct {
	hash uint64
	m    *Member
}

type ring struct {
	points []ringPoint // sorted by hash
}

// newRing places vnodes points per member. Point positions depend only on
// the member's stable ID, never on its slot or the current fleet size, so a
// member's arcs survive other members' churn untouched.
func newRing(members []*Member, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		base := uint64(m.ID) * 0x9e3779b97f4a7c15
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: mix64(base + uint64(v)), m: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically rare) break on the stable member ID so the
		// ring layout is identical no matter the build order.
		return r.points[i].m.ID < r.points[j].m.ID
	})
	return r
}

// lookup returns the member owning hash h, or nil on an empty ring.
func (r *ring) lookup(h uint64) *Member {
	if r == nil || len(r.points) == 0 {
		return nil
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: keys past the last point belong to the first
	}
	return r.points[i].m
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit mix
// for placing virtual nodes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ViewRouter is the membership-aware routing surface: policies that
// implement it route against the live View (and so keep working across
// joins, leaves, and failures without any router rebuild — the View carries
// the prebuilt ring and active list). The cluster's built-in policies all
// implement it; legacy routers that only know a flat replica slice are
// adapted by the cluster instead.
type ViewRouter interface {
	// RouteView picks the serving member for s from v's active members.
	RouteView(s trace.Sample, v *View) *Member
}

// SampleKey hashes a request's sparse feature ids (FNV-1a over (table, id)
// pairs) to its ring key: identical sparse feature sets always map to the
// same key, giving the embedding locality the hash routing policy exists for.
func SampleKey(s trace.Sample) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint32) {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(v >> shift))
			h *= prime64
		}
	}
	for t, ids := range s.Sparse {
		mix(uint32(t))
		for _, id := range ids {
			mix(uint32(id))
		}
	}
	return h
}
