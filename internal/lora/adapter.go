// Package lora implements the paper's core contribution: Low-Rank Adaptation
// tables for embedding updates (∆W = A·B, Eq. 3), with the two memory
// mechanisms of §IV-C — variance-aware dynamic rank adaptation and
// usage-based table pruning (Algorithm 1) — plus merge/export primitives for
// the cross-node sync protocol (Algorithm 3).
//
// # Concurrency model
//
// An Adapter keeps its published factors (rank, A rows, shared B) behind one
// atomic pointer to an immutable-by-readers state record. Two classes of
// callers exist:
//
//   - The owner (the training/serving loop, serialized by core.System's
//     mutex) may call anything. Train mutates the current state in place —
//     it is NOT safe concurrently with readers.
//   - The publish path — ApplyRows, SetB, Resize, Reset, and Set.Publish —
//     builds a fresh state copy and swaps the pointer in one atomic store.
//     Lock-free readers (Lookup, Accumulate, Delta, Has, EffectiveRow,
//     ExportSupport's row reads) therefore observe either the old or the new
//     state, never a torn mix, and never block on an in-flight merge. This is
//     the copy-on-write half of the asynchronous update pipeline.
package lora

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"liveupdate/internal/tensor"
)

// Config controls adapter behaviour. Defaults follow the paper: α = 0.8,
// adaptation every 128 iterations, initial capacity 10% of |V|, C_min = |V|/50.
type Config struct {
	Dim           int     // embedding dimension d
	InitialRank   int     // starting k (paper observes 3-6 typical)
	MinRank       int     // lower clamp for adapted rank
	MaxRank       int     // upper clamp (≤ d)
	Alpha         float64 // variance threshold α for Eq. 2
	AdaptInterval int     // iterations between rank/prune passes (paper: 128)
	PruneThresh   int     // τ_prune: min updates per window to stay active
	CMin          int     // minimum LoRA table capacity
	CMax          int     // maximum LoRA table capacity (≤ |V|)
	GradWindow    int     // gradient snapshots retained for PCA
	Seed          uint64  // RNG seed for A-row initialization

	// DisableRankAdapt freezes the rank at InitialRank (the paper's
	// fixed-rank LiveUpdate-α ablation variants); pruning still runs.
	DisableRankAdapt bool
}

// DefaultConfig returns paper-default parameters for a table of |V| rows and
// dimension d.
func DefaultConfig(rows, dim int) Config {
	cmin := rows / 50
	if cmin < 1 {
		cmin = 1
	}
	return Config{
		Dim:           dim,
		InitialRank:   4,
		MinRank:       1,
		MaxRank:       dim,
		Alpha:         0.8,
		AdaptInterval: 128,
		PruneThresh:   1,
		CMin:          cmin,
		CMax:          rows,
		GradWindow:    256,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("lora: Dim must be positive")
	case c.InitialRank <= 0 || c.InitialRank > c.Dim:
		return fmt.Errorf("lora: InitialRank %d out of (0,%d]", c.InitialRank, c.Dim)
	case c.MinRank <= 0 || c.MinRank > c.MaxRank:
		return fmt.Errorf("lora: rank bounds [%d,%d] invalid", c.MinRank, c.MaxRank)
	case c.MaxRank > c.Dim:
		return fmt.Errorf("lora: MaxRank %d exceeds Dim %d", c.MaxRank, c.Dim)
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("lora: Alpha must be in (0,1]")
	case c.AdaptInterval <= 0:
		return fmt.Errorf("lora: AdaptInterval must be positive")
	case c.CMin <= 0 || c.CMin > c.CMax:
		return fmt.Errorf("lora: capacity bounds [%d,%d] invalid", c.CMin, c.CMax)
	case c.GradWindow <= 0:
		return fmt.Errorf("lora: GradWindow must be positive")
	}
	return nil
}

// adapterState is the published factor state: the LoRA rank, the shared
// dense factor B (rank×dim), and the sparse A rows for active ids. Publish
// operations replace the whole record behind the Adapter's atomic pointer;
// readers load it once per call and see a consistent snapshot.
type adapterState struct {
	rank int
	b    *tensor.Matrix      // rank×dim
	rows map[int32][]float64 // A rows for active ids
}

// Adapter is the LoRA table for one embedding table: sparse rows A[i] ∈ R^k
// for active indices plus a shared dense factor B ∈ R^{k×d}. See the package
// comment for which operations are safe without the owner's serialization.
type Adapter struct {
	cfg Config
	cur atomic.Pointer[adapterState]

	// Owner-only bookkeeping (training statistics, adaptation windows).
	freq map[int32]int      // per-id update count in the current window
	supp map[int32]struct{} // ids updated since last ResetSupport (Alg. 3)

	iter      int
	gradBuf   *tensor.Matrix // ring of recent pooled gradients (GradWindow×dim)
	gradCount int            // rows filled (≤ GradWindow)
	gradNext  int

	rankObsSum   int // Σ r_t within the adaptation interval
	rankObsCount int

	adaptations int // completed rank/prune passes
	pruned      int // total rows evicted

	// daScratch and coefScratch are Train's per-rank scratches (the hoisted
	// A-gradient step and the summed pre-update A coefficients), reused
	// across calls so a training tick allocates nothing per sample
	// (owner-only, like Train itself); they are regrown when the rank
	// changes.
	daScratch   []float64
	coefScratch []float64

	rng *tensor.RNG // A-row initialization
}

// NewAdapter builds an adapter using the standard LoRA initialization:
// B starts at zero and A rows are drawn randomly on allocation, so ∆W = AB
// is exactly zero at first (serving matches the base table) while gradients
// can still flow into B.
func NewAdapter(cfg Config) (*Adapter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Adapter{
		cfg:     cfg,
		freq:    make(map[int32]int),
		supp:    make(map[int32]struct{}),
		gradBuf: tensor.NewMatrix(cfg.GradWindow, cfg.Dim),
		rng:     tensor.NewRNG(cfg.Seed ^ 0x10ad0ada),
	}
	a.cur.Store(&adapterState{
		rank: cfg.InitialRank,
		b:    tensor.NewMatrix(cfg.InitialRank, cfg.Dim),
		rows: make(map[int32][]float64),
	})
	return a, nil
}

// MustNewAdapter panics on config errors; for tests and examples.
func MustNewAdapter(cfg Config) *Adapter {
	a, err := NewAdapter(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Rank returns the current LoRA rank k.
func (a *Adapter) Rank() int { return a.cur.Load().rank }

// ActiveCount returns the number of ids holding a LoRA row.
func (a *Adapter) ActiveCount() int { return len(a.cur.Load().rows) }

// Has reports whether id has a LoRA row — the serving path's Hot Index
// Filter check (paper Fig 7 step 2).
func (a *Adapter) Has(id int32) bool {
	_, ok := a.cur.Load().rows[id]
	return ok
}

// Adaptations returns how many rank/prune passes have run.
func (a *Adapter) Adaptations() int { return a.adaptations }

// PrunedTotal returns the cumulative number of evicted rows.
func (a *Adapter) PrunedTotal() int { return a.pruned }

// Delta writes W_lora(id) - W_base(id) = A[id]·B into dst (len Dim). Ids
// without a LoRA row contribute zero.
func (a *Adapter) Delta(id int32, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	st := a.cur.Load()
	row, ok := st.rows[id]
	if !ok {
		return
	}
	for k, av := range row {
		if av == 0 {
			continue
		}
		tensor.Axpy(av, st.b.Row(k), dst)
	}
}

// Accumulate adds the id's LoRA delta scaled by alpha into dst.
func (a *Adapter) Accumulate(id int32, alpha float64, dst []float64) {
	st := a.cur.Load()
	row, ok := st.rows[id]
	if !ok {
		return
	}
	for k, av := range row {
		if av == 0 {
			continue
		}
		tensor.Axpy(alpha*av, st.b.Row(k), dst)
	}
}

// Train consumes the gradient w.r.t. the pooled embedding of ids (the output
// of dlrm.Model.Backward) and performs one SGD step at rate lr on A and B,
// with the base weights frozen (paper §IV-A, step 1 of the update path).
// Ids without a row are allocated one (zero-initialized) if capacity allows.
// Train mutates the current state in place and is owner-only: it must be
// serialized with every other call on this adapter.
func (a *Adapter) Train(ids []int32, grad []float64, lr float64) {
	if len(ids) == 0 {
		return
	}
	if len(grad) != a.cfg.Dim {
		panic(fmt.Sprintf("lora: grad len %d != dim %d", len(grad), a.cfg.Dim))
	}
	a.recordGrad(grad)
	st := a.cur.Load()
	invPool := 1 / float64(len(ids))

	// The A-row gradient dA[i] = (grad/pool)·Bᵀ does not depend on i (B only
	// moves after the loop), so the k dot products are hoisted out of the
	// per-id walk: O(rank·dim) once instead of per id. coef[k] accumulates the
	// pre-update A coefficients Σ_i A[i][k], which folds the dense dB matrix
	// into one Axpy per rank — the B update touches only the mini-batch's
	// contribution, SPMM-style, with no rank×dim accumulator to zero.
	if len(a.daScratch) < st.rank {
		a.daScratch = make([]float64, st.rank)
		a.coefScratch = make([]float64, st.rank)
	}
	da := a.daScratch[:st.rank]
	coef := a.coefScratch[:st.rank]
	for k := 0; k < st.rank; k++ {
		da[k] = lr * invPool * tensor.Dot(grad, st.b.Row(k))
		coef[k] = 0
	}
	for _, id := range ids {
		row := a.ensureRow(st, id)
		if row == nil {
			continue // table at capacity; skip cold id
		}
		a.freq[id]++
		a.supp[id] = struct{}{}
		for k := 0; k < st.rank; k++ {
			coef[k] += row[k] // pre-update value, as dB sees it
			row[k] -= da[k]
		}
	}
	for k := 0; k < st.rank; k++ {
		// dB[k] = coef[k] · grad/pool; apply the SGD step directly.
		if coef[k] != 0 {
			tensor.Axpy(-lr*coef[k]*invPool, grad, st.b.Row(k))
		}
	}

	a.iter++
	if a.iter%a.cfg.AdaptInterval == 0 {
		a.adapt()
	}
}

// ensureRow returns the A row for id in st, allocating a randomly initialized
// row when capacity allows; it returns nil when the table is full and id is
// not resident. Random A with zero B keeps ∆W = 0 until training moves B.
func (a *Adapter) ensureRow(st *adapterState, id int32) []float64 {
	if row, ok := st.rows[id]; ok {
		return row
	}
	if len(st.rows) >= a.cfg.CMax {
		return nil
	}
	row := make([]float64, st.rank)
	scale := 1 / math.Sqrt(float64(st.rank))
	for k := range row {
		row[k] = a.rng.NormFloat64() * scale
	}
	st.rows[id] = row
	return row
}

// recordGrad appends a gradient snapshot to the PCA ring buffer and updates
// the per-interval observed-rank statistics (r_t of §IV-C).
func (a *Adapter) recordGrad(grad []float64) {
	copy(a.gradBuf.Row(a.gradNext), grad)
	a.gradNext = (a.gradNext + 1) % a.cfg.GradWindow
	if a.gradCount < a.cfg.GradWindow {
		a.gradCount++
	}
}

// adapt runs Algorithm 1: PCA-driven rank adaptation followed by usage-based
// pruning with capacity clamping.
func (a *Adapter) adapt() {
	a.adaptations++

	// --- Rank adaptation (Alg. 1 line 3-4) ---
	if !a.cfg.DisableRankAdapt && a.gradCount >= 2 {
		snapshot := tensor.NewMatrix(a.gradCount, a.cfg.Dim)
		copy(snapshot.Data, a.gradBuf.Data[:a.gradCount*a.cfg.Dim])
		pca := tensor.ComputePCA(snapshot)
		rt := pca.MinRankForVariance(a.cfg.Alpha)
		a.rankObsSum += rt
		a.rankObsCount++
		// New rank = ceil of the interval-averaged observation, clamped.
		r := (a.rankObsSum + a.rankObsCount - 1) / a.rankObsCount
		if r < a.cfg.MinRank {
			r = a.cfg.MinRank
		}
		if r > a.cfg.MaxRank {
			r = a.cfg.MaxRank
		}
		a.Resize(r)
	}

	// --- Usage-based pruning (Alg. 1 line 5-10) ---
	st := a.cur.Load()
	active := make([]int32, 0, len(st.rows))
	for id := range st.rows {
		if a.freq[id] >= a.cfg.PruneThresh {
			active = append(active, id)
		}
	}
	target := len(active)
	if target < a.cfg.CMin {
		target = a.cfg.CMin
	}
	if target > a.cfg.CMax {
		target = a.cfg.CMax
	}
	if len(active) > target {
		// Keep the most frequently updated ids.
		sort.Slice(active, func(i, j int) bool {
			if a.freq[active[i]] != a.freq[active[j]] {
				return a.freq[active[i]] > a.freq[active[j]]
			}
			return active[i] < active[j]
		})
		active = active[:target]
	}
	keep := make(map[int32]struct{}, len(active))
	for _, id := range active {
		keep[id] = struct{}{}
	}
	for id := range st.rows {
		if _, ok := keep[id]; !ok {
			delete(st.rows, id)
			a.pruned++
		}
	}
	// New frequency window.
	a.freq = make(map[int32]int)
}

// Resize changes the LoRA rank to r. Shrinking re-projects the current ∆W
// onto the best rank-r subspace via truncated SVD (Eckart–Young), so learned
// information is preserved as well as any rank-r factorization can; growing
// zero-pads, leaving ∆W bit-identical. The resized factors are installed by
// one atomic swap (publish-path operation).
func (a *Adapter) Resize(r int) {
	st := a.cur.Load()
	if r == st.rank {
		return
	}
	if r < a.cfg.MinRank {
		r = a.cfg.MinRank
	}
	if r > a.cfg.MaxRank {
		r = a.cfg.MaxRank
	}
	if r == st.rank {
		return
	}
	if r > st.rank {
		// Grow: zero B rows keep ∆W identical; the new A coordinates are
		// randomly initialized so gradients flow into the added capacity.
		newB := tensor.NewMatrix(r, a.cfg.Dim)
		copy(newB.Data, st.b.Data)
		scale := 1 / math.Sqrt(float64(r))
		rows := make(map[int32][]float64, len(st.rows))
		for id, row := range st.rows {
			nr := make([]float64, r)
			copy(nr, row)
			for k := len(row); k < r; k++ {
				nr[k] = a.rng.NormFloat64() * scale
			}
			rows[id] = nr
		}
		a.cur.Store(&adapterState{rank: r, b: newB, rows: rows})
		return
	}
	// Shrink: factor the realized ∆W of the active rows.
	if len(st.rows) == 0 {
		a.cur.Store(&adapterState{
			rank: r,
			b:    tensor.NewMatrix(r, a.cfg.Dim),
			rows: make(map[int32][]float64),
		})
		return
	}
	ids := make([]int32, 0, len(st.rows))
	for id := range st.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	delta := tensor.NewMatrix(len(ids), a.cfg.Dim)
	for i, id := range ids {
		a.Delta(id, delta.Row(i))
	}
	left, right := tensor.TruncatedSVD(delta, r)
	rows := make(map[int32][]float64, len(ids))
	for i, id := range ids {
		rows[id] = append([]float64(nil), left.Row(i)...)
	}
	a.cur.Store(&adapterState{rank: r, b: right, rows: rows})
}

// SizeBytes returns the adapter's parameter footprint: active A rows plus B.
func (a *Adapter) SizeBytes() int64 {
	st := a.cur.Load()
	return int64(len(st.rows))*int64(st.rank)*8 + int64(st.rank)*int64(a.cfg.Dim)*8
}

// RowUpdate carries one modified A row for synchronization (Algorithm 3).
type RowUpdate struct {
	ID  int32
	Row []float64 // length = sender's rank
}

// ExportSupport snapshots the A rows modified since the last ResetSupport —
// supp(∆θ) in Algorithm 3 — without clearing the support set. The returned
// rows are deep copies, so the export stays valid (and immutable) while the
// adapter keeps training.
func (a *Adapter) ExportSupport() []RowUpdate {
	st := a.cur.Load()
	out := make([]RowUpdate, 0, len(a.supp))
	for id := range a.supp {
		row, ok := st.rows[id]
		if !ok {
			continue // pruned since modification
		}
		out = append(out, RowUpdate{ID: id, Row: append([]float64(nil), row...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExportAllRows snapshots every active A row — not just the modified
// support — as deep copies in id order: the full-state payload a joining
// replica restores during fleet catch-up. The support set is untouched.
func (a *Adapter) ExportAllRows() []RowUpdate {
	st := a.cur.Load()
	out := make([]RowUpdate, 0, len(st.rows))
	for id, row := range st.rows {
		out = append(out, RowUpdate{ID: id, Row: append([]float64(nil), row...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SupportSize returns |S_r|, the number of ids modified since ResetSupport.
func (a *Adapter) SupportSize() int { return len(a.supp) }

// ResetSupport clears the modification tracker (end of a sync cycle).
func (a *Adapter) ResetSupport() { a.supp = make(map[int32]struct{}) }

// ApplyRows installs remote A rows (receiving side of a sync). Rows whose
// length differs from the current rank are adapted: truncated or zero-padded.
// Applied rows do not enter the local support set (they are foreign state).
// The update is copy-on-write: a fresh row map is built and swapped in one
// atomic store, so concurrent lock-free readers never see a torn state.
func (a *Adapter) ApplyRows(updates []RowUpdate) {
	st := a.cur.Load()
	a.cur.Store(&adapterState{
		rank: st.rank,
		b:    st.b,
		rows: rowsWithUpdates(st, updates),
	})
}

// rowsWithUpdates clones st's row map and installs updates at st's rank.
func rowsWithUpdates(st *adapterState, updates []RowUpdate) map[int32][]float64 {
	rows := make(map[int32][]float64, len(st.rows)+len(updates))
	for id, row := range st.rows {
		rows[id] = row
	}
	for _, u := range updates {
		row := make([]float64, st.rank)
		copy(row, u.Row) // copies min(len) — truncation/padding implicit
		rows[u.ID] = row
	}
	return rows
}

// SetB overwrites the shared factor B from a synced copy. The incoming
// matrix is rank'×d; rank mismatches are adapted by truncate/zero-pad.
// Copy-on-write: the new B is installed by one atomic swap.
func (a *Adapter) SetB(b *tensor.Matrix) {
	st := a.cur.Load()
	a.cur.Store(&adapterState{
		rank: st.rank,
		b:    adaptedB(st.rank, a.cfg.Dim, b),
		rows: st.rows,
	})
}

// adaptedB copies b into a rank×dim matrix, truncating or zero-padding rows.
func adaptedB(rank, dim int, b *tensor.Matrix) *tensor.Matrix {
	if b.Cols != dim {
		panic(fmt.Sprintf("lora: SetB dim %d != %d", b.Cols, dim))
	}
	nb := tensor.NewMatrix(rank, dim)
	n := rank
	if b.Rows < n {
		n = b.Rows
	}
	copy(nb.Data, b.Data[:n*dim])
	return nb
}

// applyState installs one merged TableState (rows plus shared B) in a single
// atomic swap — the per-adapter publish step of the versioned sync pipeline.
// A nil B keeps the current factor.
func (a *Adapter) applyState(ts TableState) {
	st := a.cur.Load()
	b := st.b
	if ts.B != nil {
		b = adaptedB(st.rank, a.cfg.Dim, ts.B)
	}
	a.cur.Store(&adapterState{
		rank: st.rank,
		b:    b,
		rows: rowsWithUpdates(st, ts.Rows),
	})
}

// B returns a copy of the shared factor for synchronization.
func (a *Adapter) B() *tensor.Matrix { return a.cur.Load().b.Clone() }

// Reset clears all LoRA state (after a full-parameter sync folds fresh base
// weights in, the adapter starts from ∆W = 0 again — paper Fig 8's hourly
// full-update starting points).
func (a *Adapter) Reset() {
	rank := a.cur.Load().rank
	a.cur.Store(&adapterState{
		rank: rank,
		b:    tensor.NewMatrix(rank, a.cfg.Dim),
		rows: make(map[int32][]float64),
	})
	a.freq = make(map[int32]int)
	a.supp = make(map[int32]struct{})
	a.gradCount = 0
	a.gradNext = 0
	a.rankObsSum = 0
	a.rankObsCount = 0
}
