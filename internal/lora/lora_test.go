package lora

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"liveupdate/internal/emt"
	"liveupdate/internal/tensor"
)

func testConfig() Config {
	cfg := DefaultConfig(100, 8)
	cfg.AdaptInterval = 50
	cfg.GradWindow = 64
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Dim = 0 },
		func(c *Config) { c.InitialRank = 0 },
		func(c *Config) { c.InitialRank = c.Dim + 1 },
		func(c *Config) { c.MinRank = 0 },
		func(c *Config) { c.MinRank = c.MaxRank + 1 },
		func(c *Config) { c.MaxRank = c.Dim + 1 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.AdaptInterval = 0 },
		func(c *Config) { c.CMin = 0 },
		func(c *Config) { c.CMin = c.CMax + 1 },
		func(c *Config) { c.GradWindow = 0 },
	}
	for i, mutate := range mutations {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d: expected validation error", i)
		}
	}
	if _, err := NewAdapter(Config{}); err == nil {
		t.Fatal("NewAdapter must reject zero config")
	}
}

func TestAdapterStartsAtZeroDelta(t *testing.T) {
	a := MustNewAdapter(testConfig())
	dst := make([]float64, 8)
	a.Delta(5, dst)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("fresh adapter must have zero delta")
		}
	}
	if a.ActiveCount() != 0 || a.Has(5) {
		t.Fatal("fresh adapter must be empty")
	}
}

func TestTrainAllocatesAndMoves(t *testing.T) {
	a := MustNewAdapter(testConfig())
	grad := []float64{1, 0, 0, 0, 0, 0, 0, 0}
	// Several steps so both A (from B≠0 after the first B update... actually
	// with A=0,B=0 the first step moves nothing: dA = grad·Bᵀ = 0, dB = A·grad = 0.
	// Seed A by allocation then give B a kick through repeated training once a
	// row exists. To break symmetry the adapter relies on allocation plus the
	// next gradient — verify the well-known LoRA cold-start by priming A.
	a.Train([]int32{3}, grad, 0.1)
	if !a.Has(3) {
		t.Fatal("training must allocate a row")
	}
	// Prime: with both factors zero the product stays zero (standard LoRA
	// cold start when both are zero-initialized). Kick A manually as the
	// paper's trainer does via its initializer, then train.
	a.cur.Load().rows[3][0] = 0.5
	before := make([]float64, 8)
	a.Delta(3, before)
	a.Train([]int32{3}, grad, 0.1)
	after := make([]float64, 8)
	a.Delta(3, after)
	moved := false
	for i := range after {
		if after[i] != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("training with non-zero A must move ∆W")
	}
}

func TestTrainEmptyAndWrongDim(t *testing.T) {
	a := MustNewAdapter(testConfig())
	a.Train(nil, make([]float64, 8), 0.1) // no-op
	if a.ActiveCount() != 0 {
		t.Fatal("empty train must not allocate")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong grad dim must panic")
		}
	}()
	a.Train([]int32{1}, make([]float64, 3), 0.1)
}

func TestCapacityLimit(t *testing.T) {
	cfg := testConfig()
	cfg.CMax = 5
	cfg.CMin = 1
	a := MustNewAdapter(cfg)
	grad := make([]float64, 8)
	grad[0] = 1
	for id := int32(0); id < 20; id++ {
		a.Train([]int32{id}, grad, 0.01)
	}
	if a.ActiveCount() > 5 {
		t.Fatalf("active %d exceeds CMax 5", a.ActiveCount())
	}
}

func TestResizeGrowPreservesDelta(t *testing.T) {
	a := MustNewAdapter(testConfig())
	seedAdapter(a, 10)
	before := snapshotDeltas(a, 10)
	a.Resize(7)
	if a.Rank() != 7 {
		t.Fatalf("rank %d, want 7", a.Rank())
	}
	after := snapshotDeltas(a, 10)
	for id, b := range before {
		for i := range b {
			if math.Abs(b[i]-after[id][i]) > 1e-12 {
				t.Fatal("growing rank must preserve ∆W exactly")
			}
		}
	}
}

func TestResizeShrinkApproximatesDelta(t *testing.T) {
	a := MustNewAdapter(testConfig())
	seedAdapter(a, 20)
	before := snapshotDeltas(a, 20)
	a.Resize(2)
	if a.Rank() != 2 {
		t.Fatalf("rank %d, want 2", a.Rank())
	}
	after := snapshotDeltas(a, 20)
	// The deltas were built from rank-4 factors; rank-2 is an approximation.
	// Verify the relative error is bounded (Eckart–Young gives the best
	// rank-2 error; we just require it's not catastrophic).
	var num, den float64
	for id, b := range before {
		for i := range b {
			d := b[i] - after[id][i]
			num += d * d
			den += b[i] * b[i]
		}
	}
	if den > 0 && num/den > 0.9 {
		t.Fatalf("shrink destroyed delta: relative sq error %v", num/den)
	}
}

func TestResizeClampsAndNoops(t *testing.T) {
	a := MustNewAdapter(testConfig())
	a.Resize(a.Rank()) // no-op
	a.Resize(100)      // clamps to MaxRank (=Dim=8)
	if a.Rank() != 8 {
		t.Fatalf("rank %d, want clamp to 8", a.Rank())
	}
	a.Resize(0) // clamps to MinRank
	if a.Rank() != 1 {
		t.Fatalf("rank %d, want clamp to 1", a.Rank())
	}
	// Shrinking with no rows resets B shape cleanly.
	b := MustNewAdapter(testConfig())
	b.Resize(2)
	if b.Rank() != 2 || b.B().Rows != 2 {
		t.Fatal("empty shrink must resize B")
	}
}

func TestAdaptRankTracksGradientStructure(t *testing.T) {
	// Feed rank-1 gradients: adaptation should shrink toward MinRank.
	cfg := testConfig()
	cfg.InitialRank = 6
	cfg.AdaptInterval = 40
	a := MustNewAdapter(cfg)
	dir := []float64{1, 2, -1, 0.5, 0, 0, 0, 0}
	rng := tensor.NewRNG(3)
	for i := 0; i < 200; i++ {
		g := make([]float64, 8)
		scale := rng.NormFloat64()
		for j := range g {
			g[j] = scale * dir[j]
		}
		a.Train([]int32{int32(i % 30)}, g, 0.01)
	}
	if a.Adaptations() == 0 {
		t.Fatal("adaptation never ran")
	}
	if a.Rank() > 2 {
		t.Fatalf("rank-1 gradients should shrink rank, got %d", a.Rank())
	}
}

func TestAdaptRankGrowsForRichGradients(t *testing.T) {
	cfg := testConfig()
	cfg.InitialRank = 1
	cfg.Alpha = 0.95
	cfg.AdaptInterval = 40
	a := MustNewAdapter(cfg)
	rng := tensor.NewRNG(5)
	for i := 0; i < 200; i++ {
		g := make([]float64, 8)
		for j := range g {
			g[j] = rng.NormFloat64() // full-rank gradient stream
		}
		a.Train([]int32{int32(i % 30)}, g, 0.01)
	}
	if a.Rank() <= 1 {
		t.Fatalf("full-rank gradients should grow rank, got %d", a.Rank())
	}
}

func TestPruningEvictsInactive(t *testing.T) {
	cfg := testConfig()
	cfg.AdaptInterval = 100
	cfg.PruneThresh = 2
	cfg.CMin = 1
	a := MustNewAdapter(cfg)
	grad := make([]float64, 8)
	grad[0] = 0.1
	// id 1 updated often; ids 50..58 once each.
	for i := 0; i < 90; i++ {
		a.Train([]int32{1}, grad, 0.01)
	}
	for id := int32(50); id < 59; id++ {
		a.Train([]int32{id}, grad, 0.01)
	}
	// 99 iterations so far; next one triggers adapt at 100.
	a.Train([]int32{1}, grad, 0.01)
	if a.Adaptations() != 1 {
		t.Fatalf("adaptations %d, want 1", a.Adaptations())
	}
	if a.Has(50) || a.Has(58) {
		t.Fatal("singly-updated ids must be pruned with PruneThresh=2")
	}
	if !a.Has(1) {
		t.Fatal("hot id must survive pruning")
	}
	if a.PrunedTotal() == 0 {
		t.Fatal("pruned counter must advance")
	}
}

func TestSupportExportApplyRoundTrip(t *testing.T) {
	a := MustNewAdapter(testConfig())
	seedAdapter(a, 5)
	if a.SupportSize() == 0 {
		t.Fatal("training must record support")
	}
	export := a.ExportSupport()
	if len(export) != a.SupportSize() {
		t.Fatalf("export %d != support %d", len(export), a.SupportSize())
	}
	b := MustNewAdapter(testConfig())
	b.SetB(a.B())
	b.ApplyRows(export)
	for _, u := range export {
		da := make([]float64, 8)
		db := make([]float64, 8)
		a.Delta(u.ID, da)
		b.Delta(u.ID, db)
		for i := range da {
			if math.Abs(da[i]-db[i]) > 1e-12 {
				t.Fatal("applied rows must reproduce sender deltas")
			}
		}
	}
	// Applying must not pollute receiver support.
	if b.SupportSize() != 0 {
		t.Fatal("ApplyRows must not enter support")
	}
	a.ResetSupport()
	if a.SupportSize() != 0 {
		t.Fatal("ResetSupport failed")
	}
}

func TestApplyRowsRankMismatch(t *testing.T) {
	a := MustNewAdapter(testConfig())                                // rank 4
	a.ApplyRows([]RowUpdate{{ID: 1, Row: []float64{1, 2}}})          // shorter
	a.ApplyRows([]RowUpdate{{ID: 2, Row: []float64{1, 2, 3, 4, 5}}}) // longer
	if len(a.cur.Load().rows[1]) != 4 || len(a.cur.Load().rows[2]) != 4 {
		t.Fatal("applied rows must be adapted to local rank")
	}
}

func TestSetBRankMismatchAndDimPanic(t *testing.T) {
	a := MustNewAdapter(testConfig())
	a.SetB(tensor.NewMatrix(2, 8)) // shorter: zero-pad
	if a.B().Rows != 4 {
		t.Fatal("SetB must keep local rank")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetB with wrong dim must panic")
		}
	}()
	a.SetB(tensor.NewMatrix(4, 5))
}

func TestReset(t *testing.T) {
	a := MustNewAdapter(testConfig())
	seedAdapter(a, 5)
	a.Reset()
	if a.ActiveCount() != 0 || a.SupportSize() != 0 {
		t.Fatal("reset must clear rows and support")
	}
	dst := make([]float64, 8)
	a.Delta(0, dst)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("reset must zero deltas")
		}
	}
}

func TestSizeBytes(t *testing.T) {
	a := MustNewAdapter(testConfig()) // rank 4, dim 8
	base := a.SizeBytes()
	if base != 4*8*8 { // B only
		t.Fatalf("empty adapter bytes %d", base)
	}
	seedAdapter(a, 10)
	if a.SizeBytes() != int64(10*4*8+4*8*8) {
		t.Fatalf("bytes %d", a.SizeBytes())
	}
}

// --- Set tests ---

func newTestSet(t *testing.T) *Set {
	t.Helper()
	rng := tensor.NewRNG(7)
	base := emt.NewGroup(3, 100, 8, rng)
	return MustNewSet(base, testConfig())
}

func TestSetLookupColdEqualsBase(t *testing.T) {
	s := newTestSet(t)
	dst := make([]float64, 8)
	s.Lookup(0, []int32{5}, dst)
	baseRow := s.Base.Tables[0].PeekRow(5)
	for i := range dst {
		if dst[i] != baseRow[i] {
			t.Fatal("cold lookup must equal base")
		}
	}
}

func TestSetLookupHotAddsDelta(t *testing.T) {
	s := newTestSet(t)
	a := s.Adapters[0]
	a.cur.Load().rows[5] = []float64{1, 0, 0, 0}
	b := tensor.NewMatrix(4, 8)
	b.Set(0, 0, 0.5)
	a.SetB(b)
	dst := make([]float64, 8)
	s.Lookup(0, []int32{5}, dst)
	baseRow := s.Base.Tables[0].PeekRow(5)
	if math.Abs(dst[0]-(baseRow[0]+0.5)) > 1e-12 {
		t.Fatalf("hot lookup must add ∆W: got %v want %v", dst[0], baseRow[0]+0.5)
	}
	for i := 1; i < 8; i++ {
		if dst[i] != baseRow[i] {
			t.Fatal("other coords unchanged")
		}
	}
}

func TestSetApplyGradFreezesBase(t *testing.T) {
	s := newTestSet(t)
	baseBefore := append([]float64(nil), s.Base.Tables[1].PeekRow(3)...)
	grad := make([]float64, 8)
	grad[0] = 1
	s.ApplyGrad(1, []int32{3}, grad, 0.1)
	baseAfter := s.Base.Tables[1].PeekRow(3)
	for i := range baseBefore {
		if baseBefore[i] != baseAfter[i] {
			t.Fatal("base weights must stay frozen under LoRA training")
		}
	}
	if s.Base.Tables[1].DirtyCount() != 0 {
		t.Fatal("LoRA training must not dirty the base")
	}
	if !s.Adapters[1].Has(3) {
		t.Fatal("gradient must land in the adapter")
	}
}

func TestSetMergeIntoBase(t *testing.T) {
	s := newTestSet(t)
	a := s.Adapters[0]
	a.cur.Load().rows[7] = []float64{2, 0, 0, 0}
	b := tensor.NewMatrix(4, 8)
	b.Set(0, 3, 1.5)
	a.SetB(b)
	want := make([]float64, 8)
	s.EffectiveRow(0, 7, want)
	s.MergeIntoBase()
	got := s.Base.Tables[0].PeekRow(7)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatal("merge must fold ∆W into base")
		}
	}
	if s.Adapters[0].ActiveCount() != 0 {
		t.Fatal("merge must reset adapters")
	}
	// Post-merge lookups serve the merged value.
	dst := make([]float64, 8)
	s.Lookup(0, []int32{7}, dst)
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatal("post-merge lookup mismatch")
		}
	}
}

func TestSetOverheadRatio(t *testing.T) {
	s := newTestSet(t)
	// Base: 3 tables × 100×8×8 bytes. Empty adapters: 3 × B(4×8×8).
	ratio := s.OverheadRatio()
	want := float64(3*4*8*8) / float64(3*100*8*8)
	if math.Abs(ratio-want) > 1e-12 {
		t.Fatalf("overhead %v, want %v", ratio, want)
	}
}

func TestSetStateRoundTrip(t *testing.T) {
	s1 := newTestSet(t)
	grad := make([]float64, 8)
	grad[2] = 1
	s1.ApplyGrad(0, []int32{1, 2}, grad, 0.05)
	s1.ApplyGrad(2, []int32{9}, grad, 0.05)
	// Make deltas non-zero (B starts zero → kick a row and retrain).
	s1.Adapters[0].cur.Load().rows[1][0] = 0.3
	s1.ApplyGrad(0, []int32{1}, grad, 0.05)

	states := s1.ExportState()
	if PayloadBytes(states) <= 0 {
		t.Fatal("payload must be positive")
	}
	s2 := newTestSet(t)
	s2.ApplyState(states)
	for _, table := range []int{0, 2} {
		for _, u := range states[table].Rows {
			d1 := make([]float64, 8)
			d2 := make([]float64, 8)
			s1.Adapters[table].Delta(u.ID, d1)
			s2.Adapters[table].Delta(u.ID, d2)
			for i := range d1 {
				if math.Abs(d1[i]-d2[i]) > 1e-12 {
					t.Fatal("state sync must reproduce deltas")
				}
			}
		}
	}
	s1.ResetSupports()
	for _, a := range s1.Adapters {
		if a.SupportSize() != 0 {
			t.Fatal("ResetSupports failed")
		}
	}
}

// TestSetStateRoundTripConcurrentLookup is the copy-on-write acceptance
// test: an ExportState/ApplyState (and Publish) round-trip runs in a loop
// while reader goroutines hammer Lookup and EffectiveRow on the same Set.
// Under `go test -race` this proves the publish path swaps state atomically
// — readers never observe a torn mix and never block on an in-flight merge —
// and afterwards the round-trip must still reproduce the exported deltas
// exactly.
func TestSetStateRoundTripConcurrentLookup(t *testing.T) {
	src := newTestSet(t)
	grad := make([]float64, 8)
	grad[1] = 1
	for id := int32(0); id < 40; id++ {
		src.ApplyGrad(int(id)%3, []int32{id % 20}, grad, 0.05)
	}
	states := src.ExportState()
	epochs := []int64{1, 2, 3}

	dst := newTestSet(t)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			out := make([]float64, 8)
			row := make([]float64, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				table := (g + i) % 3
				id := int32(i % 20)
				dst.Lookup(table, []int32{id}, out)
				dst.EffectiveRow(table, id, row)
				dst.HasHot(table, []int32{id})
				_ = dst.Epoch()
			}
		}(g)
	}
	// Writer: repeated apply/publish of the same immutable snapshot while
	// the readers run. Every iteration rebuilds row maps and B matrices, so
	// any unsynchronized reader access is a guaranteed race-detector hit.
	for i := 0; i < 200; i++ {
		dst.ApplyState(states)
		dst.Publish(states, epochs[i%len(epochs)])
	}
	close(stop)
	readers.Wait()

	if got := dst.Epoch(); got != epochs[(200-1)%len(epochs)] {
		t.Fatalf("published epoch = %d, want %d", got, epochs[(200-1)%len(epochs)])
	}
	if v := dst.Published(); v == nil || len(v.Tables) != 3 {
		t.Fatal("published version must carry the applied tables")
	}
	// Round-trip fidelity: the concurrent episode must not have perturbed
	// the installed state.
	d1 := make([]float64, 8)
	d2 := make([]float64, 8)
	for table := range states {
		for _, u := range states[table].Rows {
			src.Adapters[table].Delta(u.ID, d1)
			dst.Adapters[table].Delta(u.ID, d2)
			for i := range d1 {
				if math.Abs(d1[i]-d2[i]) > 1e-12 {
					t.Fatalf("table %d id %d: delta diverged after concurrent round-trip", table, u.ID)
				}
			}
		}
	}
}

// TestSetSnapshotClearsSupports verifies the pipelined snapshot contract:
// Snapshot exports the current supports and clears them, so training that
// lands after the snapshot feeds the next sync epoch instead of being lost.
func TestSetSnapshotClearsSupports(t *testing.T) {
	s := newTestSet(t)
	grad := make([]float64, 8)
	grad[0] = 1
	s.ApplyGrad(0, []int32{4}, grad, 0.05)
	snap := s.Snapshot()
	if len(snap[0].Rows) != 1 || snap[0].Rows[0].ID != 4 {
		t.Fatalf("snapshot missing trained row: %+v", snap[0].Rows)
	}
	for _, a := range s.Adapters {
		if a.SupportSize() != 0 {
			t.Fatal("Snapshot must clear supports")
		}
	}
	// Post-snapshot training lands in the next epoch's support.
	s.ApplyGrad(0, []int32{9}, grad, 0.05)
	next := s.Snapshot()
	if len(next[0].Rows) != 1 || next[0].Rows[0].ID != 9 {
		t.Fatalf("post-snapshot training must feed the next epoch: %+v", next[0].Rows)
	}
}

func TestSetHasHot(t *testing.T) {
	s := newTestSet(t)
	if s.HasHot(0, []int32{1, 2, 3}) {
		t.Fatal("empty set must report cold")
	}
	s.Adapters[0].cur.Load().rows[2] = make([]float64, 4)
	if !s.HasHot(0, []int32{1, 2, 3}) {
		t.Fatal("resident id must report hot")
	}
}

// Property: for arbitrary training sequences the adapter invariants hold —
// ActiveCount ≤ CMax, rank within [MinRank, MaxRank], SizeBytes consistent.
func TestPropertyAdapterInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		cfg := testConfig()
		cfg.CMax = 20
		cfg.CMin = 2
		cfg.AdaptInterval = 16
		a := MustNewAdapter(cfg)
		for i := 0; i < 120; i++ {
			n := 1 + rng.Intn(3)
			ids := make([]int32, n)
			for j := range ids {
				ids[j] = int32(rng.Intn(60))
			}
			g := make([]float64, 8)
			for j := range g {
				g[j] = rng.NormFloat64()
			}
			a.Train(ids, g, 0.01)
			if a.ActiveCount() > cfg.CMax {
				return false
			}
			if a.Rank() < cfg.MinRank || a.Rank() > cfg.MaxRank {
				return false
			}
			if a.SizeBytes() != int64(a.ActiveCount())*int64(a.Rank())*8+int64(a.Rank())*8*8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// seedAdapter populates n rows with non-trivial factors by direct injection
// plus training steps, giving a realistic non-zero ∆W.
func seedAdapter(a *Adapter, n int) {
	rng := tensor.NewRNG(777)
	for id := int32(0); id < int32(n); id++ {
		row := make([]float64, a.Rank())
		for k := range row {
			row[k] = rng.NormFloat64() * 0.2
		}
		a.cur.Load().rows[id] = row
		a.supp[id] = struct{}{}
	}
	b := tensor.NewMatrix(a.Rank(), a.cfg.Dim)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64() * 0.2
	}
	a.SetB(b)
}

func snapshotDeltas(a *Adapter, n int) map[int32][]float64 {
	out := make(map[int32][]float64)
	for id := int32(0); id < int32(n); id++ {
		d := make([]float64, a.cfg.Dim)
		a.Delta(id, d)
		out[id] = d
	}
	return out
}
