package lora

import (
	"fmt"
	"sync/atomic"

	"liveupdate/internal/emt"
	"liveupdate/internal/tensor"
)

// Set pairs one Adapter per embedding table with a frozen base emt.Group and
// implements dlrm.EmbeddingSource: lookups serve W_base + A·B, training
// gradients flow only into the adapters (paper Fig 7).
//
// For synchronization the Set carries epoch-versioned, copy-on-write state:
// Snapshot exports the modified rows for an in-flight merge, Publish installs
// a merged state per adapter with atomic pointer swaps and stamps the epoch.
// Readers (Lookup, EffectiveRow, HasHot) never block on a merge — they are
// safe concurrently with the whole publish path; only Train requires the
// owner's serialization (see the package comment on Adapter).
type Set struct {
	Base     *emt.Group
	Adapters []*Adapter

	// published is the last Version installed by Publish; nil before the
	// first sync. Readers load it lock-free.
	published atomic.Pointer[Version]
}

// Version is an epoch-stamped snapshot of merged adapter state, as installed
// by Publish. It is immutable after publication: the sync pipeline hands the
// same Version to every replica, and adapters copy rows on apply rather than
// aliasing them.
type Version struct {
	// Epoch is the publisher's monotone sync generation — the SyncGroup's
	// cumulative sync counter, which advances on every completed merge,
	// manual SyncNow included. It orders publications; it is NOT the
	// Cluster's SyncEvery epoch index.
	Epoch int64
	// Tables is the merged state, one entry per embedding table.
	Tables []TableState
}

// NewSet builds adapters (one per base table) from cfg. The cfg.Dim field is
// overridden per table from the base group.
func NewSet(base *emt.Group, cfg Config) (*Set, error) {
	s := &Set{Base: base}
	for _, t := range base.Tables {
		c := cfg
		c.Dim = t.Dim
		if c.MaxRank > t.Dim {
			c.MaxRank = t.Dim
		}
		if c.CMax > t.Rows() {
			c.CMax = t.Rows()
		}
		if c.CMin > c.CMax {
			c.CMin = c.CMax
		}
		a, err := NewAdapter(c)
		if err != nil {
			return nil, fmt.Errorf("lora: table %s: %w", t.Name, err)
		}
		s.Adapters = append(s.Adapters, a)
	}
	return s, nil
}

// MustNewSet panics on configuration errors.
func MustNewSet(base *emt.Group, cfg Config) *Set {
	s, err := NewSet(base, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NumTables implements dlrm.EmbeddingSource.
func (s *Set) NumTables() int { return len(s.Base.Tables) }

// Dim implements dlrm.EmbeddingSource.
func (s *Set) Dim() int { return s.Base.Tables[0].Dim }

// Lookup implements dlrm.EmbeddingSource: mean-pools W_base[i] + A[i]·B over
// ids. Cold ids (no LoRA row) serve the base embedding unchanged.
func (s *Set) Lookup(table int, ids []int32, dst []float64) {
	t := s.Base.Tables[table]
	t.Lookup(ids, dst)
	if len(ids) == 0 {
		return
	}
	a := s.Adapters[table]
	inv := 1 / float64(len(ids))
	for _, id := range ids {
		a.Accumulate(id, inv, dst)
	}
}

// ApplyGrad implements dlrm.EmbeddingSource: the pooled-embedding gradient
// trains the LoRA factors; base weights are untouched (frozen W).
func (s *Set) ApplyGrad(table int, ids []int32, grad []float64, lr float64) {
	s.Adapters[table].Train(ids, grad, lr)
}

// SizeBytes sums adapter footprints across tables.
func (s *Set) SizeBytes() int64 {
	var total int64
	for _, a := range s.Adapters {
		total += a.SizeBytes()
	}
	return total
}

// OverheadRatio returns adapter bytes / base EMT bytes — the "<2% of EMTs"
// memory-overhead metric of the paper's abstract and Fig 17.
func (s *Set) OverheadRatio() float64 {
	base := s.Base.SizeBytes()
	if base == 0 {
		return 0
	}
	return float64(s.SizeBytes()) / float64(base)
}

// MergeIntoBase folds every adapter's ∆W into the base tables and resets the
// adapters (used when promoting accumulated LoRA state, e.g. just before an
// hourly full sync replaces the base).
func (s *Set) MergeIntoBase() {
	delta := make([]float64, s.Dim())
	for ti, a := range s.Adapters {
		t := s.Base.Tables[ti]
		for id := range a.cur.Load().rows {
			a.Delta(id, delta)
			t.ApplyRowDelta(id, delta)
		}
		a.Reset()
	}
}

// ResetAdapters clears all adapters without touching the base (after the
// base was replaced by a full-parameter sync).
func (s *Set) ResetAdapters() {
	for _, a := range s.Adapters {
		a.Reset()
	}
}

// HasHot reports whether any id in ids has a LoRA row in the given table —
// the serving path's Hot Index Filter (paper Fig 7, inference step 2).
func (s *Set) HasHot(table int, ids []int32) bool {
	a := s.Adapters[table]
	for _, id := range ids {
		if a.Has(id) {
			return true
		}
	}
	return false
}

// EffectiveRow writes W_base[id] + A[id]·B for one id into dst.
func (s *Set) EffectiveRow(table int, id int32, dst []float64) {
	copy(dst, s.Base.Tables[table].PeekRow(id))
	s.Adapters[table].Accumulate(id, 1, dst)
}

// TableState bundles one adapter's sync payload: modified A rows plus the
// shared B factor.
type TableState struct {
	Rows []RowUpdate
	B    *tensor.Matrix
	Rank int
}

// ExportState snapshots all adapters' supports for synchronization.
func (s *Set) ExportState() []TableState {
	out := make([]TableState, len(s.Adapters))
	for i, a := range s.Adapters {
		out[i] = TableState{Rows: a.ExportSupport(), B: a.B(), Rank: a.Rank()}
	}
	return out
}

// ExportFull snapshots every adapter's complete state — all active rows
// (not just the modified supports) plus the shared factors — as deep
// copies. This is the catch-up payload a replica joining the fleet installs
// with Publish: unlike Snapshot it carries rows from every past sync epoch,
// so the joiner matches a veteran's accumulated state, and it does NOT
// clear the supports (the exporter keeps participating in its next sync
// normally). Owner-only, like Snapshot.
func (s *Set) ExportFull() []TableState {
	out := make([]TableState, len(s.Adapters))
	for i, a := range s.Adapters {
		out[i] = TableState{Rows: a.ExportAllRows(), B: a.B(), Rank: a.Rank()}
	}
	return out
}

// ApplyState installs a synced snapshot (winner of the priority merge). Each
// adapter swaps in its new rows and B factor with one atomic store, so
// concurrent lock-free readers see either the pre- or post-sync state of a
// table, never a torn mix.
func (s *Set) ApplyState(states []TableState) {
	if len(states) != len(s.Adapters) {
		panic(fmt.Sprintf("lora: ApplyState %d states for %d adapters", len(states), len(s.Adapters)))
	}
	for i, st := range states {
		s.Adapters[i].applyState(st)
	}
}

// Snapshot exports every adapter's modified-row support plus shared factors
// and clears the supports — the copy-on-write payload for one epoch of the
// asynchronous sync pipeline. Clearing at snapshot time (rather than after
// the merge lands) means training that arrives while the merge is in flight
// feeds the NEXT epoch instead of being silently dropped. Owner-only: callers
// must hold the replica's serialization while snapshotting.
func (s *Set) Snapshot() []TableState {
	st := s.ExportState()
	s.ResetSupports()
	return st
}

// Publish atomically installs a merged state and stamps it with the
// publisher's epoch. The state is applied per adapter via copy-on-write
// pointer swaps and then recorded as the Set's published Version, so
// lock-free readers can observe both the data and the epoch it belongs to
// without blocking on the merge that produced it.
func (s *Set) Publish(states []TableState, epoch int64) {
	s.ApplyState(states)
	s.published.Store(&Version{Epoch: epoch, Tables: states})
}

// Published returns the last Version installed by Publish (nil before the
// first sync). Lock-free.
func (s *Set) Published() *Version { return s.published.Load() }

// Epoch returns the epoch of the last published state, or -1 before the
// first publication. Lock-free.
func (s *Set) Epoch() int64 {
	if v := s.published.Load(); v != nil {
		return v.Epoch
	}
	return -1
}

// ResetSupports clears all adapters' support sets (end of sync cycle).
func (s *Set) ResetSupports() {
	for _, a := range s.Adapters {
		a.ResetSupport()
	}
}

// PayloadBytes returns the wire size of an exported state: 4 bytes per row
// id plus 8 bytes per float for A rows and B.
func PayloadBytes(states []TableState) int64 {
	var total int64
	for _, st := range states {
		for _, r := range st.Rows {
			total += 4 + int64(len(r.Row))*8
		}
		if st.B != nil {
			total += int64(len(st.B.Data)) * 8
		}
	}
	return total
}
