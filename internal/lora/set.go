package lora

import (
	"fmt"

	"liveupdate/internal/emt"
	"liveupdate/internal/tensor"
)

// Set pairs one Adapter per embedding table with a frozen base emt.Group and
// implements dlrm.EmbeddingSource: lookups serve W_base + A·B, training
// gradients flow only into the adapters (paper Fig 7).
type Set struct {
	Base     *emt.Group
	Adapters []*Adapter
}

// NewSet builds adapters (one per base table) from cfg. The cfg.Dim field is
// overridden per table from the base group.
func NewSet(base *emt.Group, cfg Config) (*Set, error) {
	s := &Set{Base: base}
	for _, t := range base.Tables {
		c := cfg
		c.Dim = t.Dim
		if c.MaxRank > t.Dim {
			c.MaxRank = t.Dim
		}
		if c.CMax > t.Rows() {
			c.CMax = t.Rows()
		}
		if c.CMin > c.CMax {
			c.CMin = c.CMax
		}
		a, err := NewAdapter(c)
		if err != nil {
			return nil, fmt.Errorf("lora: table %s: %w", t.Name, err)
		}
		s.Adapters = append(s.Adapters, a)
	}
	return s, nil
}

// MustNewSet panics on configuration errors.
func MustNewSet(base *emt.Group, cfg Config) *Set {
	s, err := NewSet(base, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NumTables implements dlrm.EmbeddingSource.
func (s *Set) NumTables() int { return len(s.Base.Tables) }

// Dim implements dlrm.EmbeddingSource.
func (s *Set) Dim() int { return s.Base.Tables[0].Dim }

// Lookup implements dlrm.EmbeddingSource: mean-pools W_base[i] + A[i]·B over
// ids. Cold ids (no LoRA row) serve the base embedding unchanged.
func (s *Set) Lookup(table int, ids []int32, dst []float64) {
	t := s.Base.Tables[table]
	t.Lookup(ids, dst)
	if len(ids) == 0 {
		return
	}
	a := s.Adapters[table]
	inv := 1 / float64(len(ids))
	for _, id := range ids {
		a.Accumulate(id, inv, dst)
	}
}

// ApplyGrad implements dlrm.EmbeddingSource: the pooled-embedding gradient
// trains the LoRA factors; base weights are untouched (frozen W).
func (s *Set) ApplyGrad(table int, ids []int32, grad []float64, lr float64) {
	s.Adapters[table].Train(ids, grad, lr)
}

// SizeBytes sums adapter footprints across tables.
func (s *Set) SizeBytes() int64 {
	var total int64
	for _, a := range s.Adapters {
		total += a.SizeBytes()
	}
	return total
}

// OverheadRatio returns adapter bytes / base EMT bytes — the "<2% of EMTs"
// memory-overhead metric of the paper's abstract and Fig 17.
func (s *Set) OverheadRatio() float64 {
	base := s.Base.SizeBytes()
	if base == 0 {
		return 0
	}
	return float64(s.SizeBytes()) / float64(base)
}

// MergeIntoBase folds every adapter's ∆W into the base tables and resets the
// adapters (used when promoting accumulated LoRA state, e.g. just before an
// hourly full sync replaces the base).
func (s *Set) MergeIntoBase() {
	delta := make([]float64, s.Dim())
	for ti, a := range s.Adapters {
		t := s.Base.Tables[ti]
		for id := range a.rows {
			a.Delta(id, delta)
			t.ApplyRowDelta(id, delta)
		}
		a.Reset()
	}
}

// ResetAdapters clears all adapters without touching the base (after the
// base was replaced by a full-parameter sync).
func (s *Set) ResetAdapters() {
	for _, a := range s.Adapters {
		a.Reset()
	}
}

// HasHot reports whether any id in ids has a LoRA row in the given table —
// the serving path's Hot Index Filter (paper Fig 7, inference step 2).
func (s *Set) HasHot(table int, ids []int32) bool {
	a := s.Adapters[table]
	for _, id := range ids {
		if a.Has(id) {
			return true
		}
	}
	return false
}

// EffectiveRow writes W_base[id] + A[id]·B for one id into dst.
func (s *Set) EffectiveRow(table int, id int32, dst []float64) {
	copy(dst, s.Base.Tables[table].PeekRow(id))
	s.Adapters[table].Accumulate(id, 1, dst)
}

// TableState bundles one adapter's sync payload: modified A rows plus the
// shared B factor.
type TableState struct {
	Rows []RowUpdate
	B    *tensor.Matrix
	Rank int
}

// ExportState snapshots all adapters' supports for synchronization.
func (s *Set) ExportState() []TableState {
	out := make([]TableState, len(s.Adapters))
	for i, a := range s.Adapters {
		out[i] = TableState{Rows: a.ExportSupport(), B: a.B(), Rank: a.Rank()}
	}
	return out
}

// ApplyState installs a synced snapshot (winner of the priority merge).
func (s *Set) ApplyState(states []TableState) {
	if len(states) != len(s.Adapters) {
		panic(fmt.Sprintf("lora: ApplyState %d states for %d adapters", len(states), len(s.Adapters)))
	}
	for i, st := range states {
		if st.B != nil {
			s.Adapters[i].SetB(st.B)
		}
		s.Adapters[i].ApplyRows(st.Rows)
	}
}

// ResetSupports clears all adapters' support sets (end of sync cycle).
func (s *Set) ResetSupports() {
	for _, a := range s.Adapters {
		a.ResetSupport()
	}
}

// PayloadBytes returns the wire size of an exported state: 4 bytes per row
// id plus 8 bytes per float for A rows and B.
func PayloadBytes(states []TableState) int64 {
	var total int64
	for _, st := range states {
		for _, r := range st.Rows {
			total += 4 + int64(len(r.Row))*8
		}
		if st.B != nil {
			total += int64(len(st.B.Data)) * 8
		}
	}
	return total
}
