package metrics

import (
	"fmt"
	"sync/atomic"
)

// Concurrency-safe counters for hot statistics paths. A serving fleet driven
// by many client goroutines increments Served/Violations-style counters on
// every request; funneling those through one mutex would serialize the very
// parallelism the fleet exists to provide. Counter is a single atomic word
// for counters with one or few writers; ShardedCounter spreads writers
// across cache-line-padded slots (one per worker) so concurrent increments
// never contend, at the cost of a summing read.

// Counter is an atomic uint64 counter. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1 and returns the new value.
func (c *Counter) Inc() uint64 { return c.v.Add(1) }

// Add adds n and returns the new value.
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// counterSlot pads each shard's word to its own cache line (64 bytes) so
// concurrent writers on different shards never false-share.
type counterSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// ShardedCounter is a write-optimized counter split across per-writer slots.
// Each writer owns one shard index (e.g. its worker id) and increments it
// without ever touching another writer's cache line; Load sums the slots.
// Reads are O(shards) and monotone but not linearizable with respect to
// in-flight writes — exactly the trade a throughput counter wants.
type ShardedCounter struct {
	slots []counterSlot
}

// NewShardedCounter returns a counter with the given number of shards
// (typically the worker count). It panics if shards < 1.
func NewShardedCounter(shards int) *ShardedCounter {
	if shards < 1 {
		panic(fmt.Sprintf("metrics: ShardedCounter needs >= 1 shard, got %d", shards))
	}
	return &ShardedCounter{slots: make([]counterSlot, shards)}
}

// Shards returns the number of shards.
func (c *ShardedCounter) Shards() int { return len(c.slots) }

// Add adds n to the given shard. It panics on an out-of-range shard.
func (c *ShardedCounter) Add(shard int, n uint64) {
	c.slots[shard].v.Add(n)
}

// ShardLoad returns one shard's value.
func (c *ShardedCounter) ShardLoad(shard int) uint64 { return c.slots[shard].v.Load() }

// Load returns the sum across all shards.
func (c *ShardedCounter) Load() uint64 {
	var total uint64
	for i := range c.slots {
		total += c.slots[i].v.Load()
	}
	return total
}
