package metrics

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value must start at 0")
	}
	if got := c.Inc(); got != 1 {
		t.Fatalf("Inc = %d, want 1", got)
	}
	if got := c.Add(9); got != 10 {
		t.Fatalf("Add = %d, want 10", got)
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset must zero the counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	const workers, per = 8, 10000
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load = %d, want %d", got, workers*per)
	}
}

func TestShardedCounterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardedCounter(0) must panic")
		}
	}()
	NewShardedCounter(0)
}

func TestShardedCounterConcurrent(t *testing.T) {
	const workers, per = 8, 10000
	c := NewShardedCounter(workers)
	if c.Shards() != workers {
		t.Fatalf("Shards = %d, want %d", c.Shards(), workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load = %d, want %d", got, workers*per)
	}
	for w := 0; w < workers; w++ {
		if got := c.ShardLoad(w); got != per {
			t.Fatalf("shard %d = %d, want %d", w, got, per)
		}
	}
}
