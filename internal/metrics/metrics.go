// Package metrics provides the evaluation metrics used throughout the
// LiveUpdate reproduction: AUC-ROC for recommendation quality (paper §V-A),
// latency quantile tracking for P99 SLA monitoring (paper §IV-D), histograms,
// and CDF extraction (paper Fig 12).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// AUC computes the area under the ROC curve by the rank-statistic method
// (equivalent to the Mann–Whitney U statistic). scores[i] is the predicted
// probability for example i; labels[i] is its true 0/1 label. Tied scores
// receive the average rank. AUC returns 0.5 when either class is absent.
func AUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: AUC length mismatch %d vs %d", len(scores), len(labels)))
	}
	n := len(scores)
	if n == 0 {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var posRankSum float64
	var pos, neg int
	i := 0
	for i < n {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		// Average rank of the tie group [i, j); ranks are 1-based.
		avgRank := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if labels[idx[k]] == 1 {
				posRankSum += avgRank
				pos++
			} else {
				neg++
			}
		}
		i = j
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	u := posRankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// LogLoss returns the mean binary cross-entropy of predictions clipped away
// from 0 and 1 for numerical safety.
func LogLoss(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic("metrics: LogLoss length mismatch")
	}
	if len(scores) == 0 {
		return 0
	}
	const eps = 1e-12
	sum := 0.0
	for i, p := range scores {
		if p < eps {
			p = eps
		} else if p > 1-eps {
			p = 1 - eps
		}
		if labels[i] == 1 {
			sum -= math.Log(p)
		} else {
			sum -= math.Log(1 - p)
		}
	}
	return sum / float64(len(scores))
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using linear
// interpolation between closest ranks. It copies and sorts the input.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LatencyTracker accumulates latency samples over a sliding window and
// reports quantiles. It keeps the most recent Window samples.
type LatencyTracker struct {
	window  int
	samples []float64
	next    int
	count   uint64
	sum     float64
}

// NewLatencyTracker returns a tracker keeping the last window samples.
func NewLatencyTracker(window int) *LatencyTracker {
	if window <= 0 {
		window = 1024
	}
	return &LatencyTracker{window: window, samples: make([]float64, 0, window)}
}

// Observe records one latency sample.
func (t *LatencyTracker) Observe(v float64) {
	t.count++
	t.sum += v
	if len(t.samples) < t.window {
		t.samples = append(t.samples, v)
		return
	}
	t.samples[t.next] = v
	t.next = (t.next + 1) % t.window
}

// Count returns the total number of samples observed (not just retained).
func (t *LatencyTracker) Count() uint64 { return t.count }

// Mean returns the mean over all observed samples.
func (t *LatencyTracker) Mean() float64 {
	if t.count == 0 {
		return 0
	}
	return t.sum / float64(t.count)
}

// P99 returns the 99th-percentile latency over the retained window.
func (t *LatencyTracker) P99() float64 { return Quantile(t.samples, 0.99) }

// P50 returns the median latency over the retained window.
func (t *LatencyTracker) P50() float64 { return Quantile(t.samples, 0.50) }

// QuantileOf returns an arbitrary quantile over the retained window.
func (t *LatencyTracker) QuantileOf(q float64) float64 { return Quantile(t.samples, q) }

// Samples returns a copy of the retained window (unordered with respect to
// observation time once the window has wrapped). It lets callers pool raw
// latencies across trackers, e.g. for a fleet-wide P99.
func (t *LatencyTracker) Samples() []float64 {
	return append([]float64(nil), t.samples...)
}

// Reset drops all retained samples and counters.
func (t *LatencyTracker) Reset() {
	t.samples = t.samples[:0]
	t.next = 0
	t.count = 0
	t.sum = 0
}

// Histogram counts values into fixed-width buckets over [min, max); values
// outside the range are clamped into the first/last bucket.
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	width    float64
	total    uint64
}

// NewHistogram creates a histogram with n buckets covering [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("metrics: invalid histogram parameters")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, n), width: (max - min) / float64(n)}
}

// Observe adds one value. NaN is dropped; ±Inf clamps to the edge buckets.
// The range check happens on the float side: converting a NaN or out-of-range
// float to int is unspecified in Go, so `int((v-Min)/width)` on such inputs
// could land in an arbitrary bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	var b int
	switch {
	case v < h.Min:
		b = 0
	case v >= h.Max:
		b = len(h.Counts) - 1
	default:
		if b = int((v - h.Min) / h.width); b >= len(h.Counts) {
			// Float rounding at the upper edge can overshoot by one.
			b = len(h.Counts) - 1
		}
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of observed values.
func (h *Histogram) Total() uint64 { return h.total }

// CDF returns cumulative fractions per bucket upper edge.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		out[i] = float64(cum) / float64(h.total)
	}
	return out
}

// TopShareCDF is the access-skew statistic of paper Fig 12: given per-item
// access counts, it returns the fraction of total accesses captured by the
// most popular `fraction` of items (e.g. fraction=0.10 → "top 10% of indices
// account for X% of accesses").
func TopShareCDF(counts []uint64, fraction float64) float64 {
	if len(counts) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), counts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total uint64
	for _, c := range sorted {
		total += c
	}
	if total == 0 {
		return 0
	}
	k := int(math.Ceil(fraction * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	var top uint64
	for i := 0; i < k; i++ {
		top += sorted[i]
	}
	return float64(top) / float64(total)
}

// EMA is an exponential moving average with smoothing factor alpha in (0,1].
type EMA struct {
	Alpha float64
	value float64
	init  bool
}

// Observe folds in a sample and returns the updated average.
func (e *EMA) Observe(v float64) float64 {
	if !e.init {
		e.value = v
		e.init = true
		return v
	}
	e.value = e.Alpha*v + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any sample).
func (e *EMA) Value() float64 { return e.value }
