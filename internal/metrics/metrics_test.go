package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"liveupdate/internal/tensor"
)

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); got != 0 {
		t.Fatalf("AUC = %v, want 0", got)
	}
}

func TestAUCAllTied(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	if got := AUC(scores, labels); got != 0.5 {
		t.Fatalf("AUC with ties = %v, want 0.5", got)
	}
}

func TestAUCSingleClass(t *testing.T) {
	if got := AUC([]float64{0.3, 0.7}, []int{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Fatalf("empty AUC = %v, want 0.5", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// One mis-ranked pair among 2x2 = 4 pairs → AUC = 3/4.
	scores := []float64{0.9, 0.3, 0.5, 0.1}
	labels := []int{1, 1, 0, 0}
	if got := AUC(scores, labels); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.75", got)
	}
}

// Property: AUC is invariant under any strictly monotone transform of scores.
func TestPropertyAUCMonotoneInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Intn(2)
		}
		a1 := AUC(scores, labels)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(3*s) + 7 // strictly increasing
		}
		a2 := AUC(transformed, labels)
		return math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping all labels maps AUC to 1-AUC (when both classes present).
func TestPropertyAUCLabelFlip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 10 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]int, n)
		pos := 0
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Intn(2)
			pos += labels[i]
		}
		if pos == 0 || pos == n {
			return true // degenerate, AUC pinned at 0.5 either way
		}
		flipped := make([]int, n)
		for i, l := range labels {
			flipped[i] = 1 - l
		}
		return math.Abs(AUC(scores, labels)+AUC(scores, flipped)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLogLoss(t *testing.T) {
	// Perfect confident predictions → near-zero loss.
	if l := LogLoss([]float64{1, 0}, []int{1, 0}); l > 1e-9 {
		t.Fatalf("perfect logloss = %v", l)
	}
	// p=0.5 everywhere → ln 2.
	l := LogLoss([]float64{0.5, 0.5}, []int{1, 0})
	if math.Abs(l-math.Ln2) > 1e-12 {
		t.Fatalf("logloss = %v, want ln2", l)
	}
	if LogLoss(nil, nil) != 0 {
		t.Fatal("empty logloss must be 0")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if q := Quantile(vals, 0.5); q != 3 {
		t.Fatalf("median = %v, want 3", q)
	}
	if q := Quantile(vals, 0); q != 1 {
		t.Fatalf("q0 = %v, want 1", q)
	}
	if q := Quantile(vals, 1); q != 5 {
		t.Fatalf("q1 = %v, want 5", q)
	}
	if q := Quantile(vals, 0.25); q != 2 {
		t.Fatalf("q25 = %v, want 2", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	// Out-of-range q clamps.
	if q := Quantile(vals, 2); q != 5 {
		t.Fatalf("q clamp high = %v", q)
	}
	if q := Quantile(vals, -1); q != 1 {
		t.Fatalf("q clamp low = %v", q)
	}
}

func TestLatencyTrackerBasics(t *testing.T) {
	tr := NewLatencyTracker(100)
	for i := 1; i <= 100; i++ {
		tr.Observe(float64(i))
	}
	if tr.Count() != 100 {
		t.Fatalf("count = %d", tr.Count())
	}
	if m := tr.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	if p := tr.P99(); p < 98 || p > 100 {
		t.Fatalf("p99 = %v", p)
	}
	if p := tr.P50(); p < 49 || p > 52 {
		t.Fatalf("p50 = %v", p)
	}
}

func TestLatencyTrackerSlidingWindow(t *testing.T) {
	tr := NewLatencyTracker(10)
	for i := 0; i < 100; i++ {
		tr.Observe(1)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(100)
	}
	// Window now holds only the 100s.
	if p := tr.P50(); p != 100 {
		t.Fatalf("window p50 = %v, want 100", p)
	}
	if tr.Count() != 110 {
		t.Fatalf("count = %d, want 110", tr.Count())
	}
}

func TestLatencyTrackerReset(t *testing.T) {
	tr := NewLatencyTracker(10)
	tr.Observe(5)
	tr.Reset()
	if tr.Count() != 0 || tr.Mean() != 0 || tr.P99() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestHistogramAndCDF(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	cdf := h.CDF()
	if cdf[0] != 0.1 || math.Abs(cdf[9]-1) > 1e-12 {
		t.Fatalf("cdf = %v", cdf)
	}
	// Clamping of out-of-range values.
	h.Observe(-5)
	h.Observe(99)
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("clamp failed: %v", h.Counts)
	}
}

func TestTopShareCDF(t *testing.T) {
	// 10 items; item 0 gets 90 accesses, others 10 total.
	counts := make([]uint64, 10)
	counts[0] = 90
	for i := 1; i < 10; i++ {
		counts[i] = 1
	}
	// Top 10% (1 item) should hold 90/99 of the mass.
	got := TopShareCDF(counts, 0.10)
	want := 90.0 / 99.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TopShareCDF = %v, want %v", got, want)
	}
	if TopShareCDF(counts, 1.0) != 1 {
		t.Fatal("full fraction must capture everything")
	}
	if TopShareCDF(nil, 0.1) != 0 {
		t.Fatal("empty counts → 0")
	}
	if TopShareCDF(make([]uint64, 5), 0.1) != 0 {
		t.Fatal("all-zero counts → 0")
	}
}

func TestEMA(t *testing.T) {
	e := &EMA{Alpha: 0.5}
	if e.Value() != 0 {
		t.Fatal("initial EMA must be 0")
	}
	e.Observe(10) // initializes to 10
	if e.Value() != 10 {
		t.Fatalf("EMA init = %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("EMA = %v, want 15", e.Value())
	}
}

// Property: the rank-based AUC equals the brute-force pair statistic
// (fraction of positive-negative pairs ranked correctly, ties = 1/2).
func TestPropertyAUCMatchesBruteForce(t *testing.T) {
	brute := func(scores []float64, labels []int) float64 {
		var num, den float64
		for i := range scores {
			if labels[i] != 1 {
				continue
			}
			for j := range scores {
				if labels[j] != 0 {
					continue
				}
				den++
				switch {
				case scores[i] > scores[j]:
					num++
				case scores[i] == scores[j]:
					num += 0.5
				}
			}
		}
		if den == 0 {
			return 0.5
		}
		return num / den
	}
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(40)
		scores := make([]float64, n)
		labels := make([]int, n)
		for i := range scores {
			// Quantized scores to force ties frequently.
			scores[i] = float64(rng.Intn(6)) / 5
			labels[i] = rng.Intn(2)
		}
		return math.Abs(AUC(scores, labels)-brute(scores, labels)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(vals, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		lo, hi := Quantile(vals, 0), Quantile(vals, 1)
		for _, v := range vals {
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNonFiniteInputs(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Observe(math.NaN())
	if h.Total() != 0 {
		t.Fatalf("NaN was counted: total = %d, counts = %v", h.Total(), h.Counts)
	}
	h.Observe(math.Inf(1))
	if h.Counts[9] != 1 {
		t.Fatalf("+Inf must clamp to the last bucket: %v", h.Counts)
	}
	h.Observe(math.Inf(-1))
	if h.Counts[0] != 1 {
		t.Fatalf("-Inf must clamp to the first bucket: %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Fatalf("total = %d, want 2", h.Total())
	}
	// The exact upper edge belongs to the last bucket, never out of range.
	h.Observe(10)
	if h.Counts[9] != 2 {
		t.Fatalf("max edge must land in the last bucket: %v", h.Counts)
	}
}

func TestLatencyTrackerWrapKeepsWindowStats(t *testing.T) {
	// Regression for the removal of the dead `full` flag: wrapping the
	// window must keep Count/Mean over all samples while quantiles reflect
	// only the retained window.
	tr := NewLatencyTracker(4)
	for i := 1; i <= 8; i++ {
		tr.Observe(float64(i))
	}
	if tr.Count() != 8 {
		t.Fatalf("count = %d, want 8", tr.Count())
	}
	if got, want := tr.Mean(), 4.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// Window retains {5,6,7,8}.
	if got := tr.P50(); got < 5 || got > 8 {
		t.Fatalf("P50 = %v, want within retained window [5,8]", got)
	}
	if s := tr.Samples(); len(s) != 4 {
		t.Fatalf("retained %d samples, want 4", len(s))
	}
}
