// Package netclient drives a remote netserve gateway over TCP. A Client
// implements the same serving interfaces the in-process stack does —
// Serve/Stats, plus the sharded and batched driver surfaces — so the
// concurrent load driver (and with it the public liveupdate.Drive, batching
// included) works unchanged against a fleet in another process.
//
// Client-side shards are lanes: the client owns Conns independent HTTP
// connections, ShardOf hashes a sample's sparse ids to a lane, and the
// driver's per-shard FIFO queues become per-connection pipelines. Server-side
// routing still happens on the server — a lane is a transport, not a
// replica — so lane count tunes client parallelism without changing where
// requests land.
//
// # Resilience
//
// The client survives more than back-pressure:
//
//   - A 429 from the gateway is not an error but shedding. The client sleeps
//     out the server's Retry-After hint (millisecond-granular via
//     X-Retry-After-Ms, clamped to [0, MaxRetryWait]) and retries, counting
//     every shed it absorbed in Shed429.
//   - Transport errors (dial failures, resets, timeouts), 5xx responses, and
//     every 4xx except 413/422 (a request damaged in flight is
//     indistinguishable from a malformed one — a corrupted request line can
//     surface as 400, 404, or 405; a genuinely bad request just exhausts the
//     budget) retry with jittered exponential backoff from BackoffBase up to
//     MaxRetryWait, rotating through failover addresses.
//   - Each lane carries a circuit breaker: BreakerThreshold consecutive
//     failures open it, attempts then wait out BreakerCooldown before a
//     single half-open probe; the probe's outcome closes or re-opens it.
//     A 429 counts as breaker success — the server is alive, just shedding.
//   - Every attempt carries a per-attempt deadline (Timeout) and honors the
//     context bound via BindContext: cancellation interrupts back-off sleeps,
//     breaker cooldowns, and in-flight attempts alike.
//
// All retries share one budget (Retries attempts per request); exhausting it
// — or cancellation — counts the request in GaveUp.
package netclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/netserve"
	"liveupdate/internal/obs"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

// Config configures Dial.
type Config struct {
	// Conns is the number of client lanes (independent HTTP connections and
	// driver shards). 0 defaults to 1.
	Conns int

	// Timeout bounds each HTTP attempt. 0 defaults to 30s.
	Timeout time.Duration

	// Retries is the number of times one request retries — after a shed, a
	// transport error, or a retryable status — before giving up. 0 defaults
	// to 64; negative is invalid.
	Retries int

	// MaxRetryWait caps how long a single back-off sleeps, for Retry-After
	// hints and exponential backoff alike. 0 defaults to 250ms.
	MaxRetryWait time.Duration

	// BackoffBase is the first exponential back-off step for transport-level
	// retries; step k sleeps ~BackoffBase<<k (jittered, capped at
	// MaxRetryWait). 0 defaults to 5ms.
	BackoffBase time.Duration

	// BreakerThreshold opens a lane's circuit breaker after this many
	// consecutive transport failures. 0 defaults to 5; negative is invalid.
	BreakerThreshold int

	// BreakerCooldown is how long an open breaker rejects attempts before
	// allowing a half-open probe. 0 defaults to 200ms.
	BreakerCooldown time.Duration

	// Failover lists additional gateway addresses. A transport failure
	// rotates the lane to the next address; the handshake still runs against
	// the primary.
	Failover []string

	// Seed drives back-off jitter (wall-clock only — jitter never touches
	// virtual-time statistics). 0 means a fixed default stream.
	Seed uint64

	// Telemetry, when set, receives the client's fault-tolerance instruments
	// (liveupdate_client_retries_total, breaker-state gauge, ...).
	Telemetry *obs.Telemetry
}

func (c Config) withDefaults() (Config, error) {
	switch {
	case c.Conns < 0:
		return c, fmt.Errorf("netclient: Conns must be non-negative, got %d", c.Conns)
	case c.Timeout < 0:
		return c, fmt.Errorf("netclient: Timeout must be non-negative, got %v", c.Timeout)
	case c.Retries < 0:
		return c, fmt.Errorf("netclient: Retries must be non-negative, got %d", c.Retries)
	case c.MaxRetryWait < 0:
		return c, fmt.Errorf("netclient: MaxRetryWait must be non-negative, got %v", c.MaxRetryWait)
	case c.BackoffBase < 0:
		return c, fmt.Errorf("netclient: BackoffBase must be non-negative, got %v", c.BackoffBase)
	case c.BreakerThreshold < 0:
		return c, fmt.Errorf("netclient: BreakerThreshold must be non-negative, got %d", c.BreakerThreshold)
	case c.BreakerCooldown < 0:
		return c, fmt.Errorf("netclient: BreakerCooldown must be non-negative, got %v", c.BreakerCooldown)
	}
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 64
	}
	if c.MaxRetryWait == 0 {
		c.MaxRetryWait = 250 * time.Millisecond
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 200 * time.Millisecond
	}
	return c, nil
}

// Breaker states (the breaker-state gauge exports the open-lane count).
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-lane circuit breaker. Lanes are driven by one goroutine
// at a time (the driver's lane ownership), but state is read concurrently by
// the metrics gauge, so transitions stay behind a mutex.
type breaker struct {
	mu        sync.Mutex
	state     int32
	fails     int
	openUntil time.Time
	threshold int
	cooldown  time.Duration
}

// wait returns how long the caller must sleep before its attempt may
// proceed. An open breaker returns the remaining cooldown and moves to
// half-open (the caller's attempt is the probe).
func (b *breaker) wait(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return 0
	}
	d := b.openUntil.Sub(now)
	if d < 0 {
		d = 0
	}
	b.state = breakerHalfOpen
	return d
}

func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.mu.Unlock()
}

func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openUntil = now.Add(b.cooldown)
	}
	b.mu.Unlock()
}

func (b *breaker) snapshot() int32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// lane is one client shard: a private HTTP transport, breaker, jitter RNG,
// and failover cursor.
type lane struct {
	hc   *http.Client
	brk  breaker
	mu   sync.Mutex // guards rng and addr
	rng  *tensor.RNG
	addr int // index into Client.addrs
}

// Client is a remote Server. Use one lane (shard) from one goroutine at a
// time — exactly the discipline the load driver's lane ownership provides;
// Stats and Serve are safe for concurrent use.
type Client struct {
	addrs []string // base URLs; addrs[0] is the primary
	cfg   Config
	info  netserve.Info
	lanes []*lane

	boundCtx atomic.Pointer[context.Context] // BindContext target for serve-path attempts

	shed429     atomic.Uint64         // 429 responses absorbed (then retried)
	transpRetry atomic.Uint64         // transport/5xx/400 retries
	gaveUp      atomic.Uint64         // requests abandoned (budget or cancellation)
	retryWait   atomic.Int64          // cumulative back-off, nanoseconds
	statsErr    atomic.Pointer[error] // most recent Stats() transport failure
}

// Dial connects to a netserve gateway, performs the /info handshake, and
// returns a Client with cfg.Conns lanes.
func Dial(addr string, cfg Config) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, addrs: []string{normalizeAddr(addr)}}
	for _, fo := range cfg.Failover {
		c.addrs = append(c.addrs, normalizeAddr(fo))
	}
	jitter := tensor.NewRNG(cfg.Seed ^ 0x66617578) // decorrelate from model seeds
	for i := 0; i < cfg.Conns; i++ {
		c.lanes = append(c.lanes, &lane{
			// One Transport per lane: lanes must not share pooled
			// connections, or slow requests on one lane would head-of-line
			// block another.
			hc: &http.Client{
				Timeout: cfg.Timeout,
				Transport: &http.Transport{
					MaxIdleConns:        2,
					MaxIdleConnsPerHost: 2,
					IdleConnTimeout:     90 * time.Second,
				},
			},
			brk: breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
			rng: jitter.Split(),
		})
	}
	// The handshake rides the same flaky wire as everything else, so it
	// retries with backoff too — bounded tighter than the request budget so
	// dialing a dead address still fails promptly.
	attempts := cfg.Retries
	if attempts > 8 {
		attempts = 8
	}
	var hErr error
	for attempt := 0; ; attempt++ {
		if hErr = c.handshake(); hErr == nil {
			break
		}
		if attempt >= attempts {
			return nil, hErr
		}
		time.Sleep(c.backoff(c.lanes[0], attempt))
	}
	c.registerMetrics(cfg.Telemetry.Registry())
	return c, nil
}

// handshake fetches /info on lane 0 and validates the protocol version.
func (c *Client) handshake() error {
	resp, err := c.lanes[0].hc.Get(c.addrs[0] + "/info")
	if err != nil {
		return fmt.Errorf("netclient: handshake: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("netclient: handshake: server returned %s", resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&c.info); err != nil {
		return fmt.Errorf("netclient: handshake: decoding /info: %w", err)
	}
	if c.info.Protocol != 1 {
		return fmt.Errorf("netclient: server speaks wire protocol %d, client speaks 1", c.info.Protocol)
	}
	return nil
}

func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/")
}

func (c *Client) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("liveupdate_client_retries_total",
		"Client request retries: shed (429) plus transport-level.",
		func() uint64 { return c.shed429.Load() + c.transpRetry.Load() })
	reg.CounterFunc("liveupdate_client_transport_retries_total",
		"Client retries caused by transport errors or retryable statuses.",
		c.TransportRetries)
	reg.CounterFunc("liveupdate_client_gaveup_total",
		"Requests the client abandoned after exhausting its retry budget.",
		c.GaveUp)
	reg.GaugeFunc("liveupdate_client_breaker_open",
		"Client lanes whose circuit breaker is currently open or probing.",
		func() float64 {
			open := 0
			for _, l := range c.lanes {
				if l.brk.snapshot() != breakerClosed {
					open++
				}
			}
			return float64(open)
		})
}

// BindContext attaches ctx to every subsequent serve-path attempt: per-attempt
// deadlines derive from it and back-off or breaker sleeps abort when it is
// cancelled. The driver binds its drive context here (via a type assertion)
// so a cancelled DriveContext never hangs in a retry sleep. Stats and
// FetchStats deliberately ignore the bound context — a post-drive stats
// fetch must survive the drive's own cancellation.
func (c *Client) BindContext(ctx context.Context) {
	if ctx == nil {
		c.boundCtx.Store(nil)
		return
	}
	c.boundCtx.Store(&ctx)
}

func (c *Client) ctx() context.Context {
	if p := c.boundCtx.Load(); p != nil {
		return *p
	}
	return context.Background()
}

// Info returns the server's handshake payload (profile name, server-side
// replica count, batch hint).
func (c *Client) Info() netserve.Info { return c.info }

// Shed429 returns how many 429 shed responses this client absorbed and
// retried — the client-side mirror of the server's shed counters.
func (c *Client) Shed429() uint64 { return c.shed429.Load() }

// TransportRetries returns how many retries were caused by transport errors
// or retryable statuses (5xx, serve-path 400), as opposed to 429 shedding.
func (c *Client) TransportRetries() uint64 { return c.transpRetry.Load() }

// GaveUp returns how many requests the client abandoned — retry budget
// exhausted or context cancelled. The third leg of the wire ledger:
// sent == completed + gave-up.
func (c *Client) GaveUp() uint64 { return c.gaveUp.Load() }

// RetryWait returns the cumulative time spent sleeping out back-off (shed
// hints, exponential backoff, and breaker cooldowns).
func (c *Client) RetryWait() time.Duration { return time.Duration(c.retryWait.Load()) }

// BreakerOpenLanes returns how many lanes currently have a non-closed
// breaker (open or half-open probe pending).
func (c *Client) BreakerOpenLanes() int {
	open := 0
	for _, l := range c.lanes {
		if l.brk.snapshot() != breakerClosed {
			open++
		}
	}
	return open
}

// Close releases idle connections on every lane.
func (c *Client) Close() {
	for _, l := range c.lanes {
		l.hc.CloseIdleConnections()
	}
}

// NumShards returns the client lane count: the driver treats each lane as an
// independently drivable shard.
func (c *Client) NumShards() int { return len(c.lanes) }

// ShardOf hashes a sample's sparse ids to a lane — deterministic for a fixed
// lane count, so the sequencer's routing never depends on timing. Samples
// with the same sparse signature ride the same connection, which keeps the
// driver's batch coalescing effective over the wire.
func (c *Client) ShardOf(s trace.Sample) int {
	h := fnv.New64a()
	var buf [4]byte
	for _, ids := range s.Sparse {
		for _, id := range ids {
			buf[0] = byte(id)
			buf[1] = byte(id >> 8)
			buf[2] = byte(id >> 16)
			buf[3] = byte(id >> 24)
			h.Write(buf[:])
		}
	}
	return int(h.Sum64() % uint64(len(c.lanes)))
}

// Serve scores one sample through the JSON endpoint on its hashed lane.
func (c *Client) Serve(s trace.Sample) (core.Response, error) {
	return c.ServeShard(c.ShardOf(s), s)
}

// ServeShard scores one sample on a specific lane via POST /serve (JSON).
func (c *Client) ServeShard(shard int, s trace.Sample) (core.Response, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return core.Response{}, fmt.Errorf("netclient: encoding sample: %w", err)
	}
	data, err := c.post(shard, "/serve", "application/json", body)
	if err != nil {
		return core.Response{}, err
	}
	var resp core.Response
	if err := json.Unmarshal(data, &resp); err != nil {
		return core.Response{}, fmt.Errorf("netclient: decoding response: %w", err)
	}
	return resp, nil
}

// ServeShardBatch scores a coalesced run of samples on one lane via the
// binary POST /serve.bin fast path. resps must have the same length as
// samples and is filled in order.
func (c *Client) ServeShardBatch(shard int, samples []trace.Sample, resps []core.Response) error {
	if len(resps) != len(samples) {
		return fmt.Errorf("netclient: ServeShardBatch got %d response slots for %d samples", len(resps), len(samples))
	}
	if len(samples) == 0 {
		return nil
	}
	data, err := c.post(shard, "/serve.bin", "application/octet-stream",
		netserve.AppendBatch(make([]byte, 0, 64*len(samples)), samples))
	if err != nil {
		return err
	}
	decoded, err := netserve.DecodeResponses(data)
	if err != nil {
		return err
	}
	if len(decoded) != len(samples) {
		return fmt.Errorf("netclient: server returned %d responses for %d samples", len(decoded), len(samples))
	}
	copy(resps, decoded)
	return nil
}

// Stats fetches the server's statistics snapshot (wire admission ledger
// included). The Server interface has no error return, so a transport
// failure here yields a zero snapshot; LastStatsErr reports it.
func (c *Client) Stats() core.Stats {
	st, err := c.FetchStats()
	if err != nil {
		c.statsErr.Store(&err)
		return core.Stats{}
	}
	c.statsErr.Store(nil)
	return st
}

// FetchStats is Stats with the error: a GET /stats round trip.
func (c *Client) FetchStats() (core.Stats, error) {
	resp, err := c.lanes[0].hc.Get(c.addrs[0] + "/stats")
	if err != nil {
		return core.Stats{}, fmt.Errorf("netclient: fetching stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return core.Stats{}, fmt.Errorf("netclient: /stats returned %s", resp.Status)
	}
	var st core.Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<24)).Decode(&st); err != nil {
		return core.Stats{}, fmt.Errorf("netclient: decoding stats: %w", err)
	}
	return netserve.RestoreStats(st), nil
}

// LastStatsErr returns the error of the most recent failed Stats() call, or
// nil if none failed since the last success.
func (c *Client) LastStatsErr() error {
	if p := c.statsErr.Load(); p != nil {
		return *p
	}
	return nil
}

// sleep blocks for d or until ctx is cancelled, billing the time slept to
// the retry-wait ledger either way.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	start := time.Now()
	t := time.NewTimer(d)
	defer t.Stop()
	defer func() { c.retryWait.Add(int64(time.Since(start))) }()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the jittered exponential delay for transport-retry step k:
// uniform in [w/2, w] where w = min(BackoffBase<<k, MaxRetryWait).
func (c *Client) backoff(l *lane, k int) time.Duration {
	w := c.cfg.MaxRetryWait
	if k < 32 {
		if stepped := c.cfg.BackoffBase << uint(k); stepped < w {
			w = stepped
		}
	}
	if w <= 0 {
		return 0
	}
	l.mu.Lock()
	f := l.rng.Float64()
	l.mu.Unlock()
	return w/2 + time.Duration(f*float64(w/2))
}

// laneURL resolves the lane's current failover address; advance rotates it
// after a transport failure.
func (l *lane) laneURL(addrs []string, path string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return addrs[l.addr] + path
}

func (l *lane) advance(n int) {
	l.mu.Lock()
	l.addr = (l.addr + 1) % n
	l.mu.Unlock()
}

// post runs one request on a lane with the full resilience stack: breaker
// gate, per-attempt deadline, 429 absorption, and jittered-backoff retries
// with address failover for transport errors and every status except
// 200/413/422. Non-retryable statuses return an error carrying the server's
// JSON error body.
func (c *Client) post(shard int, path, contentType string, body []byte) ([]byte, error) {
	if shard < 0 || shard >= len(c.lanes) {
		return nil, fmt.Errorf("netclient: lane %d of %d", shard, len(c.lanes))
	}
	l := c.lanes[shard]
	ctx := c.ctx()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > c.cfg.Retries {
			c.gaveUp.Add(1)
			return nil, fmt.Errorf("netclient: %s: gave up after %d attempts: %w", path, attempt, lastErr)
		}
		// An open breaker holds the attempt until cooldown, then lets it
		// through as the half-open probe. The driver aborts a drive on any
		// serve error, so the breaker waits instead of failing fast.
		if d := l.brk.wait(time.Now()); d > 0 {
			if err := c.sleep(ctx, d); err != nil {
				c.gaveUp.Add(1)
				return nil, fmt.Errorf("netclient: %s: cancelled in breaker cooldown: %w", path, err)
			}
		}
		data, status, hdr, err := c.attempt(ctx, l, path, contentType, body)
		switch {
		case err != nil:
			// Transport-level failure: breaker strike, rotate the failover
			// cursor, back off.
			l.brk.failure(time.Now())
			l.advance(len(c.addrs))
			lastErr = err
			c.transpRetry.Add(1)
			if serr := c.sleep(ctx, c.backoff(l, attempt)); serr != nil {
				c.gaveUp.Add(1)
				return nil, fmt.Errorf("netclient: %s: cancelled in backoff: %w", path, serr)
			}

		case status == http.StatusOK:
			l.brk.success()
			return data, nil

		case status == http.StatusTooManyRequests:
			// Shedding means the server is alive: breaker success.
			l.brk.success()
			c.shed429.Add(1)
			lastErr = fmt.Errorf("server shedding (429)")
			wait := retryAfter(hdr, c.cfg.MaxRetryWait)
			if serr := c.sleep(ctx, wait); serr != nil {
				c.gaveUp.Add(1)
				return nil, fmt.Errorf("netclient: %s: cancelled in shed wait: %w", path, serr)
			}

		case status == http.StatusRequestEntityTooLarge || status == http.StatusUnprocessableEntity:
			// The gateway understood the request and rejected it for what it
			// is: over the size cap, or validly framed but unservable.
			// Retrying an identical copy cannot succeed.
			c.gaveUp.Add(1)
			return nil, fmt.Errorf("netclient: %s: server returned %d: %s",
				path, status, strings.TrimSpace(string(data)))

		default:
			// Everything else retries. 5xx is server-side trouble and counts
			// as a breaker strike. Any other 4xx is what a request damaged in
			// flight looks like from the outside — a corrupted request line
			// can surface as 400, 404, or 405 — so it retries too, but the
			// server answered, so the breaker counts it a success. A
			// genuinely bad request just exhausts the retry budget.
			if status >= 500 {
				l.brk.failure(time.Now())
			} else {
				l.brk.success()
			}
			lastErr = fmt.Errorf("server returned %d: %s", status, strings.TrimSpace(string(data)))
			c.transpRetry.Add(1)
			if serr := c.sleep(ctx, c.backoff(l, attempt)); serr != nil {
				c.gaveUp.Add(1)
				return nil, fmt.Errorf("netclient: %s: cancelled in backoff: %w", path, serr)
			}
		}
	}
}

// attempt runs a single HTTP exchange with a per-attempt deadline derived
// from the bound context.
func (c *Client) attempt(ctx context.Context, l *lane, path, contentType string, body []byte) ([]byte, int, http.Header, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost,
		l.laneURL(c.addrs, path), bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, fmt.Errorf("netclient: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", contentType)
	// End-to-end integrity: the gateway rejects a body whose checksum does
	// not match with a retryable 400, so a frame corrupted in flight is
	// retried instead of being served as a silently different sample.
	req.Header.Set(netserve.BodyChecksumHeader, strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 16))
	resp, err := l.hc.Do(req)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("netclient: %s: %w", path, err)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
	resp.Body.Close()
	if err != nil {
		return nil, 0, nil, fmt.Errorf("netclient: %s: reading response: %w", path, err)
	}
	return data, resp.StatusCode, resp.Header, nil
}

// retryAfter extracts the back-off hint — the millisecond header when
// present, the standard whole-second header otherwise — hardened against
// hostile values: negative, non-numeric, and overflow-inducing inputs all
// clamp into [0, max], with 1ms as the floor for a parseable zero/absent
// hint. The clamp happens here (not at the call site) because an absurd
// X-Retry-After-Ms can overflow time.Duration multiplication into a
// negative value that would sail under any downstream cap.
func retryAfter(h http.Header, max time.Duration) time.Duration {
	if h == nil {
		return clampWait(time.Millisecond, max)
	}
	if ms := h.Get("X-Retry-After-Ms"); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			if v > int64(max/time.Millisecond) {
				return max
			}
			return clampWait(time.Duration(v)*time.Millisecond, max)
		}
	}
	if s := h.Get("Retry-After"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			if v > int(max/time.Second)+1 {
				return max
			}
			return clampWait(time.Duration(v)*time.Second, max)
		}
	}
	return clampWait(time.Millisecond, max)
}

func clampWait(d, max time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	if d > max {
		return max
	}
	return d
}
