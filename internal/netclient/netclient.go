// Package netclient drives a remote netserve gateway over TCP. A Client
// implements the same serving interfaces the in-process stack does —
// Serve/Stats, plus the sharded and batched driver surfaces — so the
// concurrent load driver (and with it the public liveupdate.Drive, batching
// included) works unchanged against a fleet in another process.
//
// Client-side shards are lanes: the client owns Conns independent HTTP
// connections, ShardOf hashes a sample's sparse ids to a lane, and the
// driver's per-shard FIFO queues become per-connection pipelines. Server-side
// routing still happens on the server — a lane is a transport, not a
// replica — so lane count tunes client parallelism without changing where
// requests land.
//
// Shed handling: a 429 from the gateway is not an error but back-pressure.
// The client sleeps out the server's Retry-After hint (millisecond-granular
// via X-Retry-After-Ms, capped at MaxRetryWait) and retries, up to Retries
// attempts, counting every shed it absorbed in Shed429.
package netclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/netserve"
	"liveupdate/internal/trace"
)

// Config configures Dial.
type Config struct {
	// Conns is the number of client lanes (independent HTTP connections and
	// driver shards). 0 defaults to 1.
	Conns int

	// Timeout bounds each HTTP attempt. 0 defaults to 30s.
	Timeout time.Duration

	// Retries is the number of times one request retries after a 429 before
	// giving up. 0 defaults to 64; negative is invalid.
	Retries int

	// MaxRetryWait caps how long a single Retry-After back-off sleeps.
	// 0 defaults to 250ms.
	MaxRetryWait time.Duration
}

func (c Config) withDefaults() (Config, error) {
	switch {
	case c.Conns < 0:
		return c, fmt.Errorf("netclient: Conns must be non-negative, got %d", c.Conns)
	case c.Timeout < 0:
		return c, fmt.Errorf("netclient: Timeout must be non-negative, got %v", c.Timeout)
	case c.Retries < 0:
		return c, fmt.Errorf("netclient: Retries must be non-negative, got %d", c.Retries)
	case c.MaxRetryWait < 0:
		return c, fmt.Errorf("netclient: MaxRetryWait must be non-negative, got %v", c.MaxRetryWait)
	}
	if c.Conns == 0 {
		c.Conns = 1
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 64
	}
	if c.MaxRetryWait == 0 {
		c.MaxRetryWait = 250 * time.Millisecond
	}
	return c, nil
}

// Client is a remote Server. Use one lane (shard) from one goroutine at a
// time — exactly the discipline the load driver's lane ownership provides;
// Stats and Serve are safe for concurrent use.
type Client struct {
	base  string // "http://host:port"
	cfg   Config
	info  netserve.Info
	lanes []*http.Client

	shed429   atomic.Uint64         // 429 responses absorbed (then retried)
	retryWait atomic.Int64          // cumulative back-off, nanoseconds
	statsErr  atomic.Pointer[error] // most recent Stats() transport failure
}

// Dial connects to a netserve gateway, performs the /info handshake, and
// returns a Client with cfg.Conns lanes.
func Dial(addr string, cfg Config) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	c := &Client{base: base, cfg: cfg}
	for i := 0; i < cfg.Conns; i++ {
		// One Transport per lane: lanes must not share pooled connections,
		// or slow requests on one lane would head-of-line block another.
		c.lanes = append(c.lanes, &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        2,
				MaxIdleConnsPerHost: 2,
				IdleConnTimeout:     90 * time.Second,
			},
		})
	}
	resp, err := c.lanes[0].Get(base + "/info")
	if err != nil {
		return nil, fmt.Errorf("netclient: handshake: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("netclient: handshake: server returned %s", resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&c.info); err != nil {
		return nil, fmt.Errorf("netclient: handshake: decoding /info: %w", err)
	}
	if c.info.Protocol != 1 {
		return nil, fmt.Errorf("netclient: server speaks wire protocol %d, client speaks 1", c.info.Protocol)
	}
	return c, nil
}

// Info returns the server's handshake payload (profile name, server-side
// replica count, batch hint).
func (c *Client) Info() netserve.Info { return c.info }

// Shed429 returns how many 429 shed responses this client absorbed and
// retried — the client-side mirror of the server's shed counters.
func (c *Client) Shed429() uint64 { return c.shed429.Load() }

// RetryWait returns the cumulative time spent sleeping out Retry-After
// back-off hints.
func (c *Client) RetryWait() time.Duration { return time.Duration(c.retryWait.Load()) }

// Close releases idle connections on every lane.
func (c *Client) Close() {
	for _, l := range c.lanes {
		l.CloseIdleConnections()
	}
}

// NumShards returns the client lane count: the driver treats each lane as an
// independently drivable shard.
func (c *Client) NumShards() int { return len(c.lanes) }

// ShardOf hashes a sample's sparse ids to a lane — deterministic for a fixed
// lane count, so the sequencer's routing never depends on timing. Samples
// with the same sparse signature ride the same connection, which keeps the
// driver's batch coalescing effective over the wire.
func (c *Client) ShardOf(s trace.Sample) int {
	h := fnv.New64a()
	var buf [4]byte
	for _, ids := range s.Sparse {
		for _, id := range ids {
			buf[0] = byte(id)
			buf[1] = byte(id >> 8)
			buf[2] = byte(id >> 16)
			buf[3] = byte(id >> 24)
			h.Write(buf[:])
		}
	}
	return int(h.Sum64() % uint64(len(c.lanes)))
}

// Serve scores one sample through the JSON endpoint on its hashed lane.
func (c *Client) Serve(s trace.Sample) (core.Response, error) {
	return c.ServeShard(c.ShardOf(s), s)
}

// ServeShard scores one sample on a specific lane via POST /serve (JSON).
func (c *Client) ServeShard(shard int, s trace.Sample) (core.Response, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return core.Response{}, fmt.Errorf("netclient: encoding sample: %w", err)
	}
	data, err := c.post(shard, "/serve", "application/json", body)
	if err != nil {
		return core.Response{}, err
	}
	var resp core.Response
	if err := json.Unmarshal(data, &resp); err != nil {
		return core.Response{}, fmt.Errorf("netclient: decoding response: %w", err)
	}
	return resp, nil
}

// ServeShardBatch scores a coalesced run of samples on one lane via the
// binary POST /serve.bin fast path. resps must have the same length as
// samples and is filled in order.
func (c *Client) ServeShardBatch(shard int, samples []trace.Sample, resps []core.Response) error {
	if len(resps) != len(samples) {
		return fmt.Errorf("netclient: ServeShardBatch got %d response slots for %d samples", len(resps), len(samples))
	}
	if len(samples) == 0 {
		return nil
	}
	data, err := c.post(shard, "/serve.bin", "application/octet-stream",
		netserve.AppendBatch(make([]byte, 0, 64*len(samples)), samples))
	if err != nil {
		return err
	}
	decoded, err := netserve.DecodeResponses(data)
	if err != nil {
		return err
	}
	if len(decoded) != len(samples) {
		return fmt.Errorf("netclient: server returned %d responses for %d samples", len(decoded), len(samples))
	}
	copy(resps, decoded)
	return nil
}

// Stats fetches the server's statistics snapshot (wire admission ledger
// included). The Server interface has no error return, so a transport
// failure here yields a zero snapshot; LastStatsErr reports it.
func (c *Client) Stats() core.Stats {
	st, err := c.FetchStats()
	if err != nil {
		c.statsErr.Store(&err)
		return core.Stats{}
	}
	c.statsErr.Store(nil)
	return st
}

// FetchStats is Stats with the error: a GET /stats round trip.
func (c *Client) FetchStats() (core.Stats, error) {
	resp, err := c.lanes[0].Get(c.base + "/stats")
	if err != nil {
		return core.Stats{}, fmt.Errorf("netclient: fetching stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return core.Stats{}, fmt.Errorf("netclient: /stats returned %s", resp.Status)
	}
	var st core.Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<24)).Decode(&st); err != nil {
		return core.Stats{}, fmt.Errorf("netclient: decoding stats: %w", err)
	}
	return netserve.RestoreStats(st), nil
}

// LastStatsErr returns the error of the most recent failed Stats() call, or
// nil if none failed since the last success.
func (c *Client) LastStatsErr() error {
	if p := c.statsErr.Load(); p != nil {
		return *p
	}
	return nil
}

// post runs one request on a lane, absorbing 429 shed responses with
// Retry-After back-off up to the retry budget. Non-2xx other than 429 is an
// error carrying the server's JSON error body.
func (c *Client) post(shard int, path, contentType string, body []byte) ([]byte, error) {
	if shard < 0 || shard >= len(c.lanes) {
		return nil, fmt.Errorf("netclient: lane %d of %d", shard, len(c.lanes))
	}
	lane := c.lanes[shard]
	url := c.base + path
	for attempt := 0; ; attempt++ {
		resp, err := lane.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("netclient: %s: %w", path, err)
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("netclient: %s: reading response: %w", path, err)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return data, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			c.shed429.Add(1)
			if attempt >= c.cfg.Retries {
				return nil, fmt.Errorf("netclient: %s: still shed after %d retries (server overloaded)", path, attempt)
			}
			wait := retryAfter(resp.Header)
			if wait > c.cfg.MaxRetryWait {
				wait = c.cfg.MaxRetryWait
			}
			c.retryWait.Add(int64(wait))
			time.Sleep(wait)
		default:
			return nil, fmt.Errorf("netclient: %s: server returned %s: %s",
				path, resp.Status, strings.TrimSpace(string(data)))
		}
	}
}

// retryAfter extracts the back-off hint: the millisecond header when
// present, the standard whole-second header otherwise, 1ms as a floor.
func retryAfter(h http.Header) time.Duration {
	if ms := h.Get("X-Retry-After-Ms"); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	if s := h.Get("Retry-After"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return time.Duration(v) * time.Second
		}
	}
	return time.Millisecond
}
