package netclient

import (
	"context"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"liveupdate/internal/cluster"
	"liveupdate/internal/core"
	"liveupdate/internal/driver"
	"liveupdate/internal/netserve"
	"liveupdate/internal/trace"
)

func smallProfile(t *testing.T) trace.Profile {
	t.Helper()
	p, err := trace.ProfileByName("criteo")
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	p.NumTables = 4
	p.TableSize = 500
	p.NumDense = 8
	p.MultiHot = []int{1, 1, 1, 2}
	return p
}

// startGateway stands up a real System behind a loopback netserve gateway and
// returns the dial address.
func startGateway(t *testing.T, cfg netserve.Config) (string, *netserve.Gateway) {
	t.Helper()
	sys, err := core.New(core.DefaultOptions(smallProfile(t), 42))
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	g, err := netserve.New(sys, ln, cfg)
	if err != nil {
		ln.Close()
		t.Fatalf("netserve.New: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return ln.Addr().String(), g
}

func TestDialHandshake(t *testing.T) {
	addr, _ := startGateway(t, netserve.Config{})
	c, err := Dial(addr, Config{Conns: 3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if c.Info().Protocol != 1 {
		t.Errorf("Protocol = %d, want 1", c.Info().Protocol)
	}
	if c.Info().Profile != "criteo" {
		t.Errorf("Profile = %q, want criteo", c.Info().Profile)
	}
	if c.NumShards() != 3 {
		t.Errorf("NumShards = %d, want the 3 configured lanes", c.NumShards())
	}
}

func TestDialRejectsBadConfigAndDeadServer(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Config{Conns: -1}); err == nil {
		t.Error("Dial accepted negative Conns")
	}
	if _, err := Dial("127.0.0.1:1", Config{Timeout: 200 * time.Millisecond}); err == nil {
		t.Error("Dial succeeded against a dead address")
	}
}

func TestServeOverTheWireMatchesInProcess(t *testing.T) {
	addr, g := startGateway(t, netserve.Config{})
	c, err := Dial(addr, Config{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	gen, err := trace.NewGenerator(smallProfile(t), 7)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	for i := 0; i < 10; i++ {
		s := gen.Next()
		remote, err := c.Serve(s)
		if err != nil {
			t.Fatalf("remote Serve %d: %v", i, err)
		}
		if remote.Prob < 0 || remote.Prob > 1 {
			t.Fatalf("remote Serve %d: prob %v outside [0,1]", i, remote.Prob)
		}
		if remote.Latency <= 0 {
			t.Fatalf("remote Serve %d: non-positive latency %v", i, remote.Latency)
		}
	}
	if st := g.Stats(); st.Served != 10 {
		t.Fatalf("server served %d, want 10", st.Served)
	}
}

func TestServeShardBatchRoundTrip(t *testing.T) {
	addr, _ := startGateway(t, netserve.Config{})
	c, err := Dial(addr, Config{Conns: 2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	gen, _ := trace.NewGenerator(smallProfile(t), 9)
	samples := make([]trace.Sample, 6)
	for i := range samples {
		samples[i] = gen.Next()
	}
	resps := make([]core.Response, len(samples))
	if err := c.ServeShardBatch(1, samples, resps); err != nil {
		t.Fatalf("ServeShardBatch: %v", err)
	}
	for i, r := range resps {
		if r.Prob <= 0 && r.Latency <= 0 {
			t.Fatalf("response %d empty: %+v", i, r)
		}
	}
	if err := c.ServeShardBatch(0, samples, make([]core.Response, 2)); err == nil {
		t.Error("ServeShardBatch accepted mismatched response slots")
	}
	if err := c.ServeShardBatch(0, nil, nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
}

func TestStatsRoundTripRestoresNaN(t *testing.T) {
	// A fresh cluster reports NaN quantiles; a remote Stats() must carry the
	// sentinel through JSON and restore it client-side.
	opts := core.DefaultOptions(smallProfile(t), 11)
	r, err := cluster.NewRouter(cluster.Hash)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	cl, err := cluster.New(cluster.Config{Base: opts, Replicas: 2, Router: r, SyncEvery: time.Second})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	g, err := netserve.New(cl, ln, netserve.Config{})
	if err != nil {
		t.Fatalf("netserve.New: %v", err)
	}
	defer g.Close()

	c, err := Dial(ln.Addr().String(), Config{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	st, err := c.FetchStats()
	if err != nil {
		t.Fatalf("FetchStats: %v", err)
	}
	if !math.IsNaN(st.P50) || !math.IsNaN(st.P99) {
		t.Fatalf("idle cluster quantiles %v/%v, want the NaN sentinel restored", st.P50, st.P99)
	}
	if len(st.Wire) == 0 {
		t.Fatal("remote stats missing the wire ledger")
	}
	if c.LastStatsErr() != nil {
		t.Fatalf("LastStatsErr = %v after a successful fetch", c.LastStatsErr())
	}
}

// TestDriveOverTheWire is the acceptance check: the concurrent load driver,
// batching enabled, drives a remote fleet through the client exactly as it
// would an in-process server.
func TestDriveOverTheWire(t *testing.T) {
	addr, g := startGateway(t, netserve.Config{})
	c, err := Dial(addr, Config{Conns: 4})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	gen, err := trace.NewGenerator(smallProfile(t), 21)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	const requests = 400
	rep, err := driver.Drive(context.Background(), c, gen.Next, driver.Config{
		Requests:  requests,
		Workers:   4,
		Seed:      21,
		BatchSize: 8,
	})
	if err != nil {
		t.Fatalf("Drive over the wire: %v", err)
	}
	if rep.Served != requests {
		t.Fatalf("Served = %d, want %d", rep.Served, requests)
	}
	if rep.Shards != 4 {
		t.Fatalf("driver saw %d shards, want the client's 4 lanes", rep.Shards)
	}
	if rep.Batches >= rep.Served {
		t.Fatalf("no coalescing happened: %d batches for %d requests", rep.Batches, rep.Served)
	}
	if st := g.Stats(); st.Served != requests {
		t.Fatalf("server served %d, want %d", st.Served, requests)
	}
	// Ample capacity: a clean drive should shed nothing.
	if c.Shed429() != 0 {
		t.Fatalf("client absorbed %d sheds with ample capacity", c.Shed429())
	}
}

// slowServer holds each request for a fixed wall delay, guaranteeing that a
// wide closed-loop client builds real concurrency against the gate — the
// actual serving stack is too fast for 12 lanes to ever overlap 3-deep.
type slowServer struct {
	delay  time.Duration
	served atomic.Uint64
}

func (s *slowServer) Serve(trace.Sample) (core.Response, error) {
	time.Sleep(s.delay)
	s.served.Add(1)
	return core.Response{Prob: 0.5, Latency: 0.001}, nil
}

func (s *slowServer) Stats() core.Stats {
	return core.Stats{Served: s.served.Load()}
}

// TestClientRetriesThrough429 drives a tiny-capacity gateway with far more
// client lanes than admission slots: the server must shed, and the client
// must absorb every 429 and still complete the drive.
func TestClientRetriesThrough429(t *testing.T) {
	inner := &slowServer{delay: 2 * time.Millisecond}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	g, err := netserve.New(inner, ln, netserve.Config{MaxInflight: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("netserve.New: %v", err)
	}
	defer g.Close()
	c, err := Dial(ln.Addr().String(), Config{Conns: 12, MaxRetryWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	gen, _ := trace.NewGenerator(smallProfile(t), 33)
	const requests = 200
	rep, err := driver.Drive(context.Background(), c, gen.Next, driver.Config{
		Requests: requests,
		Workers:  12,
		Seed:     33,
	})
	if err != nil {
		t.Fatalf("Drive through overload: %v", err)
	}
	if rep.Served != requests {
		t.Fatalf("Served = %d, want %d despite shedding", rep.Served, requests)
	}
	if c.Shed429() == 0 {
		t.Fatal("12 lanes against 2 slots shed nothing — admission gate inert?")
	}
	var shed uint64
	for _, ep := range g.WireStats() {
		shed += ep.Shed
	}
	if shed != c.Shed429() {
		t.Fatalf("server ledger says %d shed, client absorbed %d", shed, c.Shed429())
	}
	if c.RetryWait() <= 0 {
		t.Fatal("client retried without backing off")
	}
}

func TestShardOfIsDeterministic(t *testing.T) {
	addr, _ := startGateway(t, netserve.Config{})
	c, err := Dial(addr, Config{Conns: 4})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	s := trace.Sample{Sparse: [][]int32{{1, 2}, {3}}}
	want := c.ShardOf(s)
	for i := 0; i < 10; i++ {
		if got := c.ShardOf(s); got != want {
			t.Fatalf("ShardOf flapped: %d then %d", want, got)
		}
	}
	if want < 0 || want >= c.NumShards() {
		t.Fatalf("ShardOf = %d outside [0,%d)", want, c.NumShards())
	}
}
