package netclient

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/driver"
	"liveupdate/internal/faultnet"
	"liveupdate/internal/netserve"
	"liveupdate/internal/obs"
	"liveupdate/internal/trace"
)

// TestRetryAfterHostileHeaders is the satellite table test: hostile
// Retry-After values must clamp into [0, max] instead of overflowing or
// poisoning the back-off.
func TestRetryAfterHostileHeaders(t *testing.T) {
	const max = 250 * time.Millisecond
	cases := []struct {
		name string
		ms   string // X-Retry-After-Ms
		sec  string // Retry-After
		want time.Duration
	}{
		{"absent", "", "", time.Millisecond},
		{"normal ms", "40", "", 40 * time.Millisecond},
		{"normal seconds", "", "1", max}, // 1s > max → clamp
		{"ms preferred over seconds", "40", "100", 40 * time.Millisecond},
		{"zero ms falls through to floor", "0", "", time.Millisecond},
		{"negative ms", "-500", "", time.Millisecond},
		{"non-numeric ms", "soon", "", time.Millisecond},
		{"non-numeric seconds", "", "Fri, 31 Dec 1999 23:59:59 GMT", time.Millisecond},
		{"absurd ms", "999999999999999999", "", max},
		// Would overflow time.Duration multiplication into a negative value
		// that sails under any downstream cap — the historical bug.
		{"overflow ms", "9223372036854775807", "", max},
		{"overflow seconds", "", "9223372036854775807", max},
		{"negative seconds", "", "-5", time.Millisecond},
		{"empty ms with seconds", "", "100000", max},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.ms != "" {
			h.Set("X-Retry-After-Ms", tc.ms)
		}
		if tc.sec != "" {
			h.Set("Retry-After", tc.sec)
		}
		got := retryAfter(h, max)
		if got != tc.want {
			t.Errorf("%s: retryAfter = %v, want %v", tc.name, got, tc.want)
		}
		if got < 0 || got > max {
			t.Errorf("%s: retryAfter = %v escaped [0, %v]", tc.name, got, max)
		}
	}
	if got := retryAfter(nil, max); got != time.Millisecond {
		t.Errorf("nil header: retryAfter = %v, want 1ms floor", got)
	}
}

// shedForever is a gateway-shaped handler that 429s every serve request with
// an arbitrarily long Retry-After hint.
func shedForever(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"protocol":1,"profile":"criteo","replicas":1,"batchHint":8}`))
	})
	mux.HandleFunc("/serve", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Retry-After-Ms", "60000")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestShedWaitHonorsContextCancellation is the satellite regression test for
// the bare time.Sleep at the old netclient.go:298: a cancelled bound context
// must interrupt the Retry-After sleep immediately instead of hanging up to
// MaxRetryWait per in-flight retry.
func TestShedWaitHonorsContextCancellation(t *testing.T) {
	srv := shedForever(t)
	c, err := Dial(srv.Listener.Addr().String(), Config{
		Retries:      1000,
		MaxRetryWait: 10 * time.Second, // a bare sleep would hang here
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c.BindContext(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := c.Serve(trace.Sample{Sparse: [][]int32{{1}}})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt reach the shed wait
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve succeeded against a shed-forever server")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve error = %v, want context.Canceled in the chain", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Serve still hanging after 2s — retry sleep ignores context")
	}
	if c.GaveUp() == 0 {
		t.Error("cancelled request not counted in GaveUp")
	}
}

// TestTransportErrorsRetryWithBackoff kills the gateway mid-drive and brings
// it back: the client must ride out the outage on exponential backoff.
func TestTransportErrorsRetryWithBackoff(t *testing.T) {
	var failures atomic.Int64
	failures.Store(3) // fail the first 3 serve attempts at the TCP level
	mux := http.NewServeMux()
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"protocol":1,"profile":"criteo","replicas":1,"batchHint":8}`))
	})
	mux.HandleFunc("/serve", func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("no hijacker")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // raw reset: the client sees a transport error
			return
		}
		w.Write([]byte(`{"prob":0.5,"latency":0.001}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := Dial(srv.Listener.Addr().String(), Config{
		BackoffBase:  time.Millisecond,
		MaxRetryWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	resp, err := c.Serve(trace.Sample{Sparse: [][]int32{{1}}})
	if err != nil {
		t.Fatalf("Serve through transport errors: %v", err)
	}
	if resp.Prob != 0.5 {
		t.Errorf("Prob = %v, want 0.5", resp.Prob)
	}
	if got := c.TransportRetries(); got != 3 {
		t.Errorf("TransportRetries = %d, want 3", got)
	}
	if c.RetryWait() <= 0 {
		t.Error("transport retries slept zero time — backoff inert")
	}
}

// TestCircuitBreakerOpensAndRecovers verifies the breaker state machine:
// K consecutive failures open it, the next attempt waits out the cooldown as
// a half-open probe, and a successful probe closes it.
func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"protocol":1,"profile":"criteo","replicas":1,"batchHint":8}`))
	})
	var attempts atomic.Int64
	mux.HandleFunc("/serve", func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		if down.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"prob":0.5,"latency":0.001}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tel := obs.New(obs.Config{})
	c, err := Dial(srv.Listener.Addr().String(), Config{
		Retries:          1000,
		BackoffBase:      time.Millisecond,
		MaxRetryWait:     5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Telemetry:        tel,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// Recover the server shortly after the breaker has had time to open.
	go func() {
		time.Sleep(120 * time.Millisecond)
		down.Store(false)
	}()
	start := time.Now()
	if _, err := c.Serve(trace.Sample{Sparse: [][]int32{{1}}}); err != nil {
		t.Fatalf("Serve through outage: %v", err)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Error("request completed before the outage ended — breaker test inert")
	}
	if c.BreakerOpenLanes() != 0 {
		t.Errorf("breaker still open after recovery: %d lanes", c.BreakerOpenLanes())
	}
	// With a 3-strike threshold and 50ms cooldowns inside a ~120ms outage,
	// the breaker must have throttled attempts well below the free-running
	// backoff rate (~5ms cap → dozens of attempts).
	if n := attempts.Load(); n > 12 {
		t.Errorf("server saw %d attempts through a 120ms outage — breaker never gated", n)
	}
	// The registered gauge reads 0 now; the retries counter must be live.
	found := map[string]float64{}
	for _, m := range tel.Registry().Snapshot() {
		found[m.Name] = m.Value
	}
	if found["liveupdate_client_retries_total"] == 0 {
		t.Error("liveupdate_client_retries_total not registered or zero after retries")
	}
	if v, ok := found["liveupdate_client_breaker_open"]; !ok || v != 0 {
		t.Errorf("liveupdate_client_breaker_open = %v (present=%v), want 0 after recovery", v, ok)
	}
}

// TestFailoverRotatesAddresses stands up a dead primary-shaped address plus a
// live gateway as failover: the client must rotate to the live address and
// complete.
func TestFailoverRotatesAddresses(t *testing.T) {
	live := shedlessGateway(t)
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close() // nothing listens here any more

	// Handshake runs against the live primary; serve traffic starts on the
	// dead failover address by rotating after an injected first failure —
	// simplest deterministic setup: primary live, failover dead, and verify
	// traffic still completes even when the lane rotates through the dead
	// address on a transient error.
	c, err := Dial(live, Config{
		Failover:     []string{deadAddr},
		Timeout:      500 * time.Millisecond,
		BackoffBase:  time.Millisecond,
		MaxRetryWait: 5 * time.Millisecond,
		Retries:      16,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	// Force the lane onto the dead address as if a transient error had
	// rotated it there; the next attempts must fail over back to the live
	// primary and succeed.
	c.lanes[0].advance(len(c.addrs))
	gen, err := trace.NewGenerator(smallProfile(t), 5)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	if _, err := c.Serve(gen.Next()); err != nil {
		t.Fatalf("Serve with dead failover in rotation: %v", err)
	}
	if c.TransportRetries() == 0 {
		t.Error("lane never touched the dead address — rotation inert")
	}
}

func shedlessGateway(t *testing.T) string {
	t.Helper()
	addr, _ := startGateway(t, netserve.Config{})
	return addr
}

// TestPerAttemptDeadline verifies a stalled server fails one attempt at
// Timeout rather than hanging the request forever: with a blackhole-style
// handler that never answers, attempts time out and the budget drains.
func TestPerAttemptDeadline(t *testing.T) {
	stall := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"protocol":1,"profile":"criteo","replicas":1,"batchHint":8}`))
	})
	mux.HandleFunc("/serve", func(w http.ResponseWriter, r *http.Request) { <-stall })
	srv := httptest.NewServer(mux)
	defer srv.Close()
	defer close(stall) // release stalled handlers before srv.Close waits on them

	c, err := Dial(srv.Listener.Addr().String(), Config{
		Timeout:      50 * time.Millisecond,
		Retries:      2,
		BackoffBase:  time.Millisecond,
		MaxRetryWait: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Serve(trace.Sample{Sparse: [][]int32{{1}}})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Serve succeeded against a stalled server")
	}
	// 3 attempts × 50ms + small backoffs: well under a second.
	if elapsed > 2*time.Second {
		t.Fatalf("gave up after %v — per-attempt deadline not applied", elapsed)
	}
	if c.GaveUp() != 1 {
		t.Errorf("GaveUp = %d, want 1", c.GaveUp())
	}
}

// TestDriveSurvivesListenerFaults drives a real gateway whose listener is
// wrapped in a reset-heavy fault plan: every request must still complete
// (the ledger reconciles with zero give-ups), with the virtual-time stats
// identical to what the same drive produces fault-free.
func TestDriveSurvivesListenerFaults(t *testing.T) {
	plan := faultnet.MustParsePlan("reset(p=0.05);latency(p=0.1,min=0s,max=2ms)")
	plan.Seed = 7
	// Fault-free baseline first.
	base := driveOnce(t, faultnet.Plan{})
	faulted := driveOnce(t, plan)
	if base != faulted {
		t.Fatalf("virtual stats diverged under faults:\nfault-free: %+v\nfaulted:    %+v", base, faulted)
	}
}

type driveStats struct {
	Served     uint64
	P50, P99   float64
	Mean       float64
	TrainSteps uint64
}

func driveOnce(t *testing.T, plan faultnet.Plan) driveStats {
	t.Helper()
	sys, err := core.New(core.DefaultOptions(smallProfile(t), 42))
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var lnAny net.Listener = ln
	if plan.Enabled() {
		lnAny = faultnet.WrapListener(ln, plan)
	}
	g, err := netserve.New(sys, lnAny, netserve.Config{})
	if err != nil {
		t.Fatalf("netserve.New: %v", err)
	}
	defer g.Close()
	c, err := Dial(ln.Addr().String(), Config{
		Timeout:      2 * time.Second,
		BackoffBase:  time.Millisecond,
		MaxRetryWait: 10 * time.Millisecond,
		Retries:      256,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	gen, err := trace.NewGenerator(smallProfile(t), 21)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	// One worker, one lane, singles: requests reach the server strictly in
	// trace order, so the faulted run replays the exact serve sequence of
	// the fault-free run — the condition for bit-identical virtual stats.
	if _, err := driver.Drive(context.Background(), c, gen.Next, driver.Config{
		Requests: 120,
		Workers:  1,
		Seed:     21,
	}); err != nil {
		t.Fatalf("Drive under plan %q: %v", plan.Name, err)
	}
	if c.GaveUp() != 0 {
		t.Fatalf("client gave up on requests despite a 256-attempt budget")
	}
	st, err := c.FetchStats()
	if err != nil {
		t.Fatalf("FetchStats: %v", err)
	}
	return driveStats{
		Served:     st.Served,
		P50:        st.P50,
		P99:        st.P99,
		Mean:       st.MeanLatency,
		TrainSteps: st.TrainSteps,
	}
}
