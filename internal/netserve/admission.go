package netserve

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"liveupdate/internal/obs"
)

// Admission control for the wire front end: a connection limiter on the
// listener plus a FIFO admission queue in front of the serving path. A wire
// request is either admitted immediately (an inflight slot is free), parked
// in the bounded queue until one frees, or shed with 429 + Retry-After — the
// queue never grows unboundedly and accepted requests are never reordered:
// waiters are released strictly first-in-first-out, and overflow always
// rejects the arriving (newest) request, never one already admitted.

// Config is the wire front end's admission policy.
type Config struct {
	// MaxConns bounds simultaneously accepted TCP connections; further
	// Accepts block in the kernel backlog until one closes. 0 defaults to
	// DefaultMaxConns; negative is invalid.
	MaxConns int

	// MaxInflight bounds wire requests being served concurrently. 0 defaults
	// to GOMAXPROCS (one serving request per processor); negative is invalid.
	MaxInflight int

	// QueueDepth bounds admitted requests waiting for an inflight slot. An
	// arrival that finds the queue full is shed with 429. 0 defaults to
	// DefaultQueueDepth; negative is invalid.
	QueueDepth int

	// SLABudget, when positive, sheds an arrival whose predicted queueing
	// delay — its queue position times the observed mean service time —
	// already exceeds the budget, even if the queue has room: a request that
	// cannot possibly meet its latency target is cheaper to reject at the
	// door than to serve late. 0 disables budget shedding.
	SLABudget time.Duration

	// DrainTimeout bounds the graceful drain on Close: the gateway stops
	// accepting, finishes in-flight requests for up to this long, then force
	// closes whatever remains. 0 defaults to DefaultDrainTimeout; negative
	// is invalid.
	DrainTimeout time.Duration

	// Telemetry attaches an observability surface to the gateway: the wire
	// admission ledger registers into its metrics registry, queue waits are
	// traced as spans, and the gateway exports GET /metrics, /debug/vars,
	// /trace (and, when Telemetry.Config().Pprof is set, /debug/pprof/).
	// Nil means a private registry-only Telemetry: the scrape endpoints
	// still answer, without stage tracing or pprof. The public API wires
	// this via liveupdate.WithTelemetry.
	Telemetry *obs.Telemetry
}

// Admission defaults.
const (
	DefaultMaxConns     = 256
	DefaultQueueDepth   = 64
	DefaultDrainTimeout = 5 * time.Second
)

// withDefaults resolves zero values and validates.
func (c Config) withDefaults() (Config, error) {
	switch {
	case c.MaxConns < 0:
		return c, fmt.Errorf("netserve: MaxConns must be non-negative, got %d", c.MaxConns)
	case c.MaxInflight < 0:
		return c, fmt.Errorf("netserve: MaxInflight must be non-negative, got %d", c.MaxInflight)
	case c.QueueDepth < 0:
		return c, fmt.Errorf("netserve: QueueDepth must be non-negative, got %d", c.QueueDepth)
	case c.SLABudget < 0:
		return c, fmt.Errorf("netserve: SLABudget must be non-negative, got %v", c.SLABudget)
	case c.DrainTimeout < 0:
		return c, fmt.Errorf("netserve: DrainTimeout must be non-negative, got %v", c.DrainTimeout)
	}
	if c.MaxConns == 0 {
		c.MaxConns = DefaultMaxConns
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	return c, nil
}

// shedReason says why an arrival was rejected.
type shedReason string

const (
	shedQueueFull shedReason = "queue-full"
	shedSLABudget shedReason = "sla-budget"
)

// gate is the admission queue. All serve endpoints share one gate: the
// bounded resource is the serving path, not any single URL.
type gate struct {
	mu          sync.Mutex
	maxInflight int
	queueDepth  int
	slaBudget   float64 // seconds; 0 = disabled

	inflight int
	waiters  []chan struct{} // FIFO; head is released first

	// ewmaServe is the exponentially weighted mean wall-clock service time
	// in seconds, fed by leave(). It drives the SLABudget predictor and the
	// Retry-After estimate.
	ewmaServe float64
}

func newGate(cfg Config) *gate {
	return &gate{
		maxInflight: cfg.MaxInflight,
		queueDepth:  cfg.QueueDepth,
		slaBudget:   cfg.SLABudget.Seconds(),
	}
}

// enter asks for an inflight slot. An empty reason means admitted — possibly
// after waiting in the FIFO queue; a non-empty reason means the request was
// shed and retry carries the suggested client back-off. onQueued/onDequeued,
// when non-nil, bracket a stay in the queue (onQueued runs under the gate
// lock); endpoints use them to maintain their queued gauge.
func (g *gate) enter(onQueued, onDequeued func()) (retry time.Duration, reason shedReason) {
	g.mu.Lock()
	if g.inflight < g.maxInflight {
		g.inflight++
		g.mu.Unlock()
		return 0, ""
	}
	position := len(g.waiters) + 1
	if len(g.waiters) >= g.queueDepth {
		retry = g.retryAfterLocked(position)
		g.mu.Unlock()
		return retry, shedQueueFull
	}
	if g.slaBudget > 0 && g.ewmaServe > 0 {
		if predicted := g.predictedWaitLocked(position); predicted > g.slaBudget {
			retry = g.retryAfterLocked(position)
			g.mu.Unlock()
			return retry, shedSLABudget
		}
	}
	ch := make(chan struct{})
	g.waiters = append(g.waiters, ch)
	if onQueued != nil {
		onQueued()
	}
	g.mu.Unlock()
	<-ch // leave() hands the slot over FIFO; inflight already accounted
	if onDequeued != nil {
		onDequeued()
	}
	return 0, ""
}

// leave releases a slot after a serve took elapsed wall time. If a waiter is
// parked, the slot transfers to the queue head (inflight count unchanged);
// otherwise the slot frees.
func (g *gate) leave(elapsed time.Duration) {
	g.mu.Lock()
	// EWMA with alpha 1/8: smooth enough to ride out one slow request,
	// fresh enough to track a load shift within tens of requests.
	s := elapsed.Seconds()
	if g.ewmaServe == 0 {
		g.ewmaServe = s
	} else {
		g.ewmaServe += (s - g.ewmaServe) / 8
	}
	if len(g.waiters) > 0 {
		head := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.mu.Unlock()
		close(head)
		return
	}
	g.inflight--
	g.mu.Unlock()
}

// predictedWaitLocked estimates the queueing delay of an arrival at the given
// queue position: position quanta of the mean service time, divided across
// the inflight lanes. Callers hold g.mu.
func (g *gate) predictedWaitLocked(position int) float64 {
	return float64(position) * g.ewmaServe / float64(g.maxInflight)
}

// retryAfterLocked suggests how long a shed client should back off: the time
// the current queue needs to drain, floored at one millisecond so a cold
// gate (no service history) still spreads retries out. Callers hold g.mu.
func (g *gate) retryAfterLocked(position int) time.Duration {
	d := time.Duration(g.predictedWaitLocked(position) * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// occupancy snapshots the live gauges.
func (g *gate) occupancy() (inflight, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, len(g.waiters)
}

// limitListener bounds simultaneously accepted connections with a semaphore,
// released when the accepted connection closes (once, even under double
// Close — net/http closes connections it hijacks or times out itself).
type limitListener struct {
	net.Listener
	sem chan struct{}
}

func newLimitListener(ln net.Listener, maxConns int) *limitListener {
	return &limitListener{Listener: ln, sem: make(chan struct{}, maxConns)}
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: c, release: func() { <-l.sem }}, nil
}

type limitConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
