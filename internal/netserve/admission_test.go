package netserve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	if cfg.MaxConns != DefaultMaxConns {
		t.Errorf("MaxConns = %d, want %d", cfg.MaxConns, DefaultMaxConns)
	}
	if cfg.MaxInflight <= 0 {
		t.Errorf("MaxInflight = %d, want > 0", cfg.MaxInflight)
	}
	if cfg.QueueDepth != DefaultQueueDepth {
		t.Errorf("QueueDepth = %d, want %d", cfg.QueueDepth, DefaultQueueDepth)
	}
	if cfg.SLABudget != 0 {
		t.Errorf("SLABudget = %v, want 0 (disabled)", cfg.SLABudget)
	}
}

func TestConfigRejectsNegatives(t *testing.T) {
	bad := []Config{
		{MaxConns: -1},
		{MaxInflight: -1},
		{QueueDepth: -1},
		{SLABudget: -time.Second},
	}
	for _, cfg := range bad {
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("withDefaults(%+v) accepted a negative field", cfg)
		}
	}
}

// waitQueued polls until the gate holds exactly n waiters.
func waitQueued(t *testing.T, g *gate, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, queued := g.occupancy(); queued == n {
			return
		}
		if time.Now().After(deadline) {
			_, queued := g.occupancy()
			t.Fatalf("timed out waiting for %d queued, have %d", n, queued)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGateFIFOOrder parks waiters one at a time behind a full gate and
// verifies they are admitted strictly in arrival order: accepted requests are
// never reordered.
func TestGateFIFOOrder(t *testing.T) {
	cfg, _ := Config{MaxInflight: 1, QueueDepth: 8}.withDefaults()
	g := newGate(cfg)

	if retry, reason := g.enter(nil, nil); reason != "" {
		t.Fatalf("first enter shed (%s, retry %v) on an empty gate", reason, retry)
	}

	const waiters = 8
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		// Sequence arrivals: each goroutine must be parked before the next
		// starts, so arrival order is known exactly.
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, reason := g.enter(nil, nil); reason != "" {
				t.Errorf("waiter %d shed (%s) with queue room", id, reason)
				return
			}
			order <- id
			g.leave(time.Millisecond)
		}(i)
		waitQueued(t, g, i+1)
	}

	g.leave(time.Millisecond) // release the initial slot; cascade begins
	wg.Wait()
	close(order)

	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("FIFO violated: admitted waiter %d before waiter %d", got, want)
		}
		want++
	}
	if want != waiters {
		t.Fatalf("only %d of %d waiters admitted", want, waiters)
	}
}

// TestGateShedsNewestOnOverflow fills the queue and verifies the overflowing
// arrival — and only it — is shed, while every already-queued request is
// still served in order.
func TestGateShedsNewestOnOverflow(t *testing.T) {
	cfg, _ := Config{MaxInflight: 1, QueueDepth: 3}.withDefaults()
	g := newGate(cfg)

	if _, reason := g.enter(nil, nil); reason != "" {
		t.Fatalf("initial enter shed: %s", reason)
	}
	order := make(chan int, cfg.QueueDepth)
	var wg sync.WaitGroup
	for i := 0; i < cfg.QueueDepth; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, reason := g.enter(nil, nil); reason != "" {
				t.Errorf("queued waiter %d shed: %s", id, reason)
				return
			}
			order <- id
			g.leave(time.Millisecond)
		}(i)
		waitQueued(t, g, i+1)
	}

	// The queue is full: the next arrival must be shed, with a positive
	// back-off hint, without disturbing the parked waiters.
	retry, reason := g.enter(nil, nil)
	if reason != shedQueueFull {
		t.Fatalf("overflow arrival: reason = %q, want %q", reason, shedQueueFull)
	}
	if retry <= 0 {
		t.Errorf("overflow arrival: retry = %v, want > 0", retry)
	}
	if _, queued := g.occupancy(); queued != cfg.QueueDepth {
		t.Errorf("shed disturbed the queue: %d waiters, want %d", queued, cfg.QueueDepth)
	}

	g.leave(time.Millisecond)
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("shed reordered survivors: admitted %d before %d", got, want)
		}
		want++
	}
}

// TestGateSLABudgetShedding seeds the service-time EWMA and verifies an
// arrival whose predicted wait blows the budget is shed even though the queue
// has room.
func TestGateSLABudgetShedding(t *testing.T) {
	cfg, _ := Config{MaxInflight: 1, QueueDepth: 64, SLABudget: time.Millisecond}.withDefaults()
	g := newGate(cfg)

	// Teach the gate that a request takes ~100ms.
	for i := 0; i < 32; i++ {
		if _, reason := g.enter(nil, nil); reason != "" {
			t.Fatalf("warm-up enter %d shed: %s", i, reason)
		}
		g.leave(100 * time.Millisecond)
	}

	// Occupy the single slot so the next arrival must queue — and its
	// predicted wait (~1 × 100ms) dwarfs the 1ms budget.
	if _, reason := g.enter(nil, nil); reason != "" {
		t.Fatalf("occupying enter shed: %s", reason)
	}
	retry, reason := g.enter(nil, nil)
	if reason != shedSLABudget {
		t.Fatalf("over-budget arrival: reason = %q, want %q", reason, shedSLABudget)
	}
	if retry < 10*time.Millisecond {
		t.Errorf("retry hint %v does not reflect the ~100ms service EWMA", retry)
	}
	g.leave(100 * time.Millisecond)
}

// TestGateQueueCallbacksBracketStay verifies onQueued/onDequeued fire exactly
// once per queued request and not at all for immediate admissions.
func TestGateQueueCallbacksBracketStay(t *testing.T) {
	cfg, _ := Config{MaxInflight: 1, QueueDepth: 4}.withDefaults()
	g := newGate(cfg)

	var mu sync.Mutex
	queued, dequeued := 0, 0
	onQ := func() { mu.Lock(); queued++; mu.Unlock() }
	onD := func() { mu.Lock(); dequeued++; mu.Unlock() }

	if _, reason := g.enter(onQ, onD); reason != "" {
		t.Fatalf("immediate enter shed: %s", reason)
	}
	if queued != 0 || dequeued != 0 {
		t.Fatalf("immediate admission touched queue callbacks: queued=%d dequeued=%d", queued, dequeued)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, reason := g.enter(onQ, onD); reason != "" {
			t.Errorf("parked enter shed: %s", reason)
			return
		}
		g.leave(time.Millisecond)
	}()
	waitQueued(t, g, 1)
	g.leave(time.Millisecond)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if queued != 1 || dequeued != 1 {
		t.Fatalf("queued stay: callbacks queued=%d dequeued=%d, want 1/1", queued, dequeued)
	}
}

func TestRetryAfterFloor(t *testing.T) {
	cfg, _ := Config{MaxInflight: 1, QueueDepth: 1}.withDefaults()
	g := newGate(cfg)
	// Cold gate: no EWMA yet, so the estimate is zero — the hint must still
	// be at least a millisecond to spread client retries out.
	g.mu.Lock()
	d := g.retryAfterLocked(1)
	g.mu.Unlock()
	if d < time.Millisecond {
		t.Fatalf("cold retry hint %v below 1ms floor", d)
	}
}

func TestGateConcurrentStress(t *testing.T) {
	cfg, _ := Config{MaxInflight: 4, QueueDepth: 16}.withDefaults()
	g := newGate(cfg)

	const clients = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, shed := 0, 0
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, reason := g.enter(nil, nil); reason != "" {
					mu.Lock()
					shed++
					mu.Unlock()
					continue
				}
				mu.Lock()
				admitted++
				mu.Unlock()
				g.leave(10 * time.Microsecond)
			}
		}()
	}
	wg.Wait()

	inflight, queued := g.occupancy()
	if inflight != 0 || queued != 0 {
		t.Fatalf("gate leaked: inflight=%d queued=%d after drain", inflight, queued)
	}
	if admitted+shed != clients*50 {
		t.Fatalf("accounting: admitted %d + shed %d != %d", admitted, shed, clients*50)
	}
	if admitted == 0 {
		t.Fatal("stress admitted nothing")
	}
}

func ExampleConfig() {
	cfg, _ := Config{MaxInflight: 2, QueueDepth: 4}.withDefaults()
	fmt.Println(cfg.MaxConns, cfg.MaxInflight, cfg.QueueDepth)
	// Output: 256 2 4
}
