package netserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/faultnet"
	"liveupdate/internal/trace"
)

func TestHealthzAndReadyz(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	base := "http://" + g.Addr().String()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %s, want 200 while serving", path, resp.Status)
		}
		var v struct{ Status string }
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("GET %s: body %q not JSON: %v", path, body, err)
		}
	}
	if g.Draining() {
		t.Error("fresh gateway reports draining")
	}
}

// TestGracefulDrainFinishesInflight is the drain acceptance test: requests
// that were accepted before Close must complete (accepted == completed),
// readiness must flip to 503 during the drain, and liveness must stay 200.
func TestGracefulDrainFinishesInflight(t *testing.T) {
	stub := &stubServer{delay: 150 * time.Millisecond}
	g := newTestGateway(t, stub, Config{MaxInflight: 8, DrainTimeout: 5 * time.Second})
	base := "http://" + g.Addr().String()

	// Launch in-flight requests and give them time to be admitted.
	const inflight = 4
	var wg sync.WaitGroup
	results := make([]int, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sample := trace.Sample{Time: float64(i + 1)}
			body, _ := json.Marshal(sample)
			resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(body))
			if err != nil {
				results[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // all four are now inside Serve

	// Phase one of the two-phase restart: readiness flips while the
	// listener still serves, so a balancer can stop routing here before
	// anything closes.
	g.BeginDrain()
	var codes [2]int
	for j, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s during BeginDrain: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes[j] = resp.StatusCode
	}

	if err := g.Close(); err != nil {
		t.Fatalf("graceful Close: %v", err)
	}
	wg.Wait()
	for i, code := range results {
		if code != http.StatusOK {
			t.Errorf("in-flight request %d finished with %d, want 200 through the drain", i, code)
		}
	}
	for _, ep := range g.WireStats() {
		if ep.Accepted != ep.Completed {
			t.Errorf("%s: accepted %d != completed %d — drain lost admitted requests",
				ep.Endpoint, ep.Accepted, ep.Completed)
		}
	}
	if total := g.WireStats()[0].Accepted + g.WireStats()[1].Accepted; total != inflight {
		t.Errorf("accepted %d requests, want %d", total, inflight)
	}
	if codes[0] != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200 (liveness holds)", codes[0])
	}
	if codes[1] != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", codes[1])
	}
	if !g.Draining() {
		t.Error("Draining() false after Close")
	}
}

// TestDrainTimeoutForcesClose: a serve that outlives DrainTimeout must not
// hang Close forever; Close reports the incomplete drain.
func TestDrainTimeoutForcesClose(t *testing.T) {
	stub := &stubServer{delay: 2 * time.Second}
	g := newTestGateway(t, stub, Config{DrainTimeout: 100 * time.Millisecond})
	base := "http://" + g.Addr().String()

	go func() {
		body, _ := json.Marshal(trace.Sample{Time: 1})
		resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	err := g.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v with a 100ms DrainTimeout", elapsed)
	}
	if err == nil {
		t.Error("Close reported a clean drain despite an over-deadline request")
	}
}

// TestConfigRejectsNegativeDrainTimeout keeps the validation convention.
func TestConfigRejectsNegativeDrainTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if _, err := New(&stubServer{}, ln, Config{DrainTimeout: -time.Second}); err == nil {
		t.Error("New accepted a negative DrainTimeout")
	}
}

// TestDecodeBatchTransportTruncation is the satellite decoder test: every
// strict prefix of a valid LUW1 frame — what a mid-stream connection reset
// leaves behind — must error cleanly, never panic or return partial samples.
func TestDecodeBatchTransportTruncation(t *testing.T) {
	full := AppendBatch(nil, sampleFixture())
	for n := 0; n < len(full); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeBatch panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, err := DecodeBatch(full[:n]); err == nil {
				t.Errorf("DecodeBatch accepted a %d-byte prefix of a %d-byte frame", n, len(full))
			}
		}()
	}
	if _, err := DecodeBatch(full); err != nil {
		t.Fatalf("full frame rejected: %v", err)
	}
}

// TestDecodeResponsesTransportTruncation: same contract on the response
// decoder, which the client runs against bytes a faulted wire delivered.
func TestDecodeResponsesTransportTruncation(t *testing.T) {
	full := AppendResponses(nil, []core.Response{
		{Prob: 0.25, Latency: 0.001, Replica: 1},
		{Prob: 0.75, Latency: 0.002, Replica: 2},
	})
	for n := 0; n < len(full); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("DecodeResponses panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, err := DecodeResponses(full[:n]); err == nil {
				t.Errorf("DecodeResponses accepted a %d-byte prefix of a %d-byte frame", n, len(full))
			}
		}()
	}
	if _, err := DecodeResponses(full); err != nil {
		t.Fatalf("full frame rejected: %v", err)
	}
}

// TestBinaryEndpointSurvivesTruncatedUploads drives /serve.bin through a
// fault-wrapped listener that truncates inbound frames: the gateway must
// answer every fully delivered request normally and never crash on the cut
// ones, with the admission ledger staying consistent (accepted==completed).
func TestBinaryEndpointSurvivesTruncatedUploads(t *testing.T) {
	stub := &stubServer{}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	plan := faultnet.MustParsePlan("truncate(p=0.2)")
	plan.Seed = 3
	g, err := New(stub, faultnet.WrapListener(inner, plan), Config{})
	if err != nil {
		t.Fatalf("netserve.New: %v", err)
	}
	defer g.Close()
	base := "http://" + inner.Addr().String()

	frame := AppendBatch(nil, sampleFixture())
	okCount, failCount := 0, 0
	for i := 0; i < 40; i++ {
		resp, err := http.Post(base+"/serve.bin", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			failCount++ // connection cut before the response: expected under truncation
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			failCount++
			continue
		}
		if _, err := DecodeResponses(data); err != nil {
			t.Fatalf("request %d: intact response failed to decode: %v", i, err)
		}
		okCount++
	}
	if okCount == 0 {
		t.Fatal("no request survived a p=0.2 truncation plan")
	}
	if failCount == 0 {
		t.Fatal("no request was cut — fault plan inert")
	}
	if g.Close() != nil {
		t.Fatal("drain after truncated uploads failed")
	}
	for _, ep := range g.WireStats() {
		if ep.Accepted != ep.Completed {
			t.Errorf("%s: accepted %d != completed %d after faulted run",
				ep.Endpoint, ep.Accepted, ep.Completed)
		}
	}
	if got := g.Stats().Wire; len(got) == 0 {
		t.Error("stats missing wire ledger")
	}
}
