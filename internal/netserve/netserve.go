// Package netserve is the optional network front end: it exposes any serving
// Server (a single System or a replica Cluster) over a real TCP listener as
// HTTP/1.1 — JSON for single requests, a length-prefixed binary batch fast
// path — with connection limits, a bounded FIFO admission queue, and
// SLA-budget-aware load shedding (429 + Retry-After when the queue or the
// latency budget is exhausted).
//
// The in-process virtual-time mode remains the deterministic test harness;
// the wire path is where wall-clock QPS numbers become honest. Virtual-time
// statistics are still computed server-side and keep their meaning, but
// request arrival order over concurrent connections is wall-clock real, so
// the worker-count invariance contract applies to in-process driving only.
package netserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/obs"
	"liveupdate/internal/trace"
)

// Server is the serving surface the gateway fronts; both *core.System and
// *cluster.Cluster implement it (structurally identical to the internal
// driver's Server interface).
type Server interface {
	Serve(trace.Sample) (core.Response, error)
	Stats() core.Stats
}

// batchServer is the amortized mixed-batch path (System.ServeBatch,
// Cluster.ServeBatch); the binary endpoint uses it when available.
type batchServer interface {
	ServeBatch([]trace.Sample, []core.Response) error
}

// epMetrics is one endpoint's admission ledger (lock-free counters + gauges).
// completed counts accepted requests whose serve finished — after a graceful
// drain, accepted == completed proves the drain shed zero admitted work.
type epMetrics struct {
	accepted  atomic.Uint64
	completed atomic.Uint64
	shed      atomic.Uint64
	inflight  atomic.Int64
	queued    atomic.Int64
}

// Gateway serves an inner Server over a listener. Construct with New; close
// with Close. A Gateway also implements Server itself — its Serve/Stats
// delegate in-process (bypassing admission control, which exists to protect
// the wire), with Stats folding the wire admission ledger into the snapshot.
type Gateway struct {
	inner Server
	batch batchServer // nil when inner has no batch path
	cfg   Config
	gate  *gate
	ln    net.Listener
	hs    *http.Server

	eps map[string]*epMetrics // keyed by endpoint path

	// tel is never nil (a private registry-only Telemetry is created when
	// Config.Telemetry is absent), so the observability endpoints always
	// answer; tracer is nil unless stage tracing was enabled.
	tel    *obs.Telemetry
	tracer *obs.Tracer

	draining  atomic.Bool // set at the top of Close; /readyz flips to 503
	closeOnce sync.Once
	closeErr  error
	done      chan struct{} // closed when the accept loop exits
}

// faultCounting is implemented by a faultnet-wrapped listener; the gateway
// publishes its tally as liveupdate_wire_faults_total (zero otherwise), so
// the metric exists on every gateway and scrape assertions never flake.
type faultCounting interface {
	FaultsTotal() uint64
}

// New starts a gateway serving inner on ln. The listener is consumed: the
// gateway owns it and closes it on Close. cfg zero values take the package
// defaults (see Config).
func New(inner Server, ln net.Listener, cfg Config) (*Gateway, error) {
	if inner == nil {
		return nil, fmt.Errorf("netserve: nil server")
	}
	if ln == nil {
		return nil, fmt.Errorf("netserve: nil listener")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		inner: inner,
		cfg:   cfg,
		gate:  newGate(cfg),
		ln:    ln,
		done:  make(chan struct{}),
		eps: map[string]*epMetrics{
			"/serve":     {},
			"/serve.bin": {},
		},
	}
	g.batch, _ = inner.(batchServer)
	g.tel = cfg.Telemetry
	if g.tel == nil {
		g.tel = obs.New(obs.Config{}) // registry only: scrape endpoints always answer
	}
	g.tracer = g.tel.Tracer()
	g.registerWireInstruments()

	// Observability endpoints never pass through g.admit: they must answer
	// while /serve sheds 429s — watching an overload is the point. Only the
	// serving endpoints consume admission tickets.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /serve", g.handleServe)
	mux.HandleFunc("POST /serve.bin", g.handleServeBin)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("GET /info", g.handleInfo)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /debug/vars", g.handleVars)
	mux.HandleFunc("GET /trace", g.handleTrace)
	if g.tel.Config().Pprof {
		// Opt-in: profiling endpoints are a debug surface. Mounted on the
		// gateway's own mux (not DefaultServeMux), admission-exempt like the
		// other observability handlers.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	g.hs = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		defer close(g.done)
		// ErrServerClosed is the normal shutdown path; anything else would
		// surface on Close.
		if err := g.hs.Serve(newLimitListener(ln, cfg.MaxConns)); !errors.Is(err, http.ErrServerClosed) {
			g.closeErr = err
		}
	}()
	return g, nil
}

// registerWireInstruments exposes the admission ledger through the metrics
// registry: per-endpoint accepted/shed counters plus gate occupancy gauges,
// all reading the same lock-free atomics (or the brief gate mutex) the
// ledger already keeps — a scrape never touches a serving lock.
func (g *Gateway) registerWireInstruments() {
	reg := g.tel.Registry()
	slugger := strings.NewReplacer("/", "", ".", "_")
	for path, m := range g.eps {
		slug := slugger.Replace(path) // "/serve" → "serve", "/serve.bin" → "serve_bin"
		reg.CounterFunc("liveupdate_wire_"+slug+"_accepted_total",
			"Wire requests admitted and served on "+path+".", m.accepted.Load)
		reg.CounterFunc("liveupdate_wire_"+slug+"_shed_total",
			"Wire requests shed with 429 on "+path+".", m.shed.Load)
		reg.CounterFunc("liveupdate_wire_"+slug+"_completed_total",
			"Accepted wire requests whose serve finished on "+path+".", m.completed.Load)
	}
	// Always registered: zero on an unfaulted listener, the injected-fault
	// tally when the listener is wrapped by internal/faultnet.
	reg.CounterFunc("liveupdate_wire_faults_total",
		"Network faults injected into this gateway's listener by the faultnet harness.",
		func() uint64 {
			if fc, ok := g.ln.(faultCounting); ok {
				return fc.FaultsTotal()
			}
			return 0
		})
	reg.GaugeFunc("liveupdate_wire_inflight",
		"Wire requests being served right now (all endpoints).",
		func() float64 { inflight, _ := g.gate.occupancy(); return float64(inflight) })
	reg.GaugeFunc("liveupdate_wire_queued",
		"Wire requests waiting in the admission queue.",
		func() float64 { _, queued := g.gate.occupancy(); return float64(queued) })
}

// Telemetry returns the gateway's observability surface (never nil; a
// registry-only Telemetry is created when none was configured).
func (g *Gateway) Telemetry() *obs.Telemetry { return g.tel }

// Addr returns the listener's address (useful with ":0" listeners).
func (g *Gateway) Addr() net.Addr { return g.ln.Addr() }

// BeginDrain flips readiness to 503 without touching the listener: existing
// and new requests still serve, but a readiness-aware balancer stops routing
// here. Call it ahead of Close to give the balancer time to react — the
// two-phase restart that sheds zero requests end to end.
func (g *Gateway) BeginDrain() { g.draining.Store(true) }

// Close drains the gateway gracefully: readiness flips to 503, the listener
// stops accepting, in-flight and queued requests get up to DrainTimeout to
// finish, and only then is anything force-closed — a restart behind a
// readiness-aware balancer sheds zero accepted requests. Idempotent.
func (g *Gateway) Close() error {
	g.closeOnce.Do(func() {
		g.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.DrainTimeout)
		defer cancel()
		err := g.hs.Shutdown(ctx)
		if err != nil {
			// Drain deadline expired with requests still in flight: force
			// close the stragglers, but report the incomplete drain.
			g.hs.Close()
			if g.closeErr == nil {
				g.closeErr = fmt.Errorf("netserve: drain timeout after %v: %w", g.cfg.DrainTimeout, err)
			}
		}
		<-g.done
	})
	return g.closeErr
}

// Draining reports whether Close has begun.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// handleHealthz is liveness: the process is up and answering. It stays 200
// through a drain — a draining gateway is alive, just not ready.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	if g.draining.Load() {
		status = "draining"
	}
	fmt.Fprintf(w, `{"status":%q}`+"\n", status)
}

// handleReadyz is readiness: 200 while accepting traffic, 503 once draining
// so balancers stop routing here before the listener actually closes.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if g.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ready"}`)
}

// Serve delegates to the inner server in-process. The admission gate is not
// consulted: it protects the wire from remote overload, while an in-process
// caller is already inside the trust and back-pressure domain.
func (g *Gateway) Serve(s trace.Sample) (core.Response, error) { return g.inner.Serve(s) }

// Stats snapshots the inner server and folds in the wire admission ledger.
func (g *Gateway) Stats() core.Stats {
	st := g.inner.Stats()
	st.Wire = g.WireStats()
	return st
}

// WireStats returns the per-endpoint admission ledger, sorted by endpoint.
func (g *Gateway) WireStats() []core.EndpointStats {
	out := make([]core.EndpointStats, 0, len(g.eps))
	for path, m := range g.eps {
		out = append(out, core.EndpointStats{
			Endpoint:  path,
			Accepted:  m.accepted.Load(),
			Completed: m.completed.Load(),
			Shed:      m.shed.Load(),
			Inflight:  int(m.inflight.Load()),
			Queued:    int(m.queued.Load()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// admit runs the admission gate for one wire request on an endpoint. It
// returns false after writing the 429 when the request is shed; on true the
// caller MUST call the returned release func when serving finishes.
func (g *Gateway) admit(w http.ResponseWriter, ep *epMetrics) (release func(), ok bool) {
	// The queue-wait span brackets only an actual stay in the queue: the
	// onQueued hook (run under the gate lock, cost: one atomic add and a
	// clock read) opens it, onDequeued closes it. Requests admitted straight
	// into an inflight slot record nothing.
	var waitT0 int64
	retry, reason := g.gate.enter(
		func() { ep.queued.Add(1); waitT0 = g.tracer.StageStart(obs.StageQueueWait) },
		func() { g.tracer.StageEnd(obs.StageQueueWait, waitT0); ep.queued.Add(-1) },
	)
	if reason != "" {
		ep.shed.Add(1)
		// Retry-After is whole seconds by spec (floored at 1); the
		// millisecond header carries the real estimate for clients that can
		// use it.
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(int64((retry+time.Millisecond-1)/time.Millisecond), 10))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"error":"overloaded","reason":%q}`+"\n", reason)
		return nil, false
	}
	ep.accepted.Add(1)
	ep.inflight.Add(1)
	start := time.Now()
	return func() {
		ep.inflight.Add(-1)
		g.gate.leave(time.Since(start))
	}, true
}

// handleServe is the JSON single-request endpoint.
func (g *Gateway) handleServe(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxJSONBody)
	if !ok {
		return
	}
	var sample trace.Sample
	if err := json.Unmarshal(body, &sample); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("netserve: bad sample JSON: %w", err))
		return
	}
	if err := ValidateSample(sample); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ep := g.eps["/serve"]
	release, ok := g.admit(w, ep)
	if !ok {
		return
	}
	resp, err := g.inner.Serve(sample)
	release()
	ep.completed.Add(1)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, resp)
}

// handleServeBin is the binary batch endpoint. One wire request carries a
// whole batch and rides one admission ticket: the queue bounds wire
// requests, and a remote lane's coalesced batch is one unit of work.
func (g *Gateway) handleServeBin(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r, maxBinaryBody)
	if !ok {
		return
	}
	samples, err := DecodeBatch(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ep := g.eps["/serve.bin"]
	release, ok := g.admit(w, ep)
	if !ok {
		return
	}
	resps := make([]core.Response, len(samples))
	if g.batch != nil {
		err = g.batch.ServeBatch(samples, resps)
	} else {
		for i := range samples {
			if resps[i], err = g.inner.Serve(samples[i]); err != nil {
				break
			}
		}
	}
	release()
	ep.completed.Add(1)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(AppendResponses(make([]byte, 0, 4+4+20*len(resps)), resps)); err != nil {
		// Client went away mid-response; nothing useful left to do.
		return
	}
}

// handleStats returns the merged Stats snapshot (wire ledger included), with
// NaN quantiles mapped to the wire sentinel.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, SanitizeStats(g.Stats()))
}

// handleMetrics renders the metrics registry in Prometheus text format.
// Strictly side-band: it reads registry instruments and lock-free gauges —
// never the inner server's Stats(), whose fleet form drains the async sync
// pipeline and would perturb a deterministic run mid-flight.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.tel.WriteMetrics(w)
}

// handleVars is the expvar-style JSON view of the same registry.
func (g *Gateway) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = g.tel.WriteVars(w)
}

// handleTrace dumps the sampled span ring as Chrome trace-event JSON,
// loadable in Perfetto. Empty (but valid) when stage tracing is off.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="liveupdate-trace.json"`)
	_ = g.tel.WriteTrace(w)
}

// handleInfo returns the handshake payload.
func (g *Gateway) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := Info{Protocol: protocolVersion, Replicas: 1}
	if p, ok := g.inner.(interface{ Profile() trace.Profile }); ok {
		info.Profile = strings.ToLower(p.Profile().Name)
	}
	if s, ok := g.inner.(interface{ NumShards() int }); ok {
		info.Replicas = s.NumShards()
	}
	if b, ok := g.inner.(interface{ DefaultBatchSize() int }); ok {
		info.BatchHint = b.DefaultBatchSize()
	}
	writeJSON(w, info)
}

// BodyChecksumHeader carries the client's CRC-32 (IEEE, lowercase hex) of
// the request body. When present, the gateway verifies it before decoding:
// a mismatch — a frame damaged between the client and the serving path — is
// rejected with 400 so the client retries with an intact copy, instead of a
// bit-flipped body being served as a silently different sample.
const BodyChecksumHeader = "X-Liveupdate-Crc32"

// readBody reads a request body bounded at cap bytes, translating the
// over-limit error to 413 before any decoding work happens, and verifies
// the optional end-to-end checksum.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("netserve: request body exceeds %d bytes", limit))
		} else {
			httpError(w, http.StatusBadRequest, fmt.Errorf("netserve: reading body: %w", err))
		}
		return nil, false
	}
	if want := r.Header.Get(BodyChecksumHeader); want != "" {
		sum, err := strconv.ParseUint(want, 16, 32)
		if err != nil || uint32(sum) != crc32.ChecksumIEEE(body) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("netserve: body integrity check failed (%s mismatch)", BodyChecksumHeader))
			return nil, false
		}
	}
	return body, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // a client that vanished mid-write is not our error
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, `{"error":%q}`+"\n", err.Error())
}
