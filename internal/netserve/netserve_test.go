package netserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/obs"
	"liveupdate/internal/trace"
)

// stubServer is a controllable inner Server: Serve echoes the sample's Time
// as Prob, optionally sleeping to hold admission slots open.
type stubServer struct {
	delay   time.Duration
	served  atomic.Uint64
	batches atomic.Uint64
	failOn  float64 // sample Time that triggers an error, 0 = never
}

func (s *stubServer) Serve(sm trace.Sample) (core.Response, error) {
	if s.failOn != 0 && sm.Time == s.failOn {
		return core.Response{}, fmt.Errorf("stub: poisoned sample")
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.served.Add(1)
	return core.Response{Prob: sm.Time, Latency: 0.001, Replica: 7}, nil
}

func (s *stubServer) ServeBatch(samples []trace.Sample, resps []core.Response) error {
	s.batches.Add(1)
	for i := range samples {
		var err error
		if resps[i], err = s.Serve(samples[i]); err != nil {
			return err
		}
	}
	return nil
}

func (s *stubServer) Stats() core.Stats {
	return core.Stats{Served: s.served.Load(), P50: math.NaN(), P99: math.NaN()}
}

func newTestGateway(t *testing.T, inner Server, cfg Config) *Gateway {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	g, err := New(inner, ln, cfg)
	if err != nil {
		ln.Close()
		t.Fatalf("netserve.New: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestNewValidatesArguments(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if _, err := New(nil, ln, Config{}); err == nil {
		t.Error("New accepted a nil server")
	}
	if _, err := New(&stubServer{}, nil, Config{}); err == nil {
		t.Error("New accepted a nil listener")
	}
	if _, err := New(&stubServer{}, ln, Config{MaxConns: -1}); err == nil {
		t.Error("New accepted a negative MaxConns")
	}
}

func TestServeJSONRoundTrip(t *testing.T) {
	stub := &stubServer{}
	g := newTestGateway(t, stub, Config{})
	base := "http://" + g.Addr().String()

	sample := trace.Sample{Time: 3.25, Dense: []float64{1, 2}, Sparse: [][]int32{{5}}, Label: 1}
	body, _ := json.Marshal(sample)
	resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /serve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /serve: %s", resp.Status)
	}
	var out core.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if out.Prob != 3.25 || out.Replica != 7 {
		t.Fatalf("response %+v does not echo the stub", out)
	}
	if stub.served.Load() != 1 {
		t.Fatalf("inner served %d requests, want 1", stub.served.Load())
	}
}

func TestServeBinaryRoundTrip(t *testing.T) {
	stub := &stubServer{}
	g := newTestGateway(t, stub, Config{})
	base := "http://" + g.Addr().String()

	samples := sampleFixture()
	resp, err := http.Post(base+"/serve.bin", "application/octet-stream",
		bytes.NewReader(AppendBatch(nil, samples)))
	if err != nil {
		t.Fatalf("POST /serve.bin: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /serve.bin: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	out, err := DecodeResponses(data)
	if err != nil {
		t.Fatalf("decoding responses: %v", err)
	}
	if len(out) != len(samples) {
		t.Fatalf("got %d responses for %d samples", len(out), len(samples))
	}
	for i := range out {
		if out[i].Prob != samples[i].Time {
			t.Fatalf("response %d out of order: prob %v, want %v", i, out[i].Prob, samples[i].Time)
		}
	}
	if stub.batches.Load() != 1 {
		t.Fatalf("batch path not used: %d batches", stub.batches.Load())
	}
}

func TestServeRejectsBadInput(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	base := "http://" + g.Addr().String()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed JSON", "/serve", "{not json", http.StatusBadRequest},
		{"oversized sample", "/serve",
			fmt.Sprintf(`{"Sparse":[[%s]]}`, strings.Repeat("1,", maxWireIDs)+"1"),
			http.StatusBadRequest},
		{"bad binary magic", "/serve.bin", "XXXXXXXX", http.StatusBadRequest},
		{"GET on POST endpoint", "/serve", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.name == "GET on POST endpoint" {
				resp, err = http.Get(base + tc.path)
			} else {
				resp, err = http.Post(base+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %s, want %d", resp.Status, tc.want)
			}
		})
	}
}

// TestOversizedBodyIs413 sends a body over the JSON cap and expects the
// request rejected before decoding, per the emt checkpoint discipline.
func TestOversizedBodyIs413(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	base := "http://" + g.Addr().String()

	big := bytes.Repeat([]byte("a"), maxJSONBody+1)
	resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatalf("POST /serve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %s, want 413", resp.Status)
	}
}

func TestStatsEndpointFoldsWireLedger(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	base := "http://" + g.Addr().String()

	sample, _ := json.Marshal(trace.Sample{Time: 1})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(sample))
		if err != nil {
			t.Fatalf("POST /serve: %v", err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st core.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if st.Served != 3 {
		t.Errorf("Served = %d, want 3", st.Served)
	}
	// The stub reports NaN quantiles; the wire must carry the sentinel.
	if st.P50 != wireNaN || st.P99 != wireNaN {
		t.Errorf("NaN quantiles not sanitized: P50=%v P99=%v", st.P50, st.P99)
	}
	if len(st.Wire) != 2 {
		t.Fatalf("wire ledger has %d endpoints, want 2", len(st.Wire))
	}
	var serve core.EndpointStats
	for _, ep := range st.Wire {
		if ep.Endpoint == "/serve" {
			serve = ep
		}
	}
	if serve.Accepted != 3 || serve.Shed != 0 {
		t.Errorf("/serve ledger %+v, want 3 accepted / 0 shed", serve)
	}
}

func TestInfoHandshake(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	resp, err := http.Get("http://" + g.Addr().String() + "/info")
	if err != nil {
		t.Fatalf("GET /info: %v", err)
	}
	defer resp.Body.Close()
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding info: %v", err)
	}
	if info.Protocol != protocolVersion {
		t.Errorf("Protocol = %d, want %d", info.Protocol, protocolVersion)
	}
	// The stub exposes no Profile/NumShards/DefaultBatchSize; the handshake
	// degrades to defaults rather than failing.
	if info.Replicas != 1 || info.Profile != "" {
		t.Errorf("stub handshake %+v, want 1 replica and empty profile", info)
	}
}

// TestFlashCrowdSheds429 saturates a one-slot, two-deep gateway with a burst
// far wider than its capacity: the overflow must come back as 429 with
// Retry-After hints, while every accepted request completes.
func TestFlashCrowdSheds429(t *testing.T) {
	stub := &stubServer{delay: 20 * time.Millisecond}
	g := newTestGateway(t, stub, Config{MaxInflight: 1, QueueDepth: 2})
	base := "http://" + g.Addr().String()

	const burst = 16
	var wg sync.WaitGroup
	var ok, shed atomic.Uint64
	sample, _ := json.Marshal(trace.Sample{Time: 1})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(sample))
			if err != nil {
				t.Errorf("POST /serve: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				if ms := resp.Header.Get("X-Retry-After-Ms"); ms == "" {
					t.Error("429 without X-Retry-After-Ms")
				} else if v, err := strconv.Atoi(ms); err != nil || v < 1 {
					t.Errorf("X-Retry-After-Ms = %q, want a positive integer", ms)
				}
				var body struct {
					Error  string `json:"error"`
					Reason string `json:"reason"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error != "overloaded" {
					t.Errorf("429 body %+v (err %v), want overloaded", body, err)
				}
			default:
				t.Errorf("unexpected status %s", resp.Status)
			}
		}()
	}
	wg.Wait()

	// Capacity is 1 inflight + 2 queued: a 16-wide burst must shed and must
	// also serve at least the requests that held capacity.
	if shed.Load() == 0 {
		t.Fatal("flash crowd shed nothing")
	}
	if ok.Load() == 0 {
		t.Fatal("flash crowd served nothing")
	}
	if ok.Load()+shed.Load() != burst {
		t.Fatalf("accounting: %d ok + %d shed != %d", ok.Load(), shed.Load(), burst)
	}
	if stub.served.Load() != ok.Load() {
		t.Fatalf("inner served %d but %d clients got 200", stub.served.Load(), ok.Load())
	}
	for _, ep := range g.WireStats() {
		if ep.Endpoint == "/serve" {
			if ep.Accepted != ok.Load() || ep.Shed != shed.Load() {
				t.Fatalf("ledger %+v disagrees with clients (%d ok, %d shed)", ep, ok.Load(), shed.Load())
			}
			if ep.Inflight != 0 || ep.Queued != 0 {
				t.Fatalf("gauges leaked after drain: %+v", ep)
			}
		}
	}
}

func TestInnerServeErrorIs422(t *testing.T) {
	g := newTestGateway(t, &stubServer{failOn: 13}, Config{})
	body, _ := json.Marshal(trace.Sample{Time: 13})
	resp, err := http.Post("http://"+g.Addr().String()+"/serve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /serve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %s, want 422", resp.Status)
	}
}

func TestGatewayCloseIsIdempotent(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	if err := g.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The listener must actually be closed.
	if _, err := net.DialTimeout("tcp", g.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}

func TestGatewayServesInProcess(t *testing.T) {
	stub := &stubServer{}
	g := newTestGateway(t, stub, Config{})
	resp, err := g.Serve(trace.Sample{Time: 9})
	if err != nil {
		t.Fatalf("in-process Serve: %v", err)
	}
	if resp.Prob != 9 {
		t.Fatalf("in-process Serve returned %+v", resp)
	}
	if st := g.Stats(); st.Served != 1 || len(st.Wire) != 2 {
		t.Fatalf("Stats %+v, want 1 served and a 2-endpoint wire ledger", st)
	}
}

// TestMetricsAnswerDuringOverload is the observability-under-load gate:
// while /serve sheds 429s (one inflight slot held by a slow request, queue
// full), /metrics and /stats must still answer 200 — the scrape path never
// passes through admission control.
func TestMetricsAnswerDuringOverload(t *testing.T) {
	stub := &stubServer{delay: 200 * time.Millisecond}
	g := newTestGateway(t, stub, Config{MaxInflight: 1, QueueDepth: 1})
	base := "http://" + g.Addr().String()

	sample, _ := json.Marshal(trace.Sample{Time: 1})
	const burst = 8
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(sample))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	// Wait until the gate has demonstrably shed (overload in progress).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var shed uint64
		for _, ep := range g.WireStats() {
			shed += ep.Shed
		}
		if shed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flash crowd never shed; cannot test overload behavior")
		}
		time.Sleep(time.Millisecond)
	}

	for _, path := range []string{"/metrics", "/stats", "/debug/vars"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s during overload: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s during overload: %s (want 200)", path, resp.Status)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s returned an empty body", path)
		}
		if path == "/metrics" {
			out := string(body)
			if !strings.Contains(out, "# TYPE liveupdate_wire_serve_shed_total counter") {
				t.Fatalf("/metrics missing shed counter family:\n%s", out)
			}
			if strings.Contains(out, "liveupdate_wire_serve_shed_total 0\n") {
				t.Fatalf("/metrics reports zero sheds mid-overload:\n%s", out)
			}
		}
	}
	wg.Wait()
}

// TestObservabilityEndpoints covers the telemetry export surfaces end to
// end: Prometheus text on /metrics, expvar JSON on /debug/vars, a
// Perfetto-loadable trace on /trace, and pprof behind the opt-in.
func TestObservabilityEndpoints(t *testing.T) {
	tel := obs.New(obs.Config{SampleEvery: 1, Pprof: true})
	stub := &stubServer{}
	g := newTestGateway(t, stub, Config{Telemetry: tel})
	base := "http://" + g.Addr().String()

	// Drive a few requests through admission so ledger counters move (none
	// queue — the gate has headroom — so no queue_wait spans; record one
	// span directly so /trace has content).
	sample, _ := json.Marshal(trace.Sample{Time: 2})
	for i := 0; i < 5; i++ {
		resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(sample))
		if err != nil {
			t.Fatalf("POST /serve: %v", err)
		}
		resp.Body.Close()
	}
	tr := tel.Tracer()
	tr.StageEnd(obs.StageQueueWait, tr.StageStart(obs.StageQueueWait))

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(string(body), "liveupdate_wire_serve_accepted_total 5\n") {
		t.Fatalf("/metrics missing accepted counter = 5:\n%s", body)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	if vars["liveupdate_wire_serve_accepted_total"] != float64(5) {
		t.Fatalf("vars accepted = %v, want 5", vars["liveupdate_wire_serve_accepted_total"])
	}

	code, body = get("/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: status %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}
	complete := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete == 0 {
		t.Fatalf("/trace has no complete events:\n%s", body)
	}

	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline with Pprof on: status %d", code)
	}

	// Without the opt-in, pprof must NOT be mounted.
	g2 := newTestGateway(t, stub, Config{})
	resp, err := http.Get("http://" + g2.Addr().String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof answered without the opt-in")
	}
	// The default gateway still serves the scrape surfaces.
	resp, err = http.Get("http://" + g2.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics without explicit telemetry: %s", resp.Status)
	}
}
