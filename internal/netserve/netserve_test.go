package netserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"liveupdate/internal/core"
	"liveupdate/internal/trace"
)

// stubServer is a controllable inner Server: Serve echoes the sample's Time
// as Prob, optionally sleeping to hold admission slots open.
type stubServer struct {
	delay   time.Duration
	served  atomic.Uint64
	batches atomic.Uint64
	failOn  float64 // sample Time that triggers an error, 0 = never
}

func (s *stubServer) Serve(sm trace.Sample) (core.Response, error) {
	if s.failOn != 0 && sm.Time == s.failOn {
		return core.Response{}, fmt.Errorf("stub: poisoned sample")
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.served.Add(1)
	return core.Response{Prob: sm.Time, Latency: 0.001, Replica: 7}, nil
}

func (s *stubServer) ServeBatch(samples []trace.Sample, resps []core.Response) error {
	s.batches.Add(1)
	for i := range samples {
		var err error
		if resps[i], err = s.Serve(samples[i]); err != nil {
			return err
		}
	}
	return nil
}

func (s *stubServer) Stats() core.Stats {
	return core.Stats{Served: s.served.Load(), P50: math.NaN(), P99: math.NaN()}
}

func newTestGateway(t *testing.T, inner Server, cfg Config) *Gateway {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	g, err := New(inner, ln, cfg)
	if err != nil {
		ln.Close()
		t.Fatalf("netserve.New: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestNewValidatesArguments(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	if _, err := New(nil, ln, Config{}); err == nil {
		t.Error("New accepted a nil server")
	}
	if _, err := New(&stubServer{}, nil, Config{}); err == nil {
		t.Error("New accepted a nil listener")
	}
	if _, err := New(&stubServer{}, ln, Config{MaxConns: -1}); err == nil {
		t.Error("New accepted a negative MaxConns")
	}
}

func TestServeJSONRoundTrip(t *testing.T) {
	stub := &stubServer{}
	g := newTestGateway(t, stub, Config{})
	base := "http://" + g.Addr().String()

	sample := trace.Sample{Time: 3.25, Dense: []float64{1, 2}, Sparse: [][]int32{{5}}, Label: 1}
	body, _ := json.Marshal(sample)
	resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /serve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /serve: %s", resp.Status)
	}
	var out core.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if out.Prob != 3.25 || out.Replica != 7 {
		t.Fatalf("response %+v does not echo the stub", out)
	}
	if stub.served.Load() != 1 {
		t.Fatalf("inner served %d requests, want 1", stub.served.Load())
	}
}

func TestServeBinaryRoundTrip(t *testing.T) {
	stub := &stubServer{}
	g := newTestGateway(t, stub, Config{})
	base := "http://" + g.Addr().String()

	samples := sampleFixture()
	resp, err := http.Post(base+"/serve.bin", "application/octet-stream",
		bytes.NewReader(AppendBatch(nil, samples)))
	if err != nil {
		t.Fatalf("POST /serve.bin: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /serve.bin: %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	out, err := DecodeResponses(data)
	if err != nil {
		t.Fatalf("decoding responses: %v", err)
	}
	if len(out) != len(samples) {
		t.Fatalf("got %d responses for %d samples", len(out), len(samples))
	}
	for i := range out {
		if out[i].Prob != samples[i].Time {
			t.Fatalf("response %d out of order: prob %v, want %v", i, out[i].Prob, samples[i].Time)
		}
	}
	if stub.batches.Load() != 1 {
		t.Fatalf("batch path not used: %d batches", stub.batches.Load())
	}
}

func TestServeRejectsBadInput(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	base := "http://" + g.Addr().String()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed JSON", "/serve", "{not json", http.StatusBadRequest},
		{"oversized sample", "/serve",
			fmt.Sprintf(`{"Sparse":[[%s]]}`, strings.Repeat("1,", maxWireIDs)+"1"),
			http.StatusBadRequest},
		{"bad binary magic", "/serve.bin", "XXXXXXXX", http.StatusBadRequest},
		{"GET on POST endpoint", "/serve", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.name == "GET on POST endpoint" {
				resp, err = http.Get(base + tc.path)
			} else {
				resp, err = http.Post(base+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %s, want %d", resp.Status, tc.want)
			}
		})
	}
}

// TestOversizedBodyIs413 sends a body over the JSON cap and expects the
// request rejected before decoding, per the emt checkpoint discipline.
func TestOversizedBodyIs413(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	base := "http://" + g.Addr().String()

	big := bytes.Repeat([]byte("a"), maxJSONBody+1)
	resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatalf("POST /serve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %s, want 413", resp.Status)
	}
}

func TestStatsEndpointFoldsWireLedger(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	base := "http://" + g.Addr().String()

	sample, _ := json.Marshal(trace.Sample{Time: 1})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(sample))
		if err != nil {
			t.Fatalf("POST /serve: %v", err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st core.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	if st.Served != 3 {
		t.Errorf("Served = %d, want 3", st.Served)
	}
	// The stub reports NaN quantiles; the wire must carry the sentinel.
	if st.P50 != wireNaN || st.P99 != wireNaN {
		t.Errorf("NaN quantiles not sanitized: P50=%v P99=%v", st.P50, st.P99)
	}
	if len(st.Wire) != 2 {
		t.Fatalf("wire ledger has %d endpoints, want 2", len(st.Wire))
	}
	var serve core.EndpointStats
	for _, ep := range st.Wire {
		if ep.Endpoint == "/serve" {
			serve = ep
		}
	}
	if serve.Accepted != 3 || serve.Shed != 0 {
		t.Errorf("/serve ledger %+v, want 3 accepted / 0 shed", serve)
	}
}

func TestInfoHandshake(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	resp, err := http.Get("http://" + g.Addr().String() + "/info")
	if err != nil {
		t.Fatalf("GET /info: %v", err)
	}
	defer resp.Body.Close()
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding info: %v", err)
	}
	if info.Protocol != protocolVersion {
		t.Errorf("Protocol = %d, want %d", info.Protocol, protocolVersion)
	}
	// The stub exposes no Profile/NumShards/DefaultBatchSize; the handshake
	// degrades to defaults rather than failing.
	if info.Replicas != 1 || info.Profile != "" {
		t.Errorf("stub handshake %+v, want 1 replica and empty profile", info)
	}
}

// TestFlashCrowdSheds429 saturates a one-slot, two-deep gateway with a burst
// far wider than its capacity: the overflow must come back as 429 with
// Retry-After hints, while every accepted request completes.
func TestFlashCrowdSheds429(t *testing.T) {
	stub := &stubServer{delay: 20 * time.Millisecond}
	g := newTestGateway(t, stub, Config{MaxInflight: 1, QueueDepth: 2})
	base := "http://" + g.Addr().String()

	const burst = 16
	var wg sync.WaitGroup
	var ok, shed atomic.Uint64
	sample, _ := json.Marshal(trace.Sample{Time: 1})
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/serve", "application/json", bytes.NewReader(sample))
			if err != nil {
				t.Errorf("POST /serve: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				if ms := resp.Header.Get("X-Retry-After-Ms"); ms == "" {
					t.Error("429 without X-Retry-After-Ms")
				} else if v, err := strconv.Atoi(ms); err != nil || v < 1 {
					t.Errorf("X-Retry-After-Ms = %q, want a positive integer", ms)
				}
				var body struct {
					Error  string `json:"error"`
					Reason string `json:"reason"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error != "overloaded" {
					t.Errorf("429 body %+v (err %v), want overloaded", body, err)
				}
			default:
				t.Errorf("unexpected status %s", resp.Status)
			}
		}()
	}
	wg.Wait()

	// Capacity is 1 inflight + 2 queued: a 16-wide burst must shed and must
	// also serve at least the requests that held capacity.
	if shed.Load() == 0 {
		t.Fatal("flash crowd shed nothing")
	}
	if ok.Load() == 0 {
		t.Fatal("flash crowd served nothing")
	}
	if ok.Load()+shed.Load() != burst {
		t.Fatalf("accounting: %d ok + %d shed != %d", ok.Load(), shed.Load(), burst)
	}
	if stub.served.Load() != ok.Load() {
		t.Fatalf("inner served %d but %d clients got 200", stub.served.Load(), ok.Load())
	}
	for _, ep := range g.WireStats() {
		if ep.Endpoint == "/serve" {
			if ep.Accepted != ok.Load() || ep.Shed != shed.Load() {
				t.Fatalf("ledger %+v disagrees with clients (%d ok, %d shed)", ep, ok.Load(), shed.Load())
			}
			if ep.Inflight != 0 || ep.Queued != 0 {
				t.Fatalf("gauges leaked after drain: %+v", ep)
			}
		}
	}
}

func TestInnerServeErrorIs422(t *testing.T) {
	g := newTestGateway(t, &stubServer{failOn: 13}, Config{})
	body, _ := json.Marshal(trace.Sample{Time: 13})
	resp, err := http.Post("http://"+g.Addr().String()+"/serve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /serve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %s, want 422", resp.Status)
	}
}

func TestGatewayCloseIsIdempotent(t *testing.T) {
	g := newTestGateway(t, &stubServer{}, Config{})
	if err := g.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The listener must actually be closed.
	if _, err := net.DialTimeout("tcp", g.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}

func TestGatewayServesInProcess(t *testing.T) {
	stub := &stubServer{}
	g := newTestGateway(t, stub, Config{})
	resp, err := g.Serve(trace.Sample{Time: 9})
	if err != nil {
		t.Fatalf("in-process Serve: %v", err)
	}
	if resp.Prob != 9 {
		t.Fatalf("in-process Serve returned %+v", resp)
	}
	if st := g.Stats(); st.Served != 1 || len(st.Wire) != 2 {
		t.Fatalf("Stats %+v, want 1 served and a 2-endpoint wire ledger", st)
	}
}
