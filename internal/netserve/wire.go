package netserve

// Wire formats for the serving front end. Two request encodings share one
// semantic model (a trace.Sample in, a core.Response out):
//
//   - JSON over POST /serve: one sample per request, human-debuggable
//     (curl-able), used by remote clients for singles.
//   - A length-prefixed binary batch over POST /serve.bin: the fast path a
//     remote load generator coalesces same-lane requests into. Layout
//     (little endian):
//
//	request:  magic "LUW1" | u32 count | count × sample
//	sample:   f64 time | u32 nDense | nDense × f64 |
//	          u32 nTables | per table: u32 nIds | nIds × i32 | u8 label
//	response: magic "LUR1" | u32 count | count × (f64 prob | f64 latency |
//	          u32 replica)
//
// Every length field is validated against the named caps below BEFORE any
// allocation — the same hostile-input discipline as the emt checkpoint
// reader — so a tiny crafted frame cannot force a huge allocation, and the
// HTTP handlers additionally bound whole request bodies with MaxBytesReader
// before a single byte is decoded.

import (
	"encoding/binary"
	"fmt"
	"math"

	"liveupdate/internal/core"
	"liveupdate/internal/trace"
)

const (
	batchMagic    = "LUW1"
	responseMagic = "LUR1"

	// Hostile-input caps. The largest legitimate profiles carry tens of
	// dense features and ~10 tables with single-digit multi-hot ids; the
	// caps leave orders of magnitude of headroom while keeping the worst
	// admissible frame far below the body cap.
	maxWireBatch    = 4096    // samples per binary batch
	maxWireDense    = 1 << 12 // dense features per sample
	maxWireTables   = 1 << 10 // sparse tables per sample
	maxWireIDs      = 1 << 12 // ids per table
	maxWireElems    = 1 << 22 // dense values + sparse ids summed over a batch
	maxJSONBody     = 1 << 20 // POST /serve body bytes
	maxBinaryBody   = 1 << 26 // POST /serve.bin body bytes
	protocolVersion = 1
)

// AppendBatch appends the binary encoding of samples to buf and returns the
// extended slice.
func AppendBatch(buf []byte, samples []trace.Sample) []byte {
	buf = append(buf, batchMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(samples)))
	for i := range samples {
		s := &samples[i]
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Time))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Dense)))
		for _, d := range s.Dense {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Sparse)))
		for _, ids := range s.Sparse {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
			for _, id := range ids {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
			}
		}
		buf = append(buf, byte(s.Label))
	}
	return buf
}

// DecodeBatch decodes a binary batch, validating every count against the
// wire caps before allocating.
func DecodeBatch(data []byte) ([]trace.Sample, error) {
	r := wireReader{data: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != batchMagic {
		return nil, fmt.Errorf("netserve: bad batch magic %q", magic)
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if count == 0 || count > maxWireBatch {
		return nil, fmt.Errorf("netserve: implausible batch count %d (max %d)", count, maxWireBatch)
	}
	samples := make([]trace.Sample, count)
	var totalElems uint64
	for i := range samples {
		s := &samples[i]
		t, err := r.u64()
		if err != nil {
			return nil, err
		}
		s.Time = math.Float64frombits(t)
		nDense, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nDense > maxWireDense {
			return nil, fmt.Errorf("netserve: implausible dense count %d (max %d)", nDense, maxWireDense)
		}
		if totalElems += uint64(nDense); totalElems > maxWireElems {
			return nil, fmt.Errorf("netserve: implausible batch: %d cumulative elements (max %d)", totalElems, maxWireElems)
		}
		s.Dense = make([]float64, nDense)
		for j := range s.Dense {
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			s.Dense[j] = math.Float64frombits(v)
		}
		nTables, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nTables > maxWireTables {
			return nil, fmt.Errorf("netserve: implausible table count %d (max %d)", nTables, maxWireTables)
		}
		s.Sparse = make([][]int32, nTables)
		for t := range s.Sparse {
			nIds, err := r.u32()
			if err != nil {
				return nil, err
			}
			if nIds > maxWireIDs {
				return nil, fmt.Errorf("netserve: implausible id count %d (max %d)", nIds, maxWireIDs)
			}
			if totalElems += uint64(nIds); totalElems > maxWireElems {
				return nil, fmt.Errorf("netserve: implausible batch: %d cumulative elements (max %d)", totalElems, maxWireElems)
			}
			ids := make([]int32, nIds)
			for k := range ids {
				v, err := r.u32()
				if err != nil {
					return nil, err
				}
				ids[k] = int32(v)
			}
			s.Sparse[t] = ids
		}
		label, err := r.byte()
		if err != nil {
			return nil, err
		}
		s.Label = int(label)
	}
	if r.len() != 0 {
		return nil, fmt.Errorf("netserve: %d trailing bytes after batch", r.len())
	}
	return samples, nil
}

// AppendResponses appends the binary encoding of resps to buf.
func AppendResponses(buf []byte, resps []core.Response) []byte {
	buf = append(buf, responseMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(resps)))
	for i := range resps {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(resps[i].Prob))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(resps[i].Latency))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(resps[i].Replica))
	}
	return buf
}

// DecodeResponses decodes a binary response frame.
func DecodeResponses(data []byte) ([]core.Response, error) {
	r := wireReader{data: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != responseMagic {
		return nil, fmt.Errorf("netserve: bad response magic %q", magic)
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	if count > maxWireBatch {
		return nil, fmt.Errorf("netserve: implausible response count %d (max %d)", count, maxWireBatch)
	}
	resps := make([]core.Response, count)
	for i := range resps {
		p, err := r.u64()
		if err != nil {
			return nil, err
		}
		l, err := r.u64()
		if err != nil {
			return nil, err
		}
		rep, err := r.u32()
		if err != nil {
			return nil, err
		}
		resps[i] = core.Response{
			Prob:    math.Float64frombits(p),
			Latency: math.Float64frombits(l),
			Replica: int(int32(rep)),
		}
	}
	if r.len() != 0 {
		return nil, fmt.Errorf("netserve: %d trailing bytes after responses", r.len())
	}
	return resps, nil
}

// wireReader is a bounds-checked cursor over a fully read request body.
type wireReader struct {
	data []byte
	off  int
}

func (r *wireReader) len() int { return len(r.data) - r.off }

func (r *wireReader) bytes(n int) ([]byte, error) {
	if r.len() < n {
		return nil, fmt.Errorf("netserve: truncated frame: want %d bytes, have %d", n, r.len())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wireReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *wireReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// ValidateSample bounds-checks a JSON-decoded sample against the wire caps;
// the JSON body size is already capped, but a sample within it can still
// carry absurd shapes the serving stack should never see.
func ValidateSample(s trace.Sample) error {
	if len(s.Dense) > maxWireDense {
		return fmt.Errorf("netserve: implausible dense count %d (max %d)", len(s.Dense), maxWireDense)
	}
	if len(s.Sparse) > maxWireTables {
		return fmt.Errorf("netserve: implausible table count %d (max %d)", len(s.Sparse), maxWireTables)
	}
	for t, ids := range s.Sparse {
		if len(ids) > maxWireIDs {
			return fmt.Errorf("netserve: implausible id count %d in table %d (max %d)", len(ids), t, maxWireIDs)
		}
	}
	return nil
}

// NaN quantiles (an idle Cluster's documented P50/P99 sentinel) are not
// representable in JSON; the wire replaces them with wireNaN and RestoreStats
// maps them back, so a remote Stats() round-trips the sentinel.
const wireNaN = -1

// SanitizeStats returns st with NaN quantile fields replaced by wireNaN for
// JSON transport, recursively through the per-replica breakdown.
func SanitizeStats(st core.Stats) core.Stats {
	if math.IsNaN(st.P50) {
		st.P50 = wireNaN
	}
	if math.IsNaN(st.P99) {
		st.P99 = wireNaN
	}
	if len(st.Replicas) > 0 {
		reps := make([]core.Stats, len(st.Replicas))
		for i, r := range st.Replicas {
			reps[i] = SanitizeStats(r)
		}
		st.Replicas = reps
	}
	return st
}

// RestoreStats undoes SanitizeStats on the client side.
func RestoreStats(st core.Stats) core.Stats {
	if st.P50 == wireNaN {
		st.P50 = math.NaN()
	}
	if st.P99 == wireNaN {
		st.P99 = math.NaN()
	}
	for i := range st.Replicas {
		st.Replicas[i] = RestoreStats(st.Replicas[i])
	}
	return st
}

// Info is the GET /info handshake payload: what a remote load generator
// needs to drive this server — the wire protocol version, the dataset
// profile to synthesize samples for, and the server's shard/batch hints.
type Info struct {
	Protocol  int    `json:"protocol"`
	Profile   string `json:"profile"`   // registry name (lowercased Profile.Name)
	Replicas  int    `json:"replicas"`  // server-side shard count (1 = single node)
	BatchHint int    `json:"batchHint"` // server's preferred serving batch size (0 = none)
}
