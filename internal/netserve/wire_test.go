package netserve

import (
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"

	"liveupdate/internal/core"
	"liveupdate/internal/trace"
)

func sampleFixture() []trace.Sample {
	return []trace.Sample{
		{
			Time:   1.5,
			Dense:  []float64{0.25, -3, math.Inf(1)},
			Sparse: [][]int32{{1, 2, 3}, {}, {42}},
			Label:  1,
		},
		{
			Time:   2.0,
			Dense:  nil,
			Sparse: nil,
			Label:  0,
		},
		{
			Time:   -0.5,
			Dense:  []float64{0},
			Sparse: [][]int32{{-7}},
			Label:  1,
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := sampleFixture()
	buf := AppendBatch(nil, in)
	out, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i].Time != out[i].Time || in[i].Label != out[i].Label {
			t.Errorf("sample %d scalar mismatch: %+v vs %+v", i, in[i], out[i])
		}
		if !reflect.DeepEqual(normDense(in[i].Dense), normDense(out[i].Dense)) {
			t.Errorf("sample %d dense mismatch: %v vs %v", i, in[i].Dense, out[i].Dense)
		}
		if !reflect.DeepEqual(normSparse(in[i].Sparse), normSparse(out[i].Sparse)) {
			t.Errorf("sample %d sparse mismatch: %v vs %v", i, in[i].Sparse, out[i].Sparse)
		}
	}
}

// normDense/normSparse erase the nil-vs-empty distinction the wire does not
// preserve (a zero count decodes to an empty, non-nil slice).
func normDense(d []float64) []float64 {
	if len(d) == 0 {
		return []float64{}
	}
	return d
}

func normSparse(s [][]int32) [][]int32 {
	out := make([][]int32, len(s))
	for i, ids := range s {
		if len(ids) == 0 {
			out[i] = []int32{}
		} else {
			out[i] = ids
		}
	}
	return out
}

func TestResponsesRoundTrip(t *testing.T) {
	in := []core.Response{
		{Prob: 0.75, Latency: 0.001, Replica: 3},
		{Prob: 0, Latency: 0, Replica: 0},
		{Prob: 1, Latency: 2.5, Replica: -1},
	}
	out, err := DecodeResponses(AppendResponses(nil, in))
	if err != nil {
		t.Fatalf("DecodeResponses: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

// corrupt returns a valid one-sample frame with the u32 at off overwritten.
func corrupt(t *testing.T, off int, val uint32) []byte {
	t.Helper()
	buf := AppendBatch(nil, []trace.Sample{{
		Time:   1,
		Dense:  []float64{1, 2},
		Sparse: [][]int32{{3}},
		Label:  1,
	}})
	if off+4 > len(buf) {
		t.Fatalf("corrupt offset %d beyond frame of %d bytes", off, len(buf))
	}
	binary.LittleEndian.PutUint32(buf[off:], val)
	return buf
}

// Frame layout offsets for the one-sample corrupt() fixture.
const (
	offCount  = 4         // after magic
	offDense  = 4 + 4 + 8 // after magic, count, time
	offTables = offDense + 4 + 16
	offIDs    = offTables + 4
)

// TestDecodeBatchHostileInput is the satellite-2 regression suite: every
// length field a remote peer controls is checked against a cap before any
// allocation, so a tiny crafted frame cannot demand gigabytes.
func TestDecodeBatchHostileInput(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"empty", nil, "truncated"},
		{"bad magic", []byte("NOPE\x01\x00\x00\x00"), "magic"},
		{"response magic on batch path", AppendResponses(nil, []core.Response{{}}), "magic"},
		{"zero count", append([]byte(batchMagic), 0, 0, 0, 0), "batch count"},
		{"giant count, tiny body", corrupt(t, offCount, math.MaxUint32), "batch count"},
		{"count just over cap", corrupt(t, offCount, maxWireBatch+1), "batch count"},
		{"giant dense count", corrupt(t, offDense, math.MaxUint32), "dense count"},
		{"giant table count", corrupt(t, offTables, math.MaxUint32), "table count"},
		{"giant id count", corrupt(t, offIDs, math.MaxUint32), "id count"},
		{"truncated mid-sample", AppendBatch(nil, sampleFixture())[:20], "truncated"},
		{"trailing garbage", append(AppendBatch(nil, sampleFixture()), 0xff), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBatch(tc.data)
			if err == nil {
				t.Fatal("hostile frame decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeBatchCumulativeCap verifies the per-batch element budget: many
// samples each under the per-sample caps must still trip the cumulative cap.
func TestDecodeBatchCumulativeCap(t *testing.T) {
	// 2048 samples × (2048 dense + 1024 ids) = 6.3M elements > maxWireElems.
	samples := make([]trace.Sample, 2048)
	for i := range samples {
		samples[i] = trace.Sample{
			Dense:  make([]float64, 2048),
			Sparse: [][]int32{make([]int32, 1024)},
		}
	}
	_, err := DecodeBatch(AppendBatch(nil, samples))
	if err == nil || !strings.Contains(err.Error(), "cumulative") {
		t.Fatalf("cumulative overflow not caught: %v", err)
	}
}

func TestDecodeResponsesHostileInput(t *testing.T) {
	good := AppendResponses(nil, []core.Response{{Prob: 1}})
	huge := append([]byte(responseMagic), 0xff, 0xff, 0xff, 0xff)
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("XXXX\x00\x00\x00\x00")},
		{"giant count", huge},
		{"truncated", good[:8]},
		{"trailing", append(append([]byte{}, good...), 1, 2, 3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeResponses(tc.data); err == nil {
				t.Fatal("hostile response frame decoded without error")
			}
		})
	}
}

func TestValidateSample(t *testing.T) {
	if err := ValidateSample(sampleFixture()[0]); err != nil {
		t.Fatalf("legitimate sample rejected: %v", err)
	}
	bad := []trace.Sample{
		{Dense: make([]float64, maxWireDense+1)},
		{Sparse: make([][]int32, maxWireTables+1)},
		{Sparse: [][]int32{make([]int32, maxWireIDs+1)}},
	}
	for i, s := range bad {
		if err := ValidateSample(s); err == nil {
			t.Errorf("oversized sample %d accepted", i)
		}
	}
}

func TestStatsNaNRoundTrip(t *testing.T) {
	st := core.Stats{
		Served: 10,
		P50:    math.NaN(),
		P99:    math.NaN(),
		Replicas: []core.Stats{
			{Served: 5, P50: 0.001, P99: 0.002},
			{P50: math.NaN(), P99: math.NaN()},
		},
	}
	wire := SanitizeStats(st)
	if math.IsNaN(wire.P50) || math.IsNaN(wire.P99) {
		t.Fatal("SanitizeStats left a NaN in place")
	}
	if math.IsNaN(wire.Replicas[1].P50) {
		t.Fatal("SanitizeStats missed a replica NaN")
	}
	if wire.Replicas[0].P50 != 0.001 {
		t.Fatal("SanitizeStats clobbered a real quantile")
	}
	// Sanitizing must not mutate the caller's replica slice.
	if !math.IsNaN(st.Replicas[1].P50) {
		t.Fatal("SanitizeStats mutated its input")
	}

	back := RestoreStats(wire)
	if !math.IsNaN(back.P50) || !math.IsNaN(back.P99) {
		t.Fatal("RestoreStats did not bring the NaN sentinel back")
	}
	if !math.IsNaN(back.Replicas[1].P99) {
		t.Fatal("RestoreStats missed a replica NaN")
	}
	if back.Replicas[0].P99 != 0.002 {
		t.Fatal("RestoreStats clobbered a real quantile")
	}
}
