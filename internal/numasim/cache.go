// Package numasim models the inference-node hardware that LiveUpdate's
// performance-isolation layer (paper §IV-D) manipulates: Core Complex Dies
// (CCDs) with private L3 caches, shared DRAM bandwidth with
// contention-induced latency inflation, the adaptive CCD-partitioning
// controller of Algorithm 2, the shadow-embedding-table reuse path, and a
// CPU power/utilization model (Figs 5, 10, 11, 16, 18).
//
// It substitutes for the paper's dual AMD EPYC 9684X testbed. Capacities and
// latencies are scaled to laptop-size workloads; the causal structure — hot
// embedding sets fit in a per-CCD L3, cross-workload co-location thrashes
// it, misses contend for DRAM bandwidth — is the paper's.
package numasim

import "container/list"

// BlockKey identifies one cacheable block (an embedding row).
type BlockKey struct {
	Space int32 // block namespace (e.g. table id)
	Row   int32
}

// L3Cache is an LRU cache over fixed-size blocks, modelling one CCD's
// private L3 at embedding-row granularity.
type L3Cache struct {
	capacity int // max resident blocks
	ll       *list.List
	index    map[BlockKey]*list.Element

	hits   uint64
	misses uint64
}

// NewL3Cache builds a cache holding at most capacity blocks.
func NewL3Cache(capacity int) *L3Cache {
	if capacity <= 0 {
		panic("numasim: cache capacity must be positive")
	}
	return &L3Cache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[BlockKey]*list.Element),
	}
}

// Access touches key, returning true on a hit. Misses install the block,
// evicting the least recently used one if full.
func (c *L3Cache) Access(key BlockKey) bool {
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	if c.ll.Len() >= c.capacity {
		back := c.ll.Back()
		if back != nil {
			delete(c.index, back.Value.(BlockKey))
			c.ll.Remove(back)
		}
	}
	c.index[key] = c.ll.PushFront(key)
	return false
}

// Contains reports residency without touching LRU order or counters.
func (c *L3Cache) Contains(key BlockKey) bool {
	_, ok := c.index[key]
	return ok
}

// Len returns the number of resident blocks.
func (c *L3Cache) Len() int { return c.ll.Len() }

// Capacity returns the maximum resident blocks.
func (c *L3Cache) Capacity() int { return c.capacity }

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (c *L3Cache) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// ResetStats zeroes hit/miss counters without flushing contents.
func (c *L3Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// Flush empties the cache (e.g. when a CCD is reassigned to a different
// workload, its working set is effectively cold).
func (c *L3Cache) Flush() {
	c.ll.Init()
	c.index = make(map[BlockKey]*list.Element)
}

// Stats returns raw hit/miss counts.
func (c *L3Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }
