package numasim

import (
	"fmt"

	"liveupdate/internal/simnet"
)

// ControllerConfig parameterizes Algorithm 2 (adaptive NUMA resource
// partitioning). Defaults follow the paper: rebalance when GPU-path P99
// exceeds 10 ms, reclaim for training below 6 ms.
type ControllerConfig struct {
	THigh        float64 // seconds: move a CCD to inference at/above this P99
	TLow         float64 // seconds: move a CCD to training at/below this P99
	MinInfCCDs   int     // m_inf: inference never drops below this
	MaxTrainCCDs int     // M_train: training never exceeds this
	CyclePeriod  float64 // seconds between adjustments (T_cycle)
}

// DefaultControllerConfig returns the paper's thresholds for a machine with
// numCCDs dies: 10 ms / 6 ms, at least half the CCDs for inference, training
// capped at a third.
func DefaultControllerConfig(numCCDs int) ControllerConfig {
	maxTrain := numCCDs / 3
	if maxTrain < 1 {
		maxTrain = 1
	}
	minInf := numCCDs / 2
	if minInf < 1 {
		minInf = 1
	}
	return ControllerConfig{
		THigh:        0.010,
		TLow:         0.006,
		MinInfCCDs:   minInf,
		MaxTrainCCDs: maxTrain,
		CyclePeriod:  1.0,
	}
}

// Validate reports configuration errors against a machine of numCCDs dies.
func (c ControllerConfig) Validate(numCCDs int) error {
	switch {
	case c.THigh <= c.TLow:
		return fmt.Errorf("numasim: THigh must exceed TLow")
	case c.MinInfCCDs < 1 || c.MinInfCCDs >= numCCDs:
		return fmt.Errorf("numasim: MinInfCCDs %d out of [1,%d)", c.MinInfCCDs, numCCDs)
	case c.MaxTrainCCDs < 1 || c.MaxTrainCCDs >= numCCDs:
		return fmt.Errorf("numasim: MaxTrainCCDs %d out of [1,%d)", c.MaxTrainCCDs, numCCDs)
	case c.CyclePeriod <= 0:
		return fmt.Errorf("numasim: CyclePeriod must be positive")
	}
	return nil
}

// Controller runs Algorithm 2: it watches inference P99 latency and moves
// CCDs between the inference and training partitions with hysteresis.
type Controller struct {
	cfg     ControllerConfig
	machine *Machine
	clock   *simnet.Clock

	infCCDs    int
	lastAdjust float64
	movesToInf int
	movesToTr  int
}

// NewController attaches a controller to m, starting from the given initial
// inference share.
func NewController(cfg ControllerConfig, m *Machine, clock *simnet.Clock, initialInfCCDs int) (*Controller, error) {
	n := m.Config().NumCCDs
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	if initialInfCCDs < cfg.MinInfCCDs {
		initialInfCCDs = cfg.MinInfCCDs
	}
	if initialInfCCDs >= n {
		initialInfCCDs = n - 1
	}
	if n-initialInfCCDs > cfg.MaxTrainCCDs {
		initialInfCCDs = n - cfg.MaxTrainCCDs
	}
	ctl := &Controller{
		cfg:        cfg,
		machine:    m,
		clock:      clock,
		infCCDs:    initialInfCCDs,
		lastAdjust: -cfg.CyclePeriod, // allow an immediate first adjustment
	}
	if err := m.Partition(initialInfCCDs); err != nil {
		return nil, err
	}
	return ctl, nil
}

// MustNewController panics on configuration errors.
func MustNewController(cfg ControllerConfig, m *Machine, clock *simnet.Clock, initialInfCCDs int) *Controller {
	ctl, err := NewController(cfg, m, clock, initialInfCCDs)
	if err != nil {
		panic(err)
	}
	return ctl
}

// InferenceCCDs returns the current inference partition size.
func (ctl *Controller) InferenceCCDs() int { return ctl.infCCDs }

// TrainingCCDs returns the current training partition size.
func (ctl *Controller) TrainingCCDs() int { return ctl.machine.Config().NumCCDs - ctl.infCCDs }

// Moves returns cumulative rebalances in each direction.
func (ctl *Controller) Moves() (toInference, toTraining int) {
	return ctl.movesToInf, ctl.movesToTr
}

// Observe feeds one P99 measurement (seconds). Following Algorithm 2: above
// THigh a CCD moves from training to inference; below TLow one moves back,
// subject to MinInfCCDs / MaxTrainCCDs and the cycle period. It returns true
// when the partition changed.
func (ctl *Controller) Observe(p99 float64) bool {
	now := ctl.clock.Now()
	if now-ctl.lastAdjust < ctl.cfg.CyclePeriod {
		return false
	}
	n := ctl.machine.Config().NumCCDs
	switch {
	case p99 >= ctl.cfg.THigh && ctl.infCCDs < n-1:
		// Grow inference; training always retains at least one CCD.
		ctl.infCCDs++
		ctl.movesToInf++
	case p99 <= ctl.cfg.TLow && ctl.TrainingCCDs() < ctl.cfg.MaxTrainCCDs && ctl.infCCDs > ctl.cfg.MinInfCCDs:
		ctl.infCCDs--
		ctl.movesToTr++
	default:
		return false
	}
	ctl.lastAdjust = now
	if err := ctl.machine.Partition(ctl.infCCDs); err != nil {
		// Revert bookkeeping on the (unreachable in practice) failure.
		panic(err)
	}
	return true
}
