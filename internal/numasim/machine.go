package numasim

import (
	"fmt"

	"liveupdate/internal/simnet"
)

// Workload tags the two co-located processes of paper Fig 13.
type Workload int

// The two co-resident workloads.
const (
	Inference Workload = iota
	Training
	numWorkloads
)

// AccessKind distinguishes the three memory paths of §IV-D.
type AccessKind int

const (
	// KindCached is a normal cached embedding access (inference lookups and
	// un-optimized training reads/writes).
	KindCached AccessKind = iota
	// KindReuse is a training access through the shadow embedding table:
	// pinned, prefetched, tightly arranged — served at near-hit latency and
	// charged no DRAM bandwidth (the vector was already fetched by
	// inference).
	KindReuse
)

// Config sets the machine model's capacities and timing constants. The time
// constants are calibrated so a serving request (≈16 row accesses plus dense
// compute) lands in the paper's single-digit-millisecond band and naive
// co-location pushes P99 beyond 2× (Fig 16); they are model parameters, not
// hardware measurements.
type Config struct {
	NumCCDs        int     // CCDs on the node (paper example: 12)
	L3BlocksPerCCD int     // rows resident per CCD L3 (scaled 96 MB)
	L3HitLatency   float64 // seconds per L3-resident row access
	DRAMLatency    float64 // seconds per DRAM row access, uncontended
	DRAMBandwidth  float64 // bytes/sec shared across workloads
	BlockBytes     int64   // bytes per row access (embedding row)
	PrefetchHit    float64 // shadow-table served-from-cache fraction

	// Concurrency scales DRAM traffic accounting: the simulated request
	// stream stands in for this many concurrent streams on the node, so
	// each miss charges Concurrency×BlockBytes to the shared channel.
	// Latency composition per simulated request is unchanged. Values ≤ 1
	// mean a single stream (default).
	Concurrency float64

	// Power model (Figs 5, 18a): watts = Idle + PerCCDActive·activeCCDs +
	// PerGBps·(DRAM GB/s).
	PowerIdle     float64
	PowerPerCCD   float64
	PowerPerGBps  float64
	ContentionRef float64 // utilization knee for latency inflation
}

// DefaultConfig returns a scaled model of the paper's node: 12 CCDs, hot-set
// sized L3s, 100 ns-class DRAM scaled to the simulation's ms-class request
// budget.
func DefaultConfig() Config {
	return Config{
		NumCCDs:        12,
		L3BlocksPerCCD: 2048,
		L3HitLatency:   20e-6,  // 20 µs per row (scaled)
		DRAMLatency:    250e-6, // 250 µs per row miss (scaled)
		DRAMBandwidth:  38.4e9, // DDR5 channel figure from paper Fig 2
		BlockBytes:     128,    // 16 floats + metadata
		PrefetchHit:    0.95,
		PowerIdle:      120,
		PowerPerCCD:    14,
		PowerPerGBps:   2.0,
		ContentionRef:  0.85,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumCCDs <= 0:
		return fmt.Errorf("numasim: NumCCDs must be positive")
	case c.L3BlocksPerCCD <= 0:
		return fmt.Errorf("numasim: L3BlocksPerCCD must be positive")
	case c.L3HitLatency <= 0 || c.DRAMLatency <= c.L3HitLatency:
		return fmt.Errorf("numasim: need 0 < L3HitLatency < DRAMLatency")
	case c.DRAMBandwidth <= 0:
		return fmt.Errorf("numasim: DRAMBandwidth must be positive")
	case c.BlockBytes <= 0:
		return fmt.Errorf("numasim: BlockBytes must be positive")
	case c.PrefetchHit < 0 || c.PrefetchHit > 1:
		return fmt.Errorf("numasim: PrefetchHit must be in [0,1]")
	}
	return nil
}

// wstats accumulates per-workload counters.
type wstats struct {
	hits      uint64
	misses    uint64
	reuseHits uint64
	dramBytes int64
}

// Machine models one inference node's memory system: per-CCD L3 caches and a
// shared DRAM channel whose recent utilization inflates miss latency.
type Machine struct {
	cfg   Config
	clock *simnet.Clock
	ccds  []*L3Cache

	// assign[w] lists the CCD ids serving workload w. When scheduling is
	// disabled both workloads share all CCDs (the "w/o Opt" configuration).
	assign [numWorkloads][]int

	stats [numWorkloads]wstats

	// Sliding bandwidth accounting for contention.
	windowStart float64
	windowBytes int64
	lastUtil    float64
	windowLen   float64

	// Reuse path determinism.
	prefetchSeq uint64
}

// NewMachine builds a machine over the given virtual clock.
func NewMachine(cfg Config, clock *simnet.Clock) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, clock: clock, windowLen: 0.1}
	for i := 0; i < cfg.NumCCDs; i++ {
		m.ccds = append(m.ccds, NewL3Cache(cfg.L3BlocksPerCCD))
	}
	all := make([]int, cfg.NumCCDs)
	for i := range all {
		all[i] = i
	}
	m.assign[Inference] = all
	m.assign[Training] = append([]int(nil), all...)
	return m, nil
}

// MustNewMachine panics on config errors.
func MustNewMachine(cfg Config, clock *simnet.Clock) *Machine {
	m, err := NewMachine(cfg, clock)
	if err != nil {
		panic(err)
	}
	return m
}

// Partition pins inference to the first infCCDs CCDs and training to the
// rest (the NUMA-aware scheduling of §IV-D). Reassigned CCDs are flushed:
// their working sets are cold for the new owner.
func (m *Machine) Partition(infCCDs int) error {
	if infCCDs <= 0 || infCCDs >= m.cfg.NumCCDs {
		return fmt.Errorf("numasim: infCCDs %d out of (0,%d)", infCCDs, m.cfg.NumCCDs)
	}
	oldInf := append([]int(nil), m.assign[Inference]...)
	inf := make([]int, 0, infCCDs)
	train := make([]int, 0, m.cfg.NumCCDs-infCCDs)
	for i := 0; i < m.cfg.NumCCDs; i++ {
		if i < infCCDs {
			inf = append(inf, i)
		} else {
			train = append(train, i)
		}
	}
	m.assign[Inference] = inf
	m.assign[Training] = train
	// Flush CCDs that changed owner.
	owned := func(set []int, id int) bool {
		for _, v := range set {
			if v == id {
				return true
			}
		}
		return false
	}
	for i := 0; i < m.cfg.NumCCDs; i++ {
		wasInf := owned(oldInf, i)
		isInf := owned(inf, i)
		if wasInf != isInf {
			m.ccds[i].Flush()
		}
	}
	return nil
}

// ShareAll reverts to un-partitioned co-location (both workloads on every
// CCD) — the naive "w/o Opt" baseline.
func (m *Machine) ShareAll() {
	all := make([]int, m.cfg.NumCCDs)
	for i := range all {
		all[i] = i
	}
	m.assign[Inference] = all
	m.assign[Training] = append([]int(nil), all...)
}

// CCDsOf returns a copy of the CCD set assigned to w.
func (m *Machine) CCDsOf(w Workload) []int {
	return append([]int(nil), m.assign[w]...)
}

// Access performs one row access for workload w and returns its latency in
// virtual seconds. space/row identify the block (e.g. table id, row id).
func (m *Machine) Access(w Workload, kind AccessKind, space, row int32) float64 {
	if kind == KindReuse {
		// Shadow-table path: mostly prefetched; no DRAM charge, no cache
		// pollution. A deterministic rotor approximates the hit probability.
		m.prefetchSeq++
		if float64(m.prefetchSeq%100) < m.cfg.PrefetchHit*100 {
			m.stats[w].reuseHits++
			m.stats[w].hits++
			return m.cfg.L3HitLatency
		}
		m.stats[w].misses++
		m.chargeDRAM(w, m.cfg.BlockBytes)
		return m.missLatency()
	}

	set := m.assign[w]
	key := BlockKey{Space: space, Row: row}
	ccd := set[int(uint32(space*31+row))%len(set)]
	if m.ccds[ccd].Access(key) {
		m.stats[w].hits++
		return m.cfg.L3HitLatency
	}
	m.stats[w].misses++
	m.chargeDRAM(w, m.cfg.BlockBytes)
	return m.missLatency()
}

// chargeDRAM accounts miss traffic into the sliding bandwidth window.
func (m *Machine) chargeDRAM(w Workload, bytes int64) {
	if m.cfg.Concurrency > 1 {
		bytes = int64(float64(bytes) * m.cfg.Concurrency)
	}
	m.stats[w].dramBytes += bytes
	now := m.clock.Now()
	if now-m.windowStart >= m.windowLen {
		elapsed := now - m.windowStart
		if elapsed > 0 {
			m.lastUtil = float64(m.windowBytes) / elapsed / m.cfg.DRAMBandwidth
			if m.lastUtil > 1 {
				m.lastUtil = 1
			}
		}
		m.windowStart = now
		m.windowBytes = 0
	}
	m.windowBytes += bytes
}

// missLatency returns DRAM latency inflated by recent channel utilization:
// flat below the knee, then sharply queueing-limited (an M/D/1-flavored
// inflation capped at 8×).
func (m *Machine) missLatency() float64 {
	u := m.lastUtil
	ref := m.cfg.ContentionRef
	if u <= ref {
		return m.cfg.DRAMLatency * (1 + 0.3*u/ref)
	}
	over := (u - ref) / (1 - ref + 1e-9)
	factor := 1.3 + 6.7*over
	if factor > 8 {
		factor = 8
	}
	return m.cfg.DRAMLatency * factor
}

// DRAMUtilization returns the most recent window's channel utilization.
func (m *Machine) DRAMUtilization() float64 { return m.lastUtil }

// HitRatio returns workload w's L3 hit ratio since the last ResetStats.
func (m *Machine) HitRatio(w Workload) float64 {
	s := m.stats[w]
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}

// DRAMBytes returns the DRAM traffic workload w generated.
func (m *Machine) DRAMBytes(w Workload) int64 { return m.stats[w].dramBytes }

// ResetStats clears per-workload counters (not cache contents).
func (m *Machine) ResetStats() {
	for i := range m.stats {
		m.stats[i] = wstats{}
	}
	for _, c := range m.ccds {
		c.ResetStats()
	}
}

// Power returns modelled node CPU power in watts given each workload's
// active-CCD utilization in [0,1]. Co-located training adds roughly 20% over
// inference-only at the default configuration (paper Fig 5).
func (m *Machine) Power(infLoad, trainLoad float64) float64 {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	infLoad, trainLoad = clamp(infLoad), clamp(trainLoad)
	active := infLoad*float64(len(m.assign[Inference])) +
		trainLoad*float64(len(m.assign[Training]))
	if active > float64(m.cfg.NumCCDs) {
		active = float64(m.cfg.NumCCDs)
	}
	gbps := m.lastUtil * m.cfg.DRAMBandwidth / 1e9
	return m.cfg.PowerIdle + m.cfg.PowerPerCCD*active + m.cfg.PowerPerGBps*gbps
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }
