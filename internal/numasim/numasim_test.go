package numasim

import (
	"testing"
	"testing/quick"

	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
)

func TestL3CacheLRU(t *testing.T) {
	c := NewL3Cache(2)
	k := func(r int32) BlockKey { return BlockKey{Space: 0, Row: r} }
	if c.Access(k(1)) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(k(1)) {
		t.Fatal("warm access must hit")
	}
	c.Access(k(2))
	c.Access(k(3)) // evicts LRU = 1 (2 was accessed after 1's last touch? order: 1,1,2,3 → LRU is 1)
	if c.Contains(k(1)) {
		t.Fatal("LRU block must be evicted")
	}
	if !c.Contains(k(2)) || !c.Contains(k(3)) {
		t.Fatal("recently used blocks must stay")
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Fatalf("len %d cap %d", c.Len(), c.Capacity())
	}
}

func TestL3CacheHitRatio(t *testing.T) {
	c := NewL3Cache(10)
	if c.HitRatio() != 0 {
		t.Fatal("fresh cache ratio must be 0")
	}
	c.Access(BlockKey{0, 1}) // miss
	c.Access(BlockKey{0, 1}) // hit
	if c.HitRatio() != 0.5 {
		t.Fatalf("ratio %v", c.HitRatio())
	}
	c.ResetStats()
	h, m := c.Stats()
	if h != 0 || m != 0 {
		t.Fatal("ResetStats failed")
	}
	if !c.Contains(BlockKey{0, 1}) {
		t.Fatal("ResetStats must not flush contents")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatal("Flush must empty the cache")
	}
}

func TestMachineConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumCCDs = 0 },
		func(c *Config) { c.L3BlocksPerCCD = 0 },
		func(c *Config) { c.L3HitLatency = 0 },
		func(c *Config) { c.DRAMLatency = c.L3HitLatency },
		func(c *Config) { c.DRAMBandwidth = 0 },
		func(c *Config) { c.BlockBytes = 0 },
		func(c *Config) { c.PrefetchHit = 1.5 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d should fail validation", i)
		}
	}
	if _, err := NewMachine(Config{}, simnet.NewClock()); err == nil {
		t.Fatal("NewMachine must reject invalid config")
	}
}

func newTestMachine() (*Machine, *simnet.Clock) {
	clock := simnet.NewClock()
	cfg := DefaultConfig()
	cfg.L3BlocksPerCCD = 64 // small so eviction effects are visible
	return MustNewMachine(cfg, clock), clock
}

func TestAccessHitAfterMiss(t *testing.T) {
	m, _ := newTestMachine()
	l1 := m.Access(Inference, KindCached, 0, 42)
	l2 := m.Access(Inference, KindCached, 0, 42)
	if l1 <= l2 {
		t.Fatalf("miss %v must cost more than hit %v", l1, l2)
	}
	if l2 != m.Config().L3HitLatency {
		t.Fatalf("hit latency %v", l2)
	}
	if m.HitRatio(Inference) != 0.5 {
		t.Fatalf("hit ratio %v", m.HitRatio(Inference))
	}
	if m.DRAMBytes(Inference) != m.Config().BlockBytes {
		t.Fatalf("dram bytes %d", m.DRAMBytes(Inference))
	}
}

func TestCoLocationThrashing(t *testing.T) {
	// Without partitioning, a training scan over many rows evicts the
	// inference hot set; with partitioning it cannot. This is the causal
	// mechanism behind Figs 11 and 16.
	run := func(partition bool) float64 {
		clock := simnet.NewClock()
		cfg := DefaultConfig()
		cfg.L3BlocksPerCCD = 16 // tight cache: eviction pressure is visible
		m := MustNewMachine(cfg, clock)
		if partition {
			if err := m.Partition(8); err != nil {
				t.Fatal(err)
			}
		}
		hot := []int32{1, 2, 3, 4, 5, 6, 7, 8}
		// Warm the inference hot set.
		for _, r := range hot {
			m.Access(Inference, KindCached, 0, r)
		}
		m.ResetStats()
		scan := int32(0)
		for step := 0; step < 2000; step++ {
			m.Access(Inference, KindCached, 0, hot[step%len(hot)])
			// Training scans a huge working set (random-ish rows).
			for k := 0; k < 32; k++ {
				scan++
				m.Access(Training, KindCached, 1, 1000+scan%4096)
			}
			clock.Advance(0.001)
		}
		return m.HitRatio(Inference)
	}
	shared := run(false)
	isolated := run(true)
	if isolated < 0.95 {
		t.Fatalf("isolated inference hit ratio %v, want ~1", isolated)
	}
	if shared > isolated-0.2 {
		t.Fatalf("co-location should thrash: shared %v vs isolated %v", shared, isolated)
	}
}

func TestReusePathHitsWithoutDRAMCharge(t *testing.T) {
	m, _ := newTestMachine()
	var total float64
	for i := int32(0); i < 1000; i++ {
		total += m.Access(Training, KindReuse, 0, i)
	}
	ratio := m.HitRatio(Training)
	if ratio < 0.9 {
		t.Fatalf("reuse hit ratio %v, want ≥ PrefetchHit≈0.95", ratio)
	}
	// DRAM traffic only for the ~5% prefetch misses.
	maxBytes := int64(0.1 * 1000 * float64(m.Config().BlockBytes))
	if m.DRAMBytes(Training) > maxBytes {
		t.Fatalf("reuse path charged %d DRAM bytes", m.DRAMBytes(Training))
	}
	_ = total
}

func TestContentionInflatesMissLatency(t *testing.T) {
	clock := simnet.NewClock()
	cfg := DefaultConfig()
	cfg.L3BlocksPerCCD = 4
	cfg.DRAMBandwidth = 1e5 // tiny: easy to saturate
	m := MustNewMachine(cfg, clock)
	// Generate heavy miss traffic within short virtual time.
	var row int32
	for w := 0; w < 100; w++ {
		for i := 0; i < 50; i++ {
			row++
			m.Access(Training, KindCached, 0, row)
		}
		clock.Advance(0.11) // roll the bandwidth window
	}
	if m.DRAMUtilization() < 0.5 {
		t.Fatalf("expected saturated DRAM, util %v", m.DRAMUtilization())
	}
	inflated := m.missLatency()
	if inflated <= cfg.DRAMLatency*1.2 {
		t.Fatalf("latency %v not inflated over base %v", inflated, cfg.DRAMLatency)
	}
	if inflated > cfg.DRAMLatency*8.01 {
		t.Fatalf("inflation must be capped at 8x, got %v", inflated/cfg.DRAMLatency)
	}
}

func TestPartitionValidationAndFlush(t *testing.T) {
	m, _ := newTestMachine()
	if err := m.Partition(0); err == nil {
		t.Fatal("Partition(0) must fail")
	}
	if err := m.Partition(12); err == nil {
		t.Fatal("Partition(all) must fail")
	}
	if err := m.Partition(8); err != nil {
		t.Fatal(err)
	}
	if len(m.CCDsOf(Inference)) != 8 || len(m.CCDsOf(Training)) != 4 {
		t.Fatalf("partition sizes %d/%d", len(m.CCDsOf(Inference)), len(m.CCDsOf(Training)))
	}
	m.ShareAll()
	if len(m.CCDsOf(Inference)) != 12 || len(m.CCDsOf(Training)) != 12 {
		t.Fatal("ShareAll must give both workloads every CCD")
	}
}

func TestPowerModel(t *testing.T) {
	m, _ := newTestMachine()
	if err := m.Partition(10); err != nil {
		t.Fatal(err)
	}
	infOnly := m.Power(0.5, 0)
	coLocated := m.Power(0.5, 1.0)
	if coLocated <= infOnly {
		t.Fatal("co-located training must raise power")
	}
	// Paper Fig 5: concurrent training costs roughly 20% extra.
	ratio := coLocated / infOnly
	if ratio < 1.05 || ratio > 1.5 {
		t.Fatalf("co-location power ratio %v outside plausible band", ratio)
	}
	// Clamping.
	if m.Power(-1, -1) != m.Power(0, 0) {
		t.Fatal("loads must clamp at 0")
	}
	if m.Power(2, 2) < m.Power(1, 1) {
		t.Fatal("loads must clamp at 1")
	}
}

func TestResetStats(t *testing.T) {
	m, _ := newTestMachine()
	m.Access(Inference, KindCached, 0, 1)
	m.ResetStats()
	if m.HitRatio(Inference) != 0 || m.DRAMBytes(Inference) != 0 {
		t.Fatal("ResetStats failed")
	}
}

// --- Controller (Algorithm 2) tests ---

func TestControllerConfigValidate(t *testing.T) {
	cfg := DefaultControllerConfig(12)
	if err := cfg.Validate(12); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.THigh = bad.TLow
	if err := bad.Validate(12); err == nil {
		t.Fatal("THigh <= TLow must fail")
	}
	bad = cfg
	bad.MinInfCCDs = 0
	if err := bad.Validate(12); err == nil {
		t.Fatal("MinInfCCDs 0 must fail")
	}
	bad = cfg
	bad.CyclePeriod = 0
	if err := bad.Validate(12); err == nil {
		t.Fatal("CyclePeriod 0 must fail")
	}
}

func TestControllerMovesCCDsUnderPressure(t *testing.T) {
	m, clock := newTestMachine()
	cfg := DefaultControllerConfig(12)
	ctl := MustNewController(cfg, m, clock, 10)
	start := ctl.InferenceCCDs()
	// Sustained SLA violation: controller must grow inference.
	for i := 0; i < 3; i++ {
		clock.Advance(cfg.CyclePeriod + 0.01)
		ctl.Observe(0.015) // 15 ms > THigh
	}
	if ctl.InferenceCCDs() <= start {
		t.Fatalf("controller did not grow inference: %d", ctl.InferenceCCDs())
	}
	toInf, _ := ctl.Moves()
	if toInf == 0 {
		t.Fatal("move counter must advance")
	}
}

func TestControllerReclaimsForTraining(t *testing.T) {
	m, clock := newTestMachine()
	cfg := DefaultControllerConfig(12)
	ctl := MustNewController(cfg, m, clock, 11)
	for i := 0; i < 5; i++ {
		clock.Advance(cfg.CyclePeriod + 0.01)
		ctl.Observe(0.003) // 3 ms < TLow
	}
	if ctl.TrainingCCDs() <= 1 {
		t.Fatalf("controller did not reclaim for training: %d", ctl.TrainingCCDs())
	}
	// Cap respected.
	if ctl.TrainingCCDs() > cfg.MaxTrainCCDs {
		t.Fatalf("training %d exceeds cap %d", ctl.TrainingCCDs(), cfg.MaxTrainCCDs)
	}
}

func TestControllerHysteresisBand(t *testing.T) {
	m, clock := newTestMachine()
	cfg := DefaultControllerConfig(12)
	ctl := MustNewController(cfg, m, clock, 9)
	before := ctl.InferenceCCDs()
	for i := 0; i < 5; i++ {
		clock.Advance(cfg.CyclePeriod + 0.01)
		if ctl.Observe(0.008) { // between TLow and THigh: no action
			t.Fatal("controller must not act inside the hysteresis band")
		}
	}
	if ctl.InferenceCCDs() != before {
		t.Fatal("partition changed inside hysteresis band")
	}
}

func TestControllerCyclePeriodThrottling(t *testing.T) {
	m, clock := newTestMachine()
	cfg := DefaultControllerConfig(12)
	ctl := MustNewController(cfg, m, clock, 9)
	clock.Advance(cfg.CyclePeriod + 0.01)
	if !ctl.Observe(0.02) {
		t.Fatal("first observation should adjust")
	}
	// Immediately after, another violation must be ignored.
	if ctl.Observe(0.02) {
		t.Fatal("adjustments must respect the cycle period")
	}
}

func TestControllerRespectsMinInference(t *testing.T) {
	m, clock := newTestMachine()
	cfg := DefaultControllerConfig(12) // MinInf = 6
	ctl := MustNewController(cfg, m, clock, 6)
	for i := 0; i < 10; i++ {
		clock.Advance(cfg.CyclePeriod + 0.01)
		ctl.Observe(0.001)
	}
	if ctl.InferenceCCDs() < cfg.MinInfCCDs {
		t.Fatalf("inference %d below minimum %d", ctl.InferenceCCDs(), cfg.MinInfCCDs)
	}
}

// Property: under arbitrary P99 sequences the controller invariants hold.
func TestPropertyControllerInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		m, clock := newTestMachine()
		cfg := DefaultControllerConfig(12)
		ctl := MustNewController(cfg, m, clock, 6+rng.Intn(5))
		for i := 0; i < 60; i++ {
			clock.Advance(cfg.CyclePeriod * (0.5 + rng.Float64()))
			ctl.Observe(rng.Float64() * 0.03)
			n := m.Config().NumCCDs
			if ctl.InferenceCCDs() < cfg.MinInfCCDs || ctl.InferenceCCDs() > n-1 {
				return false
			}
			if ctl.TrainingCCDs() < 1 || ctl.TrainingCCDs() > cfg.MaxTrainCCDs {
				return false
			}
			if len(m.CCDsOf(Inference))+len(m.CCDsOf(Training)) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
