package obs

import (
	"encoding/json"
	"io"
	"runtime"
)

// Chrome trace-event JSON ("JSON Object Format"), loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing. Each sampled span becomes one
// complete ("ph":"X") event; each stage gets its own track (tid = stage
// index) named via thread_name metadata events, so the five pipeline stages
// render as parallel swimlanes.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`  // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

func writeChromeTrace(w io.Writer, tr *Tracer) error {
	spans := tr.Snapshot() // nil-safe: empty on a nil tracer
	doc := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, NumStages+len(spans)),
		OtherData:   map[string]string{"generator": "liveupdate/internal/obs", "go": runtime.Version()},
	}
	for s := 0; s < NumStages; s++ {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  s,
			Args: map[string]any{"name": Stage(s).String()},
		})
	}
	for _, sp := range spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Stage.String(),
			Ph:   "X",
			Pid:  0,
			Tid:  int(sp.Stage),
			Ts:   float64(sp.StartNs) / 1e3,
			Dur:  float64(sp.DurNs) / 1e3,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
