// Package obs is the telemetry layer of the LiveUpdate reproduction: sampled
// per-request stage tracing (route, admission queue wait, forward, commit,
// sync-publish stall) into a preallocated lock-free span ring, plus a named
// metrics registry (counters, gauges, histograms) that serving, cluster sync,
// fleet membership, and netserve admission register into.
//
// Everything in this package is strictly a *side-band wall-clock observer*:
// instruments count real events and spans time real nanoseconds, but nothing
// here reads or mutates any virtual-time state. The determinism contract —
// every virtual-time statistic bit-identical for any worker count, both sync
// modes, under chaos — holds with telemetry on or off, and a test enforces it.
//
// Not to be confused with internal/trace, which generates *workload* traces
// (the request streams replayed against the system); obs records *telemetry*
// traces (where those requests spent their time).
package obs

import "io"

// Config selects which telemetry surfaces are live.
type Config struct {
	// SampleEvery traces 1 in N stage timings (1 = every request). 0 or
	// negative disables stage tracing entirely; the metrics registry is
	// always on.
	SampleEvery int

	// SpanRing is the span ring capacity, rounded up to a power of two.
	// 0 means the default (4096 spans).
	SpanRing int

	// Pprof exposes net/http/pprof handlers on gateways serving this
	// telemetry. Off by default: profiling endpoints are a debug surface.
	Pprof bool
}

// Telemetry bundles a metrics registry with an optional stage tracer. A nil
// *Telemetry is valid everywhere and means "telemetry off": the accessors
// return nil, and nil tracers/instruments no-op.
type Telemetry struct {
	cfg    Config
	reg    *Registry
	tracer *Tracer
}

// New builds a Telemetry from cfg. The registry is always created; the
// tracer only when cfg.SampleEvery > 0.
func New(cfg Config) *Telemetry {
	t := &Telemetry{cfg: cfg, reg: NewRegistry()}
	if cfg.SampleEvery > 0 {
		t.tracer = NewTracer(cfg.SampleEvery, cfg.SpanRing)
	}
	return t
}

// Config returns the configuration this Telemetry was built with.
func (t *Telemetry) Config() Config {
	if t == nil {
		return Config{}
	}
	return t.cfg
}

// Registry returns the metrics registry, or nil on a nil Telemetry.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the stage tracer. Nil on a nil Telemetry or when tracing is
// disabled — and a nil *Tracer is itself safe to call.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// WriteMetrics renders every registered instrument in Prometheus text
// exposition format.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	if t == nil {
		return nil
	}
	return writePrometheus(w, t.reg.Snapshot())
}

// WriteVars renders the registry as an expvar-style JSON object.
func (t *Telemetry) WriteVars(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	return writeVars(w, t.reg.Snapshot())
}

// WriteTrace dumps the span ring as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	return writeChromeTrace(w, t.Tracer())
}
