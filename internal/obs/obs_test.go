package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestStageString(t *testing.T) {
	want := []string{"route", "queue_wait", "forward", "commit", "sync_publish"}
	if len(want) != NumStages {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Fatalf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
}

func TestNilTelemetryAndTracerAreSafe(t *testing.T) {
	var tel *Telemetry
	if tel.Registry() != nil || tel.Tracer() != nil {
		t.Fatal("nil telemetry accessors must return nil")
	}
	var buf bytes.Buffer
	if err := tel.WriteMetrics(&buf); err != nil {
		t.Fatalf("nil WriteMetrics: %v", err)
	}
	if err := tel.WriteVars(&buf); err != nil {
		t.Fatalf("nil WriteVars: %v", err)
	}
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}

	var tr *Tracer
	if got := tr.StageStart(StageForward); got != -1 {
		t.Fatalf("nil tracer StageStart = %d, want -1", got)
	}
	tr.StageEnd(StageForward, 123) // must not panic
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot must be nil")
	}
	if tr.StageTotals() != ([NumStages]StageAgg{}) {
		t.Fatal("nil tracer totals must be zero")
	}
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Load() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var h *Histogram
	h.Observe(1) // must not panic
}

func TestTracerSamplesOneInN(t *testing.T) {
	tr := NewTracer(4, 64)
	sampled := 0
	for i := 0; i < 16; i++ {
		if start := tr.StageStart(StageForward); start >= 0 {
			tr.StageEnd(StageForward, start)
			sampled++
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4, want 4", sampled)
	}
	// Stages sample independently: StageCommit has its own counter.
	if start := tr.StageStart(StageCommit); start >= 0 {
		t.Fatal("first commit occurrence at 1-in-4 must not be sampled")
	}
	tot := tr.StageTotals()
	if tot[StageForward].Count != 4 {
		t.Fatalf("forward agg count = %d, want 4", tot[StageForward].Count)
	}
	if tot[StageForward].SumNs < 0 {
		t.Fatalf("negative duration sum %d", tot[StageForward].SumNs)
	}
}

func TestTracerSnapshotOrderAndWrap(t *testing.T) {
	tr := NewTracer(1, 8) // tiny ring to force a lap
	for i := 0; i < 20; i++ {
		start := tr.StageStart(Stage(i % NumStages))
		tr.StageEnd(Stage(i%NumStages), start)
	}
	spans := tr.Snapshot()
	if len(spans) == 0 || len(spans) > 8 {
		t.Fatalf("snapshot has %d spans, want 1..8", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartNs < spans[i-1].StartNs {
			t.Fatalf("snapshot not sorted by start: %v", spans)
		}
	}
	tot := tr.StageTotals()
	var n uint64
	for _, a := range tot {
		n += a.Count
	}
	if n != 20 {
		t.Fatalf("aggregates saw %d spans, want 20 (ring wrap must not drop totals)", n)
	}
}

// TestTracerConcurrentSnapshot hammers the ring from many writers while a
// reader snapshots — the seqlock must keep this race-clean (this test's
// teeth are under -race in CI) and every surfaced span plausible.
func TestTracerConcurrentSnapshot(t *testing.T) {
	tr := NewTracer(1, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st := Stage(i % NumStages)
				tr.StageEnd(st, tr.StageStart(st))
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, sp := range tr.Snapshot() {
			if int(sp.Stage) >= NumStages || sp.DurNs < 0 || sp.StartNs < 0 {
				close(stop)
				wg.Wait()
				t.Fatalf("implausible span surfaced: %+v", sp)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestTracerHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are asserted without the race detector (CI alloc-gate)")
	}
	tr := NewTracer(1, 64) // sample everything: worst case
	allocs := testing.AllocsPerRun(1000, func() {
		start := tr.StageStart(StageForward)
		tr.StageEnd(StageForward, start)
	})
	if allocs != 0 {
		t.Fatalf("traced stage timing allocates %v/op, want 0", allocs)
	}
}

func TestRegistryGetOrCreateSharesInstruments(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("serve_total", "requests")
	b := r.Counter("serve_total", "requests")
	if a != b {
		t.Fatal("same-name counters must be the same instrument")
	}
	a.Inc()
	b.Add(2)
	if a.Load() != 3 {
		t.Fatalf("shared counter = %d, want 3", a.Load())
	}
	h1 := r.Histogram("lat", "latency", 0, 1, 10)
	h2 := r.Histogram("lat", "latency", 0, 1, 10)
	if h1 != h2 {
		t.Fatal("same-name histograms must be the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	r.GaugeFunc("serve_total", "oops", func() float64 { return 0 })
}

func TestRegistrySnapshotSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", "last").Add(7)
	r.GaugeFunc("aaa", "first", func() float64 { return 1.5 })
	r.CounterFunc("mmm", "middle", func() uint64 { return 42 })
	h := r.Histogram("hhh", "dist", 0, 10, 5)
	h.Observe(3)
	h.Observe(math.NaN()) // dropped
	h.Observe(99)         // clamps into last bucket

	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, m := range snap {
		names[i] = m.Name
	}
	if got, want := strings.Join(names, ","), "aaa,hhh,mmm,zzz"; got != want {
		t.Fatalf("snapshot order %q, want %q", got, want)
	}
	for _, m := range snap {
		switch m.Name {
		case "zzz":
			if m.Kind != KindCounter || m.Value != 7 {
				t.Fatalf("zzz: %+v", m)
			}
		case "aaa":
			if m.Kind != KindGauge || m.Value != 1.5 {
				t.Fatalf("aaa: %+v", m)
			}
		case "mmm":
			if m.Kind != KindCounter || m.Value != 42 {
				t.Fatalf("mmm: %+v", m)
			}
		case "hhh":
			if m.Kind != KindHistogram || m.Hist == nil {
				t.Fatalf("hhh: %+v", m)
			}
			if m.Hist.Count != 2 {
				t.Fatalf("hhh count = %d, want 2 (NaN dropped)", m.Hist.Count)
			}
			if m.Hist.Sum != 102 {
				t.Fatalf("hhh sum = %v, want 102", m.Hist.Sum)
			}
			if m.Hist.Buckets[4] != 1 {
				t.Fatalf("out-of-range observation must clamp: %v", m.Hist.Buckets)
			}
		}
	}
}

func TestPrometheusEscapingAndNonFinite(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("nan_gauge", "can be NaN", func() float64 { return math.NaN() })
	r.GaugeFunc("inf_gauge", "line1\nline2 with back\\slash", func() float64 { return math.Inf(1) })
	r.GaugeFunc("neginf_gauge", "negative", func() float64 { return math.Inf(-1) })

	var buf bytes.Buffer
	if err := writePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"nan_gauge NaN\n",
		"inf_gauge +Inf\n",
		"neginf_gauge -Inf\n",
		`# HELP inf_gauge line1\nline2 with back\\slash` + "\n",
		"# TYPE nan_gauge gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusHistogramConventions(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", 0, 1, 4)
	for _, v := range []float64{0.1, 0.1, 0.4, 0.9, 5} { // 5 clamps to last bucket
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := writePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.25"} 2` + "\n", // cumulative
		`lat_seconds_bucket{le="0.5"} 3` + "\n",
		`lat_seconds_bucket{le="0.75"} 3` + "\n",
		`lat_seconds_bucket{le="1"} 5` + "\n",
		`lat_seconds_bucket{le="+Inf"} 5` + "\n",
		"lat_seconds_sum 6.5\n",
		"lat_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusGolden locks the full exposition output for a representative
// registry against testdata/metrics.golden (regenerate with -update).
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("liveupdate_serve_requests_total", "Requests served by the fleet.").Add(1234)
	r.CounterFunc("liveupdate_sync_epochs_total", "Completed sync epochs.", func() uint64 { return 17 })
	r.GaugeFunc("liveupdate_fleet_members", "Active members in the fleet view.", func() float64 { return 3 })
	r.GaugeFunc("liveupdate_weird_gauge", "Escapes: back\\slash and\nnewline; value NaN.", func() float64 { return math.NaN() })
	h := r.Histogram("liveupdate_serve_latency_seconds", "Virtual serve latency.", 0, 0.02, 4)
	for _, v := range []float64{0.001, 0.004, 0.004, 0.011, 0.5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := writePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tel := New(Config{SampleEvery: 1, SpanRing: 64})
	tr := tel.Tracer()
	for i := 0; i < 10; i++ {
		st := Stage(i % NumStages)
		tr.StageEnd(st, tr.StageStart(st))
	}
	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Fatalf("negative duration: %+v", ev)
			}
		}
	}
	if meta != NumStages {
		t.Fatalf("%d thread_name metadata events, want %d", meta, NumStages)
	}
	if complete != 10 {
		t.Fatalf("%d complete events, want 10", complete)
	}
}

func TestWriteVarsIsValidJSON(t *testing.T) {
	tel := New(Config{})
	tel.Registry().Counter("c_total", "counter").Add(5)
	tel.Registry().GaugeFunc("g_nan", "gauge", func() float64 { return math.NaN() })
	tel.Registry().Histogram("h", "hist", 0, 1, 2).Observe(0.3)

	var buf bytes.Buffer
	if err := tel.WriteVars(&buf); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(buf.Bytes(), &vars); err != nil {
		t.Fatalf("vars not valid JSON: %v\n%s", err, buf.String())
	}
	if vars["c_total"] != float64(5) {
		t.Fatalf("c_total = %v", vars["c_total"])
	}
	if vars["g_nan"] != "NaN" {
		t.Fatalf("NaN gauge must render as string: %v", vars["g_nan"])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("missing memstats block")
	}
}
