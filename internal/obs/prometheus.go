package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition format, version 0.0.4 — hand-rolled because the
// repo is stdlib-only. The subset rendered here: # HELP with escaping, # TYPE
// per family, scalar samples, and cumulative histogram _bucket/_sum/_count
// series ending in the mandatory le="+Inf" bucket. Non-finite values render
// as NaN / +Inf / -Inf, which the format permits.

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// formatValue renders a float64 sample value. strconv with 'g' produces
// "NaN", "+Inf" and "-Inf" for the non-finite cases, exactly as the format
// expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writePrometheus(w io.Writer, snapshot []Metric) error {
	bw := bufio.NewWriter(w)
	for _, m := range snapshot {
		if m.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(m.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(m.Name)
		bw.WriteByte(' ')
		bw.WriteString(m.Kind.String())
		bw.WriteByte('\n')

		if m.Hist == nil {
			bw.WriteString(m.Name)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(m.Value))
			bw.WriteByte('\n')
			continue
		}

		// Histogram: cumulative buckets, then the +Inf bucket, _sum, _count.
		var cum uint64
		for i, c := range m.Hist.Buckets {
			cum += c
			bw.WriteString(m.Name)
			bw.WriteString(`_bucket{le="`)
			bw.WriteString(formatValue(m.Hist.UpperEdge(i)))
			bw.WriteString(`"} `)
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(m.Name)
		bw.WriteString(`_bucket{le="+Inf"} `)
		bw.WriteString(strconv.FormatUint(m.Hist.Count, 10))
		bw.WriteByte('\n')
		bw.WriteString(m.Name)
		bw.WriteString("_sum ")
		bw.WriteString(formatValue(m.Hist.Sum))
		bw.WriteByte('\n')
		bw.WriteString(m.Name)
		bw.WriteString("_count ")
		bw.WriteString(strconv.FormatUint(m.Hist.Count, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
