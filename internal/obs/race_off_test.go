//go:build !race

package obs

// raceEnabled gates allocation-count assertions; see race_on_test.go.
const raceEnabled = false
