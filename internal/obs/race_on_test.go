//go:build race

package obs

// raceEnabled gates allocation-count assertions: race-detector
// instrumentation changes allocation behavior, so alloc tests are skipped
// and asserted in the no-race CI alloc-gate job instead.
const raceEnabled = true
