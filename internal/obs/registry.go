package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"liveupdate/internal/metrics"
)

// Kind is the instrument class of a registered metric.
type Kind uint8

const (
	// KindCounter is a monotone uint64 counter.
	KindCounter Kind = iota
	// KindGauge is an instantaneous float64 value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a registered monotone counter. The hot path is one atomic add;
// a nil *Counter (telemetry off) no-ops.
type Counter struct {
	c metrics.Counter
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.c.Inc()
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.c.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.c.Load()
}

// Histogram is a registered fixed-bucket histogram with a running sum, built
// on metrics.Histogram. Observe takes one short mutex hold and does not
// allocate; a nil *Histogram no-ops.
type Histogram struct {
	mu  sync.Mutex
	h   *metrics.Histogram
	sum float64
}

// Observe records one value. NaN is dropped (matching metrics.Histogram);
// ±Inf clamps into the edge buckets and poisons the sum, as in standard
// Prometheus client behavior.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	h.h.Observe(v)
	h.sum += v
	h.mu.Unlock()
}

// HistSnapshot is a consistent copy of a histogram's state.
type HistSnapshot struct {
	Min, Max float64
	Buckets  []uint64 // per-bucket (non-cumulative) counts
	Sum      float64
	Count    uint64
}

// UpperEdge returns the upper boundary of bucket i. The last bucket absorbs
// everything ≥ Max, so its rendered edge is Max (the +Inf bucket follows in
// the exposition format).
func (s *HistSnapshot) UpperEdge(i int) float64 {
	width := (s.Max - s.Min) / float64(len(s.Buckets))
	return s.Min + width*float64(i+1)
}

func (h *Histogram) snapshot() *HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return &HistSnapshot{
		Min:     h.h.Min,
		Max:     h.h.Max,
		Buckets: append([]uint64(nil), h.h.Counts...),
		Sum:     h.sum,
		Count:   h.h.Total(),
	}
}

// Metric is one instrument's state as captured by Registry.Snapshot.
type Metric struct {
	Name string
	Help string
	Kind Kind
	// Value is the counter or gauge reading; unused for histograms.
	Value float64
	// Hist is set only for histograms.
	Hist *HistSnapshot
}

type instrument struct {
	name    string
	help    string
	kind    Kind
	counter *Counter
	countFn func() uint64
	gaugeFn func() float64
	hist    *Histogram
}

// Registry is a named instrument table. Registration is get-or-create by
// name: N cluster replicas registering "serve_requests_total" share one
// fleet-wide counter, and a replica rejoining after a failure re-binds to
// the existing instrument instead of panicking. Kind conflicts panic — they
// are programming errors.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument)}
}

func (r *Registry) getOrCreate(name, help string, kind Kind) (*instrument, bool) {
	ins, ok := r.byName[name]
	if ok {
		if ins.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, ins.kind))
		}
		return ins, false
	}
	ins = &instrument{name: name, help: help, kind: kind}
	r.byName[name] = ins
	return ins, true
}

// Counter registers (or finds) a monotone counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	ins, created := r.getOrCreate(name, help, KindCounter)
	if created {
		ins.counter = &Counter{}
	}
	return ins.counter
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time — for sources that already keep their own atomic tallies (admission
// ledgers, fleet membership counters). First registration wins.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ins, created := r.getOrCreate(name, help, KindCounter)
	if created {
		ins.countFn = fn
	}
}

// GaugeFunc registers a gauge read from fn at snapshot time. First
// registration wins.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ins, created := r.getOrCreate(name, help, KindGauge)
	if created {
		ins.gaugeFn = fn
	}
}

// Histogram registers (or finds) a histogram with n fixed-width buckets over
// [min, max).
func (r *Registry) Histogram(name, help string, min, max float64, n int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	ins, created := r.getOrCreate(name, help, KindHistogram)
	if created {
		ins.hist = &Histogram{h: metrics.NewHistogram(min, max, n)}
	}
	return ins.hist
}

// Snapshot reads every instrument, sorted by name. Function-backed
// instruments are invoked here, on the scraper's goroutine — never on a
// serving path.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	list := make([]*instrument, 0, len(r.byName))
	for _, ins := range r.byName {
		list = append(list, ins)
	}
	r.mu.Unlock()
	sort.Slice(list, func(a, b int) bool { return list[a].name < list[b].name })

	out := make([]Metric, 0, len(list))
	for _, ins := range list {
		m := Metric{Name: ins.name, Help: ins.help, Kind: ins.kind}
		switch {
		case ins.counter != nil:
			m.Value = float64(ins.counter.Load())
		case ins.countFn != nil:
			m.Value = float64(ins.countFn())
		case ins.gaugeFn != nil:
			m.Value = ins.gaugeFn()
		case ins.hist != nil:
			m.Hist = ins.hist.snapshot()
		}
		out = append(out, m)
	}
	return out
}
